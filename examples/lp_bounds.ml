(* LP bounds: solve the paper's MIP (9) with the built-in branch-and-bound
   on a small instance, then quantify the future-work idea (divisible task
   workloads) with the splitting LP.

   Run with: dune exec examples/lp_bounds.exe *)

module Instance = Mf_core.Instance
module Period = Mf_core.Period
module Registry = Mf_heuristics.Registry
module Gen = Mf_workload.Gen
module Rng = Mf_prng.Rng

let () =
  let inst = Gen.chain (Rng.create 2024) (Gen.default ~tasks:5 ~types:2 ~machines:3) in
  Printf.printf "instance: n=%d p=%d m=%d\n\n" (Instance.task_count inst)
    (Instance.type_count inst) (Instance.machines inst);

  (* 1. The paper's MIP, solved exactly by branch-and-bound over simplex
     relaxations. *)
  let mip = Mf_lp.Micro_mip.solve inst in
  (match (mip.Mf_lp.Micro_mip.period, mip.Mf_lp.Micro_mip.k) with
  | Some period, Some k ->
    Printf.printf "MIP (9): optimal specialized period %.2f ms (LP objective K=%.2f)\n" period k;
    Printf.printf "         solved in %d branch-and-bound nodes\n" mip.Mf_lp.Micro_mip.nodes
  | _ -> Printf.printf "MIP did not solve\n");

  (* 2. Cross-check with the combinatorial exact solver. *)
  let dfs = Mf_exact.Dfs.specialized inst in
  Printf.printf "DFS:     optimal specialized period %.2f ms (%d nodes)\n" dfs.Mf_exact.Dfs.period
    dfs.Mf_exact.Dfs.nodes;

  (* 3. Heuristic for scale. *)
  let h4w = Registry.solve Registry.H4w inst in
  Printf.printf "H4w:     heuristic period %.2f ms\n\n" (Period.period inst h4w);

  (* 4. Future work: divisible workloads.  The LP bound shows how much
     throughput is left on the table by unsplittable tasks. *)
  let lp =
    match Mf_lp.Splitting.solve inst with
    | Ok r -> r
    | Error e -> failwith (Mf_lp.Splitting.describe_error e)
  in
  Printf.printf "divisible-workload LP bound: %.2f ms (%s path)\n" lp.Mf_lp.Splitting.period
    (match lp.Mf_lp.Splitting.path with `Float -> "float" | `Rational -> "rational-certified");
  Printf.printf "throughput headroom vs exact: %.1f%%\n"
    (100.0 *. (dfs.Mf_exact.Dfs.period -. lp.Mf_lp.Splitting.period) /. dfs.Mf_exact.Dfs.period);
  Printf.printf "\nshares of each task per machine (rows: tasks, columns: machines):\n";
  Array.iteri
    (fun i row ->
      Printf.printf "  T%d:" i;
      Array.iter (fun s -> Printf.printf " %5.2f" s) row;
      print_newline ())
    lp.Mf_lp.Splitting.shares;
  let mp, rounded = Mf_lp.Splitting.round_exn inst lp in
  Printf.printf "\nrounded back to a specialized mapping: period %.2f ms (%s)\n" rounded
    (Format.asprintf "%a" Mf_core.Mapping.pp mp)
