(* Tests for the mf_numeric substrate: Bigint, Rat, Kahan, Stats. *)

module B = Mf_numeric.Bigint
module R = Mf_numeric.Rat
module Kahan = Mf_numeric.Kahan
module Stats = Mf_numeric.Stats

let check_b msg expected actual =
  Alcotest.(check string) msg expected (B.to_string actual)

(* ------------------------------------------------------------------ *)
(* Bigint unit tests                                                   *)
(* ------------------------------------------------------------------ *)

let test_bigint_of_int () =
  check_b "zero" "0" (B.of_int 0);
  check_b "small" "42" (B.of_int 42);
  check_b "negative" "-42" (B.of_int (-42));
  check_b "base boundary" "32768" (B.of_int 32768);
  check_b "max_int" (string_of_int max_int) (B.of_int max_int);
  check_b "min_int" (string_of_int min_int) (B.of_int min_int)

let test_bigint_to_int () =
  Alcotest.(check (option int)) "roundtrip" (Some 123456789) (B.to_int (B.of_int 123456789));
  Alcotest.(check (option int)) "min_int" (Some min_int) (B.to_int (B.of_int min_int));
  Alcotest.(check (option int)) "max_int" (Some max_int) (B.to_int (B.of_int max_int));
  let too_big = B.mul (B.of_int max_int) (B.of_int 2) in
  Alcotest.(check (option int)) "overflow" None (B.to_int too_big);
  let too_small = B.sub (B.of_int min_int) B.one in
  Alcotest.(check (option int)) "underflow" None (B.to_int too_small)

let test_bigint_add_sub () =
  check_b "add" "1000000000000000000000" (B.add (B.of_string "999999999999999999999") B.one);
  check_b "sub to zero" "0" (B.sub (B.of_int 7) (B.of_int 7));
  check_b "sub negative" "-3" (B.sub (B.of_int 4) (B.of_int 7));
  check_b "mixed signs" "1" (B.add (B.of_int 5) (B.of_int (-4)))

let test_bigint_mul () =
  check_b "square" "152415787532388367501905199875019052100"
    (let x = B.of_string "12345678901234567890" in
     B.mul x x);
  check_b "by zero" "0" (B.mul (B.of_int 12345) B.zero);
  check_b "signs" "-6" (B.mul (B.of_int 2) (B.of_int (-3)))

let test_bigint_divmod () =
  let q, r = B.divmod (B.of_int 17) (B.of_int 5) in
  check_b "q" "3" q;
  check_b "r" "2" r;
  let q, r = B.divmod (B.of_int (-17)) (B.of_int 5) in
  check_b "q neg" "-3" q;
  check_b "r neg" "-2" r;
  let q, r = B.divmod (B.of_int 17) (B.of_int (-5)) in
  check_b "q negdiv" "-3" q;
  check_b "r negdiv" "2" r;
  let big = B.of_string "123456789012345678901234567890" in
  let q, r = B.divmod big (B.of_string "9876543210") in
  check_b "big q" "12499999887343749990" q;
  check_b "big r" "1562499990" r;
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (B.divmod B.one B.zero))

let test_bigint_gcd () =
  check_b "gcd" "6" (B.gcd (B.of_int 48) (B.of_int 18));
  check_b "gcd neg" "6" (B.gcd (B.of_int (-48)) (B.of_int 18));
  check_b "gcd zero" "5" (B.gcd B.zero (B.of_int 5));
  check_b "coprime" "1" (B.gcd (B.of_int 35) (B.of_int 64))

let test_bigint_pow () =
  check_b "2^100" "1267650600228229401496703205376" (B.pow B.two 100);
  check_b "x^0" "1" (B.pow (B.of_int 999) 0);
  check_b "0^5" "0" (B.pow B.zero 5)

let test_bigint_shift () =
  check_b "shl" "1024" (B.shift_left B.one 10);
  check_b "shl big" (B.to_string (B.pow B.two 100)) (B.shift_left B.one 100);
  check_b "shr" "1" (B.shift_right (B.of_int 1024) 10);
  check_b "shr to zero" "0" (B.shift_right (B.of_int 3) 10)

let test_bigint_string () =
  check_b "of_string" "123456789" (B.of_string "123456789");
  check_b "of_string neg" "-987" (B.of_string "-987");
  check_b "of_string plus" "987" (B.of_string "+987");
  check_b "of_string underscores" "1000000" (B.of_string "1_000_000");
  Alcotest.check_raises "empty" (Invalid_argument "Bigint.of_string: empty string")
    (fun () -> ignore (B.of_string ""));
  Alcotest.check_raises "junk" (Invalid_argument "Bigint.of_string: invalid character")
    (fun () -> ignore (B.of_string "12a3"))

let test_bigint_compare () =
  Alcotest.(check bool) "lt" true (B.compare (B.of_int 3) (B.of_int 5) < 0);
  Alcotest.(check bool) "neg lt pos" true (B.compare (B.of_int (-1)) B.zero < 0);
  Alcotest.(check bool) "neg order" true (B.compare (B.of_int (-5)) (B.of_int (-3)) < 0);
  Alcotest.(check bool) "equal" true (B.equal (B.of_int 7) (B.of_int 7));
  Alcotest.(check bool) "bit_length 0" true (B.bit_length B.zero = 0);
  Alcotest.(check bool) "bit_length 1" true (B.bit_length B.one = 1);
  Alcotest.(check bool) "bit_length 1024" true (B.bit_length (B.of_int 1024) = 11)

let test_bigint_to_float () =
  Alcotest.(check (float 1e-9)) "to_float" 12345.0 (B.to_float (B.of_int 12345));
  Alcotest.(check (float 1e6)) "to_float big" 1e21 (B.to_float (B.of_string "1000000000000000000000"))

(* ------------------------------------------------------------------ *)
(* Bigint properties                                                   *)
(* ------------------------------------------------------------------ *)

let arb_small_int = QCheck.int_range (-1_000_000_000) 1_000_000_000

(* Arbitrary big integers built from strings of decimal digits. *)
let arb_bigint =
  let gen =
    QCheck.Gen.(
      let* sign = oneofl [ ""; "-" ] in
      let* ndigits = int_range 1 60 in
      let* digits = list_repeat ndigits (int_range 0 9) in
      let s = sign ^ "1" ^ String.concat "" (List.map string_of_int digits) in
      return (B.of_string s))
  in
  QCheck.make ~print:B.to_string gen

let prop_int_roundtrip =
  QCheck.Test.make ~name:"bigint: of_int |> to_int roundtrips" ~count:500 QCheck.int
    (fun n -> B.to_int (B.of_int n) = Some n)

let prop_add_matches_int =
  QCheck.Test.make ~name:"bigint: add matches int add" ~count:500
    (QCheck.pair arb_small_int arb_small_int) (fun (a, b) ->
      B.equal (B.add (B.of_int a) (B.of_int b)) (B.of_int (a + b)))

let prop_mul_matches_int =
  QCheck.Test.make ~name:"bigint: mul matches int mul" ~count:500
    (QCheck.pair arb_small_int arb_small_int) (fun (a, b) ->
      B.equal (B.mul (B.of_int a) (B.of_int b)) (B.of_int (a * b)))

let prop_string_roundtrip =
  QCheck.Test.make ~name:"bigint: to_string |> of_string roundtrips" ~count:300 arb_bigint
    (fun x -> B.equal x (B.of_string (B.to_string x)))

let prop_add_comm =
  QCheck.Test.make ~name:"bigint: addition commutes" ~count:300
    (QCheck.pair arb_bigint arb_bigint) (fun (a, b) -> B.equal (B.add a b) (B.add b a))

let prop_add_assoc =
  QCheck.Test.make ~name:"bigint: addition associates" ~count:300
    (QCheck.triple arb_bigint arb_bigint arb_bigint) (fun (a, b, c) ->
      B.equal (B.add a (B.add b c)) (B.add (B.add a b) c))

let prop_mul_distributes =
  QCheck.Test.make ~name:"bigint: mul distributes over add" ~count:300
    (QCheck.triple arb_bigint arb_bigint arb_bigint) (fun (a, b, c) ->
      B.equal (B.mul a (B.add b c)) (B.add (B.mul a b) (B.mul a c)))

let prop_divmod_invariant =
  QCheck.Test.make ~name:"bigint: a = q*b + r with |r| < |b|" ~count:300
    (QCheck.pair arb_bigint arb_bigint) (fun (a, b) ->
      QCheck.assume (not (B.is_zero b));
      let q, r = B.divmod a b in
      B.equal a (B.add (B.mul q b) r)
      && B.compare (B.abs r) (B.abs b) < 0
      && (B.is_zero r || B.sign r = B.sign a))

let prop_gcd_divides =
  QCheck.Test.make ~name:"bigint: gcd divides both arguments" ~count:200
    (QCheck.pair arb_bigint arb_bigint) (fun (a, b) ->
      QCheck.assume (not (B.is_zero a) || not (B.is_zero b));
      let g = B.gcd a b in
      B.is_zero (B.rem a g) && B.is_zero (B.rem b g))

let prop_shift_left_is_mul_pow2 =
  QCheck.Test.make ~name:"bigint: shift_left k = mul by 2^k" ~count:200
    (QCheck.pair arb_bigint (QCheck.int_range 0 80)) (fun (x, k) ->
      B.equal (B.shift_left x k) (B.mul x (B.pow B.two k)))

(* Huge operands exercise the Karatsuba path (threshold = 32 limbs, i.e.
   roughly 150 decimal digits). *)
let arb_huge_bigint =
  let gen =
    QCheck.Gen.(
      let* sign = oneofl [ ""; "-" ] in
      let* ndigits = int_range 150 900 in
      let* digits = list_repeat ndigits (int_range 0 9) in
      return (B.of_string (sign ^ "1" ^ String.concat "" (List.map string_of_int digits))))
  in
  QCheck.make ~print:B.to_string gen

let prop_karatsuba_matches_schoolbook =
  QCheck.Test.make ~name:"bigint: karatsuba = schoolbook on huge operands" ~count:60
    (QCheck.pair arb_huge_bigint arb_huge_bigint) (fun (a, b) ->
      B.equal (B.mul a b) (B.mul_schoolbook a b))

let prop_karatsuba_uneven_sizes =
  QCheck.Test.make ~name:"bigint: karatsuba handles very uneven operand sizes" ~count:60
    (QCheck.pair arb_huge_bigint arb_bigint) (fun (a, b) ->
      B.equal (B.mul a b) (B.mul_schoolbook a b))

let prop_sub_antisym =
  QCheck.Test.make ~name:"bigint: a-b = -(b-a)" ~count:300
    (QCheck.pair arb_bigint arb_bigint) (fun (a, b) ->
      B.equal (B.sub a b) (B.neg (B.sub b a)))

(* ------------------------------------------------------------------ *)
(* Rat unit tests                                                      *)
(* ------------------------------------------------------------------ *)

let check_r msg expected actual = Alcotest.(check string) msg expected (R.to_string actual)

let test_rat_normalisation () =
  check_r "reduces" "1/2" (R.of_ints 2 4);
  check_r "sign in num" "-1/2" (R.of_ints 1 (-2));
  check_r "double negative" "1/2" (R.of_ints (-1) (-2));
  check_r "zero" "0" (R.of_ints 0 17);
  check_r "integer" "5" (R.of_ints 10 2);
  Alcotest.check_raises "zero den" Division_by_zero (fun () -> ignore (R.of_ints 1 0))

let test_rat_arith () =
  check_r "add" "5/6" (R.add (R.of_ints 1 2) (R.of_ints 1 3));
  check_r "sub" "1/6" (R.sub (R.of_ints 1 2) (R.of_ints 1 3));
  check_r "mul" "1/6" (R.mul (R.of_ints 1 2) (R.of_ints 1 3));
  check_r "div" "3/2" (R.div (R.of_ints 1 2) (R.of_ints 1 3));
  check_r "inv" "-3/2" (R.inv (R.of_ints (-2) 3));
  Alcotest.check_raises "inv zero" Division_by_zero (fun () -> ignore (R.inv R.zero))

let test_rat_compare () =
  Alcotest.(check bool) "1/3 < 1/2" true (R.compare (R.of_ints 1 3) (R.of_ints 1 2) < 0);
  Alcotest.(check bool) "equal" true (R.equal (R.of_ints 2 4) (R.of_ints 1 2));
  Alcotest.(check bool) "neg < pos" true (R.compare (R.of_ints (-1) 2) R.zero < 0)

let test_rat_of_float () =
  check_r "0.5" "1/2" (R.of_float 0.5);
  check_r "0.25" "1/4" (R.of_float 0.25);
  check_r "-1.5" "-3/2" (R.of_float (-1.5));
  check_r "3.0" "3" (R.of_float 3.0);
  check_r "0.0" "0" (R.of_float 0.0);
  Alcotest.(check (float 1e-15)) "roundtrip 0.1" 0.1 (R.to_float (R.of_float 0.1));
  Alcotest.check_raises "nan" (Invalid_argument "Rat.of_float: not finite") (fun () ->
      ignore (R.of_float Float.nan))

(* to_float must stay accurate when numerator and denominator individually
   overflow the float range (thousands of bits): the naive num/.den would
   yield inf/inf = nan. *)
let test_rat_to_float_huge () =
  let pow r k = R.make (B.pow (R.num r) k) (B.pow (R.den r) k) in
  let float_pow f k =
    let acc = ref 1.0 in
    for _ = 1 to k do
      acc := !acc *. f
    done;
    !acc
  in
  (* (1/3)^150 ~ 1e-72: both sides huge, value tiny but representable. *)
  let small = R.to_float (pow (R.of_ints 1 3) 150) in
  let expect = float_pow (1.0 /. 3.0) 150 in
  Alcotest.(check bool) "tiny quotient" true
    (Float.abs (small -. expect) <= 1e-12 *. expect);
  (* (10/3)^150 ~ 1e78: huge on both sides, quotient large. *)
  let big = R.to_float (pow (R.of_ints 10 3) 150) in
  let expect = float_pow (10.0 /. 3.0) 150 in
  Alcotest.(check bool) "large quotient" true
    (Float.abs (big -. expect) <= 1e-12 *. expect);
  (* Genuine overflow / underflow must saturate, not go nan. *)
  Alcotest.(check bool) "overflow is inf" true
    (R.to_float (pow (R.of_ints 10 3) 2000) = Float.infinity);
  Alcotest.(check bool) "underflow is zero" true
    (R.to_float (pow (R.of_ints 3 10) 2000) = 0.0);
  Alcotest.(check bool) "negative sign kept" true
    (R.to_float (pow (R.of_ints (-10) 3) 151) < 0.0)

let test_rat_string () =
  check_r "parse frac" "7/3" (R.of_string "7/3");
  check_r "parse int" "-4" (R.of_string "-4");
  check_r "parse unnormalised" "1/2" (R.of_string "2/4")

(* ------------------------------------------------------------------ *)
(* Rat properties                                                      *)
(* ------------------------------------------------------------------ *)

let arb_rat =
  let gen =
    QCheck.Gen.(
      let* num = int_range (-10000) 10000 in
      let* den = int_range 1 10000 in
      return (R.of_ints num den))
  in
  QCheck.make ~print:R.to_string gen

let prop_rat_field_add_inverse =
  QCheck.Test.make ~name:"rat: x + (-x) = 0" ~count:300 arb_rat (fun x ->
      R.is_zero (R.add x (R.neg x)))

let prop_rat_mul_inverse =
  QCheck.Test.make ~name:"rat: x * 1/x = 1" ~count:300 arb_rat (fun x ->
      QCheck.assume (not (R.is_zero x));
      R.equal (R.mul x (R.inv x)) R.one)

let prop_rat_add_assoc =
  QCheck.Test.make ~name:"rat: addition associates exactly" ~count:300
    (QCheck.triple arb_rat arb_rat arb_rat) (fun (a, b, c) ->
      R.equal (R.add a (R.add b c)) (R.add (R.add a b) c))

let prop_rat_distrib =
  QCheck.Test.make ~name:"rat: distributivity" ~count:300
    (QCheck.triple arb_rat arb_rat arb_rat) (fun (a, b, c) ->
      R.equal (R.mul a (R.add b c)) (R.add (R.mul a b) (R.mul a c)))

let prop_rat_compare_consistent_with_float =
  QCheck.Test.make ~name:"rat: compare agrees with float compare when far apart" ~count:300
    (QCheck.pair arb_rat arb_rat) (fun (a, b) ->
      let fa = R.to_float a and fb = R.to_float b in
      QCheck.assume (Float.abs (fa -. fb) > 1e-6);
      Stdlib.compare fa fb = R.compare a b)

let prop_rat_float_roundtrip =
  QCheck.Test.make ~name:"rat: of_float exactly roundtrips" ~count:300
    (QCheck.float_range (-1e6) 1e6) (fun f ->
      Float.equal (R.to_float (R.of_float f)) f)

(* ------------------------------------------------------------------ *)
(* Kahan and Stats                                                     *)
(* ------------------------------------------------------------------ *)

let test_kahan_basic () =
  Alcotest.(check (float 0.0)) "empty" 0.0 (Kahan.sum [||]);
  Alcotest.(check (float 1e-12)) "simple" 6.0 (Kahan.sum [| 1.0; 2.0; 3.0 |]);
  (* The classic case where naive summation loses the small terms. *)
  let xs = Array.make 10_000 0.1 in
  Alcotest.(check (float 1e-9)) "accumulated 0.1" 1000.0 (Kahan.sum xs)

let test_kahan_compensation () =
  (* 1 + 1e16 - 1e16 = 1 exactly with compensation. *)
  let acc = Kahan.create () in
  Kahan.add acc 1.0;
  Kahan.add acc 1e16;
  Kahan.add acc (-1e16);
  Alcotest.(check (float 0.0)) "catastrophic cancellation" 1.0 (Kahan.total acc);
  Kahan.reset acc;
  Alcotest.(check (float 0.0)) "reset" 0.0 (Kahan.total acc)

let test_kahan_sum_by () =
  Alcotest.(check (float 1e-12)) "sum_by" 14.0
    (Kahan.sum_by (fun x -> x *. x) [| 1.0; 2.0; 3.0 |])

let test_stats_basic () =
  let xs = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  Alcotest.(check (float 1e-12)) "mean" 5.0 (Stats.mean xs);
  Alcotest.(check (float 1e-12)) "population sd" 2.0 (Stats.population_stddev xs);
  Alcotest.(check (float 1e-12)) "median" 4.5 (Stats.median xs);
  Alcotest.(check (float 1e-12)) "min" 2.0 (Stats.min xs);
  Alcotest.(check (float 1e-12)) "max" 9.0 (Stats.max xs);
  Alcotest.(check (float 1e-12)) "q0" 2.0 (Stats.quantile 0.0 xs);
  Alcotest.(check (float 1e-12)) "q1" 9.0 (Stats.quantile 1.0 xs)

let test_stats_singleton () =
  let xs = [| 42.0 |] in
  Alcotest.(check (float 0.0)) "variance" 0.0 (Stats.variance xs);
  Alcotest.(check (float 0.0)) "ci95" 0.0 (Stats.ci95 xs);
  Alcotest.(check (float 0.0)) "median" 42.0 (Stats.median xs)

let test_stats_empty () =
  Alcotest.check_raises "mean" (Invalid_argument "Stats.mean: empty sample") (fun () ->
      ignore (Stats.mean [||]))

let test_stats_summary () =
  let s = Stats.summarize [| 1.0; 2.0; 3.0 |] in
  Alcotest.(check int) "n" 3 s.Stats.n;
  Alcotest.(check (float 1e-12)) "mean" 2.0 s.Stats.mean;
  Alcotest.(check (float 1e-12)) "stddev" 1.0 s.Stats.stddev

let prop_stats_mean_bounds =
  QCheck.Test.make ~name:"stats: min <= mean <= max" ~count:300
    QCheck.(array_of_size Gen.(int_range 1 50) (float_range (-1e3) 1e3))
    (fun xs ->
      let m = Stats.mean xs in
      Stats.min xs -. 1e-9 <= m && m <= Stats.max xs +. 1e-9)

let prop_stats_quantile_monotone =
  QCheck.Test.make ~name:"stats: quantile is monotone in q" ~count:300
    QCheck.(
      pair
        (array_of_size Gen.(int_range 1 50) (float_range (-1e3) 1e3))
        (pair (float_range 0.0 1.0) (float_range 0.0 1.0)))
    (fun (xs, (q1, q2)) ->
      let lo = Float.min q1 q2 and hi = Float.max q1 q2 in
      Stats.quantile lo xs <= Stats.quantile hi xs +. 1e-9)

(* ------------------------------------------------------------------ *)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "mf_numeric"
    [
      ( "bigint",
        [
          Alcotest.test_case "of_int" `Quick test_bigint_of_int;
          Alcotest.test_case "to_int" `Quick test_bigint_to_int;
          Alcotest.test_case "add/sub" `Quick test_bigint_add_sub;
          Alcotest.test_case "mul" `Quick test_bigint_mul;
          Alcotest.test_case "divmod" `Quick test_bigint_divmod;
          Alcotest.test_case "gcd" `Quick test_bigint_gcd;
          Alcotest.test_case "pow" `Quick test_bigint_pow;
          Alcotest.test_case "shift" `Quick test_bigint_shift;
          Alcotest.test_case "strings" `Quick test_bigint_string;
          Alcotest.test_case "compare" `Quick test_bigint_compare;
          Alcotest.test_case "to_float" `Quick test_bigint_to_float;
        ] );
      qsuite "bigint-props"
        [
          prop_int_roundtrip;
          prop_add_matches_int;
          prop_mul_matches_int;
          prop_string_roundtrip;
          prop_add_comm;
          prop_add_assoc;
          prop_mul_distributes;
          prop_divmod_invariant;
          prop_gcd_divides;
          prop_shift_left_is_mul_pow2;
          prop_karatsuba_matches_schoolbook;
          prop_karatsuba_uneven_sizes;
          prop_sub_antisym;
        ];
      ( "rat",
        [
          Alcotest.test_case "normalisation" `Quick test_rat_normalisation;
          Alcotest.test_case "arithmetic" `Quick test_rat_arith;
          Alcotest.test_case "compare" `Quick test_rat_compare;
          Alcotest.test_case "of_float" `Quick test_rat_of_float;
          Alcotest.test_case "to_float huge" `Quick test_rat_to_float_huge;
          Alcotest.test_case "strings" `Quick test_rat_string;
        ] );
      qsuite "rat-props"
        [
          prop_rat_field_add_inverse;
          prop_rat_mul_inverse;
          prop_rat_add_assoc;
          prop_rat_distrib;
          prop_rat_compare_consistent_with_float;
          prop_rat_float_roundtrip;
        ];
      ( "kahan",
        [
          Alcotest.test_case "basic" `Quick test_kahan_basic;
          Alcotest.test_case "compensation" `Quick test_kahan_compensation;
          Alcotest.test_case "sum_by" `Quick test_kahan_sum_by;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basic" `Quick test_stats_basic;
          Alcotest.test_case "singleton" `Quick test_stats_singleton;
          Alcotest.test_case "empty" `Quick test_stats_empty;
          Alcotest.test_case "summary" `Quick test_stats_summary;
        ] );
      qsuite "stats-props" [ prop_stats_mean_bounds; prop_stats_quantile_monotone ];
    ]
