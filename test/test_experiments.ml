(* Tests for mf_experiments: runner determinism, figure structure, report
   rendering, summary factors, and the qualitative claims of Section 7 on
   reduced replicate counts. *)

module Runner = Mf_experiments.Runner
module Figures = Mf_experiments.Figures
module Report = Mf_experiments.Report
module Summary = Mf_experiments.Summary
module Registry = Mf_heuristics.Registry

(* ------------------------------------------------------------------ *)
(* Runner                                                              *)
(* ------------------------------------------------------------------ *)

let test_derive_seed_deterministic () =
  let a = Runner.derive_seed ~id:"figX" ~x:10 ~rep:3 in
  let b = Runner.derive_seed ~id:"figX" ~x:10 ~rep:3 in
  Alcotest.(check int) "same inputs same seed" a b;
  Alcotest.(check bool) "different rep differs" true
    (a <> Runner.derive_seed ~id:"figX" ~x:10 ~rep:4);
  Alcotest.(check bool) "different figure differs" true
    (a <> Runner.derive_seed ~id:"figY" ~x:10 ~rep:3);
  Alcotest.(check bool) "non-negative" true (a >= 0)

(* The previous Hashtbl.hash-based derivation folded (id, x, rep) to 30
   bits and collided on grids of this size, silently running the same
   instance for distinct replicates.  The Splitmix64 absorption must give
   every (figure id, x, rep) of every paper figure a distinct seed. *)
let test_derive_seed_no_collisions () =
  let range lo hi step = List.init (((hi - lo) / step) + 1) (fun i -> lo + (i * step)) in
  (* The exact grids of Figures.fig5..fig12 (fig11 reuses fig10's runs). *)
  let grids =
    [
      ("fig5", range 50 150 10, 30);
      ("fig6", range 10 100 10, 30);
      ("fig7", range 100 200 10, 30);
      ("fig8", range 10 100 10, 30);
      ("fig9", range 20 100 10, 100);
      ("fig10", range 2 15 1, 30);
      ("fig12", range 5 20 1, 30);
    ]
  in
  let seen = Hashtbl.create 4096 in
  List.iter
    (fun (id, xs, replicates) ->
      List.iter
        (fun x ->
          for rep = 0 to replicates - 1 do
            let seed = Runner.derive_seed ~id ~x ~rep in
            (match Hashtbl.find_opt seen seed with
            | Some other ->
              Alcotest.failf "seed collision: (%s, %d, %d) vs %s" id x rep other
            | None -> ());
            Hashtbl.add seen seed (Printf.sprintf "(%s, %d, %d)" id x rep)
          done)
        xs)
    grids;
  Alcotest.(check bool) "covered the full grid" true (Hashtbl.length seen > 3000)

let tiny_figure () =
  Runner.run ~id:"tiny" ~title:"tiny" ~x_label:"n" ~xs:[ 4; 6 ] ~replicates:3
    ~gen:(fun ~x ~seed ->
      Mf_workload.Gen.chain (Mf_prng.Rng.create seed)
        (Mf_workload.Gen.default ~tasks:x ~types:2 ~machines:3))
    ~algos:[ Runner.heuristic Registry.H4w; Runner.heuristic Registry.H1 ]
    ()

let test_runner_structure () =
  let fig = tiny_figure () in
  Alcotest.(check int) "two points" 2 (List.length fig.Runner.points);
  List.iter
    (fun (pt : Runner.point) ->
      Alcotest.(check int) "two cells" 2 (List.length pt.Runner.cells);
      List.iter
        (fun (c : Runner.cell) ->
          Alcotest.(check int) "trials" 3 c.Runner.trials;
          Alcotest.(check int) "all succeed" 3 c.Runner.successes;
          Alcotest.(check bool) "mean positive" true (Runner.mean c > 0.0))
        pt.Runner.cells)
    fig.Runner.points

let test_runner_reproducible () =
  let a = tiny_figure () and b = tiny_figure () in
  List.iter2
    (fun (pa : Runner.point) (pb : Runner.point) ->
      List.iter2
        (fun (ca : Runner.cell) (cb : Runner.cell) ->
          Alcotest.(check (array (float 0.0)))
            "identical raw values" (Runner.successful ca) (Runner.successful cb))
        pa.Runner.cells pb.Runner.cells)
    a.Runner.points b.Runner.points

let test_runner_failure_accounting () =
  let flaky =
    {
      Runner.label = "flaky";
      Runner.solve = (fun inst ~seed:_ -> if Mf_core.Instance.task_count inst > 4 then None else Some 1.0);
    }
  in
  let fig =
    Runner.run ~id:"flaky" ~title:"flaky" ~x_label:"n" ~xs:[ 4; 6 ] ~replicates:2
      ~gen:(fun ~x ~seed ->
        Mf_workload.Gen.chain (Mf_prng.Rng.create seed)
          (Mf_workload.Gen.default ~tasks:x ~types:2 ~machines:3))
      ~algos:[ flaky ]
      ()
  in
  match fig.Runner.points with
  | [ p4; p6 ] ->
    let c4 = List.hd p4.Runner.cells and c6 = List.hd p6.Runner.cells in
    Alcotest.(check int) "small succeeds" 2 c4.Runner.successes;
    Alcotest.(check int) "large fails" 0 c6.Runner.successes;
    Alcotest.(check bool) "nan mean on empty" true (Float.is_nan (Runner.mean c6))
  | _ -> Alcotest.fail "expected two points"

(* ------------------------------------------------------------------ *)
(* Report                                                              *)
(* ------------------------------------------------------------------ *)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let test_report_rendering () =
  let fig = tiny_figure () in
  let text = Report.to_string fig in
  Alcotest.(check bool) "has title" true (contains ~needle:"TINY" text);
  Alcotest.(check bool) "has H4w column" true (contains ~needle:"H4w" text);
  Alcotest.(check bool) "has x row" true (contains ~needle:"4" text)

let test_report_csv () =
  let fig = tiny_figure () in
  let csv = Format.asprintf "@[<v>%a@]" Report.pp_csv fig in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "header + 2 rows" 3 (List.length lines);
  Alcotest.(check string) "header" "x,H4w,H1" (List.hd lines)

(* ------------------------------------------------------------------ *)
(* Figures: structure and qualitative claims (small replicates)        *)
(* ------------------------------------------------------------------ *)

let mean_of fig label =
  let total = ref 0.0 and count = ref 0 in
  List.iter
    (fun (pt : Runner.point) ->
      match Runner.find_cell pt label with
      | Some c when c.Runner.successes > 0 ->
        total := !total +. Runner.mean c;
        incr count
      | _ -> ())
    fig.Runner.points;
  !total /. float_of_int !count

let test_fig5_h1_h4f_dominated () =
  let fig = Figures.fig5 ~replicates:3 () in
  Alcotest.(check int) "11 points" 11 (List.length fig.Runner.points);
  (* The paper's reading of Fig. 5: H1 and H4f are not competitive. *)
  let h1 = mean_of fig "H1" and h4w = mean_of fig "H4w" and h4f = mean_of fig "H4f" in
  Alcotest.(check bool) (Printf.sprintf "H1 %.0f > H4w %.0f" h1 h4w) true (h1 > h4w);
  Alcotest.(check bool) (Printf.sprintf "H4f %.0f > H4w %.0f" h4f h4w) true (h4f > h4w)

let test_fig9_heuristics_above_optimal () =
  let fig = Figures.fig9 ~replicates:3 () in
  List.iter
    (fun (pt : Runner.point) ->
      let oto =
        match Runner.find_cell pt "OtO" with Some c -> Runner.mean c | None -> nan
      in
      List.iter
        (fun (c : Runner.cell) ->
          if c.Runner.label <> "OtO" then
            Alcotest.(check bool)
              (Printf.sprintf "%s >= OtO at p=%d" c.Runner.label pt.Runner.x)
              true
              (Runner.mean c >= oto -. 1e-6))
        pt.Runner.cells)
    fig.Runner.points

let test_fig10_exact_below_heuristics () =
  let fig = Figures.fig10 ~replicates:3 () in
  List.iter
    (fun (pt : Runner.point) ->
      let exact =
        match Runner.find_cell pt "MIP" with Some c -> Runner.mean c | None -> nan
      in
      List.iter
        (fun (c : Runner.cell) ->
          if c.Runner.label <> "MIP" then
            Alcotest.(check bool)
              (Printf.sprintf "%s >= MIP at n=%d" c.Runner.label pt.Runner.x)
              true
              (Runner.mean c >= exact -. 1e-6))
        pt.Runner.cells)
    fig.Runner.points

let test_fig11_ratios_at_least_one () =
  let fig = Figures.fig11 ~replicates:3 () in
  List.iter
    (fun (pt : Runner.point) ->
      List.iter
        (fun (c : Runner.cell) ->
          Array.iter
            (function
              | Some ratio ->
                Alcotest.(check bool)
                  (Printf.sprintf "ratio %.3f >= 1 for %s" ratio c.Runner.label)
                  true (ratio >= 1.0 -. 1e-6)
              | None -> ())
            c.Runner.values)
        pt.Runner.cells)
    fig.Runner.points

let test_fig12_budget_starves_exact () =
  (* With a minuscule budget the exact column must lose replicates at large
     n, exactly like the paper's MIP beyond 15 tasks. *)
  let fig = Figures.fig12 ~replicates:2 ~node_budget:2_000 () in
  let last = List.nth fig.Runner.points (List.length fig.Runner.points - 1) in
  match Runner.find_cell last "MIP" with
  | Some c -> Alcotest.(check bool) "exact loses replicates" true (c.Runner.successes < c.Runner.trials)
  | None -> Alcotest.fail "MIP column missing"

let test_summary_factors () =
  let fig = Figures.fig10 ~replicates:3 () in
  let factors = Summary.factors_vs fig ~reference:"MIP" in
  Alcotest.(check int) "six entries" 6 (List.length factors);
  List.iter
    (fun (label, factor, count) ->
      Alcotest.(check bool) (label ^ " factor >= 1") true (factor >= 1.0 -. 1e-6);
      Alcotest.(check bool) (label ^ " paired count > 0") true (count > 0))
    factors;
  (* Factors are sorted ascending. *)
  let rec sorted = function
    | (_, a, _) :: ((_, b, _) :: _ as rest) -> a <= b && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted" true (sorted factors)

let test_all_figures_listed () =
  let all = Figures.all ~replicates:1 () in
  Alcotest.(check (list string)) "ids"
    [ "fig5"; "fig6"; "fig7"; "fig8"; "fig9"; "fig10"; "fig11"; "fig12"; "dynamic" ]
    (List.map fst all)

(* ------------------------------------------------------------------ *)
(* Plot export                                                         *)
(* ------------------------------------------------------------------ *)

module Plot = Mf_experiments.Plot

let test_plot_dat () =
  let fig = tiny_figure () in
  let dat = Plot.dat_contents fig in
  let lines = String.split_on_char '\n' (String.trim dat) in
  (* 2 comment lines + 2 data rows. *)
  Alcotest.(check int) "line count" 4 (List.length lines);
  Alcotest.(check bool) "data row starts with x" true
    (String.length (List.nth lines 2) > 0 && (List.nth lines 2).[0] = '4')

let test_plot_gp () =
  let fig = tiny_figure () in
  let gp = Plot.gp_contents fig in
  Alcotest.(check bool) "mentions dat file" true (contains ~needle:"tiny.dat" gp);
  Alcotest.(check bool) "has plot command" true (contains ~needle:"plot " gp);
  Alcotest.(check bool) "titles both series" true
    (contains ~needle:"H4w" gp && contains ~needle:"H1" gp)

let test_plot_write_files () =
  let fig = tiny_figure () in
  let dir = Filename.temp_file "mfplot" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      let dat, gp = Plot.write_files ~dir fig in
      Alcotest.(check bool) "dat exists" true (Sys.file_exists dat);
      Alcotest.(check bool) "gp exists" true (Sys.file_exists gp))

let test_plot_missing_values () =
  let flaky =
    { Runner.label = "flaky"; Runner.solve = (fun _ ~seed:_ -> None) }
  in
  let fig =
    Runner.run ~id:"missing" ~title:"missing" ~x_label:"n" ~xs:[ 3 ] ~replicates:2
      ~gen:(fun ~x ~seed ->
        Mf_workload.Gen.chain (Mf_prng.Rng.create seed)
          (Mf_workload.Gen.default ~tasks:x ~types:1 ~machines:2))
      ~algos:[ flaky ]
      ()
  in
  Alcotest.(check bool) "missing marker" true (contains ~needle:"?" (Plot.dat_contents fig))

let () =
  Alcotest.run "mf_experiments"
    [
      ( "runner",
        [
          Alcotest.test_case "seed derivation" `Quick test_derive_seed_deterministic;
          Alcotest.test_case "seed collisions" `Quick test_derive_seed_no_collisions;
          Alcotest.test_case "structure" `Quick test_runner_structure;
          Alcotest.test_case "reproducible" `Quick test_runner_reproducible;
          Alcotest.test_case "failure accounting" `Quick test_runner_failure_accounting;
        ] );
      ( "report",
        [
          Alcotest.test_case "rendering" `Quick test_report_rendering;
          Alcotest.test_case "csv" `Quick test_report_csv;
        ] );
      ( "plot",
        [
          Alcotest.test_case "dat" `Quick test_plot_dat;
          Alcotest.test_case "gp" `Quick test_plot_gp;
          Alcotest.test_case "write files" `Quick test_plot_write_files;
          Alcotest.test_case "missing values" `Quick test_plot_missing_values;
        ] );
      ( "figures",
        [
          Alcotest.test_case "fig5 domination" `Slow test_fig5_h1_h4f_dominated;
          Alcotest.test_case "fig9 oto optimal" `Slow test_fig9_heuristics_above_optimal;
          Alcotest.test_case "fig10 exact optimal" `Slow test_fig10_exact_below_heuristics;
          Alcotest.test_case "fig11 ratios" `Slow test_fig11_ratios_at_least_one;
          Alcotest.test_case "fig12 budget" `Slow test_fig12_budget_starves_exact;
          Alcotest.test_case "summary factors" `Slow test_summary_factors;
          Alcotest.test_case "catalogue" `Quick test_all_figures_listed;
        ] );
    ]
