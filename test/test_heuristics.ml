(* Tests for mf_heuristics: engine invariants, the six paper heuristics,
   and the local-search extension, cross-checked against exact solvers. *)

module Instance = Mf_core.Instance
module Workflow = Mf_core.Workflow
module Mapping = Mf_core.Mapping
module Period = Mf_core.Period
module Engine = Mf_heuristics.Engine
module Registry = Mf_heuristics.Registry
module Local_search = Mf_heuristics.Local_search
module Gen = Mf_workload.Gen
module Rng = Mf_prng.Rng

let make_instance ?(seed = 1) ~n ~p ~m () =
  Gen.chain (Rng.create seed) (Gen.default ~tasks:n ~types:p ~machines:m)

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

let test_engine_rejects_small_platform () =
  let inst = make_instance ~n:5 ~p:3 ~m:2 () in
  Alcotest.check_raises "m < p"
    (Invalid_argument "Engine: fewer machines than task types - no specialized mapping exists")
    (fun () -> ignore (Engine.create inst))

let test_engine_x_candidate () =
  let wf = Workflow.chain ~types:[| 0; 1 |] in
  let inst =
    Instance.create ~workflow:wf ~machines:2
      ~w:[| [| 100.0; 100.0 |]; [| 100.0; 100.0 |] |]
      ~f:[| [| 0.5; 0.0 |]; [| 0.2; 0.5 |] |]
  in
  let eng = Engine.create inst in
  (* Backward: task 1 first. x_1 on M0 = 1/(1-0.2) = 1.25. *)
  Alcotest.(check (float 1e-12)) "x cand" 1.25 (Engine.x_candidate eng ~task:1 ~machine:0);
  Engine.assign eng ~task:1 ~machine:0;
  Alcotest.(check (float 1e-9)) "load" 125.0 (Engine.load eng 0);
  (* x_0 on M0 = 1.25 / (1-0.5) = 2.5. *)
  Alcotest.(check (float 1e-12)) "x chained" 2.5 (Engine.x_candidate eng ~task:0 ~machine:0)

let test_engine_dedication () =
  let inst = make_instance ~n:6 ~p:2 ~m:3 () in
  let eng = Engine.create inst in
  let order = Engine.order eng in
  let first = order.(0) in
  Engine.assign eng ~task:first ~machine:0;
  Alcotest.(check (option int)) "dedicated" (Some (Workflow.ttype (Instance.workflow inst) first))
    (Engine.dedicated eng 0);
  Alcotest.(check int) "free count" 2 (Engine.free_machines eng);
  Alcotest.(check int) "types to go" 1 (Engine.types_to_go eng);
  Engine.reset eng;
  Alcotest.(check int) "reset free" 3 (Engine.free_machines eng);
  Alcotest.(check (option int)) "reset dedicated" None (Engine.dedicated eng 0)

let test_engine_reservation () =
  (* 2 machines, 2 types: the first assignment must not let the second type
     starve, so opening a second group for the first type is forbidden. *)
  let wf = Workflow.chain ~types:[| 0; 0; 1 |] in
  let inst =
    Instance.create ~workflow:wf ~machines:2
      ~w:(Array.make_matrix 3 2 100.0)
      ~f:(Array.make_matrix 3 2 0.01)
  in
  let eng = Engine.create inst in
  (* Backward order: task 2 (type 1) first. *)
  Engine.assign eng ~task:2 ~machine:0;
  (* Task 1 has type 0, uncovered: machine 1 eligible, machine 0 not. *)
  Alcotest.(check bool) "other type machine blocked" false
    (Engine.eligible eng ~task:1 ~machine:0);
  Alcotest.(check bool) "fresh machine ok" true (Engine.eligible eng ~task:1 ~machine:1);
  Engine.assign eng ~task:1 ~machine:1;
  (* Task 0, type 0: only machine 1 remains eligible. *)
  Alcotest.(check (list int)) "eligible" [ 1 ] (Engine.eligible_machines eng ~task:0)

let test_engine_assign_errors () =
  let inst = make_instance ~n:4 ~p:2 ~m:4 () in
  let eng = Engine.create inst in
  let order = Engine.order eng in
  Alcotest.check_raises "successor not assigned"
    (Invalid_argument "Engine: successor not yet assigned (backward order violated)")
    (fun () -> ignore (Engine.x_candidate eng ~task:0 ~machine:0));
  Engine.assign eng ~task:order.(0) ~machine:0;
  Alcotest.check_raises "double assign"
    (Invalid_argument "Engine.assign: task already assigned") (fun () ->
      Engine.assign eng ~task:order.(0) ~machine:0);
  Alcotest.check_raises "incomplete mapping"
    (Invalid_argument "Engine.mapping: incomplete assignment") (fun () ->
      ignore (Engine.mapping eng))

(* ------------------------------------------------------------------ *)
(* Heuristics: validity and quality                                    *)
(* ------------------------------------------------------------------ *)

let test_all_heuristics_produce_specialized_mappings () =
  let inst = make_instance ~n:20 ~p:4 ~m:8 () in
  List.iter
    (fun h ->
      let mp = Registry.solve h inst in
      Alcotest.(check bool)
        (Registry.name h ^ " specialized")
        true
        (Mapping.satisfies inst mp Mapping.Specialized);
      Alcotest.(check bool)
        (Registry.name h ^ " finite period")
        true
        (Float.is_finite (Period.period inst mp)))
    Registry.all

let test_registry_names () =
  Alcotest.(check int) "six heuristics" 6 (List.length Registry.all);
  List.iter
    (fun h ->
      match Registry.of_name (Registry.name h) with
      | Some h' -> Alcotest.(check string) "roundtrip" (Registry.name h) (Registry.name h')
      | None -> Alcotest.fail "name roundtrip failed")
    Registry.all;
  (* of_name is the exact inverse of name over the whole registry — by
     construction now (of_name searches [all] by [name]), pinned here *)
  List.iter
    (fun h ->
      Alcotest.(check bool)
        (Printf.sprintf "of_name (name %s) = %s" (Registry.name h) (Registry.name h))
        true
        (Registry.of_name (Registry.name h) = Some h);
      Alcotest.(check bool) "lowercase accepted" true
        (Registry.of_name (String.lowercase_ascii (Registry.name h)) = Some h);
      Alcotest.(check bool) "whitespace trimmed" true
        (Registry.of_name (" " ^ Registry.name h ^ " ") = Some h))
    Registry.all;
  Alcotest.(check bool) "unknown name" true (Registry.of_name "nope" = None);
  Alcotest.(check bool) "case-insensitive" true (Registry.of_name "h4W" = Some Registry.H4w);
  List.iter
    (fun h ->
      Alcotest.(check bool) "described" true (String.length (Registry.description h) > 0))
    Registry.all

(* best threads one seed uniformly: it equals the explicit minimum over
   per-heuristic solves with that same seed, mapping included. *)
let test_best_threads_seed_uniformly () =
  let inst = make_instance ~n:15 ~p:3 ~m:6 () in
  List.iter
    (fun seed ->
      let mp, p = Registry.best ~seed inst in
      let expected_mp, expected_p =
        List.fold_left
          (fun (bmp, bp) h ->
            let mp = Registry.solve ~seed h inst in
            let p = Period.period inst mp in
            if p < bp then (mp, p) else (bmp, bp))
          (mp, infinity) Registry.all
      in
      Alcotest.(check bool)
        (Printf.sprintf "best period is the min (seed %d): %h vs %h" seed p expected_p)
        true (p = expected_p);
      Alcotest.(check (array int))
        (Printf.sprintf "best mapping achieves it (seed %d)" seed)
        (Mapping.to_array expected_mp) (Mapping.to_array mp))
    [ 0; 1; 42 ];
  (* default seed is the documented constant *)
  let d, _ = Registry.best inst in
  let e, _ = Registry.best ~seed:Registry.default_seed inst in
  Alcotest.(check (array int)) "default seed = default_seed" (Mapping.to_array e)
    (Mapping.to_array d)

let test_h1_deterministic_given_seed () =
  let inst = make_instance ~n:15 ~p:3 ~m:6 () in
  let a = Registry.solve ~seed:5 Registry.H1 inst in
  let b = Registry.solve ~seed:5 Registry.H1 inst in
  Alcotest.(check (array int)) "same seed same mapping" (Mapping.to_array a) (Mapping.to_array b)

let test_heuristics_not_worse_than_upper_bound () =
  let inst = make_instance ~n:25 ~p:5 ~m:10 () in
  let ub = Instance.period_upper_bound inst in
  List.iter
    (fun h ->
      let p = Period.period inst (Registry.solve h inst) in
      Alcotest.(check bool) (Registry.name h ^ " below UB") true (p <= ub))
    Registry.all

(* Regression for the binary-search stopping rule.  The old absolute stop
   (hi - lo > 1.0 ms) never opened the bracket on instances whose period
   upper bound is below ~1 ms, so H2/H3 silently returned the
   unbounded-budget mapping.  Scaling every w by a power of two scales the
   whole computation (bounds, midpoints, loads) bit-for-bit, so with the
   relative stop the searched mapping - and hence the period, rescaled -
   must be identical at both scales. *)
let scale_w inst c =
  let n = Instance.task_count inst and m = Instance.machines inst in
  Instance.create
    ~workflow:(Instance.workflow inst)
    ~machines:m
    ~w:(Array.init n (fun i -> Array.init m (fun u -> c *. Instance.w inst i u)))
    ~f:(Array.init n (fun i -> Array.init m (fun u -> Instance.f inst i u)))

let test_binary_search_scale_invariant () =
  let c = 1.0 /. 16384.0 in
  (* 2^-14: w ~ U[100,1000) lands in [0.006, 0.062) - all below 0.1 ms. *)
  List.iter
    (fun seed ->
      let inst = make_instance ~seed ~n:12 ~p:3 ~m:6 () in
      let tiny = scale_w inst c in
      for i = 0 to Instance.task_count tiny - 1 do
        for u = 0 to Instance.machines tiny - 1 do
          Alcotest.(check bool) "w < 0.1" true (Instance.w tiny i u < 0.1)
        done
      done;
      List.iter
        (fun h ->
          let p_big = Period.period inst (Registry.solve h inst) in
          let p_tiny = Period.period tiny (Registry.solve h tiny) in
          Alcotest.(check (float 1e-9))
            (Printf.sprintf "%s scale-invariant (seed %d)" (Registry.name h) seed)
            p_big
            (p_tiny /. c);
          (* The search must actually tighten the budget below the trivial
             upper bound, not fall back to the unbounded mapping. *)
          Alcotest.(check bool)
            (Printf.sprintf "%s tightens (seed %d)" (Registry.name h) seed)
            true
            (p_tiny < Instance.period_upper_bound tiny))
        [ Registry.H2; Registry.H3 ])
    [ 1; 2; 3; 4; 5 ]

(* On average over instances, H4w must clearly beat the random baseline -
   this is the paper's headline qualitative claim. *)
let test_h4w_beats_h1_on_average () =
  let ratio_sum = ref 0.0 in
  let trials = 20 in
  for seed = 1 to trials do
    let inst = make_instance ~seed ~n:30 ~p:5 ~m:10 () in
    let p_h1 = Period.period inst (Registry.solve ~seed Registry.H1 inst) in
    let p_h4w = Period.period inst (Registry.solve Registry.H4w inst) in
    ratio_sum := !ratio_sum +. (p_h1 /. p_h4w)
  done;
  let avg_ratio = !ratio_sum /. float_of_int trials in
  Alcotest.(check bool)
    (Printf.sprintf "H1/H4w avg ratio %.2f > 1.3" avg_ratio)
    true (avg_ratio > 1.3)

(* Exactness gap: on tiny instances the heuristics must stay within a small
   factor of the brute-force optimum, and never beat it. *)
let test_heuristics_vs_brute_force () =
  for seed = 1 to 10 do
    let inst = make_instance ~seed ~n:6 ~p:2 ~m:3 () in
    let _, opt = Mf_exact.Brute.specialized inst in
    List.iter
      (fun h ->
        let p = Period.period inst (Registry.solve h inst) in
        Alcotest.(check bool)
          (Printf.sprintf "%s >= opt (seed %d)" (Registry.name h) seed)
          true
          (p >= opt -. 1e-6))
      Registry.all;
    let p_h4w = Period.period inst (Registry.solve Registry.H4w inst) in
    Alcotest.(check bool)
      (Printf.sprintf "H4w within 3x of optimum (seed %d)" seed)
      true
      (p_h4w <= 3.0 *. opt)
  done

(* ------------------------------------------------------------------ *)
(* Local search                                                        *)
(* ------------------------------------------------------------------ *)

let test_local_search_never_degrades () =
  for seed = 1 to 10 do
    let inst = make_instance ~seed ~n:12 ~p:3 ~m:5 () in
    let mp = Registry.solve ~seed Registry.H1 inst in
    let improved = Local_search.improve inst mp in
    Alcotest.(check bool) "specialized preserved" true
      (Mapping.satisfies inst improved Mapping.Specialized);
    Alcotest.(check bool) "no degradation" true
      (Period.period inst improved <= Period.period inst mp +. 1e-9)
  done

let test_local_search_fixed_point_of_optimum () =
  let inst = make_instance ~seed:3 ~n:6 ~p:2 ~m:3 () in
  let opt_mp, opt = Mf_exact.Brute.specialized inst in
  let improved = Local_search.improve inst opt_mp in
  Alcotest.(check (float 1e-9)) "optimum unchanged" opt (Period.period inst improved)

(* The incremental search must follow the reference full-recomputation
   search move for move: same enumeration order, same tie-breaking, and
   x/load deltas exact enough that no comparison flips. *)
let test_local_search_matches_reference () =
  for seed = 1 to 8 do
    let inst = make_instance ~seed ~n:20 ~p:4 ~m:8 () in
    let mp = Registry.solve ~seed Registry.H1 inst in
    let inc = Local_search.improve inst mp in
    let reference = Local_search.improve_reference inst mp in
    Alcotest.(check (array int))
      (Printf.sprintf "same mapping (seed %d)" seed)
      (Mapping.to_array reference) (Mapping.to_array inc);
    let pi = Period.period inst inc and pr = Period.period inst reference in
    Alcotest.(check bool)
      (Printf.sprintf "same period (seed %d)" seed)
      true
      (Float.abs (pi -. pr) <= 1e-9 *. pr)
  done

(* ------------------------------------------------------------------ *)
(* Prose variants of H2/H3                                             *)
(* ------------------------------------------------------------------ *)

module H2_variants = Mf_heuristics.H2_variants

let test_h2_retry_valid_and_stronger () =
  let better = ref 0 in
  for seed = 1 to 10 do
    let inst = make_instance ~seed ~n:30 ~p:4 ~m:10 () in
    let strict = Period.period inst (Registry.solve Registry.H2 inst) in
    let mp = H2_variants.h2_retry inst in
    Alcotest.(check bool) "specialized" true (Mapping.satisfies inst mp Mapping.Specialized);
    let retry = Period.period inst mp in
    if retry < strict -. 1e-9 then incr better
  done;
  (* The prose reading should win on a clear majority of instances. *)
  Alcotest.(check bool) (Printf.sprintf "retry better on %d/10" !better) true (!better >= 6)

let test_h3_retry_valid () =
  for seed = 1 to 5 do
    let inst = make_instance ~seed ~n:20 ~p:3 ~m:8 () in
    let mp = H2_variants.h3_retry inst in
    Alcotest.(check bool) "specialized" true (Mapping.satisfies inst mp Mapping.Specialized);
    Alcotest.(check bool) "finite" true (Float.is_finite (Period.period inst mp))
  done

(* ------------------------------------------------------------------ *)
(* Simulated annealing                                                 *)
(* ------------------------------------------------------------------ *)

module Annealing = Mf_heuristics.Annealing

let test_annealing_never_degrades () =
  for seed = 1 to 8 do
    let inst = make_instance ~seed ~n:15 ~p:3 ~m:6 () in
    let mp = Registry.solve ~seed Registry.H1 inst in
    let rng = Rng.create (seed * 11) in
    let annealed = Annealing.run rng inst mp in
    Alcotest.(check bool) "specialized preserved" true
      (Mapping.satisfies inst annealed Mapping.Specialized);
    Alcotest.(check bool) "never degrades" true
      (Period.period inst annealed <= Period.period inst mp +. 1e-9)
  done

let test_annealing_improves_h1_on_average () =
  let gain = ref 0.0 in
  let trials = 8 in
  for seed = 1 to trials do
    let inst = make_instance ~seed ~n:20 ~p:4 ~m:8 () in
    let mp = Registry.solve ~seed Registry.H1 inst in
    let annealed = Annealing.run (Rng.create seed) inst mp in
    gain := !gain +. (Period.period inst mp /. Period.period inst annealed)
  done;
  let avg = !gain /. float_of_int trials in
  Alcotest.(check bool) (Printf.sprintf "avg ratio %.2f > 1.2" avg) true (avg > 1.2)

let test_annealing_rejects_invalid_start () =
  let inst = make_instance ~n:4 ~p:2 ~m:4 () in
  (* Build a non-specialized mapping: two types on one machine. *)
  let wf = Instance.workflow inst in
  let a = Array.make 4 0 in
  let distinct =
    List.exists (fun i -> Workflow.ttype wf i <> Workflow.ttype wf 0) [ 1; 2; 3 ]
  in
  if distinct then begin
    let mp = Mapping.of_array inst a in
    match Annealing.run (Rng.create 1) inst mp with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  end

(* Same contract as the local-search differential test: the incremental
   annealer consumes the RNG draw for draw like the reference one, so on a
   shared seed both follow the same trajectory. *)
let test_annealing_matches_reference () =
  for seed = 1 to 6 do
    let inst = make_instance ~seed ~n:15 ~p:3 ~m:6 () in
    let mp = Registry.solve ~seed Registry.H1 inst in
    let inc = Annealing.run (Rng.create (seed * 7)) inst mp in
    let reference = Annealing.run_reference (Rng.create (seed * 7)) inst mp in
    (* Ulp-level differences in the evaluated period can snapshot the best
       state at a different step, yielding a machine-relabelled mapping
       with the same period - so compare periods, not allocations. *)
    let pi = Period.period inst inc and pr = Period.period inst reference in
    Alcotest.(check bool)
      (Printf.sprintf "same period (seed %d)" seed)
      true
      (Float.abs (pi -. pr) <= 1e-9 *. pr)
  done

let test_annealing_deterministic_given_rng () =
  let inst = make_instance ~seed:4 ~n:12 ~p:3 ~m:5 () in
  let mp = Registry.solve Registry.H3 inst in
  let a = Annealing.run (Rng.create 7) inst mp in
  let b = Annealing.run (Rng.create 7) inst mp in
  Alcotest.(check (array int)) "same rng same result" (Mapping.to_array a) (Mapping.to_array b)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let arb_setup =
  QCheck.make
    ~print:(fun (seed, n, p, m) -> Printf.sprintf "seed=%d n=%d p=%d m=%d" seed n p m)
    QCheck.Gen.(
      let* seed = int_range 0 100000 in
      let* n = int_range 2 25 in
      let* p = int_range 1 (min n 5) in
      let* m = int_range p 10 in
      return (seed, n, p, m))

let prop_heuristics_always_valid =
  QCheck.Test.make ~name:"heuristics: always produce a valid specialized mapping" ~count:100
    arb_setup (fun (seed, n, p, m) ->
      let inst = make_instance ~seed ~n ~p ~m () in
      List.for_all
        (fun h ->
          let mp = Registry.solve ~seed h inst in
          Mapping.satisfies inst mp Mapping.Specialized)
        Registry.all)

let prop_binary_search_heuristics_bounded =
  QCheck.Test.make ~name:"heuristics: H2/H3 periods are within the search bracket" ~count:100
    arb_setup (fun (seed, n, p, m) ->
      let inst = make_instance ~seed ~n ~p ~m () in
      let ub = Instance.period_upper_bound inst in
      List.for_all
        (fun h ->
          let period = Period.period inst (Registry.solve h inst) in
          period > 0.0 && period <= ub *. (1.0 +. 1e-9))
        [ Registry.H2; Registry.H3 ])

let () =
  Alcotest.run "mf_heuristics"
    [
      ( "engine",
        [
          Alcotest.test_case "rejects m < p" `Quick test_engine_rejects_small_platform;
          Alcotest.test_case "x candidate" `Quick test_engine_x_candidate;
          Alcotest.test_case "dedication" `Quick test_engine_dedication;
          Alcotest.test_case "reservation" `Quick test_engine_reservation;
          Alcotest.test_case "assign errors" `Quick test_engine_assign_errors;
        ] );
      ( "heuristics",
        [
          Alcotest.test_case "valid mappings" `Quick test_all_heuristics_produce_specialized_mappings;
          Alcotest.test_case "registry" `Quick test_registry_names;
          Alcotest.test_case "best threads seed" `Quick test_best_threads_seed_uniformly;
          Alcotest.test_case "H1 determinism" `Quick test_h1_deterministic_given_seed;
          Alcotest.test_case "below upper bound" `Quick test_heuristics_not_worse_than_upper_bound;
          Alcotest.test_case "binary search scale invariance" `Quick
            test_binary_search_scale_invariant;
          Alcotest.test_case "H4w beats H1" `Slow test_h4w_beats_h1_on_average;
          Alcotest.test_case "vs brute force" `Slow test_heuristics_vs_brute_force;
        ] );
      ( "local search",
        [
          Alcotest.test_case "never degrades" `Quick test_local_search_never_degrades;
          Alcotest.test_case "optimum is a fixed point" `Quick test_local_search_fixed_point_of_optimum;
          Alcotest.test_case "matches reference" `Quick test_local_search_matches_reference;
        ] );
      ( "h2-variants",
        [
          Alcotest.test_case "h2 retry stronger" `Slow test_h2_retry_valid_and_stronger;
          Alcotest.test_case "h3 retry valid" `Quick test_h3_retry_valid;
        ] );
      ( "annealing",
        [
          Alcotest.test_case "never degrades" `Quick test_annealing_never_degrades;
          Alcotest.test_case "improves H1" `Slow test_annealing_improves_h1_on_average;
          Alcotest.test_case "matches reference" `Quick test_annealing_matches_reference;
          Alcotest.test_case "rejects invalid start" `Quick test_annealing_rejects_invalid_start;
          Alcotest.test_case "deterministic" `Quick test_annealing_deterministic_given_rng;
        ] );
      ( "props",
        List.map QCheck_alcotest.to_alcotest
          [ prop_heuristics_always_valid; prop_binary_search_heuristics_bounded ] );
    ]
