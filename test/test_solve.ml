(* Unified solver tests: the portfolio-differential suite (portfolio vs
   standalone engines under equal budgets over the shared deterministic
   instance family), request/engine unit tests, and the canonical answer
   cache. *)

module Instance = Mf_core.Instance
module Workflow = Mf_core.Workflow
module Mapping = Mf_core.Mapping
module Period = Mf_core.Period
module Canon = Mf_core.Canon
module Solver = Mf_solve.Solver
module Engine = Mf_solve.Engine
module Portfolio = Mf_solve.Portfolio
module Cache = Mf_solve.Cache
module Dfs = Mf_exact.Dfs
module Brute = Mf_exact.Brute
module Gen = Mf_workload.Gen
module Rng = Mf_prng.Rng

let differential_instance = Mf_proptest.Instances.differential_instance

let chain ~tasks ~types ~machines seed =
  Gen.chain (Rng.create seed) (Gen.default ~tasks ~types ~machines)

let opt_bits = Option.map Int64.bits_of_float
let bits = Int64.bits_of_float

let check_outcomes_identical msg (a : Solver.outcome) (b : Solver.outcome) =
  Alcotest.(check bool) (msg ^ ": status") true (a.Solver.status = b.Solver.status);
  Alcotest.(check bool)
    (msg ^ ": period bits")
    true
    (opt_bits a.Solver.period = opt_bits b.Solver.period);
  Alcotest.(check bool)
    (msg ^ ": lower bound bits")
    true
    (opt_bits a.Solver.lower_bound = opt_bits b.Solver.lower_bound);
  Alcotest.(check bool)
    (msg ^ ": mapping")
    true
    (Option.map Mapping.to_array a.Solver.mapping
    = Option.map Mapping.to_array b.Solver.mapping);
  Alcotest.(check bool) (msg ^ ": engines") true (a.Solver.engines = b.Solver.engines)

(* ------------------------------------------------------------------ *)
(* portfolio-differential: portfolio vs standalone engines              *)
(* ------------------------------------------------------------------ *)

(* Over the shared deterministic family (chains and in-trees, n <= 8,
   m <= 4), under an equal node budget large enough to prove optimality:
   the portfolio must return Optimal with the brute-force period (1e-9
   relative, the Dfs convention) and bit-for-bit the standalone exact
   engine's period. *)
let test_portfolio_vs_engines rule () =
  let budget = Solver.Nodes 500_000 in
  for i = 1 to 60 do
    let inst = differential_instance ~rule i in
    let req = Solver.request_exn ~rule ~budget inst in
    let out = Portfolio.solve req in
    let name = Printf.sprintf "(%s, i=%d)" (Mapping.rule_name rule) i in
    Alcotest.(check bool)
      (Printf.sprintf "portfolio optimal %s: %s" name
         (Solver.status_to_string out.Solver.status))
      true
      (out.Solver.status = Solver.Optimal);
    let p = Option.get out.Solver.period in
    let _, expected =
      match rule with
      | Mapping.Specialized -> Brute.specialized inst
      | Mapping.General -> Brute.general inst
      | Mapping.One_to_one -> Brute.one_to_one inst
    in
    Alcotest.(check bool)
      (Printf.sprintf "portfolio = brute %s: %.9g vs %.9g" name p expected)
      true
      (Float.abs (p -. expected) <= 1e-9 *. expected);
    let standalone = Engine.exact req in
    Alcotest.(check bool)
      (Printf.sprintf "portfolio = standalone exact %s (bit-for-bit)" name)
      true
      (opt_bits out.Solver.period = opt_bits standalone.Solver.period);
    (* the anytime answer never loses to the heuristic stage alone *)
    let h = Engine.heuristics req in
    Alcotest.(check bool)
      (Printf.sprintf "portfolio <= heuristics %s" name)
      true
      (p <= Option.get h.Solver.period);
    let mp = Option.get out.Solver.mapping in
    Alcotest.(check bool)
      (Printf.sprintf "mapping satisfies rule %s" name)
      true (Mapping.satisfies inst mp rule)
  done

let test_portfolio_specialized () = test_portfolio_vs_engines Mapping.Specialized ()
let test_portfolio_general () = test_portfolio_vs_engines Mapping.General ()
let test_portfolio_one_to_one () = test_portfolio_vs_engines Mapping.One_to_one ()

(* A fixed request replays bit-for-bit — including through a machine
   permutation of the instance (the canonical frame absorbs it). *)
let test_portfolio_deterministic () =
  for i = 1 to 20 do
    let inst = differential_instance ~rule:Mapping.Specialized i in
    let req = Solver.request_exn ~budget:(Solver.Nodes 100_000) inst in
    check_outcomes_identical
      (Printf.sprintf "replay (i=%d)" i)
      (Portfolio.solve req) (Portfolio.solve req)
  done

(* Under a budget too small to finish the search, the status is honest
   and the anytime answer is still a valid mapping. *)
let test_portfolio_anytime () =
  let inst = chain ~tasks:14 ~types:4 ~machines:6 7 in
  (* enough for heuristics + LP, not for the exact search *)
  let out = Portfolio.solve (Solver.request_exn ~budget:(Solver.Nodes 9_000) inst) in
  (match out.Solver.status with
  | Solver.Feasible gap -> Alcotest.(check bool) "gap >= 0" true (gap >= 0.0)
  | Solver.Optimal -> ()
  | s -> Alcotest.failf "unexpected status %s" (Solver.status_to_string s));
  let mp = Option.get out.Solver.mapping in
  Alcotest.(check bool) "anytime mapping valid" true
    (Mapping.satisfies inst mp Mapping.Specialized);
  (* heuristics-only budget: no bound, explicitly exhausted *)
  let tiny = Portfolio.solve (Solver.request_exn ~budget:(Solver.Nodes 1) inst) in
  Alcotest.(check bool) "tiny budget exhausted" true
    (tiny.Solver.status = Solver.Budget_exhausted);
  Alcotest.(check bool) "tiny budget still answers" true
    (Option.is_some tiny.Solver.mapping);
  Alcotest.(check bool) "tiny budget ran heuristics only" true
    (tiny.Solver.engines = [ Solver.Heuristics ])

(* want_certificate forces the LP stage even under a heuristics-only
   budget, so the answer carries a certified bound. *)
let test_portfolio_certificate () =
  let inst = chain ~tasks:14 ~types:4 ~machines:6 7 in
  let out =
    Portfolio.solve (Solver.request_exn ~budget:(Solver.Nodes 1) ~want_certificate:true inst)
  in
  Alcotest.(check bool) "certificate present" true (Option.is_some out.Solver.lower_bound);
  (match out.Solver.status with
  | Solver.Optimal | Solver.Feasible _ -> ()
  | s -> Alcotest.failf "unexpected status %s" (Solver.status_to_string s));
  let lb = Option.get out.Solver.lower_bound in
  let p = Option.get out.Solver.period in
  Alcotest.(check bool) "bound below answer" true (lb <= p)

(* ------------------------------------------------------------------ *)
(* solver: request validation, budgets, engine adapters                 *)
(* ------------------------------------------------------------------ *)

let test_request_validation () =
  let inst = chain ~tasks:4 ~types:2 ~machines:3 1 in
  let raises f =
    match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "negative deadline" true
    (raises (fun () -> Solver.request_exn ~budget:(Solver.Deadline_ms (-1.0)) inst));
  Alcotest.(check bool) "zero nodes" true
    (raises (fun () -> Solver.request_exn ~budget:(Solver.Nodes 0) inst));
  Alcotest.(check bool) "negative setup" true
    (raises (fun () -> Solver.request_exn ~setup:(-1.0) inst));
  Alcotest.(check bool) "defaults fine" true
    (match Solver.request_exn inst with _ -> true)

(* The typed constructor reports the same rejections [request_exn]
   raises, as values — one case per [request_error] variant, NaN
   included (NaN must never enter the solver: it is unordered, so it
   would slip through every downstream comparison). *)
let test_make_request_errors () =
  let inst = chain ~tasks:4 ~types:2 ~machines:3 1 in
  let check_error label expect result =
    Alcotest.(check bool) label true
      (match result with Error e -> expect e | Ok _ -> false)
  in
  let is_bad_deadline = function Solver.Bad_deadline _ -> true | _ -> false in
  let is_bad_nodes = function Solver.Bad_node_budget _ -> true | _ -> false in
  let is_bad_setup = function Solver.Bad_setup _ -> true | _ -> false in
  check_error "NaN deadline" is_bad_deadline
    (Solver.make_request ~budget:(Solver.Deadline_ms nan) inst);
  check_error "zero deadline" is_bad_deadline
    (Solver.make_request ~budget:(Solver.Deadline_ms 0.0) inst);
  check_error "negative deadline" is_bad_deadline
    (Solver.make_request ~budget:(Solver.Deadline_ms (-3.0)) inst);
  check_error "zero node budget" is_bad_nodes
    (Solver.make_request ~budget:(Solver.Nodes 0) inst);
  check_error "negative node budget" is_bad_nodes
    (Solver.make_request ~budget:(Solver.Nodes (-7)) inst);
  check_error "NaN setup" is_bad_setup (Solver.make_request ~setup:nan inst);
  check_error "negative setup" is_bad_setup (Solver.make_request ~setup:(-0.5) inst);
  Alcotest.(check bool) "every error describable" true
    (List.for_all
       (fun e -> String.length (Solver.describe_request_error e) > 0)
       [ Solver.Bad_deadline nan; Solver.Bad_node_budget 0; Solver.Bad_setup (-1.0) ]);
  Alcotest.(check bool) "valid request accepted" true
    (Result.is_ok (Solver.make_request ~budget:(Solver.Deadline_ms 5.0) ~setup:1.5 inst))

(* Overflow guard regressions: huge and infinite deadlines clamp to
   [max_node_allowance] instead of collapsing through [int_of_float]
   overflow (which used to turn a 1e300 ms deadline into a 1-node
   budget). *)
let test_node_allowance_clamp () =
  let cap = Solver.max_node_allowance in
  Alcotest.(check bool) "1e300 deadline clamps" true
    (Solver.node_allowance (Solver.Deadline_ms 1e300) = Some cap);
  Alcotest.(check bool) "infinite deadline clamps" true
    (Solver.node_allowance (Solver.Deadline_ms infinity) = Some cap);
  Alcotest.(check bool) "just above the clamp boundary" true
    (Solver.node_allowance (Solver.Deadline_ms (2.0 *. float_of_int cap /. Solver.nodes_per_ms))
    = Some cap);
  Alcotest.(check bool) "huge node budget clamps" true
    (Solver.node_allowance (Solver.Nodes max_int) = Some cap);
  Alcotest.(check bool) "node budget at the cap" true
    (Solver.node_allowance (Solver.Nodes cap) = Some cap);
  Alcotest.(check bool) "node budget below the cap passes through" true
    (Solver.node_allowance (Solver.Nodes (cap - 1)) = Some (cap - 1));
  (* the cap itself stays comfortably inside the int range so arithmetic
     like [nodes + charged >= budget] cannot overflow *)
  Alcotest.(check bool) "cap leaves headroom" true (cap < max_int / 64)

let test_node_allowance () =
  Alcotest.(check bool) "unlimited" true (Solver.node_allowance Solver.Unlimited = None);
  Alcotest.(check bool) "nodes pass through" true
    (Solver.node_allowance (Solver.Nodes 123) = Some 123);
  Alcotest.(check bool) "deadline scales" true
    (Solver.node_allowance (Solver.Deadline_ms 10.0)
    = Some (int_of_float (10.0 *. Solver.nodes_per_ms)));
  (* any positive deadline grants at least one node *)
  Alcotest.(check bool) "tiny deadline" true
    (Solver.node_allowance (Solver.Deadline_ms 1e-9) = Some 1)

let test_engine_infeasible () =
  (* m = 2 < p = 3: specialized infeasible; m = 5 < n = 6: oto infeasible *)
  let inst = chain ~tasks:6 ~types:3 ~machines:2 3 in
  List.iter
    (fun (label, out) ->
      Alcotest.(check bool) label true (out.Solver.status = Solver.Infeasible);
      Alcotest.(check bool) (label ^ " no mapping") true (out.Solver.mapping = None))
    [
      ("heuristics m<p", Engine.heuristics (Solver.request_exn inst));
      ("exact m<p", Engine.exact (Solver.request_exn inst));
      ("brute m<p", Engine.brute (Solver.request_exn inst));
      ("portfolio m<p", Portfolio.solve (Solver.request_exn inst));
      ( "heuristics m<n oto",
        Engine.heuristics (Solver.request_exn ~rule:Mapping.One_to_one inst) );
      ("portfolio m<n oto", Portfolio.solve (Solver.request_exn ~rule:Mapping.One_to_one inst));
    ]

(* General rule stays feasible below m < p: the single-machine fallback. *)
let test_general_below_p () =
  let inst = chain ~tasks:6 ~types:3 ~machines:2 3 in
  let out = Portfolio.solve (Solver.request_exn ~rule:Mapping.General inst) in
  Alcotest.(check bool) "general m<p solves" true (out.Solver.status = Solver.Optimal);
  let mp = Option.get out.Solver.mapping in
  Alcotest.(check bool) "mapping valid" true (Mapping.satisfies inst mp Mapping.General);
  let _, expected = Brute.general inst in
  let p = Option.get out.Solver.period in
  Alcotest.(check bool)
    (Printf.sprintf "matches brute: %.9g vs %.9g" p expected)
    true
    (Float.abs (p -. expected) <= 1e-9 *. expected)

let test_engine_lp_statuses () =
  let inst = chain ~tasks:6 ~types:3 ~machines:4 5 in
  (* one-to-one: bound only, no rounding *)
  let oto = Engine.lp (Solver.request_exn ~rule:Mapping.One_to_one inst) in
  (match oto.Solver.status with
  | Solver.Bound_only lb ->
    Alcotest.(check bool) "bound positive" true (lb > 0.0);
    Alcotest.(check bool) "no mapping" true (oto.Solver.mapping = None)
  | s -> Alcotest.failf "oto lp status %s" (Solver.status_to_string s));
  (* specialized: rounding succeeds, gap against the shaved bound *)
  let sp = Engine.lp (Solver.request_exn inst) in
  (match sp.Solver.status with
  | Solver.Optimal | Solver.Feasible _ -> ()
  | s -> Alcotest.failf "specialized lp status %s" (Solver.status_to_string s));
  let lb = Option.get sp.Solver.lower_bound in
  let p = Option.get sp.Solver.period in
  Alcotest.(check bool) "lp bound below rounded period" true (lb <= p);
  Alcotest.(check bool) "lp counted pivots" true (sp.Solver.stats.Solver.lp_pivots > 0);
  Alcotest.(check bool) "lp path recorded" true
    (sp.Solver.stats.Solver.lp_path <> Solver.No_lp);
  (* the shaved bound really is below the exact optimum *)
  let exact = Dfs.specialized inst in
  Alcotest.(check bool)
    (Printf.sprintf "shaved bound %.9g <= optimum %.9g" lb exact.Dfs.period)
    true (lb <= exact.Dfs.period)

(* ------------------------------------------------------------------ *)
(* cache: keys, hits, eviction                                          *)
(* ------------------------------------------------------------------ *)

let test_cache_key_sensitivity () =
  let inst = chain ~tasks:5 ~types:2 ~machines:3 11 in
  let canon = Canon.canonicalize inst in
  let base = Solver.request_exn inst in
  let key = Cache.request_key canon base in
  List.iter
    (fun (label, req) ->
      Alcotest.(check bool) label true (Cache.request_key canon req <> key))
    [
      ("rule", Solver.request_exn ~rule:Mapping.General inst);
      ("seed", Solver.request_exn ~seed:42 inst);
      ("setup", Solver.request_exn ~setup:1.5 inst);
      ("budget", Solver.request_exn ~budget:(Solver.Nodes 10) inst);
      ("certificate", Solver.request_exn ~want_certificate:true inst);
    ];
  Alcotest.(check bool) "same request, same key" true
    (Cache.request_key canon (Solver.request_exn inst) = key)

let test_cache_hit_bit_identical () =
  let inst = chain ~tasks:8 ~types:3 ~machines:4 13 in
  let cache = Cache.create () in
  let req = Solver.request_exn ~budget:(Solver.Nodes 100_000) inst in
  let fresh = Portfolio.solve ~cache req in
  Alcotest.(check bool) "first solve misses" true
    (not fresh.Solver.stats.Solver.cache_hit);
  let hit = Portfolio.solve ~cache req in
  Alcotest.(check bool) "second solve hits" true hit.Solver.stats.Solver.cache_hit;
  check_outcomes_identical "hit vs fresh" hit fresh;
  Alcotest.(check bool) "stats identical modulo flag" true
    ({ hit.Solver.stats with Solver.cache_hit = false } = fresh.Solver.stats);
  let s = Cache.stats cache in
  Alcotest.(check int) "hits" 1 s.Cache.hits;
  Alcotest.(check int) "misses" 1 s.Cache.misses

(* A machine-permuted copy of the instance hits the entry its original
   populated, and maps back to the permuted frame correctly. *)
let test_cache_hit_across_permutation () =
  let inst = chain ~tasks:8 ~types:3 ~machines:4 17 in
  let n = Instance.task_count inst and m = Instance.machines inst in
  let wf = Instance.workflow inst in
  let perm u = (u + 1) mod m in
  let permuted =
    Instance.create ~workflow:wf ~machines:m
      ~w:(Array.init n (fun i -> Array.init m (fun u -> Instance.w inst i (perm u))))
      ~f:(Array.init n (fun i -> Array.init m (fun u -> Instance.f inst i (perm u))))
  in
  let cache = Cache.create () in
  let budget = Solver.Nodes 100_000 in
  let out0 = Portfolio.solve ~cache (Solver.request_exn ~budget inst) in
  let out1 = Portfolio.solve ~cache (Solver.request_exn ~budget permuted) in
  Alcotest.(check bool) "permuted request hits" true out1.Solver.stats.Solver.cache_hit;
  Alcotest.(check bool) "periods bit-identical" true
    (opt_bits out0.Solver.period = opt_bits out1.Solver.period);
  let mp = Option.get out1.Solver.mapping in
  Alcotest.(check bool) "mapped-back mapping valid on permuted instance" true
    (Mapping.satisfies permuted mp Mapping.Specialized);
  Alcotest.(check bool)
    "mapped-back period matches on the permuted instance (bit-for-bit)" true
    (bits (Period.period permuted mp) = bits (Period.period inst (Option.get out0.Solver.mapping)))

let test_cache_eviction () =
  let cache = Cache.create ~capacity:2 () in
  let budget = Solver.Nodes 50_000 in
  let insts = List.init 3 (fun k -> chain ~tasks:5 ~types:2 ~machines:3 (100 + k)) in
  List.iter (fun i -> ignore (Portfolio.solve ~cache (Solver.request_exn ~budget i))) insts;
  let s = Cache.stats cache in
  Alcotest.(check int) "capacity bounds entries" 2 s.Cache.length;
  Alcotest.(check int) "one eviction" 1 s.Cache.evictions;
  (* the evicted (oldest) instance misses; the two recent ones hit *)
  let hit i =
    (Portfolio.solve ~cache (Solver.request_exn ~budget i)).Solver.stats.Solver.cache_hit
  in
  match insts with
  | [ a; b; c ] ->
    Alcotest.(check bool) "recent entries hit" true (hit c && hit b);
    Alcotest.(check bool) "oldest evicted" false (hit a)
  | _ -> assert false

let () =
  Alcotest.run "solve"
    [
      ( "portfolio-differential",
        [
          Alcotest.test_case "specialized vs engines (60)" `Quick test_portfolio_specialized;
          Alcotest.test_case "general vs engines (60)" `Quick test_portfolio_general;
          Alcotest.test_case "one-to-one vs engines (60)" `Quick test_portfolio_one_to_one;
          Alcotest.test_case "deterministic replay" `Quick test_portfolio_deterministic;
          Alcotest.test_case "anytime under budget" `Quick test_portfolio_anytime;
          Alcotest.test_case "certificate forces LP" `Quick test_portfolio_certificate;
        ] );
      ( "solver",
        [
          Alcotest.test_case "request validation" `Quick test_request_validation;
          Alcotest.test_case "typed request errors" `Quick test_make_request_errors;
          Alcotest.test_case "node allowance" `Quick test_node_allowance;
          Alcotest.test_case "node allowance overflow clamp" `Quick test_node_allowance_clamp;
          Alcotest.test_case "infeasible rules" `Quick test_engine_infeasible;
          Alcotest.test_case "general below p" `Quick test_general_below_p;
          Alcotest.test_case "lp statuses" `Quick test_engine_lp_statuses;
        ] );
      ( "cache",
        [
          Alcotest.test_case "key sensitivity" `Quick test_cache_key_sensitivity;
          Alcotest.test_case "hit bit-identical" `Quick test_cache_hit_bit_identical;
          Alcotest.test_case "hit across permutation" `Quick test_cache_hit_across_permutation;
          Alcotest.test_case "lru eviction" `Quick test_cache_eviction;
        ] );
    ]
