(* Tests for mf_parallel: the domain pool's determinism contract (results
   identical for any pool size), exception propagation, shutdown, and the
   jobs-invariance of the experiment runner built on top of it. *)

module Pool = Mf_parallel.Pool
module Runner = Mf_experiments.Runner
module Registry = Mf_heuristics.Registry

exception Boom of int

let jobs_grid = [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)
(* ------------------------------------------------------------------ *)

let test_map_array_matches_serial () =
  let input = Array.init 500 (fun i -> i) in
  let f i = (i * i) + (i mod 7) in
  let expected = Array.map f input in
  List.iter
    (fun jobs ->
      Pool.with_pool ~domains:jobs (fun pool ->
          Alcotest.(check (array int))
            (Printf.sprintf "jobs=%d equals serial" jobs)
            expected
            (Pool.map_array pool ~f input)))
    jobs_grid

let test_map_array_empty_and_single () =
  Pool.with_pool ~domains:4 (fun pool ->
      Alcotest.(check (array int)) "empty" [||] (Pool.map_array pool ~f:(fun x -> x) [||]);
      Alcotest.(check (array int)) "single" [| 9 |]
        (Pool.map_array pool ~f:(fun x -> x * x) [| 3 |]))

let test_map_reduce_index_order () =
  (* A non-commutative combine exposes any ordering leak. *)
  let input = Array.init 64 string_of_int in
  let expected = Array.fold_left ( ^ ) "" input in
  List.iter
    (fun jobs ->
      Pool.with_pool ~domains:jobs (fun pool ->
          Alcotest.(check string)
            (Printf.sprintf "jobs=%d concatenation in index order" jobs)
            expected
            (Pool.map_reduce pool ~f:Fun.id ~combine:( ^ ) ~init:"" input)))
    jobs_grid

let test_exception_propagation () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~domains:jobs (fun pool ->
          (* Many tiny tasks, one raising: the batch drains, the exception
             reaches the submitter, and the pool stays usable. *)
          let input = Array.init 1000 (fun i -> i) in
          (try
             ignore
               (Pool.map_array pool input ~f:(fun i -> if i = 321 then raise (Boom i) else i));
             Alcotest.fail "exception not propagated"
           with Boom i -> Alcotest.(check int) "boom index" 321 i);
          Alcotest.(check (array int)) "pool usable after failure"
            (Array.map (fun i -> i + 1) input)
            (Pool.map_array pool input ~f:(fun i -> i + 1))))
    jobs_grid

let test_exception_smallest_index_wins () =
  (* Several failing units: the re-raised exception must be the one of the
     smallest index, whatever the scheduling. *)
  List.iter
    (fun jobs ->
      Pool.with_pool ~domains:jobs (fun pool ->
          let input = Array.init 200 (fun i -> i) in
          try
            ignore
              (Pool.map_array pool input ~f:(fun i ->
                   if i mod 50 = 17 then raise (Boom i) else i));
            Alcotest.fail "exception not propagated"
          with Boom i -> Alcotest.(check int) "smallest failing index" 17 i))
    jobs_grid

let test_chunk_matches_serial () =
  (* Explicit chunk sizes — including degenerate ones larger than the
     input — must not change results or ordering. *)
  let input = Array.init 257 (fun i -> i) in
  let f i = (i * 31) mod 101 in
  let expected = Array.map f input in
  List.iter
    (fun jobs ->
      Pool.with_pool ~domains:jobs (fun pool ->
          List.iter
            (fun chunk ->
              Alcotest.(check (array int))
                (Printf.sprintf "jobs=%d chunk=%d map_array" jobs chunk)
                expected
                (Pool.map_array pool ~chunk ~f input);
              Alcotest.(check int)
                (Printf.sprintf "jobs=%d chunk=%d map_reduce" jobs chunk)
                (Array.fold_left ( + ) 0 expected)
                (Pool.map_reduce pool ~chunk ~f ~combine:( + ) ~init:0 input))
            [ 1; 3; 64; 1000 ]))
    jobs_grid

let test_chunk_smallest_index_wins () =
  (* The smallest-failing-index guarantee must survive chunked dispatch. *)
  List.iter
    (fun chunk ->
      Pool.with_pool ~domains:4 (fun pool ->
          let input = Array.init 200 (fun i -> i) in
          try
            ignore
              (Pool.map_array pool ~chunk input ~f:(fun i ->
                   if i mod 50 = 17 then raise (Boom i) else i));
            Alcotest.fail "exception not propagated"
          with Boom i -> Alcotest.(check int) "smallest failing index" 17 i))
    [ 1; 3; 64; 1000 ]

let test_chunk_validation () =
  Pool.with_pool ~domains:2 (fun pool ->
      Alcotest.check_raises "chunk must be positive"
        (Invalid_argument "Pool.map_array: chunk must be positive") (fun () ->
          ignore (Pool.map_array pool ~chunk:0 ~f:Fun.id [| 1 |])))

let test_stress_many_small_batches () =
  (* Many batches of tiny tasks through one pool: exercises the queue
     wake-ups and the per-call completion latch. *)
  Pool.with_pool ~domains:4 (fun pool ->
      for round = 1 to 50 do
        let n = 1 + (round mod 7) * 37 in
        let out = Pool.map_array pool ~f:(fun i -> i * 2) (Array.init n (fun i -> i)) in
        Alcotest.(check int) "length" n (Array.length out);
        Array.iteri (fun i v -> Alcotest.(check int) "value" (2 * i) v) out
      done)

let test_shutdown () =
  let pool = Pool.create ~domains:3 in
  Alcotest.(check int) "domains" 3 (Pool.domains pool);
  ignore (Pool.map_array pool ~f:succ (Array.init 10 (fun i -> i)));
  Pool.shutdown pool;
  (* Idempotent, and the pool refuses further work once its domains are
     joined. *)
  Pool.shutdown pool;
  Alcotest.check_raises "unusable after shutdown"
    (Invalid_argument "Pool.map_array: pool has been shut down") (fun () ->
      ignore (Pool.map_array pool ~f:succ [| 1 |]));
  let serial = Pool.create ~domains:1 in
  Alcotest.(check int) "serial pool" 1 (Pool.domains serial);
  Pool.shutdown serial;
  Alcotest.check_raises "at least one domain" (Invalid_argument "Pool.create: need at least one domain")
    (fun () -> ignore (Pool.create ~domains:0))

(* ------------------------------------------------------------------ *)
(* Pool stress: adversarial schedules                                  *)
(* ------------------------------------------------------------------ *)

(* A little data-dependent spin so units finish at scrambled times and
   steal interleavings vary between repetitions. *)
let spin i =
  let rounds = 50 + (i * 37 mod 11) * 120 in
  let acc = ref 0 in
  for k = 1 to rounds do
    acc := (!acc + (k * i)) mod 1_000_003
  done;
  !acc

let test_shutdown_while_busy () =
  (* Shutdown racing an in-flight batch submitted from another domain:
     the submitter can always drain its own batch, so the map completes
     correctly even though the workers are being joined under it. *)
  for _round = 1 to 5 do
    let pool = Pool.create ~domains:4 in
    let started = Atomic.make false in
    let input = Array.init 400 (fun i -> i) in
    let submitter =
      Domain.spawn (fun () ->
          Pool.map_array pool input ~f:(fun i ->
              Atomic.set started true;
              ignore (spin i);
              i * 2))
    in
    while not (Atomic.get started) do
      Domain.cpu_relax ()
    done;
    Pool.shutdown pool;
    let out = Domain.join submitter in
    Alcotest.(check (array int)) "batch completed despite shutdown"
      (Array.map (fun i -> i * 2) input)
      out
  done

let test_concurrent_map_array () =
  (* Two domains submitting batches to one pool at once: results slot by
     index per batch, idle domains steal across both. *)
  Pool.with_pool ~domains:3 (fun pool ->
      for _round = 1 to 5 do
        let inp1 = Array.init 300 (fun i -> i) in
        let inp2 = Array.init 211 (fun i -> i + 1000) in
        let other =
          Domain.spawn (fun () ->
              Pool.map_array pool inp2 ~f:(fun i ->
                  ignore (spin i);
                  i - 1000))
        in
        let out1 =
          Pool.map_array pool inp1 ~f:(fun i ->
              ignore (spin i);
              i * 3)
        in
        let out2 = Domain.join other in
        Alcotest.(check (array int)) "batch 1" (Array.map (fun i -> i * 3) inp1) out1;
        Alcotest.(check (array int)) "batch 2" (Array.init 211 Fun.id) out2
      done)

let test_nested_map_array () =
  (* A unit of work submitting an inner batch on the same pool: the inner
     submitter drains its own batch, so this cannot deadlock even with
     every other domain busy on the outer batch. *)
  Pool.with_pool ~domains:2 (fun pool ->
      let outer = Array.init 20 (fun i -> i) in
      let expected =
        Array.map (fun i -> Array.fold_left ( + ) 0 (Array.init 30 (fun j -> i + j))) outer
      in
      let out =
        Pool.map_array pool outer ~f:(fun i ->
            let inner = Pool.map_array pool ~chunk:4 (Array.init 30 (fun j -> j)) ~f:(fun j -> i + j) in
            Array.fold_left ( + ) 0 inner)
      in
      Alcotest.(check (array int)) "nested map_array" expected out)

let test_exception_determinism_across_schedules () =
  (* Smallest-failing-index must hold for every (jobs, chunk) pair and
     every steal interleaving; the spin scrambles completion order. *)
  List.iter
    (fun jobs ->
      Pool.with_pool ~domains:jobs (fun pool ->
          List.iter
            (fun chunk ->
              for _round = 1 to 3 do
                let input = Array.init 200 (fun i -> i) in
                try
                  ignore
                    (Pool.map_array pool ~chunk input ~f:(fun i ->
                         ignore (spin i);
                         if i mod 50 = 17 then raise (Boom i) else i));
                  Alcotest.fail "exception not propagated"
                with Boom i ->
                  Alcotest.(check int)
                    (Printf.sprintf "jobs=%d chunk=%d smallest index" jobs chunk)
                    17 i
              done)
            [ 1; 3; 64 ]))
    [ 2; 4 ]

let test_shared_pools () =
  (* [shared] clamps to default_jobs (no oversubscription), so the
     expected effective size depends on the host's core count. *)
  let eff = min 2 (Pool.default_jobs ()) in
  let p2 = Pool.shared ~domains:2 in
  Alcotest.(check bool) "same pool returned" true (p2 == Pool.shared ~domains:2);
  Alcotest.(check int) "size" eff (Pool.domains p2);
  Alcotest.(check int) "spawned workers" (eff - 1) (Pool.spawned p2);
  let out = Pool.map_array p2 ~f:succ (Array.init 64 (fun i -> i)) in
  Alcotest.(check (array int)) "works" (Array.init 64 succ) out;
  (* An explicitly shut-down shared pool is replaced on next request. *)
  Pool.shutdown p2;
  let p2' = Pool.shared ~domains:2 in
  Alcotest.(check bool) "replaced after shutdown" true (p2 != p2');
  ignore (Pool.map_array p2' ~f:succ [| 1 |]);
  Pool.shutdown_shared ();
  let p1 = Pool.shared ~domains:1 in
  Alcotest.(check int) "serial shared pool" 0 (Pool.spawned p1)

(* ------------------------------------------------------------------ *)
(* Runner jobs-invariance                                              *)
(* ------------------------------------------------------------------ *)

let small_figure ?jobs ?pool ?chunk () =
  Runner.run ~id:"par" ~title:"par" ~x_label:"n" ?jobs ?pool ?chunk ~xs:[ 4; 6; 8 ]
    ~replicates:4
    ~gen:(fun ~x ~seed ->
      Mf_workload.Gen.chain (Mf_prng.Rng.create seed)
        (Mf_workload.Gen.default ~tasks:x ~types:2 ~machines:4))
    ~algos:[ Runner.heuristic Registry.H4w; Runner.heuristic Registry.H2; Runner.heuristic Registry.H1 ]
    ()

let test_runner_jobs_invariant () =
  let serial = small_figure ~jobs:1 () in
  List.iter
    (fun jobs ->
      let fig = small_figure ~jobs () in
      (* Structural equality down to the raw float bits of every replicate:
         the whole point of per-unit seed derivation. *)
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d figure identical to serial" jobs)
        true
        (Stdlib.compare serial fig = 0))
    [ 2; 4 ]

let test_runner_chunk_invariant () =
  (* The figure must also be bit-identical across chunk sizes and on an
     external pool — the acceptance pin for the coarse-chunked runner. *)
  let serial = small_figure ~jobs:1 () in
  List.iter
    (fun chunk ->
      List.iter
        (fun jobs ->
          let fig = small_figure ~jobs ~chunk () in
          Alcotest.(check bool)
            (Printf.sprintf "jobs=%d chunk=%d identical to serial" jobs chunk)
            true
            (Stdlib.compare serial fig = 0))
        [ 2; 4 ])
    [ 1; 7 ];
  Pool.with_pool ~domains:3 (fun pool ->
      let fig = small_figure ~pool () in
      Alcotest.(check bool) "external pool identical to serial" true
        (Stdlib.compare serial fig = 0))

let () =
  Alcotest.run "mf_parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map_array = serial map" `Quick test_map_array_matches_serial;
          Alcotest.test_case "empty and single" `Quick test_map_array_empty_and_single;
          Alcotest.test_case "map_reduce index order" `Quick test_map_reduce_index_order;
          Alcotest.test_case "exception propagation" `Quick test_exception_propagation;
          Alcotest.test_case "smallest index wins" `Quick test_exception_smallest_index_wins;
          Alcotest.test_case "chunked dispatch = serial map" `Quick test_chunk_matches_serial;
          Alcotest.test_case "chunked smallest index wins" `Quick test_chunk_smallest_index_wins;
          Alcotest.test_case "chunk validation" `Quick test_chunk_validation;
          Alcotest.test_case "stress small batches" `Quick test_stress_many_small_batches;
          Alcotest.test_case "shutdown" `Quick test_shutdown;
        ] );
      ( "pool-stress",
        [
          Alcotest.test_case "shutdown while busy" `Quick test_shutdown_while_busy;
          Alcotest.test_case "concurrent map_array" `Quick test_concurrent_map_array;
          Alcotest.test_case "nested map_array" `Quick test_nested_map_array;
          Alcotest.test_case "exception determinism across schedules" `Quick
            test_exception_determinism_across_schedules;
          Alcotest.test_case "shared pools" `Quick test_shared_pools;
        ] );
      ( "runner",
        [
          Alcotest.test_case "jobs-invariant figure" `Quick test_runner_jobs_invariant;
          Alcotest.test_case "chunk-invariant figure" `Quick test_runner_chunk_invariant;
        ] );
    ]
