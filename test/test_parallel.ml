(* Tests for mf_parallel: the domain pool's determinism contract (results
   identical for any pool size), exception propagation, shutdown, and the
   jobs-invariance of the experiment runner built on top of it. *)

module Pool = Mf_parallel.Pool
module Runner = Mf_experiments.Runner
module Registry = Mf_heuristics.Registry

exception Boom of int

let jobs_grid = [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)
(* ------------------------------------------------------------------ *)

let test_map_array_matches_serial () =
  let input = Array.init 500 (fun i -> i) in
  let f i = (i * i) + (i mod 7) in
  let expected = Array.map f input in
  List.iter
    (fun jobs ->
      Pool.with_pool ~domains:jobs (fun pool ->
          Alcotest.(check (array int))
            (Printf.sprintf "jobs=%d equals serial" jobs)
            expected
            (Pool.map_array pool ~f input)))
    jobs_grid

let test_map_array_empty_and_single () =
  Pool.with_pool ~domains:4 (fun pool ->
      Alcotest.(check (array int)) "empty" [||] (Pool.map_array pool ~f:(fun x -> x) [||]);
      Alcotest.(check (array int)) "single" [| 9 |]
        (Pool.map_array pool ~f:(fun x -> x * x) [| 3 |]))

let test_map_reduce_index_order () =
  (* A non-commutative combine exposes any ordering leak. *)
  let input = Array.init 64 string_of_int in
  let expected = Array.fold_left ( ^ ) "" input in
  List.iter
    (fun jobs ->
      Pool.with_pool ~domains:jobs (fun pool ->
          Alcotest.(check string)
            (Printf.sprintf "jobs=%d concatenation in index order" jobs)
            expected
            (Pool.map_reduce pool ~f:Fun.id ~combine:( ^ ) ~init:"" input)))
    jobs_grid

let test_exception_propagation () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~domains:jobs (fun pool ->
          (* Many tiny tasks, one raising: the batch drains, the exception
             reaches the submitter, and the pool stays usable. *)
          let input = Array.init 1000 (fun i -> i) in
          (try
             ignore
               (Pool.map_array pool input ~f:(fun i -> if i = 321 then raise (Boom i) else i));
             Alcotest.fail "exception not propagated"
           with Boom i -> Alcotest.(check int) "boom index" 321 i);
          Alcotest.(check (array int)) "pool usable after failure"
            (Array.map (fun i -> i + 1) input)
            (Pool.map_array pool input ~f:(fun i -> i + 1))))
    jobs_grid

let test_exception_smallest_index_wins () =
  (* Several failing units: the re-raised exception must be the one of the
     smallest index, whatever the scheduling. *)
  List.iter
    (fun jobs ->
      Pool.with_pool ~domains:jobs (fun pool ->
          let input = Array.init 200 (fun i -> i) in
          try
            ignore
              (Pool.map_array pool input ~f:(fun i ->
                   if i mod 50 = 17 then raise (Boom i) else i));
            Alcotest.fail "exception not propagated"
          with Boom i -> Alcotest.(check int) "smallest failing index" 17 i))
    jobs_grid

let test_chunk_matches_serial () =
  (* Explicit chunk sizes — including degenerate ones larger than the
     input — must not change results or ordering. *)
  let input = Array.init 257 (fun i -> i) in
  let f i = (i * 31) mod 101 in
  let expected = Array.map f input in
  List.iter
    (fun jobs ->
      Pool.with_pool ~domains:jobs (fun pool ->
          List.iter
            (fun chunk ->
              Alcotest.(check (array int))
                (Printf.sprintf "jobs=%d chunk=%d map_array" jobs chunk)
                expected
                (Pool.map_array pool ~chunk ~f input);
              Alcotest.(check int)
                (Printf.sprintf "jobs=%d chunk=%d map_reduce" jobs chunk)
                (Array.fold_left ( + ) 0 expected)
                (Pool.map_reduce pool ~chunk ~f ~combine:( + ) ~init:0 input))
            [ 1; 3; 64; 1000 ]))
    jobs_grid

let test_chunk_smallest_index_wins () =
  (* The smallest-failing-index guarantee must survive chunked dispatch. *)
  List.iter
    (fun chunk ->
      Pool.with_pool ~domains:4 (fun pool ->
          let input = Array.init 200 (fun i -> i) in
          try
            ignore
              (Pool.map_array pool ~chunk input ~f:(fun i ->
                   if i mod 50 = 17 then raise (Boom i) else i));
            Alcotest.fail "exception not propagated"
          with Boom i -> Alcotest.(check int) "smallest failing index" 17 i))
    [ 1; 3; 64; 1000 ]

let test_chunk_validation () =
  Pool.with_pool ~domains:2 (fun pool ->
      Alcotest.check_raises "chunk must be positive"
        (Invalid_argument "Pool.map_array: chunk must be positive") (fun () ->
          ignore (Pool.map_array pool ~chunk:0 ~f:Fun.id [| 1 |])))

let test_stress_many_small_batches () =
  (* Many batches of tiny tasks through one pool: exercises the queue
     wake-ups and the per-call completion latch. *)
  Pool.with_pool ~domains:4 (fun pool ->
      for round = 1 to 50 do
        let n = 1 + (round mod 7) * 37 in
        let out = Pool.map_array pool ~f:(fun i -> i * 2) (Array.init n (fun i -> i)) in
        Alcotest.(check int) "length" n (Array.length out);
        Array.iteri (fun i v -> Alcotest.(check int) "value" (2 * i) v) out
      done)

let test_shutdown () =
  let pool = Pool.create ~domains:3 in
  Alcotest.(check int) "domains" 3 (Pool.domains pool);
  ignore (Pool.map_array pool ~f:succ (Array.init 10 (fun i -> i)));
  Pool.shutdown pool;
  (* Idempotent, and the pool refuses further work once its domains are
     joined. *)
  Pool.shutdown pool;
  Alcotest.check_raises "unusable after shutdown"
    (Invalid_argument "Pool.map_array: pool has been shut down") (fun () ->
      ignore (Pool.map_array pool ~f:succ [| 1 |]));
  let serial = Pool.create ~domains:1 in
  Alcotest.(check int) "serial pool" 1 (Pool.domains serial);
  Pool.shutdown serial;
  Alcotest.check_raises "at least one domain" (Invalid_argument "Pool.create: need at least one domain")
    (fun () -> ignore (Pool.create ~domains:0))

(* ------------------------------------------------------------------ *)
(* Runner jobs-invariance                                              *)
(* ------------------------------------------------------------------ *)

let small_figure ~jobs =
  Runner.run ~id:"par" ~title:"par" ~x_label:"n" ~jobs ~xs:[ 4; 6; 8 ] ~replicates:4
    ~gen:(fun ~x ~seed ->
      Mf_workload.Gen.chain (Mf_prng.Rng.create seed)
        (Mf_workload.Gen.default ~tasks:x ~types:2 ~machines:4))
    ~algos:[ Runner.heuristic Registry.H4w; Runner.heuristic Registry.H2; Runner.heuristic Registry.H1 ]
    ()

let test_runner_jobs_invariant () =
  let serial = small_figure ~jobs:1 in
  List.iter
    (fun jobs ->
      let fig = small_figure ~jobs in
      (* Structural equality down to the raw float bits of every replicate:
         the whole point of per-unit seed derivation. *)
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d figure identical to serial" jobs)
        true
        (Stdlib.compare serial fig = 0))
    [ 2; 4 ]

let () =
  Alcotest.run "mf_parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map_array = serial map" `Quick test_map_array_matches_serial;
          Alcotest.test_case "empty and single" `Quick test_map_array_empty_and_single;
          Alcotest.test_case "map_reduce index order" `Quick test_map_reduce_index_order;
          Alcotest.test_case "exception propagation" `Quick test_exception_propagation;
          Alcotest.test_case "smallest index wins" `Quick test_exception_smallest_index_wins;
          Alcotest.test_case "chunked dispatch = serial map" `Quick test_chunk_matches_serial;
          Alcotest.test_case "chunked smallest index wins" `Quick test_chunk_smallest_index_wins;
          Alcotest.test_case "chunk validation" `Quick test_chunk_validation;
          Alcotest.test_case "stress small batches" `Quick test_stress_many_small_batches;
          Alcotest.test_case "shutdown" `Quick test_shutdown;
        ] );
      ( "runner",
        [ Alcotest.test_case "jobs-invariant figure" `Quick test_runner_jobs_invariant ] );
    ]
