(* Cross-solver differential fuzzer: runs the Mf_proptest.Oracle matrix,
   replays the committed seed corpus, and self-tests the harness with the
   injected-bug canary.

     fuzz_main --quick            CI tier: fixed seeds, bounded counts
     fuzz_main --time 120         time-budgeted tier with fresh seeds
     fuzz_main --replay           corpus replay only
     fuzz_main --canary           harness self-test only
     fuzz_main --oracle NAME      restrict the matrix to one oracle
     fuzz_main --seed N --count N override the defaults
     fuzz_main --list             print the matrix and exit

   Any failure prints the shrunk counterexample, writes a .repro seed
   file into the corpus directory (commit it to pin the regression) and
   exits non-zero. *)

module Oracle = Mf_proptest.Oracle
module Corpus = Mf_proptest.Corpus

let default_seed = 0x5eed_2026
let default_corpus = Filename.concat (Filename.concat "test" "fuzz") "corpus"

type mode = Quick | Timed of float | Replay | Canary_only | List

let usage () =
  prerr_endline
    "usage: fuzz_main [--quick | --time SECS | --replay | --canary | --list]\n\
    \                 [--oracle NAME] [--seed N] [--count N] [--corpus DIR]";
  exit 2

let parse_args () =
  let mode = ref Quick in
  let oracle = ref None in
  let seed = ref default_seed in
  let count = ref None in
  let corpus = ref default_corpus in
  let rec go = function
    | [] -> ()
    | "--quick" :: rest -> mode := Quick; go rest
    | "--time" :: v :: rest -> (
      match float_of_string_opt v with
      | Some t when t > 0.0 -> mode := Timed t; go rest
      | _ -> usage ())
    | "--replay" :: rest -> mode := Replay; go rest
    | "--canary" :: rest -> mode := Canary_only; go rest
    | "--list" :: rest -> mode := List; go rest
    | "--oracle" :: v :: rest -> oracle := Some v; go rest
    | "--seed" :: v :: rest -> (
      match int_of_string_opt v with Some s -> seed := s; go rest | None -> usage ())
    | "--count" :: v :: rest -> (
      match int_of_string_opt v with
      | Some c when c > 0 -> count := Some c; go rest
      | _ -> usage ())
    | "--corpus" :: v :: rest -> corpus := v; go rest
    | _ -> usage ()
  in
  go (List.tl (Array.to_list Sys.argv));
  (!mode, !oracle, !seed, !count, !corpus)

let selected = function
  | None -> Oracle.all
  | Some name -> (
    match Oracle.find name with
    | Some o -> [ o ]
    | None ->
      Printf.eprintf "unknown oracle %S; known: %s\n" name
        (String.concat ", " (List.map Oracle.name Oracle.all));
      exit 2)

let report_failure ~corpus_dir (f : Oracle.failed) ~oracle =
  Printf.printf "  FAIL case %d (seed %d, %d shrink steps): %s\n" f.Oracle.case_index
    f.Oracle.case_seed f.Oracle.shrink_steps f.Oracle.message;
  print_string
    (String.concat "\n"
       (List.map (fun l -> "    | " ^ l)
          (String.split_on_char '\n' (String.trim f.Oracle.repr))));
  print_newline ();
  let note =
    Printf.sprintf "%s\nshrunk counterexample:\n%s" f.Oracle.message
      (String.trim f.Oracle.repr)
  in
  let path =
    Corpus.save ~dir:corpus_dir ~oracle ~case_seed:f.Oracle.case_seed ~note
  in
  Printf.printf "  repro saved to %s (commit it to pin the regression)\n" path;
  Printf.printf "  replay: fuzz_main --replay --corpus %s\n" corpus_dir

let run_matrix ~oracles ~seed ~count ~corpus_dir =
  List.fold_left
    (fun failures o ->
      let t0 = Unix.gettimeofday () in
      let outcome = Oracle.run ?count ~seed o in
      let dt = Unix.gettimeofday () -. t0 in
      match outcome.Oracle.failed with
      | None ->
        Printf.printf "ok   %-16s %4d cases  %5.2fs  (seed %d)\n" (Oracle.name o)
          outcome.Oracle.cases dt seed;
        failures
      | Some f ->
        Printf.printf "FAIL %-16s after %d cases  (seed %d)\n" (Oracle.name o)
          outcome.Oracle.cases seed;
        report_failure ~corpus_dir f ~oracle:(Oracle.name o);
        failures + 1)
    0 oracles

let run_replay ~oracles ~corpus_dir =
  let entries, errors = Corpus.load_dir corpus_dir in
  List.iter (fun e -> Printf.printf "corpus: %s\n" e) errors;
  let wanted = List.map Oracle.name oracles in
  let failures =
    List.fold_left
      (fun failures (e : Corpus.entry) ->
        if not (List.mem e.Corpus.oracle wanted) then failures
        else
          match Oracle.find e.Corpus.oracle with
          | None ->
            Printf.printf "FAIL %s: unknown oracle %S\n" e.Corpus.path e.Corpus.oracle;
            failures + 1
          | Some o -> (
            let outcome = Oracle.replay o ~case_seed:e.Corpus.case_seed in
            match outcome.Oracle.failed with
            | None ->
              Printf.printf "ok   replay %-16s seed %-12d (%s)\n" e.Corpus.oracle
                e.Corpus.case_seed
                (Filename.basename e.Corpus.path);
              failures
            | Some f ->
              Printf.printf "FAIL replay %-16s seed %d (%s)\n" e.Corpus.oracle
                e.Corpus.case_seed e.Corpus.path;
              report_failure ~corpus_dir f ~oracle:e.Corpus.oracle;
              failures + 1))
      0 entries
  in
  (List.length errors + failures, List.length entries)

let run_one_canary ~name check ~seed =
  match check ~seed with
  | Error msg ->
    Printf.printf "FAIL %s: %s\n" name msg;
    1
  | Ok (tasks, machines) ->
    Printf.printf "ok   %s caught the injected bug; shrunk repro: %d task%s, %d machine%s\n"
      name tasks (if tasks = 1 then "" else "s")
      machines (if machines = 1 then "" else "s");
    if tasks <= 6 && machines <= 3 then 0
    else begin
      Printf.printf "FAIL %s: shrunk repro too large (want <= 6 tasks, <= 3 machines)\n"
        name;
      1
    end

let run_canary ~seed =
  run_one_canary ~name:"canary" Oracle.canary_check ~seed
  + run_one_canary ~name:"remap-canary" Oracle.remap_canary_check ~seed

let () =
  let mode, oracle, seed, count, corpus_dir = parse_args () in
  let oracles = selected oracle in
  let failures =
    match mode with
    | List ->
      List.iter
        (fun o ->
          Printf.printf "%-16s %4d quick cases  %s\n" (Oracle.name o)
            (Oracle.quick_cases o) (Oracle.description o))
        (Oracle.all @ [ Oracle.canary; Oracle.remap_canary ]);
      0
    | Canary_only -> run_canary ~seed
    | Replay ->
      let failures, total = run_replay ~oracles ~corpus_dir in
      Printf.printf "replayed %d corpus entr%s\n" total (if total = 1 then "y" else "ies");
      failures
    | Quick ->
      let f = run_matrix ~oracles ~seed ~count ~corpus_dir in
      let f = f + (if oracle = None then run_canary ~seed else 0) in
      let replay_failures, total = run_replay ~oracles ~corpus_dir in
      Printf.printf "replayed %d corpus entr%s\n" total (if total = 1 then "y" else "ies");
      f + replay_failures
    | Timed budget ->
      let t0 = Unix.gettimeofday () in
      let failures = ref 0 in
      let round = ref 0 in
      while Unix.gettimeofday () -. t0 < budget && !failures = 0 do
        let round_seed = seed + (1_000_003 * !round) in
        Printf.printf "--- round %d (seed %d, %.0fs elapsed)\n" !round round_seed
          (Unix.gettimeofday () -. t0);
        failures := !failures + run_matrix ~oracles ~seed:round_seed ~count ~corpus_dir;
        incr round
      done;
      !failures + (if oracle = None then run_canary ~seed else 0)
  in
  if failures > 0 then begin
    Printf.printf "%d failure%s\n" failures (if failures = 1 then "" else "s");
    exit 1
  end
