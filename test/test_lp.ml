(* Tests for mf_lp: Linexpr, Model, Simplex (float and exact), Branch_bound,
   and the paper's Micro_mip validated against brute force. *)

module Linexpr = Mf_lp.Linexpr
module Model = Mf_lp.Model
module Mip = Mf_lp.Mip
module Branch_bound = Mf_lp.Branch_bound
module Micro_mip = Mf_lp.Micro_mip
module Instance = Mf_core.Instance
module Mapping = Mf_core.Mapping
module Period = Mf_core.Period
module Gen = Mf_workload.Gen
module Rng = Mf_prng.Rng

(* ------------------------------------------------------------------ *)
(* Linexpr                                                             *)
(* ------------------------------------------------------------------ *)

let test_linexpr_basics () =
  let e = Linexpr.of_terms [ (2.0, 0); (3.0, 1); (-2.0, 0) ] 5.0 in
  Alcotest.(check (float 0.0)) "coeff cancelled" 0.0 (Linexpr.coeff e 0);
  Alcotest.(check (float 0.0)) "coeff" 3.0 (Linexpr.coeff e 1);
  Alcotest.(check (float 0.0)) "constant" 5.0 (Linexpr.constant e);
  Alcotest.(check (list int)) "vars" [ 1 ] (Linexpr.vars e);
  Alcotest.(check (float 0.0)) "eval" 11.0 (Linexpr.eval e (fun _ -> 2.0))

let test_linexpr_algebra () =
  let a = Linexpr.of_terms [ (1.0, 0); (2.0, 1) ] 1.0 in
  let b = Linexpr.of_terms [ (3.0, 1); (4.0, 2) ] 2.0 in
  let s = Linexpr.add a b in
  Alcotest.(check (float 0.0)) "add coeff" 5.0 (Linexpr.coeff s 1);
  Alcotest.(check (float 0.0)) "add const" 3.0 (Linexpr.constant s);
  let d = Linexpr.sub a b in
  Alcotest.(check (float 0.0)) "sub coeff" (-1.0) (Linexpr.coeff d 1);
  let k = Linexpr.scale 2.0 a in
  Alcotest.(check (float 0.0)) "scale" 4.0 (Linexpr.coeff k 1);
  Alcotest.(check (float 0.0)) "scale by zero is zero" 0.0
    (Linexpr.constant (Linexpr.scale 0.0 a))

(* ------------------------------------------------------------------ *)
(* LP relaxation on known problems                                     *)
(* ------------------------------------------------------------------ *)

(* max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 -> optimum (4,0), value 12. *)
let test_lp_textbook_max () =
  let m = Model.create () in
  let x = Model.add_var m ~name:"x" Model.Continuous in
  let y = Model.add_var m ~name:"y" Model.Continuous in
  Model.add_constraint m (Linexpr.of_terms [ (1.0, x); (1.0, y) ] 0.0) Model.Le 4.0;
  Model.add_constraint m (Linexpr.of_terms [ (1.0, x); (3.0, y) ] 0.0) Model.Le 6.0;
  Model.set_objective m ~minimize:false (Linexpr.of_terms [ (3.0, x); (2.0, y) ] 0.0);
  match Mip.solve_relaxation m with
  | `Optimal (sol, obj) ->
    Alcotest.(check (float 1e-7)) "objective" 12.0 obj;
    Alcotest.(check (float 1e-7)) "x" 4.0 sol.(x);
    Alcotest.(check (float 1e-7)) "y" 0.0 sol.(y)
  | _ -> Alcotest.fail "expected optimal"

(* min x + y s.t. x + 2y >= 3, 3x + y >= 4 -> intersection (1,1), value 2. *)
let test_lp_textbook_min () =
  let m = Model.create () in
  let x = Model.add_var m Model.Continuous in
  let y = Model.add_var m Model.Continuous in
  Model.add_constraint m (Linexpr.of_terms [ (1.0, x); (2.0, y) ] 0.0) Model.Ge 3.0;
  Model.add_constraint m (Linexpr.of_terms [ (3.0, x); (1.0, y) ] 0.0) Model.Ge 4.0;
  Model.set_objective m ~minimize:true (Linexpr.of_terms [ (1.0, x); (1.0, y) ] 0.0);
  match Mip.solve_relaxation m with
  | `Optimal (sol, obj) ->
    Alcotest.(check (float 1e-7)) "objective" 2.0 obj;
    Alcotest.(check (float 1e-7)) "x" 1.0 sol.(x);
    Alcotest.(check (float 1e-7)) "y" 1.0 sol.(y)
  | _ -> Alcotest.fail "expected optimal"

let test_lp_equality_and_bounds () =
  (* min -x with x + y = 2, x in [0, 1.5], y >= 0 -> x = 1.5. *)
  let m = Model.create () in
  let x = Model.add_var m ~hi:1.5 Model.Continuous in
  let y = Model.add_var m Model.Continuous in
  Model.add_constraint m (Linexpr.of_terms [ (1.0, x); (1.0, y) ] 0.0) Model.Eq 2.0;
  Model.set_objective m ~minimize:true (Linexpr.var ~coeff:(-1.0) x);
  match Mip.solve_relaxation m with
  | `Optimal (sol, obj) ->
    Alcotest.(check (float 1e-7)) "x at bound" 1.5 sol.(x);
    Alcotest.(check (float 1e-7)) "obj" (-1.5) obj
  | _ -> Alcotest.fail "expected optimal"

let test_lp_free_variable () =
  (* min x with x free, x >= -7 via constraint -> -7. *)
  let m = Model.create () in
  let x = Model.add_var m ~lo:neg_infinity Model.Continuous in
  Model.add_constraint m (Linexpr.var x) Model.Ge (-7.0);
  Model.set_objective m ~minimize:true (Linexpr.var x);
  match Mip.solve_relaxation m with
  | `Optimal (sol, obj) ->
    Alcotest.(check (float 1e-7)) "x" (-7.0) sol.(x);
    Alcotest.(check (float 1e-7)) "obj" (-7.0) obj
  | _ -> Alcotest.fail "expected optimal"

let test_lp_infeasible () =
  let m = Model.create () in
  let x = Model.add_var m Model.Continuous in
  Model.add_constraint m (Linexpr.var x) Model.Le 1.0;
  Model.add_constraint m (Linexpr.var x) Model.Ge 2.0;
  Model.set_objective m ~minimize:true (Linexpr.var x);
  (match Mip.solve_relaxation m with
  | `Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible")

let test_lp_unbounded () =
  let m = Model.create () in
  let x = Model.add_var m Model.Continuous in
  Model.set_objective m ~minimize:false (Linexpr.var x);
  (match Mip.solve_relaxation m with
  | `Unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded")

let test_lp_degenerate () =
  (* Degenerate vertex: three constraints meet at (0,0); Bland's rule must
     still terminate. *)
  let m = Model.create () in
  let x = Model.add_var m Model.Continuous in
  let y = Model.add_var m Model.Continuous in
  Model.add_constraint m (Linexpr.of_terms [ (1.0, x); (1.0, y) ] 0.0) Model.Ge 0.0;
  Model.add_constraint m (Linexpr.of_terms [ (1.0, x); (-1.0, y) ] 0.0) Model.Ge 0.0;
  Model.add_constraint m (Linexpr.of_terms [ (1.0, x); (2.0, y) ] 0.0) Model.Le 4.0;
  Model.set_objective m ~minimize:false (Linexpr.of_terms [ (1.0, x); (1.0, y) ] 0.0);
  match Mip.solve_relaxation m with
  | `Optimal (_, obj) -> Alcotest.(check (float 1e-7)) "objective" 4.0 obj
  | _ -> Alcotest.fail "expected optimal"

(* ------------------------------------------------------------------ *)
(* Exact rational simplex agreement                                    *)
(* ------------------------------------------------------------------ *)

let random_model rng ~nvars ~ncons =
  let m = Model.create () in
  let vars =
    Array.init nvars (fun _ -> Model.add_var m ~hi:(Rng.uniform rng ~lo:1.0 ~hi:10.0) Model.Continuous)
  in
  for _ = 1 to ncons do
    let terms =
      Array.to_list
        (Array.map (fun v -> (Rng.uniform rng ~lo:(-3.0) ~hi:3.0, v)) vars)
    in
    let rel = if Rng.bool rng then Model.Le else Model.Ge in
    let rhs = Rng.uniform rng ~lo:(-5.0) ~hi:10.0 in
    Model.add_constraint m (Linexpr.of_terms terms 0.0) rel rhs
  done;
  let obj =
    Array.to_list (Array.map (fun v -> (Rng.uniform rng ~lo:(-2.0) ~hi:2.0, v)) vars)
  in
  Model.set_objective m ~minimize:(Rng.bool rng) (Linexpr.of_terms obj 0.0);
  m

let test_float_vs_exact_simplex () =
  let rng = Rng.create 77 in
  let agree = ref 0 in
  for _ = 1 to 25 do
    let m = random_model rng ~nvars:4 ~ncons:4 in
    match (Mip.solve_relaxation m, Mip.solve_relaxation_exact m) with
    | `Optimal (_, f), `Optimal (_, e) ->
      Alcotest.(check bool)
        (Printf.sprintf "objectives agree (%g vs %g)" f e)
        true
        (Float.abs (f -. e) <= 1e-6 *. Float.max 1.0 (Float.abs e));
      incr agree
    | `Infeasible, `Infeasible | `Unbounded, `Unbounded -> incr agree
    | _ -> Alcotest.fail "float and exact simplex disagree on status"
  done;
  Alcotest.(check int) "all cases checked" 25 !agree

(* ------------------------------------------------------------------ *)
(* Branch and bound                                                    *)
(* ------------------------------------------------------------------ *)

let test_mip_knapsack () =
  (* max 5a + 4b + 3c s.t. 2a + 3b + c <= 5, binaries -> a=b=1, value 9. *)
  let m = Model.create () in
  let a = Model.add_var m Model.Binary in
  let b = Model.add_var m Model.Binary in
  let c = Model.add_var m Model.Binary in
  Model.add_constraint m (Linexpr.of_terms [ (2.0, a); (3.0, b); (1.0, c) ] 0.0) Model.Le 5.0;
  Model.set_objective m ~minimize:false
    (Linexpr.of_terms [ (5.0, a); (4.0, b); (3.0, c) ] 0.0);
  let r = Mip.solve m in
  Alcotest.(check bool) "optimal" true (r.Branch_bound.status = Branch_bound.Optimal);
  (match r.Branch_bound.objective with
  | Some obj -> Alcotest.(check (float 1e-6)) "value" 9.0 obj
  | None -> Alcotest.fail "no objective");
  match r.Branch_bound.solution with
  | Some sol ->
    Alcotest.(check (float 1e-9)) "a" 1.0 sol.(a);
    Alcotest.(check (float 1e-9)) "b" 1.0 sol.(b);
    Alcotest.(check (float 1e-9)) "c" 0.0 sol.(c)
  | None -> Alcotest.fail "no solution"

let test_mip_integer_rounding_matters () =
  (* max x + y s.t. 2x + 2y <= 5, integers -> LP gives 2.5, MIP gives 2. *)
  let m = Model.create () in
  let x = Model.add_var m Model.Integer in
  let y = Model.add_var m Model.Integer in
  Model.add_constraint m (Linexpr.of_terms [ (2.0, x); (2.0, y) ] 0.0) Model.Le 5.0;
  Model.set_objective m ~minimize:false (Linexpr.of_terms [ (1.0, x); (1.0, y) ] 0.0);
  let r = Mip.solve m in
  (match r.Branch_bound.objective with
  | Some obj -> Alcotest.(check (float 1e-6)) "value" 2.0 obj
  | None -> Alcotest.fail "no objective");
  match Mip.solve_relaxation m with
  | `Optimal (_, lp) -> Alcotest.(check (float 1e-6)) "relaxation" 2.5 lp
  | _ -> Alcotest.fail "expected optimal relaxation"

let test_mip_infeasible () =
  let m = Model.create () in
  let x = Model.add_var m Model.Binary in
  Model.add_constraint m (Linexpr.var x) Model.Ge 0.4;
  Model.add_constraint m (Linexpr.var x) Model.Le 0.6;
  Model.set_objective m ~minimize:true (Linexpr.var x);
  let r = Mip.solve m in
  Alcotest.(check bool) "infeasible" true (r.Branch_bound.status = Branch_bound.Infeasible)

let test_mip_solution_feasible () =
  (* Whatever the MIP returns must pass the model's own feasibility check. *)
  let m = Model.create () in
  let xs = Array.init 5 (fun _ -> Model.add_var m Model.Binary) in
  Model.add_constraint m
    (Linexpr.of_terms (Array.to_list (Array.map (fun v -> (1.0, v)) xs)) 0.0)
    Model.Ge 2.0;
  Model.add_constraint m
    (Linexpr.of_terms [ (1.0, xs.(0)); (1.0, xs.(1)) ] 0.0)
    Model.Le 1.0;
  Model.set_objective m ~minimize:true
    (Linexpr.of_terms (Array.to_list (Array.mapi (fun i v -> (float_of_int (i + 1), v)) xs)) 0.0);
  let r = Mip.solve m in
  match r.Branch_bound.solution with
  | Some sol -> Alcotest.(check (option string)) "feasible" None (Model.check_feasible m sol ~tol:1e-6)
  | None -> Alcotest.fail "expected a solution"

(* ------------------------------------------------------------------ *)
(* Micro MIP vs brute force - the validation that matters              *)
(* ------------------------------------------------------------------ *)

let test_micro_mip_matches_brute () =
  for seed = 1 to 8 do
    let inst = Gen.chain (Rng.create seed) (Gen.default ~tasks:4 ~types:2 ~machines:3) in
    let _, expected = Mf_exact.Brute.specialized inst in
    let r = Micro_mip.solve inst in
    Alcotest.(check bool)
      (Printf.sprintf "solved (seed %d)" seed)
      true
      (r.Micro_mip.status = Branch_bound.Optimal);
    (match (r.Micro_mip.mapping, r.Micro_mip.period) with
    | Some mp, Some period ->
      Alcotest.(check bool) "specialized" true (Mapping.satisfies inst mp Mapping.Specialized);
      Alcotest.(check bool)
        (Printf.sprintf "period %.3f matches brute %.3f (seed %d)" period expected seed)
        true
        (Float.abs (period -. expected) <= 1e-4 *. expected)
    | _ -> Alcotest.fail "no mapping decoded")
  done

let test_micro_mip_k_close_to_period () =
  let inst = Gen.chain (Rng.create 3) (Gen.default ~tasks:4 ~types:2 ~machines:3) in
  let r = Micro_mip.solve inst in
  match (r.Micro_mip.k, r.Micro_mip.period) with
  | Some k, Some period ->
    Alcotest.(check bool)
      (Printf.sprintf "K=%.4f vs recomputed period=%.4f" k period)
      true
      (Float.abs (k -. period) <= 1e-4 *. period)
  | _ -> Alcotest.fail "expected K and period"

let test_micro_mip_on_tree () =
  let inst = Gen.in_tree (Rng.create 5) (Gen.default ~tasks:4 ~types:2 ~machines:3) in
  let _, expected = Mf_exact.Brute.specialized inst in
  let r = Micro_mip.solve inst in
  match r.Micro_mip.period with
  | Some period ->
    Alcotest.(check bool)
      (Printf.sprintf "tree period %.3f vs %.3f" period expected)
      true
      (Float.abs (period -. expected) <= 1e-4 *. expected)
  | None -> Alcotest.fail "expected a solution"

let test_micro_mip_build_shape () =
  let inst = Gen.chain (Rng.create 1) (Gen.default ~tasks:3 ~types:2 ~machines:2) in
  let model, (a, t, x, y, _) = Micro_mip.build inst in
  (* n*m a-vars + m*p t-vars + n x-vars + n*m y-vars + K. *)
  Alcotest.(check int) "var count" ((3 * 2) + (2 * 2) + 3 + (3 * 2) + 1) (Model.var_count model);
  Alcotest.(check int) "a dims" 3 (Array.length a);
  Alcotest.(check int) "t dims" 2 (Array.length t);
  Alcotest.(check int) "x dims" 3 (Array.length x);
  Alcotest.(check int) "y dims" 3 (Array.length y);
  (* (3): n rows; (4): m rows; (5): n*m; (6): n*m; (7): m; (8): 3*n*m. *)
  Alcotest.(check int) "constraint count"
    (3 + 2 + (3 * 2) + (3 * 2) + 2 + (3 * 3 * 2))
    (Model.constraint_count model)

(* ------------------------------------------------------------------ *)
(* Splitting extension (future work)                                   *)
(* ------------------------------------------------------------------ *)

module Splitting = Mf_lp.Splitting

(* Unwrap the typed result; a failure is a test failure with the typed
   diagnostic (the untyped [solve_exn] escape hatch no longer exists). *)
let splitting_solve inst =
  match Splitting.solve inst with
  | Ok r -> r
  | Error e -> Alcotest.failf "Splitting.solve failed: %s" (Splitting.describe_error e)

let test_splitting_lower_bound () =
  for seed = 1 to 8 do
    let inst = Gen.chain (Rng.create seed) (Gen.default ~tasks:5 ~types:2 ~machines:3) in
    let r = splitting_solve inst in
    let _, opt = Mf_exact.Brute.specialized inst in
    Alcotest.(check bool)
      (Printf.sprintf "LP %.2f <= exact %.2f (seed %d)" r.Splitting.period opt seed)
      true
      (r.Splitting.period <= opt +. (1e-6 *. opt))
  done

let test_splitting_single_machine_exact () =
  (* With one machine the LP and the unique mapping coincide. *)
  let inst = Gen.chain (Rng.create 3) (Gen.default ~tasks:4 ~types:1 ~machines:1) in
  let r = splitting_solve inst in
  let mp = Mapping.of_array inst [| 0; 0; 0; 0 |] in
  Alcotest.(check bool) "LP equals single-machine period" true
    (Float.abs (r.Splitting.period -. Period.period inst mp) <= 1e-6 *. r.Splitting.period)

let test_splitting_shares_normalised () =
  let inst = Gen.chain (Rng.create 7) (Gen.default ~tasks:6 ~types:2 ~machines:4) in
  let r = splitting_solve inst in
  Array.iteri
    (fun i row ->
      let total = Array.fold_left ( +. ) 0.0 row in
      Alcotest.(check bool) (Printf.sprintf "task %d shares sum to 1" i) true
        (Float.abs (total -. 1.0) < 1e-6);
      Array.iter (fun s -> Alcotest.(check bool) "share in [0,1]" true (s >= -1e-9 && s <= 1.0 +. 1e-9)) row)
    r.Splitting.shares

let test_splitting_loads_below_period () =
  let inst = Gen.chain (Rng.create 9) (Gen.default ~tasks:6 ~types:2 ~machines:4) in
  let r = splitting_solve inst in
  Array.iter
    (fun load ->
      Alcotest.(check bool) "load <= K" true (load <= r.Splitting.period +. 1e-6))
    r.Splitting.loads

let test_splitting_round_feasible () =
  for seed = 1 to 8 do
    let inst = Gen.chain (Rng.create seed) (Gen.default ~tasks:8 ~types:3 ~machines:4) in
    let r = splitting_solve inst in
    let mp, period = Splitting.round_exn inst r in
    Alcotest.(check bool) "specialized" true (Mapping.satisfies inst mp Mapping.Specialized);
    Alcotest.(check bool) "integral period >= LP bound" true
      (period >= r.Splitting.period -. (1e-6 *. period));
    Alcotest.(check (float 1e-9)) "period consistent" (Period.period inst mp) period
  done

(* ------------------------------------------------------------------ *)
(* New-solver unit tests: non-finite rejection, stall budget, warm     *)
(* start, Bland baseline agreement                                     *)
(* ------------------------------------------------------------------ *)

module Simplex = Mf_lp.Simplex
module Rat = Mf_numeric.Rat

let test_simplex_rejects_non_finite () =
  let module S = Simplex.Float_solver in
  let expect name (row, col) f =
    match f () with
    | exception Simplex.Non_finite loc ->
      Alcotest.(check (pair int int)) name (row, col) (loc.row, loc.col)
    | _ -> Alcotest.fail (name ^ ": expected Non_finite")
  in
  expect "nan in a row" (1, 0) (fun () ->
      S.solve ~a:[| [| 1.0; 0.0 |]; [| Float.nan; 1.0 |] |] ~b:[| 1.0; 1.0 |] ~c:[| 1.0; 1.0 |]);
  expect "infinite rhs reported as col n" (0, 2) (fun () ->
      S.solve ~a:[| [| 1.0; 0.0 |] |] ~b:[| Float.infinity |] ~c:[| 1.0; 1.0 |]);
  expect "nan objective reported as row -1" (-1, 1) (fun () ->
      S.solve ~a:[| [| 1.0; 1.0 |] |] ~b:[| 1.0 |] ~c:[| 0.0; Float.nan |])

let test_simplex_stall_budget () =
  let module S = Simplex.Float_solver in
  let a = [| [| 1.0; 1.0; 1.0; 0.0 |]; [| 1.0; 3.0; 0.0; 1.0 |] |] in
  let b = [| 4.0; 6.0 |] in
  let c = [| -3.0; -2.0; 0.0; 0.0 |] in
  let d = S.solve_detailed ~iter_budget:1 ~a ~b ~c () in
  (match d.S.outcome with
  | S.Stalled -> ()
  | _ -> Alcotest.fail "expected Stalled under a 1-pivot budget");
  match S.solve ~a ~b ~c with
  | S.Optimal _ -> ()
  | _ -> Alcotest.fail "expected Optimal under the default budget"

(* Random dense standard-form LPs, feasible by construction: coefficients
   live on the 1/64 grid, and [b = A x0] for a random nonnegative [x0] on
   the same grid — products and row sums are then exact in double, so the
   system is feasible in float and in rational arithmetic alike.  Strictly
   positive rows keep it bounded, so every backend must report Optimal. *)
let random_standard_lp rng ~rows ~n =
  let grid lo hi = float_of_int (lo + Rng.int rng (hi - lo)) /. 64.0 in
  let a = Array.init rows (fun _ -> Array.init n (fun _ -> grid 32 608)) in
  let x0 = Array.init n (fun _ -> grid 0 192) in
  let b =
    Array.map (fun row -> Array.fold_left ( +. ) 0.0 (Array.map2 ( *. ) row x0)) a
  in
  let c = Array.init n (fun _ -> grid (-320) 320) in
  (a, b, c)

let test_simplex_warm_start_agrees () =
  let module FS = Simplex.Float_solver in
  let module RS = Simplex.Rat_solver in
  let rng = Rng.create 99 in
  for case = 1 to 25 do
    let a, b, c = random_standard_lp rng ~rows:3 ~n:6 in
    let d = FS.solve_detailed ~a ~b ~c () in
    let ra = Array.map (Array.map Rat.of_float) a in
    let rb = Array.map Rat.of_float b in
    let rc = Array.map Rat.of_float c in
    let warm = RS.solve_from_basis ~a:ra ~b:rb ~c:rc ~basis:d.FS.basis () in
    match (d.FS.outcome, warm.RS.outcome, RS.solve ~a:ra ~b:rb ~c:rc) with
    | FS.Optimal (_, fobj), RS.Optimal (_, wobj), RS.Optimal (_, cobj) ->
      Alcotest.(check bool)
        (Printf.sprintf "case %d: warm start = cold exact optimum" case)
        true
        (Rat.compare wobj cobj = 0);
      let exact = Rat.to_float cobj in
      Alcotest.(check bool)
        (Printf.sprintf "case %d: float within 1e-9 of exact" case)
        true
        (Float.abs (fobj -. exact) <= 1e-9 *. Float.max 1.0 (Float.abs exact))
    | _ -> Alcotest.fail (Printf.sprintf "case %d: expected Optimal on all paths" case)
  done

let test_simplex_bland_baseline_agrees () =
  let module S = Simplex.Float_solver in
  let rng = Rng.create 2718 in
  for case = 1 to 25 do
    let a, b, c = random_standard_lp rng ~rows:4 ~n:8 in
    match (S.solve ~a ~b ~c, S.solve_bland ~a ~b ~c) with
    | S.Optimal (_, devex), S.Optimal (_, bland) ->
      Alcotest.(check bool)
        (Printf.sprintf "case %d: Devex = Bland" case)
        true
        (Float.abs (devex -. bland) <= 1e-7 *. Float.max 1.0 (Float.abs bland))
    | _ -> Alcotest.fail (Printf.sprintf "case %d: expected Optimal from both" case)
  done

(* ------------------------------------------------------------------ *)
(* Splitting.round typed errors and deterministic tie-breaking         *)
(* ------------------------------------------------------------------ *)

let test_splitting_round_no_specialized_mapping () =
  (* Three types on two machines: the divisible LP still solves (splitting
     ignores the specialized rule) but rounding has no mapping to build. *)
  let inst = Gen.chain (Rng.create 5) (Gen.default ~tasks:6 ~types:3 ~machines:2) in
  match Splitting.solve inst with
  | Error e -> Alcotest.fail (Splitting.describe_error e)
  | Ok r -> (
    match Splitting.round inst r with
    | Error Splitting.No_specialized_mapping -> ()
    | Ok _ | Error _ -> Alcotest.fail "expected No_specialized_mapping")

let test_splitting_round_tie_breaks_low () =
  (* All-equal shares: every tie must resolve to the lowest eligible
     machine index, so with 2 types the mapping uses exactly machines
     {0, 1} out of 4. *)
  let inst = Gen.chain (Rng.create 11) (Gen.default ~tasks:4 ~types:2 ~machines:4) in
  let n = Instance.task_count inst in
  let m = Instance.machines inst in
  let r =
    {
      Splitting.period = 1.0;
      shares = Array.make_matrix n m (1.0 /. float_of_int m);
      loads = Array.make m 0.0;
      path = `Float;
      stats = Mip.zero_stats;
    }
  in
  match Splitting.round inst r with
  | Error e -> Alcotest.fail (Splitting.describe_round_error e)
  | Ok (mp, _) ->
    let used =
      List.sort_uniq compare (List.init n (fun i -> Mapping.machine mp i))
    in
    Alcotest.(check (list int)) "ties land on the lowest machine indices" [ 0; 1 ] used

(* ------------------------------------------------------------------ *)
(* lp-differential: the float path against the exact-rational solver   *)
(* on mixed-scale in-forest instances (the tableaus that stalled the   *)
(* previous Bland-under-absolute-eps solver)                           *)
(* ------------------------------------------------------------------ *)

(* Dyadic mixed-scale instances: integer "small" workloads in [1, 32]
   times a per-machine power-of-two scale up to [2^kmax], failure rates
   snapped to the 1/64 grid.  Every coefficient is exactly representable
   in both float and rational, so the float path faces genuinely
   mixed-scale, heavily tied (degenerate) tableaus while the exact
   ground truth stays affordable: tableau entries are ratios of
   small-numerator minors instead of the 52-bit monsters that
   [Rat.of_float] makes of uniform draws.  The family lives in
   Mf_proptest.Instances so the fuzz driver and this suite enumerate the
   same pool. *)
(* ------------------------------------------------------------------ *)
(* LU factorisation: round trips against dense Gaussian elimination    *)
(* ------------------------------------------------------------------ *)

module Float_field = Mf_numeric.Ordered_field.Float_field
module Sparse_f = Mf_lp.Sparse.Make (Float_field)
module Lu_f = Mf_lp.Lu.Make (Float_field)

(* Dense Gaussian elimination with partial pivoting: the reference
   solver the LU factors are checked against. *)
let dense_solve a b =
  let d = Array.length b in
  let m = Array.map Array.copy a in
  let x = Array.copy b in
  for k = 0 to d - 1 do
    let piv = ref k in
    for i = k + 1 to d - 1 do
      if Float.abs m.(i).(k) > Float.abs m.(!piv).(k) then piv := i
    done;
    let tmp = m.(k) in
    m.(k) <- m.(!piv);
    m.(!piv) <- tmp;
    let t = x.(k) in
    x.(k) <- x.(!piv);
    x.(!piv) <- t;
    for i = k + 1 to d - 1 do
      let f = m.(i).(k) /. m.(k).(k) in
      if f <> 0.0 then begin
        for j = k to d - 1 do
          m.(i).(j) <- m.(i).(j) -. (f *. m.(k).(j))
        done;
        x.(i) <- x.(i) -. (f *. x.(k))
      end
    done
  done;
  for k = d - 1 downto 0 do
    let s = ref x.(k) in
    for j = k + 1 to d - 1 do
      s := !s -. (m.(k).(j) *. x.(j))
    done;
    x.(k) <- !s /. m.(k).(k)
  done;
  x

(* Diagonally anchored random matrices: diagonal in [1,4), off-diagonal
   entries present with probability [density] in [-2,2).  Well enough
   conditioned that a 1e-6 absolute tolerance is meaningful, sparse
   enough to exercise the Markowitz ordering. *)
let random_lu_matrix rng d density =
  let a = Array.make_matrix d d 0.0 in
  for i = 0 to d - 1 do
    a.(i).(i) <- Rng.uniform rng ~lo:1.0 ~hi:4.0;
    for j = 0 to d - 1 do
      if i <> j && Rng.uniform rng ~lo:0.0 ~hi:1.0 < density then
        a.(i).(j) <- Rng.uniform rng ~lo:(-2.0) ~hi:2.0
    done
  done;
  a

let lu_factorize_dense a d =
  let sa = Sparse_f.of_dense a ~cols:d in
  let basis = Array.init d Fun.id in
  Lu_f.factorize ~dim:d ~col:(fun j f -> Sparse_f.iter_col sa j f) ~basis

let max_abs_diff got want =
  let err = ref 0.0 in
  Array.iteri (fun i g -> err := Float.max !err (Float.abs (g -. want.(i)))) got;
  !err

let test_lu_ftran_btran_roundtrip () =
  let rng = Rng.create 46 in
  for case = 1 to 150 do
    let d = 2 + Rng.int rng 15 in
    let a = random_lu_matrix rng d (Rng.uniform rng ~lo:0.1 ~hi:0.9) in
    let fac = lu_factorize_dense a d in
    (* With basis.(p) = p, basis-position indexing equals column
       indexing, so ftran/btran outputs compare directly. *)
    let b = Array.init d (fun _ -> Rng.uniform rng ~lo:(-5.0) ~hi:5.0) in
    let out = Array.make d 0.0 in
    Lu_f.ftran fac ~rhs:b ~out;
    let ferr = max_abs_diff out (dense_solve a b) in
    if ferr > 1e-6 then
      Alcotest.fail (Printf.sprintf "case %d (d=%d): ftran err %g" case d ferr);
    let c = Array.init d (fun _ -> Rng.uniform rng ~lo:(-5.0) ~hi:5.0) in
    let y = Array.make d 0.0 in
    Lu_f.btran fac ~cvec:c ~out:y;
    let at = Array.init d (fun i -> Array.init d (fun j -> a.(j).(i))) in
    let berr = max_abs_diff y (dense_solve at c) in
    if berr > 1e-6 then
      Alcotest.fail (Printf.sprintf "case %d (d=%d): btran err %g" case d berr)
  done

let test_lu_eta_update_vs_refactorize () =
  let rng = Rng.create 47 in
  let accepted = ref 0 in
  for case = 1 to 100 do
    let d = 2 + Rng.int rng 15 in
    let a = random_lu_matrix rng d (Rng.uniform rng ~lo:0.1 ~hi:0.9) in
    let fac = lu_factorize_dense a d in
    (* Apply a few column exchanges through the eta file, tracking the
       exchanged matrix densely; the updated factors must keep solving
       the current matrix. *)
    let acur = Array.map Array.copy a in
    let steps = 1 + Rng.int rng 5 in
    for _ = 1 to steps do
      let pos = Rng.int rng d in
      let newcol =
        Array.init d (fun _ ->
            if Rng.uniform rng ~lo:0.0 ~hi:1.0 < 0.5 then
              Rng.uniform rng ~lo:(-2.0) ~hi:2.0
            else 0.0)
      in
      (* Anchor the pivot entry so the eta pivot stays away from its
         floor and the update is (almost) always accepted. *)
      newcol.(pos) <- newcol.(pos) +. 3.0;
      let w = Array.make d 0.0 in
      Lu_f.ftran fac ~rhs:newcol ~out:w;
      if Lu_f.update fac ~w ~pos then begin
        incr accepted;
        for i = 0 to d - 1 do
          acur.(i).(pos) <- newcol.(i)
        done
      end
    done;
    let b = Array.init d (fun _ -> Rng.uniform rng ~lo:(-5.0) ~hi:5.0) in
    let out = Array.make d 0.0 in
    Lu_f.ftran fac ~rhs:b ~out;
    let xref = dense_solve acur b in
    let uerr = max_abs_diff out xref in
    if uerr > 1e-5 then
      Alcotest.fail
        (Printf.sprintf "case %d (d=%d, etas=%d): eta-updated ftran err %g" case d
           (Lu_f.eta_count fac) uerr);
    (* A fresh factorization of the exchanged matrix agrees with the
       eta-updated one. *)
    let fresh = lu_factorize_dense acur d in
    let out2 = Array.make d 0.0 in
    Lu_f.ftran fresh ~rhs:b ~out:out2;
    Alcotest.(check bool)
      (Printf.sprintf "case %d: fresh factorization has no etas" case)
      true
      (Lu_f.eta_count fresh = 0);
    let rerr = max_abs_diff out out2 in
    if rerr > 1e-5 then
      Alcotest.fail
        (Printf.sprintf "case %d (d=%d): eta update vs refactorize err %g" case d rerr)
  done;
  (* The anchored pivot should make acceptance the norm, not the
     exception — otherwise the test exercised nothing. *)
  Alcotest.(check bool)
    (Printf.sprintf "eta updates mostly accepted (%d)" !accepted)
    true (!accepted >= 200)

let test_lu_singular_detected () =
  (* Column 1 = 2 x column 0: structurally rank deficient. *)
  let a = [| [| 1.0; 2.0; 0.0 |]; [| 3.0; 6.0; 1.0 |]; [| 0.0; 0.0; 1.0 |] |] in
  (match lu_factorize_dense a 3 with
  | exception Mf_lp.Lu.Singular _ -> ()
  | _ -> Alcotest.fail "rank-deficient matrix factorized");
  (* Zero matrix fails at the first elimination step. *)
  let z = Array.make_matrix 2 2 0.0 in
  match lu_factorize_dense z 2 with
  | exception Mf_lp.Lu.Singular 0 -> ()
  | exception Mf_lp.Lu.Singular k ->
      Alcotest.fail (Printf.sprintf "zero matrix singular at step %d, expected 0" k)
  | _ -> Alcotest.fail "zero matrix factorized"

let dyadic_instance = Mf_proptest.Instances.dyadic_lp_instance

(* Small tier: cold exact ground truth (full two-phase rational solve). *)
let lp_differential_small = 200

let small_tier_instance i =
  dyadic_instance
    ~tasks:(4 + (i mod 9))
    ~machines:(2 + (i mod 4))
    ~kmax:(i mod 11)
    i

(* Large tier: sizes where a cold rational solve is unaffordable; ground
   truth is the rational solver warm-started from the float basis (the
   certification path itself, checked end to end against the float
   objective). *)
let lp_differential_large = [ (16, 4); (20, 4); (25, 4); (30, 4); (16, 6); (20, 6); (25, 6); (30, 6) ]

let lp_differential_total = lp_differential_small + List.length lp_differential_large

let check_rel name float_period exact_period =
  let rel =
    Float.abs (float_period -. exact_period) /. Float.max 1.0 (Float.abs exact_period)
  in
  if rel > 1e-9 then
    Alcotest.fail
      (Printf.sprintf "%s: period %.17g vs exact %.17g (rel %.3g)" name float_period
         exact_period rel)

let test_lp_differential () =
  let rational = ref 0 in
  let solved inst name =
    match Splitting.solve inst with
    | Error e -> Alcotest.fail (Printf.sprintf "%s: spurious %s" name (Splitting.describe_error e))
    | Ok r ->
      (match r.Splitting.path with `Rational -> incr rational | `Float -> ());
      r
  in
  for i = 0 to lp_differential_small - 1 do
    let name = Printf.sprintf "small %d" i in
    let inst = small_tier_instance i in
    let r = solved inst name in
    match Splitting.solve_exact inst with
    | Error e ->
      Alcotest.fail (Printf.sprintf "%s: exact solver says %s" name (Splitting.describe_error e))
    | Ok exact -> check_rel name r.Splitting.period exact
  done;
  List.iteri
    (fun idx (n, m) ->
      let name = Printf.sprintf "large %dx%d" n m in
      let inst = dyadic_instance ~tasks:n ~machines:m ~kmax:10 (1000 + idx) in
      let r = solved inst name in
      (* Warm-started exact certification as ground truth: realize the
         float solver's final basis in rational arithmetic and finish
         with exact phase-2 pivots. *)
      let module FS = Simplex.Float_solver in
      let module RS = Simplex.Rat_solver in
      let module Std = Mf_lp.Standardize in
      match Std.build (Splitting.model inst) with
      | None -> Alcotest.fail (name ^ ": standardize failed")
      | Some std -> (
        let d = FS.solve_sparse_detailed ~a:std.Std.a ~b:std.Std.b ~c:std.Std.c () in
        let ra = Mf_lp.Sparse.map_values Rat.of_float std.Std.a in
        let rb = Array.map Rat.of_float std.Std.b in
        let rc = Array.map Rat.of_float std.Std.c in
        let warm = RS.solve_sparse_from_basis ~a:ra ~b:rb ~c:rc ~basis:d.FS.basis () in
        match warm.RS.outcome with
        | RS.Optimal (_, obj) ->
          let rho = Std.model_objective std (Rat.to_float obj) in
          Alcotest.(check bool) (name ^ ": positive throughput") true (rho > 0.0);
          check_rel name r.Splitting.period (1.0 /. rho)
        | _ -> Alcotest.fail (name ^ ": warm-started exact solve not Optimal")))
    lp_differential_large;
  (* The fallback is a safety net, not the common path: the float solver
     should certify the overwhelming majority of the suite on its own. *)
  Alcotest.(check bool)
    (Printf.sprintf "rational fallback rare (%d/%d)" !rational lp_differential_total)
    true
    (10 * !rational <= lp_differential_total)

let () =
  Alcotest.run "mf_lp"
    [
      ( "linexpr",
        [
          Alcotest.test_case "basics" `Quick test_linexpr_basics;
          Alcotest.test_case "algebra" `Quick test_linexpr_algebra;
        ] );
      ( "simplex",
        [
          Alcotest.test_case "textbook max" `Quick test_lp_textbook_max;
          Alcotest.test_case "textbook min" `Quick test_lp_textbook_min;
          Alcotest.test_case "equality and bounds" `Quick test_lp_equality_and_bounds;
          Alcotest.test_case "free variable" `Quick test_lp_free_variable;
          Alcotest.test_case "infeasible" `Quick test_lp_infeasible;
          Alcotest.test_case "unbounded" `Quick test_lp_unbounded;
          Alcotest.test_case "degenerate" `Quick test_lp_degenerate;
          Alcotest.test_case "float vs exact" `Slow test_float_vs_exact_simplex;
          Alcotest.test_case "rejects non-finite" `Quick test_simplex_rejects_non_finite;
          Alcotest.test_case "stall budget" `Quick test_simplex_stall_budget;
          Alcotest.test_case "warm start" `Slow test_simplex_warm_start_agrees;
          Alcotest.test_case "bland baseline" `Quick test_simplex_bland_baseline_agrees;
        ] );
      ( "branch-bound",
        [
          Alcotest.test_case "knapsack" `Quick test_mip_knapsack;
          Alcotest.test_case "integer rounding" `Quick test_mip_integer_rounding_matters;
          Alcotest.test_case "infeasible" `Quick test_mip_infeasible;
          Alcotest.test_case "solution feasible" `Quick test_mip_solution_feasible;
        ] );
      ( "splitting",
        [
          Alcotest.test_case "lower bound" `Slow test_splitting_lower_bound;
          Alcotest.test_case "single machine" `Quick test_splitting_single_machine_exact;
          Alcotest.test_case "shares normalised" `Quick test_splitting_shares_normalised;
          Alcotest.test_case "loads below period" `Quick test_splitting_loads_below_period;
          Alcotest.test_case "rounding feasible" `Quick test_splitting_round_feasible;
          Alcotest.test_case "round without specialized mapping" `Quick
            test_splitting_round_no_specialized_mapping;
          Alcotest.test_case "round tie-breaks low" `Quick test_splitting_round_tie_breaks_low;
        ] );
      ( "lu",
        [
          Alcotest.test_case "ftran/btran vs dense" `Quick test_lu_ftran_btran_roundtrip;
          Alcotest.test_case "eta update vs refactorize" `Quick
            test_lu_eta_update_vs_refactorize;
          Alcotest.test_case "singular detected" `Quick test_lu_singular_detected;
        ] );
      ( "lp-differential",
        [ Alcotest.test_case "float path vs exact (208)" `Slow test_lp_differential ] );
      ( "micro-mip",
        [
          Alcotest.test_case "matches brute force" `Slow test_micro_mip_matches_brute;
          Alcotest.test_case "K equals period" `Slow test_micro_mip_k_close_to_period;
          Alcotest.test_case "works on trees" `Slow test_micro_mip_on_tree;
          Alcotest.test_case "model shape" `Quick test_micro_mip_build_shape;
        ] );
    ]
