(* Tests for the property-based fuzzing subsystem itself: shrinking
   actually minimises, generators keep their invariants at every shrink
   step, the runner is deterministic, the corpus round-trips, and the
   injected-bug canary is caught and shrunk to a tiny repro (the
   acceptance bar of the fuzz harness). *)

module Gen = Mf_proptest.Gen
module Prop = Mf_proptest.Prop
module Instances = Mf_proptest.Instances
module Oracle = Mf_proptest.Oracle
module Corpus = Mf_proptest.Corpus
module Instance = Mf_core.Instance
module Mapping = Mf_core.Mapping
module Workflow = Mf_core.Workflow

(* ------------------------------------------------------------------ *)
(* Shrinking                                                           *)
(* ------------------------------------------------------------------ *)

(* The greedy shrinker must land exactly on the boundary of the failing
   region: the smallest int >= 600 in [0, 1000]. *)
let test_shrink_int_to_boundary () =
  let report =
    Prop.check ~count:200 ~name:"int boundary" ~seed:7
      (Gen.int_range 0 1000)
      (fun v -> if v >= 600 then Error "too big" else Ok ())
  in
  match report.Prop.failure with
  | None -> Alcotest.fail "no failure found in 200 cases"
  | Some f -> Alcotest.(check int) "shrunk to the boundary" 600 f.Prop.value

(* Failing on long arrays must shrink to the minimal length: length
   shrinks replay the same element stream, so candidates are prefixes. *)
let test_shrink_array_to_minimal_length () =
  let report =
    Prop.check ~count:200 ~name:"array length" ~seed:11
      (Gen.array_sized ~min:0 ~max:20 (Gen.int_range 0 9))
      (fun a -> if Array.length a >= 5 then Error "too long" else Ok ())
  in
  match report.Prop.failure with
  | None -> Alcotest.fail "no failure found"
  | Some f ->
    Alcotest.(check int) "minimal failing length" 5 (Array.length f.Prop.value);
    Array.iter (fun v -> Alcotest.(check bool) "elements shrunk" true (v = 0)) f.Prop.value

(* Same seed, same generator, same property => bit-identical report. *)
let test_runner_deterministic () =
  let gen = Instances.instance ~max_tasks:6 () in
  let prop inst =
    if Instance.task_count inst >= 4 then Error "big" else Ok ()
  in
  let r1 = Prop.check ~count:100 ~name:"det" ~seed:42 gen prop in
  let r2 = Prop.check ~count:100 ~name:"det" ~seed:42 gen prop in
  match (r1.Prop.failure, r2.Prop.failure) with
  | Some a, Some b ->
    Alcotest.(check int) "same case seed" a.Prop.case_seed b.Prop.case_seed;
    Alcotest.(check int) "same shrink count" a.Prop.shrink_steps b.Prop.shrink_steps;
    Alcotest.(check bool) "same shrunk instance" true
      (Mf_core.Instance_io.to_string a.Prop.value
      = Mf_core.Instance_io.to_string b.Prop.value)
  | _ -> Alcotest.fail "expected both runs to fail identically"

(* ------------------------------------------------------------------ *)
(* Generator invariants (hold for roots AND for shrink candidates)      *)
(* ------------------------------------------------------------------ *)

let check_instance_invariants ?(need_cover = false) inst =
  let n = Instance.task_count inst in
  let p = Instance.type_count inst in
  let m = Instance.machines inst in
  let wf = Instance.workflow inst in
  if n < 1 || p < 1 || p > n || m < 1 then Error "bad dimensions"
  else if need_cover && m < p then Error "machines do not cover types"
  else
    (* Types contiguous from 0 in order of first appearance. *)
    let seen = ref 0 in
    let rec go i =
      if i >= n then Ok ()
      else
        let t = Workflow.ttype wf i in
        if t > !seen then Error "type labels not first-appearance contiguous"
        else begin
          if t = !seen then incr seen;
          go (i + 1)
        end
    in
    go 0

(* Walk the first shrink levels of generated trees and re-validate every
   candidate: shrinking must stay inside the constructor invariants. *)
let test_instance_shrinks_stay_valid () =
  let module T = Mf_proptest.Tree in
  let gen = Instances.instance ~max_tasks:6 ~machines_cover_types:true () in
  let rng = Mf_prng.Rng.create 99 in
  for _ = 1 to 25 do
    let tree = Gen.run gen rng in
    let rec walk depth tree =
      (match check_instance_invariants ~need_cover:true (T.root tree) with
      | Ok () -> ()
      | Error msg -> Alcotest.fail msg);
      if depth > 0 then
        (* Cap the fan-out: lazy trees can be wide. *)
        let rec take k s =
          if k = 0 then ()
          else
            match s () with
            | Seq.Nil -> ()
            | Seq.Cons (child, rest) ->
              walk (depth - 1) child;
              take (k - 1) rest
        in
        take 5 (T.children tree)
    in
    walk 2 tree
  done

let test_specialized_allocation_feasible () =
  let gen =
    Gen.bind (Instances.instance ~max_tasks:7 ~machines_cover_types:true ())
      (fun inst ->
        Gen.map (fun mp -> (inst, mp)) (Instances.specialized_allocation inst))
  in
  let report =
    Prop.check ~count:300 ~name:"specialized feasible" ~seed:5 gen
      (fun (inst, mp) ->
        if Mapping.satisfies inst mp Mapping.Specialized then Ok ()
        else Error "not specialized")
  in
  match report.Prop.failure with
  | None -> ()
  | Some f -> Alcotest.fail ("infeasible: " ^ f.Prop.message)

let test_permutation_decode () =
  let rng = Mf_prng.Rng.create 3 in
  for n = 1 to 8 do
    for _ = 1 to 20 do
      let idx = Mf_proptest.Tree.root (Gen.run (Gen.permutation_indices n) rng) in
      let perm = Gen.apply_permutation_indices idx in
      let seen = Array.make n false in
      Array.iter (fun v -> seen.(v) <- true) perm;
      Alcotest.(check bool)
        (Printf.sprintf "n=%d decodes to a permutation" n)
        true
        (Array.for_all Fun.id seen)
    done
  done

(* ------------------------------------------------------------------ *)
(* Corpus                                                              *)
(* ------------------------------------------------------------------ *)

let test_corpus_roundtrip () =
  let dir = Filename.temp_file "mf_corpus" "" in
  Sys.remove dir;
  let path =
    Corpus.save ~dir ~oracle:"eval" ~case_seed:123456
      ~note:"a failure message\nwith two lines"
  in
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      (match Corpus.load_file path with
      | Ok e ->
        Alcotest.(check string) "oracle" "eval" e.Corpus.oracle;
        Alcotest.(check int) "seed" 123456 e.Corpus.case_seed
      | Error msg -> Alcotest.fail msg);
      let entries, errors = Corpus.load_dir dir in
      Alcotest.(check int) "one entry" 1 (List.length entries);
      Alcotest.(check int) "no errors" 0 (List.length errors))

let test_corpus_rejects_malformed () =
  let path = Filename.temp_file "mf_corpus" ".repro" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_text path (fun oc ->
          output_string oc "oracle eval\nseed not-a-number\n");
      match Corpus.load_file path with
      | Ok _ -> Alcotest.fail "accepted malformed seed"
      | Error _ -> ())

(* ------------------------------------------------------------------ *)
(* Oracle matrix plumbing and the canary                               *)
(* ------------------------------------------------------------------ *)

(* A cheap deterministic spin through every oracle: a handful of cases
   each, so tier-1 exercises the full matrix without the fuzz budget. *)
let test_oracle_matrix_smoke () =
  List.iter
    (fun o ->
      let outcome = Oracle.run ~count:3 ~seed:2026 o in
      match outcome.Oracle.failed with
      | None -> ()
      | Some f ->
        Alcotest.fail
          (Printf.sprintf "%s failed (seed %d): %s\n%s" (Oracle.name o)
             f.Oracle.case_seed f.Oracle.message f.Oracle.repr))
    Oracle.all

let test_oracle_replay_matches_run () =
  let o = List.hd Oracle.all in
  let a = Oracle.replay o ~case_seed:987654321 in
  let b = Oracle.replay o ~case_seed:987654321 in
  Alcotest.(check bool) "replay deterministic" true
    (a.Oracle.failed = None && b.Oracle.failed = None)

(* The acceptance bar: a deliberately injected sign flip in a copy of
   the period evaluation must be caught and shrunk to a repro of at most
   6 tasks on at most 3 machines. *)
let test_canary_caught_and_shrunk () =
  match Oracle.canary_check ~seed:1 with
  | Error msg -> Alcotest.fail msg
  | Ok (tasks, machines) ->
    Alcotest.(check bool)
      (Printf.sprintf "shrunk repro small enough: %d tasks, %d machines" tasks machines)
      true
      (tasks <= 6 && machines <= 3)

(* Same bar for the dynamic layer: a re-mapper refinement that forgets
   the availability filter must be caught and shrunk just as small. *)
let test_remap_canary_caught_and_shrunk () =
  match Oracle.remap_canary_check ~seed:1 with
  | Error msg -> Alcotest.fail msg
  | Ok (tasks, machines) ->
    Alcotest.(check bool)
      (Printf.sprintf "shrunk repro small enough: %d tasks, %d machines" tasks machines)
      true
      (tasks <= 6 && machines <= 3)

let () =
  Alcotest.run "mf_proptest"
    [
      ( "shrinking",
        [
          Alcotest.test_case "int boundary" `Quick test_shrink_int_to_boundary;
          Alcotest.test_case "array minimal length" `Quick
            test_shrink_array_to_minimal_length;
          Alcotest.test_case "deterministic runner" `Quick test_runner_deterministic;
        ] );
      ( "generators",
        [
          Alcotest.test_case "instance shrinks valid" `Quick
            test_instance_shrinks_stay_valid;
          Alcotest.test_case "specialized feasible" `Quick
            test_specialized_allocation_feasible;
          Alcotest.test_case "permutation decode" `Quick test_permutation_decode;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "roundtrip" `Quick test_corpus_roundtrip;
          Alcotest.test_case "rejects malformed" `Quick test_corpus_rejects_malformed;
        ] );
      ( "oracles",
        [
          Alcotest.test_case "matrix smoke" `Quick test_oracle_matrix_smoke;
          Alcotest.test_case "replay deterministic" `Quick test_oracle_replay_matches_run;
          Alcotest.test_case "canary caught and shrunk" `Quick
            test_canary_caught_and_shrunk;
          Alcotest.test_case "remap canary caught and shrunk" `Quick
            test_remap_canary_caught_and_shrunk;
        ] );
    ]
