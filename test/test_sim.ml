(* Tests for mf_sim: the discrete-event simulator must agree with the
   analytic throughput model, and its empirical loss rates with the f
   matrix. *)

module Instance = Mf_core.Instance
module Workflow = Mf_core.Workflow
module Mapping = Mf_core.Mapping
module Period = Mf_core.Period
module Desim = Mf_sim.Desim
module Event = Mf_sim.Event
module Calendar = Mf_sim.Calendar
module Gen = Mf_workload.Gen
module Rng = Mf_prng.Rng

(* ------------------------------------------------------------------ *)
(* Calendar                                                            *)
(* ------------------------------------------------------------------ *)

let test_calendar_order () =
  let cal = Calendar.create () in
  Calendar.schedule cal ~time:3.0 "c";
  Calendar.schedule cal ~time:1.0 "a";
  Calendar.schedule cal ~time:2.0 "b";
  Alcotest.(check int) "length" 3 (Calendar.length cal);
  Alcotest.(check (option (pair (float 0.0) string))) "first" (Some (1.0, "a")) (Calendar.next cal);
  Alcotest.(check (option (pair (float 0.0) string))) "second" (Some (2.0, "b")) (Calendar.next cal);
  Alcotest.(check (option (pair (float 0.0) string))) "third" (Some (3.0, "c")) (Calendar.next cal);
  Alcotest.(check bool) "empty" true (Calendar.is_empty cal)

let test_calendar_fifo_on_ties () =
  let cal = Calendar.create () in
  Calendar.schedule cal ~time:1.0 "first";
  Calendar.schedule cal ~time:1.0 "second";
  Alcotest.(check (option (pair (float 0.0) string))) "tie order" (Some (1.0, "first"))
    (Calendar.next cal);
  Alcotest.(check (option (pair (float 0.0) string))) "tie order 2" (Some (1.0, "second"))
    (Calendar.next cal)

let test_calendar_rejects_bad_time () =
  let cal = Calendar.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Calendar.schedule: bad time") (fun () ->
      Calendar.schedule cal ~time:(-1.0) ())

(* ------------------------------------------------------------------ *)
(* Deterministic no-failure pipeline                                   *)
(* ------------------------------------------------------------------ *)

(* Chain of 2 tasks, distinct machines, no failures: the line is paced by
   the slower stage. *)
let test_sim_no_failures_throughput () =
  let wf = Workflow.chain ~types:[| 0; 1 |] in
  let inst =
    Instance.create ~workflow:wf ~machines:2
      ~w:[| [| 10.0; 10.0 |]; [| 20.0; 20.0 |] |]
      ~f:(Array.make_matrix 2 2 0.0)
  in
  let mp = Mapping.of_array inst [| 0; 1 |] in
  Alcotest.(check (float 1e-9)) "analytic period" 20.0 (Period.period inst mp);
  let r = Desim.run ~warmup:1000.0 ~horizon:21000.0 ~seed:1 inst mp in
  (* One output every 20 time units in steady state. *)
  Alcotest.(check bool)
    (Printf.sprintf "throughput %.5f near 0.05" r.Desim.throughput)
    true
    (Float.abs (r.Desim.throughput -. 0.05) < 0.002);
  Alcotest.(check (array int)) "no losses" [| 0; 0 |] r.Desim.lost

let test_sim_single_machine_sum () =
  (* Both tasks on one machine: period = 10 + 20 = 30 per product. *)
  let wf = Workflow.chain ~types:[| 0; 0 |] in
  let inst =
    Instance.create ~workflow:wf ~machines:1 ~w:[| [| 10.0 |]; [| 10.0 |] |]
      ~f:(Array.make_matrix 2 1 0.0)
  in
  let mp = Mapping.of_array inst [| 0; 0 |] in
  Alcotest.(check (float 1e-9)) "analytic period" 20.0 (Period.period inst mp);
  let r = Desim.run ~warmup:500.0 ~horizon:20500.0 ~seed:1 inst mp in
  Alcotest.(check bool)
    (Printf.sprintf "throughput %.5f near 0.05" r.Desim.throughput)
    true
    (Float.abs (r.Desim.throughput -. 0.05) < 0.003)

(* ------------------------------------------------------------------ *)
(* Stochastic agreement with the analytic model                        *)
(* ------------------------------------------------------------------ *)

let relative_error a b = Float.abs (a -. b) /. b

let test_sim_matches_analytic_with_failures () =
  (* A 4-task chain with moderate failures on 3 machines; long horizon. *)
  let inst = Gen.chain (Rng.create 11) (Gen.default ~tasks:4 ~types:2 ~machines:3) in
  let mp = Mf_heuristics.Registry.solve Mf_heuristics.Registry.H4w inst in
  let analytic = Period.throughput inst mp in
  let r = Desim.run ~warmup:2.0e5 ~horizon:4.0e6 ~seed:7 inst mp in
  Alcotest.(check bool)
    (Printf.sprintf "simulated %.6g vs analytic %.6g" r.Desim.throughput analytic)
    true
    (relative_error r.Desim.throughput analytic < 0.05)

let test_sim_matches_analytic_on_join () =
  let wf =
    Workflow.in_forest ~types:[| 0; 1; 2 |] ~successor:[| Some 2; Some 2; None |]
  in
  let inst =
    Instance.create ~workflow:wf ~machines:3
      ~w:[| [| 50.0; 60.0; 70.0 |]; [| 40.0; 30.0; 55.0 |]; [| 45.0; 80.0; 25.0 |] |]
      ~f:(Array.make_matrix 3 3 0.05)
  in
  let mp = Mapping.of_array inst [| 0; 1; 2 |] in
  let analytic = Period.throughput inst mp in
  let r = Desim.run ~warmup:1.0e5 ~horizon:2.0e6 ~seed:3 inst mp in
  Alcotest.(check bool)
    (Printf.sprintf "join: simulated %.6g vs analytic %.6g" r.Desim.throughput analytic)
    true
    (relative_error r.Desim.throughput analytic < 0.07)

let test_sim_empirical_loss_rates () =
  let wf = Workflow.chain ~types:[| 0; 1 |] in
  let inst =
    Instance.create ~workflow:wf ~machines:2
      ~w:(Array.make_matrix 2 2 10.0)
      ~f:[| [| 0.1; 0.1 |]; [| 0.02; 0.02 |] |]
  in
  let mp = Mapping.of_array inst [| 0; 1 |] in
  let r = Desim.run ~warmup:0.0 ~horizon:2.0e6 ~seed:9 inst mp in
  let rate0 = Desim.measured_loss_rate r ~task:0 in
  let rate1 = Desim.measured_loss_rate r ~task:1 in
  Alcotest.(check bool) (Printf.sprintf "task0 rate %.4f" rate0) true
    (Float.abs (rate0 -. 0.1) < 0.01);
  Alcotest.(check bool) (Printf.sprintf "task1 rate %.4f" rate1) true
    (Float.abs (rate1 -. 0.02) < 0.005)

let test_sim_consumed_exceeds_outputs () =
  (* With failures, more raw products are consumed than finished. *)
  let inst = Gen.chain (Rng.create 5) (Gen.with_high_failures (Gen.default ~tasks:5 ~types:2 ~machines:3)) in
  let mp = Mf_heuristics.Registry.solve Mf_heuristics.Registry.H4w inst in
  let r = Desim.run ~warmup:0.0 ~horizon:1.0e6 ~seed:2 inst mp in
  Alcotest.(check bool) "outputs > 0" true (r.Desim.outputs > 0);
  Alcotest.(check bool) "consumed > outputs" true (r.Desim.consumed > r.Desim.outputs)

let test_sim_deterministic () =
  let inst =
    Gen.chain (Rng.create 21)
      (Gen.with_high_failures (Gen.default ~tasks:5 ~types:2 ~machines:3))
  in
  let mp = Mf_heuristics.Registry.solve Mf_heuristics.Registry.H2 inst in
  let a = Desim.run ~horizon:1.0e5 ~seed:4 inst mp in
  let b = Desim.run ~horizon:1.0e5 ~seed:4 inst mp in
  Alcotest.(check int) "same outputs" a.Desim.outputs b.Desim.outputs;
  Alcotest.(check int) "same consumed" a.Desim.consumed b.Desim.consumed;
  Alcotest.(check (array int)) "same losses" a.Desim.lost b.Desim.lost;
  let c = Desim.run ~horizon:1.0e5 ~seed:5 inst mp in
  Alcotest.(check bool) "different seed differs" true
    (a.Desim.outputs <> c.Desim.outputs
    || a.Desim.consumed <> c.Desim.consumed
    || a.Desim.lost <> c.Desim.lost)

let test_sim_event_stream_sane () =
  let wf = Workflow.chain ~types:[| 0; 1 |] in
  let inst =
    Instance.create ~workflow:wf ~machines:2
      ~w:(Array.make_matrix 2 2 10.0)
      ~f:(Array.make_matrix 2 2 0.0)
  in
  let mp = Mapping.of_array inst [| 0; 1 |] in
  let events = ref [] in
  let _ = Desim.run ~warmup:0.0 ~horizon:100.0 ~seed:1 ~on_event:(fun e -> events := e :: !events) inst mp in
  let events = List.rev !events in
  Alcotest.(check bool) "nonempty" true (List.length events > 0);
  (* Times never decrease. *)
  let rec monotone = function
    | a :: (b :: _ as rest) -> Event.time a <= Event.time b && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone times" true (monotone events);
  (* Every machine-task pair alternates start/complete. *)
  let open_execs = Hashtbl.create 8 in
  List.iter
    (fun e ->
      match e with
      | Event.Start { machine; _ } ->
        Alcotest.(check bool) "machine idle at start" false (Hashtbl.mem open_execs machine);
        Hashtbl.replace open_execs machine ()
      | Event.Complete { machine; _ } ->
        Alcotest.(check bool) "machine busy at completion" true (Hashtbl.mem open_execs machine);
        Hashtbl.remove open_execs machine
      | Event.Output _ -> ())
    events;
  (* Event pretty-printing is total. *)
  List.iter (fun e -> Alcotest.(check bool) "printable" true (String.length (Event.to_string e) > 0)) events

let test_sim_validation () =
  let inst = Gen.chain (Rng.create 1) (Gen.default ~tasks:2 ~types:1 ~machines:1) in
  let mp = Mapping.of_array inst [| 0; 0 |] in
  Alcotest.check_raises "bad window" (Invalid_argument "Desim.run: need 0 <= warmup < horizon")
    (fun () -> ignore (Desim.run ~warmup:10.0 ~horizon:5.0 ~seed:1 inst mp))

(* Property: on random small instances, simulated throughput is within 10%
   of analytic for long horizons. *)
let prop_sim_close_to_analytic =
  QCheck.Test.make ~name:"sim: throughput within 10% of analytic" ~count:15
    (QCheck.make
       ~print:(fun (seed, n, p, m) -> Printf.sprintf "seed=%d n=%d p=%d m=%d" seed n p m)
       QCheck.Gen.(
         let* seed = int_range 0 10000 in
         let* n = int_range 2 8 in
         let* p = int_range 1 (min n 3) in
         let* m = int_range p 4 in
         return (seed, n, p, m)))
    (fun (seed, n, p, m) ->
      let inst = Gen.chain (Rng.create seed) (Gen.default ~tasks:n ~types:p ~machines:m) in
      let mp = Mf_heuristics.Registry.solve Mf_heuristics.Registry.H4w inst in
      let analytic = Period.throughput inst mp in
      let r = Desim.run ~warmup:1.0e5 ~horizon:1.5e6 ~seed:(seed + 1) inst mp in
      relative_error r.Desim.throughput analytic < 0.10)

let test_sim_buffer_capacity_blocks () =
  (* Fast producer, slow consumer: with capacity 1 the producer throttles
     to the consumer's pace, without it the producer saturates. *)
  let wf = Workflow.chain ~types:[| 0; 1 |] in
  let inst =
    Instance.create ~workflow:wf ~machines:2
      ~w:[| [| 10.0; 10.0 |]; [| 40.0; 40.0 |] |]
      ~f:(Array.make_matrix 2 2 0.0)
  in
  let mp = Mapping.of_array inst [| 0; 1 |] in
  let unbounded = Desim.run ~warmup:0.0 ~horizon:40000.0 ~seed:1 inst mp in
  let bounded = Desim.run ~warmup:0.0 ~horizon:40000.0 ~seed:1 ~buffer_capacity:1 inst mp in
  (* Same outputs (the consumer is the bottleneck either way)... *)
  Alcotest.(check bool) "similar outputs" true
    (abs (unbounded.Desim.outputs - bounded.Desim.outputs) <= 2);
  (* ...but far fewer raw products pulled in when blocked. *)
  Alcotest.(check bool)
    (Printf.sprintf "consumed %d (bounded) << %d (unbounded)" bounded.Desim.consumed
       unbounded.Desim.consumed)
    true
    (bounded.Desim.consumed * 2 < unbounded.Desim.consumed);
  (* Blocked WIP stays bounded: executions of T0 close to those of T1. *)
  Alcotest.(check bool) "WIP bounded" true
    (bounded.Desim.executions.(0) <= bounded.Desim.executions.(1) + 2)

let test_sim_buffer_capacity_throughput_monotone () =
  let inst = Gen.chain (Rng.create 31) (Gen.default ~tasks:6 ~types:2 ~machines:3) in
  let mp = Mf_heuristics.Registry.solve Mf_heuristics.Registry.H4w inst in
  let thr cap =
    (Desim.run ~warmup:5.0e4 ~horizon:1.0e6 ~seed:2 ?buffer_capacity:cap inst mp)
      .Desim.throughput
  in
  let t1 = thr (Some 1) and t4 = thr (Some 4) and tinf = thr None in
  Alcotest.(check bool) (Printf.sprintf "t1 %.6f <= t4 %.6f (+tol)" t1 t4) true
    (t1 <= t4 *. 1.05);
  Alcotest.(check bool) (Printf.sprintf "t4 %.6f <= inf %.6f (+tol)" t4 tinf) true
    (t4 <= tinf *. 1.05)

(* Same seed, same instance: blocking can only slow the line down.  The
   instance is failure-free so the claim is exact — under losses the two
   runs consume the shared Bernoulli stream in different schedule
   orders, and the bounded run can luckily edge ahead by a few outputs
   (the stochastic side is covered by the monotonicity-with-tolerance
   test above). *)
let test_sim_bounded_never_beats_unbounded () =
  let wf = Workflow.chain ~types:(Array.make 6 0) in
  let inst =
    Instance.create ~workflow:wf ~machines:3
      ~w:(Array.make_matrix 6 3 100.0)
      ~f:(Array.make_matrix 6 3 0.0)
  in
  (* The lone source on machine 0 overproduces freely when unbounded. *)
  let mp = Mapping.of_array inst [| 0; 1; 1; 1; 2; 2 |] in
  let unbounded = Desim.run ~warmup:5.0e4 ~horizon:1.0e6 ~seed:7 inst mp in
  let bounded =
    Desim.run ~warmup:5.0e4 ~horizon:1.0e6 ~seed:7 ~buffer_capacity:1 inst mp
  in
  Alcotest.(check bool)
    (Printf.sprintf "bounded %d <= unbounded %d" bounded.Desim.outputs
       unbounded.Desim.outputs)
    true
    (bounded.Desim.outputs <= unbounded.Desim.outputs);
  Alcotest.(check bool) "bounded still progresses" true (bounded.Desim.outputs > 0)

(* Capacity 1 on a chain whose tasks share machines: the tightest
   blocking configuration must still make progress (no deadlock). *)
let test_sim_capacity_one_chain_progress () =
  let wf = Workflow.chain ~types:[| 0; 0; 0; 0; 0 |] in
  let inst =
    Instance.create ~workflow:wf ~machines:2
      ~w:(Array.make_matrix 5 2 10.0)
      ~f:(Array.make_matrix 5 2 0.1)
  in
  let mp = Mapping.of_array inst [| 0; 1; 0; 1; 0 |] in
  let r = Desim.run ~warmup:0.0 ~horizon:1.0e5 ~seed:3 ~buffer_capacity:1 inst mp in
  Alcotest.(check bool)
    (Printf.sprintf "outputs %d > 100" r.Desim.outputs)
    true (r.Desim.outputs > 100);
  Array.iteri
    (fun i e ->
      Alcotest.(check bool) (Printf.sprintf "task %d executed" i) true (e > 0))
    r.Desim.executions

(* Regression (found by the sim-vs-analytic fuzz oracle): a machine
   hosting both branches of an assembly used to run the first source
   branch forever — it is always ready — so the sibling branch starved
   and the join never fired: 0 outputs instead of window / period.  The
   emptiest-output-buffer policy must keep all branches moving. *)
let test_sim_assembly_shared_machine_no_starvation () =
  let wf =
    Workflow.in_forest ~types:[| 0; 0; 0 |] ~successor:[| Some 2; Some 2; None |]
  in
  let inst =
    Instance.create ~workflow:wf ~machines:1
      ~w:(Array.make_matrix 3 1 1.0)
      ~f:(Array.make_matrix 3 1 0.0)
  in
  let mp = Mapping.of_array inst [| 0; 0; 0 |] in
  let analytic = Period.throughput inst mp in
  let r = Desim.run ~horizon:10000.0 ~seed:1 inst mp in
  Array.iteri
    (fun i e ->
      Alcotest.(check bool) (Printf.sprintf "task %d executed" i) true (e > 0))
    r.Desim.executions;
  Alcotest.(check bool)
    (Printf.sprintf "throughput %.6g within 5%% of analytic %.6g" r.Desim.throughput
       analytic)
    true
    (relative_error r.Desim.throughput analytic < 0.05)

(* Regression pinned by test/fuzz/corpus/sim-vs-analytic-431066338797847534:
   two chains 0 -> 3 -> 4 and 1 -> 2 -> 4 with both sources on one machine
   and the rest on another.  Task 3 drains task 0's buffer within the same
   wake cycle, so the emptiest-buffer policy alone sees a permanent 0-0 tie
   on the source machine and the index tie-break runs task 0 forever: task 1
   starves across machines and the join never fires.  Scheduling on
   cumulative surviving production (monotone, so consumption cannot erase
   it) must keep both branches moving. *)
let test_sim_cross_machine_livelock () =
  let wf =
    Workflow.in_forest ~types:[| 0; 0; 0; 0; 1 |]
      ~successor:[| Some 3; Some 2; Some 4; Some 4; None |]
  in
  let inst =
    Instance.create ~workflow:wf ~machines:3
      ~w:(Array.make_matrix 5 3 1.0)
      ~f:(Array.make_matrix 5 3 0.0)
  in
  let mp = Mapping.of_array inst [| 2; 2; 0; 0; 0 |] in
  let analytic = Period.throughput inst mp in
  let r = Desim.run ~horizon:10000.0 ~seed:1 inst mp in
  Array.iteri
    (fun i e ->
      Alcotest.(check bool) (Printf.sprintf "task %d executed" i) true (e > 0))
    r.Desim.executions;
  Alcotest.(check bool)
    (Printf.sprintf "throughput %.6g within 5%% of analytic %.6g" r.Desim.throughput
       analytic)
    true
    (relative_error r.Desim.throughput analytic < 0.05)

let test_sim_buffer_capacity_validation () =
  let inst = Gen.chain (Rng.create 1) (Gen.default ~tasks:2 ~types:1 ~machines:1) in
  let mp = Mapping.of_array inst [| 0; 0 |] in
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Desim.run: buffer capacity must be at least 1") (fun () ->
      ignore (Desim.run ~horizon:100.0 ~seed:1 ~buffer_capacity:0 inst mp))

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

module Metrics = Mf_sim.Metrics

let test_metrics_utilisation () =
  (* Slow source stage, fast final stage: the source machine saturates
     (raw material is unlimited) while the final machine idles half the
     time waiting for parts. *)
  let wf = Workflow.chain ~types:[| 0; 1 |] in
  let inst =
    Instance.create ~workflow:wf ~machines:2
      ~w:[| [| 20.0; 20.0 |]; [| 10.0; 10.0 |] |]
      ~f:(Array.make_matrix 2 2 0.0)
  in
  let mp = Mapping.of_array inst [| 0; 1 |] in
  let r = Desim.run ~warmup:0.0 ~horizon:10000.0 ~seed:1 inst mp in
  let stats = Metrics.machine_stats inst mp r in
  Alcotest.(check int) "two rows" 2 (List.length stats);
  let m0 = List.nth stats 0 and m1 = List.nth stats 1 in
  Alcotest.(check bool) "M0 saturated" true (m0.Metrics.utilisation > 0.95);
  Alcotest.(check bool) "M1 half idle" true
    (m1.Metrics.utilisation > 0.4 && m1.Metrics.utilisation < 0.6);
  Alcotest.(check int) "bottleneck" 0 (Metrics.bottleneck inst mp r);
  Alcotest.(check bool) "executions counted" true (m0.Metrics.executions > 400)

let test_metrics_loss_summary () =
  let wf = Workflow.chain ~types:[| 0; 1 |] in
  let inst =
    Instance.create ~workflow:wf ~machines:2
      ~w:(Array.make_matrix 2 2 10.0)
      ~f:[| [| 0.05; 0.05 |]; [| 0.01; 0.01 |] |]
  in
  let mp = Mapping.of_array inst [| 0; 1 |] in
  let r = Desim.run ~warmup:0.0 ~horizon:5.0e5 ~seed:3 inst mp in
  List.iter
    (fun (task, empirical, configured) ->
      match empirical with
      | None -> Alcotest.fail (Printf.sprintf "task %d unexpectedly never executed" task)
      | Some empirical ->
        Alcotest.(check bool)
          (Printf.sprintf "task %d empirical %.4f near configured %.4f" task empirical
             configured)
          true
          (Float.abs (empirical -. configured) < 0.01))
    (Metrics.loss_summary inst mp r)

(* A task that never executes has no empirical loss estimate:
   measured_loss_rate is nan (0/0), loss_summary reports None, and the
   report renders n/a instead of propagating the nan. *)
let test_metrics_loss_summary_never_executed () =
  let wf = Workflow.chain ~types:[| 0; 1 |] in
  let inst =
    Instance.create ~workflow:wf ~machines:2
      ~w:[| [| 10.0; 10.0 |]; [| 1000.0; 1000.0 |] |]
      ~f:(Array.make_matrix 2 2 0.0)
  in
  let mp = Mapping.of_array inst [| 0; 1 |] in
  (* Task 1 starts at t = 10 and would finish at 1010, past the horizon. *)
  let r = Desim.run ~warmup:0.0 ~horizon:50.0 ~seed:1 inst mp in
  Alcotest.(check int) "task 1 never executed" 0 r.Desim.executions.(1);
  Alcotest.(check bool) "measured_loss_rate is nan" true
    (Float.is_nan (Desim.measured_loss_rate r ~task:1));
  (match Metrics.loss_summary inst mp r with
  | [ (0, Some rate0, _); (1, None, _) ] ->
    Alcotest.(check bool) "task 0 estimated" true (rate0 >= 0.0)
  | _ -> Alcotest.fail "expected Some for task 0 and None for task 1");
  let text = Metrics.report inst mp r in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "report renders n/a" true (contains "n/a" text);
  Alcotest.(check bool) "report has no nan" false (contains "nan" text)

let test_metrics_report_renders () =
  let inst = Gen.chain (Rng.create 2) (Gen.default ~tasks:5 ~types:2 ~machines:3) in
  let mp = Mf_heuristics.Registry.solve Mf_heuristics.Registry.H4w inst in
  let r = Desim.run ~horizon:1.0e5 ~seed:2 inst mp in
  let text = Metrics.report inst mp r in
  Alcotest.(check bool) "mentions bottleneck" true
    (String.length text > 0
    &&
    let rec contains i =
      i + 10 <= String.length text && (String.sub text i 10 = "bottleneck" || contains (i + 1))
    in
    contains 0)

let () =
  Alcotest.run "mf_sim"
    [
      ( "calendar",
        [
          Alcotest.test_case "order" `Quick test_calendar_order;
          Alcotest.test_case "fifo ties" `Quick test_calendar_fifo_on_ties;
          Alcotest.test_case "bad time" `Quick test_calendar_rejects_bad_time;
        ] );
      ( "deterministic",
        [
          Alcotest.test_case "two-stage line" `Quick test_sim_no_failures_throughput;
          Alcotest.test_case "single machine" `Quick test_sim_single_machine_sum;
        ] );
      ( "stochastic",
        [
          Alcotest.test_case "matches analytic" `Slow test_sim_matches_analytic_with_failures;
          Alcotest.test_case "matches analytic on join" `Slow test_sim_matches_analytic_on_join;
          Alcotest.test_case "loss rates" `Slow test_sim_empirical_loss_rates;
          Alcotest.test_case "consumption" `Quick test_sim_consumed_exceeds_outputs;
          Alcotest.test_case "determinism" `Quick test_sim_deterministic;
          Alcotest.test_case "event stream" `Quick test_sim_event_stream_sane;
          Alcotest.test_case "validation" `Quick test_sim_validation;
        ] );
      ( "blocking",
        [
          Alcotest.test_case "capacity blocks" `Quick test_sim_buffer_capacity_blocks;
          Alcotest.test_case "throughput monotone" `Quick test_sim_buffer_capacity_throughput_monotone;
          Alcotest.test_case "bounded never beats unbounded" `Quick
            test_sim_bounded_never_beats_unbounded;
          Alcotest.test_case "capacity 1 chain progress" `Quick
            test_sim_capacity_one_chain_progress;
          Alcotest.test_case "assembly no starvation" `Quick
            test_sim_assembly_shared_machine_no_starvation;
          Alcotest.test_case "cross-machine livelock" `Quick
            test_sim_cross_machine_livelock;
          Alcotest.test_case "validation" `Quick test_sim_buffer_capacity_validation;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "utilisation" `Quick test_metrics_utilisation;
          Alcotest.test_case "loss summary" `Quick test_metrics_loss_summary;
          Alcotest.test_case "loss summary n/a" `Quick
            test_metrics_loss_summary_never_executed;
          Alcotest.test_case "report" `Quick test_metrics_report_renders;
        ] );
      ("props", List.map QCheck_alcotest.to_alcotest [ prop_sim_close_to_analytic ]);
    ]
