(* Tests for mf_sim: the discrete-event simulator must agree with the
   analytic throughput model, and its empirical loss rates with the f
   matrix. *)

module Instance = Mf_core.Instance
module Workflow = Mf_core.Workflow
module Mapping = Mf_core.Mapping
module Period = Mf_core.Period
module Desim = Mf_sim.Desim
module Event = Mf_sim.Event
module Calendar = Mf_sim.Calendar
module Gen = Mf_workload.Gen
module Rng = Mf_prng.Rng

(* ------------------------------------------------------------------ *)
(* Calendar                                                            *)
(* ------------------------------------------------------------------ *)

let test_calendar_order () =
  let cal = Calendar.create () in
  Calendar.schedule cal ~time:3.0 "c";
  Calendar.schedule cal ~time:1.0 "a";
  Calendar.schedule cal ~time:2.0 "b";
  Alcotest.(check int) "length" 3 (Calendar.length cal);
  Alcotest.(check (option (pair (float 0.0) string))) "first" (Some (1.0, "a")) (Calendar.next cal);
  Alcotest.(check (option (pair (float 0.0) string))) "second" (Some (2.0, "b")) (Calendar.next cal);
  Alcotest.(check (option (pair (float 0.0) string))) "third" (Some (3.0, "c")) (Calendar.next cal);
  Alcotest.(check bool) "empty" true (Calendar.is_empty cal)

let test_calendar_fifo_on_ties () =
  let cal = Calendar.create () in
  Calendar.schedule cal ~time:1.0 "first";
  Calendar.schedule cal ~time:1.0 "second";
  Alcotest.(check (option (pair (float 0.0) string))) "tie order" (Some (1.0, "first"))
    (Calendar.next cal);
  Alcotest.(check (option (pair (float 0.0) string))) "tie order 2" (Some (1.0, "second"))
    (Calendar.next cal)

let test_calendar_rejects_bad_time () =
  let cal = Calendar.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Calendar.schedule: bad time") (fun () ->
      Calendar.schedule cal ~time:(-1.0) ())

(* ------------------------------------------------------------------ *)
(* Deterministic no-failure pipeline                                   *)
(* ------------------------------------------------------------------ *)

(* Chain of 2 tasks, distinct machines, no failures: the line is paced by
   the slower stage. *)
let test_sim_no_failures_throughput () =
  let wf = Workflow.chain ~types:[| 0; 1 |] in
  let inst =
    Instance.create ~workflow:wf ~machines:2
      ~w:[| [| 10.0; 10.0 |]; [| 20.0; 20.0 |] |]
      ~f:(Array.make_matrix 2 2 0.0)
  in
  let mp = Mapping.of_array inst [| 0; 1 |] in
  Alcotest.(check (float 1e-9)) "analytic period" 20.0 (Period.period inst mp);
  let r = Desim.run ~warmup:1000.0 ~horizon:21000.0 ~seed:1 inst mp in
  (* One output every 20 time units in steady state. *)
  Alcotest.(check bool)
    (Printf.sprintf "throughput %.5f near 0.05" r.Desim.throughput)
    true
    (Float.abs (r.Desim.throughput -. 0.05) < 0.002);
  Alcotest.(check (array int)) "no losses" [| 0; 0 |] r.Desim.lost

let test_sim_single_machine_sum () =
  (* Both tasks on one machine: period = 10 + 20 = 30 per product. *)
  let wf = Workflow.chain ~types:[| 0; 0 |] in
  let inst =
    Instance.create ~workflow:wf ~machines:1 ~w:[| [| 10.0 |]; [| 10.0 |] |]
      ~f:(Array.make_matrix 2 1 0.0)
  in
  let mp = Mapping.of_array inst [| 0; 0 |] in
  Alcotest.(check (float 1e-9)) "analytic period" 20.0 (Period.period inst mp);
  let r = Desim.run ~warmup:500.0 ~horizon:20500.0 ~seed:1 inst mp in
  Alcotest.(check bool)
    (Printf.sprintf "throughput %.5f near 0.05" r.Desim.throughput)
    true
    (Float.abs (r.Desim.throughput -. 0.05) < 0.003)

(* ------------------------------------------------------------------ *)
(* Stochastic agreement with the analytic model                        *)
(* ------------------------------------------------------------------ *)

let relative_error a b = Float.abs (a -. b) /. b

let test_sim_matches_analytic_with_failures () =
  (* A 4-task chain with moderate failures on 3 machines; long horizon. *)
  let inst = Gen.chain (Rng.create 11) (Gen.default ~tasks:4 ~types:2 ~machines:3) in
  let mp = Mf_heuristics.Registry.solve Mf_heuristics.Registry.H4w inst in
  let analytic = Period.throughput inst mp in
  let r = Desim.run ~warmup:2.0e5 ~horizon:4.0e6 ~seed:7 inst mp in
  Alcotest.(check bool)
    (Printf.sprintf "simulated %.6g vs analytic %.6g" r.Desim.throughput analytic)
    true
    (relative_error r.Desim.throughput analytic < 0.05)

let test_sim_matches_analytic_on_join () =
  let wf =
    Workflow.in_forest ~types:[| 0; 1; 2 |] ~successor:[| Some 2; Some 2; None |]
  in
  let inst =
    Instance.create ~workflow:wf ~machines:3
      ~w:[| [| 50.0; 60.0; 70.0 |]; [| 40.0; 30.0; 55.0 |]; [| 45.0; 80.0; 25.0 |] |]
      ~f:(Array.make_matrix 3 3 0.05)
  in
  let mp = Mapping.of_array inst [| 0; 1; 2 |] in
  let analytic = Period.throughput inst mp in
  let r = Desim.run ~warmup:1.0e5 ~horizon:2.0e6 ~seed:3 inst mp in
  Alcotest.(check bool)
    (Printf.sprintf "join: simulated %.6g vs analytic %.6g" r.Desim.throughput analytic)
    true
    (relative_error r.Desim.throughput analytic < 0.07)

let test_sim_empirical_loss_rates () =
  let wf = Workflow.chain ~types:[| 0; 1 |] in
  let inst =
    Instance.create ~workflow:wf ~machines:2
      ~w:(Array.make_matrix 2 2 10.0)
      ~f:[| [| 0.1; 0.1 |]; [| 0.02; 0.02 |] |]
  in
  let mp = Mapping.of_array inst [| 0; 1 |] in
  let r = Desim.run ~warmup:0.0 ~horizon:2.0e6 ~seed:9 inst mp in
  let rate0 = Desim.measured_loss_rate r ~task:0 in
  let rate1 = Desim.measured_loss_rate r ~task:1 in
  Alcotest.(check bool) (Printf.sprintf "task0 rate %.4f" rate0) true
    (Float.abs (rate0 -. 0.1) < 0.01);
  Alcotest.(check bool) (Printf.sprintf "task1 rate %.4f" rate1) true
    (Float.abs (rate1 -. 0.02) < 0.005)

let test_sim_consumed_exceeds_outputs () =
  (* With failures, more raw products are consumed than finished. *)
  let inst = Gen.chain (Rng.create 5) (Gen.with_high_failures (Gen.default ~tasks:5 ~types:2 ~machines:3)) in
  let mp = Mf_heuristics.Registry.solve Mf_heuristics.Registry.H4w inst in
  let r = Desim.run ~warmup:0.0 ~horizon:1.0e6 ~seed:2 inst mp in
  Alcotest.(check bool) "outputs > 0" true (r.Desim.outputs > 0);
  Alcotest.(check bool) "consumed > outputs" true (r.Desim.consumed > r.Desim.outputs)

let test_sim_deterministic () =
  let inst =
    Gen.chain (Rng.create 21)
      (Gen.with_high_failures (Gen.default ~tasks:5 ~types:2 ~machines:3))
  in
  let mp = Mf_heuristics.Registry.solve Mf_heuristics.Registry.H2 inst in
  let a = Desim.run ~horizon:1.0e5 ~seed:4 inst mp in
  let b = Desim.run ~horizon:1.0e5 ~seed:4 inst mp in
  Alcotest.(check int) "same outputs" a.Desim.outputs b.Desim.outputs;
  Alcotest.(check int) "same consumed" a.Desim.consumed b.Desim.consumed;
  Alcotest.(check (array int)) "same losses" a.Desim.lost b.Desim.lost;
  let c = Desim.run ~horizon:1.0e5 ~seed:5 inst mp in
  Alcotest.(check bool) "different seed differs" true
    (a.Desim.outputs <> c.Desim.outputs
    || a.Desim.consumed <> c.Desim.consumed
    || a.Desim.lost <> c.Desim.lost)

let test_sim_event_stream_sane () =
  let wf = Workflow.chain ~types:[| 0; 1 |] in
  let inst =
    Instance.create ~workflow:wf ~machines:2
      ~w:(Array.make_matrix 2 2 10.0)
      ~f:(Array.make_matrix 2 2 0.0)
  in
  let mp = Mapping.of_array inst [| 0; 1 |] in
  let events = ref [] in
  let _ = Desim.run ~warmup:0.0 ~horizon:100.0 ~seed:1 ~on_event:(fun e -> events := e :: !events) inst mp in
  let events = List.rev !events in
  Alcotest.(check bool) "nonempty" true (List.length events > 0);
  (* Times never decrease. *)
  let rec monotone = function
    | a :: (b :: _ as rest) -> Event.time a <= Event.time b && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone times" true (monotone events);
  (* Every machine-task pair alternates start/complete. *)
  let open_execs = Hashtbl.create 8 in
  List.iter
    (fun e ->
      match e with
      | Event.Start { machine; _ } ->
        Alcotest.(check bool) "machine idle at start" false (Hashtbl.mem open_execs machine);
        Hashtbl.replace open_execs machine ()
      | Event.Complete { machine; _ } ->
        Alcotest.(check bool) "machine busy at completion" true (Hashtbl.mem open_execs machine);
        Hashtbl.remove open_execs machine
      | Event.Output _ -> ()
      | Event.Breakdown _ | Event.Repair _ | Event.Resume _ | Event.Remap _ ->
        Alcotest.fail "dynamic event in a breakdown-free run")
    events;
  (* Event pretty-printing is total. *)
  List.iter (fun e -> Alcotest.(check bool) "printable" true (String.length (Event.to_string e) > 0)) events

let test_sim_validation () =
  let inst = Gen.chain (Rng.create 1) (Gen.default ~tasks:2 ~types:1 ~machines:1) in
  let mp = Mapping.of_array inst [| 0; 0 |] in
  Alcotest.check_raises "bad window" (Invalid_argument "Desim.run: need 0 <= warmup < horizon")
    (fun () -> ignore (Desim.run ~warmup:10.0 ~horizon:5.0 ~seed:1 inst mp))

(* Property: on random small instances, simulated throughput is within 10%
   of analytic for long horizons. *)
let prop_sim_close_to_analytic =
  QCheck.Test.make ~name:"sim: throughput within 10% of analytic" ~count:15
    (QCheck.make
       ~print:(fun (seed, n, p, m) -> Printf.sprintf "seed=%d n=%d p=%d m=%d" seed n p m)
       QCheck.Gen.(
         let* seed = int_range 0 10000 in
         let* n = int_range 2 8 in
         let* p = int_range 1 (min n 3) in
         let* m = int_range p 4 in
         return (seed, n, p, m)))
    (fun (seed, n, p, m) ->
      let inst = Gen.chain (Rng.create seed) (Gen.default ~tasks:n ~types:p ~machines:m) in
      let mp = Mf_heuristics.Registry.solve Mf_heuristics.Registry.H4w inst in
      let analytic = Period.throughput inst mp in
      let r = Desim.run ~warmup:1.0e5 ~horizon:1.5e6 ~seed:(seed + 1) inst mp in
      relative_error r.Desim.throughput analytic < 0.10)

let test_sim_buffer_capacity_blocks () =
  (* Fast producer, slow consumer: with capacity 1 the producer throttles
     to the consumer's pace, without it the producer saturates. *)
  let wf = Workflow.chain ~types:[| 0; 1 |] in
  let inst =
    Instance.create ~workflow:wf ~machines:2
      ~w:[| [| 10.0; 10.0 |]; [| 40.0; 40.0 |] |]
      ~f:(Array.make_matrix 2 2 0.0)
  in
  let mp = Mapping.of_array inst [| 0; 1 |] in
  let unbounded = Desim.run ~warmup:0.0 ~horizon:40000.0 ~seed:1 inst mp in
  let bounded = Desim.run ~warmup:0.0 ~horizon:40000.0 ~seed:1 ~buffer_capacity:1 inst mp in
  (* Same outputs (the consumer is the bottleneck either way)... *)
  Alcotest.(check bool) "similar outputs" true
    (abs (unbounded.Desim.outputs - bounded.Desim.outputs) <= 2);
  (* ...but far fewer raw products pulled in when blocked. *)
  Alcotest.(check bool)
    (Printf.sprintf "consumed %d (bounded) << %d (unbounded)" bounded.Desim.consumed
       unbounded.Desim.consumed)
    true
    (bounded.Desim.consumed * 2 < unbounded.Desim.consumed);
  (* Blocked WIP stays bounded: executions of T0 close to those of T1. *)
  Alcotest.(check bool) "WIP bounded" true
    (bounded.Desim.executions.(0) <= bounded.Desim.executions.(1) + 2)

let test_sim_buffer_capacity_throughput_monotone () =
  let inst = Gen.chain (Rng.create 31) (Gen.default ~tasks:6 ~types:2 ~machines:3) in
  let mp = Mf_heuristics.Registry.solve Mf_heuristics.Registry.H4w inst in
  let thr cap =
    (Desim.run ~warmup:5.0e4 ~horizon:1.0e6 ~seed:2 ?buffer_capacity:cap inst mp)
      .Desim.throughput
  in
  let t1 = thr (Some 1) and t4 = thr (Some 4) and tinf = thr None in
  Alcotest.(check bool) (Printf.sprintf "t1 %.6f <= t4 %.6f (+tol)" t1 t4) true
    (t1 <= t4 *. 1.05);
  Alcotest.(check bool) (Printf.sprintf "t4 %.6f <= inf %.6f (+tol)" t4 tinf) true
    (t4 <= tinf *. 1.05)

(* Same seed, same instance: blocking can only slow the line down.  The
   instance is failure-free so the claim is exact — under losses the two
   runs consume the shared Bernoulli stream in different schedule
   orders, and the bounded run can luckily edge ahead by a few outputs
   (the stochastic side is covered by the monotonicity-with-tolerance
   test above). *)
let test_sim_bounded_never_beats_unbounded () =
  let wf = Workflow.chain ~types:(Array.make 6 0) in
  let inst =
    Instance.create ~workflow:wf ~machines:3
      ~w:(Array.make_matrix 6 3 100.0)
      ~f:(Array.make_matrix 6 3 0.0)
  in
  (* The lone source on machine 0 overproduces freely when unbounded. *)
  let mp = Mapping.of_array inst [| 0; 1; 1; 1; 2; 2 |] in
  let unbounded = Desim.run ~warmup:5.0e4 ~horizon:1.0e6 ~seed:7 inst mp in
  let bounded =
    Desim.run ~warmup:5.0e4 ~horizon:1.0e6 ~seed:7 ~buffer_capacity:1 inst mp
  in
  Alcotest.(check bool)
    (Printf.sprintf "bounded %d <= unbounded %d" bounded.Desim.outputs
       unbounded.Desim.outputs)
    true
    (bounded.Desim.outputs <= unbounded.Desim.outputs);
  Alcotest.(check bool) "bounded still progresses" true (bounded.Desim.outputs > 0)

(* Capacity 1 on a chain whose tasks share machines: the tightest
   blocking configuration must still make progress (no deadlock). *)
let test_sim_capacity_one_chain_progress () =
  let wf = Workflow.chain ~types:[| 0; 0; 0; 0; 0 |] in
  let inst =
    Instance.create ~workflow:wf ~machines:2
      ~w:(Array.make_matrix 5 2 10.0)
      ~f:(Array.make_matrix 5 2 0.1)
  in
  let mp = Mapping.of_array inst [| 0; 1; 0; 1; 0 |] in
  let r = Desim.run ~warmup:0.0 ~horizon:1.0e5 ~seed:3 ~buffer_capacity:1 inst mp in
  Alcotest.(check bool)
    (Printf.sprintf "outputs %d > 100" r.Desim.outputs)
    true (r.Desim.outputs > 100);
  Array.iteri
    (fun i e ->
      Alcotest.(check bool) (Printf.sprintf "task %d executed" i) true (e > 0))
    r.Desim.executions

(* Regression (found by the sim-vs-analytic fuzz oracle): a machine
   hosting both branches of an assembly used to run the first source
   branch forever — it is always ready — so the sibling branch starved
   and the join never fired: 0 outputs instead of window / period.  The
   emptiest-output-buffer policy must keep all branches moving. *)
let test_sim_assembly_shared_machine_no_starvation () =
  let wf =
    Workflow.in_forest ~types:[| 0; 0; 0 |] ~successor:[| Some 2; Some 2; None |]
  in
  let inst =
    Instance.create ~workflow:wf ~machines:1
      ~w:(Array.make_matrix 3 1 1.0)
      ~f:(Array.make_matrix 3 1 0.0)
  in
  let mp = Mapping.of_array inst [| 0; 0; 0 |] in
  let analytic = Period.throughput inst mp in
  let r = Desim.run ~horizon:10000.0 ~seed:1 inst mp in
  Array.iteri
    (fun i e ->
      Alcotest.(check bool) (Printf.sprintf "task %d executed" i) true (e > 0))
    r.Desim.executions;
  Alcotest.(check bool)
    (Printf.sprintf "throughput %.6g within 5%% of analytic %.6g" r.Desim.throughput
       analytic)
    true
    (relative_error r.Desim.throughput analytic < 0.05)

(* Regression pinned by test/fuzz/corpus/sim-vs-analytic-431066338797847534:
   two chains 0 -> 3 -> 4 and 1 -> 2 -> 4 with both sources on one machine
   and the rest on another.  Task 3 drains task 0's buffer within the same
   wake cycle, so the emptiest-buffer policy alone sees a permanent 0-0 tie
   on the source machine and the index tie-break runs task 0 forever: task 1
   starves across machines and the join never fires.  Scheduling on
   cumulative surviving production (monotone, so consumption cannot erase
   it) must keep both branches moving. *)
let test_sim_cross_machine_livelock () =
  let wf =
    Workflow.in_forest ~types:[| 0; 0; 0; 0; 1 |]
      ~successor:[| Some 3; Some 2; Some 4; Some 4; None |]
  in
  let inst =
    Instance.create ~workflow:wf ~machines:3
      ~w:(Array.make_matrix 5 3 1.0)
      ~f:(Array.make_matrix 5 3 0.0)
  in
  let mp = Mapping.of_array inst [| 2; 2; 0; 0; 0 |] in
  let analytic = Period.throughput inst mp in
  let r = Desim.run ~horizon:10000.0 ~seed:1 inst mp in
  Array.iteri
    (fun i e ->
      Alcotest.(check bool) (Printf.sprintf "task %d executed" i) true (e > 0))
    r.Desim.executions;
  Alcotest.(check bool)
    (Printf.sprintf "throughput %.6g within 5%% of analytic %.6g" r.Desim.throughput
       analytic)
    true
    (relative_error r.Desim.throughput analytic < 0.05)

let test_sim_buffer_capacity_validation () =
  let inst = Gen.chain (Rng.create 1) (Gen.default ~tasks:2 ~types:1 ~machines:1) in
  let mp = Mapping.of_array inst [| 0; 0 |] in
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Desim.run: buffer capacity must be at least 1") (fun () ->
      ignore (Desim.run ~horizon:100.0 ~seed:1 ~buffer_capacity:0 inst mp))

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

module Metrics = Mf_sim.Metrics

let test_metrics_utilisation () =
  (* Slow source stage, fast final stage: the source machine saturates
     (raw material is unlimited) while the final machine idles half the
     time waiting for parts. *)
  let wf = Workflow.chain ~types:[| 0; 1 |] in
  let inst =
    Instance.create ~workflow:wf ~machines:2
      ~w:[| [| 20.0; 20.0 |]; [| 10.0; 10.0 |] |]
      ~f:(Array.make_matrix 2 2 0.0)
  in
  let mp = Mapping.of_array inst [| 0; 1 |] in
  let r = Desim.run ~warmup:0.0 ~horizon:10000.0 ~seed:1 inst mp in
  let stats = Metrics.machine_stats inst mp r in
  Alcotest.(check int) "two rows" 2 (List.length stats);
  let m0 = List.nth stats 0 and m1 = List.nth stats 1 in
  Alcotest.(check bool) "M0 saturated" true (m0.Metrics.utilisation > 0.95);
  Alcotest.(check bool) "M1 half idle" true
    (m1.Metrics.utilisation > 0.4 && m1.Metrics.utilisation < 0.6);
  Alcotest.(check int) "bottleneck" 0 (Metrics.bottleneck inst mp r);
  Alcotest.(check bool) "executions counted" true (m0.Metrics.executions > 400)

let test_metrics_loss_summary () =
  let wf = Workflow.chain ~types:[| 0; 1 |] in
  let inst =
    Instance.create ~workflow:wf ~machines:2
      ~w:(Array.make_matrix 2 2 10.0)
      ~f:[| [| 0.05; 0.05 |]; [| 0.01; 0.01 |] |]
  in
  let mp = Mapping.of_array inst [| 0; 1 |] in
  let r = Desim.run ~warmup:0.0 ~horizon:5.0e5 ~seed:3 inst mp in
  List.iter
    (fun (task, empirical, configured) ->
      match empirical with
      | None -> Alcotest.fail (Printf.sprintf "task %d unexpectedly never executed" task)
      | Some empirical ->
        Alcotest.(check bool)
          (Printf.sprintf "task %d empirical %.4f near configured %.4f" task empirical
             configured)
          true
          (Float.abs (empirical -. configured) < 0.01))
    (Metrics.loss_summary inst mp r)

(* A task that never executes has no empirical loss estimate:
   measured_loss_rate is nan (0/0), loss_summary reports None, and the
   report renders n/a instead of propagating the nan. *)
let test_metrics_loss_summary_never_executed () =
  let wf = Workflow.chain ~types:[| 0; 1 |] in
  let inst =
    Instance.create ~workflow:wf ~machines:2
      ~w:[| [| 10.0; 10.0 |]; [| 1000.0; 1000.0 |] |]
      ~f:(Array.make_matrix 2 2 0.0)
  in
  let mp = Mapping.of_array inst [| 0; 1 |] in
  (* Task 1 starts at t = 10 and would finish at 1010, past the horizon. *)
  let r = Desim.run ~warmup:0.0 ~horizon:50.0 ~seed:1 inst mp in
  Alcotest.(check int) "task 1 never executed" 0 r.Desim.executions.(1);
  Alcotest.(check bool) "measured_loss_rate is nan" true
    (Float.is_nan (Desim.measured_loss_rate r ~task:1));
  (match Metrics.loss_summary inst mp r with
  | [ (0, Some rate0, _); (1, None, _) ] ->
    Alcotest.(check bool) "task 0 estimated" true (rate0 >= 0.0)
  | _ -> Alcotest.fail "expected Some for task 0 and None for task 1");
  let text = Metrics.report inst mp r in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "report renders n/a" true (contains "n/a" text);
  Alcotest.(check bool) "report has no nan" false (contains "nan" text)

let test_metrics_report_renders () =
  let inst = Gen.chain (Rng.create 2) (Gen.default ~tasks:5 ~types:2 ~machines:3) in
  let mp = Mf_heuristics.Registry.solve Mf_heuristics.Registry.H4w inst in
  let r = Desim.run ~horizon:1.0e5 ~seed:2 inst mp in
  let text = Metrics.report inst mp r in
  Alcotest.(check bool) "mentions bottleneck" true
    (String.length text > 0
    &&
    let rec contains i =
      i + 10 <= String.length text && (String.sub text i 10 = "bottleneck" || contains (i + 1))
    in
    contains 0)

(* ------------------------------------------------------------------ *)
(* Dynamics: breakdowns, repairs, online re-mapping                    *)
(* ------------------------------------------------------------------ *)

module Breakdown = Mf_sim.Breakdown
module Online = Mf_remap.Online

let float_bits_equal a b =
  Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

(* The behavioural fields of two results — everything the paper's model
   observes; breakdown accounting is deliberately excluded so degenerate
   laws can be compared against the plain simulation. *)
let check_behaviour_equal msg (a : Desim.result) (b : Desim.result) =
  Alcotest.(check int) (msg ^ ": outputs") a.Desim.outputs b.Desim.outputs;
  Alcotest.(check int) (msg ^ ": consumed") a.Desim.consumed b.Desim.consumed;
  Alcotest.(check (array int)) (msg ^ ": lost") a.Desim.lost b.Desim.lost;
  Alcotest.(check (array int)) (msg ^ ": executions") a.Desim.executions b.Desim.executions;
  Alcotest.(check bool) (msg ^ ": busy bit-identical") true
    (Array.for_all2 float_bits_equal a.Desim.busy b.Desim.busy);
  Alcotest.(check bool) (msg ^ ": throughput bit-identical") true
    (float_bits_equal a.Desim.throughput b.Desim.throughput)

let dyn_instance () =
  let inst = Gen.chain (Rng.create 7) (Gen.default ~tasks:6 ~types:2 ~machines:3) in
  let mp = Mf_heuristics.Registry.solve Mf_heuristics.Registry.H4w inst in
  (inst, mp)

let test_dyn_mttr_zero_byte_identical () =
  let inst, mp = dyn_instance () in
  let p = Period.period inst mp in
  let horizon = 500.0 *. p in
  let plain = Desim.run ~horizon ~seed:11 inst mp in
  let model =
    Breakdown.uniform ~machines:(Instance.machines inst) ~mtbf:(2.0 *. p) ~mttr:0.0 ()
  in
  let dyn = Desim.run ~breakdowns:model ~horizon ~seed:11 inst mp in
  check_behaviour_equal "mttr=0" plain dyn;
  (* the model really engaged: instant repairs were folded, not skipped *)
  Alcotest.(check bool) "instant repairs counted" true
    (Array.fold_left ( + ) 0 dyn.Desim.breakdowns > 0);
  Alcotest.(check (array (float 0.0))) "no downtime"
    (Array.make (Instance.machines inst) 0.0) dyn.Desim.downtime

let test_dyn_mtbf_infinite_byte_identical () =
  let inst, mp = dyn_instance () in
  let p = Period.period inst mp in
  let horizon = 500.0 *. p in
  let plain = Desim.run ~horizon ~seed:12 inst mp in
  let model =
    Breakdown.uniform ~machines:(Instance.machines inst) ~mtbf:infinity ~mttr:(5.0 *. p) ()
  in
  let dyn = Desim.run ~breakdowns:model ~horizon ~seed:12 inst mp in
  check_behaviour_equal "mtbf=inf" plain dyn;
  Alcotest.(check (array int)) "no breakdowns"
    (Array.make (Instance.machines inst) 0) dyn.Desim.breakdowns

let test_dyn_all_down_zero_throughput () =
  (* Two independent single-task lines: both machines work from t = 0, so
     both accrue hazard and go down (an idle machine never fails — the
     hazard is operation-dependent). *)
  let wf = Workflow.in_forest ~types:[| 0; 0 |] ~successor:[| None; None |] in
  let inst =
    Instance.create ~workflow:wf ~machines:2
      ~w:(Array.make_matrix 2 2 10.0)
      ~f:(Array.make_matrix 2 2 0.0)
  in
  let mp = Mapping.of_array inst [| 0; 1 |] in
  (* Hazard explodes on the first execution; repairs never finish: the
     whole factory is down almost immediately and forever. *)
  let model = Breakdown.uniform ~machines:2 ~mtbf:1e-6 ~mttr:infinity ~crews:1 () in
  let r = Desim.run ~breakdowns:model ~warmup:100.0 ~horizon:10000.0 ~seed:3 inst mp in
  Alcotest.(check int) "zero outputs" 0 r.Desim.outputs;
  Alcotest.(check (float 0.0)) "zero throughput" 0.0 r.Desim.throughput;
  Alcotest.(check bool) "both machines counted down" true
    (Array.for_all (fun d -> d > 0.0) r.Desim.downtime);
  Array.iter
    (fun a ->
      Alcotest.(check bool) "availability in [0,1)" true (a >= 0.0 && a < 1.0))
    (Metrics.measured_availability r);
  let text = Metrics.dynamic_report ~model inst mp r in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "report renders" true (String.length text > 0);
  Alcotest.(check bool) "report has no nan" false (contains "nan" text);
  (* the loss summary still renders n/a for the starved downstream task *)
  let summary = Metrics.report inst mp r in
  Alcotest.(check bool) "summary has no nan" false (contains "nan" summary)

let test_dyn_availability_convergence () =
  let wf = Workflow.chain ~types:[| 0; 0 |] in
  let inst =
    Instance.create ~workflow:wf ~machines:1
      ~w:(Array.make_matrix 2 1 10.0)
      ~f:(Array.make_matrix 2 1 0.0)
  in
  let mp = Mapping.of_array inst [| 0; 0 |] in
  let p = Period.period inst mp in
  let model = Breakdown.uniform ~machines:1 ~mtbf:(20.0 *. p) ~mttr:(10.0 *. p) () in
  let expected = Metrics.adjusted_throughput inst mp model in
  Alcotest.(check (float 1e-9)) "analytic adjusted" (2.0 /. 3.0 /. p) expected;
  let r = Desim.run ~breakdowns:model ~horizon:(4000.0 *. p) ~seed:5 inst mp in
  let rel = Float.abs (r.Desim.throughput -. expected) /. expected in
  Alcotest.(check bool)
    (Printf.sprintf "within 10%% of availability-adjusted (rel %.3f)" rel)
    true (rel < 0.1)

let test_dyn_wear_increases_breakdowns () =
  let inst, mp = dyn_instance () in
  let p = Period.period inst mp in
  let run wear =
    let model =
      Breakdown.uniform ~machines:(Instance.machines inst) ~mtbf:(50.0 *. p)
        ~mttr:(0.5 *. p) ~wear ()
    in
    let r = Desim.run ~breakdowns:model ~horizon:(2000.0 *. p) ~seed:9 inst mp in
    Array.fold_left ( + ) 0 r.Desim.breakdowns
  in
  let base = run 0.0 and worn = run 0.5 in
  Alcotest.(check bool)
    (Printf.sprintf "history-based hazard fails more (%d vs %d)" worn base)
    true (worn > base)

let test_dyn_crews_contention () =
  let inst, mp = dyn_instance () in
  let p = Period.period inst mp in
  let run crews =
    let model =
      Breakdown.uniform ~machines:(Instance.machines inst) ~mtbf:(5.0 *. p)
        ~mttr:(20.0 *. p) ~crews ()
    in
    let r = Desim.run ~breakdowns:model ~horizon:(2000.0 *. p) ~seed:13 inst mp in
    Array.fold_left ( +. ) 0.0 r.Desim.downtime
  in
  Alcotest.(check bool) "one crew queues more downtime than three" true
    (run 1 >= run 3)

(* The flagship dynamic scenario in miniature: a balanced 4-machine line
   where only machine 0 fails.  Doing nothing caps throughput at the
   availability-adjusted steady state a/p; re-mapping keeps 3 of 4
   machines' worth of capacity during outages and restores the designed
   mapping after each repair. *)
let remap_scenario () =
  let wf = Workflow.chain ~types:(Array.make 8 0) in
  let inst =
    Instance.create ~workflow:wf ~machines:4
      ~w:(Array.make_matrix 8 4 10.0)
      ~f:(Array.make_matrix 8 4 0.0)
  in
  let mp = Mapping.of_array inst [| 0; 0; 1; 1; 2; 2; 3; 3 |] in
  let p = Period.period inst mp in
  let laws = Array.make 4 Breakdown.immortal in
  laws.(0) <- { Breakdown.mtbf = 30.0 *. p; mttr = 10.0 *. p; wear = 0.0 };
  let model = Breakdown.make ~crews:1 laws in
  (inst, mp, p, model)

let test_dyn_remap_recovers () =
  let inst, mp, p, model = remap_scenario () in
  let horizon = 2000.0 *. p in
  let static = Desim.run ~breakdowns:model ~horizon ~seed:21 inst mp in
  let remap = Online.simulate ~breakdowns:model ~horizon ~seed:21 inst mp in
  Alcotest.(check bool) "re-mapping commits happened" true (remap.Desim.remaps >= 2);
  Alcotest.(check bool) "latency recorded per commit" true
    (Array.length remap.Desim.remap_latencies = remap.Desim.remaps);
  Alcotest.(check bool) "re-map beats do-nothing" true
    (remap.Desim.outputs > static.Desim.outputs);
  let avail = Breakdown.availability model.Breakdown.laws.(0) in
  let adjusted = Metrics.adjusted_throughput inst mp model in
  Alcotest.(check (float 1e-9)) "adjusted = a/p" (avail /. p) adjusted;
  let recovery =
    (remap.Desim.throughput -. adjusted) /. ((1.0 /. p) -. adjusted)
  in
  Alcotest.(check bool)
    (Printf.sprintf "recovers at least half the gap (%.2f)" recovery)
    true (recovery >= 0.5);
  (* the designed mapping is restored after repairs: seed 21 ends with
     machine 0 up, so the final live mapping is the designed one *)
  Alcotest.(check (array int)) "designed mapping restored"
    (Mapping.to_array mp) remap.Desim.final_mapping

let test_dyn_replay_bit_identical () =
  let inst, mp, p, model = remap_scenario () in
  let horizon = 1000.0 *. p in
  let run () = Online.simulate ~breakdowns:model ~horizon ~seed:42 inst mp in
  let a = run () and b = run () in
  check_behaviour_equal "replay" a b;
  Alcotest.(check int) "same remaps" a.Desim.remaps b.Desim.remaps;
  Alcotest.(check bool) "same latencies" true
    (Array.for_all2 float_bits_equal a.Desim.remap_latencies b.Desim.remap_latencies);
  Alcotest.(check (array int)) "same final mapping" a.Desim.final_mapping
    b.Desim.final_mapping;
  Alcotest.(check bool) "same downtime bits" true
    (Array.for_all2 float_bits_equal a.Desim.downtime b.Desim.downtime)

(* The jobs-identity pattern from test_parallel/test_exact, extended to the
   dynamic simulator: a Runner grid whose cells run breakdowns + re-mapper
   must be byte-identical at --jobs 1 and --jobs 2. *)
let test_dyn_jobs_identity () =
  let module Runner = Mf_experiments.Runner in
  let gen ~x ~seed =
    Gen.chain (Rng.create seed) (Gen.default ~tasks:x ~types:2 ~machines:3)
  in
  let solve inst ~seed =
    let mp = Mf_heuristics.Registry.solve Mf_heuristics.Registry.H4w inst in
    let p = Period.period inst mp in
    let model =
      Breakdown.uniform ~machines:(Instance.machines inst) ~mtbf:(16.0 *. p)
        ~mttr:(4.0 *. p) ~crews:1 ()
    in
    let r = Online.simulate ~breakdowns:model ~horizon:(300.0 *. p) ~seed inst mp in
    Some r.Desim.throughput
  in
  let algos = [ { Runner.label = "dyn-remap"; solve } ] in
  let run jobs =
    Runner.run ~id:"dyn-jobs" ~title:"dynamic jobs identity" ~x_label:"tasks"
      ~xs:[ 5; 8 ] ~replicates:2 ~gen ~algos ~jobs ()
  in
  let fig1 = run 1 and fig2 = run 2 in
  List.iter2
    (fun (p1 : Runner.point) (p2 : Runner.point) ->
      Alcotest.(check int) "same x" p1.Runner.x p2.Runner.x;
      List.iter2
        (fun (c1 : Runner.cell) (c2 : Runner.cell) ->
          Alcotest.(check string) "same label" c1.Runner.label c2.Runner.label;
          Array.iter2
            (fun v1 v2 ->
              Alcotest.(check bool) "bit-identical cell" true
                (match (v1, v2) with
                | Some a, Some b -> float_bits_equal a b
                | None, None -> true
                | _ -> false))
            c1.Runner.values c2.Runner.values)
        p1.Runner.cells p2.Runner.cells)
    fig1.Runner.points fig2.Runner.points

let test_dyn_validation () =
  Alcotest.check_raises "bad mtbf"
    (Invalid_argument "Breakdown: mtbf must be positive (infinity = never fails)")
    (fun () -> ignore (Breakdown.uniform ~machines:1 ~mtbf:0.0 ~mttr:1.0 ()));
  Alcotest.check_raises "bad crews"
    (Invalid_argument "Breakdown.make: need at least one crew") (fun () ->
      ignore (Breakdown.uniform ~machines:1 ~mtbf:1.0 ~mttr:1.0 ~crews:0 ()));
  let inst, mp = dyn_instance () in
  let model = Breakdown.uniform ~machines:1 ~mtbf:1.0 ~mttr:1.0 () in
  Alcotest.check_raises "model size mismatch"
    (Invalid_argument "Desim.run: breakdown model sized for a different machine count")
    (fun () -> ignore (Desim.run ~breakdowns:model ~horizon:100.0 ~seed:1 inst mp))

let () =
  Alcotest.run "mf_sim"
    [
      ( "calendar",
        [
          Alcotest.test_case "order" `Quick test_calendar_order;
          Alcotest.test_case "fifo ties" `Quick test_calendar_fifo_on_ties;
          Alcotest.test_case "bad time" `Quick test_calendar_rejects_bad_time;
        ] );
      ( "deterministic",
        [
          Alcotest.test_case "two-stage line" `Quick test_sim_no_failures_throughput;
          Alcotest.test_case "single machine" `Quick test_sim_single_machine_sum;
        ] );
      ( "stochastic",
        [
          Alcotest.test_case "matches analytic" `Slow test_sim_matches_analytic_with_failures;
          Alcotest.test_case "matches analytic on join" `Slow test_sim_matches_analytic_on_join;
          Alcotest.test_case "loss rates" `Slow test_sim_empirical_loss_rates;
          Alcotest.test_case "consumption" `Quick test_sim_consumed_exceeds_outputs;
          Alcotest.test_case "determinism" `Quick test_sim_deterministic;
          Alcotest.test_case "event stream" `Quick test_sim_event_stream_sane;
          Alcotest.test_case "validation" `Quick test_sim_validation;
        ] );
      ( "blocking",
        [
          Alcotest.test_case "capacity blocks" `Quick test_sim_buffer_capacity_blocks;
          Alcotest.test_case "throughput monotone" `Quick test_sim_buffer_capacity_throughput_monotone;
          Alcotest.test_case "bounded never beats unbounded" `Quick
            test_sim_bounded_never_beats_unbounded;
          Alcotest.test_case "capacity 1 chain progress" `Quick
            test_sim_capacity_one_chain_progress;
          Alcotest.test_case "assembly no starvation" `Quick
            test_sim_assembly_shared_machine_no_starvation;
          Alcotest.test_case "cross-machine livelock" `Quick
            test_sim_cross_machine_livelock;
          Alcotest.test_case "validation" `Quick test_sim_buffer_capacity_validation;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "utilisation" `Quick test_metrics_utilisation;
          Alcotest.test_case "loss summary" `Quick test_metrics_loss_summary;
          Alcotest.test_case "loss summary n/a" `Quick
            test_metrics_loss_summary_never_executed;
          Alcotest.test_case "report" `Quick test_metrics_report_renders;
        ] );
      ( "dynamic",
        [
          Alcotest.test_case "mttr=0 byte-identical" `Quick
            test_dyn_mttr_zero_byte_identical;
          Alcotest.test_case "mtbf=inf byte-identical" `Quick
            test_dyn_mtbf_infinite_byte_identical;
          Alcotest.test_case "all machines down" `Quick test_dyn_all_down_zero_throughput;
          Alcotest.test_case "availability convergence" `Slow
            test_dyn_availability_convergence;
          Alcotest.test_case "wear increases breakdowns" `Slow
            test_dyn_wear_increases_breakdowns;
          Alcotest.test_case "crew contention" `Slow test_dyn_crews_contention;
          Alcotest.test_case "re-map recovers" `Slow test_dyn_remap_recovers;
          Alcotest.test_case "replay bit-identical" `Quick test_dyn_replay_bit_identical;
          Alcotest.test_case "jobs identity" `Quick test_dyn_jobs_identity;
          Alcotest.test_case "validation" `Quick test_dyn_validation;
        ] );
      ("props", List.map QCheck_alcotest.to_alcotest [ prop_sim_close_to_analytic ]);
    ]
