(* Tests for mf_exact: brute force, branch-and-bound DFS, one-to-one optima. *)

module Instance = Mf_core.Instance
module Workflow = Mf_core.Workflow
module Mapping = Mf_core.Mapping
module Period = Mf_core.Period
module Brute = Mf_exact.Brute
module Dfs = Mf_exact.Dfs
module Oto = Mf_exact.Oto
module Gen = Mf_workload.Gen
module Rng = Mf_prng.Rng

let chain_instance ?(seed = 1) ~n ~p ~m () =
  Gen.chain (Rng.create seed) (Gen.default ~tasks:n ~types:p ~machines:m)

(* ------------------------------------------------------------------ *)
(* Brute force                                                         *)
(* ------------------------------------------------------------------ *)

let test_brute_single_task () =
  let wf = Workflow.chain ~types:[| 0 |] in
  let inst =
    Instance.create ~workflow:wf ~machines:3
      ~w:[| [| 100.0; 50.0; 200.0 |] |]
      ~f:[| [| 0.0; 0.5; 0.0 |] |]
  in
  (* M0: 100; M1: 50/(1-0.5)=100; M2: 200. Optimal is 100 (M0 or M1). *)
  let mp, p = Brute.specialized inst in
  Alcotest.(check (float 1e-9)) "period" 100.0 p;
  Alcotest.(check bool) "machine" true (Mapping.machine mp 0 <> 2)

let test_brute_rules_ordering () =
  (* General <= specialized <= one-to-one optimal periods. *)
  for seed = 1 to 5 do
    let inst = chain_instance ~seed ~n:4 ~p:2 ~m:4 () in
    let _, p_gen = Brute.general inst in
    let _, p_spec = Brute.specialized inst in
    let _, p_oto = Brute.one_to_one inst in
    Alcotest.(check bool) "gen <= spec" true (p_gen <= p_spec +. 1e-9);
    Alcotest.(check bool) "spec <= oto" true (p_spec <= p_oto +. 1e-9)
  done

let test_brute_one_to_one_requires_machines () =
  let inst = chain_instance ~n:4 ~p:2 ~m:3 () in
  Alcotest.check_raises "m < n"
    (Invalid_argument "Brute.one_to_one: fewer machines than tasks") (fun () ->
      ignore (Brute.one_to_one inst))

(* ------------------------------------------------------------------ *)
(* DFS branch-and-bound                                                *)
(* ------------------------------------------------------------------ *)

let test_dfs_matches_brute () =
  for seed = 1 to 15 do
    let inst = chain_instance ~seed ~n:6 ~p:2 ~m:3 () in
    let _, expected = Brute.specialized inst in
    let r = Dfs.specialized inst in
    Alcotest.(check bool) (Printf.sprintf "optimal flag (seed %d)" seed) true r.Dfs.optimal;
    Alcotest.(check (float 1e-6)) (Printf.sprintf "period (seed %d)" seed) expected r.Dfs.period;
    Alcotest.(check bool) "mapping valid" true
      (Mapping.satisfies inst r.Dfs.mapping Mapping.Specialized);
    Alcotest.(check (float 1e-6)) "period consistent with mapping" r.Dfs.period
      (Period.period inst r.Dfs.mapping)
  done

let test_dfs_matches_brute_on_trees () =
  for seed = 1 to 10 do
    let inst =
      Gen.in_tree (Rng.create seed) (Gen.default ~tasks:6 ~types:2 ~machines:3)
    in
    let _, expected = Brute.specialized inst in
    let r = Dfs.specialized inst in
    Alcotest.(check (float 1e-6)) (Printf.sprintf "tree period (seed %d)" seed) expected
      r.Dfs.period
  done

let test_dfs_node_budget () =
  let inst = chain_instance ~seed:2 ~n:14 ~p:3 ~m:6 () in
  let r = Dfs.specialized ~node_budget:10 inst in
  Alcotest.(check bool) "budget exhausted" false r.Dfs.optimal;
  (* Even with a tiny budget we still hold the heuristic incumbent. *)
  Alcotest.(check bool) "mapping valid" true
    (Mapping.satisfies inst r.Dfs.mapping Mapping.Specialized)

let test_dfs_beats_or_matches_heuristics () =
  for seed = 1 to 8 do
    let inst = chain_instance ~seed ~n:10 ~p:3 ~m:5 () in
    let r = Dfs.specialized inst in
    List.iter
      (fun h ->
        let p = Period.period inst (Mf_heuristics.Registry.solve h inst) in
        Alcotest.(check bool)
          (Printf.sprintf "opt <= %s (seed %d)" (Mf_heuristics.Registry.name h) seed)
          true
          (r.Dfs.period <= p +. 1e-6))
      Mf_heuristics.Registry.all
  done

(* ------------------------------------------------------------------ *)
(* One-to-one optima                                                   *)
(* ------------------------------------------------------------------ *)

let homogeneous_chain ~seed ~n ~m =
  let rng = Rng.create seed in
  let types = Array.init n Fun.id in
  (* All types distinct -> type-consistency is vacuous; homogeneous w. *)
  let w = Array.make_matrix n m 100.0 in
  let f =
    Array.init n (fun _ -> Array.init m (fun _ -> Mf_prng.Rng.uniform rng ~lo:0.01 ~hi:0.3))
  in
  Instance.create ~workflow:(Workflow.chain ~types) ~machines:m ~w ~f

let test_theorem1_matches_brute () =
  for seed = 1 to 10 do
    let inst = homogeneous_chain ~seed ~n:5 ~m:6 in
    let _, expected = Brute.one_to_one inst in
    let mp, p = Oto.theorem1 inst in
    Alcotest.(check bool) "one-to-one" true (Mapping.satisfies inst mp Mapping.One_to_one);
    Alcotest.(check (float 1e-6)) (Printf.sprintf "optimal (seed %d)" seed) expected p
  done

let test_theorem1_preconditions () =
  let inst = chain_instance ~n:3 ~p:2 ~m:4 () in
  Alcotest.check_raises "needs homogeneous machines"
    (Invalid_argument "Oto.theorem1: machines must be homogeneous") (fun () ->
      ignore (Oto.theorem1 inst))

let task_attached_chain ~seed ~n ~m =
  let rng = Rng.create seed in
  let params =
    { (Gen.default ~tasks:n ~types:n ~machines:m) with task_attached_failures = true }
  in
  ignore rng;
  Gen.chain (Rng.create seed) params

let test_bottleneck_matches_brute () =
  for seed = 1 to 10 do
    let inst = task_attached_chain ~seed ~n:5 ~m:6 in
    let _, expected = Brute.one_to_one inst in
    let mp, p = Oto.bottleneck inst in
    Alcotest.(check bool) "one-to-one" true (Mapping.satisfies inst mp Mapping.One_to_one);
    Alcotest.(check (float 1e-6)) (Printf.sprintf "optimal (seed %d)" seed) expected p;
    Alcotest.(check (float 1e-6)) "period consistent" p (Period.period inst mp)
  done

let test_bottleneck_preconditions () =
  let inst = chain_instance ~n:3 ~p:2 ~m:4 () in
  Alcotest.check_raises "needs task-attached failures"
    (Invalid_argument "Oto.bottleneck: failure rates must be attached to tasks only")
    (fun () -> ignore (Oto.bottleneck inst))

(* Specialized mappings can only improve on one-to-one: with more freedom
   (grouping) the optimal period can only go down. *)
let test_specialized_at_least_as_good_as_oto () =
  for seed = 1 to 5 do
    let inst = task_attached_chain ~seed ~n:5 ~m:6 in
    let _, p_oto = Oto.bottleneck inst in
    let r = Dfs.specialized inst in
    Alcotest.(check bool) (Printf.sprintf "spec opt <= oto opt (seed %d)" seed) true
      (r.Dfs.period <= p_oto +. 1e-6)
  done

(* ------------------------------------------------------------------ *)
(* DFS under the other mapping rules                                   *)
(* ------------------------------------------------------------------ *)

let test_dfs_general_matches_brute () =
  for seed = 1 to 8 do
    let inst = chain_instance ~seed ~n:5 ~p:2 ~m:3 () in
    let _, expected = Brute.general inst in
    let r = Dfs.general inst in
    Alcotest.(check (float 1e-6)) (Printf.sprintf "general (seed %d)" seed) expected r.Dfs.period
  done

let test_dfs_one_to_one_matches_brute () =
  for seed = 1 to 8 do
    let inst = chain_instance ~seed ~n:5 ~p:2 ~m:6 () in
    let _, expected = Brute.one_to_one inst in
    let r = Dfs.one_to_one inst in
    Alcotest.(check (float 1e-6)) (Printf.sprintf "one-to-one (seed %d)" seed) expected
      r.Dfs.period;
    Alcotest.(check bool) "valid one-to-one" true
      (Mapping.satisfies inst r.Dfs.mapping Mapping.One_to_one)
  done

let test_dfs_rule_ordering () =
  (* general opt <= specialized opt <= one-to-one opt. *)
  for seed = 1 to 5 do
    let inst = chain_instance ~seed ~n:5 ~p:2 ~m:6 () in
    let g = (Dfs.general inst).Dfs.period in
    let s = (Dfs.specialized inst).Dfs.period in
    let o = (Dfs.one_to_one inst).Dfs.period in
    Alcotest.(check bool) (Printf.sprintf "g <= s (seed %d)" seed) true (g <= s +. 1e-9);
    Alcotest.(check bool) (Printf.sprintf "s <= o (seed %d)" seed) true (s <= o +. 1e-9)
  done

let test_dfs_one_to_one_requires_machines () =
  let inst = chain_instance ~n:5 ~p:2 ~m:3 () in
  Alcotest.check_raises "m < n"
    (Invalid_argument "Dfs: fewer machines than tasks - no one-to-one mapping exists")
    (fun () -> ignore (Dfs.one_to_one inst))

let test_dfs_general_setup_crossover () =
  for seed = 1 to 5 do
    let inst = chain_instance ~seed ~n:6 ~p:3 ~m:3 () in
    let spec = (Dfs.specialized inst).Dfs.period in
    (* Free reconfiguration: general can only help. *)
    let free = Dfs.general ~setup:0.0 inst in
    Alcotest.(check bool) "free general <= specialized" true
      (free.Dfs.period <= spec +. 1e-9);
    (* Ruinous reconfiguration: the optimum avoids mixing types, so it is
       exactly the specialized optimum. *)
    let ruinous = Dfs.general ~setup:1.0e7 inst in
    Alcotest.(check bool)
      (Printf.sprintf "ruinous general %.1f = specialized %.1f (seed %d)" ruinous.Dfs.period
         spec seed)
      true
      (Float.abs (ruinous.Dfs.period -. spec) <= 1e-6 *. spec);
    (* The reported period accounts for the penalty. *)
    let mid = Dfs.general ~setup:100.0 inst in
    Alcotest.(check (float 1e-6)) "penalised period consistent"
      (Mf_core.Period.with_setup inst mid.Dfs.mapping ~setup:100.0)
      mid.Dfs.period
  done

(* Pins the setup-accounting convention: on a 2-type/1-machine instance the
   single machine hosts both types and cycles back to the first every
   period, so the exact search and Period.with_setup must both charge two
   switches. *)
let test_dfs_general_setup_cyclic_convention () =
  let wf = Workflow.chain ~types:[| 0; 1 |] in
  let inst =
    Instance.create ~workflow:wf ~machines:1
      ~w:[| [| 100.0 |]; [| 200.0 |] |]
      ~f:[| [| 0.2 |]; [| 0.1 |] |]
  in
  let setup = 50.0 in
  let r = Dfs.general ~setup inst in
  let mp = Mapping.of_array inst [| 0; 0 |] in
  (* x_1 = 1/0.9, x_0 = x_1/0.8; load = x_0*100 + x_1*200, plus 2 switches. *)
  let x1 = 1.0 /. 0.9 in
  let x0 = x1 /. 0.8 in
  let expected = (x0 *. 100.0) +. (x1 *. 200.0) +. (2.0 *. setup) in
  Alcotest.(check bool) "optimal" true r.Dfs.optimal;
  Alcotest.(check (float 1e-9)) "with_setup charges the cycle" expected
    (Mf_core.Period.with_setup inst mp ~setup);
  Alcotest.(check (float 1e-9)) "dfs reports the same penalised period" expected r.Dfs.period;
  Alcotest.(check (float 1e-9)) "dfs mapping agrees with with_setup"
    (Mf_core.Period.with_setup inst r.Dfs.mapping ~setup)
    r.Dfs.period

(* Cross-solver consistency properties. *)

let arb_small_setup =
  QCheck.make
    ~print:(fun (seed, n, p, m) -> Printf.sprintf "seed=%d n=%d p=%d m=%d" seed n p m)
    QCheck.Gen.(
      let* seed = int_range 0 10000 in
      let* n = int_range 2 6 in
      let* p = int_range 1 (min n 3) in
      let* m = int_range p 3 in
      return (seed, n, p, m))

let prop_dfs_agrees_with_brute =
  QCheck.Test.make ~name:"exact: dfs = brute on random tiny instances" ~count:60
    arb_small_setup (fun (seed, n, p, m) ->
      let inst = chain_instance ~seed ~n ~p ~m () in
      let _, expected = Brute.specialized inst in
      Float.abs ((Dfs.specialized inst).Dfs.period -. expected) <= 1e-6 *. expected)

let prop_oto_bottleneck_equals_dfs =
  QCheck.Test.make ~name:"exact: matching one-to-one optimum = dfs one-to-one" ~count:40
    (QCheck.make
       ~print:(fun (seed, n) -> Printf.sprintf "seed=%d n=%d" seed n)
       QCheck.Gen.(
         let* seed = int_range 0 10000 in
         let* n = int_range 2 5 in
         return (seed, n)))
    (fun (seed, n) ->
      let inst = task_attached_chain ~seed ~n ~m:(n + 1) in
      let _, matching = Oto.bottleneck inst in
      let dfs = (Dfs.one_to_one inst).Dfs.period in
      Float.abs (matching -. dfs) <= 1e-6 *. matching)

let prop_splitting_lp_below_general_exact =
  QCheck.Test.make ~name:"exact: splitting LP <= general optimum <= specialized optimum"
    ~count:40 arb_small_setup (fun (seed, n, p, m) ->
      let inst = chain_instance ~seed ~n ~p ~m () in
      let lp =
        match Mf_lp.Splitting.solve inst with
        | Ok r -> r.Mf_lp.Splitting.period
        | Error e -> failwith (Mf_lp.Splitting.describe_error e)
      in
      let general = (Dfs.general inst).Dfs.period in
      let special = (Dfs.specialized inst).Dfs.period in
      lp <= general *. (1.0 +. 1e-6) && general <= special *. (1.0 +. 1e-6))

(* ------------------------------------------------------------------ *)
(* Branch-and-bound differential suite: the full engine (every pruning  *)
(* rule on) against brute force, and against itself with pruning off.   *)
(* ------------------------------------------------------------------ *)

(* Deterministic shapes covering chains and in-trees, n <= 8, m <= 4 —
   the family lives in Mf_proptest.Instances so the fuzz driver and this
   suite enumerate the same pool. *)
let differential_instance = Mf_proptest.Instances.differential_instance

let brute_of_rule = function
  | Mapping.Specialized -> Brute.specialized
  | Mapping.General -> Brute.general ?setup:None
  | Mapping.One_to_one -> Brute.one_to_one

(* 200 instances per rule: the all-pruning engine must reproduce the
   brute-force optimum, and never explore more nodes than itself with
   dominance and symmetry off. *)
let test_differential rule () =
  for i = 1 to 200 do
    let inst = differential_instance ~rule i in
    let _, expected = brute_of_rule rule inst in
    let pruned = Dfs.solve ~dominance:true ~symmetry:true ~rule inst in
    let unpruned = Dfs.solve ~dominance:false ~symmetry:false ~rule inst in
    Alcotest.(check bool)
      (Printf.sprintf "optimal flag (%s, i=%d)" (Mapping.rule_name rule) i)
      true pruned.Dfs.optimal;
    Alcotest.(check bool)
      (Printf.sprintf "pruned = brute (%s, i=%d): %.9g vs %.9g" (Mapping.rule_name rule) i
         pruned.Dfs.period expected)
      true
      (Float.abs (pruned.Dfs.period -. expected) <= 1e-9 *. expected);
    Alcotest.(check bool)
      (Printf.sprintf "pruned nodes <= unpruned nodes (%s, i=%d)" (Mapping.rule_name rule) i)
      true
      (pruned.Dfs.nodes <= unpruned.Dfs.nodes);
    Alcotest.(check bool)
      (Printf.sprintf "mapping valid (%s, i=%d)" (Mapping.rule_name rule) i)
      true
      (Mapping.satisfies inst pruned.Dfs.mapping rule);
    Alcotest.(check bool)
      (Printf.sprintf "period consistent (%s, i=%d)" (Mapping.rule_name rule) i)
      true
      (Float.abs (Period.period inst pruned.Dfs.mapping -. pruned.Dfs.period)
      <= 1e-9 *. pruned.Dfs.period)
  done

let test_differential_specialized () = test_differential Mapping.Specialized ()
let test_differential_general () = test_differential Mapping.General ()
let test_differential_one_to_one () = test_differential Mapping.One_to_one ()

(* General rule with a reconfiguration penalty, against the brute-force
   oracle evaluating Period.with_setup. *)
let test_differential_general_setup () =
  for i = 1 to 60 do
    let inst = differential_instance ~rule:Mapping.General i in
    let setup = [| 25.0; 100.0; 400.0 |].(i mod 3) in
    let _, expected = Brute.general ~setup inst in
    let r = Dfs.solve ~setup ~dominance:true ~symmetry:true ~rule:Mapping.General inst in
    Alcotest.(check bool)
      (Printf.sprintf "setup differential (i=%d, setup=%.0f): %.9g vs %.9g" i setup r.Dfs.period
         expected)
      true
      (Float.abs (r.Dfs.period -. expected) <= 1e-9 *. expected);
    Alcotest.(check bool) "penalised period consistent" true
      (Float.abs (Period.with_setup inst r.Dfs.mapping ~setup -. r.Dfs.period)
      <= 1e-9 *. r.Dfs.period)
  done

(* --jobs must not change anything observable: the optimal value is
   schedule-independent and the mapping is re-derived canonically.  The
   [~pool] run uses an explicitly created 3-domain pool because the
   [~jobs] path clamps to the physical core count — on a 1-core CI host
   only the external pool actually exercises workers and stealing. *)
let test_jobs_identity () =
  Mf_parallel.Pool.with_pool ~domains:3 (fun pool ->
      List.iter
        (fun (seed, n, p, m) ->
          let inst = chain_instance ~seed ~n ~p ~m () in
          let r1 = Dfs.solve ~jobs:1 ~rule:Mapping.Specialized inst in
          let r4 = Dfs.solve ~jobs:4 ~rule:Mapping.Specialized inst in
          let rp = Dfs.solve ~pool ~rule:Mapping.Specialized inst in
          Alcotest.(check bool) (Printf.sprintf "optimal (seed %d)" seed) true r1.Dfs.optimal;
          Alcotest.(check bool)
            (Printf.sprintf "period bit-identical (seed %d): %h vs %h" seed r1.Dfs.period
               r4.Dfs.period)
            true
            (r1.Dfs.period = r4.Dfs.period);
          Alcotest.(check bool)
            (Printf.sprintf "mapping identical (seed %d)" seed)
            true
            (Mapping.to_array r1.Dfs.mapping = Mapping.to_array r4.Dfs.mapping);
          Alcotest.(check bool)
            (Printf.sprintf "period bit-identical via external pool (seed %d)" seed)
            true
            (r1.Dfs.period = rp.Dfs.period);
          Alcotest.(check bool)
            (Printf.sprintf "mapping identical via external pool (seed %d)" seed)
            true
            (Mapping.to_array r1.Dfs.mapping = Mapping.to_array rp.Dfs.mapping))
        [ (1, 12, 3, 5); (2, 13, 3, 4); (3, 14, 2, 5); (4, 11, 4, 6); (5, 12, 3, 6) ])

(* Budget-exhausted multi-round runs: a re-run of the subtree holding the
   incumbent is seeded with its own best period, so it can never re-find
   the corresponding leaf and its recorded result carries no allocation.
   The incumbent (period, allocation) pair must therefore be carried
   monotonically across rounds — on these (seed, n, m, budget)
   configurations the previous aggregation, which re-derived the pair
   from the final per-subtree results, crashed on [assert false]. *)
let test_exhausted_rerun_keeps_incumbent () =
  List.iter
    (fun (seed, n, m, budget) ->
      let inst = chain_instance ~seed ~n ~p:3 ~m () in
      let r = Dfs.solve ~node_budget:budget ~rule:Mapping.Specialized inst in
      Alcotest.(check bool) (Printf.sprintf "non-optimal (seed %d)" seed) false r.Dfs.optimal;
      Alcotest.(check bool)
        (Printf.sprintf "mapping valid (seed %d)" seed)
        true
        (Mapping.satisfies inst r.Dfs.mapping Mapping.Specialized);
      Alcotest.(check bool)
        (Printf.sprintf "period consistent with mapping (seed %d)" seed)
        true
        (Float.abs (Period.period inst r.Dfs.mapping -. r.Dfs.period) <= 1e-9 *. r.Dfs.period);
      (* The fallback allocation comes out of the deterministic round
         structure, so exhaustion must not break the --jobs identity.
         An explicit pool, not ~jobs: see [test_jobs_identity]. *)
      let r4 =
        Mf_parallel.Pool.with_pool ~domains:4 (fun pool ->
            Dfs.solve ~node_budget:budget ~pool ~rule:Mapping.Specialized inst)
      in
      Alcotest.(check bool)
        (Printf.sprintf "period bit-identical under exhaustion (seed %d)" seed)
        true
        (r.Dfs.period = r4.Dfs.period);
      Alcotest.(check bool)
        (Printf.sprintf "mapping identical under exhaustion (seed %d)" seed)
        true
        (Mapping.to_array r.Dfs.mapping = Mapping.to_array r4.Dfs.mapping))
    [ (1, 14, 6, 16_000); (3, 14, 6, 4_000); (4, 14, 6, 8_000) ]

(* An in-tree whose same-type siblings share bit-identical failure rows:
   frontier signatures collide, so the dominance table must both fire and
   preserve the optimum; the auto policy must switch it on by itself. *)
let dominance_forest () =
  let n = 14 and m = 5 and p = 3 in
  let types = Array.init n (fun i -> i / 2 mod p) in
  let successor = Array.init n (fun i -> if i mod 2 = 0 then Some (i + 1) else None) in
  let wf = Workflow.in_forest ~types ~successor in
  let rng = Rng.create 11 in
  let wcol =
    Array.init p (fun _ -> Array.init m (fun _ -> 100.0 +. (900.0 *. Rng.float rng 1.0)))
  in
  let w = Array.init n (fun i -> Array.copy wcol.(types.(i))) in
  let f = Array.init n (fun _ -> Array.make m 0.01) in
  Instance.create ~workflow:wf ~machines:m ~w ~f

let test_dominance_fires () =
  let inst = dominance_forest () in
  let off = Dfs.solve ~dominance:false ~rule:Mapping.Specialized inst in
  let on = Dfs.solve ~dominance:true ~rule:Mapping.Specialized inst in
  let auto = Dfs.solve ~rule:Mapping.Specialized inst in
  Alcotest.(check bool) "dominance prunes something" true
    (on.Dfs.stats.Dfs.dominance_prunes > 0);
  Alcotest.(check bool) "fewer nodes with dominance" true (on.Dfs.nodes < off.Dfs.nodes);
  Alcotest.(check bool) "same optimum bit-for-bit" true (on.Dfs.period = off.Dfs.period);
  Alcotest.(check bool) "auto policy enables the table" true
    (auto.Dfs.stats.Dfs.dominance_prunes > 0)

(* Machines 0=1 and 2=3 are bit-identical: symmetry breaking must skip
   branches yet keep the brute-force optimum. *)
let test_symmetry_fires () =
  let n = 7 and m = 4 and p = 2 in
  let rng = Rng.create 3 in
  let types = Array.init n (fun i -> i mod p) in
  let wf = Workflow.chain ~types in
  let half ty = 100.0 +. (500.0 *. Rng.float rng 1.0) +. (37.0 *. float_of_int ty) in
  let wA = Array.init p (fun ty -> half ty) and wB = Array.init p (fun ty -> half ty) in
  let w = Array.init n (fun i ->
      let a = wA.(types.(i)) and b = wB.(types.(i)) in
      [| a; a; b; b |])
  in
  let f = Array.init n (fun i ->
      let fa = 0.005 +. (0.002 *. float_of_int (i mod 5)) in
      let fb = 0.006 +. (0.003 *. float_of_int (i mod 4)) in
      [| fa; fa; fb; fb |])
  in
  let inst = Instance.create ~workflow:wf ~machines:m ~w ~f in
  Alcotest.(check bool) "classes detected" true (Mf_exact.Reduction.has_machine_symmetry inst);
  let _, expected = Brute.specialized inst in
  let on = Dfs.solve ~symmetry:true ~rule:Mapping.Specialized inst in
  let off = Dfs.solve ~symmetry:false ~rule:Mapping.Specialized inst in
  Alcotest.(check bool) "symmetry skips branches" true (on.Dfs.stats.Dfs.symmetry_skips > 0);
  Alcotest.(check bool) "fewer nodes with symmetry" true (on.Dfs.nodes <= off.Dfs.nodes);
  Alcotest.(check bool) "matches brute" true
    (Float.abs (on.Dfs.period -. expected) <= 1e-9 *. expected);
  Alcotest.(check bool) "matches unbroken search bit-for-bit" true
    (on.Dfs.period = off.Dfs.period)

(* The previous-generation engine must agree with the new one — they share
   nothing but the problem definition, so this is a strong differential. *)
let test_static_agrees_with_bnb () =
  for seed = 1 to 25 do
    let inst = chain_instance ~seed ~n:10 ~p:3 ~m:5 () in
    let st = Dfs.solve_static ~rule:Mapping.Specialized inst in
    let bb = Dfs.solve ~rule:Mapping.Specialized inst in
    Alcotest.(check bool)
      (Printf.sprintf "static = bnb (seed %d): %.9g vs %.9g" seed st.Dfs.period bb.Dfs.period)
      true
      (Float.abs (st.Dfs.period -. bb.Dfs.period) <= 1e-9 *. st.Dfs.period)
  done

(* ------------------------------------------------------------------ *)
(* Theorem 2: the 3-PARTITION reduction, executed                       *)
(* ------------------------------------------------------------------ *)

module Reduction = Mf_exact.Reduction

let test_reduction_shape () =
  let p = { Reduction.z = [| 1; 2; 3; 2; 2; 2 |]; target = 6 } in
  let inst = Reduction.build p in
  (* k = 2 chains of 3 plus the shared final task: 7 tasks, 7 machines. *)
  Alcotest.(check int) "tasks" 7 (Instance.task_count inst);
  Alcotest.(check int) "machines" 7 (Instance.machines inst);
  let wf = Instance.workflow inst in
  Alcotest.(check (list int)) "single sink" [ 6 ] (Workflow.sinks wf);
  Alcotest.(check (list int)) "join of chains" [ 2; 5 ] (Workflow.predecessors wf 6);
  (* Machine failure rates are (2^z - 1)/2^z, last machine perfect. *)
  Alcotest.(check (float 1e-15)) "f of z=1 machine" 0.5 (Instance.f inst 0 0);
  Alcotest.(check (float 1e-15)) "f of z=3 machine" 0.875 (Instance.f inst 0 2);
  Alcotest.(check (float 0.0)) "perfect machine" 0.0 (Instance.f inst 0 6);
  Alcotest.(check (float 0.0)) "unit costs" 1.0 (Instance.w inst 3 4);
  Alcotest.(check (float 0.0)) "threshold" 64.0 (Reduction.threshold p)

let test_reduction_solvable_instances () =
  (* {1,2,3, 2,2,2}: triples (1,2,3) and (2,2,2) both sum to 6. *)
  let yes = { Reduction.z = [| 1; 2; 3; 2; 2; 2 |]; target = 6 } in
  Alcotest.(check bool) "brute says yes" true (Reduction.brute_force_3partition yes);
  Alcotest.(check bool) "oracle says yes" true (Reduction.solvable_by_oracle yes)

let test_reduction_unsolvable_instances () =
  (* {1,1,1, 3,3,3} with target 6: no triple mixes to exactly 6
     (1+1+1 = 3, 1+1+3 = 5, 1+3+3 = 7, 3+3+3 = 9). *)
  let no = { Reduction.z = [| 1; 1; 1; 3; 3; 3 |]; target = 6 } in
  Alcotest.(check bool) "brute says no" false (Reduction.brute_force_3partition no);
  Alcotest.(check bool) "oracle says no" false (Reduction.solvable_by_oracle no)

let test_reduction_validation () =
  Alcotest.check_raises "bad length" (Invalid_argument "Reduction: need 3k integers")
    (fun () -> Reduction.validate { Reduction.z = [| 1; 2 |]; target = 3 });
  Alcotest.check_raises "bad sum"
    (Invalid_argument "Reduction: integers must sum to k * target") (fun () ->
      Reduction.validate { Reduction.z = [| 1; 2; 3 |]; target = 7 })

let prop_reduction_equivalence =
  (* Random small 3-PARTITION instances: the oracle must agree with the
     direct brute force - Theorem 2's equivalence, executed. *)
  QCheck.Test.make ~name:"reduction: oracle decides 3-PARTITION" ~count:25
    (QCheck.make
       ~print:(fun z -> String.concat "," (List.map string_of_int (Array.to_list z)))
       QCheck.Gen.(
         let* k = int_range 1 2 in
         let* z = array_repeat (3 * k) (int_range 1 5) in
         return z))
    (fun z ->
      let sum = Array.fold_left ( + ) 0 z in
      let k = Array.length z / 3 in
      QCheck.assume (sum mod k = 0);
      let p = { Reduction.z; target = sum / k } in
      Reduction.solvable_by_oracle p = Reduction.brute_force_3partition p)

(* ------------------------------------------------------------------ *)
(* Per-node LP bound oracle (Mf_lp.Node_bound behind Dfs.node_bound)   *)
(* ------------------------------------------------------------------ *)

module Node_bound = Mf_lp.Node_bound

let nb_oracle t =
  {
    Dfs.nb_push = (fun ~task ~machine -> Node_bound.push t ~task ~machine);
    nb_pop = (fun () -> Node_bound.pop t);
    nb_bound = (fun ~cutoff -> Node_bound.bound t ~cutoff);
    nb_pivots = (fun () -> (Node_bound.stats t).Node_bound.pivots);
  }

(* Exact best completion of a partial assignment ([-1] = unassigned)
   under [rule], by exhaustive enumeration: the ground truth the LP
   bound must never exceed. *)
let best_completion inst ~rule ~assigned =
  let m = Instance.machines inst in
  let order = Workflow.backward_order (Instance.workflow inst) in
  let free =
    Array.to_list order |> List.filter (fun i -> assigned.(i) < 0)
  in
  let best = ref infinity in
  let rec go = function
    | [] ->
        let mp = Mapping.of_array inst (Array.copy assigned) in
        if Mapping.satisfies inst mp rule then
          best := Float.min !best (Period.period inst mp)
    | t :: rest ->
        for u = 0 to m - 1 do
          assigned.(t) <- u;
          go rest;
          assigned.(t) <- -1
        done
  in
  go free;
  !best

(* At every prefix of the optimal mapping's assignment path:
   - a value that reaches its cutoff must be a true lower bound on the
     best completion (soundness);
   - with a cutoff strictly above the best completion the oracle can
     never prune (so the search never cuts the optimum while the
     incumbent is still beatable). *)
let test_node_bound_sound_never_prunes_optimum () =
  let rule = Mapping.Specialized in
  for seed = 1 to 6 do
    let inst = chain_instance ~seed ~n:6 ~p:2 ~m:3 () in
    let opt_mp, _ = Brute.specialized inst in
    let order = Workflow.backward_order (Instance.workflow inst) in
    let n = Instance.task_count inst in
    (* The root certified bound every node LP must dominate: a node's
       reduced LP is the root relaxation plus lock restrictions, so its
       feasible set only shrinks and the period bound only rises. *)
    let root_bound =
      match Mf_lp.Splitting.solve inst with
      | Ok r -> r.Mf_lp.Splitting.period
      | Error _ -> Alcotest.fail "splitting LP failed on generated instance"
    in
    let t = Node_bound.create ~rule inst in
    let assigned = Array.make n (-1) in
    for k = 0 to n - 2 do
      let task = order.(k) in
      let machine = Mapping.machine opt_mp task in
      Node_bound.push t ~task ~machine;
      assigned.(task) <- machine;
      let truth = best_completion inst ~rule ~assigned in
      let name what =
        Printf.sprintf "seed %d depth %d: %s" seed (k + 1) what
      in
      Alcotest.(check bool) (name "prefix completable") true (Float.is_finite truth);
      (* Soundness at a beatable cutoff. *)
      let cutoff = 0.9 *. truth in
      let b = Node_bound.bound t ~cutoff in
      if b >= cutoff then begin
        Alcotest.(check bool)
          (Printf.sprintf "%s (bound %.9g > truth %.9g)" (name "bound sound") b truth)
          true
          (b <= truth *. (1. +. 1e-6));
        Alcotest.(check bool)
          (Printf.sprintf "%s (bound %.9g < root %.9g)" (name "dominates root bound") b
             root_bound)
          true
          (b >= root_bound *. (1. -. 1e-6))
      end;
      (* No pruning when the best completion beats the cutoff. *)
      let above = truth *. (1. +. 1e-3) in
      let b2 = Node_bound.bound t ~cutoff:above in
      Alcotest.(check bool)
        (Printf.sprintf "%s (bound %.9g vs %.9g)" (name "optimum survives") b2 above)
        true (b2 < above)
    done
  done

(* Two oracles fed the identical push/bound/pop sequence answer
   bit-identically — the determinism the --jobs identity contract
   rests on (each subtree gets its own oracle from the factory). *)
let test_node_bound_deterministic_replay () =
  let rule = Mapping.Specialized in
  let inst = chain_instance ~seed:3 ~n:8 ~p:2 ~m:4 () in
  let order = Workflow.backward_order (Instance.workflow inst) in
  let n = Instance.task_count inst in
  let replay () =
    let t = Node_bound.create ~rule inst in
    let out = ref [] in
    let rng = Rng.create 99 in
    (* Depth-first excursion pattern: push, bound, sometimes pop and
       re-push a sibling — the shape of the real search's journal. *)
    for k = 0 to n - 1 do
      let task = order.(k) in
      let u1 = Rng.int rng 4 in
      Node_bound.push t ~task ~machine:u1;
      out := Node_bound.bound t ~cutoff:(100.0 +. float_of_int k) :: !out;
      Node_bound.pop t;
      let u2 = Rng.int rng 4 in
      Node_bound.push t ~task ~machine:u2;
      out := Node_bound.bound t ~cutoff:(200.0 +. float_of_int k) :: !out
    done;
    (!out, Node_bound.stats t)
  in
  let o1, s1 = replay () in
  let o2, s2 = replay () in
  List.iteri
    (fun i (a, b) ->
      Alcotest.(check bool)
        (Printf.sprintf "replay value %d identical (%h vs %h)" i a b)
        true
        (Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)))
    (List.combine o1 o2);
  Alcotest.(check int) "replay solves identical" s1.Node_bound.solves s2.Node_bound.solves;
  Alcotest.(check int) "replay pivots identical" s1.Node_bound.pivots s2.Node_bound.pivots

let test_node_bound_push_order_contract () =
  let inst = chain_instance ~seed:1 ~n:5 ~p:2 ~m:3 () in
  let t = Node_bound.create ~rule:Mapping.Specialized inst in
  (* Task 0's successor (task 1 in a chain) is uncommitted. *)
  (try
     Node_bound.push t ~task:0 ~machine:0;
     Alcotest.fail "push out of backward order accepted"
   with Invalid_argument _ -> ());
  (try
     Node_bound.pop t;
     Alcotest.fail "pop of empty journal accepted"
   with Invalid_argument _ -> ())

(* End-to-end through Dfs: the LP-bound arm returns the same optimum as
   the plain search, actually evaluates the oracle, and stays
   byte-identical across jobs. *)
let test_dfs_node_bound_agrees () =
  let rule = Mapping.Specialized in
  for seed = 1 to 8 do
    let inst = chain_instance ~seed ~n:9 ~p:3 ~m:4 () in
    let factory () = nb_oracle (Node_bound.create ~rule inst) in
    let plain = Dfs.solve ~rule inst in
    let lp = Dfs.solve ~node_bound:factory ~rule inst in
    let lp4 = Dfs.solve ~jobs:4 ~node_bound:factory ~rule inst in
    Alcotest.(check bool) (Printf.sprintf "plain optimal (seed %d)" seed) true plain.Dfs.optimal;
    Alcotest.(check bool) (Printf.sprintf "lp optimal (seed %d)" seed) true lp.Dfs.optimal;
    Alcotest.(check (float 1e-9))
      (Printf.sprintf "periods agree (seed %d)" seed)
      plain.Dfs.period lp.Dfs.period;
    Alcotest.(check bool)
      (Printf.sprintf "oracle evaluated (seed %d)" seed)
      true
      (lp.Dfs.stats.Dfs.lp_solves > 0);
    Alcotest.(check int)
      (Printf.sprintf "j1 = j4 nodes (seed %d)" seed)
      lp.Dfs.nodes lp4.Dfs.nodes;
    Alcotest.(check int)
      (Printf.sprintf "j1 = j4 lp_solves (seed %d)" seed)
      lp.Dfs.stats.Dfs.lp_solves lp4.Dfs.stats.Dfs.lp_solves;
    Alcotest.(check int)
      (Printf.sprintf "j1 = j4 lp_prunes (seed %d)" seed)
      lp.Dfs.stats.Dfs.lp_prunes lp4.Dfs.stats.Dfs.lp_prunes;
    Alcotest.(check (float 0.0))
      (Printf.sprintf "j1 = j4 period (seed %d)" seed)
      lp.Dfs.period lp4.Dfs.period
  done

let () =
  Alcotest.run "mf_exact"
    [
      ( "node-bound",
        [
          Alcotest.test_case "sound, never prunes optimum" `Slow
            test_node_bound_sound_never_prunes_optimum;
          Alcotest.test_case "deterministic replay" `Quick test_node_bound_deterministic_replay;
          Alcotest.test_case "push order contract" `Quick test_node_bound_push_order_contract;
          Alcotest.test_case "dfs arm agrees with plain" `Slow test_dfs_node_bound_agrees;
        ] );
      ( "brute",
        [
          Alcotest.test_case "single task" `Quick test_brute_single_task;
          Alcotest.test_case "rule ordering" `Slow test_brute_rules_ordering;
          Alcotest.test_case "one-to-one precondition" `Quick test_brute_one_to_one_requires_machines;
        ] );
      ( "dfs",
        [
          Alcotest.test_case "matches brute (chains)" `Slow test_dfs_matches_brute;
          Alcotest.test_case "matches brute (trees)" `Slow test_dfs_matches_brute_on_trees;
          Alcotest.test_case "node budget" `Quick test_dfs_node_budget;
          Alcotest.test_case "dominates heuristics" `Slow test_dfs_beats_or_matches_heuristics;
        ] );
      ( "dfs-rules",
        [
          Alcotest.test_case "general matches brute" `Slow test_dfs_general_matches_brute;
          Alcotest.test_case "one-to-one matches brute" `Slow test_dfs_one_to_one_matches_brute;
          Alcotest.test_case "rule ordering" `Slow test_dfs_rule_ordering;
          Alcotest.test_case "one-to-one precondition" `Quick test_dfs_one_to_one_requires_machines;
          Alcotest.test_case "reconfiguration crossover" `Slow test_dfs_general_setup_crossover;
          Alcotest.test_case "setup cyclic convention" `Quick
            test_dfs_general_setup_cyclic_convention;
        ] );
      ( "reduction",
        [
          Alcotest.test_case "shape" `Quick test_reduction_shape;
          Alcotest.test_case "solvable" `Quick test_reduction_solvable_instances;
          Alcotest.test_case "unsolvable" `Quick test_reduction_unsolvable_instances;
          Alcotest.test_case "validation" `Quick test_reduction_validation;
        ] );
      ("reduction-props", List.map QCheck_alcotest.to_alcotest [ prop_reduction_equivalence ]);
      ( "cross-solver-props",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_dfs_agrees_with_brute;
            prop_oto_bottleneck_equals_dfs;
            prop_splitting_lp_below_general_exact;
          ] );
      ( "dfs-differential",
        [
          Alcotest.test_case "specialized vs brute (200)" `Slow test_differential_specialized;
          Alcotest.test_case "general vs brute (200)" `Slow test_differential_general;
          Alcotest.test_case "one-to-one vs brute (200)" `Slow test_differential_one_to_one;
          Alcotest.test_case "general+setup vs brute" `Slow test_differential_general_setup;
          Alcotest.test_case "jobs 1 = jobs 4" `Slow test_jobs_identity;
          Alcotest.test_case "exhausted re-runs keep the incumbent" `Quick
            test_exhausted_rerun_keeps_incumbent;
          Alcotest.test_case "dominance fires and is safe" `Quick test_dominance_fires;
          Alcotest.test_case "symmetry fires and is safe" `Quick test_symmetry_fires;
          Alcotest.test_case "static engine agrees" `Slow test_static_agrees_with_bnb;
        ] );
      ( "oto",
        [
          Alcotest.test_case "theorem 1 optimal" `Slow test_theorem1_matches_brute;
          Alcotest.test_case "theorem 1 preconditions" `Quick test_theorem1_preconditions;
          Alcotest.test_case "bottleneck optimal" `Slow test_bottleneck_matches_brute;
          Alcotest.test_case "bottleneck preconditions" `Quick test_bottleneck_preconditions;
          Alcotest.test_case "specialized beats oto" `Slow test_specialized_at_least_as_good_as_oto;
        ] );
    ]
