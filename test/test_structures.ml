(* Tests for mf_structures: Binary_heap, Bitset, Dyn_array, Matrix, Lru. *)

module Heap = Mf_structures.Binary_heap
module Bitset = Mf_structures.Bitset
module Ds = Mf_structures.Dyn_array
module Matrix = Mf_structures.Matrix

module Lru = Mf_structures.Lru.Make (struct
  type t = string

  let equal = String.equal
  let hash = Hashtbl.hash
end)

(* ------------------------------------------------------------------ *)
(* Binary_heap                                                         *)
(* ------------------------------------------------------------------ *)

let test_heap_basic () =
  let h = Heap.create ~cmp:compare in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Heap.push h 5;
  Heap.push h 1;
  Heap.push h 3;
  Alcotest.(check int) "length" 3 (Heap.length h);
  Alcotest.(check (option int)) "peek" (Some 1) (Heap.peek h);
  Alcotest.(check (option int)) "pop 1" (Some 1) (Heap.pop h);
  Alcotest.(check (option int)) "pop 2" (Some 3) (Heap.pop h);
  Alcotest.(check (option int)) "pop 3" (Some 5) (Heap.pop h);
  Alcotest.(check (option int)) "pop empty" None (Heap.pop h)

let test_heap_pop_exn () =
  let h = Heap.create ~cmp:compare in
  Alcotest.check_raises "raises" Not_found (fun () -> ignore (Heap.pop_exn h));
  Heap.push h 9;
  Alcotest.(check int) "pop_exn" 9 (Heap.pop_exn h)

let test_heap_of_array () =
  let h = Heap.of_array ~cmp:compare [| 4; 2; 9; 1; 7 |] in
  Alcotest.(check (list int)) "sorted drain" [ 1; 2; 4; 7; 9 ] (Heap.to_sorted_list h);
  (* to_sorted_list must not consume the heap. *)
  Alcotest.(check int) "intact" 5 (Heap.length h)

let test_heap_clear () =
  let h = Heap.of_array ~cmp:compare [| 3; 1 |] in
  Heap.clear h;
  Alcotest.(check bool) "cleared" true (Heap.is_empty h)

let test_heap_custom_order () =
  (* Max-heap through inverted comparison. *)
  let h = Heap.create ~cmp:(fun a b -> compare b a) in
  List.iter (Heap.push h) [ 1; 5; 3 ];
  Alcotest.(check (option int)) "max first" (Some 5) (Heap.pop h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap: drains in sorted order" ~count:300
    QCheck.(list int)
    (fun xs ->
      let h = Heap.of_array ~cmp:compare (Array.of_list xs) in
      Heap.to_sorted_list h = List.sort compare xs)

let prop_heap_push_pop_sorts =
  QCheck.Test.make ~name:"heap: push then pop-all is sorted" ~count:300
    QCheck.(list int)
    (fun xs ->
      let h = Heap.create ~cmp:compare in
      List.iter (Heap.push h) xs;
      let rec drain acc = match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc) in
      drain [] = List.sort compare xs)

(* ------------------------------------------------------------------ *)
(* Bitset                                                              *)
(* ------------------------------------------------------------------ *)

let test_bitset_basic () =
  let s = Bitset.create 100 in
  Alcotest.(check bool) "empty" true (Bitset.is_empty s);
  Bitset.add s 0;
  Bitset.add s 63;
  Bitset.add s 64;
  Bitset.add s 99;
  Alcotest.(check int) "cardinal" 4 (Bitset.cardinal s);
  Alcotest.(check bool) "mem 63" true (Bitset.mem s 63);
  Alcotest.(check bool) "not mem 42" false (Bitset.mem s 42);
  Bitset.remove s 63;
  Alcotest.(check bool) "removed" false (Bitset.mem s 63);
  Alcotest.(check (list int)) "to_list sorted" [ 0; 64; 99 ] (Bitset.to_list s)

let test_bitset_bounds () =
  let s = Bitset.create 10 in
  Alcotest.check_raises "out of range" (Invalid_argument "Bitset: index out of range")
    (fun () -> Bitset.add s 10)

let test_bitset_ops () =
  let a = Bitset.create 20 and b = Bitset.create 20 in
  List.iter (Bitset.add a) [ 1; 2; 3 ];
  List.iter (Bitset.add b) [ 3; 4 ];
  let u = Bitset.copy a in
  Bitset.union_into u b;
  Alcotest.(check (list int)) "union" [ 1; 2; 3; 4 ] (Bitset.to_list u);
  let i = Bitset.copy a in
  Bitset.inter_into i b;
  Alcotest.(check (list int)) "inter" [ 3 ] (Bitset.to_list i);
  Bitset.clear u;
  Alcotest.(check bool) "clear" true (Bitset.is_empty u)

let prop_bitset_like_intset =
  QCheck.Test.make ~name:"bitset: behaves like a set of ints" ~count:300
    QCheck.(list (int_range 0 199))
    (fun xs ->
      let s = Bitset.create 200 in
      List.iter (Bitset.add s) xs;
      let expected = List.sort_uniq compare xs in
      Bitset.to_list s = expected && Bitset.cardinal s = List.length expected)

(* ------------------------------------------------------------------ *)
(* Dyn_array                                                           *)
(* ------------------------------------------------------------------ *)

let test_dyn_array_basic () =
  let v = Ds.create () in
  Alcotest.(check bool) "empty" true (Ds.is_empty v);
  for i = 0 to 99 do
    Ds.push v i
  done;
  Alcotest.(check int) "length" 100 (Ds.length v);
  Alcotest.(check int) "get" 42 (Ds.get v 42);
  Ds.set v 42 (-1);
  Alcotest.(check int) "set" (-1) (Ds.get v 42);
  Alcotest.(check (option int)) "pop" (Some 99) (Ds.pop v);
  Alcotest.(check int) "length after pop" 99 (Ds.length v)

let test_dyn_array_bounds () =
  let v = Ds.of_array [| 1; 2 |] in
  Alcotest.check_raises "get oob" (Invalid_argument "Dyn_array: index out of bounds")
    (fun () -> ignore (Ds.get v 2))

let test_dyn_array_conversions () =
  let v = Ds.of_array [| 1; 2; 3 |] in
  Alcotest.(check (list int)) "to_list" [ 1; 2; 3 ] (Ds.to_list v);
  Alcotest.(check int) "fold" 6 (Ds.fold_left ( + ) 0 v);
  let acc = ref [] in
  Ds.iteri (fun i x -> acc := (i, x) :: !acc) v;
  Alcotest.(check int) "iteri count" 3 (List.length !acc)

let prop_dyn_array_push_to_array =
  QCheck.Test.make ~name:"dyn_array: pushes roundtrip through to_array" ~count:300
    QCheck.(list int)
    (fun xs ->
      let v = Ds.create () in
      List.iter (Ds.push v) xs;
      Ds.to_list v = xs)

(* ------------------------------------------------------------------ *)
(* Matrix                                                              *)
(* ------------------------------------------------------------------ *)

let test_matrix_basic () =
  let m = Matrix.init 2 3 (fun i j -> float_of_int ((10 * i) + j)) in
  Alcotest.(check int) "rows" 2 (Matrix.rows m);
  Alcotest.(check int) "cols" 3 (Matrix.cols m);
  Alcotest.(check (float 0.0)) "get" 12.0 (Matrix.get m 1 2);
  Matrix.set m 1 2 99.0;
  Alcotest.(check (float 0.0)) "set" 99.0 (Matrix.get m 1 2)

let test_matrix_row_ops () =
  let m = Matrix.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  Matrix.swap_rows m 0 1;
  Alcotest.(check (float 0.0)) "swap" 3.0 (Matrix.get m 0 0);
  Matrix.scale_row m 0 2.0;
  Alcotest.(check (float 0.0)) "scale" 6.0 (Matrix.get m 0 0);
  Matrix.add_scaled_row m ~dst:1 ~src:0 1.0;
  Alcotest.(check (float 0.0)) "add_scaled" 7.0 (Matrix.get m 1 0);
  let r = Matrix.row m 0 in
  Alcotest.(check (array (float 0.0))) "row copy" [| 6.0; 8.0 |] r

let test_matrix_errors () =
  Alcotest.check_raises "bad dims" (Invalid_argument "Matrix.create: non-positive dimension")
    (fun () -> ignore (Matrix.create 0 3));
  Alcotest.check_raises "ragged" (Invalid_argument "Matrix.of_arrays: ragged rows") (fun () ->
      ignore (Matrix.of_arrays [| [| 1.0 |]; [| 1.0; 2.0 |] |]))

let test_matrix_copy_isolated () =
  let m = Matrix.create 2 2 in
  let c = Matrix.copy m in
  Matrix.set m 0 0 5.0;
  Alcotest.(check (float 0.0)) "copy unaffected" 0.0 (Matrix.get c 0 0)

(* ------------------------------------------------------------------ *)
(* Lru                                                                 *)
(* ------------------------------------------------------------------ *)

let test_lru_basic () =
  let c = Lru.create ~capacity:2 in
  Alcotest.(check int) "empty" 0 (Lru.length c);
  Alcotest.(check int) "capacity" 2 (Lru.capacity c);
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  Alcotest.(check (option int)) "find a" (Some 1) (Lru.find c "a");
  Alcotest.(check (option int)) "find b" (Some 2) (Lru.find c "b");
  Alcotest.(check (option int)) "find missing" None (Lru.find c "z");
  Alcotest.(check int) "hits" 2 (Lru.hits c);
  Alcotest.(check int) "misses" 1 (Lru.misses c)

let test_lru_eviction_order () =
  let c = Lru.create ~capacity:2 in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  (* touch a so b becomes least-recently-used *)
  ignore (Lru.find c "a");
  Lru.add c "c" 3;
  Alcotest.(check int) "one eviction" 1 (Lru.evictions c);
  Alcotest.(check (option int)) "b evicted" None (Lru.find c "b");
  Alcotest.(check (option int)) "a kept" (Some 1) (Lru.find c "a");
  Alcotest.(check (option int)) "c kept" (Some 3) (Lru.find c "c");
  Alcotest.(check (list string)) "mru order" [ "c"; "a" ]
    (List.map fst (Lru.to_list c))

let test_lru_replace () =
  let c = Lru.create ~capacity:2 in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  (* replacing a key must not evict anything *)
  Lru.add c "a" 10;
  Alcotest.(check int) "no eviction on replace" 0 (Lru.evictions c);
  Alcotest.(check int) "length still 2" 2 (Lru.length c);
  Alcotest.(check (option int)) "new value" (Some 10) (Lru.find c "a");
  (* the replace promoted a, so b is now the eviction victim *)
  Lru.add c "c" 3;
  Alcotest.(check (option int)) "b evicted after replace-promotion" None (Lru.find c "b")

let test_lru_mem_remove_clear () =
  let c = Lru.create ~capacity:3 in
  Lru.add c "a" 1;
  (* mem neither promotes nor counts *)
  Alcotest.(check bool) "mem" true (Lru.mem c "a");
  Alcotest.(check int) "mem does not count hits" 0 (Lru.hits c);
  Lru.remove c "a";
  Alcotest.(check bool) "removed" false (Lru.mem c "a");
  Lru.add c "b" 2;
  ignore (Lru.find c "b");
  Lru.clear c;
  Alcotest.(check int) "cleared" 0 (Lru.length c);
  (* counters survive clear: they describe the cache's lifetime *)
  Alcotest.(check int) "hits survive clear" 1 (Lru.hits c)

let test_lru_capacity_validation () =
  Alcotest.check_raises "capacity 0" (Invalid_argument "Lru.create: capacity must be >= 1")
    (fun () -> ignore (Lru.create ~capacity:0))

(* Against a naive association-list model over random op sequences. *)
let prop_lru_model =
  QCheck.Test.make ~count:300 ~name:"lru: matches a naive model"
    QCheck.(list (pair (int_bound 7) small_int))
    (fun ops ->
      let capacity = 3 in
      let c = Lru.create ~capacity in
      (* model: MRU-first assoc list, truncated at capacity *)
      let model = ref [] in
      List.iter
        (fun (k, v) ->
          let key = string_of_int k in
          Lru.add c key v;
          let rest = List.remove_assoc key !model in
          let rest =
            if List.mem_assoc key !model then rest
            else if List.length rest >= capacity then
              List.filteri (fun i _ -> i < capacity - 1) rest
            else rest
          in
          model := (key, v) :: rest)
        ops;
      List.map fst (Lru.to_list c) = List.map fst !model
      && List.for_all (fun (k, v) -> Lru.find c k = Some v) !model)

let () =
  Alcotest.run "mf_structures"
    [
      ( "heap",
        [
          Alcotest.test_case "basic" `Quick test_heap_basic;
          Alcotest.test_case "pop_exn" `Quick test_heap_pop_exn;
          Alcotest.test_case "of_array" `Quick test_heap_of_array;
          Alcotest.test_case "clear" `Quick test_heap_clear;
          Alcotest.test_case "custom order" `Quick test_heap_custom_order;
        ] );
      ("heap-props", List.map QCheck_alcotest.to_alcotest [ prop_heap_sorts; prop_heap_push_pop_sorts ]);
      ( "bitset",
        [
          Alcotest.test_case "basic" `Quick test_bitset_basic;
          Alcotest.test_case "bounds" `Quick test_bitset_bounds;
          Alcotest.test_case "set ops" `Quick test_bitset_ops;
        ] );
      ("bitset-props", List.map QCheck_alcotest.to_alcotest [ prop_bitset_like_intset ]);
      ( "dyn_array",
        [
          Alcotest.test_case "basic" `Quick test_dyn_array_basic;
          Alcotest.test_case "bounds" `Quick test_dyn_array_bounds;
          Alcotest.test_case "conversions" `Quick test_dyn_array_conversions;
        ] );
      ("dyn_array-props", List.map QCheck_alcotest.to_alcotest [ prop_dyn_array_push_to_array ]);
      ( "lru",
        [
          Alcotest.test_case "basic" `Quick test_lru_basic;
          Alcotest.test_case "eviction order" `Quick test_lru_eviction_order;
          Alcotest.test_case "replace" `Quick test_lru_replace;
          Alcotest.test_case "mem/remove/clear" `Quick test_lru_mem_remove_clear;
          Alcotest.test_case "capacity validation" `Quick test_lru_capacity_validation;
        ] );
      ("lru-props", List.map QCheck_alcotest.to_alcotest [ prop_lru_model ]);
      ( "matrix",
        [
          Alcotest.test_case "basic" `Quick test_matrix_basic;
          Alcotest.test_case "row ops" `Quick test_matrix_row_ops;
          Alcotest.test_case "errors" `Quick test_matrix_errors;
          Alcotest.test_case "copy" `Quick test_matrix_copy_isolated;
        ] );
    ]
