(* Tests for mf_eval: the incremental evaluation state shared by the
   heuristics, the exact search and the bench.  The core contract - try_*
   equals a from-scratch Period.period, apply/undo restores bit-for-bit -
   is exercised over random in-forests and long random move sequences. *)

module Instance = Mf_core.Instance
module Workflow = Mf_core.Workflow
module Mapping = Mf_core.Mapping
module Period = Mf_core.Period
module Rat = Mf_numeric.Rat
module State = Mf_eval.State
module Gen = Mf_workload.Gen
module Rng = Mf_prng.Rng

let chain_instance ?(seed = 1) ~n ~p ~m () =
  Gen.chain (Rng.create seed) (Gen.default ~tasks:n ~types:p ~machines:m)

let tree_instance ?(seed = 1) ~n ~p ~m () =
  Gen.in_tree (Rng.create seed) (Gen.default ~tasks:n ~types:p ~machines:m)

let full_period inst a = Period.period inst (Mapping.of_array inst a)

(* Relative closeness, matching the State.check convention. *)
let close ?(tol = 1e-9) a b = Float.abs (a -. b) <= tol *. Float.max 1.0 (Float.abs b)

(* A deterministic valid starting allocation (machine = task type works for
   any instance with m >= p and is even specialized). *)
let typed_start inst =
  let wf = Instance.workflow inst in
  Array.init (Instance.task_count inst) (fun i -> Workflow.ttype wf i)

let random_start rng inst =
  Array.init (Instance.task_count inst) (fun _ -> Rng.int rng (Instance.machines inst))

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let test_of_mapping_bit_identical () =
  List.iter
    (fun (seed, n, p, m) ->
      let inst = chain_instance ~seed ~n ~p ~m () in
      let mp = Mapping.of_array inst (typed_start inst) in
      let st = State.of_mapping inst mp in
      Alcotest.(check bool)
        (Printf.sprintf "period bit-identical (n=%d m=%d)" n m)
        true
        (State.period st = Period.period inst mp))
    [ (1, 5, 2, 3); (2, 12, 3, 5); (3, 30, 5, 12); (4, 60, 5, 20) ]

let test_read_access () =
  let inst = chain_instance ~n:8 ~p:3 ~m:4 () in
  let a = typed_start inst in
  let st = State.of_mapping inst (Mapping.of_array inst a) in
  Alcotest.(check bool) "complete" true (State.is_complete st);
  Alcotest.(check (array int)) "to_array" a (State.to_array st);
  Alcotest.(check (array int)) "mapping roundtrip" a (Mapping.to_array (State.mapping st));
  Array.iteri
    (fun i u -> Alcotest.(check int) "machine_of" u (State.machine_of st i))
    a;
  let wf = Instance.workflow inst in
  for u = 0 to 3 do
    let count = Array.fold_left (fun acc v -> if v = u then acc + 1 else acc) 0 a in
    Alcotest.(check int) "tasks_on" count (State.tasks_on st u);
    for ty = 0 to 2 do
      let expect =
        Array.exists (fun i -> a.(i) = u && Workflow.ttype wf i = ty)
          (Array.init 8 Fun.id)
      in
      Alcotest.(check bool) "hosts_type" expect (State.hosts_type st ~machine:u ~ty)
    done
  done;
  State.check st

(* move_allowed must agree with the O(n) definition: every other task on
   the target machine shares the task's type. *)
let test_move_allowed_matches_scan () =
  let rng = Rng.create 42 in
  for seed = 1 to 10 do
    let inst = tree_instance ~seed ~n:12 ~p:3 ~m:5 () in
    let wf = Instance.workflow inst in
    let a = random_start rng inst in
    let st = State.of_mapping inst (Mapping.of_array inst a) in
    for i = 0 to 11 do
      for u = 0 to 4 do
        let scan =
          Array.for_all Fun.id
            (Array.mapi
               (fun j uj ->
                 j = i || uj <> u || Workflow.ttype wf j = Workflow.ttype wf i)
               a)
        in
        Alcotest.(check bool)
          (Printf.sprintf "move_allowed(%d,%d)" i u)
          scan
          (State.move_allowed st ~task:i ~machine:u)
      done
    done
  done

(* ------------------------------------------------------------------ *)
(* try_move / try_swap vs full recomputation                           *)
(* ------------------------------------------------------------------ *)

let test_try_move_matches_full () =
  let inst = tree_instance ~seed:7 ~n:15 ~p:4 ~m:6 () in
  let a = typed_start inst in
  let st = State.of_mapping inst (Mapping.of_array inst a) in
  let p0 = State.period st in
  for i = 0 to 14 do
    for u = 0 to 5 do
      if u <> a.(i) then begin
        let b = Array.copy a in
        b.(i) <- u;
        let expect = full_period inst b in
        let got = State.try_move st ~task:i ~machine:u in
        if not (close got expect) then
          Alcotest.failf "try_move(%d,%d) = %.17g, full recompute %.17g" i u got expect
      end
    done
  done;
  (* try_move must leave the state untouched. *)
  Alcotest.(check (array int)) "allocation untouched" a (State.to_array st);
  Alcotest.(check bool) "period untouched" true (State.period st = p0);
  State.check st

let test_try_swap_matches_full () =
  let inst = chain_instance ~seed:9 ~n:15 ~p:3 ~m:6 () in
  let a = typed_start inst in
  let st = State.of_mapping inst (Mapping.of_array inst a) in
  for u = 0 to 5 do
    for v = u + 1 to 5 do
      let b =
        Array.map (fun w -> if w = u then v else if w = v then u else w) a
      in
      let expect = full_period inst b in
      let got = State.try_swap st ~u ~v in
      if not (close got expect) then
        Alcotest.failf "try_swap(%d,%d) = %.17g, full recompute %.17g" u v got expect
    done
  done;
  Alcotest.(check (array int)) "allocation untouched" a (State.to_array st);
  State.check st

(* ------------------------------------------------------------------ *)
(* apply / undo                                                        *)
(* ------------------------------------------------------------------ *)

let snapshot st m n =
  ( State.to_array st,
    Array.init n (fun i -> State.x st i),
    Array.init m (fun u -> State.machine_load st u),
    State.period st )

let check_restored st (a, xs, loads, p) =
  Alcotest.(check (array int)) "allocation restored" a (State.to_array st);
  Array.iteri
    (fun i xi ->
      let got = State.x st i in
      if not (got = xi || (Float.is_nan got && Float.is_nan xi)) then
        Alcotest.failf "x(%d) not restored: %.17g vs %.17g" i got xi)
    xs;
  Array.iteri
    (fun u lu ->
      if State.machine_load st u <> lu then
        Alcotest.failf "load(%d) not restored: %.17g vs %.17g" u
          (State.machine_load st u) lu)
    loads;
  Alcotest.(check bool) "period restored" true (State.period st = p)

let test_apply_undo_roundtrip () =
  let inst = tree_instance ~seed:11 ~n:20 ~p:4 ~m:7 () in
  let rng = Rng.create 5 in
  let st = State.of_mapping inst (Mapping.of_array inst (typed_start inst)) in
  let before = snapshot st 7 20 in
  let ops = ref 0 in
  for _ = 1 to 50 do
    if Rng.bool rng then begin
      let i = Rng.int rng 20 and u = Rng.int rng 7 in
      if u <> State.machine_of st i then begin
        State.apply_move st ~task:i ~machine:u;
        incr ops
      end
    end
    else begin
      let u = Rng.int rng 7 and v = Rng.int rng 7 in
      if u <> v then begin
        State.apply_swap st ~u ~v;
        incr ops
      end
    end
  done;
  Alcotest.(check int) "journal depth" !ops (State.undo_depth st);
  State.check st;
  for _ = 1 to !ops do
    State.undo st
  done;
  Alcotest.(check int) "journal empty" 0 (State.undo_depth st);
  check_restored st before;
  State.check st

(* ------------------------------------------------------------------ *)
(* Backward-order assignment (partial states)                          *)
(* ------------------------------------------------------------------ *)

let test_assign_backward_build () =
  let inst = tree_instance ~seed:13 ~n:14 ~p:3 ~m:5 () in
  let rng = Rng.create 17 in
  let st = State.create inst in
  Alcotest.(check bool) "empty period" true (State.period st = 0.0);
  let order = Workflow.backward_order (Instance.workflow inst) in
  Array.iter
    (fun task ->
      let u = Rng.int rng 5 in
      let predicted = State.try_assign st ~task ~machine:u in
      State.assign_task st ~task ~machine:u;
      Alcotest.(check bool)
        (Printf.sprintf "try_assign predicts load (task %d)" task)
        true
        (close (State.machine_load st u) predicted);
      State.check st)
    order;
  Alcotest.(check bool) "complete" true (State.is_complete st);
  let expect = full_period inst (State.to_array st) in
  Alcotest.(check bool) "final period" true (close (State.period st) expect);
  (* Unwind the whole build through the journal. *)
  for _ = 1 to 14 do
    State.undo st
  done;
  Alcotest.(check bool) "empty again" true
    (Array.for_all (fun u -> u < 0) (State.to_array st));
  Alcotest.(check bool) "zero loads" true
    (Array.for_all (fun u -> State.machine_load st u = 0.0) (Array.init 5 Fun.id));
  State.check st

let test_assign_extra_cost () =
  let inst = chain_instance ~n:4 ~p:2 ~m:3 () in
  let st = State.create inst in
  let order = Workflow.backward_order (Instance.workflow inst) in
  let base = State.try_assign st ~task:order.(0) ~machine:1 in
  let with_extra = State.try_assign st ~extra:25.0 ~task:order.(0) ~machine:1 in
  Alcotest.(check (float 1e-9)) "try_assign extra" (base +. 25.0) with_extra;
  State.assign_task st ~extra:25.0 ~task:order.(0) ~machine:1;
  Alcotest.(check bool) "load includes extra" true
    (close (State.machine_load st 1) with_extra);
  State.check st;
  State.undo st;
  Alcotest.(check bool) "extra undone" true (State.machine_load st 1 = 0.0);
  State.check st

let test_errors () =
  let inst = chain_instance ~n:4 ~p:2 ~m:3 () in
  let st = State.create inst in
  Alcotest.check_raises "task range" (Invalid_argument "State: task out of range")
    (fun () -> ignore (State.machine_of st 4));
  Alcotest.check_raises "machine range" (Invalid_argument "State: machine out of range")
    (fun () -> ignore (State.machine_load st 3));
  Alcotest.check_raises "successor unassigned"
    (Invalid_argument "State: successor not yet assigned") (fun () ->
      ignore (State.x_candidate st ~task:0 ~machine:0));
  Alcotest.check_raises "move unassigned" (Invalid_argument "State: task not assigned")
    (fun () -> ignore (State.try_move st ~task:0 ~machine:0));
  Alcotest.check_raises "empty undo" (Invalid_argument "State.undo: empty journal")
    (fun () -> State.undo st);
  Alcotest.check_raises "incomplete mapping"
    (Invalid_argument "State.mapping: incomplete assignment") (fun () ->
      ignore (State.mapping st));
  let order = Workflow.backward_order (Instance.workflow inst) in
  State.assign_task st ~task:order.(0) ~machine:0;
  Alcotest.check_raises "double assign"
    (Invalid_argument "State.assign_task: task already assigned") (fun () ->
      State.assign_task st ~task:order.(0) ~machine:1)

(* ------------------------------------------------------------------ *)
(* Properties: random move sequences on random in-forests              *)
(* ------------------------------------------------------------------ *)

let arb_setup =
  QCheck.make
    ~print:(fun (seed, tree, n, p, m) ->
      Printf.sprintf "seed=%d tree=%b n=%d p=%d m=%d" seed tree n p m)
    QCheck.Gen.(
      let* seed = int_range 0 100000 in
      let* tree = bool in
      let* n = int_range 2 25 in
      let* p = int_range 1 (min n 5) in
      let* m = int_range (max 2 p) 10 in
      return (seed, tree, n, p, m))

let make (seed, tree, n, p, m) =
  if tree then tree_instance ~seed ~n ~p ~m () else chain_instance ~seed ~n ~p ~m ()

(* Each case runs one random move/swap sequence, cross-checking the
   incremental period against a full recomputation at every step and
   against the exact rational period at the end.  With ~count 1000 this is
   the headline "1000 random move sequences" acceptance check. *)
let prop_sequence_matches_full =
  QCheck.Test.make ~name:"eval: move sequences match Period.period and period_exact"
    ~count:1000 arb_setup (fun ((seed, _, n, _, m) as setup) ->
      let inst = make setup in
      let rng = Rng.create (seed + 1) in
      let a = random_start rng inst in
      let st = State.of_mapping inst (Mapping.of_array inst a) in
      let ok = ref (State.period st = full_period inst a) in
      for _ = 1 to 12 do
        if !ok then begin
          if Rng.bool rng then begin
            let i = Rng.int rng n and u = Rng.int rng m in
            if u <> a.(i) then begin
              let b = Array.copy a in
              b.(i) <- u;
              let expect = full_period inst b in
              if not (close (State.try_move st ~task:i ~machine:u) expect) then
                ok := false
              else begin
                State.apply_move st ~task:i ~machine:u;
                a.(i) <- u
              end
            end
          end
          else begin
            let u = Rng.int rng m and v = Rng.int rng m in
            if u <> v then begin
              let b =
                Array.map (fun w -> if w = u then v else if w = v then u else w) a
              in
              let expect = full_period inst b in
              if not (close (State.try_swap st ~u ~v) expect) then ok := false
              else begin
                State.apply_swap st ~u ~v;
                Array.blit b 0 a 0 n
              end
            end
          end;
          if !ok then ok := close (State.period st) (full_period inst a)
        end
      done;
      if !ok then begin
        State.check st;
        let exact = Rat.to_float (Period.period_exact inst (Mapping.of_array inst a)) in
        ok := close ~tol:1e-6 (State.period st) exact
      end;
      !ok)

(* Undoing a whole random sequence restores the state bit-for-bit - the
   journal snapshots exact Kahan accumulators, not recomputed values. *)
let prop_undo_bit_exact =
  QCheck.Test.make ~name:"eval: undo restores loads and period bit-for-bit" ~count:300
    arb_setup (fun ((seed, _, n, _, m) as setup) ->
      let inst = make setup in
      let rng = Rng.create (seed + 2) in
      let a = random_start rng inst in
      let st = State.of_mapping inst (Mapping.of_array inst a) in
      let loads0 = Array.init m (fun u -> State.machine_load st u) in
      let p0 = State.period st in
      for _ = 1 to 15 do
        if Rng.bool rng then begin
          let i = Rng.int rng n and u = Rng.int rng m in
          if u <> State.machine_of st i then State.apply_move st ~task:i ~machine:u
        end
        else begin
          let u = Rng.int rng m and v = Rng.int rng m in
          if u <> v then State.apply_swap st ~u ~v
        end
      done;
      while State.undo_depth st > 0 do
        State.undo st
      done;
      State.to_array st = a
      && Array.for_all Fun.id
           (Array.init m (fun u -> State.machine_load st u = loads0.(u)))
      && State.period st = p0)

let () =
  Alcotest.run "mf_eval"
    [
      ( "state",
        [
          Alcotest.test_case "of_mapping bit-identical" `Quick test_of_mapping_bit_identical;
          Alcotest.test_case "read access" `Quick test_read_access;
          Alcotest.test_case "move_allowed" `Quick test_move_allowed_matches_scan;
          Alcotest.test_case "errors" `Quick test_errors;
        ] );
      ( "moves",
        [
          Alcotest.test_case "try_move vs full" `Quick test_try_move_matches_full;
          Alcotest.test_case "try_swap vs full" `Quick test_try_swap_matches_full;
          Alcotest.test_case "apply/undo roundtrip" `Quick test_apply_undo_roundtrip;
        ] );
      ( "assign",
        [
          Alcotest.test_case "backward build" `Quick test_assign_backward_build;
          Alcotest.test_case "extra cost" `Quick test_assign_extra_cost;
        ] );
      ( "props",
        List.map QCheck_alcotest.to_alcotest
          [ prop_sequence_matches_full; prop_undo_bit_exact ] );
    ]
