(* Daemon tests: the wire protocol over socketpairs against a live
   scheduler.  The acceptance contract under test: every request line
   gets exactly one typed response; an [OK] line is byte-identical to
   the rendering of the in-process portfolio solve of the same request
   (modulo the [cached] flag when the shared cache answers); malformed
   input produces structured errors with the daemon staying up; CANCEL
   tears a running solve down promptly. *)

module Solver = Mf_solve.Solver
module Portfolio = Mf_solve.Portfolio
module Protocol = Mf_daemon.Protocol
module Server = Mf_daemon.Server
module Instance_io = Mf_core.Instance_io
module Gen = Mf_workload.Gen
module Rng = Mf_prng.Rng

let chain ~tasks ~types ~machines seed =
  Gen.chain (Rng.create seed) (Gen.default ~tasks ~types ~machines)

(* A big search at a budget that takes tens of seconds uncancelled:
   the mid-solve target (a broken cancel path fails loudly but
   boundedly). *)
let slow_request () =
  let inst = chain ~tasks:22 ~types:4 ~machines:10 7 in
  Solver.request_exn ~budget:(Solver.Nodes 2_000_000) inst

let with_server config f =
  let srv = Server.create ~config () in
  let devnull = open_out "/dev/null" in
  Fun.protect
    ~finally:(fun () ->
      Server.shutdown srv devnull;
      close_out devnull)
    (fun () -> f srv)

let small_config = { Server.jobs = 1; cache_capacity = 16; workers = 2 }

(* One wire connection: the server's reader runs on its own thread over
   a socketpair, exactly as [serve_unix] would run it per accept. *)
let connect srv =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let server_thread =
    Thread.create
      (fun () ->
        let ic = Unix.in_channel_of_descr a in
        let oc = Unix.out_channel_of_descr a in
        (try Server.serve_client srv ic oc with Sys_error _ | End_of_file -> ());
        try Unix.close a with Unix.Unix_error _ -> ())
      ()
  in
  let ic = Unix.in_channel_of_descr b in
  let oc = Unix.out_channel_of_descr b in
  let close () =
    (try Unix.close b with Unix.Unix_error _ -> ());
    Thread.join server_thread
  in
  (ic, oc, close)

let send oc s =
  output_string oc s;
  flush oc

let check_prefix msg prefix line =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %S starts with %S" msg line prefix)
    true
    (String.starts_with ~prefix line)

let contains line needle =
  let n = String.length needle and l = String.length line in
  let rec go i = i + n <= l && (String.sub line i n = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* concurrent clients: byte-identity with in-process solves             *)
(* ------------------------------------------------------------------ *)

(* Eight concurrent clients with mixed budgets, each on its own
   connection and distinct instance: exactly one [OK] line each,
   byte-identical to the in-process portfolio rendering. *)
let test_concurrent_byte_identity () =
  let n_clients = 8 in
  let budgets =
    [| Solver.Deadline_ms 5.0; Solver.Nodes 20_000; Solver.Unlimited |]
  in
  let id i = Printf.sprintf "c%d" i in
  let reqs =
    Array.init n_clients (fun i ->
        let inst = chain ~tasks:8 ~types:3 ~machines:4 (50 + i) in
        Solver.request_exn ~budget:budgets.(i mod Array.length budgets) inst)
  in
  let expected =
    Array.mapi (fun i req -> Protocol.render_outcome ~id:(id i) (Portfolio.solve req)) reqs
  in
  with_server
    { Server.jobs = 1; cache_capacity = 64; workers = 4 }
    (fun srv ->
      let got = Array.make n_clients "" in
      let clients =
        Array.init n_clients
          (Thread.create (fun i ->
               let ic, oc, close = connect srv in
               send oc (Protocol.render_solve ~id:(id i) reqs.(i));
               got.(i) <- input_line ic;
               close ()))
      in
      Array.iter Thread.join clients;
      Array.iteri
        (fun i line ->
          Alcotest.(check string)
            (Printf.sprintf "client %d response" i)
            (Protocol.mask_cached expected.(i))
            (Protocol.mask_cached line))
        got)

(* ------------------------------------------------------------------ *)
(* structured errors, framing survival                                  *)
(* ------------------------------------------------------------------ *)

let test_structured_errors () =
  with_server small_config (fun srv ->
      let ic, oc, close = connect srv in
      let inst = chain ~tasks:6 ~types:3 ~machines:3 9 in
      let framed = Instance_io.to_framed_string inst in
      send oc "FROBNICATE 1\n";
      check_prefix "unknown verb" "ERR - bad-verb" (input_line ic);
      (* bad header value: the instance block must still be consumed *)
      send oc ("SOLVE h1 budget=Q5\n" ^ framed);
      check_prefix "bad budget syntax" "ERR h1 bad-header" (input_line ic);
      (* empty header value: once indexed past the end of the string and
         killed the connection instead of answering *)
      send oc ("SOLVE h1e budget=\n" ^ framed);
      check_prefix "empty budget value" "ERR h1e bad-header" (input_line ic);
      send oc "SOLVE h2\nthis is not an instance\nend\n";
      check_prefix "broken instance" "ERR h2 bad-instance" (input_line ic);
      (* over-range deadline: parses, rejected by make_request *)
      send oc ("SOLVE h3 budget=D-5\n" ^ framed);
      check_prefix "negative deadline" "ERR h3 bad-request" (input_line ic);
      send oc ("SOLVE h4 budget=Dnan\n" ^ framed);
      check_prefix "NaN deadline" "ERR h4 bad-request" (input_line ic);
      send oc "CANCEL nobody\n";
      check_prefix "unknown id" "ERR nobody unknown-id" (input_line ic);
      (* after all of that, the daemon is still up and framed *)
      let req = Solver.request_exn ~budget:(Solver.Nodes 10_000) inst in
      send oc (Protocol.render_solve ~id:"h5" req);
      check_prefix "daemon still serves" "OK h5 " (input_line ic);
      close ())

(* ------------------------------------------------------------------ *)
(* cancellation                                                         *)
(* ------------------------------------------------------------------ *)

let test_cancel_midsolve () =
  with_server small_config (fun srv ->
      let ic, oc, close = connect srv in
      send oc (Protocol.render_solve ~id:"slow" (slow_request ()));
      Thread.delay 0.3 (* let a worker go deep into the search *);
      let t0 = Unix.gettimeofday () in
      send oc "CANCEL slow\n";
      let l1 = input_line ic in
      let l2 = input_line ic in
      let elapsed = Unix.gettimeofday () -. t0 in
      Alcotest.(check (list string))
        "cancel handshake"
        [ "CANCELLED slow"; "CANCELOK slow" ]
        (List.sort compare [ l1; l2 ]);
      Alcotest.(check bool)
        (Printf.sprintf "prompt teardown (%.3fs)" elapsed)
        true (elapsed < 5.0);
      close ())

(* With one worker, a queued job cancelled before admission is answered
   CANCELLED without ever solving. *)
let test_cancel_queued () =
  with_server
    { small_config with Server.workers = 1 }
    (fun srv ->
      let ic, oc, close = connect srv in
      send oc (Protocol.render_solve ~id:"a" (slow_request ()));
      Thread.delay 0.2 (* the only worker is now busy on [a] *);
      let quick =
        Solver.request_exn ~budget:(Solver.Nodes 5_000) (chain ~tasks:6 ~types:3 ~machines:3 9)
      in
      send oc (Protocol.render_solve ~id:"b" quick);
      send oc "CANCEL b\n";
      send oc "CANCEL a\n";
      let lines = List.init 4 (fun _ -> input_line ic) in
      Alcotest.(check (list string))
        "both cancelled"
        [ "CANCELLED a"; "CANCELLED b"; "CANCELOK a"; "CANCELOK b" ]
        (List.sort compare lines);
      close ())

let test_duplicate_id () =
  with_server
    { small_config with Server.workers = 1 }
    (fun srv ->
      let ic, oc, close = connect srv in
      send oc (Protocol.render_solve ~id:"d" (slow_request ()));
      Thread.delay 0.2;
      let quick =
        Solver.request_exn ~budget:(Solver.Nodes 5_000) (chain ~tasks:6 ~types:3 ~machines:3 9)
      in
      send oc (Protocol.render_solve ~id:"d" quick);
      check_prefix "duplicate active id" "ERR d duplicate-id" (input_line ic);
      send oc "CANCEL d\n";
      let lines = List.init 2 (fun _ -> input_line ic) in
      Alcotest.(check (list string))
        "original request torn down"
        [ "CANCELLED d"; "CANCELOK d" ]
        (List.sort compare lines);
      close ())

(* ------------------------------------------------------------------ *)
(* shared cache + STATS                                                 *)
(* ------------------------------------------------------------------ *)

let test_stats_cache () =
  with_server small_config (fun srv ->
      let ic, oc, close = connect srv in
      let inst = chain ~tasks:8 ~types:3 ~machines:4 21 in
      let req = Solver.request_exn ~budget:(Solver.Nodes 20_000) inst in
      send oc (Protocol.render_solve ~id:"s1" req);
      let r1 = input_line ic in
      check_prefix "first solve" "OK s1 " r1;
      Alcotest.(check bool) "first solve not cached" true (contains r1 " cached=0 ");
      send oc (Protocol.render_solve ~id:"s2" req);
      let r2 = input_line ic in
      Alcotest.(check bool) "second solve cache hit" true (contains r2 " cached=1 ");
      (* the cache hit is bit-identical to a fresh in-process solve
         modulo the cached flag *)
      Alcotest.(check string)
        "cache hit byte-identical modulo cached flag"
        (Protocol.render_outcome ~id:"s2" (Portfolio.solve req))
        (Protocol.mask_cached r2);
      send oc "STATS\n";
      let stats = input_line ic in
      check_prefix "stats verb" "STATS " stats;
      Alcotest.(check bool) ("one hit: " ^ stats) true (contains stats " hits=1 ");
      Alcotest.(check bool) ("one miss: " ^ stats) true (contains stats " misses=1 ");
      close ())

let test_stats_evictions () =
  with_server
    { small_config with Server.cache_capacity = 1 }
    (fun srv ->
      let ic, oc, close = connect srv in
      List.iteri
        (fun i seed ->
          let inst = chain ~tasks:6 ~types:3 ~machines:3 seed in
          let req = Solver.request_exn ~budget:(Solver.Nodes 5_000) inst in
          send oc (Protocol.render_solve ~id:(Printf.sprintf "e%d" i) req);
          check_prefix "solve" "OK " (input_line ic))
        [ 31; 32 ];
      send oc "STATS\n";
      let stats = input_line ic in
      Alcotest.(check bool)
        ("eviction reported: " ^ stats)
        true
        (contains stats " evictions=1 ");
      close ())

(* ------------------------------------------------------------------ *)
(* lifecycle: QUIT drains in-flight work first                          *)
(* ------------------------------------------------------------------ *)

let test_quit_drains () =
  with_server small_config (fun srv ->
      let ic, oc, close = connect srv in
      let mk seed =
        Solver.request_exn ~budget:(Solver.Nodes 10_000)
          (chain ~tasks:7 ~types:3 ~machines:3 seed)
      in
      send oc (Protocol.render_solve ~id:"q1" (mk 41));
      send oc (Protocol.render_solve ~id:"q2" (mk 42));
      send oc "QUIT\n";
      let lines = List.init 3 (fun _ -> input_line ic) in
      let oks = List.filter (fun l -> String.starts_with ~prefix:"OK q" l) lines in
      Alcotest.(check int) "both solves answered" 2 (List.length oks);
      Alcotest.(check string) "BYE is last" "BYE" (List.nth lines 2);
      close ())

let () =
  Alcotest.run "daemon"
    [
      ( "wire",
        [
          Alcotest.test_case "8 concurrent clients, byte-identity" `Quick
            test_concurrent_byte_identity;
          Alcotest.test_case "structured errors keep the daemon up" `Quick
            test_structured_errors;
          Alcotest.test_case "QUIT drains in-flight solves" `Quick test_quit_drains;
        ] );
      ( "cancel",
        [
          Alcotest.test_case "mid-solve teardown" `Quick test_cancel_midsolve;
          Alcotest.test_case "queued request" `Quick test_cancel_queued;
          Alcotest.test_case "duplicate active id" `Quick test_duplicate_id;
        ] );
      ( "stats",
        [
          Alcotest.test_case "cache hit/miss over the wire" `Quick test_stats_cache;
          Alcotest.test_case "evictions reported" `Quick test_stats_evictions;
        ] );
    ]
