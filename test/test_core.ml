(* Tests for mf_core: Workflow, Instance, Mapping, Products, Period. *)

module Workflow = Mf_core.Workflow
module Instance = Mf_core.Instance
module Mapping = Mf_core.Mapping
module Products = Mf_core.Products
module Period = Mf_core.Period
module Rat = Mf_numeric.Rat

(* ------------------------------------------------------------------ *)
(* Workflow                                                            *)
(* ------------------------------------------------------------------ *)

let test_workflow_chain () =
  let wf = Workflow.chain ~types:[| 0; 1; 0; 1; 0 |] in
  Alcotest.(check int) "tasks" 5 (Workflow.task_count wf);
  Alcotest.(check int) "types" 2 (Workflow.type_count wf);
  Alcotest.(check int) "type of T2" 0 (Workflow.ttype wf 2);
  Alcotest.(check (option int)) "succ of T0" (Some 1) (Workflow.successor wf 0);
  Alcotest.(check (option int)) "succ of last" None (Workflow.successor wf 4);
  Alcotest.(check (list int)) "pred of T1" [ 0 ] (Workflow.predecessors wf 1);
  Alcotest.(check (list int)) "sinks" [ 4 ] (Workflow.sinks wf);
  Alcotest.(check (list int)) "sources" [ 0 ] (Workflow.sources wf);
  Alcotest.(check bool) "is_chain" true (Workflow.is_chain wf);
  Alcotest.(check (array int)) "backward order" [| 4; 3; 2; 1; 0 |] (Workflow.backward_order wf);
  Alcotest.(check (list int)) "tasks of type 0" [ 0; 2; 4 ] (Workflow.tasks_of_type wf 0)

let test_workflow_join () =
  (* The paper's Figure 1: T0 -> T1 -> T3 <- T2, T3 -> T4 (0-indexed). *)
  let wf =
    Workflow.in_forest
      ~types:[| 0; 1; 2; 3; 4 |]
      ~successor:[| Some 1; Some 3; Some 3; Some 4; None |]
  in
  Alcotest.(check (list int)) "join preds" [ 1; 2 ] (Workflow.predecessors wf 3);
  Alcotest.(check (list int)) "sources" [ 0; 2 ] (Workflow.sources wf);
  Alcotest.(check (list int)) "sinks" [ 4 ] (Workflow.sinks wf);
  Alcotest.(check bool) "not a chain" false (Workflow.is_chain wf);
  (* Backward order: every task after its successor. *)
  let order = Workflow.backward_order wf in
  let pos = Array.make 5 0 in
  Array.iteri (fun k i -> pos.(i) <- k) order;
  for i = 0 to 4 do
    match Workflow.successor wf i with
    | None -> ()
    | Some j ->
      Alcotest.(check bool) (Printf.sprintf "T%d after T%d" i j) true (pos.(i) > pos.(j))
  done

let test_workflow_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Workflow: empty task set") (fun () ->
      ignore (Workflow.chain ~types:[||]));
  Alcotest.check_raises "non-contiguous types"
    (Invalid_argument "Workflow: task types must form a contiguous range 0..p-1") (fun () ->
      ignore (Workflow.chain ~types:[| 0; 2 |]));
  Alcotest.check_raises "cycle" (Invalid_argument "Workflow: successor relation has a cycle")
    (fun () ->
      ignore (Workflow.in_forest ~types:[| 0; 0 |] ~successor:[| Some 1; Some 0 |]));
  Alcotest.check_raises "self-loop" (Invalid_argument "Workflow: successor relation has a cycle")
    (fun () -> ignore (Workflow.in_forest ~types:[| 0 |] ~successor:[| Some 0 |]))

let test_workflow_digraph () =
  let wf = Workflow.chain ~types:[| 0; 0; 0 |] in
  let g = Workflow.to_digraph wf in
  Alcotest.(check int) "edges" 2 (Mf_graph.Digraph.edge_count g);
  Alcotest.(check bool) "dag" true (Mf_graph.Digraph.is_dag g)

(* ------------------------------------------------------------------ *)
(* Instance                                                            *)
(* ------------------------------------------------------------------ *)

(* A small 2-task, 2-machine instance with easy numbers. *)
let small_instance () =
  let wf = Workflow.chain ~types:[| 0; 1 |] in
  Instance.create ~workflow:wf ~machines:2
    ~w:[| [| 100.0; 200.0 |]; [| 300.0; 400.0 |] |]
    ~f:[| [| 0.5; 0.25 |]; [| 0.5; 0.2 |] |]

let test_instance_accessors () =
  let inst = small_instance () in
  Alcotest.(check int) "m" 2 (Instance.machines inst);
  Alcotest.(check int) "n" 2 (Instance.task_count inst);
  Alcotest.(check int) "p" 2 (Instance.type_count inst);
  Alcotest.(check (float 0.0)) "w" 200.0 (Instance.w inst 0 1);
  Alcotest.(check (float 0.0)) "f" 0.2 (Instance.f inst 1 1);
  Alcotest.(check (float 0.0)) "w_of_type" 300.0 (Instance.w_of_type inst 1 0)

let test_instance_validation () =
  let wf = Workflow.chain ~types:[| 0; 1 |] in
  Alcotest.check_raises "f out of range"
    (Invalid_argument "Instance: failure probabilities must lie in [0, 1)") (fun () ->
      ignore
        (Instance.create ~workflow:wf ~machines:1 ~w:[| [| 1.0 |]; [| 1.0 |] |]
           ~f:[| [| 1.0 |]; [| 0.0 |] |]));
  Alcotest.check_raises "w non-positive"
    (Invalid_argument "Instance: processing times must be positive and finite") (fun () ->
      ignore
        (Instance.create ~workflow:wf ~machines:1 ~w:[| [| 0.0 |]; [| 1.0 |] |]
           ~f:[| [| 0.1 |]; [| 0.1 |] |]));
  (* Two tasks of the same type with different times must be rejected. *)
  let wf2 = Workflow.chain ~types:[| 0; 0 |] in
  Alcotest.check_raises "type consistency"
    (Invalid_argument "Instance: tasks of the same type must share processing times")
    (fun () ->
      ignore
        (Instance.create ~workflow:wf2 ~machines:1 ~w:[| [| 1.0 |]; [| 2.0 |] |]
           ~f:[| [| 0.1 |]; [| 0.1 |] |]))

let test_instance_max_x () =
  let inst = small_instance () in
  (* Worst f per task: T0 -> 0.5, T1 -> 0.5. MAXx_1 = 2, MAXx_0 = 4. *)
  let mx = Instance.max_x inst in
  Alcotest.(check (float 1e-9)) "MAXx_1" 2.0 mx.(1);
  Alcotest.(check (float 1e-9)) "MAXx_0" 4.0 mx.(0)

let test_instance_period_upper_bound () =
  let inst = small_instance () in
  (* Machine 0: 4*100 + 2*300 = 1000; machine 1: 4*200 + 2*400 = 1600. *)
  Alcotest.(check (float 1e-9)) "UB" 1600.0 (Instance.period_upper_bound inst)

let test_instance_predicates () =
  let inst = small_instance () in
  Alcotest.(check bool) "heterogeneous" false (Instance.is_homogeneous inst);
  Alcotest.(check bool) "machine-dependent f" false (Instance.failures_task_attached inst);
  let wf = Workflow.chain ~types:[| 0; 1 |] in
  let homo =
    Instance.create ~workflow:wf ~machines:2
      ~w:[| [| 5.0; 5.0 |]; [| 5.0; 5.0 |] |]
      ~f:[| [| 0.1; 0.1 |]; [| 0.2; 0.2 |] |]
  in
  Alcotest.(check bool) "homogeneous" true (Instance.is_homogeneous homo);
  Alcotest.(check bool) "task-attached f" true (Instance.failures_task_attached homo)

let test_instance_heterogeneity () =
  let inst = small_instance () in
  (* Machine 0 times: 100, 300 -> population sd = 100. *)
  Alcotest.(check (float 1e-9)) "h(M0)" 100.0 (Instance.heterogeneity inst 0);
  Alcotest.(check (float 1e-9)) "h(M1)" 100.0 (Instance.heterogeneity inst 1)

(* ------------------------------------------------------------------ *)
(* Mapping                                                             *)
(* ------------------------------------------------------------------ *)

let test_mapping_rules () =
  let wf = Workflow.chain ~types:[| 0; 1; 0 |] in
  let inst =
    Instance.create ~workflow:wf ~machines:3
      ~w:[| [| 1.0; 1.0; 1.0 |]; [| 1.0; 1.0; 1.0 |]; [| 1.0; 1.0; 1.0 |] |]
      ~f:(Array.make_matrix 3 3 0.1)
  in
  let mp_oto = Mapping.of_array inst [| 0; 1; 2 |] in
  Alcotest.(check bool) "oto ok" true (Mapping.satisfies inst mp_oto Mapping.One_to_one);
  Alcotest.(check bool) "oto is specialized" true
    (Mapping.satisfies inst mp_oto Mapping.Specialized);
  let mp_spec = Mapping.of_array inst [| 0; 1; 0 |] in
  Alcotest.(check bool) "spec ok" true (Mapping.satisfies inst mp_spec Mapping.Specialized);
  Alcotest.(check bool) "spec not oto" false
    (Mapping.satisfies inst mp_spec Mapping.One_to_one);
  let mp_gen = Mapping.of_array inst [| 0; 0; 0 |] in
  Alcotest.(check bool) "gen only" false (Mapping.satisfies inst mp_gen Mapping.Specialized);
  Alcotest.(check bool) "gen ok" true (Mapping.satisfies inst mp_gen Mapping.General);
  Alcotest.(check int) "used machines" 2 (Mapping.used_machines mp_spec);
  Alcotest.(check (list int)) "tasks_on M0" [ 0; 2 ] (Mapping.tasks_on mp_spec ~u:0);
  Alcotest.(check (option int)) "machine_type" (Some 0)
    (Mapping.machine_type inst mp_spec ~u:0);
  Alcotest.(check (option int)) "idle machine type" None
    (Mapping.machine_type inst mp_spec ~u:2)

let test_mapping_validation () =
  let inst = small_instance () in
  Alcotest.check_raises "machine range" (Invalid_argument "Mapping: machine out of range")
    (fun () -> ignore (Mapping.of_array inst [| 0; 5 |]));
  Alcotest.check_raises "length" (Invalid_argument "Mapping: allocation length mismatch")
    (fun () -> ignore (Mapping.of_array inst [| 0 |]))

(* ------------------------------------------------------------------ *)
(* Products and Period                                                 *)
(* ------------------------------------------------------------------ *)

let test_products_chain () =
  let inst = small_instance () in
  (* Allocation: T0 -> M0 (f=0.5), T1 -> M1 (f=0.2).
     x_1 = 1/(1-0.2) = 1.25; x_0 = x_1 / (1-0.5) = 2.5. *)
  let mp = Mapping.of_array inst [| 0; 1 |] in
  let x = Products.x inst mp in
  Alcotest.(check (float 1e-12)) "x1" 1.25 x.(1);
  Alcotest.(check (float 1e-12)) "x0" 2.5 x.(0)

let test_products_exact_agree () =
  let inst = small_instance () in
  let mp = Mapping.of_array inst [| 0; 1 |] in
  let x = Products.x inst mp in
  let xe = Products.x_exact inst mp in
  Array.iteri
    (fun i xi ->
      Alcotest.(check (float 1e-12)) (Printf.sprintf "x%d" i) xi (Rat.to_float xe.(i)))
    x

let test_products_join () =
  (* Join: T0 and T1 both feed T2 (types all distinct). *)
  let wf =
    Workflow.in_forest ~types:[| 0; 1; 2 |] ~successor:[| Some 2; Some 2; None |]
  in
  let inst =
    Instance.create ~workflow:wf ~machines:3
      ~w:(Array.make_matrix 3 3 10.0)
      ~f:
        [|
          [| 0.5; 0.5; 0.5 |];
          [| 0.2; 0.2; 0.2 |];
          [| 0.0; 0.0; 0.0 |];
        |]
  in
  let mp = Mapping.of_array inst [| 0; 1; 2 |] in
  let x = Products.x inst mp in
  Alcotest.(check (float 1e-12)) "sink x" 1.0 x.(2);
  Alcotest.(check (float 1e-12)) "branch 0" 2.0 x.(0);
  Alcotest.(check (float 1e-12)) "branch 1" 1.25 x.(1)

let test_inputs_needed () =
  let inst = small_instance () in
  let mp = Mapping.of_array inst [| 0; 1 |] in
  (* x_0 = 2.5: for 10 outputs we need ceil(25) = 25 raw products. *)
  Alcotest.(check (list (pair int int))) "inputs" [ (0, 25) ]
    (Products.inputs_needed inst mp ~x_out:10)

let test_period_chain () =
  let inst = small_instance () in
  let mp = Mapping.of_array inst [| 0; 1 |] in
  (* period(M0) = x0 * w(0,0) = 2.5*100 = 250;
     period(M1) = x1 * w(1,1) = 1.25*400 = 500. *)
  let periods = Period.machine_periods inst mp in
  Alcotest.(check (float 1e-9)) "M0" 250.0 periods.(0);
  Alcotest.(check (float 1e-9)) "M1" 500.0 periods.(1);
  Alcotest.(check (float 1e-9)) "system" 500.0 (Period.period inst mp);
  Alcotest.(check (float 1e-12)) "throughput" (1.0 /. 500.0) (Period.throughput inst mp);
  Alcotest.(check (list int)) "critical" [ 1 ] (Period.critical_machines inst mp)

let test_period_shared_machine () =
  (* Both tasks of type 0 on one machine: loads add up. *)
  let wf = Workflow.chain ~types:[| 0; 0 |] in
  let inst =
    Instance.create ~workflow:wf ~machines:2
      ~w:[| [| 100.0; 50.0 |]; [| 100.0; 50.0 |] |]
      ~f:(Array.make_matrix 2 2 0.5)
  in
  let mp = Mapping.of_array inst [| 0; 0 |] in
  (* x1 = 2, x0 = 4 -> period(M0) = 4*100 + 2*100 = 600. *)
  Alcotest.(check (float 1e-9)) "sum of contributions" 600.0 (Period.period inst mp)

let test_period_exact_agrees () =
  let inst = small_instance () in
  List.iter
    (fun alloc ->
      let mp = Mapping.of_array inst alloc in
      Alcotest.(check (float 1e-9))
        "float vs exact period"
        (Period.period inst mp)
        (Rat.to_float (Period.period_exact inst mp)))
    [ [| 0; 1 |]; [| 1; 0 |]; [| 0; 0 |]; [| 1; 1 |] ]

let test_period_with_setup () =
  let wf = Workflow.chain ~types:[| 0; 1; 0 |] in
  let inst =
    Instance.create ~workflow:wf ~machines:2
      ~w:(Array.make_matrix 3 2 100.0)
      ~f:(Array.make_matrix 3 2 0.0)
  in
  (* General mapping with two types on M0: in the cyclic steady state the
     machine switches type0 -> type1 -> type0 every period, two switches. *)
  let mixed = Mapping.of_array inst [| 0; 0; 1 |] in
  let base = Period.period inst mixed in
  Alcotest.(check (float 1e-9)) "setup 0 is plain period" base
    (Period.with_setup inst mixed ~setup:0.0);
  Alcotest.(check (float 1e-9)) "two types cycle: two switches" (base +. 100.0)
    (Period.with_setup inst mixed ~setup:50.0);
  (* Three types on one machine: three switches per period. *)
  let wf3 = Workflow.chain ~types:[| 0; 1; 2 |] in
  let inst3 =
    Instance.create ~workflow:wf3 ~machines:1
      ~w:(Array.make_matrix 3 1 100.0)
      ~f:(Array.make_matrix 3 1 0.0)
  in
  let all_on_0 = Mapping.of_array inst3 [| 0; 0; 0 |] in
  Alcotest.(check (float 1e-9)) "three types: three switches"
    (Period.period inst3 all_on_0 +. 150.0)
    (Period.with_setup inst3 all_on_0 ~setup:50.0);
  (* Specialized mapping: no penalty whatever the setup. *)
  let spec = Mapping.of_array inst [| 0; 1; 0 |] in
  Alcotest.(check (float 1e-9)) "specialized unaffected"
    (Period.period inst spec)
    (Period.with_setup inst spec ~setup:1000.0);
  Alcotest.check_raises "negative setup"
    (Invalid_argument "Period.with_setup: negative setup time") (fun () ->
      ignore (Period.with_setup inst spec ~setup:(-1.0)))

(* ------------------------------------------------------------------ *)
(* Instance_io                                                         *)
(* ------------------------------------------------------------------ *)

module Instance_io = Mf_core.Instance_io

let same_instance a b =
  let n = Instance.task_count a and m = Instance.machines a in
  n = Instance.task_count b
  && m = Instance.machines b
  && List.for_all
       (fun i ->
         Workflow.ttype (Instance.workflow a) i = Workflow.ttype (Instance.workflow b) i
         && Workflow.successor (Instance.workflow a) i = Workflow.successor (Instance.workflow b) i
         && List.for_all
              (fun u ->
                Float.equal (Instance.w a i u) (Instance.w b i u)
                && Float.equal (Instance.f a i u) (Instance.f b i u))
              (List.init m Fun.id))
       (List.init n Fun.id)

let test_io_roundtrip_chain () =
  let inst = small_instance () in
  let loaded = Instance_io.of_string (Instance_io.to_string inst) in
  Alcotest.(check bool) "exact roundtrip" true (same_instance inst loaded)

let test_io_roundtrip_tree () =
  let inst =
    Mf_workload.Gen.in_tree (Mf_prng.Rng.create 9)
      (Mf_workload.Gen.default ~tasks:12 ~types:4 ~machines:5)
  in
  let loaded = Instance_io.of_string (Instance_io.to_string inst) in
  Alcotest.(check bool) "tree roundtrip" true (same_instance inst loaded)

let test_io_file_roundtrip () =
  let inst = small_instance () in
  let path = Filename.temp_file "mf_test" ".inst" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Instance_io.write_file path inst;
      let loaded = Instance_io.read_file path in
      Alcotest.(check bool) "file roundtrip" true (same_instance inst loaded))

let test_io_rejects_garbage () =
  List.iter
    (fun text ->
      match Instance_io.of_string text with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail ("accepted malformed input: " ^ text))
    [
      "";
      "nonsense";
      "tasks 2 machines 1\ntypes 0\nsuccessors -1";
      "tasks 1 machines 1\ntypes 0\nsuccessors -1\nw 0 1.0";
      "tasks 1 machines 1\ntypes 0\nsuccessors -1\nw 0 1.0 2.0\nf 0 0.1";
    ]

let test_io_comments_and_blank_lines () =
  let inst = small_instance () in
  let text = "# leading comment\n\n" ^ Instance_io.to_string inst ^ "\n# trailing\n" in
  let loaded = Instance_io.of_string text in
  Alcotest.(check bool) "tolerates comments" true (same_instance inst loaded)

(* parse o print = id over the fuzzer's heterogeneous instance pool
   (mixed dyadic scales, degenerate f = 0 rows, repeated type profiles,
   forests) — shrunk counterexamples print as replayable instance text. *)
let test_io_roundtrip_property () =
  let module P = Mf_proptest in
  let report =
    P.Prop.check ~count:300 ~name:"io-roundtrip" ~seed:1202
      (P.Instances.instance ~max_tasks:10 ~max_machines:5 ~duplicate_machine:true ())
      (fun inst ->
        match Instance_io.of_string_result (Instance_io.to_string inst) with
        | Error e -> Error (Instance_io.describe_error e)
        | Ok loaded ->
          if same_instance inst loaded then Ok ()
          else Error "parse (print inst) differs from inst")
  in
  match report.P.Prop.failure with
  | None -> ()
  | Some f ->
    Alcotest.fail
      (Printf.sprintf "roundtrip failed (seed %d): %s\n%s" f.P.Prop.case_seed
         f.P.Prop.message
         (Instance_io.to_string f.P.Prop.value))

(* ------------------------------------------------------------------ *)
(* Canon: canonical instance form                                      *)
(* ------------------------------------------------------------------ *)

module Canon = Mf_core.Canon

(* Hand-checkable unit case: permuting machines and relabeling types
   leaves the canonical key unchanged, and the inverse permutations
   round-trip allocations. *)
let test_canon_unit () =
  let w = [| [| 4.0; 2.0 |]; [| 1.0; 3.0 |]; [| 4.0; 2.0 |] |] in
  let f = [| [| 0.0; 0.125 |]; [| 0.0625; 0.0 |]; [| 0.0; 0.0 |] |] in
  let workflow =
    Workflow.in_forest ~types:[| 1; 0; 1 |] ~successor:[| Some 2; Some 2; None |]
  in
  let inst = Instance.create ~workflow ~machines:2 ~w ~f in
  let swap row = [| row.(1); row.(0) |] in
  let workflow' =
    (* relabel types by the swap 0 <-> 1 *)
    Workflow.in_forest ~types:[| 0; 1; 0 |] ~successor:[| Some 2; Some 2; None |]
  in
  let inst' =
    Instance.create ~workflow:workflow' ~machines:2 ~w:(Array.map swap w)
      ~f:(Array.map swap f)
  in
  Alcotest.(check string) "keys equal" (Canon.key inst) (Canon.key inst');
  let c = Canon.canonicalize inst in
  Alcotest.(check string) "key field agrees" (Canon.key inst) c.Canon.key;
  (* canonicalization is idempotent: the canonical instance is its own
     canonical form *)
  Alcotest.(check string) "idempotent" c.Canon.key (Canon.key c.Canon.instance);
  (* of_canon / to_canon are mutually inverse *)
  let m = Instance.machines inst in
  for u = 0 to m - 1 do
    Alcotest.(check int) "to(of(c)) = c" u c.Canon.to_canon.(c.Canon.of_canon.(u));
    Alcotest.(check int) "of(to(u)) = u" u c.Canon.of_canon.(c.Canon.to_canon.(u))
  done;
  let alloc = [| 0; 1; 1 |] in
  Alcotest.(check (array int)) "map round-trip" alloc
    (Canon.map_from_canon c (Canon.map_to_canon c alloc))

(* Property: the key is invariant under any machine permutation composed
   with any type relabeling, and a mapping pushed through to_canon
   achieves the same period (bit-for-bit) on the canonical instance. *)
let test_canon_invariance_property () =
  let module P = Mf_proptest in
  let gen =
    let open P.Gen in
    let* inst =
      P.Instances.instance ~max_tasks:8 ~max_machines:5 ~duplicate_machine:true ()
    in
    let* mp = P.Instances.allocation inst in
    let* midx = permutation_indices (Instance.machines inst) in
    let* tidx = permutation_indices (Instance.type_count inst) in
    return (inst, mp, apply_permutation_indices midx, apply_permutation_indices tidx)
  in
  let report =
    P.Prop.check ~count:300 ~name:"canon-invariance" ~seed:1303 gen
      (fun (inst, mp, mperm, tperm) ->
        let n = Instance.task_count inst and m = Instance.machines inst in
        let wf = Instance.workflow inst in
        let permute row =
          let out = Array.make m 0.0 in
          Array.iteri (fun u v -> out.(v) <- row.(u)) mperm;
          out
        in
        let variant =
          Instance.create
            ~workflow:
              (Workflow.in_forest
                 ~types:(Array.init n (fun i -> tperm.(Workflow.ttype wf i)))
                 ~successor:(Array.init n (Workflow.successor wf)))
            ~machines:m
            ~w:(Array.init n (fun i -> permute (Array.init m (Instance.w inst i))))
            ~f:(Array.init n (fun i -> permute (Array.init m (Instance.f inst i))))
        in
        if Canon.key variant <> Canon.key inst then
          Error "canonical key not invariant under machine permutation + type relabeling"
        else
          let c = Canon.canonicalize inst in
          let p = Period.period inst mp in
          let p_canon =
            Period.period c.Canon.instance
              (Mapping.of_array c.Canon.instance
                 (Canon.map_to_canon c (Mapping.to_array mp)))
          in
          if p_canon <> p then
            Error
              (Printf.sprintf "period not preserved into the canonical frame: %h vs %h"
                 p_canon p)
          else Ok ())
  in
  match report.P.Prop.failure with
  | None -> ()
  | Some f ->
    let inst, _, _, _ = f.P.Prop.value in
    Alcotest.fail
      (Printf.sprintf "canon invariance failed (seed %d): %s\n%s" f.P.Prop.case_seed
         f.P.Prop.message (P.Instances.print_instance inst))

(* The canonical machine order groups symmetry classes contiguously:
   Symmetry.machine_classes on the canonical instance always points at a
   contiguous run of bit-identical columns. *)
let test_canon_classes_contiguous () =
  let module P = Mf_proptest in
  let report =
    P.Prop.check ~count:300 ~name:"canon-classes" ~seed:1404
      (P.Instances.instance ~max_tasks:8 ~max_machines:5 ~duplicate_machine:true ())
      (fun inst ->
        let c = Canon.canonicalize inst in
        let classes = Mf_exact.Symmetry.machine_classes c.Canon.instance in
        let m = Instance.machines c.Canon.instance in
        let ok = ref (Ok ()) in
        for u = 1 to m - 1 do
          (* each machine either continues the previous machine's class
             or opens a fresh one rooted at itself *)
          if classes.(u) <> classes.(u - 1) && classes.(u) <> u then
            ok :=
              Error
                (Printf.sprintf "class of canonical machine %d is %d: not contiguous" u
                   classes.(u))
        done;
        !ok)
  in
  match report.P.Prop.failure with
  | None -> ()
  | Some f ->
    Alcotest.fail
      (Printf.sprintf "canon classes failed (seed %d): %s\n%s" f.P.Prop.case_seed
         f.P.Prop.message
         (P.Instances.print_instance f.P.Prop.value))

(* Malformed input comes back as a typed error with a usable line
   number — not as an exception. *)
let test_io_typed_errors () =
  let check_error text want_line =
    match Instance_io.of_string_result text with
    | Ok _ -> Alcotest.fail ("accepted malformed input: " ^ String.escaped text)
    | Error e ->
      Alcotest.(check int)
        (Printf.sprintf "error line for %s (%s)" (String.escaped text)
           (Instance_io.describe_error e))
        want_line e.Instance_io.line;
      Alcotest.(check bool) "message non-empty" true
        (String.length e.Instance_io.message > 0)
  in
  check_error "" 0;
  check_error "nonsense" 1;
  check_error "tasks 2 machines 1\ntypes 0\nsuccessors -1" 2;
  (* Missing or mis-labelled header lines are named, not reported as a
     bad 'tasks ... machines ...' header. *)
  check_error "tasks 2 machines 1" 0;
  check_error "tasks 2 machines 1\ntypes 0 0" 0;
  check_error "tasks 2 machines 1\nsuccessors 1 -1" 2;
  check_error "tasks 1 machines 1\ntypes 0\nsuccessors -1\nw 0 oops\nf 0 0" 4;
  check_error "tasks 1 machines 1\ntypes 0\nsuccessors -1\nw 0 1.0" 0;
  (* Semantic errors caught by the smart constructors, not the parser:
     a successor cycle and an out-of-range failure probability. *)
  check_error "tasks 2 machines 1\ntypes 0 0\nsuccessors 1 0\nw 0 1\nw 1 1\nf 0 0\nf 1 0" 0;
  check_error "tasks 1 machines 1\ntypes 0\nsuccessors -1\nw 0 1\nf 0 1.5" 0

(* ------------------------------------------------------------------ *)
(* Properties on random instances                                      *)
(* ------------------------------------------------------------------ *)

let arb_instance =
  let gen =
    QCheck.Gen.(
      let* seed = int_range 0 1_000_000 in
      let* n = int_range 1 12 in
      let* p = int_range 1 (min n 4) in
      let* m = int_range (max p 2) 6 in
      let rng = Mf_prng.Rng.create seed in
      let params = Mf_workload.Gen.default ~tasks:n ~types:p ~machines:m in
      let* tree = bool in
      return (if tree then Mf_workload.Gen.in_tree rng params else Mf_workload.Gen.chain rng params))
  in
  QCheck.make ~print:(Format.asprintf "%a" Instance.pp) gen

let random_mapping inst seed =
  let rng = Mf_prng.Rng.create seed in
  Mapping.of_array inst
    (Array.init (Instance.task_count inst) (fun _ ->
         Mf_prng.Rng.int rng (Instance.machines inst)))

let prop_x_at_least_one =
  QCheck.Test.make ~name:"core: every x_i >= 1" ~count:200 arb_instance (fun inst ->
      let mp = random_mapping inst 7 in
      Array.for_all (fun x -> x >= 1.0) (Products.x inst mp))

let prop_x_monotone_along_paths =
  QCheck.Test.make ~name:"core: x_i >= x_succ(i)" ~count:200 arb_instance (fun inst ->
      let mp = random_mapping inst 11 in
      let x = Products.x inst mp in
      let wf = Instance.workflow inst in
      List.for_all
        (fun i ->
          match Workflow.successor wf i with None -> true | Some j -> x.(i) >= x.(j))
        (List.init (Instance.task_count inst) Fun.id))

let prop_period_is_max_of_machine_periods =
  QCheck.Test.make ~name:"core: period = max machine period" ~count:200 arb_instance
    (fun inst ->
      let mp = random_mapping inst 13 in
      let periods = Period.machine_periods inst mp in
      Float.equal (Period.period inst mp) (Array.fold_left Float.max 0.0 periods))

let prop_period_below_upper_bound =
  QCheck.Test.make ~name:"core: any mapping period <= period_upper_bound" ~count:200
    arb_instance (fun inst ->
      let mp = random_mapping inst 17 in
      Period.period inst mp <= Instance.period_upper_bound inst *. (1.0 +. 1e-9))

let prop_exact_matches_float =
  QCheck.Test.make ~name:"core: exact and float periods agree to 1e-6 rel" ~count:100
    arb_instance (fun inst ->
      let mp = random_mapping inst 19 in
      let p = Period.period inst mp in
      let pe = Rat.to_float (Period.period_exact inst mp) in
      Float.abs (p -. pe) <= 1e-6 *. Float.max 1.0 pe)

let () =
  Alcotest.run "mf_core"
    [
      ( "workflow",
        [
          Alcotest.test_case "chain" `Quick test_workflow_chain;
          Alcotest.test_case "join" `Quick test_workflow_join;
          Alcotest.test_case "validation" `Quick test_workflow_validation;
          Alcotest.test_case "digraph" `Quick test_workflow_digraph;
        ] );
      ( "instance",
        [
          Alcotest.test_case "accessors" `Quick test_instance_accessors;
          Alcotest.test_case "validation" `Quick test_instance_validation;
          Alcotest.test_case "max_x" `Quick test_instance_max_x;
          Alcotest.test_case "period upper bound" `Quick test_instance_period_upper_bound;
          Alcotest.test_case "predicates" `Quick test_instance_predicates;
          Alcotest.test_case "heterogeneity" `Quick test_instance_heterogeneity;
        ] );
      ( "mapping",
        [
          Alcotest.test_case "rules" `Quick test_mapping_rules;
          Alcotest.test_case "validation" `Quick test_mapping_validation;
        ] );
      ( "products",
        [
          Alcotest.test_case "chain" `Quick test_products_chain;
          Alcotest.test_case "exact agree" `Quick test_products_exact_agree;
          Alcotest.test_case "join" `Quick test_products_join;
          Alcotest.test_case "inputs needed" `Quick test_inputs_needed;
        ] );
      ( "period",
        [
          Alcotest.test_case "chain" `Quick test_period_chain;
          Alcotest.test_case "shared machine" `Quick test_period_shared_machine;
          Alcotest.test_case "exact agrees" `Quick test_period_exact_agrees;
          Alcotest.test_case "with setup" `Quick test_period_with_setup;
        ] );
      ( "instance_io",
        [
          Alcotest.test_case "chain roundtrip" `Quick test_io_roundtrip_chain;
          Alcotest.test_case "tree roundtrip" `Quick test_io_roundtrip_tree;
          Alcotest.test_case "file roundtrip" `Quick test_io_file_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_io_rejects_garbage;
          Alcotest.test_case "comments" `Quick test_io_comments_and_blank_lines;
          Alcotest.test_case "roundtrip property" `Quick test_io_roundtrip_property;
          Alcotest.test_case "typed errors" `Quick test_io_typed_errors;
        ] );
      ( "canon",
        [
          Alcotest.test_case "unit round-trip" `Quick test_canon_unit;
          Alcotest.test_case "key invariance (300)" `Quick test_canon_invariance_property;
          Alcotest.test_case "classes contiguous (300)" `Quick test_canon_classes_contiguous;
        ] );
      ( "props",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_x_at_least_one;
            prop_x_monotone_along_paths;
            prop_period_is_max_of_machine_periods;
            prop_period_below_upper_bound;
            prop_exact_matches_float;
          ] );
    ]
