(* Benchmark harness: regenerates every figure of the paper's Section 7
   (period tables + normalisation factors), runs the ablation studies for
   the extensions, validates the analytic model against the simulator, and
   finishes with bechamel micro-benchmarks of the computational kernels.

   Usage: dune exec bench/main.exe [-- --quick] [-- --only figN[,figM...]]
     --quick        3 replicates instead of the paper's 30/100
     --only LIST    only the listed figures (e.g. --only fig5,fig9)
     --skip-micro   skip the bechamel micro-benchmark section
     --skip-ablation skip the ablation section
     --skip-eval    skip the incremental-evaluation benchmark
                    (which also writes machine-readable BENCH_eval.json)
     --skip-parallel skip the multicore-runner benchmark
                    (which also writes machine-readable BENCH_parallel.json)
     --skip-exact   skip the exact branch-and-bound benchmark
                    (which also writes machine-readable BENCH_exact.json)
     --skip-lp      skip the splitting-LP simplex benchmark
                    (which also writes machine-readable BENCH_lp.json)
     --skip-solve   skip the unified-solver benchmark
                    (which also writes machine-readable BENCH_solve.json)
     --skip-dynamic skip the dynamic breakdown/re-mapper benchmark
                    (which also writes machine-readable BENCH_dynamic.json)
     --regress      run only the regression gate: re-run the quick-tier
                    reference measurements and compare against the
                    committed BENCH_lp.json / BENCH_exact.json /
                    BENCH_dynamic.json "regress" sections, exiting
                    non-zero on any regression *)

module Figures = Mf_experiments.Figures
module Report = Mf_experiments.Report
module Runner = Mf_experiments.Runner
module Summary = Mf_experiments.Summary
module Registry = Mf_heuristics.Registry
module Period = Mf_core.Period
module Gen = Mf_workload.Gen
module Rng = Mf_prng.Rng

let quick = ref false
let only : string list ref = ref []
let skip_micro = ref false
let skip_ablation = ref false
let skip_eval = ref false
let skip_parallel = ref false
let skip_exact = ref false
let skip_lp = ref false
let skip_solve = ref false
let skip_daemon = ref false
let skip_dynamic = ref false
let regress = ref false

let parse_args () =
  let rec go = function
    | [] -> ()
    | "--quick" :: rest ->
      quick := true;
      go rest
    | "--regress" :: rest ->
      regress := true;
      go rest
    | "--only" :: spec :: rest ->
      only := String.split_on_char ',' spec;
      go rest
    | "--skip-micro" :: rest ->
      skip_micro := true;
      go rest
    | "--skip-ablation" :: rest ->
      skip_ablation := true;
      go rest
    | "--skip-eval" :: rest ->
      skip_eval := true;
      go rest
    | "--skip-parallel" :: rest ->
      skip_parallel := true;
      go rest
    | "--skip-exact" :: rest ->
      skip_exact := true;
      go rest
    | "--skip-lp" :: rest ->
      skip_lp := true;
      go rest
    | "--skip-solve" :: rest ->
      skip_solve := true;
      go rest
    | "--skip-daemon" :: rest ->
      skip_daemon := true;
      go rest
    | "--skip-dynamic" :: rest ->
      skip_dynamic := true;
      go rest
    | arg :: _ ->
      Printf.eprintf "unknown argument %s\n" arg;
      exit 2
  in
  go (List.tl (Array.to_list Sys.argv))

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* ------------------------------------------------------------------ *)
(* Figure reproduction                                                  *)
(* ------------------------------------------------------------------ *)

let wanted id = !only = [] || List.mem id !only

let reproduce_figures () =
  section "Reproduction of the paper's figures (Section 7)";
  Printf.printf "(mean period in ms per point, %s replicates)\n"
    (if !quick then "3 quick" else "the paper's 30, 100 for fig9");
  let replicates = if !quick then Some 3 else None in
  let fig9_replicates = if !quick then Some 3 else Some 100 in
  let run id f =
    if wanted id then begin
      let t0 = Sys.time () in
      let fig = f () in
      print_newline ();
      print_string (Report.to_string fig);
      Printf.printf "(%s computed in %.1fs cpu)\n" id (Sys.time () -. t0);
      Some fig
    end
    else None
  in
  ignore (run "fig5" (fun () -> Figures.fig5 ?replicates ()));
  ignore (run "fig6" (fun () -> Figures.fig6 ?replicates ()));
  ignore (run "fig7" (fun () -> Figures.fig7 ?replicates ()));
  ignore (run "fig8" (fun () -> Figures.fig8 ?replicates ()));
  (match run "fig9" (fun () -> Figures.fig9 ?replicates:fig9_replicates ()) with
  | Some fig ->
    Format.printf "@[<v>%a@]@."
      (fun fmt f -> Summary.pp_factors fmt f ~reference:"OtO")
      fig;
    Format.print_flush ();
    Printf.printf "(paper: H2 1.84x, H3 1.75x, H4w 1.28x from the optimal)\n"
  | None -> ());
  (match run "fig10" (fun () -> Figures.fig10 ?replicates ()) with
  | Some fig ->
    Format.printf "@[<v>%a@]@."
      (fun fmt f -> Summary.pp_factors fmt f ~reference:"MIP")
      fig;
    Format.print_flush ();
    Printf.printf "(paper: H2 1.73x, H3 1.58x, H4w 1.33x from the MIP)\n"
  | None -> ());
  ignore (run "fig11" (fun () -> Figures.fig11 ?replicates ()));
  ignore (run "fig12" (fun () -> Figures.fig12 ?replicates ()))

(* ------------------------------------------------------------------ *)
(* Ablations for the extensions                                         *)
(* ------------------------------------------------------------------ *)

let ablation_local_search () =
  section "Ablation: post-optimisation of heuristic mappings (extensions)";
  Printf.printf
    "mean period over 10 instances (n=20, p=4, m=8): raw heuristic, after\n\
     steepest-descent local search, after simulated annealing\n";
  Printf.printf "  %-4s %12s %14s %14s\n" "" "raw" "local search" "annealing";
  List.iter
    (fun h ->
      let raw = ref 0.0 and ls = ref 0.0 and sa = ref 0.0 in
      let trials = 10 in
      for seed = 1 to trials do
        let inst = Gen.chain (Rng.create seed) (Gen.default ~tasks:20 ~types:4 ~machines:8) in
        let mp = Registry.solve ~seed h inst in
        raw := !raw +. Period.period inst mp;
        ls := !ls +. Period.period inst (Mf_heuristics.Local_search.improve inst mp);
        sa :=
          !sa
          +. Period.period inst (Mf_heuristics.Annealing.run (Rng.create (seed * 7)) inst mp)
      done;
      let t = float_of_int trials in
      Printf.printf "  %-4s %10.1fms %12.1fms %12.1fms\n" (Registry.name h) (!raw /. t)
        (!ls /. t) (!sa /. t))
    [ Registry.H1; Registry.H2; Registry.H3; Registry.H4w ]

let ablation_splitting () =
  section "Ablation: divisible workloads (paper's future work, LP bound)";
  Printf.printf
    "per-instance comparison (n=8, p=3, m=4): exact specialized optimum vs the\n\
     divisible-workload LP bound and its rounded specialized mapping\n";
  Printf.printf "  %4s %12s %12s %12s %10s\n" "seed" "exact" "LP bound" "rounded" "gain";
  for seed = 1 to 8 do
    let inst = Gen.chain (Rng.create seed) (Gen.default ~tasks:8 ~types:3 ~machines:4) in
    let exact = (Mf_exact.Dfs.specialized inst).Mf_exact.Dfs.period in
    let lp =
      match Mf_lp.Splitting.solve inst with
      | Ok r -> r
      | Error e -> failwith (Mf_lp.Splitting.describe_error e)
    in
    let _, rounded = Mf_lp.Splitting.round_exn inst lp in
    Printf.printf "  %4d %12.1f %12.1f %12.1f %9.1f%%\n" seed exact lp.Mf_lp.Splitting.period
      rounded
      (100.0 *. (exact -. lp.Mf_lp.Splitting.period) /. exact)
  done;
  Printf.printf "(gain = throughput improvement available by splitting task workloads)\n"

let ablation_h2_interpretations () =
  section "Ablation: Algorithm 2 pseudo-code vs prose (H2/H3 variants)";
  Printf.printf
    "the paper's pseudo-code rejects a binary-search round when the single\n\
     best-rank machine busts the budget; the prose retries lower-priority\n\
     machines.  Mean period over 15 instances (n=60, p=5, m=20):\n";
  let trials = 15 in
  let mean solve =
    let acc = ref 0.0 in
    for seed = 1 to trials do
      let inst = Gen.chain (Rng.create seed) (Gen.default ~tasks:60 ~types:5 ~machines:20) in
      acc := !acc +. Period.period inst (solve inst)
    done;
    !acc /. float_of_int trials
  in
  Printf.printf "  H2 (pseudo-code)  %10.1f ms\n" (mean Mf_heuristics.H2_potential.run);
  Printf.printf "  H2 (prose/retry)  %10.1f ms\n" (mean Mf_heuristics.H2_variants.h2_retry);
  Printf.printf "  H3 (pseudo-code)  %10.1f ms\n" (mean Mf_heuristics.H3_heterogeneity.run);
  Printf.printf "  H3 (prose/retry)  %10.1f ms\n" (mean Mf_heuristics.H2_variants.h3_retry);
  Printf.printf "  H4w (reference)   %10.1f ms\n"
    (mean (Registry.solve Registry.H4w))

let ablation_reconfiguration () =
  section "Ablation: reconfiguration costs vs general mappings (Section 6 remark)";
  Printf.printf
    "exact general-mapping optimum (cyclic setup penalty: k type switches per\n\
     period on a k-type machine) vs the exact specialized optimum; mean over 8\n\
     instances (n=6, p=3, m=3)\n";
  let trials = 8 in
  let spec = ref 0.0 in
  let insts =
    List.init trials (fun seed ->
        Gen.chain (Rng.create (seed + 1)) (Gen.default ~tasks:6 ~types:3 ~machines:3))
  in
  List.iter (fun inst -> spec := !spec +. (Mf_exact.Dfs.specialized inst).Mf_exact.Dfs.period) insts;
  let spec = !spec /. float_of_int trials in
  Printf.printf "  %-14s %12s %14s\n" "setup (ms)" "general" "vs specialized";
  List.iter
    (fun setup ->
      let total = ref 0.0 in
      List.iter
        (fun inst -> total := !total +. (Mf_exact.Dfs.general ~setup inst).Mf_exact.Dfs.period)
        insts;
      let general = !total /. float_of_int trials in
      Printf.printf "  %-14.0f %10.1fms %13.1f%%\n" setup general
        (100.0 *. (general -. spec) /. spec))
    [ 0.0; 50.0; 100.0; 200.0; 500.0; 1000.0 ];
  Printf.printf "  (specialized optimum: %.1fms - general mappings lose their edge once\n\
  \   reconfiguring costs a few hundred ms, the paper's practical argument)\n" spec

let simulator_validation () =
  section "Simulator validation: analytic 1/period vs discrete-event throughput";
  Printf.printf "  %4s %6s %14s %14s %8s\n" "seed" "n" "analytic" "simulated" "error";
  List.iter
    (fun (seed, n) ->
      let inst = Gen.chain (Rng.create seed) (Gen.default ~tasks:n ~types:2 ~machines:4) in
      let mp = Registry.solve Registry.H4w inst in
      let analytic = Period.throughput inst mp in
      let r = Mf_sim.Desim.run ~warmup:2.0e5 ~horizon:2.0e6 ~seed:(seed + 100) inst mp in
      Printf.printf "  %4d %6d %14.6g %14.6g %7.2f%%\n" seed n analytic
        r.Mf_sim.Desim.throughput
        (100.0 *. Float.abs (r.Mf_sim.Desim.throughput -. analytic) /. analytic))
    [ (1, 4); (2, 8); (3, 12); (4, 16) ]

(* ------------------------------------------------------------------ *)
(* Incremental evaluation benchmark                                     *)
(* ------------------------------------------------------------------ *)

(* Candidate-move evaluation: the old local search scored each candidate
   with a from-scratch Period.period (O(n + m)); Mf_eval.State.try_move
   re-evaluates only the move's footprint.  Both are timed over the full
   task-move neighbourhood of the same mapping, then the end-to-end local
   search is timed through both paths. *)
let bench_eval () =
  section "Incremental evaluation: Mf_eval.State vs full recomputation";
  let module State = Mf_eval.State in
  let module Mapping = Mf_core.Mapping in
  let module Local_search = Mf_heuristics.Local_search in
  (* A random in-tree (the paper's application model): upstream subtrees
     are small on average, which is what the O(subtree) re-evaluation
     exploits.  A linear chain is the worst case - the subtree of a move
     averages n/2 - and is reported alongside for honesty. *)
  let n = 60 and p = 5 and m = 20 in
  let inst = Gen.in_tree (Rng.create 42) (Gen.default ~tasks:n ~types:p ~machines:m) in
  let reps = if !quick then 10 else 100 in
  let sink = ref 0.0 in
  (* Time the whole task-move neighbourhood: once scored by from-scratch
     Period.period on a mutated allocation, once through State.try_move. *)
  let neighbourhood_rates inst =
    let mp = Registry.solve Registry.H4w inst in
    let a = Mapping.to_array mp in
    let st = State.of_mapping inst mp in
    let t0 = Sys.time () in
    let evals = ref 0 in
    for _ = 1 to reps do
      for i = 0 to n - 1 do
        let original = a.(i) in
        for u = 0 to m - 1 do
          if u <> original then begin
            a.(i) <- u;
            sink := !sink +. Period.period inst (Mapping.of_array inst a);
            incr evals
          end
        done;
        a.(i) <- original
      done
    done;
    let full_s = Sys.time () -. t0 in
    let t0 = Sys.time () in
    for _ = 1 to reps do
      for i = 0 to n - 1 do
        let original = State.machine_of st i in
        for u = 0 to m - 1 do
          if u <> original then
            sink := !sink +. State.try_move st ~task:i ~machine:u
        done
      done
    done;
    let inc_s = Sys.time () -. t0 in
    let evals = float_of_int !evals in
    (evals, evals /. full_s, evals /. inc_s)
  in
  let evals, full_rate, inc_rate = neighbourhood_rates inst in
  let eval_speedup = inc_rate /. full_rate in
  Printf.printf
    "  candidate-move evaluation (in-tree, n=%d, p=%d, m=%d, %.0f evals each):\n\
    \    full recomputation   %12.0f evals/s\n\
    \    incremental          %12.0f evals/s\n\
    \    speedup              %12.1fx\n"
    n p m evals full_rate inc_rate eval_speedup;
  let chain = Gen.chain (Rng.create 42) (Gen.default ~tasks:n ~types:p ~machines:m) in
  let _, chain_full, chain_inc = neighbourhood_rates chain in
  Printf.printf
    "  worst case (linear chain, subtree ~ n/2): %.0f vs %.0f evals/s, %.1fx\n"
    chain_full chain_inc (chain_inc /. chain_full);
  (* End-to-end steepest descent, reference vs incremental. *)
  let start = Registry.solve ~seed:1 Registry.H1 inst in
  let t0 = Sys.time () in
  let ref_mp = Local_search.improve_reference inst start in
  let ref_s = Sys.time () -. t0 in
  let t0 = Sys.time () in
  let inc_mp = Local_search.improve inst start in
  let ls_inc_s = Sys.time () -. t0 in
  let p_ref = Period.period inst ref_mp and p_inc = Period.period inst inc_mp in
  let periods_match = Float.abs (p_inc -. p_ref) <= 1e-9 *. p_ref in
  Printf.printf
    "  local search end-to-end (H1 start):\n\
    \    reference            %12.3f s  (period %.1f ms)\n\
    \    incremental          %12.3f s  (period %.1f ms)\n\
    \    speedup              %12.1fx   periods match: %b\n"
    ref_s p_ref ls_inc_s p_inc (ref_s /. ls_inc_s) periods_match;
  let json = "BENCH_eval.json" in
  let oc = open_out json in
  Printf.fprintf oc
    "{\n\
    \  \"instance\": { \"tasks\": %d, \"types\": %d, \"machines\": %d, \"application\": \"in-tree\" },\n\
    \  \"candidate_evals\": %.0f,\n\
    \  \"full_evals_per_sec\": %.1f,\n\
    \  \"incremental_evals_per_sec\": %.1f,\n\
    \  \"candidate_eval_speedup\": %.2f,\n\
    \  \"chain_eval_speedup\": %.2f,\n\
    \  \"local_search_reference_s\": %.6f,\n\
    \  \"local_search_incremental_s\": %.6f,\n\
    \  \"local_search_speedup\": %.2f,\n\
    \  \"local_search_periods_match\": %b\n\
     }\n"
    n p m evals full_rate inc_rate eval_speedup
    (chain_inc /. chain_full)
    ref_s ls_inc_s (ref_s /. ls_inc_s) periods_match;
  close_out oc;
  Printf.printf "  (machine-readable copy written to %s)\n" json;
  ignore !sink

(* ------------------------------------------------------------------ *)
(* Multicore experiment-runner benchmark                                *)
(* ------------------------------------------------------------------ *)

(* End-to-end wall-clock time of a fig5-shaped figure grid (the heaviest
   heuristic-only fan-out of Section 7) through the experiment runner at
   1/2/4/8 domains.  CPU time is useless here - domains sum into it - so
   this section is the one place the bench reads the wall clock.  The
   serial figure is the reference: every parallel run must reproduce it
   bit-for-bit, which is asserted, recorded in the JSON and printed.

   The section always runs.  On a multi-core machine the ratio column is
   a speedup; with recommended_domain_count = 1 there is nothing to
   speed up - every domain shares the one core - so the same ratio is
   reported as parallel-path *overhead* (target: within ~15% of serial),
   and the JSON says which mode it measured.  PR 3 skipped this section
   at 1 core while BENCH_exact.json's jobs section kept running jobs 2/4
   anyway and reported the slowdowns as if they were scaling data; both
   sections now annotate uniformly instead of silently disagreeing. *)
let parallel_mode_note cores =
  if cores = 1 then
    "recommended_domain_count = 1: every domain would share one core, so a speedup is not \
     measurable; Pool.shared clamps --jobs to the core count (oversubscription only adds \
     GC-handshake overhead), and the ratio reported is the parallel entry path's overhead \
     over the serial path, not scaling"
  else "wall-clock speedup over the serial run"

let bench_parallel () =
  section "Multicore runner: Mf_parallel.Pool speedup over the serial grid";
  let cores = Mf_parallel.Pool.default_jobs () in
  let mode = if cores = 1 then "overhead" else "speedup" in
  let xs = if !quick then [ 50; 80 ] else List.init 11 (fun i -> 50 + (10 * i)) in
  let replicates = if !quick then 3 else 30 in
  let run_grid ~jobs =
    Runner.run ~id:"bench-par" ~title:"fig5-shaped grid" ~x_label:"tasks" ~jobs ~xs ~replicates
      ~gen:(fun ~x ~seed ->
        Gen.chain (Rng.create seed) (Gen.default ~tasks:x ~types:5 ~machines:50))
      ~algos:(List.map Runner.heuristic Registry.all)
      ()
  in
  let time_grid ~jobs =
    let t0 = Unix.gettimeofday () in
    let fig = run_grid ~jobs in
    (fig, Unix.gettimeofday () -. t0)
  in
  Printf.printf
    "  grid: n in {%s}, %d replicates x %d algorithms per point; %d cores recommended\n"
    (String.concat ", " (List.map string_of_int xs))
    replicates (List.length Registry.all) cores;
  if cores = 1 then
    Printf.printf
      "  NOTE: recommended_domain_count = 1 - speedup is not measurable on one core.\n\
      \  Pool.shared clamps --jobs to the core count (oversubscribing only adds GC\n\
      \  handshakes), so the ratio below is the parallel entry path's overhead vs\n\
      \  serial (1.00x = free), not scaling.\n";
  let serial, serial_s = time_grid ~jobs:1 in
  let ratio_label = if cores = 1 then "overhead" else "speedup" in
  Printf.printf "  %-8s %10s %10s %12s\n" "jobs" "wall (s)" ratio_label "identical";
  Printf.printf "  %-8d %10.3f %10s %12s\n" 1 serial_s "1.00x" "reference";
  let rows =
    List.map
      (fun jobs ->
        let fig, secs = time_grid ~jobs in
        let identical = Stdlib.compare serial fig = 0 in
        let ratio = if cores = 1 then secs /. serial_s else serial_s /. secs in
        Printf.printf "  %-8d %10.3f %9.2fx %12b\n" jobs secs ratio identical;
        (jobs, secs, identical))
      [ 2; 4; 8 ]
  in
  let all_identical = List.for_all (fun (_, _, ok) -> ok) rows in
  Printf.printf "  (all parallel figures byte-identical to the serial one: %b)\n" all_identical;
  let json = "BENCH_parallel.json" in
  let oc = open_out json in
  Printf.fprintf oc
    "{\n\
    \  \"grid\": { \"xs\": [%s], \"replicates\": %d, \"algos\": %d, \"machines\": 50, \"types\": 5 },\n\
    \  \"recommended_domain_count\": %d,\n\
    \  \"mode\": \"%s\",\n\
    \  \"note\": \"%s\",\n\
    \  \"serial_s\": %.6f,\n\
    \  \"runs\": [\n%s\n  ],\n\
    \  \"all_identical_to_serial\": %b\n\
     }\n"
    (String.concat ", " (List.map string_of_int xs))
    replicates (List.length Registry.all) cores mode (parallel_mode_note cores) serial_s
    (String.concat ",\n"
       (List.map
          (fun (jobs, secs, identical) ->
            Printf.sprintf
              "    { \"jobs\": %d, \"wall_s\": %.6f, \"speedup\": %.3f, \"overhead\": %.3f, \
               \"identical\": %b }"
              jobs secs (serial_s /. secs) (secs /. serial_s) identical)
          rows))
    all_identical;
  close_out oc;
  Printf.printf "  (machine-readable copy written to %s)\n" json

(* ------------------------------------------------------------------ *)
(* Exact branch-and-bound benchmark                                     *)
(* ------------------------------------------------------------------ *)

(* Headline: how much less of the tree the branch-and-bound engine visits
   than the static-bound search it replaced, on the paper's 60-task /
   20-machine workload.  The static baseline runs at a fixed budget; the
   engine's cost is the smallest budget in a doubling schedule whose
   result already matches the baseline's period.  Then: exact-solvable
   instance size at a fixed budget — with and without the per-node
   warm-started LP bound oracle ({!Mf_lp.Node_bound}) — the
   deterministic --jobs contract on the LP-bound arm, and the
   dominance/symmetry ablation on an instance built to trigger both. *)

(* Quick-tier settings shared by bench_exact and the [--regress] check:
   the scan regress reference in BENCH_exact.json is always recorded at
   these settings, whichever tier produced the rest of the file (the
   regress sizes close far below the budget without exhausting any root
   subtree's slice, so their node counts do not depend on it). *)
let exact_regress_sizes = [ 14; 16; 18 ]
let exact_regress_budget = 500_000
let exact_scan_rule = Mf_core.Mapping.Specialized

let exact_scan_instance n =
  Gen.chain (Rng.create 1) (Gen.default ~tasks:n ~types:3 ~machines:6)

(* One rule-aware LP-bound oracle per subtree search — the Dfs factory
   contract (parallel subtrees must not share mutable LP state). *)
let exact_node_bound_factory ~rule inst () =
  let t = Mf_lp.Node_bound.create ~rule inst in
  {
    Mf_exact.Dfs.nb_push = (fun ~task ~machine -> Mf_lp.Node_bound.push t ~task ~machine);
    nb_pop = (fun () -> Mf_lp.Node_bound.pop t);
    nb_bound = (fun ~cutoff -> Mf_lp.Node_bound.bound t ~cutoff);
    nb_pivots = (fun () -> (Mf_lp.Node_bound.stats t).Mf_lp.Node_bound.pivots);
  }

(* The LP-bound-arm measurement the regress check replays. *)
let exact_lp_run ?jobs ~budget n =
  let inst = exact_scan_instance n in
  let t0 = Unix.gettimeofday () in
  let r =
    Mf_exact.Dfs.solve ~node_budget:budget ?jobs
      ~node_bound:(exact_node_bound_factory ~rule:exact_scan_rule inst)
      ~rule:exact_scan_rule inst
  in
  (r, Unix.gettimeofday () -. t0)

let bench_exact () =
  section "Exact search: branch-and-bound vs the static-bound baseline";
  let module Dfs = Mf_exact.Dfs in
  let rule = Mf_core.Mapping.Specialized in
  (* -- node reduction on the fig5-sized instance -------------------- *)
  let inst = Gen.chain (Rng.create 42) (Gen.default ~tasks:60 ~types:5 ~machines:20) in
  let static_budget = if !quick then 200_000 else 2_000_000 in
  let static = Dfs.solve_static ~node_budget:static_budget ~rule inst in
  Printf.printf
    "  static baseline (n=60, p=5, m=20, budget %d): period %.3f ms, %d nodes\n"
    static_budget static.Dfs.period static.Dfs.nodes;
  let rec match_budget budget =
    let r = Dfs.solve ~node_budget:budget ~rule inst in
    if r.Dfs.period <= static.Dfs.period || budget >= static_budget then (budget, r)
    else match_budget (2 * budget)
  in
  let matched_budget, bnb = match_budget 1_000 in
  let reduction = float_of_int static.Dfs.nodes /. float_of_int (max 1 bnb.Dfs.nodes) in
  Printf.printf
    "  branch-and-bound reaches period %.3f ms in %d nodes (budget %d): %.0fx fewer\n\
    \  (prunes: %d bound, %d dominance, %d symmetry; incumbent final at node %d of its \
     subtree)\n"
    bnb.Dfs.period bnb.Dfs.nodes matched_budget reduction bnb.Dfs.stats.Dfs.bound_prunes
    bnb.Dfs.stats.Dfs.dominance_prunes bnb.Dfs.stats.Dfs.symmetry_skips
    bnb.Dfs.stats.Dfs.best_at_node;
  (* -- exact-solvable size at a fixed budget ------------------------ *)
  let scan_budget = if !quick then 500_000 else 8_000_000 in
  let sizes =
    if !quick then [ 14; 16; 18; 20; 22 ] else [ 14; 16; 18; 20; 22; 24; 26; 28 ]
  in
  Printf.printf
    "  closed instances (optimality proved) within %d nodes, chain p=3 m=6,\n\
    \  without vs with the per-node warm-started LP bound:\n"
    scan_budget;
  Printf.printf "  %4s | %12s %7s | %12s %7s %10s %10s | %7s\n" "n" "plain nodes" "closed"
    "LP nodes" "closed" "lp_solves" "lp_prunes" "ratio";
  let scan =
    List.map
      (fun n ->
        let i = exact_scan_instance n in
        let r = Dfs.solve ~node_budget:scan_budget ~rule i in
        let lp, _ = exact_lp_run ~budget:scan_budget n in
        Printf.printf "  %4d | %12d %7b | %12d %7b %10d %10d | %6.1fx\n" n r.Dfs.nodes
          r.Dfs.optimal lp.Dfs.nodes lp.Dfs.optimal lp.Dfs.stats.Dfs.lp_solves
          lp.Dfs.stats.Dfs.lp_prunes
          (float_of_int r.Dfs.nodes /. float_of_int (max 1 lp.Dfs.nodes));
        (n, r, lp))
      sizes
  in
  let closed pick =
    List.fold_left (fun acc (n, r, lp) -> if (pick r lp : Dfs.result).Dfs.optimal then max acc n else acc)
      0 scan
  in
  let solvable = closed (fun r _ -> r) in
  let solvable_lp = closed (fun _ lp -> lp) in
  Printf.printf
    "  (largest instance closed at this budget: plain n=%d, LP-bound n=%d)\n" solvable
    solvable_lp;
  (* -- regress reference rows (always at the quick-tier settings) ---- *)
  let regress_rows =
    List.map
      (fun n ->
        let r, _ = exact_lp_run ~budget:exact_regress_budget n in
        (n, r))
      exact_regress_sizes
  in
  (* -- deterministic parallel root splitting, LP-bound arm ----------- *)
  let cores = Mf_parallel.Pool.default_jobs () in
  let jn = if !quick then 18 else 22 in
  let serial, serial_s = exact_lp_run ~jobs:1 ~budget:scan_budget jn in
  let jmode = if cores = 1 then "overhead" else "speedup" in
  Printf.printf
    "  --jobs determinism of the LP-bound search on the closed n=%d instance\n\
    \  (%d cores recommended; identical = nodes, lp_solves, lp_prunes, period\n\
    \  and mapping all byte-equal to the serial run):\n"
    jn cores;
  if cores = 1 then
    Printf.printf
      "  NOTE: recommended_domain_count = 1 - speedup is not measurable on one core.\n\
      \  Pool.shared clamps --jobs to the core count (oversubscribing only adds GC\n\
      \  handshakes), so the ratio below is the parallel entry path's overhead vs\n\
      \  serial (1.00x = free), not scaling.\n";
  Printf.printf "  %6s %10s %10s %12s\n" "jobs" "wall (s)"
    (if cores = 1 then "overhead" else "speedup")
    "identical";
  Printf.printf "  %6d %10.3f %10s %12s\n" 1 serial_s "1.00x" "reference";
  let jrows =
    List.map
      (fun jobs ->
        let r, secs = exact_lp_run ~jobs ~budget:scan_budget jn in
        let identical =
          r.Dfs.period = serial.Dfs.period
          && Mf_core.Mapping.to_array r.Dfs.mapping
             = Mf_core.Mapping.to_array serial.Dfs.mapping
          && r.Dfs.nodes = serial.Dfs.nodes
          && r.Dfs.stats.Dfs.lp_solves = serial.Dfs.stats.Dfs.lp_solves
          && r.Dfs.stats.Dfs.lp_prunes = serial.Dfs.stats.Dfs.lp_prunes
          && r.Dfs.stats.Dfs.nogood_records = serial.Dfs.stats.Dfs.nogood_records
        in
        let ratio = if cores = 1 then secs /. serial_s else serial_s /. secs in
        Printf.printf "  %6d %10.3f %9.2fx %12b\n" jobs secs ratio identical;
        (jobs, secs, identical))
      [ 2; 4 ]
  in
  let jobs_identical = List.for_all (fun (_, _, ok) -> ok) jrows in
  (* -- dominance / symmetry ablation -------------------------------- *)
  (* Same-type tasks with identical failure rows plus duplicated machine
     columns: the instance family both pruning rules are built for. *)
  let forest =
    let n = 14 and m = 5 and p = 3 in
    let types = Array.init n (fun i -> i / 2 mod p) in
    let successor = Array.init n (fun i -> if i mod 2 = 0 then Some (i + 1) else None) in
    let wf = Mf_core.Workflow.in_forest ~types ~successor in
    let rng = Rng.create 11 in
    let wcol =
      Array.init p (fun _ -> Array.init m (fun _ -> 100.0 +. (900.0 *. Rng.float rng 1.0)))
    in
    let w = Array.init n (fun i -> Array.copy wcol.(types.(i))) in
    let f = Array.init n (fun _ -> Array.make m 0.01) in
    Mf_core.Instance.create ~workflow:wf ~machines:m ~w ~f
  in
  let abl ~dominance ~symmetry = Dfs.solve ~dominance ~symmetry ~rule forest in
  let both = abl ~dominance:true ~symmetry:true in
  let no_dom = abl ~dominance:false ~symmetry:true in
  let no_sym = abl ~dominance:true ~symmetry:false in
  let neither = abl ~dominance:false ~symmetry:false in
  Printf.printf "  pruning-rule ablation (repeated-profile forest, n=14, p=3, m=5):\n";
  Printf.printf "  %-22s %10s %12s\n" "configuration" "nodes" "period";
  List.iter
    (fun (name, r) -> Printf.printf "  %-22s %10d %12.3f\n" name r.Dfs.nodes r.Dfs.period)
    [
      ("dominance + symmetry", both);
      ("symmetry only", no_dom);
      ("dominance only", no_sym);
      ("neither", neither);
    ];
  let json = "BENCH_exact.json" in
  let oc = open_out json in
  Printf.fprintf oc
    "{\n\
    \  \"headline\": {\n\
    \    \"instance\": { \"tasks\": 60, \"types\": 5, \"machines\": 20, \"application\": \"chain\", \"seed\": 42 },\n\
    \    \"static_budget\": %d,\n\
    \    \"static_nodes\": %d,\n\
    \    \"static_period_ms\": %.6f,\n\
    \    \"bnb_matched_budget\": %d,\n\
    \    \"bnb_nodes\": %d,\n\
    \    \"bnb_period_ms\": %.6f,\n\
    \    \"node_reduction\": %.1f,\n\
    \    \"bound_prunes\": %d,\n\
    \    \"dominance_prunes\": %d,\n\
    \    \"symmetry_skips\": %d\n\
    \  },\n\
    \  \"solvable_scan\": { \"budget\": %d,\n\
    \    \"largest_closed_n\": { \"plain\": %d, \"lp_bound\": %d },\n\
    \    \"rows\": [\n%s\n  ] },\n\
    \  \"jobs\": { \"instance_n\": %d, \"arm\": \"lp_bound\", \"recommended_domain_count\": %d, \"mode\": \"%s\",\n\
    \    \"note\": \"%s\",\n\
    \    \"serial_wall_s\": %.6f,\n\
    \    \"runs\": [\n%s\n    ],\n\
    \    \"all_identical_to_serial\": %b },\n\
    \  \"ablation\": { \"nodes\": { \"both\": %d, \"symmetry_only\": %d, \"dominance_only\": %d, \"neither\": %d },\n\
    \    \"periods_bit_equal\": %b },\n\
    \  \"regress\": {\n\
    \    \"budget\": %d,\n\
    \    \"tolerances\": { \"nodes_ratio\": 1.15, \"lp_solves_ratio\": 1.15 },\n\
    \    \"rows\": [\n%s\n    ]\n\
    \  }\n\
     }\n"
    static_budget static.Dfs.nodes static.Dfs.period matched_budget bnb.Dfs.nodes
    bnb.Dfs.period reduction bnb.Dfs.stats.Dfs.bound_prunes bnb.Dfs.stats.Dfs.dominance_prunes
    bnb.Dfs.stats.Dfs.symmetry_skips scan_budget solvable solvable_lp
    (String.concat ",\n"
       (List.map
          (fun (n, r, lp) ->
            Printf.sprintf
              "    { \"n\": %d, \"period_ms\": %.6f,\n\
              \      \"plain\": { \"nodes\": %d, \"optimal\": %b },\n\
              \      \"lp_bound\": { \"nodes\": %d, \"optimal\": %b, \"lp_solves\": %d, \
               \"lp_prunes\": %d } }"
              n lp.Dfs.period r.Dfs.nodes r.Dfs.optimal lp.Dfs.nodes lp.Dfs.optimal
              lp.Dfs.stats.Dfs.lp_solves lp.Dfs.stats.Dfs.lp_prunes)
          scan))
    jn cores jmode (parallel_mode_note cores) serial_s
    (String.concat ",\n"
       (List.map
          (fun (jobs, secs, ok) ->
            Printf.sprintf
              "      { \"jobs\": %d, \"wall_s\": %.6f, \"overhead\": %.3f, \"identical\": %b }"
              jobs secs (secs /. serial_s) ok)
          jrows))
    jobs_identical both.Dfs.nodes no_dom.Dfs.nodes no_sym.Dfs.nodes neither.Dfs.nodes
    (both.Dfs.period = neither.Dfs.period
    && no_dom.Dfs.period = neither.Dfs.period
    && no_sym.Dfs.period = neither.Dfs.period)
    exact_regress_budget
    (String.concat ",\n"
       (List.map
          (fun (n, (r : Dfs.result)) ->
            Printf.sprintf
              "      { \"n\": %d, \"nodes\": %d, \"lp_solves\": %d, \"optimal\": %b }" n
              r.Dfs.nodes r.Dfs.stats.Dfs.lp_solves r.Dfs.optimal)
          regress_rows));
  close_out oc;
  Printf.printf "  (machine-readable copy written to %s)\n" json

(* ------------------------------------------------------------------ *)
(* Splitting-LP / simplex benchmark                                     *)
(* ------------------------------------------------------------------ *)

(* The seed solver posed the splitting LP in period form (minimize K) and
   solved it with a dense Bland tableau under absolute tolerances; every
   non-sink flow row and every load row then has rhs 0, so the simplex
   starts at a massively degenerate vertex and at n >= 40 the pivot budget
   dies on a zero-step plateau.  Three arms on the same instances:

   - revised: the shipping configuration — sparse revised simplex over an
     LU-factorized basis with product-form eta updates, Devex pricing with
     the Bland stall fallback, relative tolerances;
   - dense: the dense-tableau core ([solve_dense_detailed]) on the same
     throughput-form system with the same pricing, isolating the pure
     data-structure effect;
   - seed baseline: the period-form model under dense Bland/absolute-eps
     ([solve_bland_detailed]) — the seed combination, rebuilt here so the
     stall it suffers from stays measurable after the library moved on.

   A second, "scaling" sweep runs the revised path on sizes the dense
   tableau cannot touch (n = 2000 in the full tier: the dense copy alone
   holds ~2000 x 16000 doubles and each pivot rewrites all of it), checks
   every float optimum against an exact-rational re-solve warm-started
   from the float basis (relative agreement 1e-9), and gives the dense
   core a fixed pivot budget so "cannot finish within budget" is a
   measured outcome, not an extrapolation.

   The quick-tier revised-arm numbers are repeated in a "regress" section
   of BENCH_lp.json together with tolerance fields; [--regress] re-runs
   exactly those measurements and compares (see [run_regress]). *)

(* Quick-tier settings shared by the bench and the [--regress] check: the
   regress reference in BENCH_lp.json is always recorded at these
   settings, whichever tier produced the rest of the file. *)
let lp_regress_sizes = [ 10; 20; 40 ]
let lp_regress_seeds = [ 1; 2 ]
let lp_scaling_regress_n = 200

(* One (n, seed) chain instance of the LP bench, standardized. *)
let lp_instance ~n ~seed =
  let inst = Gen.chain (Rng.create seed) (Gen.default ~tasks:n ~types:4 ~machines:8) in
  Mf_lp.Standardize.build (Mf_lp.Splitting.model inst)

(* The revised-arm measurement the regress check replays: outcome kind,
   pivot count, and float-vs-rational agreement for the scaling row. *)
let lp_revised_run std =
  let module FS = Mf_lp.Simplex.Float_solver in
  let module Std = Mf_lp.Standardize in
  let t0 = Unix.gettimeofday () in
  let d = FS.solve_sparse_detailed ~a:std.Std.a ~b:std.Std.b ~c:std.Std.c () in
  (d, Unix.gettimeofday () -. t0)

(* Exact-rational certification of a float answer, warm-started from the
   float basis.  Returns (agreement at rel 1e-9, exact pivots, wall). *)
let lp_certify_run std (d : Mf_lp.Simplex.Float_solver.detail) =
  let module FS = Mf_lp.Simplex.Float_solver in
  let module RS = Mf_lp.Simplex.Rat_solver in
  let module Std = Mf_lp.Standardize in
  let module R = Mf_numeric.Rat in
  match d.FS.outcome with
  | FS.Optimal (_, obj) -> (
    let a = Mf_lp.Sparse.map_values R.of_float std.Std.a in
    let b = Array.map R.of_float std.Std.b in
    let c = Array.map R.of_float std.Std.c in
    let t0 = Unix.gettimeofday () in
    let rd = RS.solve_sparse_from_basis ~a ~b ~c ~basis:d.FS.basis () in
    let wall = Unix.gettimeofday () -. t0 in
    match rd.RS.outcome with
    | RS.Optimal (_, robj) ->
      let robj = R.to_float robj in
      let agree = Float.abs (obj -. robj) <= 1e-9 *. Float.max 1.0 (Float.abs robj) in
      (agree, rd.RS.iterations, wall)
    | _ -> (false, rd.RS.iterations, wall))
  | _ -> (false, 0, 0.0)

let bench_lp () =
  section "Splitting LP: sparse revised simplex vs the dense baselines";
  let module Splitting = Mf_lp.Splitting in
  let module Model = Mf_lp.Model in
  let module Linexpr = Mf_lp.Linexpr in
  let module Std = Mf_lp.Standardize in
  let module FS = Mf_lp.Simplex.Float_solver in
  let module FSp = Mf_lp.Sparse.Make (Mf_numeric.Ordered_field.Float_field) in
  let module Instance = Mf_core.Instance in
  let module Workflow = Mf_core.Workflow in
  (* The period-form LP exactly as the seed posed it. *)
  let period_model inst =
    let n = Instance.task_count inst in
    let m = Instance.machines inst in
    let wf = Instance.workflow inst in
    let model = Model.create () in
    let nv =
      Array.init n (fun i ->
          Array.init m (fun u ->
              Model.add_var model ~name:(Printf.sprintf "n_%d_%d" i u) Model.Continuous))
    in
    let k = Model.add_var model ~name:"K" Model.Continuous in
    for i = 0 to n - 1 do
      let successes =
        Linexpr.of_terms (List.init m (fun u -> (1.0 -. Instance.f inst i u, nv.(i).(u)))) 0.0
      in
      match Workflow.successor wf i with
      | None -> Model.add_constraint model successes Model.Eq 1.0
      | Some j ->
        let demand = Linexpr.of_terms (List.init m (fun u -> (1.0, nv.(j).(u)))) 0.0 in
        Model.add_constraint model (Linexpr.sub successes demand) Model.Eq 0.0
    done;
    for u = 0 to m - 1 do
      let load =
        Linexpr.of_terms (List.init n (fun i -> (Instance.w inst i u, nv.(i).(u)))) 0.0
      in
      Model.add_constraint model (Linexpr.sub load (Linexpr.var k)) Model.Le 0.0
    done;
    Model.set_objective model ~minimize:true (Linexpr.var k);
    model
  in
  let sizes = if !quick then lp_regress_sizes else lp_regress_sizes @ [ 80 ] in
  let seeds = if !quick then lp_regress_seeds else lp_regress_seeds @ [ 3 ] in
  let lp_agree_cap = if !quick then 40 else 80 in
  let nseeds = List.length seeds in
  let outcome_name = function
    | FS.Optimal _ -> "optimal"
    | FS.Infeasible -> "infeasible"
    | FS.Unbounded -> "unbounded"
    | FS.Stalled -> "stalled"
  in
  Printf.printf "  %4s | %22s | %22s | %22s | %s\n" "n" "revised sparse (new)"
    "dense, same tableau" "seed baseline" "certified path";
  (* Quick-subset aggregates of the revised arm, for the regress section:
     (optimal count, pivot sum) per n over [lp_regress_seeds]. *)
  let regress_acc = Hashtbl.create 4 in
  let rows =
    List.map
      (fun n ->
        let arm_stats = Hashtbl.create 4 in
        let record arm outcome pivots wall =
          let opt, stall, piv, time =
            try Hashtbl.find arm_stats arm with Not_found -> (0, 0, 0, 0.0)
          in
          let opt = if outcome = "optimal" then opt + 1 else opt in
          let stall = if outcome = "stalled" then stall + 1 else stall in
          Hashtbl.replace arm_stats arm (opt, stall, piv + pivots, time +. wall)
        in
        (* Basis-reuse counters of the revised arm, summed over seeds. *)
        let rev_factz = ref 0 and rev_etaups = ref 0 and rev_refz = ref 0 in
        let rational = ref 0 in
        let certified_time = ref 0.0 in
        let cert_factz = ref 0 and cert_etaups = ref 0 and cert_refz = ref 0 in
        List.iter
          (fun seed ->
            let run arm std solver =
              match std with
              | None -> record arm "infeasible" 0 0.0
              | Some std ->
                let t0 = Unix.gettimeofday () in
                let d : FS.detail = solver std in
                let wall = Unix.gettimeofday () -. t0 in
                record arm (outcome_name d.FS.outcome) d.FS.iterations wall;
                if arm = "revised" then begin
                  rev_factz := !rev_factz + d.FS.factorizations;
                  rev_etaups := !rev_etaups + d.FS.eta_updates;
                  rev_refz := !rev_refz + d.FS.refactorizations;
                  if List.mem n lp_regress_sizes && List.mem seed lp_regress_seeds then begin
                    let opt, piv =
                      try Hashtbl.find regress_acc n with Not_found -> (0, 0)
                    in
                    let opt =
                      match d.FS.outcome with FS.Optimal _ -> opt + 1 | _ -> opt
                    in
                    Hashtbl.replace regress_acc n (opt, piv + d.FS.iterations)
                  end
                end
            in
            let inst =
              Gen.chain (Rng.create seed) (Gen.default ~tasks:n ~types:4 ~machines:8)
            in
            let throughput_std = Std.build (Splitting.model inst) in
            run "revised" throughput_std (fun std ->
                FS.solve_sparse_detailed ~a:std.Std.a ~b:std.Std.b ~c:std.Std.c ());
            run "dense" throughput_std (fun std ->
                FS.solve_dense_detailed ~a:(FSp.to_dense std.Std.a) ~b:std.Std.b
                  ~c:std.Std.c ());
            run "seed" (Std.build (period_model inst)) (fun std ->
                FS.solve_bland_detailed ~a:(FSp.to_dense std.Std.a) ~b:std.Std.b
                  ~c:std.Std.c ());
            let t0 = Unix.gettimeofday () in
            (match Splitting.solve inst with
            | Ok r ->
              let s = r.Splitting.stats in
              (match r.Splitting.path with `Rational -> incr rational | `Float -> ());
              cert_factz := !cert_factz + s.Mf_lp.Mip.factorizations;
              cert_etaups := !cert_etaups + s.Mf_lp.Mip.eta_updates;
              cert_refz := !cert_refz + s.Mf_lp.Mip.refactorizations
            | Error _ -> ());
            certified_time := !certified_time +. (Unix.gettimeofday () -. t0))
          seeds;
        (* Float-vs-rational agreement at rel 1e-9 (seed 1), warm-started
           from the float basis.  Exact bigint pivoting cost grows steeply
           with dimension (~n^3 in digit count: 10s at n=40, 85s at n=80,
           284s at n=120 on the reference box), so agreement is certified
           here on the standard tier and documented as skipped in the
           scaling sweep below. *)
        let agreement =
          if n > lp_agree_cap then None
          else
            match lp_instance ~n ~seed:1 with
            | None -> None
            | Some std ->
              let d =
                FS.solve_sparse_detailed ~a:std.Std.a ~b:std.Std.b ~c:std.Std.c ()
              in
              Some (lp_certify_run std d)
        in
        let cell arm =
          let opt, stall, piv, time =
            try Hashtbl.find arm_stats arm with Not_found -> (0, 0, 0, 0.0)
          in
          ( opt,
            stall,
            float_of_int piv /. float_of_int nseeds,
            time /. float_of_int nseeds )
        in
        let pp (opt, stall, piv, time) =
          Printf.sprintf "%d/%d ok %5.0fpiv %6.3fs"
            opt nseeds piv time
          ^ if stall > 0 then Printf.sprintf " (%d stall)" stall else ""
        in
        let revised = cell "revised" and dense = cell "dense" and seed = cell "seed" in
        Printf.printf
          "  %4d | %22s | %22s | %22s | %d/%d rational, %.3fs avg, %d factz / %d eta%s\n" n
          (pp revised) (pp dense) (pp seed) !rational nseeds
          (!certified_time /. float_of_int nseeds)
          !cert_factz !cert_etaups
          (match agreement with
          | None -> ""
          | Some (agree, _, w) ->
            Printf.sprintf ", exact %s %.1fs" (if agree then "agrees" else "DISAGREES") w);
        ( n,
          revised,
          dense,
          seed,
          (!rev_factz, !rev_etaups, !rev_refz),
          (!rational, !certified_time /. float_of_int nseeds, !cert_factz, !cert_etaups,
           !cert_refz),
          agreement ))
      sizes
  in
  (* Scaling sweep: sizes where only the revised path is viable.  The
     dense core gets a fixed pivot budget so its failure to finish is a
     measured stall, not an unbounded wait. *)
  let big_sizes =
    if !quick then [ lp_scaling_regress_n ] else [ lp_scaling_regress_n; 500; 1000; 2000 ]
  in
  let dense_budget = 300 in
  Printf.printf "  scaling (seed 1): revised path vs budget-capped dense tableau\n";
  let scaling =
    List.map
      (fun n ->
        match lp_instance ~n ~seed:1 with
        | None -> failwith "scaling instance standardization failed"
        | Some std ->
          let d, rev_wall = lp_revised_run std in
          let t0 = Unix.gettimeofday () in
          let dd =
            FS.solve_dense_detailed ~a:(FSp.to_dense std.Std.a) ~b:std.Std.b ~c:std.Std.c
              ~iter_budget:dense_budget ()
          in
          let dense_wall = Unix.gettimeofday () -. t0 in
          Printf.printf
            "  %4d | revised %s %5dpiv %7.3fs (%d factz, %d eta, %d refz) | \
             dense[%d-pivot cap] %s %7.3fs\n"
            n (outcome_name d.FS.outcome) d.FS.iterations rev_wall d.FS.factorizations
            d.FS.eta_updates d.FS.refactorizations dense_budget
            (outcome_name dd.FS.outcome)
            dense_wall;
          (n, d, rev_wall, dd, dense_wall))
      big_sizes
  in
  let json = "BENCH_lp.json" in
  let oc = open_out json in
  let arm_json (opt, stall, piv, time) =
    Printf.sprintf
      "{ \"optimal\": %d, \"stalled\": %d, \"mean_pivots\": %.1f, \"mean_wall_s\": %.6f }" opt
      stall piv time
  in
  let regress_rows =
    List.filter_map
      (fun n ->
        match Hashtbl.find_opt regress_acc n with
        | None -> None
        | Some (opt, piv) ->
          Some
            (Printf.sprintf "      { \"n\": %d, \"optimal\": %d, \"mean_pivots\": %.1f }" n
               opt
               (float_of_int piv /. float_of_int (List.length lp_regress_seeds))))
      lp_regress_sizes
  in
  let regress_scaling =
    match scaling with
    | (n, d, _, _, _) :: _ ->
      Printf.sprintf "{ \"n\": %d, \"optimal\": %b, \"pivots\": %d }" n
        (match d.FS.outcome with FS.Optimal _ -> true | _ -> false)
        d.FS.iterations
    | [] -> "{}"
  in
  Printf.fprintf oc
    "{\n\
    \  \"instances\": { \"types\": 4, \"machines\": 8, \"application\": \"chain\", \"seeds\": %d },\n\
    \  \"arms\": [\"revised_sparse\", \"dense_tableau\", \"seed_bland_period_form\"],\n\
    \  \"rows\": [\n%s\n  ],\n\
    \  \"scaling\": [\n%s\n  ],\n\
    \  \"regress\": {\n\
    \    \"tolerances\": { \"mean_pivots_ratio\": 1.5, \"scaling_pivots_ratio\": 1.5 },\n\
    \    \"rows\": [\n%s\n    ],\n\
    \    \"scaling\": %s\n\
    \  }\n\
     }\n"
    nseeds
    (String.concat ",\n"
       (List.map
          (fun (n, revised, dense, seed, (factz, etaups, refz), cert, agreement) ->
            let rational, cert_time, cfactz, cetaups, crefz = cert in
            let agree_json =
              match agreement with
              | None -> "null"
              | Some (agree, exact_piv, wall) ->
                Printf.sprintf
                  "{ \"agree_rel1e9\": %b, \"exact_pivots\": %d, \"wall_s\": %.6f }" agree
                  exact_piv wall
            in
            Printf.sprintf
              "    { \"n\": %d,\n\
              \      \"revised_sparse\": %s,\n\
              \      \"revised_reuse\": { \"factorizations\": %d, \"eta_updates\": %d, \
               \"refactorizations\": %d },\n\
              \      \"dense_tableau\": %s,\n\
              \      \"seed_bland_period_form\": %s,\n\
              \      \"certified\": { \"rational_fallbacks\": %d, \"mean_wall_s\": %.6f, \
               \"factorizations\": %d, \"eta_updates\": %d, \"refactorizations\": %d },\n\
              \      \"exact_warm_seed1\": %s }"
              n (arm_json revised) factz etaups refz (arm_json dense) (arm_json seed)
              rational cert_time cfactz cetaups crefz agree_json)
          rows))
    (String.concat ",\n"
       (List.map
          (fun (n, d, rev_wall, dd, dense_wall) ->
            Printf.sprintf
              "    { \"n\": %d,\n\
              \      \"revised\": { \"outcome\": \"%s\", \"pivots\": %d, \"wall_s\": %.6f,\n\
              \                   \"factorizations\": %d, \"eta_updates\": %d, \
               \"refactorizations\": %d },\n\
              \      \"exact_warm\": { \"skipped\": true, \"reason\": \"bigint pivot \
               cost grows ~n^3 in digit count; rel-1e-9 agreement is certified on the \
               rows tier (exact_warm_seed1)\" },\n\
              \      \"dense\": { \"iter_budget\": %d, \"outcome\": \"%s\", \"wall_s\": \
               %.6f } }"
              n
              (outcome_name d.FS.outcome)
              d.FS.iterations rev_wall d.FS.factorizations d.FS.eta_updates
              d.FS.refactorizations dense_budget
              (outcome_name dd.FS.outcome)
              dense_wall)
          scaling))
    (String.concat ",\n" regress_rows)
    regress_scaling;
  close_out oc;
  Printf.printf "  (machine-readable copy written to %s)\n" json

(* ------------------------------------------------------------------ *)
(* Regression gate: --regress / make bench-regress                      *)
(* ------------------------------------------------------------------ *)

(* [--regress] re-runs the quick-tier reference measurements (the exact
   runs the "regress" sections of BENCH_lp.json and BENCH_exact.json were
   recorded from) and fails when the fresh numbers degrade past the
   committed tolerances.  No JSON library ships with the toolchain, so
   the committed files are scanned textually — safe because this bench
   emits both sections itself with a fixed shape, and the helpers below
   only rely on balanced braces and ["key": value] pairs. *)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* Position just after the ':' of the first ["key":] at or after [from].
   @raise Not_found when the key is absent. *)
let find_key s key from =
  let pat = "\"" ^ key ^ "\"" in
  let plen = String.length pat in
  let rec go i =
    if i + plen > String.length s then raise Not_found
    else if String.sub s i plen = pat then String.index_from s (i + plen) ':' + 1
    else go (i + 1)
  in
  go from

(* The balanced {...} starting at the first '{' at or after [from]. *)
let balanced s from =
  let start = String.index_from s from '{' in
  let rec go j depth =
    match s.[j] with
    | '{' -> go (j + 1) (depth + 1)
    | '}' -> if depth = 1 then j else go (j + 1) (depth - 1)
    | _ -> go (j + 1) depth
  in
  let stop = go start 0 in
  String.sub s start (stop - start + 1)

let sub_object s key = balanced s (find_key s key 0)

(* Raw scalar token after ["key":], up to the next separator. *)
let scalar_field s key =
  let start = find_key s key 0 in
  let stop = ref start in
  while
    !stop < String.length s
    && not (match s.[!stop] with ',' | '}' | ']' | '\n' -> true | _ -> false)
  do
    incr stop
  done;
  String.trim (String.sub s start (!stop - start))

let num_field s key = float_of_string (scalar_field s key)
let bool_field s key = bool_of_string (scalar_field s key)

(* The top-level {...} objects of the [...] array following ["key":]. *)
let array_objects s key =
  let lb = String.index_from s (find_key s key 0) '[' in
  let rec close j depth =
    match s.[j] with
    | '[' -> close (j + 1) (depth + 1)
    | ']' -> if depth = 1 then j else close (j + 1) (depth - 1)
    | '{' ->
      (* skip whole objects: they may contain nested arrays *)
      let o = balanced s j in
      close (j + String.length o) depth
    | _ -> close (j + 1) depth
  in
  let rb = close lb 0 in
  let res = ref [] and i = ref lb in
  while !i < rb do
    if s.[!i] = '{' then begin
      let o = balanced s !i in
      res := o :: !res;
      i := !i + String.length o
    end
    else incr i
  done;
  List.rev !res

let regress_failures = ref 0

let regress_check what ok detail =
  Printf.printf "  %-62s %s\n" what (if ok then "ok" else "FAIL (" ^ detail ^ ")");
  if not ok then incr regress_failures

let regress_lp () =
  let module FS = Mf_lp.Simplex.Float_solver in
  match try Some (read_file "BENCH_lp.json") with Sys_error _ -> None with
  | None -> regress_check "BENCH_lp.json present" false "missing"
  | Some s ->
  match try Some (sub_object s "regress") with Not_found -> None with
  | None -> regress_check "BENCH_lp.json has a regress section" false "missing"
  | Some reg ->
    let tol = sub_object reg "tolerances" in
    let piv_ratio = num_field tol "mean_pivots_ratio" in
    let scaling_ratio = num_field tol "scaling_pivots_ratio" in
    List.iter
      (fun row ->
        let n = int_of_float (num_field row "n") in
        let ref_opt = int_of_float (num_field row "optimal") in
        let ref_piv = num_field row "mean_pivots" in
        let opt = ref 0 and piv = ref 0 in
        List.iter
          (fun seed ->
            match lp_instance ~n ~seed with
            | None -> ()
            | Some std ->
              let d, _ = lp_revised_run std in
              (match d.FS.outcome with FS.Optimal _ -> incr opt | _ -> ());
              piv := !piv + d.FS.iterations)
          lp_regress_seeds;
        let mean = float_of_int !piv /. float_of_int (List.length lp_regress_seeds) in
        regress_check
          (Printf.sprintf "lp n=%d: revised optimal on %d/%d seeds" n !opt
             (List.length lp_regress_seeds))
          (!opt >= ref_opt)
          (Printf.sprintf "reference closed %d" ref_opt);
        regress_check
          (Printf.sprintf "lp n=%d: mean pivots %.1f within %.2fx of %.1f" n mean piv_ratio
             ref_piv)
          (mean <= (ref_piv *. piv_ratio) +. 0.5)
          "pivot regression")
      (array_objects reg "rows");
    let sc = sub_object reg "scaling" in
    if String.length (String.trim sc) > 2 then begin
      let n = int_of_float (num_field sc "n") in
      let ref_opt = bool_field sc "optimal" in
      let ref_piv = num_field sc "pivots" in
      match lp_instance ~n ~seed:1 with
      | None -> regress_check (Printf.sprintf "lp scaling n=%d builds" n) false "standardize"
      | Some std ->
        let d, _ = lp_revised_run std in
        let opt = match d.FS.outcome with FS.Optimal _ -> true | _ -> false in
        regress_check
          (Printf.sprintf "lp scaling n=%d: revised optimal" n)
          (opt || not ref_opt) "outcome regression";
        regress_check
          (Printf.sprintf "lp scaling n=%d: pivots %d within %.2fx of %.0f" n d.FS.iterations
             scaling_ratio ref_piv)
          (float_of_int d.FS.iterations <= (ref_piv *. scaling_ratio) +. 0.5)
          "pivot regression"
    end

let regress_exact () =
  let module Dfs = Mf_exact.Dfs in
  match try Some (read_file "BENCH_exact.json") with Sys_error _ -> None with
  | None -> regress_check "BENCH_exact.json present" false "missing"
  | Some s ->
  match try Some (sub_object s "regress") with Not_found -> None with
  | None -> regress_check "BENCH_exact.json has a regress section" false "missing"
  | Some reg ->
    let budget = int_of_float (num_field reg "budget") in
    let tol = sub_object reg "tolerances" in
    let nodes_ratio = num_field tol "nodes_ratio" in
    let solves_ratio = num_field tol "lp_solves_ratio" in
    List.iter
      (fun row ->
        let n = int_of_float (num_field row "n") in
        let ref_nodes = num_field row "nodes" in
        let ref_solves = num_field row "lp_solves" in
        let ref_opt = bool_field row "optimal" in
        let r, _ = exact_lp_run ~budget n in
        regress_check
          (Printf.sprintf "exact n=%d: LP-bound search closes" n)
          (r.Dfs.optimal || not ref_opt) "no longer optimal";
        regress_check
          (Printf.sprintf "exact n=%d: nodes %d within %.2fx of %.0f" n r.Dfs.nodes
             nodes_ratio ref_nodes)
          (float_of_int r.Dfs.nodes <= (ref_nodes *. nodes_ratio) +. 0.5)
          "node regression";
        regress_check
          (Printf.sprintf "exact n=%d: lp_solves %d within %.2fx of %.0f" n
             r.Dfs.stats.Dfs.lp_solves solves_ratio ref_solves)
          (float_of_int r.Dfs.stats.Dfs.lp_solves <= (ref_solves *. solves_ratio) +. 0.5)
          "lp-solve regression")
      (array_objects reg "rows")

(* ------------------------------------------------------------------ *)
(* Dynamic simulation: breakdowns, repairs, online re-mapping           *)
(* ------------------------------------------------------------------ *)

(* Scenario shared by the bench and the [--regress] check: a balanced
   single-type chain — 56 tasks, w = 100 ms everywhere, f = 0, 8
   machines, 7 tasks per machine, period 700 ms — where only machine 0
   breaks down (mtbf 48 periods of busy time, mttr 16 periods, one
   repair crew), for a steady-state availability of 48/(48+16) = 0.75.
   Left static the chain stalls whenever machine 0 is down, so the
   normalized throughput x = tp*p tends to the availability; the online
   re-mapper parks the 7 stranded tasks one on each survivor (8 per
   machine, period 800 ms) and restores the designed mapping after the
   repair, so the line keeps 7/8 of its speed through every outage and
   the recovered fraction of the availability gap

     recovery = (x_remap - a) / (1 - a)

   sits near 7/8, minus re-map latency and commit races.  The
   acceptance gate, re-run by [--regress] against the committed
   BENCH_dynamic.json, is recovery >= 0.8 at the quick-tier settings. *)

let dynamic_regress_seeds = [ 1; 2; 3 ]
let dynamic_regress_horizon = 4096.0 (* periods *)
let dynamic_min_recovery = 0.8

let dynamic_scenario () =
  let module Instance = Mf_core.Instance in
  let module Workflow = Mf_core.Workflow in
  let module Mapping = Mf_core.Mapping in
  let module Breakdown = Mf_sim.Breakdown in
  let n = 56 and m = 8 in
  let inst =
    Instance.create
      ~workflow:(Workflow.chain ~types:(Array.make n 0))
      ~machines:m
      ~w:(Array.make_matrix n m 100.0)
      ~f:(Array.make_matrix n m 0.0)
  in
  let mp = Mapping.of_array inst (Array.init n (fun i -> i mod m)) in
  let p = Period.period inst mp in
  let laws =
    Array.init m (fun u ->
        if u = 0 then { Breakdown.mtbf = 48.0 *. p; mttr = 16.0 *. p; wear = 0.0 }
        else Breakdown.immortal)
  in
  (inst, mp, p, Breakdown.make ~crews:1 laws)

(* Normalized throughputs x = tp*p of the do-nothing and re-mapped arms
   on one breakdown realization (plus the re-mapped raw result). *)
let dynamic_pair (inst, mp, p, bd) ~horizon_periods ~seed =
  let horizon = p *. horizon_periods in
  let x (r : Mf_sim.Desim.result) =
    p *. float_of_int r.Mf_sim.Desim.outputs /. r.Mf_sim.Desim.window
  in
  let st = Mf_sim.Desim.run ~breakdowns:bd ~horizon ~seed inst mp in
  let rm = Mf_remap.Online.simulate ~breakdowns:bd ~horizon ~seed inst mp in
  (x st, x rm, rm)

let dynamic_recovery ~avail remap_x = (remap_x -. avail) /. (1.0 -. avail)

let bench_dynamic () =
  section "Dynamic simulation: breakdowns and the online re-mapper";
  let module Breakdown = Mf_sim.Breakdown in
  let ((inst, mp, p, bd) as sc) = dynamic_scenario () in
  let avail = Breakdown.availability bd.Breakdown.laws.(0) in
  let seeds = if !quick then dynamic_regress_seeds else [ 1; 2; 3; 4; 5 ] in
  let horizon_periods = if !quick then dynamic_regress_horizon else 8192.0 in
  let mode = if !quick then "quick" else "full" in
  Printf.printf
    "  chain n=%d on m=%d machines (balanced, period %.0f ms); machine 0: mtbf 48p, mttr \
     16p, 1 crew, availability %.2f\n\
    \  horizon %.0f periods, %d seeds, x = tp*p (1.0 = failure-free speed)\n"
    (Mf_core.Instance.task_count inst)
    (Mf_core.Instance.machines inst)
    p avail horizon_periods (List.length seeds);
  let rows =
    List.map
      (fun seed ->
        let sx, rx, rr = dynamic_pair sc ~horizon_periods ~seed in
        let rc = dynamic_recovery ~avail rx in
        Printf.printf "  seed %d: static x %.4f, remap x %.4f, recovery %.3f, %d re-maps\n"
          seed sx rx rc rr.Mf_sim.Desim.remaps;
        (seed, sx, rx, rc))
      seeds
  in
  let mean f =
    List.fold_left (fun acc r -> acc +. f r) 0.0 rows /. float_of_int (List.length rows)
  in
  let static_mean = mean (fun (_, sx, _, _) -> sx) in
  let remap_mean = mean (fun (_, _, rx, _) -> rx) in
  let recovery_mean = mean (fun (_, _, _, rc) -> rc) in
  let adjusted_x = p *. Mf_sim.Metrics.adjusted_throughput inst mp bd in
  (* Bit-identical replay: the same seed must reproduce the same run. *)
  let replay_identical =
    let seed = List.hd seeds in
    let horizon = p *. dynamic_regress_horizon in
    let a = Mf_remap.Online.simulate ~breakdowns:bd ~horizon ~seed inst mp in
    let b = Mf_remap.Online.simulate ~breakdowns:bd ~horizon ~seed inst mp in
    a.Mf_sim.Desim.outputs = b.Mf_sim.Desim.outputs
    && a.Mf_sim.Desim.remaps = b.Mf_sim.Desim.remaps
    && a.Mf_sim.Desim.final_mapping = b.Mf_sim.Desim.final_mapping
    && a.Mf_sim.Desim.busy = b.Mf_sim.Desim.busy
  in
  let gate_ok = recovery_mean >= dynamic_min_recovery in
  Printf.printf
    "  mean: static x %.4f, remap x %.4f, static analytic bound %.4f\n\
    \  recovery of the availability gap: %.3f (gate >= %.2f: %s)\n\
    \  replay bit-identical: %b\n"
    static_mean remap_mean adjusted_x recovery_mean dynamic_min_recovery
    (if gate_ok then "ok" else "FAIL")
    replay_identical;
  (* The regress reference is always recorded at the quick-tier settings,
     whatever tier the headline numbers above were measured at. *)
  let regress_rows =
    if !quick then rows
    else
      List.map
        (fun seed ->
          let sx, rx, _ = dynamic_pair sc ~horizon_periods:dynamic_regress_horizon ~seed in
          (seed, sx, rx, dynamic_recovery ~avail rx))
        dynamic_regress_seeds
  in
  let row_json (seed, sx, rx, rc) =
    Printf.sprintf "      { \"seed\": %d, \"static_x\": %.6f, \"remap_x\": %.6f, \"recovery\": %.4f }"
      seed sx rx rc
  in
  let json = "BENCH_dynamic.json" in
  let oc = open_out json in
  Printf.fprintf oc
    "{\n\
    \  \"workload\": { \"tasks\": %d, \"types\": 1, \"machines\": %d, \"application\": \
     \"chain\",\n\
    \                \"w_ms\": 100, \"period_ms\": %.1f,\n\
    \                \"breakdowns\": { \"machine\": 0, \"mtbf_periods\": 48, \
     \"mttr_periods\": 16, \"wear\": 0, \"crews\": 1 } },\n\
    \  \"mode\": \"%s\",\n\
    \  \"note\": \"x = tp*p, throughput normalized by the failure-free period; static \
     leaves the mapping alone through outages, remap runs the online re-mapper; recovery \
     = (x_remap - availability) / (1 - availability), the fraction of the availability \
     gap the re-mapper wins back\",\n\
    \  \"horizon_periods\": %.0f,\n\
    \  \"availability\": %.4f,\n\
    \  \"normalized_throughput\": { \"static\": %.6f, \"remap\": %.6f, \
     \"adjusted_bound\": %.6f },\n\
    \  \"recovery\": { \"mean\": %.4f, \"min_required\": %.2f, \"pass\": %b },\n\
    \  \"replay_identical\": %b,\n\
    \  \"rows\": [\n%s\n  ],\n\
    \  \"regress\": {\n\
    \    \"horizon_periods\": %.0f,\n\
    \    \"adjusted_bound\": %.6f,\n\
    \    \"tolerances\": { \"x_abs\": 0.02, \"adjusted_abs\": 0.000001, \"min_recovery\": \
     %.2f },\n\
    \    \"rows\": [\n%s\n    ]\n\
    \  }\n\
     }\n"
    (Mf_core.Instance.task_count inst)
    (Mf_core.Instance.machines inst)
    p mode horizon_periods avail static_mean remap_mean adjusted_x recovery_mean
    dynamic_min_recovery gate_ok replay_identical
    (String.concat ",\n" (List.map row_json rows))
    dynamic_regress_horizon adjusted_x dynamic_min_recovery
    (String.concat ",\n" (List.map row_json regress_rows));
  close_out oc;
  Printf.printf "  (machine-readable copy written to %s)\n" json

let regress_dynamic () =
  match try Some (read_file "BENCH_dynamic.json") with Sys_error _ -> None with
  | None -> regress_check "BENCH_dynamic.json present" false "missing"
  | Some s -> (
    match try Some (sub_object s "regress") with Not_found -> None with
    | None -> regress_check "BENCH_dynamic.json has a regress section" false "missing"
    | Some reg ->
      let tol = sub_object reg "tolerances" in
      let x_abs = num_field tol "x_abs" in
      let adjusted_abs = num_field tol "adjusted_abs" in
      let min_recovery = num_field tol "min_recovery" in
      let horizon_periods = num_field reg "horizon_periods" in
      let ref_adjusted = num_field reg "adjusted_bound" in
      let ((inst, mp, p, bd) as sc) = dynamic_scenario () in
      let avail = Mf_sim.Breakdown.availability bd.Mf_sim.Breakdown.laws.(0) in
      let adjusted = p *. Mf_sim.Metrics.adjusted_throughput inst mp bd in
      regress_check
        (Printf.sprintf "dynamic: analytic bound %.6f matches committed %.6f" adjusted
           ref_adjusted)
        (Float.abs (adjusted -. ref_adjusted) <= adjusted_abs)
        "analytic drift";
      let recoveries = ref [] in
      List.iter
        (fun row ->
          let seed = int_of_float (num_field row "seed") in
          let ref_static = num_field row "static_x" in
          let ref_remap = num_field row "remap_x" in
          let sx, rx, _ = dynamic_pair sc ~horizon_periods ~seed in
          recoveries := dynamic_recovery ~avail rx :: !recoveries;
          regress_check
            (Printf.sprintf "dynamic seed %d: static x %.4f within %.2f of %.4f" seed sx
               x_abs ref_static)
            (Float.abs (sx -. ref_static) <= x_abs)
            "static-arm drift";
          regress_check
            (Printf.sprintf "dynamic seed %d: remap x %.4f within %.2f of %.4f" seed rx
               x_abs ref_remap)
            (Float.abs (rx -. ref_remap) <= x_abs)
            "remap-arm drift")
        (array_objects reg "rows");
      let mean =
        List.fold_left ( +. ) 0.0 !recoveries
        /. float_of_int (max 1 (List.length !recoveries))
      in
      regress_check
        (Printf.sprintf "dynamic: mean recovery %.3f >= %.2f" mean min_recovery)
        (mean >= min_recovery) "re-mapper recovers too little of the gap")

let run_regress () =
  section "Regression gate: fresh quick-tier runs vs committed BENCH_*.json";
  regress_lp ();
  regress_exact ();
  regress_dynamic ();
  if !regress_failures = 0 then Printf.printf "  bench-regress: all checks passed\n"
  else begin
    Printf.printf "  bench-regress: %d check(s) FAILED\n" !regress_failures;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Unified solver: portfolio throughput under a near-duplicate storm    *)
(* ------------------------------------------------------------------ *)

let bench_solve () =
  section "Unified solver: portfolio + canonical answer cache";
  let module Instance = Mf_core.Instance in
  let module Workflow = Mf_core.Workflow in
  let module Mapping = Mf_core.Mapping in
  let module Solver = Mf_solve.Solver in
  let module Portfolio = Mf_solve.Portfolio in
  let module Cache = Mf_solve.Cache in
  let bases = if !quick then 4 else 8 in
  let variants = if !quick then 4 else 8 in
  let passes = 2 in
  (* Variant k of an instance: machines rotated by k, type labels rotated
     by k — a near-duplicate that canonicalizes to the same key. *)
  let variant k inst =
    let n = Instance.task_count inst in
    let m = Instance.machines inst in
    let p = Instance.type_count inst in
    let wf = Instance.workflow inst in
    let perm u = (u + k) mod m in
    let w = Array.init n (fun i -> Array.init m (fun u -> Instance.w inst i (perm u))) in
    let f = Array.init n (fun i -> Array.init m (fun u -> Instance.f inst i (perm u))) in
    let types = Array.init n (fun i -> (Workflow.ttype wf i + k) mod p) in
    let successor = Array.init n (Workflow.successor wf) in
    Instance.create ~workflow:(Workflow.in_forest ~types ~successor) ~machines:m ~w ~f
  in
  let base b = Gen.chain (Rng.create (1000 + b)) (Gen.default ~tasks:12 ~types:3 ~machines:6) in
  let requests =
    (* interleave: pass over all bases for each variant index, so hits do
       not trivially follow their miss back-to-back *)
    List.concat_map
      (fun _pass ->
        List.concat_map
          (fun k -> List.init bases (fun b -> variant k (base b)))
          (List.init variants Fun.id))
      (List.init passes Fun.id)
  in
  let budget = Solver.Nodes 200_000 in
  let cache = Cache.create () in
  let latencies = ref [] in
  let t_all0 = Unix.gettimeofday () in
  let outcomes =
    List.map
      (fun inst ->
        let t0 = Unix.gettimeofday () in
        let out = Portfolio.solve ~cache (Solver.request_exn ~budget inst) in
        latencies := (Unix.gettimeofday () -. t0) :: !latencies;
        (inst, out))
      requests
  in
  let wall = Unix.gettimeofday () -. t_all0 in
  let total = List.length requests in
  let stats = Cache.stats cache in
  let solves_per_s = float_of_int total /. wall in
  let lat = Array.of_list !latencies in
  Array.sort compare lat;
  let percentile q =
    lat.(min (Array.length lat - 1) (int_of_float (ceil (q *. float_of_int (Array.length lat - 1)))))
  in
  let p50 = percentile 0.50 and p99 = percentile 0.99 in
  let hit_rate = Cache.hit_rate cache in
  (* Bit-identity: every cached answer must equal a fresh no-cache solve
     of the same (near-duplicate) instance, bit for bit. *)
  let identical = ref 0 in
  let sampled =
    List.filteri (fun i _ -> i mod 7 = 0) (List.filter (fun (_, o) -> o.Solver.stats.Solver.cache_hit) outcomes)
  in
  List.iter
    (fun (inst, (cached : Solver.outcome)) ->
      let fresh = Portfolio.solve (Solver.request_exn ~budget inst) in
      let same_mapping =
        match (cached.Solver.mapping, fresh.Solver.mapping) with
        | Some a, Some b -> Mapping.to_array a = Mapping.to_array b
        | None, None -> true
        | _ -> false
      in
      if
        same_mapping
        && cached.Solver.status = fresh.Solver.status
        && cached.Solver.period = fresh.Solver.period
        && cached.Solver.lower_bound = fresh.Solver.lower_bound
      then incr identical
      else
        Printf.printf "  BIT-IDENTITY VIOLATION: cached answer differs from fresh solve\n")
    sampled;
  Printf.printf
    "  %d requests (%d bases x %d variants x %d passes): %.0f solves/s\n\
    \  latency p50 %.3f ms, p99 %.3f ms\n\
    \  cache: %d hits / %d lookups (%.1f%% hit rate), %d entries\n\
    \  bit-identity vs fresh solve: %d/%d sampled cache hits identical\n"
    total bases variants passes solves_per_s (1000.0 *. p50) (1000.0 *. p99) stats.Cache.hits
    (stats.Cache.hits + stats.Cache.misses)
    (100.0 *. hit_rate) stats.Cache.length !identical (List.length sampled);
  let json = "BENCH_solve.json" in
  let oc = open_out json in
  Printf.fprintf oc
    "{\n\
    \  \"workload\": { \"bases\": %d, \"variants\": %d, \"passes\": %d,\n\
    \                \"instance\": { \"tasks\": 12, \"types\": 3, \"machines\": 6, \
     \"application\": \"chain\" },\n\
    \                \"node_budget\": 200000 },\n\
    \  \"requests\": %d,\n\
    \  \"solves_per_s\": %.1f,\n\
    \  \"latency_ms\": { \"p50\": %.4f, \"p99\": %.4f },\n\
    \  \"cache\": { \"hits\": %d, \"misses\": %d, \"evictions\": %d, \"hit_rate\": %.4f },\n\
    \  \"bit_identity\": { \"sampled\": %d, \"identical\": %d }\n\
     }\n"
    bases variants passes total solves_per_s (1000.0 *. p50) (1000.0 *. p99) stats.Cache.hits
    stats.Cache.misses stats.Cache.evictions hit_rate (List.length sampled) !identical;
  close_out oc;
  Printf.printf "  (machine-readable copy written to %s)\n" json

(* ------------------------------------------------------------------ *)
(* Daemon: concurrent wire clients against a live scheduler             *)
(* ------------------------------------------------------------------ *)

let bench_daemon () =
  section "Solver daemon: concurrent clients over socketpairs";
  let module Solver = Mf_solve.Solver in
  let module Server = Mf_daemon.Server in
  let module Protocol = Mf_daemon.Protocol in
  let clients = if !quick then 4 else 8 in
  let per_client = if !quick then 4 else 8 in
  let bases = 4 in
  (* the storm repeats a few base instances, so the shared cross-request
     cache sees both cold misses and concurrent hits *)
  let base b = Gen.chain (Rng.create (2000 + b)) (Gen.default ~tasks:10 ~types:3 ~machines:5) in
  let budget = Mf_solve.Solver.Nodes 50_000 in
  let srv = Server.create ~config:{ Server.jobs = 1; cache_capacity = 1024; workers = 4 } () in
  let total = clients * per_client in
  let latencies = Array.make total 0.0 in
  let hits = Array.make total false in
  let t_all0 = Unix.gettimeofday () in
  let run_client c =
    let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let reader =
      Thread.create
        (fun () ->
          let ic = Unix.in_channel_of_descr a in
          let oc = Unix.out_channel_of_descr a in
          (try Server.serve_client srv ic oc with Sys_error _ | End_of_file -> ());
          try Unix.close a with Unix.Unix_error _ -> ())
        ()
    in
    let ic = Unix.in_channel_of_descr b in
    let oc = Unix.out_channel_of_descr b in
    for r = 0 to per_client - 1 do
      let req = Solver.request_exn ~budget (base ((c + r) mod bases)) in
      let id = Printf.sprintf "c%dr%d" c r in
      let t0 = Unix.gettimeofday () in
      output_string oc (Protocol.render_solve ~id req);
      flush oc;
      let line = input_line ic in
      latencies.((c * per_client) + r) <- Unix.gettimeofday () -. t0;
      (* mask_cached rewrites cached=1 lines, so inequality = cache hit *)
      hits.((c * per_client) + r) <- Protocol.mask_cached line <> line
    done;
    (try Unix.close b with Unix.Unix_error _ -> ());
    Thread.join reader
  in
  let threads = List.init clients (fun c -> Thread.create run_client c) in
  List.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. t_all0 in
  Printf.printf "  %s\n" (Server.stats_line srv);
  let devnull = open_out "/dev/null" in
  Server.shutdown srv devnull;
  close_out devnull;
  Array.sort compare latencies;
  let percentile q =
    latencies.(min (total - 1) (int_of_float (ceil (q *. float_of_int (total - 1)))))
  in
  let p50 = percentile 0.50 and p99 = percentile 0.99 in
  let hit_count = Array.fold_left (fun acc h -> if h then acc + 1 else acc) 0 hits in
  let rps = float_of_int total /. wall in
  Printf.printf
    "  %d requests (%d clients x %d each): %.0f responses/s\n\
    \  wire latency p50 %.3f ms, p99 %.3f ms\n\
    \  shared cache: %d/%d responses served from cache\n"
    total clients per_client rps (1000.0 *. p50) (1000.0 *. p99) hit_count total;
  let json = "BENCH_daemon.json" in
  let oc = open_out json in
  Printf.fprintf oc
    "{\n\
    \  \"workload\": { \"clients\": %d, \"requests_per_client\": %d, \"bases\": %d,\n\
    \                \"instance\": { \"tasks\": 10, \"types\": 3, \"machines\": 5, \
     \"application\": \"chain\" },\n\
    \                \"node_budget\": 50000, \"workers\": 4 },\n\
    \  \"requests\": %d,\n\
    \  \"responses_per_s\": %.1f,\n\
    \  \"wire_latency_ms\": { \"p50\": %.4f, \"p99\": %.4f },\n\
    \  \"cache\": { \"hits\": %d, \"misses\": %d, \"hit_rate\": %.4f }\n\
     }\n"
    clients per_client bases total rps (1000.0 *. p50) (1000.0 *. p99) hit_count
    (total - hit_count)
    (float_of_int hit_count /. float_of_int total);
  close_out oc;
  Printf.printf "  (machine-readable copy written to %s)\n" json

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                            *)
(* ------------------------------------------------------------------ *)

let micro_benchmarks () =
  section "Micro-benchmarks (bechamel, monotonic clock)";
  let open Bechamel in
  let instance_fig5 =
    Gen.chain (Rng.create 42) (Gen.default ~tasks:100 ~types:5 ~machines:50)
  in
  let instance_fig9 =
    Gen.chain (Rng.create 43)
      { (Gen.default ~tasks:100 ~types:20 ~machines:100) with Gen.task_attached_failures = true }
  in
  let instance_small = Gen.chain (Rng.create 44) (Gen.default ~tasks:10 ~types:2 ~machines:5) in
  let instance_mip = Gen.chain (Rng.create 45) (Gen.default ~tasks:4 ~types:2 ~machines:3) in
  let mapping_fig5 = Registry.solve Registry.H4w instance_fig5 in
  let big = Mf_numeric.Bigint.of_string (String.make 200 '7') in
  let heuristic_test h =
    Test.make
      ~name:(Printf.sprintf "fig5-kernel/%s" (Registry.name h))
      (Staged.stage (fun () -> ignore (Registry.solve h instance_fig5)))
  in
  let tests =
    List.map heuristic_test Registry.all
    @ [
        Test.make ~name:"fig9-kernel/OtO-bottleneck"
          (Staged.stage (fun () -> ignore (Mf_exact.Oto.bottleneck instance_fig9)));
        Test.make ~name:"fig10-kernel/exact-dfs-n10"
          (Staged.stage (fun () -> ignore (Mf_exact.Dfs.specialized instance_small)));
        Test.make ~name:"mip/build+relaxation-n4"
          (Staged.stage (fun () ->
               let model, _ = Mf_lp.Micro_mip.build instance_mip in
               ignore (Mf_lp.Mip.solve_relaxation model)));
        Test.make ~name:"splitting/lp-n10-m5"
          (Staged.stage (fun () -> ignore (Mf_lp.Splitting.solve instance_small)));
        Test.make ~name:"core/period-eval-n100"
          (Staged.stage (fun () -> ignore (Period.period instance_fig5 mapping_fig5)));
        Test.make ~name:"sim/desim-1e5ms"
          (Staged.stage (fun () ->
               ignore
                 (Mf_sim.Desim.run ~warmup:1.0e4 ~horizon:1.0e5 ~seed:1 instance_small
                    (Registry.solve Registry.H4w instance_small))));
        Test.make ~name:"proptest/instance-gen-tree"
          (Staged.stage
             (let gen =
                Mf_proptest.Instances.instance ~max_tasks:8 ~max_machines:4 ()
              in
              fun () ->
                ignore
                  (Mf_proptest.Tree.root
                     (Mf_proptest.Gen.run gen (Mf_prng.Rng.create 7)))));
        Test.make ~name:"proptest/oracle-eval-case"
          (Staged.stage
             (let eval_oracle = Option.get (Mf_proptest.Oracle.find "eval") in
              fun () ->
                ignore (Mf_proptest.Oracle.replay eval_oracle ~case_seed:123456)));
        Test.make ~name:"numeric/bigint-mul-200digits"
          (Staged.stage (fun () -> ignore (Mf_numeric.Bigint.mul big big)));
        Test.make ~name:"graph/hungarian-100x100"
          (Staged.stage
             (let cost =
                Array.init 100 (fun i ->
                    Array.init 100 (fun j -> float_of_int (((i * 31) + (j * 17)) mod 997)))
              in
              fun () -> ignore (Mf_graph.Hungarian.solve cost)));
      ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None () in
  let raw =
    Benchmark.all cfg
      [ Toolkit.Instance.monotonic_clock ]
      (Test.make_grouped ~name:"micro" tests)
  in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name res acc ->
        match Analyze.OLS.estimates res with
        | Some (ns :: _) -> (name, ns) :: acc
        | _ -> (name, nan) :: acc)
      results []
    |> List.sort compare
  in
  Printf.printf "  %-40s %15s\n" "kernel" "time/run";
  let pp_time ns =
    if ns >= 1e9 then Printf.sprintf "%8.2f s" (ns /. 1e9)
    else if ns >= 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
    else if ns >= 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
    else Printf.sprintf "%8.0f ns" ns
  in
  List.iter (fun (name, ns) -> Printf.printf "  %-40s %15s\n" name (pp_time ns)) rows

let () =
  parse_args ();
  if !regress then begin
    run_regress ();
    exit 0
  end;
  Printf.printf
    "Micro-factory throughput reproduction bench\n\
     Paper: Benoit, Dobrila, Nicod, Philippe - Throughput optimization for\n\
     micro-factories subject to task and machine failures (RR-7479, 2010)\n";
  reproduce_figures ();
  if not !skip_ablation then begin
    ablation_local_search ();
    ablation_splitting ();
    ablation_h2_interpretations ();
    ablation_reconfiguration ();
    simulator_validation ()
  end;
  if not !skip_eval then bench_eval ();
  if not !skip_parallel then bench_parallel ();
  if not !skip_exact then bench_exact ();
  if not !skip_lp then bench_lp ();
  if not !skip_solve then bench_solve ();
  if not !skip_daemon then bench_daemon ();
  if not !skip_dynamic then bench_dynamic ();
  if not !skip_micro then micro_benchmarks ();
  print_newline ()
