(* mfopt - command-line front-end for the micro-factory throughput
   optimization library.

   Sub-commands:
     generate    draw a random instance (paper parameters) to a file
     solve       run heuristics / exact solvers on an instance
     exact       branch-and-bound engine with full statistics
     simulate    discrete-event simulation of a mapping
     experiment  regenerate one of the paper's figures
     lp          LP bounds: divisible-workload relaxation and the MIP *)

open Cmdliner
module Instance = Mf_core.Instance
module Instance_io = Mf_core.Instance_io
module Mapping = Mf_core.Mapping
module Period = Mf_core.Period
module Products = Mf_core.Products
module Registry = Mf_heuristics.Registry
module Gen = Mf_workload.Gen
module Rng = Mf_prng.Rng

(* ------------------------------------------------------------------ *)
(* Shared arguments                                                     *)
(* ------------------------------------------------------------------ *)

let instance_arg =
  let doc = "Instance file (format of Instance_io; see $(b,mfopt generate))." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"INSTANCE" ~doc)

let seed_arg =
  let doc = "Random seed." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

let heuristic_conv =
  let parse s =
    match Registry.of_name s with
    | Some h -> Ok h
    | None -> Error (`Msg (Printf.sprintf "unknown heuristic %s (try H1..H4f)" s))
  in
  Arg.conv (parse, fun fmt h -> Format.pp_print_string fmt (Registry.name h))

(* ------------------------------------------------------------------ *)
(* generate                                                             *)
(* ------------------------------------------------------------------ *)

let generate_cmd =
  let tasks =
    Arg.(value & opt int 20 & info [ "n"; "tasks" ] ~docv:"N" ~doc:"Number of tasks.")
  in
  let types =
    Arg.(value & opt int 4 & info [ "p"; "types" ] ~docv:"P" ~doc:"Number of task types.")
  in
  let machines =
    Arg.(value & opt int 8 & info [ "m"; "machines" ] ~docv:"M" ~doc:"Number of machines.")
  in
  let high_failures =
    Arg.(
      value & flag
      & info [ "high-failures" ] ~doc:"Failure rates in [0,0.1) instead of [0.005,0.02).")
  in
  let task_attached =
    Arg.(
      value & flag
      & info [ "task-attached" ]
          ~doc:"Failures depend on the task only (f(i,u) = f_i), as in Section 7.2.")
  in
  let tree =
    Arg.(value & flag & info [ "tree" ] ~doc:"Random in-tree application instead of a chain.")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file (stdout by default).")
  in
  let run tasks types machines high_failures task_attached tree seed output =
    let params =
      let p = Gen.default ~tasks ~types ~machines in
      let p = if high_failures then Gen.with_high_failures p else p in
      { p with Gen.task_attached_failures = task_attached }
    in
    let rng = Rng.create seed in
    let inst = if tree then Gen.in_tree rng params else Gen.chain rng params in
    match output with
    | None -> print_string (Instance_io.to_string inst)
    | Some path ->
      Instance_io.write_file path inst;
      Printf.printf "wrote %s (n=%d, p=%d, m=%d)\n" path tasks types machines
  in
  let doc = "Draw a random instance with the paper's parameters." in
  Cmd.v
    (Cmd.info "generate" ~doc)
    Term.(
      const run $ tasks $ types $ machines $ high_failures $ task_attached $ tree $ seed_arg
      $ output)

(* ------------------------------------------------------------------ *)
(* solve                                                                *)
(* ------------------------------------------------------------------ *)

let print_solution inst label mp =
  let period = Period.period inst mp in
  Printf.printf "%-6s period %10.2f ms   throughput %.6f /ms   mapping " label period
    (Period.throughput inst mp);
  Array.iteri
    (fun i u -> Printf.printf "%sT%d:M%d" (if i > 0 then " " else "") i u)
    (Mapping.to_array mp);
  print_newline ()

let solve_cmd =
  let module Solver = Mf_solve.Solver in
  let engine =
    let engine_conv =
      Arg.enum
        [
          ("auto", `Auto);
          ("heuristics", `Heuristics);
          ("lp", `Lp);
          ("exact", `Exact);
          ("brute", `Brute);
        ]
    in
    Arg.(
      value & opt engine_conv `Auto
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:
            "Which engine to run: $(b,auto) (default: the anytime portfolio — heuristics, \
             then the certified LP bound, then exact search on the remaining budget), or a \
             single engine: $(b,heuristics), $(b,lp), $(b,exact), $(b,brute).")
  in
  let rule =
    let rule_conv =
      Arg.enum
        [
          ("specialized", Mapping.Specialized);
          ("general", Mapping.General);
          ("oto", Mapping.One_to_one);
        ]
    in
    Arg.(
      value & opt rule_conv Mapping.Specialized
      & info [ "rule" ] ~docv:"RULE"
          ~doc:"Mapping rule: specialized (default), general, or oto.")
  in
  let setup =
    Arg.(
      value & opt float 0.0
      & info [ "setup" ] ~docv:"MS"
          ~doc:
            "Reconfiguration time per type switch (general rule): a machine cycling through \
             k >= 2 task types pays k switches per period.")
  in
  let deadline =
    Arg.(
      value & opt (some float) None
      & info [ "deadline" ] ~docv:"MS"
          ~doc:
            "Work budget as a deadline, mapped deterministically onto engine budgets \
             (node-equivalents) — not a wall clock, so results replay exactly.")
  in
  let node_budget =
    Arg.(
      value & opt (some int) None
      & info [ "node-budget" ] ~docv:"NODES"
          ~doc:"Work budget in node-equivalents (exclusive with --deadline).")
  in
  let certificate =
    Arg.(
      value & flag
      & info [ "certificate" ]
          ~doc:
            "Demand a certified lower bound: the LP stage runs even when the budget says to \
             skip it, and gaps are reported against the certified bound.")
  in
  let x_out =
    Arg.(
      value & opt int 0
      & info [ "inputs-for" ] ~docv:"X"
          ~doc:"Also report the raw products needed to output X finished products.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Domains for the exact stage's root subtrees (process-wide shared pool; the \
             outcome is bit-identical for any N, only wall time changes).")
  in
  let run file engine rule setup deadline node_budget certificate x_out jobs seed =
    let inst = Instance_io.read_file file in
    Printf.printf "instance: n=%d p=%d m=%d\n" (Instance.task_count inst)
      (Instance.type_count inst) (Instance.machines inst);
    match (deadline, node_budget) with
    | Some _, Some _ ->
      prerr_endline "mfopt solve: --deadline and --node-budget are exclusive";
      exit 2
    | _ ->
      let budget =
        match (deadline, node_budget) with
        | Some d, _ -> Solver.Deadline_ms d
        | _, Some k -> Solver.Nodes k
        | None, None -> Solver.Unlimited
      in
      if jobs < 1 then begin
        prerr_endline "mfopt solve: --jobs must be at least 1";
        exit 2
      end;
      let req =
        match
          Solver.make_request ~rule ~seed ~budget ~want_certificate:certificate ~setup inst
        with
        | Ok req -> req
        | Error e ->
          Printf.eprintf "mfopt solve: %s\n" (Solver.describe_request_error e);
          exit 2
      in
      let pool =
        if jobs > 1 then Some (Mf_parallel.Pool.shared ~domains:jobs) else None
      in
      let out =
        match engine with
        | `Auto -> Mf_solve.Portfolio.solve ?pool req
        | `Heuristics -> Mf_solve.Engine.heuristics req
        | `Lp -> Mf_solve.Engine.lp req
        | `Exact -> Mf_solve.Engine.exact ?pool req
        | `Brute -> Mf_solve.Engine.brute req
      in
      (match out.Solver.mapping with
      | Some mp -> print_solution inst "best" mp
      | None -> ());
      Printf.printf "status: %s (%s rule%s)\n"
        (Solver.status_to_string out.Solver.status)
        (Mapping.rule_name rule)
        (if setup > 0.0 then Printf.sprintf ", %.0fms setup per type switch" setup else "");
      (match out.Solver.lower_bound with
      | Some lb -> Printf.printf "certified lower bound: %.2f ms\n" lb
      | None -> ());
      let s = out.Solver.stats in
      Printf.printf "engines: %s   work: %d heuristic runs, %d LP pivots (%s path), %d nodes\n"
        (match out.Solver.engines with
        | [] -> "none"
        | es -> String.concat " -> " (List.map Solver.engine_name es))
        s.Solver.heuristic_runs s.Solver.lp_pivots
        (Solver.lp_path_name s.Solver.lp_path)
        s.Solver.exact_nodes;
      if x_out > 0 then
        match out.Solver.mapping with
        | Some mp ->
          List.iter
            (fun (src, count) ->
              Printf.printf "feed %d raw products at source task T%d to output %d products\n"
                count src x_out)
            (Products.inputs_needed inst mp ~x_out)
        | None -> ()
  in
  let doc = "Solve an instance through the unified solver (portfolio or a single engine)." in
  Cmd.v
    (Cmd.info "solve" ~doc)
    Term.(
      const run $ instance_arg $ engine $ rule $ setup $ deadline $ node_budget $ certificate
      $ x_out $ jobs $ seed_arg)

(* ------------------------------------------------------------------ *)
(* exact                                                                *)
(* ------------------------------------------------------------------ *)

let exact_cmd =
  let rule =
    let rule_conv =
      Arg.enum
        [
          ("specialized", Mapping.Specialized);
          ("general", Mapping.General);
          ("oto", Mapping.One_to_one);
        ]
    in
    Arg.(
      value & opt rule_conv Mapping.Specialized
      & info [ "rule" ] ~docv:"RULE"
          ~doc:"Mapping rule: specialized (default), general, or oto.")
  in
  let setup =
    Arg.(
      value & opt float 0.0
      & info [ "setup" ] ~docv:"MS"
          ~doc:"Reconfiguration time per type switch (general rule only).")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains for the root subtrees (default 1).  Results - period, mapping, \
             node counts, every counter - are bit-identical for any value.")
  in
  let node_budget =
    Arg.(
      value & opt int 20_000_000
      & info [ "node-budget" ] ~docv:"N"
          ~doc:"Total node budget, redistributed over root subtrees (default 20000000).")
  in
  let no_dominance =
    Arg.(
      value & flag
      & info [ "no-dominance" ]
          ~doc:"Disable the dominance table (default: automatic, on when same-type tasks \
                share identical failure rows).")
  in
  let no_symmetry =
    Arg.(value & flag & info [ "no-symmetry" ] ~doc:"Disable machine symmetry breaking.")
  in
  let lp_bound =
    Arg.(
      value & flag
      & info [ "lp-bound" ]
          ~doc:
            "Pre-compute the divisible-workload LP lower bound (rational-certified) and stop \
             the search as soon as the incumbent meets it.")
  in
  let no_node_lp =
    Arg.(
      value & flag
      & info [ "no-node-lp" ]
          ~doc:
            "Disable the per-node warm-started LP bound (default: automatic, on from 14 \
             tasks — the measured crossover).")
  in
  let run file rule setup jobs node_budget no_dominance no_symmetry lp_bound no_node_lp =
    let inst = Instance_io.read_file file in
    Printf.printf "instance: n=%d p=%d m=%d, rule %s%s\n" (Instance.task_count inst)
      (Instance.type_count inst) (Instance.machines inst) (Mapping.rule_name rule)
      (if setup > 0.0 then Printf.sprintf ", %.0fms setup per type switch" setup else "");
    let dominance = if no_dominance then Some false else None in
    let lower_bound =
      if not lp_bound then None
      else
        match Mf_lp.Splitting.solve inst with
        | Error e ->
          Printf.printf "       (LP bound unavailable: %s)\n" (Mf_lp.Splitting.describe_error e);
          None
        | Ok r ->
          (* Shave one relative ulp-margin off the bound: the float-path
             optimum (and the rational one after float conversion) can sit
             a hair above the true infimum, and a lower bound must err
             low to stay a certificate. *)
          let margin = match r.Mf_lp.Splitting.path with `Rational -> 1e-9 | `Float -> 1e-6 in
          let lb = r.Mf_lp.Splitting.period *. (1.0 -. margin) in
          Printf.printf "       LP lower bound %.2f ms (%s path)\n" r.Mf_lp.Splitting.period
            (match r.Mf_lp.Splitting.path with `Float -> "float" | `Rational -> "rational");
          Some lb
    in
    let node_bound, nb_pivots =
      if no_node_lp || Instance.task_count inst < Mf_solve.Engine.lp_bound_threshold then
        (None, fun () -> 0)
      else
        let factory, pivots = Mf_solve.Engine.node_bound_factory ~rule inst in
        (Some factory, pivots)
    in
    let t0 = Unix.gettimeofday () in
    match
      Mf_exact.Dfs.solve ~node_budget ~setup ~jobs ?dominance ~symmetry:(not no_symmetry)
        ?lower_bound ?node_bound ~rule inst
    with
    | r ->
      let dt = Unix.gettimeofday () -. t0 in
      print_solution inst "exact" r.Mf_exact.Dfs.mapping;
      let s = r.Mf_exact.Dfs.stats in
      Printf.printf "       %s in %.2fs\n"
        (if r.Mf_exact.Dfs.optimal then "proved optimal" else "node budget exhausted")
        dt;
      Printf.printf
        "       nodes %d (+%d certify) over %d root subtrees, incumbent final at node %d of \
         its subtree\n"
        r.Mf_exact.Dfs.nodes s.Mf_exact.Dfs.certify_nodes s.Mf_exact.Dfs.root_subtrees
        s.Mf_exact.Dfs.best_at_node;
      Printf.printf "       prunes: %d bound, %d dominance (%d states), %d symmetry skips\n"
        s.Mf_exact.Dfs.bound_prunes s.Mf_exact.Dfs.dominance_prunes
        s.Mf_exact.Dfs.dominance_states s.Mf_exact.Dfs.symmetry_skips;
      if s.Mf_exact.Dfs.lp_solves > 0 then
        Printf.printf "       node LP: %d solves, %d prunes, %d pivots, %d no-goods\n"
          s.Mf_exact.Dfs.lp_solves s.Mf_exact.Dfs.lp_prunes (nb_pivots ())
          s.Mf_exact.Dfs.nogood_records
    | exception Invalid_argument msg -> Printf.printf "exact solver unavailable: %s\n" msg
  in
  let doc = "Solve an instance exactly with the branch-and-bound engine." in
  Cmd.v
    (Cmd.info "exact" ~doc)
    Term.(
      const run $ instance_arg $ rule $ setup $ jobs $ node_budget $ no_dominance
      $ no_symmetry $ lp_bound $ no_node_lp)

(* ------------------------------------------------------------------ *)
(* simulate                                                             *)
(* ------------------------------------------------------------------ *)

let simulate_cmd =
  let module Breakdown = Mf_sim.Breakdown in
  let heuristic =
    Arg.(
      value & opt heuristic_conv Registry.H4w
      & info [ "heuristic" ] ~docv:"H" ~doc:"Heuristic producing the mapping (default H4w).")
  in
  let horizon =
    Arg.(
      value & opt float 1.0e6
      & info [ "horizon" ] ~docv:"MS" ~doc:"Simulated time in ms (default 1e6).")
  in
  let trace =
    Arg.(value & flag & info [ "trace" ] ~doc:"Print the first 40 simulation events.")
  in
  let report =
    Arg.(value & flag & info [ "report" ] ~doc:"Print utilisation and loss statistics.")
  in
  let breakdowns_conv =
    let parse s =
      match String.split_on_char ':' s with
      | [ a; b ] | [ a; b; "" ] -> (
        match (float_of_string_opt a, float_of_string_opt b) with
        | Some mtbf, Some mttr -> Ok (mtbf, mttr, 0.0)
        | _ -> Error (`Msg "expected MTBF:MTTR[:WEAR] (numbers, in ms)"))
      | [ a; b; c ] -> (
        match (float_of_string_opt a, float_of_string_opt b, float_of_string_opt c) with
        | Some mtbf, Some mttr, Some wear -> Ok (mtbf, mttr, wear)
        | _ -> Error (`Msg "expected MTBF:MTTR[:WEAR] (numbers, in ms)"))
      | _ -> Error (`Msg "expected MTBF:MTTR[:WEAR]")
    in
    let print ppf (mtbf, mttr, wear) = Format.fprintf ppf "%g:%g:%g" mtbf mttr wear in
    Arg.conv (parse, print)
  in
  let breakdowns =
    Arg.(
      value & opt (some breakdowns_conv) None
      & info [ "breakdowns" ] ~docv:"MTBF:MTTR[:WEAR]"
          ~doc:
            "Enable the availability model: every machine gets mean time between \
             failures MTBF ms of busy time, mean repair time MTTR ms, and optional \
             history-based hazard scaling WEAR (failure rate grows by WEAR per unit \
             produced since the last repair).")
  in
  let crews =
    Arg.(
      value & opt (some int) None
      & info [ "crews" ] ~docv:"N"
          ~doc:"Repair crews (default: one per machine; queueing starts below that).")
  in
  let repair_queue =
    let queue_conv =
      Arg.conv
        ( (fun s ->
            match Breakdown.queue_of_string s with
            | Some q -> Ok q
            | None -> Error (`Msg "expected fifo or priority")),
          fun ppf q -> Format.pp_print_string ppf (Breakdown.queue_name q) )
    in
    Arg.(
      value & opt queue_conv Breakdown.Fifo
      & info [ "repair-queue" ] ~docv:"POLICY"
          ~doc:"Crew queueing policy when crews are scarce: fifo or priority \
                (most-loaded machine first).")
  in
  let remap =
    Arg.(
      value & flag
      & info [ "remap" ]
          ~doc:
            "Run the online re-mapper: migrate tasks off dead machines, refine \
             under the evaluation budget, restore the designed mapping after \
             repairs when it wins.")
  in
  let remap_budget =
    Arg.(
      value & opt int Mf_remap.Plan.default_budget
      & info [ "remap-budget" ] ~docv:"N"
          ~doc:"Evaluation budget per re-mapping decision (default 400).")
  in
  let run file heuristic horizon trace report seed breakdowns crews repair_queue remap
      remap_budget =
    let inst = Instance_io.read_file file in
    let mp = Registry.solve ~seed heuristic inst in
    let analytic = Period.throughput inst mp in
    let printed = ref 0 in
    let on_event e =
      if trace && !printed < 40 then begin
        incr printed;
        print_endline (Mf_sim.Event.to_string e)
      end
    in
    Printf.printf "mapping (%s): analytic throughput %.6g /ms, period %.2f ms\n"
      (Registry.name heuristic) analytic (Period.period inst mp);
    let r, model =
      match breakdowns with
      | None -> (Mf_sim.Desim.run ~horizon ~seed ~on_event inst mp, None)
      | Some (mtbf, mttr, wear) ->
        let bd =
          Breakdown.uniform ~machines:(Instance.machines inst) ~mtbf ~mttr ~wear
            ?crews ~queue:repair_queue ()
        in
        let adjusted = Mf_sim.Metrics.adjusted_throughput inst mp bd in
        Printf.printf
          "breakdowns: mtbf %g ms, mttr %g ms, wear %g -> availability-adjusted \
           throughput %.6g /ms\n"
          mtbf mttr wear adjusted;
        let r =
          if remap then
            Mf_remap.Online.simulate ~budget:remap_budget ~breakdowns:bd ~horizon ~seed
              ~on_event inst mp
          else Mf_sim.Desim.run ~breakdowns:bd ~horizon ~seed ~on_event inst mp
        in
        (r, Some bd)
    in
    let reference =
      match model with
      | None -> analytic
      | Some bd -> Mf_sim.Metrics.adjusted_throughput inst mp bd
    in
    Printf.printf "simulated: %d outputs in a %.0f ms window -> %.6g /ms (%.2f%% off)\n"
      r.Mf_sim.Desim.outputs r.Mf_sim.Desim.window r.Mf_sim.Desim.throughput
      (100.0 *. Float.abs (r.Mf_sim.Desim.throughput -. reference) /. reference);
    Printf.printf "raw products consumed: %d; per-task losses:" r.Mf_sim.Desim.consumed;
    Array.iteri (fun i l -> Printf.printf " T%d:%d" i l) r.Mf_sim.Desim.lost;
    print_newline ();
    (match model with
    | Some _ when remap ->
      Printf.printf "re-maps committed: %d; final mapping:" r.Mf_sim.Desim.remaps;
      Array.iter (Printf.printf " %d") r.Mf_sim.Desim.final_mapping;
      print_newline ()
    | _ -> ());
    if report then begin
      match model with
      | None -> print_string (Mf_sim.Metrics.report inst mp r)
      | Some bd ->
        print_string (Mf_sim.Metrics.report inst mp r);
        print_string (Mf_sim.Metrics.dynamic_report ~model:bd inst mp r)
    end
  in
  let doc = "Simulate a mapping with the discrete-event engine." in
  Cmd.v
    (Cmd.info "simulate" ~doc)
    Term.(
      const run $ instance_arg $ heuristic $ horizon $ trace $ report $ seed_arg
      $ breakdowns $ crews $ repair_queue $ remap $ remap_budget)

(* ------------------------------------------------------------------ *)
(* experiment                                                           *)
(* ------------------------------------------------------------------ *)

let experiment_cmd =
  let figure =
    let doc = "Figure to regenerate: fig5 .. fig12, or the dynamic breakdown experiment." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FIGURE" ~doc)
  in
  let replicates =
    Arg.(
      value & opt (some int) None
      & info [ "replicates" ] ~docv:"R" ~doc:"Replicates per point (default: the paper's).")
  in
  let csv = Arg.(value & flag & info [ "csv" ] ~doc:"CSV output instead of a table.") in
  let jobs =
    Arg.(
      value
      & opt int (Mf_parallel.Pool.default_jobs ())
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains for the replicate grid (default: the recommended domain count; \
             1 forces serial execution).  Figures are byte-identical for any value.")
  in
  let run figure replicates csv jobs =
    if jobs < 1 then begin
      Printf.eprintf "--jobs must be at least 1\n";
      exit 2
    end;
    match List.assoc_opt figure (Mf_experiments.Figures.all ?replicates ~jobs ()) with
    | None ->
      Printf.eprintf "unknown figure %s (fig5..fig12, dynamic)\n" figure;
      exit 2
    | Some f ->
      let fig = f () in
      if csv then Format.printf "@[<v>%a@]@." Mf_experiments.Report.pp_csv fig
      else print_string (Mf_experiments.Report.to_string fig)
  in
  let doc = "Regenerate one of the paper's figures." in
  Cmd.v (Cmd.info "experiment" ~doc) Term.(const run $ figure $ replicates $ csv $ jobs)

(* ------------------------------------------------------------------ *)
(* lp                                                                   *)
(* ------------------------------------------------------------------ *)

let lp_cmd =
  let mip =
    Arg.(
      value & flag
      & info [ "mip" ]
          ~doc:"Also solve the paper's MIP (9) by branch-and-bound (small instances only).")
  in
  let node_budget =
    Arg.(
      value & opt int 20_000
      & info [ "node-budget" ] ~docv:"N"
          ~doc:"Branch-and-bound node budget for --mip (default 20000).")
  in
  let run file mip node_budget =
    let inst = Instance_io.read_file file in
    (match Mf_lp.Splitting.solve inst with
    | Error e ->
      Printf.eprintf "LP failed: %s\n" (Mf_lp.Splitting.describe_error e);
      exit 1
    | Ok r ->
      Printf.printf "divisible-workload LP bound: %.2f ms period (%.6f /ms)%s\n"
        r.Mf_lp.Splitting.period
        (1.0 /. r.Mf_lp.Splitting.period)
        (match r.Mf_lp.Splitting.path with
        | `Float -> ""
        | `Rational -> "  [rational-certified fallback]");
      (let s = r.Mf_lp.Splitting.stats in
       Printf.printf
         "       (%d pivots%s; basis reuse: %d eta updates / %d factorizations, %d forced \
          refactorizations)\n"
         s.Mf_lp.Mip.float_iterations
         (if s.Mf_lp.Mip.exact_iterations > 0 then
            Printf.sprintf " + %d exact" s.Mf_lp.Mip.exact_iterations
          else "")
         s.Mf_lp.Mip.eta_updates s.Mf_lp.Mip.factorizations s.Mf_lp.Mip.refactorizations);
      (match Mf_lp.Splitting.round inst r with
      | Ok (mp, _rounded) -> print_solution inst "round" mp
      | Error e ->
        Printf.printf "round: skipped — %s\n" (Mf_lp.Splitting.describe_round_error e)));
    if mip then begin
      let res = Mf_lp.Micro_mip.solve ~node_budget inst in
      match (res.Mf_lp.Micro_mip.mapping, res.Mf_lp.Micro_mip.period) with
      | Some mp, Some _ ->
        print_solution inst "MIP" mp;
        Printf.printf "       (%s, %d branch-and-bound nodes)\n"
          (match res.Mf_lp.Micro_mip.status with
          | Mf_lp.Branch_bound.Optimal -> "proved optimal"
          | Mf_lp.Branch_bound.Feasible -> "node budget exhausted, best incumbent"
          | _ -> "unexpected status")
          res.Mf_lp.Micro_mip.nodes
      | _ ->
        Printf.printf "MIP: no integral solution within the node budget (%d nodes)\n"
          res.Mf_lp.Micro_mip.nodes
    end
  in
  let doc = "LP bounds: the divisible-workload relaxation and the paper's MIP." in
  Cmd.v (Cmd.info "lp" ~doc) Term.(const run $ instance_arg $ mip $ node_budget)

(* ------------------------------------------------------------------ *)
(* client (talk to a running mfoptd)                                    *)
(* ------------------------------------------------------------------ *)

let client_cmd =
  let module Solver = Mf_solve.Solver in
  let module Protocol = Mf_daemon.Protocol in
  let socket =
    Arg.(
      required
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc:"Unix socket of a running $(b,mfoptd).")
  in
  let instance =
    Arg.(
      value & pos 0 (some file) None
      & info [] ~docv:"INSTANCE" ~doc:"Instance file to submit (omit with $(b,--raw)).")
  in
  let id =
    Arg.(value & opt string "r0" & info [ "id" ] ~docv:"ID" ~doc:"Request id for the wire.")
  in
  let rule =
    let rule_conv =
      Arg.enum
        [
          ("specialized", Mapping.Specialized);
          ("general", Mapping.General);
          ("oto", Mapping.One_to_one);
        ]
    in
    Arg.(
      value & opt rule_conv Mapping.Specialized
      & info [ "rule" ] ~docv:"RULE" ~doc:"Mapping rule: specialized (default), general, oto.")
  in
  let setup = Arg.(value & opt float 0.0 & info [ "setup" ] ~docv:"MS" ~doc:"Setup time.") in
  let deadline =
    Arg.(
      value & opt (some float) None
      & info [ "deadline" ] ~docv:"MS" ~doc:"Deadline budget (node-equivalents, not wall clock).")
  in
  let node_budget =
    Arg.(
      value & opt (some int) None
      & info [ "node-budget" ] ~docv:"NODES" ~doc:"Node budget (exclusive with --deadline).")
  in
  let certificate =
    Arg.(value & flag & info [ "certificate" ] ~doc:"Demand a certified lower bound.")
  in
  let cancel_after =
    Arg.(
      value & opt (some float) None
      & info [ "cancel-after-ms" ] ~docv:"MS"
          ~doc:"Send CANCEL for the request this many milliseconds after submitting it.")
  in
  let raw =
    Arg.(
      value & opt (some string) None
      & info [ "raw" ] ~docv:"LINE"
          ~doc:"Send this verbatim line instead of a SOLVE and print the one response.")
  in
  let run socket instance id rule setup deadline node_budget certificate cancel_after raw seed
      =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_UNIX socket)
     with Unix.Unix_error (e, _, _) ->
       Printf.eprintf "mfopt client: cannot connect to %s: %s\n" socket (Unix.error_message e);
       exit 2);
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    let send s =
      output_string oc s;
      flush oc
    in
    let is_final line =
      (* the response that answers our request (or the raw line) *)
      match String.split_on_char ' ' line with
      | "OK" :: rid :: _ | "CANCELLED" :: rid :: _ -> rid = id
      | "ERR" :: _ -> true
      | ("STATS" | "BYE") :: _ -> true
      | "CANCELOK" :: _ -> false
      | _ -> true
    in
    let exit_code line =
      match String.split_on_char ' ' line with "ERR" :: _ -> 1 | _ -> 0
    in
    let rec read_until_final () =
      match input_line ic with
      | line ->
        print_endline line;
        if is_final line then exit_code line else read_until_final ()
      | exception End_of_file ->
        prerr_endline "mfopt client: connection closed before a response";
        1
    in
    let code =
      match raw with
      | Some line ->
        send (line ^ "\n");
        read_until_final ()
      | None -> (
        match instance with
        | None ->
          prerr_endline "mfopt client: INSTANCE required unless --raw is given";
          2
        | Some file -> (
          let inst = Instance_io.read_file file in
          let budget =
            match (deadline, node_budget) with
            | Some _, Some _ ->
              prerr_endline "mfopt client: --deadline and --node-budget are exclusive";
              exit 2
            | Some d, _ -> Solver.Deadline_ms d
            | _, Some k -> Solver.Nodes k
            | None, None -> Solver.Unlimited
          in
          match
            Solver.make_request ~rule ~seed ~budget ~want_certificate:certificate ~setup inst
          with
          | Error e ->
            Printf.eprintf "mfopt client: %s\n" (Solver.describe_request_error e);
            2
          | Ok req ->
            send (Protocol.render_solve ~id req);
            (match cancel_after with
            | Some ms ->
              Unix.sleepf (ms /. 1000.0);
              send (Printf.sprintf "CANCEL %s\n" id)
            | None -> ());
            read_until_final ()))
    in
    (try Unix.close fd with Unix.Unix_error _ -> ());
    exit code
  in
  let doc = "Submit a request to a running $(b,mfoptd) over its Unix socket." in
  Cmd.v
    (Cmd.info "client" ~doc)
    Term.(
      const run $ socket $ instance $ id $ rule $ setup $ deadline $ node_budget $ certificate
      $ cancel_after $ raw $ seed_arg)

let () =
  let doc = "Throughput optimization for micro-factories subject to failures." in
  let info = Cmd.info "mfopt" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ generate_cmd; solve_cmd; exact_cmd; simulate_cmd; experiment_cmd; lp_cmd; client_cmd ]))
