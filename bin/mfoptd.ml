(* mfoptd - long-running solver daemon.

   Serves the Mf_daemon wire protocol over a Unix-domain socket (or
   stdin/stdout with --stdio), multiplexing concurrent clients over one
   shared answer cache and one shared domain pool.  SIGTERM/SIGINT stop
   the accept loop, drain the workers, dump telemetry to stderr and
   exit 0. *)

open Cmdliner
module Server = Mf_daemon.Server

let socket =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket to listen on.")

let stdio =
  Arg.(
    value & flag
    & info [ "stdio" ] ~doc:"Serve a single client over stdin/stdout instead of a socket.")

let jobs =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Domains for the exact engine's shared pool (outcomes are bit-identical for any N).")

let cache_capacity =
  Arg.(
    value
    & opt int Mf_solve.Cache.default_capacity
    & info [ "cache-capacity" ] ~docv:"N" ~doc:"Entries in the shared answer cache.")

let workers =
  Arg.(
    value & opt int Server.default_config.Server.workers
    & info [ "workers" ] ~docv:"N" ~doc:"Request worker threads.")

let run socket stdio jobs cache_capacity workers =
  if jobs < 1 || cache_capacity < 1 || workers < 1 then begin
    prerr_endline "mfoptd: --jobs, --cache-capacity and --workers must be at least 1";
    exit 2
  end;
  let srv = Server.create ~config:{ Server.jobs; cache_capacity; workers } () in
  let stop_signal _ = Server.request_stop srv in
  ignore (Sys.signal Sys.sigterm (Sys.Signal_handle stop_signal));
  ignore (Sys.signal Sys.sigint (Sys.Signal_handle stop_signal));
  ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
  (match (stdio, socket) with
  | true, _ -> Server.serve_client srv stdin stdout
  | false, Some path ->
    prerr_endline ("mfoptd: listening on " ^ path);
    Server.serve_unix srv ~socket_path:path
  | false, None ->
    prerr_endline "mfoptd: pass --socket PATH or --stdio";
    exit 2);
  Server.shutdown srv stderr;
  exit 0

let () =
  let doc = "Long-running solver daemon for micro-factory instances." in
  let info = Cmd.info "mfoptd" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.v info Term.(const run $ socket $ stdio $ jobs $ cache_capacity $ workers)))
