(** Compensated (Kahan–Babuska) floating-point summation.

    Used wherever long sums of per-task period contributions are formed, so
    that machine periods do not drift on chains with hundreds of tasks. *)

type t

(** A fresh accumulator holding [0.0]. *)
val create : unit -> t

(** [add acc x] accumulates [x] with error compensation. *)
val add : t -> float -> unit

(** [total acc] is the compensated running total. *)
val total : t -> float

(** [reset acc] clears the accumulator back to [0.0]. *)
val reset : t -> unit

(** [snapshot acc] is the internal (running sum, compensation) pair, for
    callers that must save and later {e exactly} restore accumulator state
    — the incremental evaluator's undo journal. *)
val snapshot : t -> float * float

(** [restore acc s] resets [acc] to a state previously captured with
    {!snapshot}. *)
val restore : t -> float * float -> unit

(** [raw_sum] / [raw_comp] are the components of {!snapshot} exposed
    separately, and [restore_raw] their counterpart: allocation-free
    save/restore for journals that store the pair in flat float arrays
    (the branch-and-bound hot path). *)
val raw_sum : t -> float

val raw_comp : t -> float
val restore_raw : t -> sum:float -> comp:float -> unit

(** [sum xs] is the compensated sum of an array. *)
val sum : float array -> float

(** [sum_by f xs] is the compensated sum of [f x] over [xs]. *)
val sum_by : ('a -> float) -> 'a array -> float
