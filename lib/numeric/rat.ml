type t = { num : Bigint.t; den : Bigint.t }

let make num den =
  if Bigint.is_zero den then raise Division_by_zero
  else begin
    let num, den = if Bigint.sign den < 0 then (Bigint.neg num, Bigint.neg den) else (num, den) in
    if Bigint.is_zero num then { num = Bigint.zero; den = Bigint.one }
    else begin
      let g = Bigint.gcd num den in
      if Bigint.is_one g then { num; den }
      else { num = Bigint.div num g; den = Bigint.div den g }
    end
  end

let zero = { num = Bigint.zero; den = Bigint.one }
let one = { num = Bigint.one; den = Bigint.one }
let minus_one = { num = Bigint.minus_one; den = Bigint.one }
let of_bigint n = { num = n; den = Bigint.one }
let of_int n = of_bigint (Bigint.of_int n)
let of_ints num den = make (Bigint.of_int num) (Bigint.of_int den)

let of_float f =
  match Float.classify_float f with
  | FP_zero -> zero
  | FP_nan | FP_infinite -> invalid_arg "Rat.of_float: not finite"
  | FP_normal | FP_subnormal ->
    let mantissa, exponent = Float.frexp f in
    (* mantissa * 2^53 is an exact integer for finite floats. *)
    let m = Int64.to_int (Int64.of_float (Float.ldexp mantissa 53)) in
    let e = exponent - 53 in
    let mi = Bigint.of_int m in
    if e >= 0 then of_bigint (Bigint.shift_left mi e)
    else make mi (Bigint.shift_left Bigint.one (-e))

let to_float x =
  (* The naive [num /. den] turns into inf /. inf = nan once either side
     exceeds the float range (products over deep chains reach thousands of
     bits).  Truncate both sides to their top 128 bits and rescale: each
     operand keeps a relative error below 2^-127, and ldexp handles the
     genuine overflow/underflow cases correctly. *)
  let bn = Bigint.bit_length x.num and bd = Bigint.bit_length x.den in
  let sn = Stdlib.max 0 (bn - 128) and sd = Stdlib.max 0 (bd - 128) in
  let q =
    Bigint.to_float (Bigint.shift_right x.num sn)
    /. Bigint.to_float (Bigint.shift_right x.den sd)
  in
  Float.ldexp q (sn - sd)
let num x = x.num
let den x = x.den
let sign x = Bigint.sign x.num
let is_zero x = Bigint.is_zero x.num
let neg x = { x with num = Bigint.neg x.num }
let abs x = if sign x < 0 then neg x else x

let inv x =
  if is_zero x then raise Division_by_zero
  else if Bigint.sign x.num > 0 then { num = x.den; den = x.num }
  else { num = Bigint.neg x.den; den = Bigint.neg x.num }

let add a b =
  make
    Bigint.((a.num * b.den) + (b.num * a.den))
    Bigint.(a.den * b.den)

let sub a b = add a (neg b)
let mul a b = make Bigint.(a.num * b.num) Bigint.(a.den * b.den)
let div a b = mul a (inv b)

let compare a b = Bigint.compare Bigint.(a.num * b.den) Bigint.(b.num * a.den)
let equal a b = Bigint.equal a.num b.num && Bigint.equal a.den b.den
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let to_string x =
  if Bigint.is_one x.den then Bigint.to_string x.num
  else Bigint.to_string x.num ^ "/" ^ Bigint.to_string x.den

let of_string s =
  match String.index_opt s '/' with
  | None -> of_bigint (Bigint.of_string s)
  | Some i ->
    let num = Bigint.of_string (String.sub s 0 i) in
    let den = Bigint.of_string (String.sub s (i + 1) (String.length s - i - 1)) in
    make num den

let pp fmt x = Format.pp_print_string fmt (to_string x)

let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( / ) = div
