(* Sign-magnitude arbitrary-precision integers over 15-bit digits.

   Invariants:
   - [mag] is little-endian, each digit in [0, base);
   - no leading (highest-index) zero digit;
   - [sign] is 0 iff [mag] is empty, otherwise -1 or 1. *)

type t = { sign : int; mag : int array }

let base_bits = 15
let base = 1 lsl base_bits (* 32768 *)
let base_mask = base - 1

let zero = { sign = 0; mag = [||] }

let normalize sign mag =
  let n = Array.length mag in
  let rec top i = if i >= 0 && mag.(i) = 0 then top (i - 1) else i in
  let hi = top (n - 1) in
  if hi < 0 then zero
  else if hi = n - 1 then { sign; mag }
  else { sign; mag = Array.sub mag 0 (hi + 1) }

let of_int n =
  if n = 0 then zero
  else begin
    (* Accumulate |n| digit by digit; work with negative values to avoid
       overflow on [min_int]. *)
    let sign = if n < 0 then -1 else 1 in
    let neg = if n < 0 then n else -n in
    let rec digits acc v =
      if v = 0 then acc else digits ((-(v mod base * 1)) :: acc) (v / base)
    in
    (* [v mod base] for negative [v] is in (-base, 0]. *)
    let ds = List.rev (List.rev (digits [] neg)) in
    let mag = Array.of_list (List.rev ds) in
    normalize sign mag
  end

let one = of_int 1
let two = of_int 2
let minus_one = of_int (-1)

let sign x = x.sign
let is_zero x = x.sign = 0

let compare_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let compare a b =
  if a.sign <> b.sign then Stdlib.compare a.sign b.sign
  else if a.sign = 0 then 0
  else if a.sign > 0 then compare_mag a.mag b.mag
  else compare_mag b.mag a.mag

let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let is_one x = equal x one
let is_even x = x.sign = 0 || x.mag.(0) land 1 = 0

let neg x = if x.sign = 0 then x else { x with sign = -x.sign }
let abs x = if x.sign < 0 then neg x else x

(* Magnitude addition: |a| + |b|. *)
let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let l = Stdlib.max la lb in
  let r = Array.make (l + 1) 0 in
  let carry = ref 0 in
  for i = 0 to l - 1 do
    let da = if i < la then a.(i) else 0 in
    let db = if i < lb then b.(i) else 0 in
    let s = da + db + !carry in
    r.(i) <- s land base_mask;
    carry := s lsr base_bits
  done;
  r.(l) <- !carry;
  r

(* Magnitude subtraction: |a| - |b|, requires |a| >= |b|. *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let db = if i < lb then b.(i) else 0 in
    let s = a.(i) - db - !borrow in
    if s < 0 then begin
      r.(i) <- s + base;
      borrow := 1
    end
    else begin
      r.(i) <- s;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  r

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then normalize a.sign (add_mag a.mag b.mag)
  else begin
    match compare_mag a.mag b.mag with
    | 0 -> zero
    | c when c > 0 -> normalize a.sign (sub_mag a.mag b.mag)
    | _ -> normalize b.sign (sub_mag b.mag a.mag)
  end

let sub a b = add a (neg b)

(* Schoolbook multiplication.  A row accumulation is bounded by
   base^2 * len + carries, far below [max_int] for any realistic length. *)
let mul_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make (la + lb) 0 in
  for i = 0 to la - 1 do
    let ai = a.(i) in
    if ai <> 0 then begin
      let carry = ref 0 in
      for j = 0 to lb - 1 do
        let s = r.(i + j) + (ai * b.(j)) + !carry in
        r.(i + j) <- s land base_mask;
        carry := s lsr base_bits
      done;
      let k = ref (i + lb) in
      while !carry <> 0 do
        let s = r.(!k) + !carry in
        r.(!k) <- s land base_mask;
        carry := s lsr base_bits;
        incr k
      done
    end
  done;
  r

(* Karatsuba multiplication above this limb count (~480 decimal digits);
   below it, schoolbook wins on constants. *)
let karatsuba_threshold = 32

let mag_add_into dst src offset =
  (* dst.(offset..) += src, in place; dst must be long enough to absorb the
     carry. *)
  let carry = ref 0 in
  let ls = Array.length src in
  let i = ref 0 in
  while !i < ls || !carry <> 0 do
    let d = offset + !i in
    let s = dst.(d) + (if !i < ls then src.(!i) else 0) + !carry in
    dst.(d) <- s land base_mask;
    carry := s lsr base_bits;
    incr i
  done

let rec karatsuba_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la < karatsuba_threshold || lb < karatsuba_threshold then mul_mag a b
  else begin
    let half = (Stdlib.max la lb + 1) / 2 in
    let lo x = Array.sub x 0 (Stdlib.min half (Array.length x)) in
    let hi x =
      if Array.length x <= half then [||] else Array.sub x half (Array.length x - half)
    in
    let a0 = lo a and a1 = hi a and b0 = lo b and b1 = hi b in
    let z0 = karatsuba_mag a0 b0 in
    let z2 = if a1 = [||] || b1 = [||] then [||] else karatsuba_mag a1 b1 in
    (* z1 = (a0+a1)(b0+b1) - z0 - z2, computed via normalised values to
       reuse signed subtraction. *)
    let to_t m = normalize 1 (Array.copy m) in
    let sum_a = add_mag a0 a1 and sum_b = add_mag b0 b1 in
    let z1 =
      sub (sub (to_t (karatsuba_mag sum_a sum_b)) (to_t z0)) (to_t z2)
    in
    let result = Array.make (la + lb + 1) 0 in
    mag_add_into result z0 0;
    if z1.sign > 0 then mag_add_into result z1.mag half;
    if z2 <> [||] then mag_add_into result z2 (2 * half);
    result
  end

let mul_schoolbook a b =
  if a.sign = 0 || b.sign = 0 then zero
  else normalize (a.sign * b.sign) (mul_mag a.mag b.mag)

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else normalize (a.sign * b.sign) (karatsuba_mag a.mag b.mag)

(* Shift a magnitude left by [k] bits. *)
let shift_left_mag a k =
  let digit_shift = k / base_bits and bit_shift = k mod base_bits in
  let la = Array.length a in
  let r = Array.make (la + digit_shift + 1) 0 in
  let carry = ref 0 in
  for i = 0 to la - 1 do
    let v = (a.(i) lsl bit_shift) lor !carry in
    r.(i + digit_shift) <- v land base_mask;
    carry := v lsr base_bits
  done;
  r.(la + digit_shift) <- !carry;
  r

let shift_right_mag a k =
  let digit_shift = k / base_bits and bit_shift = k mod base_bits in
  let la = Array.length a in
  let len = la - digit_shift in
  if len <= 0 then [||]
  else begin
    let r = Array.make len 0 in
    for i = 0 to len - 1 do
      let lo = a.(i + digit_shift) lsr bit_shift in
      let hi =
        if i + digit_shift + 1 < la && bit_shift > 0 then
          (a.(i + digit_shift + 1) lsl (base_bits - bit_shift)) land base_mask
        else 0
      in
      r.(i) <- lo lor hi
    done;
    r
  end

let shift_left x k =
  if k < 0 then invalid_arg "Bigint.shift_left: negative shift"
  else if x.sign = 0 || k = 0 then x
  else normalize x.sign (shift_left_mag x.mag k)

let shift_right x k =
  if k < 0 then invalid_arg "Bigint.shift_right: negative shift"
  else if x.sign = 0 || k = 0 then x
  else normalize x.sign (shift_right_mag x.mag k)

let bit_length x =
  if x.sign = 0 then 0
  else begin
    let hi = Array.length x.mag - 1 in
    let d = x.mag.(hi) in
    let rec width w v = if v = 0 then w else width (w + 1) (v lsr 1) in
    (hi * base_bits) + width 0 d
  end

(* Long division on magnitudes, Knuth's Algorithm D: one estimated
   quotient digit per position from the top two remainder digits against
   the normalised divisor's top digit, corrected by at most two
   subtract-backs — O(la * lb) digit operations, against O(bits * la) for
   the bit-by-bit shift-and-subtract it replaces (the old loop made
   every [Rat] normalisation, and hence every exact simplex pivot,
   quadratically slower than needed).
   Returns (quotient, remainder) with |a| = q*|b| + r, 0 <= r < |b|. *)
let divmod_mag a b =
  let lb = Array.length b in
  if compare_mag a b < 0 then (zero, normalize 1 (Array.copy a))
  else if lb = 1 then begin
    (* Single-digit divisor: one linear pass. *)
    let d = b.(0) in
    let la = Array.length a in
    let q = Array.make la 0 in
    let r = ref 0 in
    for i = la - 1 downto 0 do
      let cur = (!r lsl base_bits) lor a.(i) in
      q.(i) <- cur / d;
      r := cur mod d
    done;
    (normalize 1 q, of_int !r)
  end
  else begin
    (* Normalise so the divisor's top digit is >= base/2; the estimate
       from the top two remainder digits is then off by at most 2. *)
    let rec width w v = if v = 0 then w else width (w + 1) (v lsr 1) in
    let s = base_bits - width 0 b.(lb - 1) in
    (* [shift_left_mag] always appends one extra digit, giving [u] the
       spare top digit Algorithm D needs. *)
    let u = shift_left_mag a s in
    let v = normalize 1 (shift_left_mag b s) in
    let v = v.mag in
    let lv = Array.length v in
    let m = Array.length u - lv in
    let q = Array.make m 0 in
    let vtop = v.(lv - 1) in
    let vsecond = v.(lv - 2) in
    for j = m - 1 downto 0 do
      let u2 = (u.(j + lv) lsl base_bits) lor u.(j + lv - 1) in
      let qhat = ref (if u.(j + lv) = vtop then base_mask else u2 / vtop) in
      let rhat = ref (u2 - (!qhat * vtop)) in
      let adjusting = ref true in
      while !adjusting && !rhat < base do
        if !qhat * vsecond > (!rhat lsl base_bits) lor u.(j + lv - 2) then begin
          decr qhat;
          rhat := !rhat + vtop
        end
        else adjusting := false
      done;
      (* u[j .. j+lv] -= qhat * v *)
      let borrow = ref 0 and carry = ref 0 in
      for i = 0 to lv - 1 do
        let p = (!qhat * v.(i)) + !carry in
        carry := p lsr base_bits;
        let d = u.(j + i) - (p land base_mask) - !borrow in
        if d < 0 then begin
          u.(j + i) <- d + base;
          borrow := 1
        end
        else begin
          u.(j + i) <- d;
          borrow := 0
        end
      done;
      let top = u.(j + lv) - !carry - !borrow in
      if top < 0 then begin
        (* Estimate was one too large (probability ~2/base): add back. *)
        decr qhat;
        let c = ref 0 in
        for i = 0 to lv - 1 do
          let s = u.(j + i) + v.(i) + !c in
          u.(j + i) <- s land base_mask;
          c := s lsr base_bits
        done;
        (* [top] is exactly -1 when the subtraction went negative, and
           the add-back's carry restores it to 0. *)
        u.(j + lv) <- top + !c
      end
      else u.(j + lv) <- top;
      q.(j) <- !qhat
    done;
    let r = shift_right (normalize 1 (Array.sub u 0 lv)) s in
    (normalize 1 q, r)
  end

let divmod a b =
  if b.sign = 0 then raise Division_by_zero
  else if a.sign = 0 then (zero, zero)
  else begin
    let q, r = divmod_mag a.mag b.mag in
    let q = if a.sign * b.sign > 0 then q else neg q in
    let r = if a.sign > 0 then r else neg r in
    (q, r)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

(* Trailing zero bits of a non-zero value. *)
let trailing_zeros x =
  let mag = x.mag in
  let i = ref 0 in
  while mag.(!i) = 0 do
    incr i
  done;
  let rec low k v = if v land 1 = 1 then k else low (k + 1) (v lsr 1) in
  (!i * base_bits) + low 0 mag.(!i)

(* Binary (Stein) GCD: shifts and subtractions only.  Euclid's algorithm
   with full divisions cost O(bits) divmods of O(bits * digits) each; a
   whole binary gcd is O(bits * digits) — the difference dominates the
   running time of exact rational pivoting, where every [Rat.make]
   normalises through here. *)
let gcd a b =
  if is_zero a then abs b
  else if is_zero b then abs a
  else begin
    let sa = trailing_zeros a and sb = trailing_zeros b in
    let common = Stdlib.min sa sb in
    let a = ref (shift_right (abs a) sa) in
    let b = ref (shift_right (abs b) sb) in
    (* Invariant: both odd. *)
    while not (is_zero !b) do
      if compare_mag !a.mag !b.mag > 0 then begin
        let t = !a in
        a := !b;
        b := t
      end;
      b := normalize 1 (sub_mag !b.mag !a.mag);
      if not (is_zero !b) then b := shift_right !b (trailing_zeros !b)
    done;
    shift_left !a common
  end

let pow x k =
  if k < 0 then invalid_arg "Bigint.pow: negative exponent"
  else begin
    let rec go acc b k =
      if k = 0 then acc
      else begin
        let acc = if k land 1 = 1 then mul acc b else acc in
        go acc (mul b b) (k lsr 1)
      end
    in
    go one x k
  end

let to_int x =
  (* Fold digits from most significant, watching for overflow.  Accumulate
     negatively so that [min_int] round-trips. *)
  if x.sign = 0 then Some 0
  else begin
    let lim = Stdlib.min_int in
    let rec go acc i =
      if i < 0 then Some acc
      else if acc < (lim + x.mag.(i)) / base then None
      else go ((acc * base) - x.mag.(i)) (i - 1)
    in
    match go 0 (Array.length x.mag - 1) with
    | None -> None
    | Some v ->
      if x.sign < 0 then Some v
      else if v = Stdlib.min_int then None
      else Some (-v)
  end

let to_int_exn x =
  match to_int x with
  | Some v -> v
  | None -> failwith "Bigint.to_int_exn: overflow"

let to_float x =
  let f = ref 0.0 in
  for i = Array.length x.mag - 1 downto 0 do
    f := (!f *. float_of_int base) +. float_of_int x.mag.(i)
  done;
  if x.sign < 0 then -. !f else !f

let of_string s =
  let len = String.length s in
  if len = 0 then invalid_arg "Bigint.of_string: empty string";
  let sign, start =
    match s.[0] with
    | '-' -> (-1, 1)
    | '+' -> (1, 1)
    | _ -> (1, 0)
  in
  if start >= len then invalid_arg "Bigint.of_string: missing digits";
  let acc = ref zero in
  let ten = of_int 10 in
  let seen = ref false in
  for i = start to len - 1 do
    match s.[i] with
    | '0' .. '9' as c ->
      seen := true;
      acc := add (mul !acc ten) (of_int (Char.code c - Char.code '0'))
    | '_' -> ()
    | _ -> invalid_arg "Bigint.of_string: invalid character"
  done;
  if not !seen then invalid_arg "Bigint.of_string: missing digits";
  if sign < 0 then neg !acc else !acc

let to_string x =
  if x.sign = 0 then "0"
  else begin
    (* Extract base-10^4 chunks to limit divisions. *)
    let chunk = of_int 10000 in
    let buf = Buffer.create 32 in
    let rec go v acc =
      if is_zero v then acc
      else begin
        let q, r = divmod v chunk in
        go q (to_int_exn r :: acc)
      end
    in
    let chunks = go (abs x) [] in
    if x.sign < 0 then Buffer.add_char buf '-';
    (match chunks with
     | [] -> Buffer.add_char buf '0'
     | first :: rest ->
       Buffer.add_string buf (string_of_int first);
       List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%04d" c)) rest);
    Buffer.contents buf
  end

let hash x = Hashtbl.hash (x.sign, x.mag)
let pp fmt x = Format.pp_print_string fmt (to_string x)

let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( / ) = div
let ( ~- ) = neg
