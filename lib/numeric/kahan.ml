(* Neumaier's variant of Kahan summation: also accurate when the increment
   is larger in magnitude than the running sum. *)

type t = { mutable sum : float; mutable comp : float }

let create () = { sum = 0.0; comp = 0.0 }

let[@inline] add acc x =
  let t = acc.sum +. x in
  if Float.abs acc.sum >= Float.abs x then
    acc.comp <- acc.comp +. ((acc.sum -. t) +. x)
  else acc.comp <- acc.comp +. ((x -. t) +. acc.sum);
  acc.sum <- t

let[@inline] total acc = acc.sum +. acc.comp

let reset acc =
  acc.sum <- 0.0;
  acc.comp <- 0.0

let snapshot acc = (acc.sum, acc.comp)

let restore acc (sum, comp) =
  acc.sum <- sum;
  acc.comp <- comp

let[@inline] raw_sum acc = acc.sum
let[@inline] raw_comp acc = acc.comp

let restore_raw acc ~sum ~comp =
  acc.sum <- sum;
  acc.comp <- comp

let sum xs =
  let acc = create () in
  Array.iter (add acc) xs;
  total acc

let sum_by f xs =
  let acc = create () in
  Array.iter (fun x -> add acc (f x)) xs;
  total acc
