(** Ordered-field abstraction used to functorise numerical algorithms
    (notably the simplex solver) over either hardware floats or exact
    rationals. *)

module type S = sig
  type t

  val zero : t
  val one : t
  val of_int : int -> t
  val of_float : float -> t
  val to_float : t -> float
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val div : t -> t -> t
  val neg : t -> t
  val abs : t -> t
  val compare : t -> t -> int
  val equal : t -> t -> bool

  (** Comparison tolerance: the field's notion of "numerically zero".
      Exact fields use [zero]. *)
  val eps : t

  (** Relative comparison tolerance: algorithms that keep row/column
      norms alongside their data (notably {!Mf_lp.Simplex}) test values
      against [eps + rel_eps * norm], so a threshold means the same
      thing whatever the scale of the row it guards.  Exact fields use
      [zero], making every such test exact. *)
  val rel_eps : t

  (** [is_finite x] is false only for non-finite inexact values (float
      nan/infinities).  Exact fields are always finite. *)
  val is_finite : t -> bool

  val to_string : t -> string
end

(** Hardware double-precision floats with an absolute tolerance. *)
module Float_field : S with type t = float = struct
  type t = float

  let zero = 0.0
  let one = 1.0
  let of_int = float_of_int
  let of_float f = f
  let to_float f = f
  let add = ( +. )
  let sub = ( -. )
  let mul = ( *. )
  let div = ( /. )
  let neg f = -.f
  let abs = Float.abs
  let compare = Float.compare
  let equal = Float.equal
  let eps = 1e-9
  let rel_eps = 1e-9
  let is_finite = Float.is_finite
  let to_string = string_of_float
end

(** Exact rationals: comparisons are exact, [eps] is zero. *)
module Rat_field : S with type t = Rat.t = struct
  type t = Rat.t

  let zero = Rat.zero
  let one = Rat.one
  let of_int = Rat.of_int
  let of_float = Rat.of_float
  let to_float = Rat.to_float
  let add = Rat.add
  let sub = Rat.sub
  let mul = Rat.mul
  let div = Rat.div
  let neg = Rat.neg
  let abs = Rat.abs
  let compare = Rat.compare
  let equal = Rat.equal
  let eps = Rat.zero
  let rel_eps = Rat.zero
  let is_finite _ = true
  let to_string = Rat.to_string
end
