(** The eight experiments of the paper's Section 7 (Figures 5-12).

    Each function runs the full grid and returns a {!Runner.figure} whose
    series can be printed with {!Report} or compared with
    {!Summary}.  Replicate counts default to the paper's (30 per point, 100
    for Fig. 9) and can be lowered for quick runs.

    Instance parameters follow Section 7: [w ~ U[100,1000)] ms and
    [f ~ U[0.005,0.02)] unless the figure says otherwise.

    Every function takes [?jobs] (default 1), forwarded to {!Runner.run}'s
    domain pool; figures are identical for any [jobs] value. *)

(** Specialized mappings, m=50, p=5, n=50..150, all six heuristics. *)
val fig5 : ?replicates:int -> ?jobs:int -> unit -> Runner.figure

(** Specialized mappings, m=10, p=2, n=10..100; H2, H3, H4, H4w. *)
val fig6 : ?replicates:int -> ?jobs:int -> unit -> Runner.figure

(** Large platform, m=100, p=5, n=100..200; H2, H3, H4w. *)
val fig7 : ?replicates:int -> ?jobs:int -> unit -> Runner.figure

(** High failure rates (f up to 10%), m=10, p=5, n=10..100, all six. *)
val fig8 : ?replicates:int -> ?jobs:int -> unit -> Runner.figure

(** One-to-one regime: m=n=100, task-attached failures, p=20..100;
    H2, H3, H4w against the optimal one-to-one mapping (OtO). *)
val fig9 : ?replicates:int -> ?jobs:int -> unit -> Runner.figure

(** Small instances vs the exact solver: m=5, p=2, n=2..15, all six
    heuristics plus the exact specialized optimum (labelled MIP as in the
    paper). *)
val fig10 : ?replicates:int -> ?node_budget:int -> ?jobs:int -> unit -> Runner.figure

(** Fig. 10 data normalised per instance by the exact optimum. *)
val fig11 : ?replicates:int -> ?node_budget:int -> ?jobs:int -> unit -> Runner.figure

(** Larger exact comparison: m=9, p=4, n=5..20; H2, H3, H4, H4w + exact
    with a node budget (the exact column loses replicates on large n, as
    the paper's MIP does past 15 tasks). *)
val fig12 : ?replicates:int -> ?node_budget:int -> ?jobs:int -> unit -> Runner.figure

(** The dynamic experiment (not in the paper): effective period —
    measurement window / outputs — of the H4w mapping under per-machine
    breakdowns (uniform law, mtbf 48 periods, mttr 16 periods, one
    repair crew), left static vs re-mapped online, against the
    availability-adjusted analytic bound.  m=6, p=2, n=10..40.
    Identical for any [jobs] value, like every figure. *)
val dynamic :
  ?replicates:int -> ?horizon_periods:float -> ?jobs:int -> unit -> Runner.figure

(** All eight paper figures plus [dynamic], in order. *)
val all :
  ?replicates:int ->
  ?node_budget:int ->
  ?jobs:int ->
  unit ->
  (string * (unit -> Runner.figure)) list
