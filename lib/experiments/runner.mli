(** Replicated experiment machinery.

    Every point of every figure in the paper is the average of 30 (or 100)
    independent random instances.  The runner pairs algorithms on the same
    instances (as the paper does), derives instance seeds deterministically
    from (figure id, x value, replicate index), and records raw
    per-replicate periods so normalised figures (Fig. 11) can take
    per-instance ratios. *)

(** An algorithm entry: solves an instance, returning the achieved period,
    or [None] on failure (e.g. the exact solver's node budget, matching the
    MIP dropping out in the paper's Fig. 12). *)
type algo = {
  label : string;
  solve : Mf_core.Instance.t -> seed:int -> float option;
}

(** Results of one algorithm at one x value. *)
type cell = {
  label : string;
  values : float option array;
      (** one slot per replicate, [None] on failure; slots align across
          algorithms so normalised figures can take per-instance ratios *)
  successes : int;
  trials : int;
}

type point = { x : int; cells : cell list }

type figure = {
  id : string;  (** e.g. "fig5" *)
  title : string;
  x_label : string;
  points : point list;
  notes : string list;
}

(** [heuristic h] wraps a paper heuristic. *)
val heuristic : Mf_heuristics.Registry.t -> algo

(** [oto_bottleneck] wraps the optimal one-to-one solver for task-attached
    failures (the "OtO" curve of Fig. 9). *)
val oto_bottleneck : algo

(** [exact_dfs ~node_budget] wraps the exact specialized solver; fails
    (returns [None]) when the budget is exhausted before proving
    optimality — reproducing the MIP's behaviour on large instances. *)
val exact_dfs : node_budget:int -> algo

(** [lp_bound] wraps the divisible-workload LP lower bound
    ({!Mf_lp.Splitting.solve}).  A failed solve — unreachable after the
    rational-certified fallback, but typed — records [None] for that grid
    cell instead of aborting the sweep. *)
val lp_bound : algo

(** [lp_round] wraps the LP-guided rounding heuristic: solve the
    splitting LP, then assign each task to its largest-share eligible
    machine.  [None] when the LP fails or no specialized mapping exists. *)
val lp_round : algo

(** [portfolio ~node_budget] wraps the unified anytime portfolio
    ({!Mf_solve.Portfolio.solve}) under the specialized rule with a
    node-equivalent budget: the best period the staged
    heuristics → LP bound → exact pipeline reaches within the budget,
    [None] only when the rule is infeasible.  The replicate seed is
    threaded into the request, so grid cells stay pure functions of
    [(id, x, rep)]. *)
val portfolio : node_budget:int -> algo

(** [run ~id ~title ~x_label ~xs ~replicates ~gen ~algos ()] runs the full
    grid.  [gen] receives the x value and a derived seed and must return
    the instance.

    The unit of parallel work is one [(x, replicate)] pair: the instance
    is generated {e once} and solved by every algorithm in registration
    order (the old per-(algorithm, replicate) fan-out regenerated each
    instance [algos] times), and the whole grid goes out as a single
    batch so the pool can amortise synchronisation over coarse chunks.
    Each unit derives its own seed from [(id, x, rep)], so the returned
    figure is {e identical} — same floats, same order — for any [jobs],
    [pool] and [chunk] value; [gen] and the algorithms must be pure
    functions of their arguments (all of this repository's are).

    [pool] runs the grid on that pool, ignoring [jobs].  Otherwise
    [jobs] (default 1: serial in the calling domain) runs it on the
    process-wide {!Mf_parallel.Pool.shared} pool of that many domains —
    amortized across figures, no spawn/join per call.  [chunk] is passed
    through to {!Mf_parallel.Pool.map_array}. *)
val run :
  id:string ->
  title:string ->
  x_label:string ->
  ?notes:string list ->
  ?jobs:int ->
  ?pool:Mf_parallel.Pool.t ->
  ?chunk:int ->
  xs:int list ->
  replicates:int ->
  gen:(x:int -> seed:int -> Mf_core.Instance.t) ->
  algos:algo list ->
  unit ->
  figure

(** [derive_seed ~id ~x ~rep] is the deterministic instance seed used by
    {!run} (exposed for tests): the figure id's length and bytes, then [x]
    and [rep], absorbed through successive Splitmix64 finalisations —
    collision-free on the paper's grids and stable across OCaml versions,
    unlike the [Hashtbl.hash]-based derivation it replaces. *)
val derive_seed : id:string -> x:int -> rep:int -> int

(** [mean cell] is the mean period of successful replicates ([nan] when
    none succeeded). *)
val mean : cell -> float

(** [successful cell] extracts the successful periods. *)
val successful : cell -> float array

(** [find_cell point label] looks up an algorithm's cell at a point. *)
val find_cell : point -> string -> cell option
