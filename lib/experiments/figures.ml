module Gen = Mf_workload.Gen
module Registry = Mf_heuristics.Registry
module Rng = Mf_prng.Rng

let range lo hi step = List.init (((hi - lo) / step) + 1) (fun i -> lo + (i * step))

let all_heuristics = List.map Runner.heuristic Registry.all

let chain_gen params ~x:_ ~seed = Gen.chain (Rng.create seed) params

let fig5 ?(replicates = 30) ?jobs () =
  Runner.run ~id:"fig5" ?jobs ~title:"Specialized mappings, m=50, p=5" ~x_label:"number of tasks"
    ~xs:(range 50 150 10) ~replicates
    ~gen:(fun ~x ~seed -> chain_gen (Gen.default ~tasks:x ~types:5 ~machines:50) ~x ~seed)
    ~algos:all_heuristics ()

let fig6 ?(replicates = 30) ?jobs () =
  Runner.run ~id:"fig6" ?jobs ~title:"Specialized mappings, m=10, p=2" ~x_label:"number of tasks"
    ~xs:(range 10 100 10) ~replicates
    ~gen:(fun ~x ~seed -> chain_gen (Gen.default ~tasks:x ~types:2 ~machines:10) ~x ~seed)
    ~algos:(List.map Runner.heuristic [ Registry.H2; Registry.H3; Registry.H4; Registry.H4w ])
    ()

let fig7 ?(replicates = 30) ?jobs () =
  Runner.run ~id:"fig7" ?jobs ~title:"Large platform, m=100, p=5" ~x_label:"number of tasks"
    ~xs:(range 100 200 10) ~replicates
    ~gen:(fun ~x ~seed -> chain_gen (Gen.default ~tasks:x ~types:5 ~machines:100) ~x ~seed)
    ~algos:(List.map Runner.heuristic [ Registry.H2; Registry.H3; Registry.H4w ])
    ()

let fig8 ?(replicates = 30) ?jobs () =
  Runner.run ~id:"fig8" ?jobs ~title:"High failure rates, m=10, p=5, f in [0,0.1]"
    ~x_label:"number of tasks" ~xs:(range 10 100 10) ~replicates
    ~gen:(fun ~x ~seed ->
      chain_gen (Gen.with_high_failures (Gen.default ~tasks:x ~types:5 ~machines:10)) ~x ~seed)
    ~algos:all_heuristics ()

let fig9 ?(replicates = 100) ?jobs () =
  Runner.run ~id:"fig9" ?jobs ~title:"One-to-one regime, m=n=100, f(i,u)=f_i"
    ~x_label:"number of types" ~xs:(range 20 100 10) ~replicates
    ~notes:
      [
        "OtO is the optimal one-to-one mapping (bottleneck assignment), \
         computable because failures are task-attached.";
      ]
    ~gen:(fun ~x ~seed ->
      let params =
        { (Gen.default ~tasks:100 ~types:x ~machines:100) with Gen.task_attached_failures = true }
      in
      chain_gen params ~x ~seed)
    ~algos:
      (List.map Runner.heuristic [ Registry.H2; Registry.H3; Registry.H4w ]
      @ [ Runner.oto_bottleneck ])
    ()

let small_exact_algos ~node_budget =
  all_heuristics @ [ Runner.exact_dfs ~node_budget ]

let fig10 ?(replicates = 30) ?(node_budget = 2_000_000) ?jobs () =
  Runner.run ~id:"fig10" ?jobs ~title:"Small instances vs exact optimum, m=5, p=2"
    ~x_label:"number of tasks" ~xs:(range 2 15 1) ~replicates
    ~notes:
      [
        "The MIP column is our exact branch-and-bound solver; the paper \
         used CPLEX on the same formulation.";
      ]
    ~gen:(fun ~x ~seed -> chain_gen (Gen.default ~tasks:x ~types:2 ~machines:5) ~x ~seed)
    ~algos:(small_exact_algos ~node_budget)
    ()

(* Fig. 11 is Fig. 10 normalised per instance by the exact optimum. *)
let fig11 ?replicates ?node_budget ?jobs () =
  let base = fig10 ?replicates ?node_budget ?jobs () in
  let points =
    List.map
      (fun (pt : Runner.point) ->
        let exact =
          match Runner.find_cell pt "MIP" with
          | Some c -> c.Runner.values
          | None -> [||]
        in
        let cells =
          List.filter_map
            (fun (c : Runner.cell) ->
              if c.Runner.label = "MIP" then None
              else begin
                let ratios =
                  Array.mapi
                    (fun rep v ->
                      match (v, if rep < Array.length exact then exact.(rep) else None) with
                      | Some period, Some opt when opt > 0.0 -> Some (period /. opt)
                      | _ -> None)
                    c.Runner.values
                in
                Some
                  {
                    c with
                    Runner.values = ratios;
                    Runner.successes =
                      Array.fold_left
                        (fun acc v -> if Option.is_some v then acc + 1 else acc)
                        0 ratios;
                  }
              end)
            pt.Runner.cells
        in
        { pt with Runner.cells })
      base.Runner.points
  in
  {
    base with
    Runner.id = "fig11";
    Runner.title = "Normalisation with the exact optimum, m=5, p=2";
    Runner.points = points;
    Runner.notes = [ "Values are per-instance ratios heuristic/optimal (1.0 = optimal)." ];
  }

let fig12 ?(replicates = 30) ?(node_budget = 2_000_000) ?jobs () =
  Runner.run ~id:"fig12" ?jobs ~title:"Exact comparison on m=9, p=4" ~x_label:"number of tasks"
    ~xs:(range 5 20 1) ~replicates
    ~notes:
      [
        "MIP cells report successes/trials: the node budget makes the exact \
         solver drop out on large n, as CPLEX did past 15 tasks in the paper.";
      ]
    ~gen:(fun ~x ~seed -> chain_gen (Gen.default ~tasks:x ~types:4 ~machines:9) ~x ~seed)
    ~algos:
      (List.map Runner.heuristic [ Registry.H2; Registry.H3; Registry.H4; Registry.H4w ]
      @ [ Runner.exact_dfs ~node_budget ])
    ()

(* The dynamic experiment is not one of the paper's figures: it pits the
   static H4w mapping against the same mapping plus the online re-mapper
   under machine breakdowns, with the availability-adjusted analytic
   bound as the reference curve.  Periods are *effective*: measurement
   window over produced outputs, so a dead bottleneck shows up as a
   longer period exactly like a slow machine would. *)
let dynamic_mtbf_periods = 48.0

let dynamic_mttr_periods = 16.0

let dynamic_sim label ~remap ~horizon_periods =
  {
    Runner.label;
    solve =
      (fun inst ~seed ->
        let mp = Registry.solve ~seed Registry.H4w inst in
        let p = Mf_core.Period.period inst mp in
        let bd =
          Mf_sim.Breakdown.uniform ~machines:(Mf_core.Instance.machines inst)
            ~mtbf:(dynamic_mtbf_periods *. p) ~mttr:(dynamic_mttr_periods *. p)
            ~crews:1 ()
        in
        let horizon = p *. horizon_periods in
        let r =
          if remap then
            Mf_remap.Online.simulate ~breakdowns:bd ~horizon ~seed inst mp
          else Mf_sim.Desim.run ~breakdowns:bd ~horizon ~seed inst mp
        in
        if r.Mf_sim.Desim.outputs = 0 then None
        else Some (r.Mf_sim.Desim.window /. float_of_int r.Mf_sim.Desim.outputs))
  }

let dynamic_bound =
  {
    Runner.label = "bound";
    solve =
      (fun inst ~seed ->
        let mp = Registry.solve ~seed Registry.H4w inst in
        let p = Mf_core.Period.period inst mp in
        let bd =
          Mf_sim.Breakdown.uniform ~machines:(Mf_core.Instance.machines inst)
            ~mtbf:(dynamic_mtbf_periods *. p) ~mttr:(dynamic_mttr_periods *. p)
            ~crews:1 ()
        in
        let tp = Mf_sim.Metrics.adjusted_throughput inst mp bd in
        if tp > 0.0 then Some (1.0 /. tp) else None)
  }

let dynamic ?(replicates = 10) ?(horizon_periods = 600.0) ?jobs () =
  Runner.run ~id:"dynamic" ?jobs
    ~title:
      (Printf.sprintf "Breakdowns and online re-mapping, m=6, p=2, mtbf=%gp, mttr=%gp"
         dynamic_mtbf_periods dynamic_mttr_periods)
    ~x_label:"number of tasks" ~xs:(range 10 40 10) ~replicates
    ~notes:
      [
        "Effective period: measurement window / outputs under per-machine \
         breakdowns (uniform law, one repair crew).";
        "bound is the availability-adjusted analytic period 1 / min_u \
         avail(u)/load(u); static leaves the H4w mapping alone; remap runs the \
         online re-mapper.";
      ]
    ~gen:(fun ~x ~seed -> chain_gen (Gen.default ~tasks:x ~types:2 ~machines:6) ~x ~seed)
    ~algos:
      [
        dynamic_bound;
        dynamic_sim "static" ~remap:false ~horizon_periods;
        dynamic_sim "remap" ~remap:true ~horizon_periods;
      ]
    ()

let all ?replicates ?node_budget ?jobs () =
  [
    ("fig5", fun () -> fig5 ?replicates ?jobs ());
    ("fig6", fun () -> fig6 ?replicates ?jobs ());
    ("fig7", fun () -> fig7 ?replicates ?jobs ());
    ("fig8", fun () -> fig8 ?replicates ?jobs ());
    ("fig9", fun () -> fig9 ?replicates ?jobs ());
    ("fig10", fun () -> fig10 ?replicates ?node_budget ?jobs ());
    ("fig11", fun () -> fig11 ?replicates ?node_budget ?jobs ());
    ("fig12", fun () -> fig12 ?replicates ?node_budget ?jobs ());
    ("dynamic", fun () -> dynamic ?replicates ?jobs ());
  ]
