module Registry = Mf_heuristics.Registry
module Period = Mf_core.Period

type algo = { label : string; solve : Mf_core.Instance.t -> seed:int -> float option }

type cell = { label : string; values : float option array; successes : int; trials : int }

type point = { x : int; cells : cell list }

type figure = {
  id : string;
  title : string;
  x_label : string;
  points : point list;
  notes : string list;
}

let heuristic h =
  {
    label = Registry.name h;
    solve = (fun inst ~seed -> Some (Period.period inst (Registry.solve ~seed h inst)));
  }

let oto_bottleneck =
  {
    label = "OtO";
    solve =
      (fun inst ~seed:_ ->
        let _, period = Mf_exact.Oto.bottleneck inst in
        Some period);
  }

let exact_dfs ~node_budget =
  {
    label = "MIP";
    solve =
      (fun inst ~seed:_ ->
        let r = Mf_exact.Dfs.specialized ~node_budget inst in
        if r.Mf_exact.Dfs.optimal then Some r.Mf_exact.Dfs.period else None);
  }

let lp_bound =
  {
    label = "LP-bound";
    solve =
      (fun inst ~seed:_ ->
        match Mf_lp.Splitting.solve inst with
        | Ok r -> Some r.Mf_lp.Splitting.period
        | Error _ -> None);
  }

let lp_round =
  {
    label = "LP-round";
    solve =
      (fun inst ~seed:_ ->
        match Mf_lp.Splitting.solve inst with
        | Error _ -> None
        | Ok r -> (
          match Mf_lp.Splitting.round inst r with
          | Ok (_, period) -> Some period
          | Error _ -> None));
  }

let portfolio ~node_budget =
  {
    label = "Portfolio";
    solve =
      (fun inst ~seed ->
        let req =
          Mf_solve.Solver.request_exn ~seed ~budget:(Mf_solve.Solver.Nodes node_budget) inst
        in
        (Mf_solve.Portfolio.solve req).Mf_solve.Solver.period);
  }

(* One Splitmix64 finalisation per absorbed word.  The finaliser is a
   bijection of [acc xor v], so every absorbed byte/integer feeds the full
   64-bit state — unlike [Hashtbl.hash], which folds to 30 bits and
   collides across (x, rep) pairs, silently correlating replicates. *)
let absorb acc v =
  Mf_prng.Splitmix64.next (Mf_prng.Splitmix64.create (Int64.logxor acc v))

let derive_seed ~id ~x ~rep =
  (* Absorbing the length first domain-separates the id bytes from the
     x/rep integers ("fig51", x=0 must not alias "fig5", x=10). *)
  let acc = ref (absorb 0x6D61702D72756E65L (Int64.of_int (String.length id))) in
  String.iter (fun c -> acc := absorb !acc (Int64.of_int (Char.code c))) id;
  acc := absorb !acc (Int64.of_int x);
  acc := absorb !acc (Int64.of_int rep);
  Int64.to_int (Int64.logand !acc 0x3FFFFFFFFFFFFFFFL)

let run ~id ~title ~x_label ?(notes = []) ?(jobs = 1) ?pool ?chunk ~xs ~replicates ~gen ~algos ()
    =
  let algos = Array.of_list algos in
  let n_algos = Array.length algos in
  let xs_arr = Array.of_list xs in
  let nx = Array.length xs_arr in
  (* One unit of work per (x, replicate) pair of the whole grid — not per
     (algorithm, replicate) of one point: the instance is generated once
     and solved by every algorithm in registration order, and fanning the
     entire grid out in a single batch gives the pool coarse chunks to
     amortise synchronisation over.  Each unit is a pure function of
     (id, x, rep), and results are placed by index, so the figure is
     identical for any jobs and chunk value. *)
  let solve_unit k =
    let xi = k / replicates and rep = k mod replicates in
    let x = xs_arr.(xi) in
    let seed = derive_seed ~id ~x ~rep in
    let inst = gen ~x ~seed in
    Array.map (fun algo -> algo.solve inst ~seed) algos
  in
  let units = Array.init (nx * replicates) Fun.id in
  let slots =
    match pool with
    | Some pool -> Mf_parallel.Pool.map_array ?chunk pool units ~f:solve_unit
    | None ->
      if jobs <= 1 then Array.map solve_unit units
      else
        Mf_parallel.Pool.map_array ?chunk (Mf_parallel.Pool.shared ~domains:jobs) units
          ~f:solve_unit
  in
  let points =
    List.init nx (fun xi ->
        let cells =
          List.init n_algos (fun ai ->
              let values = Array.init replicates (fun rep -> slots.((xi * replicates) + rep).(ai)) in
              {
                label = algos.(ai).label;
                values;
                successes =
                  Array.fold_left (fun acc v -> if Option.is_some v then acc + 1 else acc) 0 values;
                trials = replicates;
              })
        in
        { x = xs_arr.(xi); cells })
  in
  { id; title; x_label; points; notes }

let successful cell =
  Array.of_list (List.filter_map Fun.id (Array.to_list cell.values))

let mean cell =
  let ok = successful cell in
  if Array.length ok = 0 then nan else Mf_numeric.Stats.mean ok

let find_cell point label = List.find_opt (fun c -> c.label = label) point.cells
