(* Compressed-sparse-column matrices, functorised over an ordered field.

   This is the storage layer of the revised simplex: the constraint
   matrix is read column-wise both by pricing (reduced-cost dot products
   against the dual vector) and by the LU factorisation of the basis, so
   CSC is the natural layout.  The structure is deliberately minimal —
   build, read columns, map values — and carries no numerics beyond what
   construction needs: triangular solves belong to {!Lu}, where the
   permutations live.

   The record itself is polymorphic in the value type so the exact
   rational certification path can receive the float path's matrix by a
   structure-preserving [map_values] (sharing the index arrays) instead
   of a dense detour. *)

type 'v repr = {
  rows : int;
  cols : int;
  colptr : int array;  (* length cols + 1 *)
  rowind : int array;  (* length nnz, row index of each entry *)
  values : 'v array;  (* length nnz, parallel to rowind *)
}

let map_values f t = { t with values = Array.map f t.values }

module Make (F : Mf_numeric.Ordered_field.S) = struct
  type t = F.t repr

  let rows (t : t) = t.rows
  let cols (t : t) = t.cols
  let nnz (t : t) = t.colptr.(t.cols)

  let iter_col (t : t) j f =
    if j < 0 || j >= t.cols then invalid_arg "Sparse.iter_col: column out of range";
    for k = t.colptr.(j) to t.colptr.(j + 1) - 1 do
      f t.rowind.(k) t.values.(k)
    done

  let col_nnz (t : t) j =
    if j < 0 || j >= t.cols then invalid_arg "Sparse.col_nnz: column out of range";
    t.colptr.(j + 1) - t.colptr.(j)

  (* Entries are kept in the order the builder received them; nothing in
     the solver requires sorted row indices within a column, only that
     each (row, col) pair appears at most once — checked here. *)
  let of_columns ~rows ~cols columns : t =
    if Array.length columns <> cols then invalid_arg "Sparse.of_columns: column count";
    let colptr = Array.make (cols + 1) 0 in
    let total = ref 0 in
    Array.iteri
      (fun j entries ->
        colptr.(j) <- !total;
        List.iter
          (fun (i, _) ->
            if i < 0 || i >= rows then invalid_arg "Sparse.of_columns: row out of range";
            incr total)
          entries)
      columns;
    colptr.(cols) <- !total;
    let rowind = Array.make !total 0 in
    let values = Array.make !total F.zero in
    let seen = Array.make rows (-1) in
    Array.iteri
      (fun j entries ->
        let k = ref colptr.(j) in
        List.iter
          (fun (i, v) ->
            if seen.(i) = j then invalid_arg "Sparse.of_columns: duplicate entry";
            seen.(i) <- j;
            rowind.(!k) <- i;
            values.(!k) <- v;
            incr k)
          entries)
      columns;
    { rows; cols; colptr; rowind; values }

  (* Dense [rows x cols] row-major input; exact zeros are dropped.  Used
     by the dense-input entry points of {!Simplex} and by tests — the
     large-instance paths build columns directly. *)
  let of_dense a ~cols : t =
    let rows = Array.length a in
    Array.iter
      (fun r -> if Array.length r < cols then invalid_arg "Sparse.of_dense: short row")
      a;
    let colptr = Array.make (cols + 1) 0 in
    let total = ref 0 in
    for j = 0 to cols - 1 do
      colptr.(j) <- !total;
      for i = 0 to rows - 1 do
        if F.compare a.(i).(j) F.zero <> 0 then incr total
      done
    done;
    colptr.(cols) <- !total;
    let rowind = Array.make !total 0 in
    let values = Array.make !total F.zero in
    let k = ref 0 in
    for j = 0 to cols - 1 do
      for i = 0 to rows - 1 do
        if F.compare a.(i).(j) F.zero <> 0 then begin
          rowind.(!k) <- i;
          values.(!k) <- a.(i).(j);
          incr k
        end
      done
    done;
    { rows; cols; colptr; rowind; values }

  let to_dense (t : t) =
    let d = Array.make_matrix t.rows t.cols F.zero in
    for j = 0 to t.cols - 1 do
      iter_col t j (fun i v -> d.(i).(j) <- v)
    done;
    d

  (* Per-column infinity norm, used for row equilibration and pivot
     thresholds. *)
  let col_max_abs t j =
    let mx = ref F.zero in
    iter_col t j (fun _ v ->
        let a = F.abs v in
        if F.compare a !mx > 0 then mx := a);
    !mx

  (* Static row occupancy counts — the Markowitz-style tie-break data of
     {!Lu.factorize}. *)
  let row_counts (t : t) =
    let counts = Array.make t.rows 0 in
    Array.iter (fun i -> counts.(i) <- counts.(i) + 1) t.rowind;
    counts
end
