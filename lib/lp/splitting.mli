(** The paper's future-work extension: divisible task workloads.

    "An interesting problem would be to consider that the instances of a
    same task can be computed by several machines.  Thus, the workload of a
    task would be divided and the throughput could be improved."
    (Conclusion of the paper.)

    With divisible workloads the problem becomes a pure linear program,
    posed here in {e throughput} form: let [y(i,u) >= 0] be the rate at
    which machine [u] processes task [i] (products per time unit) and
    [rho] the system throughput:

    {v maximize rho
      s.t.  sum_u y(i,u) * (1 - f(i,u)) = demand(i)          (flow)
            sum_i y(i,u) * w(i,u) <= 1                        (capacity) v}

    where [demand(i)] is [rho] for a sink task and the successor's total
    intake [sum_u y(j,u)] otherwise (one product from each predecessor
    per assembled output).  The reported period is [K = 1/rho], and the
    per-product counts are [x = y/K] — the classical period-minimization
    LP under the substitution [y = x/K].  The throughput form is chosen
    deliberately: in period form every non-sink flow row and every load
    row has rhs 0, so the simplex starts at a massively degenerate
    vertex and large instances stall on zero-step plateaus; with unit
    capacity rows the start vertex is non-degenerate on the machine side
    and solve times stay polynomial in practice through n = 100.

    The LP optimum is a {e lower bound} for every mapping rule of the
    paper (any specialized mapping is the special case where each task
    uses a single machine), and [round] turns the shares into a feasible
    specialized mapping, giving an LP-guided heuristic.

    Solving goes through {!Mip.solve_relaxation_certified}: the float
    simplex answers almost always, and any float-path failure is
    re-solved by the exact-rational simplex warm-started from the float
    basis.  [solve] therefore returns a typed result instead of raising,
    and the result records which path produced it — sweeps over large
    grids never abort on a numerically hard seed. *)

(** Which solver produced the answer (see {!Mip.path}). *)
type path = [ `Float | `Rational ]

type result = {
  period : float;  (** the LP optimum — a bound no integral mapping beats *)
  shares : float array array;
      (** [shares.(i).(u)]: fraction of task [i]'s workload on machine [u] *)
  loads : float array;  (** per-machine time per finished product *)
  path : path;  (** [`Rational] when the float simplex needed certification *)
  stats : Mip.certified_stats;  (** pivot counts of both attempts *)
}

(** Why an LP solve failed.  Unreachable for well-formed instances — the
    flow-conservation structure guarantees a feasible, bounded LP — but
    typed so grid sweeps record the failure instead of crashing. *)
type error = [ `Infeasible | `Unbounded ]

val describe_error : error -> string

(** [solve inst] solves the divisible-workload LP.  Never raises on
    well-formed instances; a numerically hard tableau takes the
    rational-certified path instead of failing.  This is the only entry
    point — the untyped [solve_exn] escape hatch is gone, so every
    caller handles (or consciously converts) the typed failure. *)
val solve : Mf_core.Instance.t -> (result, error) Stdlib.result

(** [solve_exact inst] solves the same LP entirely in exact rational
    arithmetic (no float attempt, no warm start) and returns the optimum
    period.  Ground truth for the [lp-differential] suite. *)
val solve_exact : Mf_core.Instance.t -> (float, error) Stdlib.result

(** [model inst] is the LP as a {!Model.t}, exposed so the bench can
    drive the simplex backends directly on the standardized tableau. *)
val model : Mf_core.Instance.t -> Model.t

(** Why rounding failed: the instance admits no specialized mapping at
    all ([m < p]), or some task has an empty eligible-machine list. *)
type round_error =
  | No_specialized_mapping
  | No_eligible_machine of int  (** the task index with no eligible machine *)

val describe_round_error : round_error -> string

(** [round inst r] builds a feasible {e specialized} mapping by walking
    tasks backward and assigning each to its largest-share eligible
    machine, breaking share ties toward the lowest machine index so the
    result is deterministic.  Returns the mapping and its (integral)
    period. *)
val round :
  Mf_core.Instance.t -> result -> (Mf_core.Mapping.t * float, round_error) Stdlib.result

(** [round_exn inst r] is [round], raising on failure.
    @raise Failure on [Error _]. *)
val round_exn : Mf_core.Instance.t -> result -> Mf_core.Mapping.t * float
