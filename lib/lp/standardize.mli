(** Conversion of a {!Model} (bounded variables, mixed relations) to the
    standard form [min c'x, Ax = b, x >= 0] expected by {!Simplex}, with a
    recovery function mapping standard solutions back to model space.

    Transformation rules per variable with (possibly overridden) bounds
    [lo, hi]:
    - finite [lo]: substitute [x = lo + y], [y >= 0]; a finite [hi] adds a
      row [y + slack = hi - lo];
    - [lo = -inf], finite [hi]: substitute [x = hi - y];
    - free: split [x = y⁺ - y⁻].

    [Le]/[Ge] constraints receive slack/surplus columns. *)

type t = {
  a : float Sparse.repr;
      (** constraint matrix in compressed-sparse-column form — the
          representation {!Simplex.Make.solve_sparse_detailed} consumes
          directly, and the only one that scales to the n ~ 10^3..10^4
          throughput-form LPs (their tableaus are ~99% zeros) *)
  b : float array;
  c : float array;
  (* [recover std] maps a standard-form solution back to the model's
     variables. *)
  recover : float array -> float array;
  (* Constant to add to the standard objective to get the model objective
     in minimization space. *)
  obj_offset : float;
  (* True when the model maximizes: the model objective is the negation of
     (standard objective + offset). *)
  negated : bool;
}

(** [build ?lo ?hi model] standardises the model's LP relaxation with
    optional per-variable bound overrides.  Returns [None] when some
    variable's bounds are empty ([lo > hi]) — an infeasible
    branch-and-bound node. *)
val build : ?lo:float array -> ?hi:float array -> Model.t -> t option

(** [model_objective t std_obj] converts a standard-form objective value to
    the model's objective value. *)
val model_objective : t -> float -> float
