module Ds = Mf_structures.Dyn_array
module Sp = Sparse.Make (Mf_numeric.Ordered_field.Float_field)

type t = {
  a : float Sparse.repr;
  b : float array;
  c : float array;
  recover : float array -> float array;
  obj_offset : float;
  negated : bool;
}

(* How each model variable is represented in standard form. *)
type repr =
  | Shifted of int * float (* x = lo + y_k *)
  | Mirrored of int * float (* x = hi - y_k *)
  | Split of int * int (* x = y_k1 - y_k2 *)

let build ?lo ?hi model =
  let nvars = Model.var_count model in
  let lo_of v = match lo with Some arr -> arr.(v) | None -> Model.var_lo model v in
  let hi_of v = match hi with Some arr -> arr.(v) | None -> Model.var_hi model v in
  if List.exists (fun v -> lo_of v > hi_of v) (List.init nvars Fun.id) then None
  else begin
    let next = ref 0 in
    let fresh () =
      let k = !next in
      incr next;
      k
    in
    let upper_rows = Ds.create () in
    (* (std var, rhs) meaning y_k + slack = rhs *)
    let repr =
      Array.init nvars (fun v ->
          let l = lo_of v and h = hi_of v in
          if Float.is_finite l then begin
            let k = fresh () in
            if Float.is_finite h then Ds.push upper_rows (k, h -. l);
            Shifted (k, l)
          end
          else if Float.is_finite h then Mirrored (fresh (), h)
          else Split (fresh (), fresh ()))
    in
    (* Substitute a model expression: returns (coeffs over std vars so far,
       constant). Coefficients are accumulated in a Hashtbl keyed by std id. *)
    let substitute expr =
      let coeffs = Hashtbl.create 16 in
      let addc k v =
        Hashtbl.replace coeffs k (v +. (try Hashtbl.find coeffs k with Not_found -> 0.0))
      in
      let constant = ref (Linexpr.constant expr) in
      Linexpr.iter
        (fun v c ->
          match repr.(v) with
          | Shifted (k, l) ->
            addc k c;
            constant := !constant +. (c *. l)
          | Mirrored (k, h) ->
            addc k (-.c);
            constant := !constant +. (c *. h)
          | Split (k1, k2) ->
            addc k1 c;
            addc k2 (-.c))
        expr;
      (coeffs, !constant)
    in
    let model_constraints = Model.constraints model in
    (* Count slack columns: one per Le/Ge constraint plus one per upper row. *)
    let slack_count =
      Ds.length upper_rows
      + List.length
          (List.filter (fun (_, _, rel, _) -> rel <> Model.Eq) model_constraints)
    in
    let structural = !next in
    let total = structural + slack_count in
    (* The matrix is accumulated column-wise for the revised simplex's
       CSC form.  Each row contributes at most one entry per column (the
       per-row Hashtbl coalesces duplicates), and entries are appended in
       row-creation order, so the storage order — and with it every
       floating-point accumulation downstream — is deterministic despite
       the Hashtbl iteration in between. *)
    let columns = Array.make total [] in
    let rhs_ds = Ds.create () in
    let nrows = ref 0 in
    let slack_cursor = ref structural in
    let add_row coeffs rhs slack_sign =
      let r = !nrows in
      incr nrows;
      Hashtbl.iter
        (fun k c -> if c <> 0.0 then columns.(k) <- (r, c) :: columns.(k))
        coeffs;
      (match slack_sign with
      | 0 -> ()
      | s ->
        columns.(!slack_cursor) <- (r, float_of_int s) :: columns.(!slack_cursor);
        incr slack_cursor);
      Ds.push rhs_ds rhs
    in
    (* Variable upper-bound rows. *)
    Ds.iter
      (fun (k, rhs) ->
        let coeffs = Hashtbl.create 1 in
        Hashtbl.replace coeffs k 1.0;
        add_row coeffs rhs 1)
      upper_rows;
    (* Model constraints. *)
    List.iter
      (fun (_, expr, rel, rhs) ->
        let coeffs, const = substitute expr in
        let rhs = rhs -. const in
        match rel with
        | Model.Le -> add_row coeffs rhs 1
        | Model.Ge -> add_row coeffs rhs (-1)
        | Model.Eq -> add_row coeffs rhs 0)
      model_constraints;
    (* Objective in minimization space. *)
    let minimize, obj_expr = Model.objective model in
    let obj_expr = if minimize then obj_expr else Linexpr.scale (-1.0) obj_expr in
    let obj_coeffs, obj_offset = substitute obj_expr in
    let c = Array.make total 0.0 in
    Hashtbl.iter (fun k v -> c.(k) <- v) obj_coeffs;
    let a =
      Sp.of_columns ~rows:!nrows ~cols:total (Array.map List.rev columns)
    in
    let b = Array.init (Ds.length rhs_ds) (Ds.get rhs_ds) in
    let recover std =
      Array.init nvars (fun v ->
          match repr.(v) with
          | Shifted (k, l) -> l +. std.(k)
          | Mirrored (k, h) -> h -. std.(k)
          | Split (k1, k2) -> std.(k1) -. std.(k2))
    in
    Some { a; b; c; recover; obj_offset; negated = not minimize }
  end

let model_objective t std_obj =
  let v = std_obj +. t.obj_offset in
  if t.negated then -.v else v
