(** Public entry points of the LP/MIP solver stack. *)

(** [solve ?node_budget model] solves a mixed-integer model by
    branch-and-bound over simplex relaxations (see {!Branch_bound}). *)
val solve : ?node_budget:int -> Model.t -> Branch_bound.result

(** Which solver produced a certified answer: the float simplex alone,
    or the exact-rational fallback it warm-started. *)
type path = [ `Float | `Rational ]

type certified_stats = {
  float_iterations : int;  (** pivots of the float attempt *)
  exact_iterations : int;  (** pivots of the rational fallback (0 on the float path) *)
  factorizations : int;
      (** LU basis factorisations across both attempts (revised simplex) *)
  eta_updates : int;
      (** basis exchanges absorbed by product-form eta updates — the
          cheap path; the ratio of [eta_updates] to [factorizations]
          is the basis-reuse rate *)
  refactorizations : int;
      (** factorisations forced mid-solve by the eta cap, fill growth,
          or a refused eta pivot *)
  path : path;
}

(** All-zero stats record, the identity for aggregation. *)
val zero_stats : certified_stats

(** [solve_relaxation model] solves the continuous relaxation with the
    float simplex only.  Returns the model-space solution and objective.
    [`Stalled] reports an exhausted pivot budget (see
    {!Simplex.Make.outcome}); callers that must not fail should use
    {!solve_relaxation_certified} instead. *)
val solve_relaxation :
  Model.t -> [ `Optimal of float array * float | `Infeasible | `Unbounded | `Stalled ]

(** [solve_relaxation_exact model] solves the relaxation with the
    exact-rational simplex from scratch — slower, bit-exact; used to
    validate the float path. *)
val solve_relaxation_exact :
  Model.t -> [ `Optimal of float array * float | `Infeasible | `Unbounded ]

(** [solve_relaxation_certified model] is {!solve_relaxation} with the
    failure modes removed: when the float path reports [`Infeasible],
    [`Unbounded] or [`Stalled], the relaxation is re-solved by the
    exact-rational simplex warm-started from the float solver's final
    basis, and that verdict is final.  The stats record which path
    produced the answer and how many pivots each solver spent. *)
val solve_relaxation_certified :
  Model.t ->
  [ `Optimal of float array * float | `Infeasible | `Unbounded ] * certified_stats
