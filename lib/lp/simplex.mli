(** Two-phase primal simplex, functorised over an ordered field.

    The default entry points ({!Make.solve}, {!Make.solve_detailed},
    {!Make.solve_from_basis}) run a {e revised} simplex over a sparse
    LU-factorised basis ({!Sparse}, {!Lu}): per iteration one BTRAN for
    the duals, one O(nnz) pricing sweep, one FTRAN for the entering
    column and a product-form eta update, with periodic
    refactorisation.  The former dense-tableau solver survives intact as
    {!Make.solve_dense} / {!Make.solve_dense_detailed} /
    {!Make.solve_dense_from_basis} — it is the differential anchor the
    [sparse-vs-dense] fuzz oracle pins the revised path against.
    {!Make.solve_sparse_detailed} and {!Make.solve_sparse_from_basis}
    accept the constraint matrix directly in CSC form, skipping the
    dense detour entirely — the path the large throughput-form LPs take.

    The float instance solves the LP relaxations inside branch-and-bound
    and {!Splitting}; the exact-rational instance
    ({!Mf_numeric.Ordered_field.Rat_field}) certifies it — both in the
    test-suite and at runtime, through the warm-started
    {!Make.solve_from_basis} fallback taken when the float path reports
    [Infeasible] or [Stalled] on a system known to be feasible.

    Numerical discipline of the inexact instance: rows are equilibrated
    by exact powers of two, every threshold is {e relative} to row /
    reduced-cost-row norms maintained across pivots, pricing is Devex
    with a stall detector that falls back to Bland's rule (whose
    anti-cycling argument needs no tolerance assumptions), and a pivot
    budget turns the remaining failure mode into the typed {!Make.Stalled}
    outcome.  Exact fields ([eps = rel_eps = 0]) run unscaled with exact
    comparisons and an unbounded default budget: termination is
    guaranteed because Bland's rule terminates from any tableau and a
    strict objective improvement can never revisit a basis.

    Problems must be given in standard form
    [min c'x  s.t.  Ax = b, x >= 0]; {!Standardize} converts general
    models. *)

(** Raised when an input coefficient is NaN or infinite (inexact fields
    only): such values would corrupt the row equilibration silently.
    [row >= 0] names the offending constraint row, with [col = n]
    (the column count) denoting its right-hand side; [row = -1] is the
    objective vector. *)
exception Non_finite of { row : int; col : int }

(** Pricing rule: Devex (default, fast on large degenerate tableaus) or
    Bland (lowest-index, the anti-cycling and baseline rule). *)
type pricing = Devex | Bland

module Make (F : Mf_numeric.Ordered_field.S) : sig
  type outcome =
    | Optimal of F.t array * F.t  (** primal solution and objective value *)
    | Infeasible
    | Unbounded
    | Stalled
        (** the pivot budget ran out before optimality — the typed
            replacement for the former behaviour of looping (or cycling)
            forever on numerically hard instances *)

  (** Full solver report. *)
  type detail = {
    outcome : outcome;
    basis : int array;
        (** final basis, [basis.(i)] = column basic in row [i]; columns
            [>= n] are phase-1 artificials (redundant rows).  Feed it to
            {!solve_from_basis} of the exact instance to certify a float
            result without redoing phase 1. *)
    iterations : int;  (** pivots performed, both phases *)
    degenerate : int;  (** pivots with no objective progress *)
    bland_pivots : int;  (** pivots taken under the Bland fallback *)
    factorizations : int;
        (** LU factorisations of the basis (revised path; 0 on the dense
            path) *)
    eta_updates : int;
        (** basis exchanges absorbed as product-form etas instead of a
            refactorisation *)
    refactorizations : int;
        (** factorisations forced after the first of a phase — by the
            eta-file cap, accumulated fill, or a refused eta pivot *)
  }

  (** [solve ~a ~b ~c] minimizes [c'x] subject to [a x = b], [x >= 0].
      Rows with negative [b] are negated internally.
      @raise Invalid_argument on dimension mismatches.
      @raise Non_finite on NaN/infinite coefficients (inexact fields). *)
  val solve : a:F.t array array -> b:F.t array -> c:F.t array -> outcome

  (** [solve_detailed ?pricing ?relative ?iter_budget ~a ~b ~c ()] is
      {!solve} with the full report.  [relative] (default [true])
      selects norm-relative thresholds; [false] restores the absolute
      [F.eps] tests of the baseline solver.  [iter_budget] defaults to
      [max 2000 (40 rows + 4 cols)] for inexact fields and unlimited for
      exact ones. *)
  val solve_detailed :
    ?pricing:pricing ->
    ?relative:bool ->
    ?iter_budget:int ->
    a:F.t array array ->
    b:F.t array ->
    c:F.t array ->
    unit ->
    detail

  (** The previous generation of the solver — Bland's rule under
      absolute [F.eps] thresholds (row equilibration kept) — plus a
      pivot budget so its stalls terminate.  Kept as the baseline the
      bench's before/after comparison ([make bench-lp]) is measured
      against, the way {!Mf_exact.Dfs.solve_static} anchors the exact
      bench. *)
  val solve_bland : a:F.t array array -> b:F.t array -> c:F.t array -> outcome

  val solve_bland_detailed :
    ?iter_budget:int ->
    a:F.t array array ->
    b:F.t array ->
    c:F.t array ->
    unit ->
    detail

  (** [solve_from_basis ~a ~b ~c ~basis ()] warm-starts from a proposed
      basis — typically the float solver's final [detail.basis] — by
      realizing it with direct elimination and running phase 2 only,
      skipping the artificial-variable phase 1 entirely.  If the basis
      cannot be realized (singular, primal infeasible, or a basic
      artificial carrying flow), it silently falls back to the full
      two-phase solve, so the result is always as trustworthy as
      {!solve}.  Intended for the exact instance, where phase 1 is the
      dominant cost of certifying a float answer. *)
  val solve_from_basis :
    ?iter_budget:int ->
    a:F.t array array ->
    b:F.t array ->
    c:F.t array ->
    basis:int array ->
    unit ->
    detail

  (** {2 Sparse-input entry points}

      The same solver without the dense detour: [a] is given in
      compressed-sparse-column form ({!Sparse.Make.of_columns}).  The
      large throughput-form LPs are ~99% zeros, so this is the only
      representation that scales past a few hundred tasks. *)

  val solve_sparse :
    a:F.t Sparse.repr -> b:F.t array -> c:F.t array -> outcome

  val solve_sparse_detailed :
    ?pricing:pricing ->
    ?relative:bool ->
    ?iter_budget:int ->
    a:F.t Sparse.repr ->
    b:F.t array ->
    c:F.t array ->
    unit ->
    detail

  (** Warm start on the sparse path: factorise the proposed basis
      directly, recover the basic solution with one FTRAN, and run
      phase 2 only — falling back to the full two-phase solve whenever
      the basis cannot be realised, exactly like {!solve_from_basis}. *)
  val solve_sparse_from_basis :
    ?iter_budget:int ->
    a:F.t Sparse.repr ->
    b:F.t array ->
    c:F.t array ->
    basis:int array ->
    unit ->
    detail

  (** {2 Dense tableau baseline}

      The previous core, kept whole: two-phase primal simplex by direct
      tableau elimination.  Differential anchor for the revised path
      (they must agree to the oracle's tolerance on every instance) and
      still the cheapest option for tiny dense systems. *)

  val solve_dense : a:F.t array array -> b:F.t array -> c:F.t array -> outcome

  val solve_dense_detailed :
    ?pricing:pricing ->
    ?relative:bool ->
    ?iter_budget:int ->
    a:F.t array array ->
    b:F.t array ->
    c:F.t array ->
    unit ->
    detail

  val solve_dense_from_basis :
    ?iter_budget:int ->
    a:F.t array array ->
    b:F.t array ->
    c:F.t array ->
    basis:int array ->
    unit ->
    detail
end

(** Float instance, used by {!Branch_bound} and {!Splitting}. *)
module Float_solver : module type of Make (Mf_numeric.Ordered_field.Float_field)

(** Exact rational instance: the certification path. *)
module Rat_solver : module type of Make (Mf_numeric.Ordered_field.Rat_field)
