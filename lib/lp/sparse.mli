(** Compressed-sparse-column matrices for the revised simplex.

    The representation is polymorphic in the value type so that
    {!map_values} can hand the float path's matrix to the exact-rational
    certification path structure-intact (the integer index arrays are
    shared, only the value array is rebuilt).  All numerics beyond
    construction — triangular solves, factorisation — live in {!Lu}. *)

type 'v repr = {
  rows : int;
  cols : int;
  colptr : int array;  (** length [cols + 1] *)
  rowind : int array;  (** row index per entry, parallel to [values] *)
  values : 'v array;
}

(** Structure-preserving value conversion (e.g. float to rational). *)
val map_values : ('a -> 'b) -> 'a repr -> 'b repr

module Make (F : Mf_numeric.Ordered_field.S) : sig
  type t = F.t repr

  val rows : t -> int
  val cols : t -> int
  val nnz : t -> int

  (** [iter_col t j f] applies [f row value] to each stored entry of
      column [j], in storage order (not necessarily sorted by row). *)
  val iter_col : t -> int -> (int -> F.t -> unit) -> unit

  val col_nnz : t -> int -> int

  (** [of_columns ~rows ~cols columns] builds from per-column entry
      lists.  @raise Invalid_argument on out-of-range rows or duplicate
      (row, col) pairs. *)
  val of_columns : rows:int -> cols:int -> (int * F.t) list array -> t

  (** [of_dense a ~cols] drops exact zeros of a dense row-major matrix.
      Rows may be longer than [cols]; the excess is ignored (the dense
      simplex tableau carries an rhs column). *)
  val of_dense : F.t array array -> cols:int -> t

  val to_dense : t -> F.t array array

  (** Largest absolute value stored in a column ([F.zero] if empty). *)
  val col_max_abs : t -> int -> F.t

  (** Number of stored entries per row. *)
  val row_counts : t -> int array
end
