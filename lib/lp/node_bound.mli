(** Incremental divisible-workload LP bound for exact-search nodes.

    One [t] tracks a branch-and-bound assignment prefix through
    {!push}/{!pop} calls mirroring the search's assign/undo journal, and
    {!bound} solves the {e reduced} splitting LP of the remaining
    subproblem: because the search assigns tasks in backward order
    (successors first), every committed task's product count [x] is
    exact at push time, so the committed region collapses into
    per-machine load coefficients on the throughput column and the LP
    keeps one flow row and [m] rate columns {e per uncommitted task
    only}.  The LP shrinks as the search descends — smallest exactly
    where node counts explode.

    The relaxation is rule-aware.  Committing a task to a machine locks
    that machine under the search's mapping rule — to the task's type
    (specialized) or entirely (one-to-one) — and locked-out rate
    columns are fixed to zero.  Every completion of the prefix that
    satisfies the rule is a feasible point of the restricted LP, so the
    optimum [rho*] upper-bounds every completion's throughput and
    [1/rho*] — deflated by a small safety factor covering float
    tolerance — is a sound period lower bound for pruning.  Under the
    general rule no columns are excluded and the bound is the plain
    splitting relaxation of the remaining subproblem.

    Each solve is warm-started from the basis recorded by the previous
    solve at the same depth (a per-depth basis stack): sibling nodes
    share their uncommitted task set, so their LPs have identical shape
    and differ only in load and lock coefficients.  A basis the solver
    cannot realize falls back to the cold two-phase solve inside
    {!Simplex.Make.solve_sparse_from_basis} — staleness costs pivots,
    never soundness.  All arithmetic is the deterministic float
    simplex: for a fixed prefix the bound is a pure function of the
    instance and rule, independent of thread schedule — parallel
    searches using one oracle per subtree stay byte-identical across
    [--jobs]. *)

type t

(** [create ?rule inst] builds the oracle; [rule] (default
    [General]) must match the search's rule — a stricter rule yields
    tighter, still sound, bounds for that rule's completions only.
    O(n + m) state; no solve yet. *)
val create : ?rule:Mf_core.Mapping.rule -> Mf_core.Instance.t -> t

(** [push t ~task ~machine] commits [task] to [machine].
    @raise Invalid_argument when [task] is already committed or its
    successor is not ([push]es must follow the backward assignment
    order — the product count of [task] is computed from its
    successor's). *)
val push : t -> task:int -> machine:int -> unit

(** [pop t] undoes the most recent {!push} (bit-exactly: journalled
    state is restored verbatim, not recomputed).
    @raise Invalid_argument when the journal is empty. *)
val pop : t -> unit

(** [bound t ~cutoff] evaluates the current reduced LP (warm-started)
    and returns either a period lower bound valid for every
    rule-respecting completion of the pushed prefix, or a value
    [< cutoff].  The caller prunes when the result reaches [cutoff]
    (its incumbent threshold); any returned value that does reach
    [cutoff] is a sound bound, while a smaller value only witnesses
    that the node cannot be pruned — the distinction lets the
    specialized-rule enumeration over free-machine type assignments
    stop at the first variant that cannot prune.  [0.0] (no pruning
    power) when the LP stalls, degenerates to zero throughput, or
    fails. *)
val bound : t -> cutoff:float -> float

(** Number of LP solves performed so far. *)
val solves : t -> int

(** Work counters, cumulative over the oracle's lifetime. *)
type stats = {
  solves : int;  (** LP solves actually performed *)
  reuses : int;  (** evaluations answered by the parent's optimum, no solve *)
  warm_starts : int;  (** solves started from a recorded sibling basis *)
  pivots : int;  (** simplex iterations across all solves *)
  factorizations : int;  (** LU factorizations across all solves *)
}

val stats : t -> stats
