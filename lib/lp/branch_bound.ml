module Heap = Mf_structures.Binary_heap

type status = Optimal | Feasible | Infeasible | Unbounded | Unknown

type result = {
  status : status;
  solution : float array option;
  objective : float option;
  nodes : int;
}

type node = { bound : float; lo : float array; hi : float array }

(* All bounding happens in minimization space; [Standardize.model_objective]
   converts back only for the final report. *)
let solve ?(node_budget = 200_000) ?(int_tol = 1e-6) model =
  let nvars = Model.var_count model in
  let int_vars = Model.integer_vars model in
  let root_lo = Array.init nvars (Model.var_lo model) in
  let root_hi = Array.init nvars (Model.var_hi model) in
  let relax ~lo ~hi =
    let module FS = Simplex.Float_solver in
    let module RS = Simplex.Rat_solver in
    match Standardize.build ~lo ~hi model with
    | None -> `Infeasible
    | Some std -> (
      let d =
        FS.solve_sparse_detailed ~a:std.Standardize.a ~b:std.Standardize.b
          ~c:std.Standardize.c ()
      in
      match d.FS.outcome with
      | FS.Infeasible -> `Infeasible
      | FS.Unbounded -> `Unbounded
      | FS.Optimal (x, obj) ->
        `Optimal (std.Standardize.recover x, obj +. std.Standardize.obj_offset)
      | FS.Stalled ->
        (* An exhausted pivot budget must neither loop nor prune unsoundly:
           certify the node exactly, warm-started from the float basis. *)
        let module R = Mf_numeric.Rat in
        let a = Sparse.map_values R.of_float std.Standardize.a in
        let b = Array.map R.of_float std.Standardize.b in
        let c = Array.map R.of_float std.Standardize.c in
        let rd = RS.solve_sparse_from_basis ~a ~b ~c ~basis:d.FS.basis () in
        (match rd.RS.outcome with
        | RS.Infeasible -> `Infeasible
        | RS.Unbounded -> `Unbounded
        | RS.Optimal (x, obj) ->
          `Optimal
            ( std.Standardize.recover (Array.map R.to_float x),
              R.to_float obj +. std.Standardize.obj_offset )
        | RS.Stalled -> assert false))
  in
  let most_fractional x =
    let best = ref None in
    List.iter
      (fun v ->
        let frac = Float.abs (x.(v) -. Float.round x.(v)) in
        if frac > int_tol then
          match !best with
          | Some (_, bf) when bf >= frac -> ()
          | _ -> best := Some (v, frac))
      int_vars;
    Option.map fst !best
  in
  let incumbent = ref None in
  let incumbent_obj = ref infinity in
  let nodes = ref 0 in
  let frontier = Heap.create ~cmp:(fun a b -> Float.compare a.bound b.bound) in
  match relax ~lo:root_lo ~hi:root_hi with
  | `Infeasible -> { status = Infeasible; solution = None; objective = None; nodes = 1 }
  | `Unbounded -> { status = Unbounded; solution = None; objective = None; nodes = 1 }
  | `Optimal (x0, obj0) ->
    let budget_hit = ref false in
    let process x obj ~lo ~hi =
      if obj < !incumbent_obj then begin
        match most_fractional x with
        | None ->
          incumbent := Some x;
          incumbent_obj := obj
        | Some v ->
          let child base value =
            Heap.push frontier { bound = obj; lo = fst (base value); hi = snd (base value) }
          in
          let down _ =
            let hi' = Array.copy hi in
            hi'.(v) <- Float.of_int (int_of_float (Float.floor (x.(v) +. int_tol)));
            (Array.copy lo, hi')
          in
          let up _ =
            let lo' = Array.copy lo in
            lo'.(v) <- Float.of_int (int_of_float (Float.ceil (x.(v) -. int_tol)));
            (lo', Array.copy hi)
          in
          child down ();
          child up ()
      end
    in
    incr nodes;
    process x0 obj0 ~lo:root_lo ~hi:root_hi;
    let continue = ref true in
    while !continue do
      match Heap.pop frontier with
      | None -> continue := false
      | Some node ->
        if node.bound >= !incumbent_obj -. 1e-12 then
          (* Best-first order: every remaining node is dominated too. *)
          continue := false
        else if !nodes >= node_budget then begin
          budget_hit := true;
          continue := false
        end
        else begin
          incr nodes;
          match relax ~lo:node.lo ~hi:node.hi with
          | `Infeasible -> ()
          | `Unbounded ->
            (* A bounded parent cannot spawn an unbounded child; treat it
               defensively as a dead end. *)
            ()
          | `Optimal (x, obj) -> process x obj ~lo:node.lo ~hi:node.hi
        end
    done;
    let finalize min_obj =
      (* Convert from minimization space back to the model's objective. *)
      let minimize, _ = Model.objective model in
      if minimize then min_obj else -.min_obj
    in
    (match !incumbent with
    | Some x ->
      (* Snap integers to exact values for downstream consumers. *)
      List.iter (fun v -> x.(v) <- Float.round x.(v)) int_vars;
      let status = if !budget_hit then Feasible else Optimal in
      { status; solution = Some x; objective = Some (finalize !incumbent_obj); nodes = !nodes }
    | None ->
      let status = if !budget_hit then Unknown else Infeasible in
      { status; solution = None; objective = None; nodes = !nodes })
