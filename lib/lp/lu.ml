(* Sparse LU factorisation of a simplex basis, with a product-form eta
   file for cheap basis exchanges, functorised over an ordered field.

   The factorisation is left-looking Gilbert–Peierls: basis columns are
   eliminated one at a time, each by a sparse lower-triangular solve
   whose reached set is found by a symbolic DFS over the L pattern, so
   the numeric work is proportional to the fill actually produced rather
   than to dim^2.  Pivoting is Markowitz-flavoured: columns are
   processed in order of increasing entry count, and within a column the
   pivot row is chosen, among rows whose magnitude clears a threshold
   fraction of the column maximum, as the one with the fewest entries in
   the original basis matrix (lowest row index on ties — every choice
   rule here is deterministic, which the search layer's bit-identity
   contract depends on).

   Basis exchanges are absorbed by product-form eta vectors: replacing
   the column at basis position [p] by an entering column with FTRAN
   image [w] appends the eta (p, w), through which every later FTRAN and
   BTRAN is threaded.  The driver refactorises from scratch when the eta
   file grows past its cap, when an eta pivot is too small to divide by
   safely, or when the maintained basic solution has drifted — the
   classic Forrest–Tomlin-era recipe, with the simpler product-form
   update standing in for the FT row/column surgery.

   Exact fields ([eps = 0]) run the same code with exact zero tests; the
   threshold pivoting degenerates to "any nonzero", and periodic
   refactorisation doubles as a guard against rational operand growth in
   long eta chains. *)

exception Singular of int
(* Raised by [factorize] when no acceptable pivot exists at the given
   elimination step: the proposed basis is (numerically) singular. *)

module Make (F : Mf_numeric.Ordered_field.S) = struct
  let exact = F.compare F.eps F.zero = 0 && F.compare F.rel_eps F.zero = 0

  type eta = {
    e_pos : int;  (* basis position whose column was replaced *)
    e_piv : F.t;  (* w.(e_pos), the eta pivot *)
    e_ind : int array;  (* other positions with nonzero w *)
    e_val : F.t array;
  }

  type t = {
    dim : int;
    pivrow : int array;  (* step -> original row *)
    rowpos : int array;  (* original row -> step *)
    cpos : int array;  (* step -> basis position eliminated at that step *)
    l_ind : int array array;  (* step -> rows of the multiplier column *)
    l_val : F.t array array;
    u_ind : int array array;  (* step -> earlier steps of the U column *)
    u_val : F.t array array;
    u_diag : F.t array;
    lu_nnz : int;  (* fill of L + U, for the refactorisation trigger *)
    mutable etas : eta array;
    mutable n_etas : int;
    (* scratch buffers, one instance per factorisation object *)
    wrow : F.t array;  (* row-indexed work vector *)
    zstep : F.t array;  (* step-indexed work vector *)
  }

  let dim t = t.dim
  let eta_count t = t.n_etas
  let fill t = t.lu_nnz

  (* Relative pivot threshold of the inexact instance: a candidate must
     reach this fraction of the column's largest magnitude before sparsity
     may prefer it.  0.01 is the usual Markowitz compromise — loose
     enough to keep fill low, tight enough for stability. *)
  let threshold = F.of_float 0.01

  let factorize ~dim ~col ~(basis : int array) =
    if Array.length basis <> dim then invalid_arg "Lu.factorize: basis length";
    let pivrow = Array.make dim (-1) in
    let rowpos = Array.make dim (-1) in
    let cpos = Array.make dim (-1) in
    let l_ind = Array.make dim [||] in
    let l_val = Array.make dim [||] in
    let u_ind = Array.make dim [||] in
    let u_val = Array.make dim [||] in
    let u_diag = Array.make dim F.zero in
    (* Column order: increasing entry count, ties by basis position.
       Together with the min-row-count pivot rule this approximates the
       Markowitz merit (r-1)(c-1) without dynamic count maintenance. *)
    let counts = Array.make dim 0 in
    let row_counts = Array.make dim 0 in
    for p = 0 to dim - 1 do
      let c = ref 0 in
      col basis.(p) (fun r _ ->
          incr c;
          row_counts.(r) <- row_counts.(r) + 1);
      counts.(p) <- !c
    done;
    let order = Array.init dim Fun.id in
    Array.sort
      (fun p q ->
        let d = compare counts.(p) counts.(q) in
        if d <> 0 then d else compare p q)
      order;
    let w = Array.make dim F.zero in
    let touched = Array.make dim 0 in
    (* Explicit membership flags: testing [w = 0] alone would re-admit a
       row whose value cancelled to exact zero and then refilled, and the
       duplicate touched entry would duplicate its L entry. *)
    let intouch = Array.make dim false in
    (* Symbolic DFS state: visited flag per step plus an explicit stack
       (column patterns can chain through the whole factor). *)
    let visited = Array.make dim false in
    let steps = Array.make dim 0 in
    let stack = Array.make dim 0 in
    let spos = Array.make dim 0 in
    for k = 0 to dim - 1 do
      let p = order.(k) in
      cpos.(k) <- p;
      (* Gather the column into the dense work vector. *)
      let nt = ref 0 in
      col basis.(p) (fun r v ->
          if F.compare v F.zero <> 0 then begin
            if not intouch.(r) then begin
              intouch.(r) <- true;
              touched.(!nt) <- r;
              incr nt
            end;
            w.(r) <- F.add w.(r) v
          end);
      (* Symbolic: every earlier step reachable from the pattern through
         the L graph will receive a (possibly zero) U entry. *)
      let ns = ref 0 in
      for ti = 0 to !nt - 1 do
        let s0 = rowpos.(touched.(ti)) in
        if s0 >= 0 && not visited.(s0) then begin
          let top = ref 0 in
          stack.(0) <- s0;
          spos.(0) <- 0;
          visited.(s0) <- true;
          while !top >= 0 do
            let s = stack.(!top) in
            let i = spos.(!top) in
            let li = l_ind.(s) in
            if i < Array.length li then begin
              spos.(!top) <- i + 1;
              let s' = rowpos.(li.(i)) in
              if s' >= 0 && not visited.(s') then begin
                visited.(s') <- true;
                incr top;
                stack.(!top) <- s';
                spos.(!top) <- 0
              end
            end
            else begin
              steps.(!ns) <- s;
              incr ns;
              decr top
            end
          done
        end
      done;
      let ns = !ns in
      (* Ascending step order is a valid elimination order because L
         edges only point forward. *)
      let sub = Array.sub steps 0 ns in
      Array.sort compare sub;
      for si = 0 to ns - 1 do
        let s = sub.(si) in
        visited.(s) <- false;
        let v = w.(pivrow.(s)) in
        if F.compare v F.zero <> 0 then begin
          let li = l_ind.(s) and lv = l_val.(s) in
          for e = 0 to Array.length li - 1 do
            let r = li.(e) in
            if not intouch.(r) then begin
              intouch.(r) <- true;
              touched.(!nt) <- r;
              incr nt
            end;
            w.(r) <- F.sub w.(r) (F.mul lv.(e) v)
          done
        end
      done;
      (* U column: the values now sitting at already-pivoted rows. *)
      let un = ref 0 in
      for si = 0 to ns - 1 do
        let s = sub.(si) in
        if F.compare w.(pivrow.(s)) F.zero <> 0 then incr un
      done;
      let ui = Array.make !un 0 and uv = Array.make !un F.zero in
      let uc = ref 0 in
      for si = 0 to ns - 1 do
        let s = sub.(si) in
        let v = w.(pivrow.(s)) in
        if F.compare v F.zero <> 0 then begin
          ui.(!uc) <- s;
          uv.(!uc) <- v;
          incr uc
        end
      done;
      u_ind.(k) <- ui;
      u_val.(k) <- uv;
      (* Pivot choice among unpivoted touched rows: magnitude threshold,
         then fewest original-matrix entries, then lowest row index. *)
      let cmax = ref F.zero in
      for ti = 0 to !nt - 1 do
        let r = touched.(ti) in
        if rowpos.(r) < 0 then begin
          let a = F.abs w.(r) in
          if F.compare a !cmax > 0 then cmax := a
        end
      done;
      if F.compare !cmax F.eps <= 0 then begin
        (* Clean the work vector before reporting, so a caller catching
           [Singular] can retry factorize on the same scratch object. *)
        for ti = 0 to !nt - 1 do
          w.(touched.(ti)) <- F.zero;
          intouch.(touched.(ti)) <- false
        done;
        raise (Singular k)
      end;
      let bar = if exact then F.zero else F.mul threshold !cmax in
      let best = ref (-1) in
      for ti = 0 to !nt - 1 do
        let r = touched.(ti) in
        if rowpos.(r) < 0 && F.compare (F.abs w.(r)) bar > 0 then
          if
            !best < 0
            ||
            let d = compare row_counts.(r) row_counts.(!best) in
            d < 0 || (d = 0 && r < !best)
          then best := r
      done;
      let pr = !best in
      pivrow.(k) <- pr;
      rowpos.(pr) <- k;
      let d = w.(pr) in
      u_diag.(k) <- d;
      let ln = ref 0 in
      for ti = 0 to !nt - 1 do
        let r = touched.(ti) in
        if rowpos.(r) < 0 && F.compare w.(r) F.zero <> 0 then incr ln
      done;
      let li = Array.make !ln 0 and lv = Array.make !ln F.zero in
      let lc = ref 0 in
      for ti = 0 to !nt - 1 do
        let r = touched.(ti) in
        if rowpos.(r) < 0 && F.compare w.(r) F.zero <> 0 then begin
          li.(!lc) <- r;
          lv.(!lc) <- F.div w.(r) d;
          incr lc
        end;
        w.(r) <- F.zero;
        intouch.(r) <- false
      done;
      l_ind.(k) <- li;
      l_val.(k) <- lv
    done;
    let lu_nnz =
      let s = ref dim in
      for k = 0 to dim - 1 do
        s := !s + Array.length l_ind.(k) + Array.length u_ind.(k)
      done;
      !s
    in
    {
      dim;
      pivrow;
      rowpos;
      cpos;
      l_ind;
      l_val;
      u_ind;
      u_val;
      u_diag;
      lu_nnz;
      etas = [||];
      n_etas = 0;
      wrow = Array.make dim F.zero;
      zstep = Array.make dim F.zero;
    }

  (* x := B^-1 rhs.  [rhs] is row-indexed and is not modified; the result
     is written to [out], indexed by basis position. *)
  let ftran t ~rhs ~out =
    let d = t.dim in
    let w = t.wrow in
    Array.blit rhs 0 w 0 d;
    (* L solve, forward over steps. *)
    for k = 0 to d - 1 do
      let v = w.(t.pivrow.(k)) in
      if F.compare v F.zero <> 0 then begin
        let li = t.l_ind.(k) and lv = t.l_val.(k) in
        for e = 0 to Array.length li - 1 do
          w.(li.(e)) <- F.sub w.(li.(e)) (F.mul lv.(e) v)
        done
      end
    done;
    (* U solve, backward over steps; scatter into basis positions. *)
    for k = d - 1 downto 0 do
      let pv = w.(t.pivrow.(k)) in
      let x =
        if F.compare pv F.zero = 0 then F.zero else F.div pv t.u_diag.(k)
      in
      if F.compare x F.zero <> 0 then begin
        let ui = t.u_ind.(k) and uv = t.u_val.(k) in
        for e = 0 to Array.length ui - 1 do
          let r = t.pivrow.(ui.(e)) in
          w.(r) <- F.sub w.(r) (F.mul uv.(e) x)
        done
      end;
      out.(t.cpos.(k)) <- x;
      w.(t.pivrow.(k)) <- F.zero
    done;
    (* Thread through the eta file, oldest first. *)
    for e = 0 to t.n_etas - 1 do
      let eta = t.etas.(e) in
      let v = F.div out.(eta.e_pos) eta.e_piv in
      out.(eta.e_pos) <- v;
      if F.compare v F.zero <> 0 then
        for i = 0 to Array.length eta.e_ind - 1 do
          out.(eta.e_ind.(i)) <- F.sub out.(eta.e_ind.(i)) (F.mul eta.e_val.(i) v)
        done
    done

  (* y := B^-T cvec.  [cvec] is indexed by basis position and is not
     modified; the result is written to [out], row-indexed. *)
  let btran t ~cvec ~out =
    let d = t.dim in
    let z = t.wrow in
    Array.blit cvec 0 z 0 d;
    (* Eta file transposed, newest first. *)
    for e = t.n_etas - 1 downto 0 do
      let eta = t.etas.(e) in
      let s = ref F.zero in
      for i = 0 to Array.length eta.e_ind - 1 do
        s := F.add !s (F.mul eta.e_val.(i) z.(eta.e_ind.(i)))
      done;
      z.(eta.e_pos) <- F.div (F.sub z.(eta.e_pos) !s) eta.e_piv
    done;
    (* U^T solve, forward over steps. *)
    let zs = t.zstep in
    for k = 0 to d - 1 do
      let s = ref z.(t.cpos.(k)) in
      let ui = t.u_ind.(k) and uv = t.u_val.(k) in
      for e = 0 to Array.length ui - 1 do
        s := F.sub !s (F.mul uv.(e) zs.(ui.(e)))
      done;
      zs.(k) <- F.div !s t.u_diag.(k)
    done;
    (* L^T solve, backward over steps; scatter into original rows. *)
    for k = d - 1 downto 0 do
      let s = ref zs.(k) in
      let li = t.l_ind.(k) and lv = t.l_val.(k) in
      for e = 0 to Array.length li - 1 do
        s := F.sub !s (F.mul lv.(e) out.(li.(e)))
      done;
      out.(t.pivrow.(k)) <- !s
    done

  (* Smallest eta pivot magnitude the update accepts before demanding a
     refactorisation; generous because a bad division here poisons every
     later solve.  Exact fields only reject a true zero. *)
  let eta_pivot_floor = F.of_float 1e-7

  let update t ~w ~pos =
    let piv = w.(pos) in
    let ok =
      if exact then F.compare piv F.zero <> 0
      else F.compare (F.abs piv) eta_pivot_floor > 0
    in
    if not ok then false
    else begin
      let n = ref 0 in
      for i = 0 to t.dim - 1 do
        if i <> pos && F.compare w.(i) F.zero <> 0 then incr n
      done;
      let e_ind = Array.make !n 0 and e_val = Array.make !n F.zero in
      let c = ref 0 in
      for i = 0 to t.dim - 1 do
        if i <> pos && F.compare w.(i) F.zero <> 0 then begin
          e_ind.(!c) <- i;
          e_val.(!c) <- w.(i);
          incr c
        end
      done;
      if t.n_etas = Array.length t.etas then begin
        let cap = Stdlib.max 8 (2 * Array.length t.etas) in
        let bigger =
          Array.make cap { e_pos = 0; e_piv = F.one; e_ind = [||]; e_val = [||] }
        in
        Array.blit t.etas 0 bigger 0 t.n_etas;
        t.etas <- bigger
      end;
      t.etas.(t.n_etas) <- { e_pos = pos; e_piv = piv; e_ind; e_val };
      t.n_etas <- t.n_etas + 1;
      true
    end
end
