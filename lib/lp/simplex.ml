module Make (F : Mf_numeric.Ordered_field.S) = struct
  type outcome = Optimal of F.t array * F.t | Infeasible | Unbounded

  (* The tableau holds the constraint rows [t] (each of length [cols+1],
     the last entry being the rhs) and the reduced-cost row [z] (length
     [cols+1], with [z.(cols) = -objective]).  [basis.(i)] is the variable
     basic in row [i]. *)

  let neg_eps = F.neg F.eps
  let is_pos x = F.compare x F.eps > 0
  let is_neg x = F.compare x neg_eps < 0

  let pivot t z basis ~row ~col =
    let cols = Array.length z - 1 in
    let piv = t.(row).(col) in
    let inv = F.div F.one piv in
    for j = 0 to cols do
      t.(row).(j) <- F.mul t.(row).(j) inv
    done;
    Array.iteri
      (fun r tr ->
        if r <> row then begin
          let factor = tr.(col) in
          if F.compare factor F.zero <> 0 then
            for j = 0 to cols do
              tr.(j) <- F.sub tr.(j) (F.mul factor t.(row).(j))
            done
        end)
      t;
    let factor = z.(col) in
    if F.compare factor F.zero <> 0 then
      for j = 0 to cols do
        z.(j) <- F.sub z.(j) (F.mul factor t.(row).(j))
      done;
    basis.(row) <- col

  (* Bland's rule: entering = lowest-index improving column among
     [eligible]; leaving = lowest-basis-variable row among ratio-test ties. *)
  let iterate t z basis ~eligible =
    let rows = Array.length t in
    let cols = Array.length z - 1 in
    let rec loop () =
      let entering = ref (-1) in
      (let j = ref 0 in
       while !entering < 0 && !j < cols do
         if eligible !j && is_neg z.(!j) then entering := !j;
         incr j
       done);
      if !entering < 0 then `Optimal
      else begin
        let col = !entering in
        let leaving = ref (-1) in
        let best_ratio = ref F.zero in
        for i = 0 to rows - 1 do
          if is_pos t.(i).(col) then begin
            let ratio = F.div t.(i).(cols) t.(i).(col) in
            let better =
              !leaving < 0
              || F.compare ratio !best_ratio < 0
              || (F.compare ratio !best_ratio = 0 && basis.(i) < basis.(!leaving))
            in
            if better then begin
              leaving := i;
              best_ratio := ratio
            end
          end
        done;
        if !leaving < 0 then `Unbounded
        else begin
          pivot t z basis ~row:!leaving ~col;
          loop ()
        end
      end
    in
    loop ()

  let solve ~a ~b ~c =
    let rows = Array.length a in
    let n = Array.length c in
    if Array.length b <> rows then invalid_arg "Simplex.solve: b length mismatch";
    Array.iter
      (fun row -> if Array.length row <> n then invalid_arg "Simplex.solve: ragged matrix")
      a;
    if rows = 0 then begin
      (* No constraints: minimum is at the origin unless some cost is
         negative, in which case that coordinate runs off to infinity. *)
      if Array.exists is_neg c then Unbounded else Optimal (Array.make n F.zero, F.zero)
    end
    else begin
      let cols = n + rows in
      (* Row equilibration: scale every row (and its rhs) by the inverse
         of the power of two nearest its largest coefficient magnitude,
         so the absolute [F.eps] thresholds below mean the same thing
         whatever the problem's scale.  Mixing unit flow rows with load
         rows whose coefficients sit in the thousands otherwise leaves
         phase 1 unable to pivot on small-but-genuine elements, and it
         reports spurious infeasibility.  A power of two — rather than
         1/max itself, which rounds — keeps the scaling multiplications
         exact in binary floating point, so pivot decisions and the
         reported solution are genuinely unperturbed.  Exact fields
         ([eps] = 0) compare exactly at any scale and are left alone: the
         scaling would balloon rational numerators and denominators for
         no benefit. *)
      let inexact = F.compare F.eps F.zero > 0 in
      let abs v = if F.compare v F.zero < 0 then F.neg v else v in
      let two = F.add F.one F.one in
      let half = F.div F.one two in
      (* Largest 1/2^k with s/2^k in [1, 2).  The iteration guard only
         matters for non-finite [s], where the loops cannot make
         progress; 5000 halvings cover any double exponent many times
         over. *)
      let pow2_inv s =
        let inv = ref F.one in
        let guard = ref 0 in
        while !guard < 5000 && F.compare (F.mul s !inv) two >= 0 do
          inv := F.mul !inv half;
          incr guard
        done;
        while !guard < 5000 && F.compare (F.mul s !inv) F.one < 0 do
          inv := F.mul !inv two;
          incr guard
        done;
        !inv
      in
      let scale =
        Array.init rows (fun i ->
            if not inexact then F.one
            else begin
              let s = ref (abs b.(i)) in
              for j = 0 to n - 1 do
                let v = abs a.(i).(j) in
                if F.compare v !s > 0 then s := v
              done;
              if F.compare !s F.zero > 0 then pow2_inv !s else F.one
            end)
      in
      (* Columns n..n+rows-1 are the phase-1 artificials. *)
      let t =
        Array.init rows (fun i ->
            let negate = F.compare b.(i) F.zero < 0 in
            let flip v = if negate then F.neg v else v in
            Array.init (cols + 1) (fun j ->
                if j < n then flip (F.mul scale.(i) a.(i).(j))
                else if j < cols then (if j - n = i then F.one else F.zero)
                else flip (F.mul scale.(i) b.(i))))
      in
      let basis = Array.init rows (fun i -> n + i) in
      (* Phase 1: minimize the sum of artificials.  Reduced costs start as
         [1] on artificials, reduced against the artificial basis: z_j =
         -(sum of rows) on structural columns, 0 on artificials. *)
      let z1 = Array.make (cols + 1) F.zero in
      for j = 0 to cols do
        if j < n || j = cols then begin
          let s = ref F.zero in
          for i = 0 to rows - 1 do
            s := F.add !s t.(i).(j)
          done;
          z1.(j) <- F.neg !s
        end
      done;
      match iterate t z1 basis ~eligible:(fun _ -> true) with
      | `Unbounded ->
        (* The phase-1 objective is bounded below by 0, so a genuine ray
           cannot exist: reaching here means the [eps] thresholds lied —
           an "improving" column with no pivotable row entry, seen on
           numerically hard mixed-scale instances.  Report the system as
           infeasible-at-this-precision rather than crash. *)
        Infeasible
      | `Optimal ->
        let phase1_obj = F.neg z1.(cols) in
        if is_pos phase1_obj then Infeasible
        else begin
          (* Drive any artificial still basic out of the basis. *)
          for i = 0 to rows - 1 do
            if basis.(i) >= n then begin
              let found = ref (-1) in
              for j = 0 to n - 1 do
                if !found < 0 && (is_pos t.(i).(j) || is_neg t.(i).(j)) then found := j
              done;
              if !found >= 0 then pivot t z1 basis ~row:i ~col:!found
              (* Otherwise the row is redundant; the artificial stays basic
                 at value zero and is barred from re-entering. *)
            end
          done;
          (* Phase 2: real costs, reduced against the current basis. *)
          let z2 = Array.make (cols + 1) F.zero in
          Array.blit c 0 z2 0 n;
          for i = 0 to rows - 1 do
            let bj = basis.(i) in
            if bj < n then begin
              let cost = z2.(bj) in
              if F.compare cost F.zero <> 0 then
                for j = 0 to cols do
                  z2.(j) <- F.sub z2.(j) (F.mul cost t.(i).(j))
                done
            end
          done;
          match iterate t z2 basis ~eligible:(fun j -> j < n) with
          | `Unbounded -> Unbounded
          | `Optimal ->
            let x = Array.make n F.zero in
            Array.iteri (fun i bj -> if bj < n then x.(bj) <- t.(i).(cols)) basis;
            Optimal (x, F.neg z2.(cols))
        end
    end
end

module Float_solver = Make (Mf_numeric.Ordered_field.Float_field)
module Rat_solver = Make (Mf_numeric.Ordered_field.Rat_field)
