(* Two-phase primal simplex, functorised over an ordered field.

   Numerical discipline (inexact fields only; exact fields have
   [eps] = [rel_eps] = 0 and every test below degenerates to an exact
   comparison):

   - rows are equilibrated by the power of two nearest their largest
     coefficient magnitude, so row norms start in [1, 2);
   - every threshold is relative: a value is "zero" against
     [eps + rel_eps * norm] where the norm of each row (and of the
     reduced-cost row) is maintained across pivots, not frozen at its
     initial value — fill-in during pivoting is what broke the absolute
     thresholds this file used to rely on;
   - pricing is Devex by default, falling back to Bland's rule when a
     stall detector sees no objective progress over a window of
     degenerate pivots, and returning to Devex as soon as the objective
     moves again.  Bland's rule terminates from any tableau and strict
     objective improvements can never revisit a basis, so the
     combination keeps the anti-cycling guarantee while avoiding
     Bland's pathological pivot counts on large degenerate tableaus;
   - a pivot budget bounds the whole solve; exhausting it is reported
     as the typed [Stalled] outcome instead of looping forever. *)

(* Raised on NaN/infinite input coefficients, which would otherwise
   silently corrupt the row equilibration and every tolerance after it.
   [row] >= 0 names the offending constraint row ([col = n] meaning its
   right-hand side); [row = -1] is the objective. *)
exception Non_finite of { row : int; col : int }

type pricing = Devex | Bland

module Make (F : Mf_numeric.Ordered_field.S) = struct
  type outcome =
    | Optimal of F.t array * F.t
    | Infeasible
    | Unbounded
    | Stalled

  type detail = {
    outcome : outcome;
    basis : int array;
    iterations : int;
    degenerate : int;
    bland_pivots : int;
  }

  let exact = F.compare F.eps F.zero = 0 && F.compare F.rel_eps F.zero = 0

  (* The tableau holds the constraint rows [t] (each of length [cols+1],
     the last entry being the rhs) and the reduced-cost row [z] (length
     [cols+1], with [z.(cols) = -objective]).  [basis.(i)] is the variable
     basic in row [i].  [norms.(i)] tracks the largest coefficient
     magnitude of row [i] (rhs excluded); [znorm] likewise for [z]. *)

  let tol_for ~relative norm =
    if relative then F.add F.eps (F.mul F.rel_eps norm) else F.eps

  let pivot t z basis norms znorm ~row ~col =
    let cols = Array.length z - 1 in
    let piv = t.(row).(col) in
    let inv = F.div F.one piv in
    (let r = t.(row) in
     let mx = ref F.zero in
     for j = 0 to cols do
       r.(j) <- F.mul r.(j) inv;
       if j < cols then begin
         let v = F.abs r.(j) in
         if F.compare v !mx > 0 then mx := v
       end
     done;
     norms.(row) <- !mx);
    Array.iteri
      (fun r tr ->
        if r <> row then begin
          let factor = tr.(col) in
          if F.compare factor F.zero <> 0 then begin
            let mx = ref F.zero in
            for j = 0 to cols do
              tr.(j) <- F.sub tr.(j) (F.mul factor t.(row).(j));
              if j < cols then begin
                let v = F.abs tr.(j) in
                if F.compare v !mx > 0 then mx := v
              end
            done;
            (* The eliminated entry is zero by construction; storing the
               exact zero (rather than the rounding residue) is what
               makes basic columns unit columns. *)
            tr.(col) <- F.zero;
            norms.(r) <- !mx
          end
        end)
      t;
    let factor = z.(col) in
    if F.compare factor F.zero <> 0 then begin
      let mx = ref F.zero in
      for j = 0 to cols do
        z.(j) <- F.sub z.(j) (F.mul factor t.(row).(j));
        if j < cols then begin
          let v = F.abs z.(j) in
          if F.compare v !mx > 0 then mx := v
        end
      done;
      z.(col) <- F.zero;
      znorm := !mx
    end;
    basis.(row) <- col

  type counters = { mutable iters : int; mutable degen : int; mutable bland : int }

  (* One phase of the simplex: pivot until optimal/unbounded or the
     budget runs out.  [weights] are the Devex reference weights, kept as
     plain machine floats even for exact fields — they only *rank*
     candidate columns, so their precision cannot affect correctness,
     and keeping them out of [F] avoids ballooning exact rationals. *)
  let iterate t z basis norms znorm weights counters ~eligible ~relative ~pricing
      ~iter_budget ~stall_k =
    let rows = Array.length t in
    let cols = Array.length z - 1 in
    let mode = ref pricing in
    let since_improve = ref 0 in
    let best_obj = ref (F.neg z.(cols)) in
    let rec loop () =
      if counters.iters >= iter_budget then `Stalled
      else begin
        let ztol = tol_for ~relative !znorm in
        let neg_ztol = F.neg ztol in
        let entering =
          match !mode with
          | Bland ->
            let e = ref (-1) in
            let j = ref 0 in
            while !e < 0 && !j < cols do
              if eligible !j && F.compare z.(!j) neg_ztol < 0 then e := !j;
              incr j
            done;
            !e
          | Devex ->
            let e = ref (-1) and best = ref 0.0 in
            for j = 0 to cols - 1 do
              if eligible j && F.compare z.(j) neg_ztol < 0 then begin
                let zf = F.to_float z.(j) in
                let score = zf *. zf /. weights.(j) in
                if score > !best then begin
                  best := score;
                  e := j
                end
              end
            done;
            !e
        in
        if entering < 0 then `Optimal
        else begin
          let col = entering in
          let leaving = ref (-1) in
          let best_ratio = ref F.zero in
          for i = 0 to rows - 1 do
            let a = t.(i).(col) in
            if F.compare a (tol_for ~relative norms.(i)) > 0 then begin
              let num = t.(i).(cols) in
              (* Clamp tiny negative rhs (degenerate drift) to a zero
                 ratio instead of letting it push the pivot negative. *)
              let ratio = if F.compare num F.zero <= 0 then F.zero else F.div num a in
              let better =
                !leaving < 0
                ||
                let cr = F.compare ratio !best_ratio in
                cr < 0
                || cr = 0
                   &&
                   (match !mode with
                   | Bland -> basis.(i) < basis.(!leaving)
                   | Devex ->
                     (* Among ratio ties, take the numerically largest
                        pivot element — the stable choice. *)
                     F.compare (F.abs a) (F.abs t.(!leaving).(col)) > 0)
              in
              if better then begin
                leaving := i;
                best_ratio := ratio
              end
            end
          done;
          if !leaving < 0 then `Unbounded
          else begin
            let row = !leaving in
            let piv = t.(row).(col) in
            let leaving_col = basis.(row) in
            pivot t z basis norms znorm ~row ~col;
            counters.iters <- counters.iters + 1;
            (match !mode with
            | Bland -> counters.bland <- counters.bland + 1
            | Devex ->
              (* Classic Devex update: with the pivot row now normalised,
                 t.(row).(j) = a_rj / a_rq. *)
              let gamma = Float.max weights.(col) 1.0 in
              let pf = F.to_float piv in
              let wr = Float.max (gamma /. (pf *. pf)) 1.0 in
              let tr = t.(row) in
              let overflow = ref false in
              for j = 0 to cols - 1 do
                if j <> col then begin
                  let aj = F.to_float tr.(j) in
                  if aj <> 0.0 then begin
                    let cand = aj *. aj *. gamma in
                    if cand > weights.(j) then weights.(j) <- cand;
                    if weights.(j) > 1e12 then overflow := true
                  end
                end
              done;
              weights.(leaving_col) <- wr;
              (* Reference-framework restart once weights degrade. *)
              if !overflow then Array.fill weights 0 (Array.length weights) 1.0);
            let obj = F.neg z.(cols) in
            let itol = tol_for ~relative (F.abs !best_obj) in
            if F.compare obj (F.sub !best_obj itol) < 0 then begin
              best_obj := obj;
              since_improve := 0;
              (* Progress resumed: back to the fast pricing. *)
              mode := pricing
            end
            else begin
              incr since_improve;
              counters.degen <- counters.degen + 1;
              (* No objective progress over a whole window of pivots:
                 assume degenerate cycling territory and switch to
                 Bland's rule, whose termination proof needs no
                 tolerance assumptions. *)
              if !since_improve >= stall_k then mode := Bland
            end;
            loop ()
          end
        end
      end
    in
    loop ()

  let check_dims ~a ~b ~c =
    let rows = Array.length a in
    let n = Array.length c in
    if Array.length b <> rows then invalid_arg "Simplex.solve: b length mismatch";
    Array.iter
      (fun row -> if Array.length row <> n then invalid_arg "Simplex.solve: ragged matrix")
      a;
    (rows, n)

  (* Reject NaN/infinite coefficients up front: they would otherwise make
     the row-equilibration loop spin without progress and leave a silently
     wrong scale behind (the old 5000-iteration guard exited with the
     scale it had).  Exact fields are always finite; the scan is skipped. *)
  let check_finite ~a ~b ~c ~rows ~n =
    if not exact then begin
      for i = 0 to rows - 1 do
        let row = a.(i) in
        for j = 0 to n - 1 do
          if not (F.is_finite row.(j)) then raise (Non_finite { row = i; col = j })
        done;
        if not (F.is_finite b.(i)) then raise (Non_finite { row = i; col = n })
      done;
      for j = 0 to n - 1 do
        if not (F.is_finite c.(j)) then raise (Non_finite { row = -1; col = j })
      done
    end

  (* Largest power of two [2^-k] with [s * 2^-k] in [1, 2).  A power of
     two — rather than [1/s] itself, which rounds — keeps the scaling
     multiplications exact in binary floating point, so pivot decisions
     and the reported solution are genuinely unperturbed.  Inputs are
     finite and positive here ([check_finite] ran first), so [frexp] is
     total; the exponent clamp keeps the scale finite for subnormal
     magnitudes. *)
  let pow2_inv s =
    let _, e = Float.frexp (F.to_float s) in
    (* s = m * 2^e, m in [0.5, 1)  ->  s * 2^(1-e) = 2m in [1, 2) *)
    F.of_float (Float.ldexp 1.0 (Stdlib.min 1023 (1 - e)))

  (* A float pivot costs microseconds while the rational fallback a stall
     triggers costs orders of magnitude more, so the budget errs generous:
     it exists to bound genuinely cycling-adjacent runs, not to race
     honest degenerate plateaus (which can need thousands of Bland steps
     on heavily tied tableaus). *)
  let default_budget ~rows ~cols =
    if exact then max_int else Stdlib.max 4_000 ((100 * rows) + (10 * cols))

  let no_weights = [||]

  let solve_detailed ?(pricing = Devex) ?(relative = true) ?iter_budget ~a ~b ~c () =
    let rows, n = check_dims ~a ~b ~c in
    check_finite ~a ~b ~c ~rows ~n;
    let is_neg_abs x = F.compare x (F.neg F.eps) < 0 in
    if rows = 0 then begin
      (* No constraints: minimum is at the origin unless some cost is
         negative, in which case that coordinate runs off to infinity. *)
      let outcome =
        if Array.exists is_neg_abs c then Unbounded
        else Optimal (Array.make n F.zero, F.zero)
      in
      { outcome; basis = [||]; iterations = 0; degenerate = 0; bland_pivots = 0 }
    end
    else begin
      let cols = n + rows in
      let iter_budget =
        match iter_budget with Some k -> k | None -> default_budget ~rows ~cols
      in
      let stall_k = Stdlib.max 32 rows in
      (* Row equilibration (inexact fields only — exact fields compare
         exactly at any scale, and scaling would balloon rational
         numerators for no benefit).  The max is taken over the
         coefficients *and* the rhs, so scaled rows live in [-2, 2]
         throughout phase 1. *)
      let abs v = if F.compare v F.zero < 0 then F.neg v else v in
      let scale =
        Array.init rows (fun i ->
            if exact then F.one
            else begin
              let s = ref (abs b.(i)) in
              for j = 0 to n - 1 do
                let v = abs a.(i).(j) in
                if F.compare v !s > 0 then s := v
              done;
              if F.compare !s F.zero > 0 then pow2_inv !s else F.one
            end)
      in
      (* Columns n..n+rows-1 are the phase-1 artificials. *)
      let t =
        Array.init rows (fun i ->
            let negate = F.compare b.(i) F.zero < 0 in
            let flip v = if negate then F.neg v else v in
            Array.init (cols + 1) (fun j ->
                if j < n then flip (F.mul scale.(i) a.(i).(j))
                else if j < cols then if j - n = i then F.one else F.zero
                else flip (F.mul scale.(i) b.(i))))
      in
      let basis = Array.init rows (fun i -> n + i) in
      let norms =
        Array.init rows (fun i ->
            let mx = ref F.zero in
            for j = 0 to cols - 1 do
              let v = F.abs t.(i).(j) in
              if F.compare v !mx > 0 then mx := v
            done;
            !mx)
      in
      let counters = { iters = 0; degen = 0; bland = 0 } in
      let weights = if pricing = Devex then Array.make cols 1.0 else no_weights in
      let finish outcome =
        {
          outcome;
          basis = Array.copy basis;
          iterations = counters.iters;
          degenerate = counters.degen;
          bland_pivots = counters.bland;
        }
      in
      (* Phase 1: minimize the sum of artificials.  Reduced costs start
         as [1] on artificials, reduced against the artificial basis:
         z_j = -(sum of rows) on structural columns, 0 on artificials. *)
      let z1 = Array.make (cols + 1) F.zero in
      for j = 0 to cols do
        if j < n || j = cols then begin
          let s = ref F.zero in
          for i = 0 to rows - 1 do
            s := F.add !s t.(i).(j)
          done;
          z1.(j) <- F.neg !s
        end
      done;
      let znorm =
        ref
          (let mx = ref F.zero in
           for j = 0 to cols - 1 do
             let v = F.abs z1.(j) in
             if F.compare v !mx > 0 then mx := v
           done;
           !mx)
      in
      let relative = relative && not exact in
      match
        iterate t z1 basis norms znorm weights counters ~eligible:(fun _ -> true)
          ~relative ~pricing ~iter_budget ~stall_k
      with
      | `Stalled -> finish Stalled
      | `Unbounded ->
        (* The phase-1 objective is bounded below by 0, so a genuine ray
           cannot exist: reaching here means the thresholds lied — an
           "improving" column with no pivotable row entry.  Report the
           system as infeasible-at-this-precision; certified callers
           re-solve exactly. *)
        finish Infeasible
      | `Optimal ->
        let phase1_obj = F.neg z1.(cols) in
        (* Scaled rhs magnitudes are <= 2, so the artificial sum of a
           genuinely feasible system settles within [rows] rounding
           units. *)
        let feas_tol = tol_for ~relative (F.of_int (2 * rows)) in
        if F.compare phase1_obj feas_tol > 0 then finish Infeasible
        else begin
          (* Drive any artificial still basic out of the basis. *)
          for i = 0 to rows - 1 do
            if basis.(i) >= n then begin
              let tol = tol_for ~relative norms.(i) in
              let found = ref (-1) in
              for j = 0 to n - 1 do
                if !found < 0 && F.compare (F.abs t.(i).(j)) tol > 0 then found := j
              done;
              if !found >= 0 then pivot t z1 basis norms znorm ~row:i ~col:!found
              (* Otherwise the row is redundant; the artificial stays
                 basic at value zero and is barred from re-entering. *)
            end
          done;
          (* Phase 2: real costs, reduced against the current basis. *)
          let z2 = Array.make (cols + 1) F.zero in
          Array.blit c 0 z2 0 n;
          for i = 0 to rows - 1 do
            let bj = basis.(i) in
            if bj < n then begin
              let cost = z2.(bj) in
              if F.compare cost F.zero <> 0 then
                for j = 0 to cols do
                  z2.(j) <- F.sub z2.(j) (F.mul cost t.(i).(j))
                done
            end
          done;
          znorm :=
            (let mx = ref F.zero in
             for j = 0 to cols - 1 do
               let v = F.abs z2.(j) in
               if F.compare v !mx > 0 then mx := v
             done;
             !mx);
          if pricing = Devex then Array.fill weights 0 cols 1.0;
          match
            iterate t z2 basis norms znorm weights counters ~eligible:(fun j -> j < n)
              ~relative ~pricing ~iter_budget ~stall_k
          with
          | `Stalled -> finish Stalled
          | `Unbounded -> finish Unbounded
          | `Optimal ->
            let x = Array.make n F.zero in
            Array.iteri (fun i bj -> if bj < n then x.(bj) <- t.(i).(cols)) basis;
            finish (Optimal (x, F.neg z2.(cols)))
        end
    end

  let solve ~a ~b ~c = (solve_detailed ~a ~b ~c ()).outcome

  (* The pre-Devex solver: Bland's rule under absolute thresholds (plus
     the power-of-two row equilibration it already had), with a pivot
     budget so a stall terminates instead of hanging.  Kept as the
     baseline the bench's before/after comparison is measured against. *)
  let solve_bland_detailed ?iter_budget ~a ~b ~c () =
    solve_detailed ~pricing:Bland ~relative:false ?iter_budget ~a ~b ~c ()

  let solve_bland ~a ~b ~c = (solve_bland_detailed ~a ~b ~c ()).outcome

  (* Warm start: realize a proposed basis (typically the float solver's
     final one) by direct elimination, then run phase 2 only.  Any
     failure to realize it — singular basis, primal-infeasible vertex, a
     basic artificial carrying a nonzero value — falls back to the full
     two-phase solve, so the result is always as trustworthy as
     [solve]. *)
  let solve_from_basis ?iter_budget ~a ~b ~c ~basis:proposed () =
    let rows, n = check_dims ~a ~b ~c in
    check_finite ~a ~b ~c ~rows ~n;
    let cols = n + rows in
    let full () = solve_detailed ?iter_budget ~a ~b ~c () in
    if rows = 0 then full ()
    else if
      Array.length proposed <> rows
      || Array.exists (fun col -> col < 0 || col >= cols) proposed
    then full ()
    else begin
      let t =
        Array.init rows (fun i ->
            let negate = F.compare b.(i) F.zero < 0 in
            let flip v = if negate then F.neg v else v in
            Array.init (cols + 1) (fun j ->
                if j < n then flip a.(i).(j)
                else if j < cols then if j - n = i then F.one else F.zero
                else flip b.(i)))
      in
      let basis = Array.make rows (-1) in
      let norms = Array.make rows F.zero in
      let znorm = ref F.zero in
      let zdummy = Array.make (cols + 1) F.zero in
      let assigned = Array.make rows false in
      let ok = ref true in
      Array.iter
        (fun target ->
          if !ok then begin
            (* Find an unassigned row with a nonzero entry in the target
               column and eliminate there. *)
            let r = ref (-1) in
            for i = 0 to rows - 1 do
              if !r < 0 && (not assigned.(i)) && F.compare t.(i).(target) F.zero <> 0
              then r := i
            done;
            match !r with
            | -1 -> ok := false
            | row ->
              pivot t zdummy basis norms znorm ~row ~col:target;
              assigned.(row) <- true
          end)
        proposed;
      (* Primal feasibility of the proposed vertex, exactly: every rhs
         nonnegative, and any basic artificial stuck at zero. *)
      if !ok then
        for i = 0 to rows - 1 do
          if
            (not assigned.(i))
            || F.compare t.(i).(cols) F.zero < 0
            || (basis.(i) >= n && F.compare t.(i).(cols) F.zero <> 0)
          then ok := false
        done;
      if not !ok then full ()
      else begin
        let iter_budget =
          match iter_budget with Some k -> k | None -> default_budget ~rows ~cols
        in
        let z2 = Array.make (cols + 1) F.zero in
        Array.blit c 0 z2 0 n;
        for i = 0 to rows - 1 do
          let bj = basis.(i) in
          if bj < n then begin
            let cost = z2.(bj) in
            if F.compare cost F.zero <> 0 then
              for j = 0 to cols do
                z2.(j) <- F.sub z2.(j) (F.mul cost t.(i).(j))
              done
          end
        done;
        let counters = { iters = 0; degen = 0; bland = 0 } in
        let finish outcome =
          {
            outcome;
            basis = Array.copy basis;
            iterations = counters.iters;
            degenerate = counters.degen;
            bland_pivots = counters.bland;
          }
        in
        match
          iterate t z2 basis norms znorm no_weights counters
            ~eligible:(fun j -> j < n)
            ~relative:(not exact) ~pricing:Bland ~iter_budget
            ~stall_k:(Stdlib.max 32 rows)
        with
        | `Stalled -> finish Stalled
        | `Unbounded -> finish Unbounded
        | `Optimal ->
          let x = Array.make n F.zero in
          Array.iteri (fun i bj -> if bj < n then x.(bj) <- t.(i).(cols)) basis;
          finish (Optimal (x, F.neg z2.(cols)))
      end
    end
end

module Float_solver = Make (Mf_numeric.Ordered_field.Float_field)
module Rat_solver = Make (Mf_numeric.Ordered_field.Rat_field)
