(* Two-phase primal simplex, functorised over an ordered field.

   Numerical discipline (inexact fields only; exact fields have
   [eps] = [rel_eps] = 0 and every test below degenerates to an exact
   comparison):

   - rows are equilibrated by the power of two nearest their largest
     coefficient magnitude, so row norms start in [1, 2);
   - every threshold is relative: a value is "zero" against
     [eps + rel_eps * norm] where the norm of each row (and of the
     reduced-cost row) is maintained across pivots, not frozen at its
     initial value — fill-in during pivoting is what broke the absolute
     thresholds this file used to rely on;
   - pricing is Devex by default, falling back to Bland's rule when a
     stall detector sees no objective progress over a window of
     degenerate pivots, and returning to Devex as soon as the objective
     moves again.  Bland's rule terminates from any tableau and strict
     objective improvements can never revisit a basis, so the
     combination keeps the anti-cycling guarantee while avoiding
     Bland's pathological pivot counts on large degenerate tableaus;
   - a pivot budget bounds the whole solve; exhausting it is reported
     as the typed [Stalled] outcome instead of looping forever. *)

(* Raised on NaN/infinite input coefficients, which would otherwise
   silently corrupt the row equilibration and every tolerance after it.
   [row] >= 0 names the offending constraint row ([col = n] meaning its
   right-hand side); [row = -1] is the objective. *)
exception Non_finite of { row : int; col : int }

type pricing = Devex | Bland

module Make (F : Mf_numeric.Ordered_field.S) = struct
  type outcome =
    | Optimal of F.t array * F.t
    | Infeasible
    | Unbounded
    | Stalled

  type detail = {
    outcome : outcome;
    basis : int array;
    iterations : int;
    degenerate : int;
    bland_pivots : int;
    factorizations : int;
    eta_updates : int;
    refactorizations : int;
  }

  let exact = F.compare F.eps F.zero = 0 && F.compare F.rel_eps F.zero = 0

  (* The tableau holds the constraint rows [t] (each of length [cols+1],
     the last entry being the rhs) and the reduced-cost row [z] (length
     [cols+1], with [z.(cols) = -objective]).  [basis.(i)] is the variable
     basic in row [i].  [norms.(i)] tracks the largest coefficient
     magnitude of row [i] (rhs excluded); [znorm] likewise for [z]. *)

  let tol_for ~relative norm =
    if relative then F.add F.eps (F.mul F.rel_eps norm) else F.eps

  let pivot t z basis norms znorm ~row ~col =
    let cols = Array.length z - 1 in
    let piv = t.(row).(col) in
    let inv = F.div F.one piv in
    (let r = t.(row) in
     let mx = ref F.zero in
     for j = 0 to cols do
       r.(j) <- F.mul r.(j) inv;
       if j < cols then begin
         let v = F.abs r.(j) in
         if F.compare v !mx > 0 then mx := v
       end
     done;
     norms.(row) <- !mx);
    Array.iteri
      (fun r tr ->
        if r <> row then begin
          let factor = tr.(col) in
          if F.compare factor F.zero <> 0 then begin
            let mx = ref F.zero in
            for j = 0 to cols do
              tr.(j) <- F.sub tr.(j) (F.mul factor t.(row).(j));
              if j < cols then begin
                let v = F.abs tr.(j) in
                if F.compare v !mx > 0 then mx := v
              end
            done;
            (* The eliminated entry is zero by construction; storing the
               exact zero (rather than the rounding residue) is what
               makes basic columns unit columns. *)
            tr.(col) <- F.zero;
            norms.(r) <- !mx
          end
        end)
      t;
    let factor = z.(col) in
    if F.compare factor F.zero <> 0 then begin
      let mx = ref F.zero in
      for j = 0 to cols do
        z.(j) <- F.sub z.(j) (F.mul factor t.(row).(j));
        if j < cols then begin
          let v = F.abs z.(j) in
          if F.compare v !mx > 0 then mx := v
        end
      done;
      z.(col) <- F.zero;
      znorm := !mx
    end;
    basis.(row) <- col

  type counters = {
    mutable iters : int;
    mutable degen : int;
    mutable bland : int;
    mutable factz : int;  (* LU factorizations (revised path) *)
    mutable etaups : int;  (* product-form eta updates (revised path) *)
    mutable refz : int;  (* refactorizations after the first (revised path) *)
  }

  let fresh_counters () = { iters = 0; degen = 0; bland = 0; factz = 0; etaups = 0; refz = 0 }

  (* One phase of the simplex: pivot until optimal/unbounded or the
     budget runs out.  [weights] are the Devex reference weights, kept as
     plain machine floats even for exact fields — they only *rank*
     candidate columns, so their precision cannot affect correctness,
     and keeping them out of [F] avoids ballooning exact rationals. *)
  let iterate t z basis norms znorm weights counters ~eligible ~relative ~pricing
      ~iter_budget ~stall_k =
    let rows = Array.length t in
    let cols = Array.length z - 1 in
    let mode = ref pricing in
    let since_improve = ref 0 in
    let best_obj = ref (F.neg z.(cols)) in
    let rec loop () =
      if counters.iters >= iter_budget then `Stalled
      else begin
        let ztol = tol_for ~relative !znorm in
        let neg_ztol = F.neg ztol in
        let entering =
          match !mode with
          | Bland ->
            let e = ref (-1) in
            let j = ref 0 in
            while !e < 0 && !j < cols do
              if eligible !j && F.compare z.(!j) neg_ztol < 0 then e := !j;
              incr j
            done;
            !e
          | Devex ->
            let e = ref (-1) and best = ref 0.0 in
            for j = 0 to cols - 1 do
              if eligible j && F.compare z.(j) neg_ztol < 0 then begin
                let zf = F.to_float z.(j) in
                let score = zf *. zf /. weights.(j) in
                if score > !best then begin
                  best := score;
                  e := j
                end
              end
            done;
            !e
        in
        if entering < 0 then `Optimal
        else begin
          let col = entering in
          let leaving = ref (-1) in
          let best_ratio = ref F.zero in
          for i = 0 to rows - 1 do
            let a = t.(i).(col) in
            if F.compare a (tol_for ~relative norms.(i)) > 0 then begin
              let num = t.(i).(cols) in
              (* Clamp tiny negative rhs (degenerate drift) to a zero
                 ratio instead of letting it push the pivot negative. *)
              let ratio = if F.compare num F.zero <= 0 then F.zero else F.div num a in
              let better =
                !leaving < 0
                ||
                let cr = F.compare ratio !best_ratio in
                cr < 0
                || cr = 0
                   &&
                   (match !mode with
                   | Bland -> basis.(i) < basis.(!leaving)
                   | Devex ->
                     (* Among ratio ties, take the numerically largest
                        pivot element — the stable choice. *)
                     F.compare (F.abs a) (F.abs t.(!leaving).(col)) > 0)
              in
              if better then begin
                leaving := i;
                best_ratio := ratio
              end
            end
          done;
          if !leaving < 0 then `Unbounded
          else begin
            let row = !leaving in
            let piv = t.(row).(col) in
            let leaving_col = basis.(row) in
            pivot t z basis norms znorm ~row ~col;
            counters.iters <- counters.iters + 1;
            (match !mode with
            | Bland -> counters.bland <- counters.bland + 1
            | Devex ->
              (* Classic Devex update: with the pivot row now normalised,
                 t.(row).(j) = a_rj / a_rq. *)
              let gamma = Float.max weights.(col) 1.0 in
              let pf = F.to_float piv in
              let wr = Float.max (gamma /. (pf *. pf)) 1.0 in
              let tr = t.(row) in
              let overflow = ref false in
              for j = 0 to cols - 1 do
                if j <> col then begin
                  let aj = F.to_float tr.(j) in
                  if aj <> 0.0 then begin
                    let cand = aj *. aj *. gamma in
                    if cand > weights.(j) then weights.(j) <- cand;
                    if weights.(j) > 1e12 then overflow := true
                  end
                end
              done;
              weights.(leaving_col) <- wr;
              (* Reference-framework restart once weights degrade. *)
              if !overflow then Array.fill weights 0 (Array.length weights) 1.0);
            let obj = F.neg z.(cols) in
            let itol = tol_for ~relative (F.abs !best_obj) in
            if F.compare obj (F.sub !best_obj itol) < 0 then begin
              best_obj := obj;
              since_improve := 0;
              (* Progress resumed: back to the fast pricing. *)
              mode := pricing
            end
            else begin
              incr since_improve;
              counters.degen <- counters.degen + 1;
              (* No objective progress over a whole window of pivots:
                 assume degenerate cycling territory and switch to
                 Bland's rule, whose termination proof needs no
                 tolerance assumptions. *)
              if !since_improve >= stall_k then mode := Bland
            end;
            loop ()
          end
        end
      end
    in
    loop ()

  let check_dims ~a ~b ~c =
    let rows = Array.length a in
    let n = Array.length c in
    if Array.length b <> rows then invalid_arg "Simplex.solve: b length mismatch";
    Array.iter
      (fun row -> if Array.length row <> n then invalid_arg "Simplex.solve: ragged matrix")
      a;
    (rows, n)

  (* Reject NaN/infinite coefficients up front: they would otherwise make
     the row-equilibration loop spin without progress and leave a silently
     wrong scale behind (the old 5000-iteration guard exited with the
     scale it had).  Exact fields are always finite; the scan is skipped. *)
  let check_finite ~a ~b ~c ~rows ~n =
    if not exact then begin
      for i = 0 to rows - 1 do
        let row = a.(i) in
        for j = 0 to n - 1 do
          if not (F.is_finite row.(j)) then raise (Non_finite { row = i; col = j })
        done;
        if not (F.is_finite b.(i)) then raise (Non_finite { row = i; col = n })
      done;
      for j = 0 to n - 1 do
        if not (F.is_finite c.(j)) then raise (Non_finite { row = -1; col = j })
      done
    end

  (* Largest power of two [2^-k] with [s * 2^-k] in [1, 2).  A power of
     two — rather than [1/s] itself, which rounds — keeps the scaling
     multiplications exact in binary floating point, so pivot decisions
     and the reported solution are genuinely unperturbed.  Inputs are
     finite and positive here ([check_finite] ran first), so [frexp] is
     total; the exponent clamp keeps the scale finite for subnormal
     magnitudes. *)
  let pow2_inv s =
    let _, e = Float.frexp (F.to_float s) in
    (* s = m * 2^e, m in [0.5, 1)  ->  s * 2^(1-e) = 2m in [1, 2) *)
    F.of_float (Float.ldexp 1.0 (Stdlib.min 1023 (1 - e)))

  (* A float pivot costs microseconds while the rational fallback a stall
     triggers costs orders of magnitude more, so the budget errs generous:
     it exists to bound genuinely cycling-adjacent runs, not to race
     honest degenerate plateaus (which can need thousands of Bland steps
     on heavily tied tableaus). *)
  let default_budget ~rows ~cols =
    if exact then max_int else Stdlib.max 4_000 ((100 * rows) + (10 * cols))

  let no_weights = [||]

  let solve_dense_detailed ?(pricing = Devex) ?(relative = true) ?iter_budget ~a ~b ~c () =
    let rows, n = check_dims ~a ~b ~c in
    check_finite ~a ~b ~c ~rows ~n;
    let is_neg_abs x = F.compare x (F.neg F.eps) < 0 in
    if rows = 0 then begin
      (* No constraints: minimum is at the origin unless some cost is
         negative, in which case that coordinate runs off to infinity. *)
      let outcome =
        if Array.exists is_neg_abs c then Unbounded
        else Optimal (Array.make n F.zero, F.zero)
      in
      { outcome; basis = [||]; iterations = 0; degenerate = 0; bland_pivots = 0;
        factorizations = 0; eta_updates = 0; refactorizations = 0 }
    end
    else begin
      let cols = n + rows in
      let iter_budget =
        match iter_budget with Some k -> k | None -> default_budget ~rows ~cols
      in
      let stall_k = Stdlib.max 32 rows in
      (* Row equilibration (inexact fields only — exact fields compare
         exactly at any scale, and scaling would balloon rational
         numerators for no benefit).  The max is taken over the
         coefficients *and* the rhs, so scaled rows live in [-2, 2]
         throughout phase 1. *)
      let abs v = if F.compare v F.zero < 0 then F.neg v else v in
      let scale =
        Array.init rows (fun i ->
            if exact then F.one
            else begin
              let s = ref (abs b.(i)) in
              for j = 0 to n - 1 do
                let v = abs a.(i).(j) in
                if F.compare v !s > 0 then s := v
              done;
              if F.compare !s F.zero > 0 then pow2_inv !s else F.one
            end)
      in
      (* Columns n..n+rows-1 are the phase-1 artificials. *)
      let t =
        Array.init rows (fun i ->
            let negate = F.compare b.(i) F.zero < 0 in
            let flip v = if negate then F.neg v else v in
            Array.init (cols + 1) (fun j ->
                if j < n then flip (F.mul scale.(i) a.(i).(j))
                else if j < cols then if j - n = i then F.one else F.zero
                else flip (F.mul scale.(i) b.(i))))
      in
      let basis = Array.init rows (fun i -> n + i) in
      let norms =
        Array.init rows (fun i ->
            let mx = ref F.zero in
            for j = 0 to cols - 1 do
              let v = F.abs t.(i).(j) in
              if F.compare v !mx > 0 then mx := v
            done;
            !mx)
      in
      let counters = fresh_counters () in
      let weights = if pricing = Devex then Array.make cols 1.0 else no_weights in
      let finish outcome =
        {
          outcome;
          basis = Array.copy basis;
          iterations = counters.iters;
          degenerate = counters.degen;
          bland_pivots = counters.bland;
          factorizations = counters.factz;
          eta_updates = counters.etaups;
          refactorizations = counters.refz;
        }
      in
      (* Phase 1: minimize the sum of artificials.  Reduced costs start
         as [1] on artificials, reduced against the artificial basis:
         z_j = -(sum of rows) on structural columns, 0 on artificials. *)
      let z1 = Array.make (cols + 1) F.zero in
      for j = 0 to cols do
        if j < n || j = cols then begin
          let s = ref F.zero in
          for i = 0 to rows - 1 do
            s := F.add !s t.(i).(j)
          done;
          z1.(j) <- F.neg !s
        end
      done;
      let znorm =
        ref
          (let mx = ref F.zero in
           for j = 0 to cols - 1 do
             let v = F.abs z1.(j) in
             if F.compare v !mx > 0 then mx := v
           done;
           !mx)
      in
      let relative = relative && not exact in
      match
        iterate t z1 basis norms znorm weights counters ~eligible:(fun _ -> true)
          ~relative ~pricing ~iter_budget ~stall_k
      with
      | `Stalled -> finish Stalled
      | `Unbounded ->
        (* The phase-1 objective is bounded below by 0, so a genuine ray
           cannot exist: reaching here means the thresholds lied — an
           "improving" column with no pivotable row entry.  Report the
           system as infeasible-at-this-precision; certified callers
           re-solve exactly. *)
        finish Infeasible
      | `Optimal ->
        let phase1_obj = F.neg z1.(cols) in
        (* Scaled rhs magnitudes are <= 2, so the artificial sum of a
           genuinely feasible system settles within [rows] rounding
           units. *)
        let feas_tol = tol_for ~relative (F.of_int (2 * rows)) in
        if F.compare phase1_obj feas_tol > 0 then finish Infeasible
        else begin
          (* Drive any artificial still basic out of the basis. *)
          for i = 0 to rows - 1 do
            if basis.(i) >= n then begin
              let tol = tol_for ~relative norms.(i) in
              let found = ref (-1) in
              for j = 0 to n - 1 do
                if !found < 0 && F.compare (F.abs t.(i).(j)) tol > 0 then found := j
              done;
              if !found >= 0 then pivot t z1 basis norms znorm ~row:i ~col:!found
              (* Otherwise the row is redundant; the artificial stays
                 basic at value zero and is barred from re-entering. *)
            end
          done;
          (* Phase 2: real costs, reduced against the current basis. *)
          let z2 = Array.make (cols + 1) F.zero in
          Array.blit c 0 z2 0 n;
          for i = 0 to rows - 1 do
            let bj = basis.(i) in
            if bj < n then begin
              let cost = z2.(bj) in
              if F.compare cost F.zero <> 0 then
                for j = 0 to cols do
                  z2.(j) <- F.sub z2.(j) (F.mul cost t.(i).(j))
                done
            end
          done;
          znorm :=
            (let mx = ref F.zero in
             for j = 0 to cols - 1 do
               let v = F.abs z2.(j) in
               if F.compare v !mx > 0 then mx := v
             done;
             !mx);
          if pricing = Devex then Array.fill weights 0 cols 1.0;
          match
            iterate t z2 basis norms znorm weights counters ~eligible:(fun j -> j < n)
              ~relative ~pricing ~iter_budget ~stall_k
          with
          | `Stalled -> finish Stalled
          | `Unbounded -> finish Unbounded
          | `Optimal ->
            let x = Array.make n F.zero in
            Array.iteri (fun i bj -> if bj < n then x.(bj) <- t.(i).(cols)) basis;
            finish (Optimal (x, F.neg z2.(cols)))
        end
    end

  let solve_dense ~a ~b ~c = (solve_dense_detailed ~a ~b ~c ()).outcome

  (* The pre-Devex solver: Bland's rule under absolute thresholds (plus
     the power-of-two row equilibration it already had), with a pivot
     budget so a stall terminates instead of hanging.  Kept as the
     baseline the bench's before/after comparison is measured against. *)
  let solve_bland_detailed ?iter_budget ~a ~b ~c () =
    solve_dense_detailed ~pricing:Bland ~relative:false ?iter_budget ~a ~b ~c ()

  let solve_bland ~a ~b ~c = (solve_bland_detailed ~a ~b ~c ()).outcome

  (* Warm start: realize a proposed basis (typically the float solver's
     final one) by direct elimination, then run phase 2 only.  Any
     failure to realize it — singular basis, primal-infeasible vertex, a
     basic artificial carrying a nonzero value — falls back to the full
     two-phase solve, so the result is always as trustworthy as
     [solve]. *)
  let solve_dense_from_basis ?iter_budget ~a ~b ~c ~basis:proposed () =
    let rows, n = check_dims ~a ~b ~c in
    check_finite ~a ~b ~c ~rows ~n;
    let cols = n + rows in
    let full () = solve_dense_detailed ?iter_budget ~a ~b ~c () in
    if rows = 0 then full ()
    else if
      Array.length proposed <> rows
      || Array.exists (fun col -> col < 0 || col >= cols) proposed
    then full ()
    else begin
      let t =
        Array.init rows (fun i ->
            let negate = F.compare b.(i) F.zero < 0 in
            let flip v = if negate then F.neg v else v in
            Array.init (cols + 1) (fun j ->
                if j < n then flip a.(i).(j)
                else if j < cols then if j - n = i then F.one else F.zero
                else flip b.(i)))
      in
      let basis = Array.make rows (-1) in
      let norms = Array.make rows F.zero in
      let znorm = ref F.zero in
      let zdummy = Array.make (cols + 1) F.zero in
      let assigned = Array.make rows false in
      let ok = ref true in
      Array.iter
        (fun target ->
          if !ok then begin
            (* Find an unassigned row with a nonzero entry in the target
               column and eliminate there. *)
            let r = ref (-1) in
            for i = 0 to rows - 1 do
              if !r < 0 && (not assigned.(i)) && F.compare t.(i).(target) F.zero <> 0
              then r := i
            done;
            match !r with
            | -1 -> ok := false
            | row ->
              pivot t zdummy basis norms znorm ~row ~col:target;
              assigned.(row) <- true
          end)
        proposed;
      (* Primal feasibility of the proposed vertex, exactly: every rhs
         nonnegative, and any basic artificial stuck at zero. *)
      if !ok then
        for i = 0 to rows - 1 do
          if
            (not assigned.(i))
            || F.compare t.(i).(cols) F.zero < 0
            || (basis.(i) >= n && F.compare t.(i).(cols) F.zero <> 0)
          then ok := false
        done;
      if not !ok then full ()
      else begin
        let iter_budget =
          match iter_budget with Some k -> k | None -> default_budget ~rows ~cols
        in
        let z2 = Array.make (cols + 1) F.zero in
        Array.blit c 0 z2 0 n;
        for i = 0 to rows - 1 do
          let bj = basis.(i) in
          if bj < n then begin
            let cost = z2.(bj) in
            if F.compare cost F.zero <> 0 then
              for j = 0 to cols do
                z2.(j) <- F.sub z2.(j) (F.mul cost t.(i).(j))
              done
          end
        done;
        let counters = fresh_counters () in
        let finish outcome =
          {
            outcome;
            basis = Array.copy basis;
            iterations = counters.iters;
            degenerate = counters.degen;
            bland_pivots = counters.bland;
            factorizations = counters.factz;
            eta_updates = counters.etaups;
            refactorizations = counters.refz;
          }
        in
        match
          iterate t z2 basis norms znorm no_weights counters
            ~eligible:(fun j -> j < n)
            ~relative:(not exact) ~pricing:Bland ~iter_budget
            ~stall_k:(Stdlib.max 32 rows)
        with
        | `Stalled -> finish Stalled
        | `Unbounded -> finish Unbounded
        | `Optimal ->
          let x = Array.make n F.zero in
          Array.iteri (fun i bj -> if bj < n then x.(bj) <- t.(i).(cols)) basis;
          finish (Optimal (x, F.neg z2.(cols)))
      end
    end

  (* ================================================================== *)
  (* Revised simplex over a sparse LU-factorised basis.                  *)
  (*                                                                     *)
  (* Same two phases, same Devex/Bland pricing and stall detector, same  *)
  (* typed outcomes as the dense tableau above — but the per-iteration   *)
  (* work is one BTRAN (duals), one O(nnz) pricing sweep, one FTRAN      *)
  (* (entering column), an optional BTRAN + sweep for the Devex weight   *)
  (* update, and a product-form eta append, instead of an O(rows*cols)   *)
  (* tableau elimination.  The basis is refactorised (Markowitz LU, see  *)
  (* Lu) when the eta file passes its cap, when its accumulated fill     *)
  (* overtakes the factor's, or when an eta pivot is too small to        *)
  (* divide by; the basic solution is recomputed from scratch at every   *)
  (* refactorisation, which bounds drift.                                *)
  (* ================================================================== *)

  module Sp = Sparse.Make (F)
  module Lufac = Lu.Make (F)

  (* Numerical breakdown on the float path (a refactorisation found the
     basis singular after updates claimed it was fine): surrender to the
     typed [Stalled] outcome; certified callers re-solve exactly. *)
  exception Breakdown

  let eta_cap = 64

  type rstate = {
    dim : int;  (* constraint rows *)
    ncols : int;  (* structural columns *)
    amat : Sp.t;  (* scaled, sign-flipped structural matrix *)
    bvec : F.t array;  (* scaled, flipped rhs (componentwise >= 0) *)
    basis : int array;  (* basis position -> column id *)
    vpos : int array;  (* column id -> basis position, -1 if nonbasic *)
    xb : F.t array;  (* basic values, by basis position *)
    mutable fac : Lufac.t;
    weights : float array;  (* Devex reference weights, machine floats *)
    rhsbuf : F.t array;  (* row-space gather buffer *)
    wbuf : F.t array;  (* FTRAN image of the entering column *)
    ybuf : F.t array;  (* BTRAN duals *)
    cbuf : F.t array;  (* basic-cost gather *)
    rbuf : F.t array;  (* BTRAN pivot row *)
    ebuf : F.t array;  (* unit vector for the pivot-row BTRAN *)
    counters : counters;
    mutable eta_fill : int;  (* entries accumulated in the eta file *)
  }

  let[@inline] col_iter st j f =
    if j < st.ncols then Sp.iter_col st.amat j f else f (j - st.ncols) F.one

  let refactorize st =
    (match Lufac.factorize ~dim:st.dim ~col:(col_iter st) ~basis:st.basis with
    | fac -> st.fac <- fac
    | exception Lu.Singular _ -> raise Breakdown);
    st.counters.factz <- st.counters.factz + 1;
    st.eta_fill <- 0;
    (* Recompute the basic solution from the fresh factors: the cheap
       incremental x_B updates drift, and this is the drift reset. *)
    Lufac.ftran st.fac ~rhs:st.bvec ~out:st.xb

  (* Absorb the exchange [basis.(pos) <- entering], whose FTRAN image is
     in [st.wbuf], into the factorisation — by eta when cheap and sound,
     by refactorisation otherwise. *)
  let absorb_exchange st ~pos =
    let fill =
      let c = ref 0 in
      for i = 0 to st.dim - 1 do
        if F.compare st.wbuf.(i) F.zero <> 0 then incr c
      done;
      !c
    in
    if
      Lufac.eta_count st.fac >= eta_cap
      || st.eta_fill + fill > 2 * Lufac.fill st.fac
      || not (Lufac.update st.fac ~w:st.wbuf ~pos)
    then begin
      if st.counters.factz > 0 then st.counters.refz <- st.counters.refz + 1;
      refactorize st
    end
    else begin
      st.counters.etaups <- st.counters.etaups + 1;
      st.eta_fill <- st.eta_fill + fill
    end

  (* One phase of the revised simplex.  [cost j] is the phase objective
     coefficient of column [j]; [eligible j] gates entering candidates;
     [objective ()] evaluates the current phase objective for the stall
     detector. *)
  let iterate_rev st ~cost ~eligible ~relative ~pricing ~iter_budget ~stall_k ~objective
      =
    let dim = st.dim in
    let all_cols = st.ncols + dim in
    let mode = ref pricing in
    let since_improve = ref 0 in
    let best_obj = ref (objective ()) in
    let rec loop () =
      if st.counters.iters >= iter_budget then `Stalled
      else begin
        (* Duals: y = B^-T c_B. *)
        for i = 0 to dim - 1 do
          st.cbuf.(i) <- cost st.basis.(i)
        done;
        Lufac.btran st.fac ~cvec:st.cbuf ~out:st.ybuf;
        (* Pricing sweep: d_j = c_j - y . A_j, tested against a tolerance
           relative to the magnitude of its own computation (the revised
           analogue of the dense path's maintained row norms). *)
        let entering = ref (-1) in
        let best_score = ref 0.0 in
        let j = ref 0 in
        let continue_scan = ref true in
        while !continue_scan && !j < all_cols do
          let jj = !j in
          if st.vpos.(jj) < 0 && eligible jj then begin
            let d = ref (cost jj) in
            let mag = ref (F.abs !d) in
            col_iter st jj (fun r v ->
                let p = F.mul st.ybuf.(r) v in
                d := F.sub !d p;
                mag := F.add !mag (F.abs p));
            let tol = if relative then F.add F.eps (F.mul F.rel_eps !mag) else F.eps in
            if F.compare !d (F.neg tol) < 0 then begin
              match !mode with
              | Bland ->
                entering := jj;
                continue_scan := false
              | Devex ->
                let df = F.to_float !d in
                let score = df *. df /. st.weights.(jj) in
                if score > !best_score then begin
                  best_score := score;
                  entering := jj
                end
            end
          end;
          incr j
        done;
        if !entering < 0 then `Optimal
        else begin
          let q = !entering in
          (* FTRAN: w = B^-1 A_q. *)
          Array.fill st.rhsbuf 0 dim F.zero;
          col_iter st q (fun r v -> st.rhsbuf.(r) <- v);
          Lufac.ftran st.fac ~rhs:st.rhsbuf ~out:st.wbuf;
          let wmax = ref F.zero in
          for i = 0 to dim - 1 do
            let v = F.abs st.wbuf.(i) in
            if F.compare v !wmax > 0 then wmax := v
          done;
          let wtol = if relative then F.add F.eps (F.mul F.rel_eps !wmax) else F.eps in
          let neg_wtol = F.neg wtol in
          (* Ratio test.  Basic artificials already sitting at zero are
             additionally kicked out at a zero step whenever the entering
             column touches them with either sign, so they cannot drift
             away from zero in phase 2.  (The zero-value gate matters: a
             zero-step exchange of a basic variable carrying flow would
             silently break B x_B = b.) *)
          let zero_tol = tol_for ~relative (F.of_int (2 * dim)) in
          let leave = ref (-1) in
          let best_ratio = ref F.zero in
          for i = 0 to dim - 1 do
            let wi = st.wbuf.(i) in
            let art = st.basis.(i) >= st.ncols in
            let cand, ratio =
              if F.compare wi wtol > 0 then begin
                let num = st.xb.(i) in
                let r = if F.compare num F.zero <= 0 then F.zero else F.div num wi in
                (true, r)
              end
              else if
                art
                && F.compare wi neg_wtol < 0
                && F.compare (F.abs st.xb.(i)) zero_tol <= 0
              then (true, F.zero)
              else (false, F.zero)
            in
            if cand then begin
              let better =
                !leave < 0
                ||
                let cr = F.compare ratio !best_ratio in
                cr < 0
                || cr = 0
                   &&
                   (match !mode with
                   | Bland -> st.basis.(i) < st.basis.(!leave)
                   | Devex -> F.compare (F.abs wi) (F.abs st.wbuf.(!leave)) > 0)
              in
              if better then begin
                leave := i;
                best_ratio := ratio
              end
            end
          done;
          if !leave < 0 then `Unbounded
          else begin
            let pos = !leave in
            let theta = !best_ratio in
            let piv = st.wbuf.(pos) in
            let lcol = st.basis.(pos) in
            (* Devex weight update needs the pivot row of the *old* basis:
               alpha = (B^-T e_pos)^T A, one extra BTRAN + sweep. *)
            (match !mode with
            | Bland -> ()
            | Devex ->
              Array.fill st.ebuf 0 dim F.zero;
              st.ebuf.(pos) <- F.one;
              Lufac.btran st.fac ~cvec:st.ebuf ~out:st.rbuf;
              let gamma = Float.max st.weights.(q) 1.0 in
              let pf = F.to_float piv in
              let overflow = ref false in
              for jj = 0 to all_cols - 1 do
                if jj <> q && st.vpos.(jj) < 0 && eligible jj then begin
                  let alpha = ref F.zero in
                  col_iter st jj (fun r v -> alpha := F.add !alpha (F.mul st.rbuf.(r) v));
                  let af = F.to_float !alpha /. pf in
                  if af <> 0.0 then begin
                    let cand = af *. af *. gamma in
                    if cand > st.weights.(jj) then st.weights.(jj) <- cand;
                    if st.weights.(jj) > 1e12 then overflow := true
                  end
                end
              done;
              st.weights.(lcol) <- Float.max (gamma /. (pf *. pf)) 1.0;
              if !overflow then Array.fill st.weights 0 all_cols 1.0);
            (* Apply the step to the basic solution and swap the basis. *)
            if F.compare theta F.zero <> 0 then
              for i = 0 to dim - 1 do
                if F.compare st.wbuf.(i) F.zero <> 0 then
                  st.xb.(i) <- F.sub st.xb.(i) (F.mul theta st.wbuf.(i))
              done;
            st.xb.(pos) <- theta;
            st.basis.(pos) <- q;
            st.vpos.(lcol) <- -1;
            st.vpos.(q) <- pos;
            absorb_exchange st ~pos;
            st.counters.iters <- st.counters.iters + 1;
            (match !mode with
            | Bland -> st.counters.bland <- st.counters.bland + 1
            | Devex -> ());
            let obj = objective () in
            let itol =
              if relative then F.add F.eps (F.mul F.rel_eps (F.abs !best_obj)) else F.eps
            in
            if F.compare obj (F.sub !best_obj itol) < 0 then begin
              best_obj := obj;
              since_improve := 0;
              mode := pricing
            end
            else begin
              incr since_improve;
              st.counters.degen <- st.counters.degen + 1;
              if !since_improve >= stall_k then mode := Bland
            end;
            loop ()
          end
        end
      end
    in
    loop ()

  let check_finite_sparse ~(a : Sp.t) ~b ~c =
    if not exact then begin
      let n = Sp.cols a in
      for j = 0 to n - 1 do
        Sp.iter_col a j (fun i v ->
            if not (F.is_finite v) then raise (Non_finite { row = i; col = j }))
      done;
      Array.iteri
        (fun i v -> if not (F.is_finite v) then raise (Non_finite { row = i; col = n }))
        b;
      Array.iteri
        (fun j v -> if not (F.is_finite v) then raise (Non_finite { row = -1; col = j }))
        c
    end

  (* Scale + flip the input into the internal standard form shared by the
     cold and warm sparse entry points: rows equilibrated by powers of
     two, negative-rhs rows negated, artificials implicit. *)
  let make_rstate ~(a : Sp.t) ~b ~pricing =
    let rows = Sp.rows a in
    let n = Sp.cols a in
    let abs v = if F.compare v F.zero < 0 then F.neg v else v in
    let rowmax = Array.make rows F.zero in
    if not exact then begin
      Array.iteri (fun i bi -> rowmax.(i) <- abs bi) b;
      Array.iteri
        (fun k v ->
          let r = a.Sparse.rowind.(k) in
          let m = abs v in
          if F.compare m rowmax.(r) > 0 then rowmax.(r) <- m)
        a.Sparse.values
    end;
    let scale =
      Array.init rows (fun i ->
          if exact then F.one
          else if F.compare rowmax.(i) F.zero > 0 then pow2_inv rowmax.(i)
          else F.one)
    in
    let flip = Array.init rows (fun i -> F.compare b.(i) F.zero < 0) in
    let values =
      Array.mapi
        (fun k v ->
          let r = a.Sparse.rowind.(k) in
          let v = F.mul scale.(r) v in
          if flip.(r) then F.neg v else v)
        a.Sparse.values
    in
    let amat = { a with Sparse.values = values } in
    let bvec =
      Array.init rows (fun i ->
          let v = F.mul scale.(i) b.(i) in
          if flip.(i) then F.neg v else v)
    in
    let all_cols = n + rows in
    {
      dim = rows;
      ncols = n;
      amat;
      bvec;
      basis = Array.init rows (fun i -> n + i);
      vpos =
        Array.init all_cols (fun j -> if j >= n then j - n else -1);
      xb = Array.copy bvec;
      fac = Lufac.factorize ~dim:0 ~col:(fun _ _ -> ()) ~basis:[||];
      weights = (if pricing = Devex then Array.make all_cols 1.0 else [||]);
      rhsbuf = Array.make rows F.zero;
      wbuf = Array.make rows F.zero;
      ybuf = Array.make rows F.zero;
      cbuf = Array.make rows F.zero;
      rbuf = Array.make rows F.zero;
      ebuf = Array.make rows F.zero;
      counters = fresh_counters ();
      eta_fill = 0;
    }

  let finish_rev st outcome =
    {
      outcome;
      basis = Array.copy st.basis;
      iterations = st.counters.iters;
      degenerate = st.counters.degen;
      bland_pivots = st.counters.bland;
      factorizations = st.counters.factz;
      eta_updates = st.counters.etaups;
      refactorizations = st.counters.refz;
    }

  let phase2_cost st c j = if j < st.ncols then c.(j) else F.zero

  let phase2_objective st c () =
    let s = ref F.zero in
    for i = 0 to st.dim - 1 do
      let bj = st.basis.(i) in
      if bj < st.ncols then s := F.add !s (F.mul c.(bj) st.xb.(i))
    done;
    !s

  let extract_solution st c =
    let x = Array.make st.ncols F.zero in
    for i = 0 to st.dim - 1 do
      let bj = st.basis.(i) in
      if bj < st.ncols then x.(bj) <- st.xb.(i)
    done;
    (x, phase2_objective st c ())

  (* Pivot any artificial still basic after phase 1 out of the basis:
     BTRAN its unit vector to get the pivot row, take the first
     structural nonbasic column with a usable entry, and exchange at a
     zero step.  Rows with no such entry are redundant; their artificial
     stays basic at zero, barred from entering and kicked out by the
     ratio test if an entering column ever touches the row. *)
  let drive_out_artificials st ~relative =
    for i = 0 to st.dim - 1 do
      if st.basis.(i) >= st.ncols then begin
        Array.fill st.ebuf 0 st.dim F.zero;
        st.ebuf.(i) <- F.one;
        Lufac.btran st.fac ~cvec:st.ebuf ~out:st.rbuf;
        let found = ref (-1) in
        let fval = ref F.zero in
        let j = ref 0 in
        while !found < 0 && !j < st.ncols do
          let jj = !j in
          if st.vpos.(jj) < 0 then begin
            let alpha = ref F.zero in
            let mag = ref F.zero in
            col_iter st jj (fun r v ->
                let p = F.mul st.rbuf.(r) v in
                alpha := F.add !alpha p;
                mag := F.add !mag (F.abs p));
            let tol = if relative then F.add F.eps (F.mul F.rel_eps !mag) else F.eps in
            if F.compare (F.abs !alpha) tol > 0 then begin
              found := jj;
              fval := !alpha
            end
          end;
          incr j
        done;
        if !found >= 0 then begin
          let q = !found in
          Array.fill st.rhsbuf 0 st.dim F.zero;
          col_iter st q (fun r v -> st.rhsbuf.(r) <- v);
          Lufac.ftran st.fac ~rhs:st.rhsbuf ~out:st.wbuf;
          (* The artificial sits at (numerical) zero, so the step is a
             degenerate exchange: x_B is unchanged except at [i]. *)
          let lcol = st.basis.(i) in
          st.xb.(i) <- F.zero;
          st.basis.(i) <- q;
          st.vpos.(lcol) <- -1;
          st.vpos.(q) <- i;
          absorb_exchange st ~pos:i
        end
      end
    done

  let solve_sparse_detailed ?(pricing = Devex) ?(relative = true) ?iter_budget
      ~(a : Sp.t) ~b ~c () =
    let rows = Sp.rows a in
    let n = Sp.cols a in
    if Array.length b <> rows then invalid_arg "Simplex.solve_sparse: b length mismatch";
    if Array.length c <> n then invalid_arg "Simplex.solve_sparse: c length mismatch";
    check_finite_sparse ~a ~b ~c;
    let is_neg_abs x = F.compare x (F.neg F.eps) < 0 in
    if rows = 0 then begin
      let outcome =
        if Array.exists is_neg_abs c then Unbounded
        else Optimal (Array.make n F.zero, F.zero)
      in
      {
        outcome;
        basis = [||];
        iterations = 0;
        degenerate = 0;
        bland_pivots = 0;
        factorizations = 0;
        eta_updates = 0;
        refactorizations = 0;
      }
    end
    else begin
      let iter_budget =
        match iter_budget with
        | Some k -> k
        | None -> default_budget ~rows ~cols:(n + rows)
      in
      let stall_k = Stdlib.max 32 rows in
      let relative = relative && not exact in
      let st = make_rstate ~a ~b ~pricing in
      match
        refactorize st;
        (* Phase 1: minimize the artificial sum. *)
        let cost1 j = if j >= st.ncols then F.one else F.zero in
        let objective1 () =
          let s = ref F.zero in
          for i = 0 to st.dim - 1 do
            if st.basis.(i) >= st.ncols then s := F.add !s st.xb.(i)
          done;
          !s
        in
        iterate_rev st ~cost:cost1
          ~eligible:(fun _ -> true)
          ~relative ~pricing ~iter_budget ~stall_k ~objective:objective1
      with
      | exception Breakdown -> finish_rev st Stalled
      | `Stalled -> finish_rev st Stalled
      | `Unbounded ->
        (* Phase 1 is bounded below by 0: a reported ray means the
           thresholds lied.  Same convention as the dense path. *)
        finish_rev st Infeasible
      | `Optimal -> (
        let phase1_obj =
          let s = ref F.zero in
          for i = 0 to st.dim - 1 do
            if st.basis.(i) >= st.ncols then s := F.add !s st.xb.(i)
          done;
          !s
        in
        let feas_tol = tol_for ~relative (F.of_int (2 * rows)) in
        if F.compare phase1_obj feas_tol > 0 then finish_rev st Infeasible
        else
          match
            drive_out_artificials st ~relative;
            if pricing = Devex then Array.fill st.weights 0 (n + rows) 1.0;
            iterate_rev st ~cost:(phase2_cost st c)
              ~eligible:(fun j -> j < n)
              ~relative ~pricing ~iter_budget ~stall_k
              ~objective:(phase2_objective st c)
          with
          | exception Breakdown -> finish_rev st Stalled
          | `Stalled -> finish_rev st Stalled
          | `Unbounded -> finish_rev st Unbounded
          | `Optimal ->
            let x, obj = extract_solution st c in
            finish_rev st (Optimal (x, obj)))
    end

  let solve_sparse ~a ~b ~c = (solve_sparse_detailed ~a ~b ~c ()).outcome

  (* Warm start on the sparse path: factorize the proposed basis
     directly (no elimination pass over a dense tableau), recover x_B by
     one FTRAN, check primal feasibility, and run phase 2 only.  Any
     failure — wrong shape, duplicate or singular basis, an infeasible
     vertex, an artificial carrying real flow — falls back to the full
     two-phase solve, so the result is always as trustworthy as
     [solve_sparse]. *)
  let solve_sparse_from_basis ?iter_budget ~(a : Sp.t) ~b ~c ~basis:proposed () =
    let rows = Sp.rows a in
    let n = Sp.cols a in
    if Array.length b <> rows then invalid_arg "Simplex.solve_sparse: b length mismatch";
    if Array.length c <> n then invalid_arg "Simplex.solve_sparse: c length mismatch";
    check_finite_sparse ~a ~b ~c;
    let full () = solve_sparse_detailed ?iter_budget ~a ~b ~c () in
    let distinct =
      let seen = Array.make (n + rows) false in
      Array.for_all
        (fun col ->
          col >= 0 && col < n + rows
          &&
          if seen.(col) then false
          else begin
            seen.(col) <- true;
            true
          end)
        proposed
    in
    if rows = 0 then full ()
    else if Array.length proposed <> rows || not distinct then full ()
    else begin
      let st = make_rstate ~a ~b ~pricing:Bland in
      Array.fill st.vpos 0 (n + rows) (-1);
      Array.blit proposed 0 st.basis 0 rows;
      Array.iteri (fun i col -> st.vpos.(col) <- i) st.basis;
      match Lufac.factorize ~dim:st.dim ~col:(col_iter st) ~basis:st.basis with
      | exception Lu.Singular _ -> full ()
      | fac -> (
        st.fac <- fac;
        st.counters.factz <- st.counters.factz + 1;
        Lufac.ftran st.fac ~rhs:st.bvec ~out:st.xb;
        (* Primal feasibility of the proposed vertex: nonnegative basic
           values, artificials at zero — within the tolerance of the
           scaled system, whose rhs lives in [0, 2]. *)
        let vtol = tol_for ~relative:(not exact) (F.of_int (2 * rows)) in
        let ok = ref true in
        for i = 0 to rows - 1 do
          if F.compare st.xb.(i) (F.neg vtol) < 0 then ok := false
          else if st.basis.(i) >= n && F.compare (F.abs st.xb.(i)) vtol > 0 then
            ok := false
        done;
        if not !ok then full ()
        else begin
          let iter_budget =
            match iter_budget with
            | Some k -> k
            | None -> default_budget ~rows ~cols:(n + rows)
          in
          match
            iterate_rev st ~cost:(phase2_cost st c)
              ~eligible:(fun j -> j < n)
              ~relative:(not exact) ~pricing:Bland ~iter_budget
              ~stall_k:(Stdlib.max 32 rows)
              ~objective:(phase2_objective st c)
          with
          | exception Breakdown -> finish_rev st Stalled
          | `Stalled -> finish_rev st Stalled
          | `Unbounded -> finish_rev st Unbounded
          | `Optimal ->
            let x, obj = extract_solution st c in
            finish_rev st (Optimal (x, obj))
        end)
    end

  (* The default entry points run the revised path; the dense tableau
     survives as [solve_dense*] — the differential anchor the
     sparse-vs-dense fuzz oracle pins the revised path against. *)
  let solve_detailed ?pricing ?relative ?iter_budget ~a ~b ~c () =
    let rows, n = check_dims ~a ~b ~c in
    check_finite ~a ~b ~c ~rows ~n;
    let sa = Sp.of_dense a ~cols:n in
    solve_sparse_detailed ?pricing ?relative ?iter_budget ~a:sa ~b ~c ()

  let solve ~a ~b ~c = (solve_detailed ~a ~b ~c ()).outcome

  let solve_from_basis ?iter_budget ~a ~b ~c ~basis () =
    let rows, n = check_dims ~a ~b ~c in
    check_finite ~a ~b ~c ~rows ~n;
    let sa = Sp.of_dense a ~cols:n in
    solve_sparse_from_basis ?iter_budget ~a:sa ~b ~c ~basis ()
end

module Float_solver = Make (Mf_numeric.Ordered_field.Float_field)
module Rat_solver = Make (Mf_numeric.Ordered_field.Rat_field)
