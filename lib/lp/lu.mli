(** Sparse LU factorisation of a simplex basis with a product-form eta
    file, the engine room of the revised simplex ({!Simplex}).

    [factorize] runs a left-looking Gilbert–Peierls elimination with
    Markowitz-flavoured pivoting: columns in order of increasing entry
    count, pivot rows by (magnitude threshold, fewest original entries,
    lowest index) — every tie-break deterministic, as the search layer's
    bit-identity contract requires.  [ftran]/[btran] solve with B and
    B^T through the factors and the eta file; [update] absorbs one basis
    exchange as a product-form eta.  The caller refactorises when
    [update] refuses (eta pivot below its floor), when {!eta_count}
    passes its cap, or when the maintained basic solution drifts — see
    DESIGN.md §15. *)

exception Singular of int
(** No acceptable pivot at the given elimination step: the proposed
    basis is (numerically) singular. *)

module Make (F : Mf_numeric.Ordered_field.S) : sig
  type t

  (** [factorize ~dim ~col ~basis] factorises the [dim] x [dim] matrix
      whose [p]-th column is the entries produced by [col basis.(p)].
      [col j f] must call [f row value] once per stored entry of column
      [j] of the full constraint matrix (artificials included).
      @raise Singular when the basis is (numerically) singular.
      @raise Invalid_argument when [basis] has the wrong length. *)
  val factorize : dim:int -> col:(int -> (int -> F.t -> unit) -> unit) -> basis:int array -> t

  val dim : t -> int

  (** Etas absorbed since factorisation. *)
  val eta_count : t -> int

  (** Stored entries of L + U (diagonal included) — the fill trigger. *)
  val fill : t -> int

  (** [ftran t ~rhs ~out] writes B^-1 [rhs] to [out]; [rhs] is indexed
      by row, [out] by basis position.  [rhs] is not modified; [out]
      must not alias [rhs]. *)
  val ftran : t -> rhs:F.t array -> out:F.t array -> unit

  (** [btran t ~cvec ~out] writes B^-T [cvec] to [out]; [cvec] is
      indexed by basis position, [out] by row.  [cvec] is not modified;
      [out] must not alias [cvec]. *)
  val btran : t -> cvec:F.t array -> out:F.t array -> unit

  (** [update t ~w ~pos] absorbs the basis exchange that replaces the
      column at basis position [pos] by an entering column whose FTRAN
      image is [w].  Returns [false] — leaving [t] unchanged — when the
      eta pivot [w.(pos)] is too small to divide by safely; the caller
      must then refactorise. *)
  val update : t -> w:F.t array -> pos:int -> bool
end
