module Instance = Mf_core.Instance
module Workflow = Mf_core.Workflow
module Mapping = Mf_core.Mapping
module Period = Mf_core.Period

type path = [ `Float | `Rational ]

type result = {
  period : float;
  shares : float array array;
  loads : float array;
  path : path;
  stats : Mip.certified_stats;
}

type error = [ `Infeasible | `Unbounded ]

let describe_error = function
  | `Infeasible -> "LP reported infeasible"
  | `Unbounded -> "LP reported unbounded"

(* The LP is posed in *throughput* form: with [y(i,u)] the per-time-unit
   processing rates and [rho] the system throughput (finished products per
   time unit), maximize [rho] subject to flow conservation and unit
   machine capacity.  This is the period form under the substitution
   [y = x / K], [rho = 1 / K] — same optimum, same shares — but the
   period form starts phase 1 at a massively degenerate vertex (every
   non-sink flow row and every load row has rhs 0, and the period
   variable starts at 0), which sent the simplex onto plateaus of tens
   of thousands of zero-step pivots at n >= 40.  In throughput form the
   load rows have rhs 1, so the initial vertex is non-degenerate on the
   capacity side and the objective moves from the first pivots. *)
let build_model inst =
  let n = Instance.task_count inst in
  let m = Instance.machines inst in
  let wf = Instance.workflow inst in
  let model = Model.create () in
  let nv =
    Array.init n (fun i ->
        Array.init m (fun u ->
            Model.add_var model ~name:(Printf.sprintf "y_%d_%d" i u) Model.Continuous))
  in
  let rho = Model.add_var model ~name:"rho" Model.Continuous in
  (* Flow conservation: successes of task i equal downstream demand —
     the successor's total intake, or the output rate [rho] at a sink. *)
  for i = 0 to n - 1 do
    let successes =
      Linexpr.of_terms
        (List.init m (fun u -> (1.0 -. Instance.f inst i u, nv.(i).(u))))
        0.0
    in
    let demand =
      match Workflow.successor wf i with
      | None -> Linexpr.var rho
      | Some j -> Linexpr.of_terms (List.init m (fun u -> (1.0, nv.(j).(u)))) 0.0
    in
    Model.add_constraint model
      ~name:(Printf.sprintf "flow_%d" i)
      (Linexpr.sub successes demand) Model.Eq 0.0
  done;
  (* Unit machine capacity. *)
  for u = 0 to m - 1 do
    let load = Linexpr.of_terms (List.init n (fun i -> (Instance.w inst i u, nv.(i).(u)))) 0.0 in
    Model.add_constraint model ~name:(Printf.sprintf "load_%d" u) load Model.Le 1.0
  done;
  Model.set_objective model ~minimize:false (Linexpr.var rho);
  (model, nv)

let model inst = fst (build_model inst)

let solve inst =
  let n = Instance.task_count inst in
  let m = Instance.machines inst in
  let model, nv = build_model inst in
  match Mip.solve_relaxation_certified model with
  | `Infeasible, _ -> Error `Infeasible
  | `Unbounded, _ -> Error `Unbounded
  | `Optimal (_, rho), _ when rho <= 0.0 ->
    (* Zero throughput cannot happen for a well-formed instance (w > 0,
       f < 1 guarantee a positive-rate schedule); keep the function
       total anyway. *)
    Error `Infeasible
  | `Optimal (sol, rho), stats ->
    let period = 1.0 /. rho in
    (* Back to period-form product counts: x = y / rho. *)
    let counts = Array.init n (fun i -> Array.init m (fun u -> sol.(nv.(i).(u)) /. rho)) in
    let shares =
      Array.map
        (fun row ->
          let total = Array.fold_left ( +. ) 0.0 row in
          if total <= 0.0 then Array.map (fun _ -> 0.0) row
          else Array.map (fun v -> v /. total) row)
        counts
    in
    let loads =
      Array.init m (fun u ->
          let acc = ref 0.0 in
          for i = 0 to n - 1 do
            acc := !acc +. (counts.(i).(u) *. Instance.w inst i u)
          done;
          !acc)
    in
    Ok { period; shares; loads; path = stats.Mip.path; stats }

let solve_exact inst =
  match Mip.solve_relaxation_exact (model inst) with
  | `Optimal (_, rho) when rho > 0.0 -> Ok (1.0 /. rho)
  | `Optimal _ | `Infeasible -> Error `Infeasible
  | `Unbounded -> Error `Unbounded

type round_error =
  | No_specialized_mapping
  | No_eligible_machine of int

let describe_round_error = function
  | No_specialized_mapping ->
    "no specialized mapping exists (fewer machines than task types)"
  | No_eligible_machine task ->
    Printf.sprintf "task %d has no eligible machine under the specialized rule" task

exception Round_failed of round_error

let round inst r =
  try
    let eng =
      try Mf_heuristics.Engine.create inst
      with Invalid_argument _ -> raise (Round_failed No_specialized_mapping)
    in
    Array.iter
      (fun task ->
        let best = ref (-1) and best_share = ref neg_infinity in
        List.iter
          (fun u ->
            let s = r.shares.(task).(u) in
            (* Strict [>] keeps the lowest machine index among equal
               shares ([eligible_machines] lists machines in increasing
               index order), so rounding is bit-identical however the
               surrounding sweep is parallelised. *)
            if !best < 0 || s > !best_share then begin
              best := u;
              best_share := s
            end)
          (Mf_heuristics.Engine.eligible_machines eng ~task);
        if !best < 0 then raise (Round_failed (No_eligible_machine task));
        Mf_heuristics.Engine.assign eng ~task ~machine:!best)
      (Mf_heuristics.Engine.order eng);
    let mp = Mf_heuristics.Engine.mapping eng in
    Ok (mp, Period.period inst mp)
  with Round_failed e -> Error e

let round_exn inst r =
  match round inst r with
  | Ok v -> v
  | Error e -> failwith (Printf.sprintf "Splitting.round: %s" (describe_round_error e))
