let solve ?node_budget model = Branch_bound.solve ?node_budget model

type path = [ `Float | `Rational ]

type certified_stats = {
  float_iterations : int;
  exact_iterations : int;
  factorizations : int;
  eta_updates : int;
  refactorizations : int;
  path : path;
}

let zero_stats =
  {
    float_iterations = 0;
    exact_iterations = 0;
    factorizations = 0;
    eta_updates = 0;
    refactorizations = 0;
    path = `Float;
  }

let solve_relaxation model =
  match Standardize.build model with
  | None -> `Infeasible
  | Some std -> (
    match
      Simplex.Float_solver.solve_sparse ~a:std.Standardize.a ~b:std.Standardize.b
        ~c:std.Standardize.c
    with
    | Simplex.Float_solver.Infeasible -> `Infeasible
    | Simplex.Float_solver.Unbounded -> `Unbounded
    | Simplex.Float_solver.Stalled -> `Stalled
    | Simplex.Float_solver.Optimal (x, obj) ->
      `Optimal (std.Standardize.recover x, Standardize.model_objective std obj))

(* The rational copy of a standardized system shares the float matrix's
   index arrays: only the value array is converted. *)
let rat_of_std std =
  let module R = Mf_numeric.Rat in
  ( Sparse.map_values R.of_float std.Standardize.a,
    Array.map R.of_float std.Standardize.b,
    Array.map R.of_float std.Standardize.c )

let solve_relaxation_exact model =
  match Standardize.build model with
  | None -> `Infeasible
  | Some std ->
    let module R = Mf_numeric.Rat in
    let a, b, c = rat_of_std std in
    (match Simplex.Rat_solver.solve_sparse ~a ~b ~c with
    | Simplex.Rat_solver.Infeasible -> `Infeasible
    | Simplex.Rat_solver.Unbounded -> `Unbounded
    | Simplex.Rat_solver.Stalled ->
      (* The exact instance runs with an unlimited pivot budget. *)
      assert false
    | Simplex.Rat_solver.Optimal (x, obj) ->
      let xf = Array.map R.to_float x in
      `Optimal (std.Standardize.recover xf, Standardize.model_objective std (R.to_float obj)))

let solve_relaxation_certified model =
  let module FS = Simplex.Float_solver in
  let module RS = Simplex.Rat_solver in
  let module R = Mf_numeric.Rat in
  match Standardize.build model with
  | None -> (`Infeasible, zero_stats)
  | Some std -> (
    let d =
      FS.solve_sparse_detailed ~a:std.Standardize.a ~b:std.Standardize.b
        ~c:std.Standardize.c ()
    in
    match d.FS.outcome with
    | FS.Optimal (x, obj) ->
      ( `Optimal (std.Standardize.recover x, Standardize.model_objective std obj),
        {
          float_iterations = d.FS.iterations;
          exact_iterations = 0;
          factorizations = d.FS.factorizations;
          eta_updates = d.FS.eta_updates;
          refactorizations = d.FS.refactorizations;
          path = `Float;
        } )
    | FS.Infeasible | FS.Unbounded | FS.Stalled ->
      (* The float path failed (or lied): certify with the exact solver,
         warm-started from the float basis so phase 1 — the dominant
         rational cost — is skipped whenever that basis is realizable. *)
      let a, b, c = rat_of_std std in
      let rd = RS.solve_sparse_from_basis ~a ~b ~c ~basis:d.FS.basis () in
      let stats =
        {
          float_iterations = d.FS.iterations;
          exact_iterations = rd.RS.iterations;
          factorizations = d.FS.factorizations + rd.RS.factorizations;
          eta_updates = d.FS.eta_updates + rd.RS.eta_updates;
          refactorizations = d.FS.refactorizations + rd.RS.refactorizations;
          path = `Rational;
        }
      in
      (match rd.RS.outcome with
      | RS.Optimal (x, obj) ->
        let xf = Array.map R.to_float x in
        ( `Optimal (std.Standardize.recover xf, Standardize.model_objective std (R.to_float obj)),
          stats )
      | RS.Infeasible -> (`Infeasible, stats)
      | RS.Unbounded -> (`Unbounded, stats)
      | RS.Stalled -> assert false))
