module Instance = Mf_core.Instance
module Workflow = Mf_core.Workflow
module Mapping = Mf_core.Mapping
module FS = Simplex.Float_solver
module Sp = Sparse.Make (Mf_numeric.Ordered_field.Float_field)

type t = {
  inst : Instance.t;
  rule : Mapping.rule;
  n : int;
  m : int;
  succ : int array; (* successor task, or -1 for a sink *)
  ty : int array; (* task -> type *)
  committed : bool array;
  x : float array; (* product count, valid where committed *)
  load : float array; (* load.(u): sum of x*w over tasks committed to u *)
  lock : int array; (* lock.(u): type machine u is committed to, or -1 *)
  (* Journal, one frame per push: task, machine, machine's previous load
     (restored verbatim on pop so a push/pop round trip is bit-exact),
     and whether this push locked the machine. *)
  mutable frames : (int * int * float * bool) list;
  mutable depth : int;
  (* basis_stack.(d): optimal basis of the last LP solved at depth d.
     Nodes at equal depth share the uncommitted task set (the search
     assigns tasks in a fixed order), so their LPs have identical shape
     and the sibling's basis is a strong warm start.  A basis the solver
     cannot realize (wrong dimension after an unwind, or referencing a
     column the current locks exclude) falls back to the cold solve —
     staleness costs pivots, never soundness. *)
  basis_stack : int array option array;
  (* sol_stack.(d): primal optimum, deflated bound and journal tail of
     the last LP solved at depth d.  The journal tail (compared
     physically) identifies the exact node the record belongs to, so a
     child can tell its own parent's solve from a stale sibling-subtree
     one.  When the parent's optimum already puts zero rate on every
     column the child's push kills, it is feasible — hence optimal —
     for the child's LP too, and the child reuses the bound without
     solving. *)
  sol_stack : (float array * float * (int * int * float * bool) list) option array;
  mutable solves : int;
  mutable reuses : int;
  mutable warm : int;
  mutable pivots : int;
  mutable factz : int;
}

type stats = {
  solves : int;  (** LP solves actually performed *)
  reuses : int;  (** evaluations answered by the parent's optimum, no solve *)
  warm_starts : int;  (** solves started from a recorded sibling basis *)
  pivots : int;  (** simplex iterations across all solves *)
  factorizations : int;  (** LU factorizations across all solves *)
}

let create ?(rule = Mapping.General) inst =
  let n = Instance.task_count inst and m = Instance.machines inst in
  let wf = Instance.workflow inst in
  let succ =
    Array.init n (fun i -> match Workflow.successor wf i with Some s -> s | None -> -1)
  in
  {
    inst;
    rule;
    n;
    m;
    succ;
    ty = Array.init n (fun i -> Workflow.ttype wf i);
    committed = Array.make n false;
    x = Array.make n 0.0;
    load = Array.make m 0.0;
    lock = Array.make m (-1);
    frames = [];
    depth = 0;
    basis_stack = Array.make (n + 1) None;
    sol_stack = Array.make (n + 1) None;
    solves = 0;
    reuses = 0;
    warm = 0;
    pivots = 0;
    factz = 0;
  }

let push t ~task ~machine =
  if t.committed.(task) then invalid_arg "Node_bound.push: task already committed";
  let s = t.succ.(task) in
  if s >= 0 && not t.committed.(s) then
    invalid_arg "Node_bound.push: successor not committed (pushes must be backward)";
  let denom = 1.0 -. Instance.f t.inst task machine in
  let x = (if s >= 0 then t.x.(s) else 1.0) /. denom in
  t.committed.(task) <- true;
  t.x.(task) <- x;
  let prev_load = t.load.(machine) in
  t.load.(machine) <- prev_load +. (x *. Instance.w t.inst task machine);
  let locked_now = t.lock.(machine) < 0 in
  if locked_now then t.lock.(machine) <- t.ty.(task);
  t.frames <- (task, machine, prev_load, locked_now) :: t.frames;
  t.depth <- t.depth + 1

let pop t =
  match t.frames with
  | [] -> invalid_arg "Node_bound.pop: empty journal"
  | (task, machine, prev_load, locked_now) :: rest ->
    t.committed.(task) <- false;
    t.load.(machine) <- prev_load;
    if locked_now then t.lock.(machine) <- -1;
    t.frames <- rest;
    t.depth <- t.depth - 1

(* Under the given rule, may an uncommitted task [i] run (at all) on
   machine [u] in some completion of the current prefix?  [false] means
   the rate column y(i,u) is fixed to zero in the restricted LP:
   - specialized: a machine hosting committed tasks of type [ty] serves
     only type [ty];
   - one-to-one: a machine hosting a committed task hosts nothing else;
   - general: no restriction. *)
let compatible t i u =
  match t.rule with
  | Mapping.General -> true
  | Mapping.Specialized -> t.lock.(u) < 0 || t.lock.(u) = t.ty.(i)
  | Mapping.One_to_one -> t.lock.(u) < 0

(* Tiny positive floor under rho: a throughput this small (or an
   infeasible/stalled solve) yields no usable bound. *)
let rho_floor = 1e-12

(* Deflation covering the float solver's optimality tolerance, so the
   reported value stays a true lower bound on every completion's period. *)
let safety = 1.0 -. 1e-6

(* Enumerate free-machine type assignments only when at most this many
   machines are still unlocked: 3^free_cap variants per evaluation,
   almost always cut to one by the cutoff short-circuit. *)
let free_cap = 2

(* Combinatorial strengthening of a fully-locked state (every machine
   dedicated to a type — directly, or inside an enumeration variant):
   the LP splits tasks fractionally inside each type group, but a
   completion puts each task wholly on one machine, so pigeonhole
   arguments on per-task minimum work recover part of the integrality
   gap.  For each group (type [ty], its [q] dedicated machines, [k]
   uncommitted tasks):

   - each uncommitted task [i] contributes at least
     [s_i = x_lb(i) * min_u w(i,u)] busy time per product to whichever
     group machine hosts it, where [x_lb(i)] scales the committed
     successor's exact product count by [1/(1 - f_min)] per uncommitted
     task on the path down — a lower bound on [i]'s product count under
     every completion;
   - [k > q]: two of the [q+1] largest contributions share a machine,
     so some machine carries at least the committed-load minimum plus
     the two smallest of those [q+1];
   - some machine hosts at least [ceil(k/q)] tasks, so it carries at
     least the sum of the [ceil(k/q)] smallest contributions;
   - a group with tasks but no machine admits no completion at all.

   Returns a sound period lower bound (the period is the busiest
   machine's cycle time), [infinity] when the lock pattern is
   infeasible, [0.0] when it has nothing to add. *)
let locked_bound t =
  let n = t.n and m = t.m in
  let p = Instance.type_count t.inst in
  let x_lb = Array.make n 0.0 in
  let rec xv i =
    if x_lb.(i) > 0.0 then x_lb.(i)
    else begin
      let sc = t.succ.(i) in
      let base = if sc < 0 then 1.0 else if t.committed.(sc) then t.x.(sc) else xv sc in
      let fmin = ref 1.0 in
      for u = 0 to m - 1 do
        if t.lock.(u) = t.ty.(i) then fmin := Float.min !fmin (Instance.f t.inst i u)
      done;
      let v = base /. (1.0 -. !fmin) in
      x_lb.(i) <- v;
      v
    end
  in
  let sizes = Array.make p [] in
  let counts = Array.make p 0 in
  for i = 0 to n - 1 do
    if not t.committed.(i) then begin
      let ty = t.ty.(i) in
      let wmin = ref infinity in
      for u = 0 to m - 1 do
        if t.lock.(u) = ty then wmin := Float.min !wmin (Instance.w t.inst i u)
      done;
      let s = xv i *. !wmin in
      sizes.(ty) <- s :: sizes.(ty);
      counts.(ty) <- counts.(ty) + 1
    end
  done;
  let best = ref 0.0 in
  (try
     for ty = 0 to p - 1 do
       let k = counts.(ty) in
       if k > 0 then begin
         let q = ref 0 and lmin = ref infinity in
         for u = 0 to m - 1 do
           if t.lock.(u) = ty then begin
             incr q;
             lmin := Float.min !lmin t.load.(u)
           end
         done;
         if !q = 0 then raise Exit;
         if k > !q then begin
           (* ascending contribution sizes *)
           let a = Array.of_list sizes.(ty) in
           Array.sort compare a;
           (* two smallest of the q+1 largest *)
           let pair = a.(k - !q - 1) +. a.(k - !q) in
           (* the ceil(k/q) smallest *)
           let tmin = (k + !q - 1) / !q in
           let sum = ref 0.0 in
           for j = 0 to tmin - 1 do
             sum := !sum +. a.(j)
           done;
           let b = (!lmin +. Float.max pair !sum) *. safety in
           if b > !best then best := b
         end
       end
     done
   with Exit -> best := infinity);
  !best

(* The reduced LP of the current prefix.  Variables: y(i,u) for the
   [nu] uncommitted tasks (all m columns per task; rule-incompatible
   ones left empty with zero cost, hence inert), the throughput rho,
   and one capacity slack per machine.  Rows: one flow row per
   uncommitted task, one capacity row per machine.

   Flow row of uncommitted [i]: successes minus downstream demand = 0.
   When succ(i) is also uncommitted the demand is its execution rate
   (entries -1 in succ's columns); when succ(i) is committed (or [i] is
   a sink) the committed chain below pins the demand to x * rho, so the
   demand moves into the rho column with coefficient -x (x = 1 for a
   sink's output).

   Capacity row of machine [u]: uncommitted work w(i,u) y(i,u) plus the
   committed load load(u) * rho plus slack = 1.  Objective: max rho. *)
(* Does the parent's stored optimum assign (essentially) zero rate to
   every machine column the latest push killed for its task?  If so the
   parent optimum is feasible for this node's LP, so the bound carries
   over exactly. *)
let parent_solves_child t =
  match t.frames with
  | [] -> None
  | (task, machine, _, _) :: parent_frames -> (
    match t.sol_stack.(t.depth - 1) with
    | Some (psol, pbound, pframes) when pframes == parent_frames ->
      (* parent's slot of [task]: uncommitted tasks are enumerated in
         increasing id, and the parent's uncommitted set is the current
         one plus [task]. *)
      let ps = ref 0 in
      for j = 0 to task - 1 do
        if not t.committed.(j) then incr ps
      done;
      let reusable = ref true in
      for u = 0 to t.m - 1 do
        if u <> machine && Float.abs psol.((!ps * t.m) + u) > 1e-12 then reusable := false
      done;
      if !reusable then Some (psol, pbound, !ps) else None
    | _ -> None)

let bound t ~cutoff =
  let n = t.n and m = t.m in

  let nu = n - t.depth in
  (* slot.(i): row (and column-block) index of uncommitted task i *)
  let slot = Array.make n (-1) in
  let uncommitted = Array.make nu (-1) in
  let next = ref 0 in
  for i = 0 to n - 1 do
    if not t.committed.(i) then begin
      slot.(i) <- !next;
      uncommitted.(!next) <- i;
      incr next
    end
  done;
  let solve_current () =
    t.solves <- t.solves + 1;
    let rows = nu + m in
    let cols = (nu * m) + 1 + m in
    let columns = Array.make cols [] in
    for s = 0 to nu - 1 do
      let i = uncommitted.(s) in
      let pred_entries =
        List.filter_map
          (fun p -> if t.committed.(p) then None else Some (slot.(p), -1.0))
          (Workflow.predecessors (Instance.workflow t.inst) i)
      in
      for u = 0 to m - 1 do
        if compatible t i u then
          columns.((s * m) + u) <-
            (s, 1.0 -. Instance.f t.inst i u)
            :: (nu + u, Instance.w t.inst i u)
            :: pred_entries
      done
    done;
    let rho_col = ref [] in
    for u = m - 1 downto 0 do
      if t.load.(u) > 0.0 then rho_col := (nu + u, t.load.(u)) :: !rho_col
    done;
    for s = nu - 1 downto 0 do
      let i = uncommitted.(s) in
      let sc = t.succ.(i) in
      if sc < 0 then rho_col := (s, -1.0) :: !rho_col
      else if t.committed.(sc) then rho_col := (s, -.t.x.(sc)) :: !rho_col
    done;
    columns.(nu * m) <- !rho_col;
    for u = 0 to m - 1 do
      columns.((nu * m) + 1 + u) <- [ (nu + u, 1.0) ]
    done;
    let a = Sp.of_columns ~rows ~cols columns in
    let b = Array.init rows (fun r -> if r < nu then 0.0 else 1.0) in
    let c = Array.make cols 0.0 in
    c.(nu * m) <- -1.0;
    let iter_budget = 200 + (20 * rows) in
    let detail =
      match t.basis_stack.(t.depth) with
      | Some basis when Array.length basis = rows ->
        t.warm <- t.warm + 1;
        FS.solve_sparse_from_basis ~iter_budget ~a ~b ~c ~basis ()
      | _ -> FS.solve_sparse_detailed ~iter_budget ~a ~b ~c ()
    in
    t.pivots <- t.pivots + detail.FS.iterations;
    t.factz <- t.factz + detail.FS.factorizations;
    (match detail.FS.outcome with
    | FS.Optimal _ -> t.basis_stack.(t.depth) <- Some detail.FS.basis
    | _ -> ());
    detail
  in
  let free = ref 0 in
  for u = 0 to m - 1 do
    if t.lock.(u) < 0 then incr free
  done;
  if t.rule = Mapping.Specialized && !free >= 1 && !free <= free_cap then begin
    (* Enumerated bound: every specialized completion dedicates each
       still-free machine to a single type (or leaves it idle, which is
       feasible under any dedication), so the minimum of the locked LPs
       over all type assignments of the free machines lower-bounds every
       completion.  Each variant forbids the fractional multi-type
       sharing of free machines that makes the plain relaxation loose.
       Infeasible or zero-throughput variants admit no completion that
       beats any finite incumbent and drop out of the minimum.  A
       variant whose bound already fails [cutoff] decides the node (no
       prune) and short-circuits the enumeration: the returned value is
       then only a no-prune witness, not a bound for all completions. *)
    let fm = Array.make !free (-1) in
    let k = ref 0 in
    for u = 0 to m - 1 do
      if t.lock.(u) < 0 then begin
        fm.(!k) <- u;
        incr k
      end
    done;
    let p = Instance.type_count t.inst in
    let exception No_prune of float in
    let best = ref infinity in
    let rec assign i =
      if i = !free then begin
        let comb = locked_bound t in
        let v =
          if comb >= cutoff then comb
          else begin
            let d = solve_current () in
            let lp =
              match d.FS.outcome with
              | FS.Optimal (_, obj) when -.obj > rho_floor -> 1.0 /. -.obj *. safety
              | FS.Optimal _ | FS.Infeasible -> infinity
              | _ -> 0.0
            in
            Float.max lp comb
          end
        in
        if v < cutoff then raise (No_prune v);
        if v < !best then best := v
      end
      else
        for ty = 0 to p - 1 do
          t.lock.(fm.(i)) <- ty;
          assign (i + 1);
          t.lock.(fm.(i)) <- -1
        done
    in
    match assign 0 with
    | () -> !best
    | exception No_prune v ->
      for i = 0 to !free - 1 do
        t.lock.(fm.(i)) <- -1
      done;
      v
  end
  else begin
    let comb =
      if t.rule = Mapping.Specialized && !free = 0 then locked_bound t else 0.0
    in
    if comb >= cutoff then comb
    else
    match parent_solves_child t with
    | Some (psol, pbound, ptask_slot) ->
      t.reuses <- t.reuses + 1;
      (* Re-index the parent optimum as this node's solution so the next
         generation can reuse it in turn: drop the pushed task's column
         block (its rates are zero except the chosen machine's, which the
         committed region now accounts for) and shift rho and the
         slacks. *)
      let sol = Array.make ((nu * m) + 1 + m) 0.0 in
      for s = 0 to nu - 1 do
        let ps = if s < ptask_slot then s else s + 1 in
        Array.blit psol (ps * m) sol (s * m) m
      done;
      Array.blit psol ((nu + 1) * m) sol (nu * m) (1 + m);
      t.sol_stack.(t.depth) <- Some (sol, pbound, t.frames);
      Float.max pbound comb
    | None -> (
      let detail = solve_current () in
      match detail.FS.outcome with
      | FS.Optimal (x, obj) when -.obj > rho_floor ->
        let lb = 1.0 /. -.obj *. safety in
        t.sol_stack.(t.depth) <- Some (x, lb, t.frames);
        Float.max lb comb
      | _ -> comb)
  end

let solves (t : t) = t.solves

let stats (t : t) =
  {
    solves = t.solves;
    reuses = t.reuses;
    warm_starts = t.warm;
    pivots = t.pivots;
    factorizations = t.factz;
  }
