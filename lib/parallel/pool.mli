(** Chunked work-stealing domain pool for deterministic fan-out.

    The pool runs independent units of work on OCaml 5 domains.  It is
    built for the experiment runner's contract: callers split a grid into
    {e indexed} tasks whose results land in a pre-sized array by index, so
    the output of {!map_array} (and anything folded from it with
    {!map_reduce}) is independent of the number of domains, of the chunk
    size, and of the order in which chunks are claimed or stolen.
    Determinism is the caller's other half of the bargain: each unit of
    work must be a pure function of its input (in this repository, every
    unit derives its own PRNG stream from its identity — see
    [Mf_experiments.Runner.derive_seed]).

    Architecture (DESIGN.md §14): a pool of [domains = d] is the {e
    calling domain plus d - 1 spawned workers} ([d = 1] spawns none —
    forced serial).  {!map_array} cuts the input into contiguous chunks,
    pre-places them into one strip per domain, and publishes the batch;
    each strip has an atomic cursor, so claiming a chunk — from the own
    strip or by stealing from another domain's — is a single CAS, with no
    allocation and no lock on the steal path.  The submitting domain
    participates: it drains chunks like any worker and only blocks once
    every chunk of its batch has been claimed, so [with_pool ~domains:d]
    uses [d] cores, not [d] busy plus one blocked.

    Exceptions raised by units of work are caught where they run,
    recorded with their index, and re-raised in the submitting domain
    after the whole batch has drained (so the pool is left clean); when
    several units fail, the one with the {e smallest index} wins — again
    independent of scheduling.

    Nested {!map_array} on the same pool is safe: the submitter can
    always drain its own batch itself, so an inner call makes progress
    even when every other domain is busy (at worst it degenerates to
    serial execution of the inner batch).  Concurrent {!map_array} calls
    from different domains are also safe; idle domains steal across all
    in-flight batches. *)

type t

(** [default_jobs ()] is [Domain.recommended_domain_count ()] — the
    default for [--jobs] flags. *)
val default_jobs : unit -> int

(** [create ~domains] makes a pool of [domains] participating domains:
    the caller plus [domains - 1] spawned workers.  [domains = 1] is the
    forced-serial pool: no domain is spawned and all work runs in the
    calling domain.
    @raise Invalid_argument if [domains < 1]. *)
val create : domains:int -> t

(** [domains t] is the participating-domain count the pool was created
    with (caller included). *)
val domains : t -> int

(** [spawned t] is the number of worker domains actually spawned:
    [domains t - 1], or [0] after {!shutdown}. *)
val spawned : t -> int

(** {1 Cooperative cancellation}

    A {!token} is a one-shot cancellation flag shared between a
    submitter and whoever may abort its work (e.g. the daemon's
    [CANCEL] verb).  Passing it to {!map_array} enables {e task
    withdrawal}: once the token is set, chunks not yet claimed are
    skipped instead of run, in-flight chunks complete normally (work
    functions are never interrupted — long-running units poll the token
    themselves), and after the batch drains the submitting domain
    raises {!Cancelled} exactly once.  The pool is left clean: every
    chunk is claimed and counted down whether it ran or was withdrawn,
    so concurrent batches and later submissions are unaffected. *)

type token

exception Cancelled

(** [token ()] makes a fresh, unset token. *)
val token : unit -> token

(** [cancel tok] sets the token.  Idempotent, safe from any domain or
    (sys)thread; tokens are never reset. *)
val cancel : token -> unit

val cancelled : token -> bool

(** [map_array ?chunk t ~f arr] is [Array.map f arr], computed on the pool.
    Results are written into a pre-sized array by index, so the result is
    identical for any pool size {e and} any chunk size.  If some
    [f arr.(i)] raises, the batch still drains completely and the
    exception of the smallest failing index is re-raised here.

    Elements are dispatched in contiguous chunks of [chunk] elements
    (default [max 1 (length arr / (8 * domains))]) so that cheap work
    units do not pay one synchronisation round-trip each — the cause of
    the sub-1x speedups the bench measured on small grids.  Pass
    [~chunk:1] when units are few and individually heavy (e.g.
    exact-search root subtrees) so they spread across all domains.

    [cancel] opts into cooperative cancellation (see the section
    above): when the token is set by the time the batch drains —
    whether any chunk was actually withdrawn or not — {!Cancelled} is
    raised instead of returning a (possibly partial) result.
    @raise Invalid_argument if the pool has been shut down or
    [chunk < 1].
    @raise Cancelled when [cancel]'s token is set. *)
val map_array : ?chunk:int -> ?cancel:token -> t -> f:('a -> 'b) -> 'a array -> 'b array

(** [map_reduce ?chunk t ~f ~combine ~init arr] folds the results of
    [map_array t ~f arr] left-to-right in index order:
    [combine (... (combine init r0) ...) r(n-1)].  Deterministic for any
    pool size, including non-commutative [combine]. *)
val map_reduce :
  ?chunk:int -> t -> f:('a -> 'b) -> combine:('acc -> 'b -> 'acc) -> init:'acc -> 'a array -> 'acc

(** [shutdown t] asks the spawned workers to exit and joins them.
    Safe while batches are in flight: the submitting domain of any
    in-flight batch can always finish the batch itself.  Idempotent; the
    pool rejects new {!map_array} calls afterwards. *)
val shutdown : t -> unit

(** [with_pool ~domains f] runs [f] on a fresh pool and shuts it down on
    the way out, whether [f] returns or raises. *)
val with_pool : domains:int -> (t -> 'a) -> 'a

(** [shared ~domains] returns a process-wide long-lived pool, creating
    it on first use.  Repeated solves and experiment runs reuse it
    instead of paying domain spawn/join per call (the old
    [with_pool]-per-solve lifecycle).

    [shared] is the policy layer behind the [--jobs] flags, and it
    clamps [domains] to {!default_jobs}: domains beyond the physical
    cores cannot add parallelism, only minor-GC handshake and scheduler
    overhead, so on a 1-core host [shared ~domains:4] is the serial
    pool.  Results never depend on the clamp — {!map_array} is
    bit-identical for any domain count — only wall time does.  Use
    {!create} to get an exactly-sized (possibly oversubscribed) pool.

    Shared pools are shut down automatically at process exit; calling
    {!shutdown} on one earlier is allowed, and the next [shared] call
    replaces it.
    @raise Invalid_argument if [domains < 1]. *)
val shared : domains:int -> t

(** [shutdown_shared ()] shuts down every pool created by {!shared}.
    Mostly for tests; normal code relies on the [at_exit] hook. *)
val shutdown_shared : unit -> unit
