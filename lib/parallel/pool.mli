(** Fixed-size domain pool for deterministic experiment fan-out.

    The pool runs independent units of work on OCaml 5 domains.  It is
    built for the experiment runner's contract: callers split a grid into
    {e indexed} tasks whose results land in a pre-sized array by index, so
    the output of {!map_array} (and anything folded from it with
    {!map_reduce}) is independent of the number of domains and of the
    order in which workers drain the queue.  Determinism is the caller's
    other half of the bargain: each unit of work must be a pure function
    of its input (in this repository, every unit derives its own PRNG
    stream from its identity — see [Mf_experiments.Runner.derive_seed]).

    Architecture: [create ~domains:d] spawns [d] worker domains blocked on
    a mutex/condition work queue ([d = 1] spawns none and runs everything
    in the calling domain — forced serial).  {!map_array} pushes one
    closure per element, wakes the workers, and blocks the submitting
    domain until the per-call completion latch reaches zero.  Worker
    domains never hold the queue lock while running user code.

    Exceptions raised by units of work are caught on the worker, recorded
    with their index, and re-raised in the submitting domain after the
    whole batch has drained (so the pool is left clean); when several
    units fail, the one with the {e smallest index} wins — again
    independent of scheduling.

    Calls must not be nested: a unit of work must not itself call
    {!map_array} on the same pool (the submitting domain does not help
    drain the queue, so nested submission can deadlock once all workers
    block on inner batches). *)

type t

(** [default_jobs ()] is [Domain.recommended_domain_count ()] — the
    default for [--jobs] flags. *)
val default_jobs : unit -> int

(** [create ~domains] makes a pool of [domains] workers.  [domains = 1]
    is the forced-serial pool: no domain is spawned and all work runs in
    the calling domain.
    @raise Invalid_argument if [domains < 1]. *)
val create : domains:int -> t

(** [domains t] is the worker count the pool was created with. *)
val domains : t -> int

(** [map_array ?chunk t ~f arr] is [Array.map f arr], computed on the pool.
    Results are written into a pre-sized array by index, so the result is
    identical for any pool size {e and} any chunk size.  If some
    [f arr.(i)] raises, the batch still drains completely and the
    exception of the smallest failing index is re-raised here.

    Elements are dispatched to workers in contiguous chunks of [chunk]
    elements (default [max 1 (length arr / (8 * domains))]) so that cheap
    work units do not pay one mutex round-trip each — the cause of the
    sub-1x speedups the bench measured on small grids.  Pass [~chunk:1]
    when units are few and individually heavy (e.g. exact-search root
    subtrees) so they spread across all domains.
    @raise Invalid_argument if the pool has been shut down or
    [chunk < 1]. *)
val map_array : ?chunk:int -> t -> f:('a -> 'b) -> 'a array -> 'b array

(** [map_reduce ?chunk t ~f ~combine ~init arr] folds the results of
    [map_array t ~f arr] left-to-right in index order:
    [combine (... (combine init r0) ...) r(n-1)].  Deterministic for any
    pool size, including non-commutative [combine]. *)
val map_reduce :
  ?chunk:int -> t -> f:('a -> 'b) -> combine:('acc -> 'b -> 'acc) -> init:'acc -> 'a array -> 'acc

(** [shutdown t] drains nothing: it asks the workers to exit once the
    queue is empty and joins them.  Idempotent; the pool is unusable
    afterwards. *)
val shutdown : t -> unit

(** [with_pool ~domains f] runs [f] on a fresh pool and shuts it down on
    the way out, whether [f] returns or raises. *)
val with_pool : domains:int -> (t -> 'a) -> 'a
