type shared = {
  mutex : Mutex.t;
  work_available : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable stop : bool;
}

type t =
  | Serial
  | Parallel of { shared : shared; workers : unit Domain.t array; mutable alive : bool }

let default_jobs () = Domain.recommended_domain_count ()

(* Workers loop on the queue; jobs are closures that never raise (the
   submitter wraps user code).  The queue lock is never held while a job
   runs. *)
let worker shared =
  let rec next_job () =
    if not (Queue.is_empty shared.queue) then Some (Queue.pop shared.queue)
    else if shared.stop then None
    else begin
      Condition.wait shared.work_available shared.mutex;
      next_job ()
    end
  in
  let rec loop () =
    Mutex.lock shared.mutex;
    let job = next_job () in
    Mutex.unlock shared.mutex;
    match job with
    | None -> ()
    | Some job ->
      job ();
      loop ()
  in
  loop ()

let create ~domains =
  if domains < 1 then invalid_arg "Pool.create: need at least one domain";
  if domains = 1 then Serial
  else begin
    let shared =
      {
        mutex = Mutex.create ();
        work_available = Condition.create ();
        queue = Queue.create ();
        stop = false;
      }
    in
    let workers = Array.init domains (fun _ -> Domain.spawn (fun () -> worker shared)) in
    Parallel { shared; workers; alive = true }
  end

let domains = function Serial -> 1 | Parallel { workers; _ } -> Array.length workers

let shutdown = function
  | Serial -> ()
  | Parallel p ->
    if p.alive then begin
      p.alive <- false;
      Mutex.lock p.shared.mutex;
      p.shared.stop <- true;
      Condition.broadcast p.shared.work_available;
      Mutex.unlock p.shared.mutex;
      Array.iter Domain.join p.workers
    end

let map_array ?chunk t ~f arr =
  match t with
  | Serial -> Array.map f arr
  | Parallel { alive = false; _ } -> invalid_arg "Pool.map_array: pool has been shut down"
  | Parallel { shared; workers; _ } ->
    let n = Array.length arr in
    if n = 0 then [||]
    else begin
      (* Dispatching one queue entry per element makes the mutex traffic
         dominate on cheap work units (the BENCH_parallel small-grid
         regression); contiguous chunks amortise it while keeping results
         slotted by index, so the output stays scheduling-independent. *)
      let chunk =
        match chunk with
        | Some c ->
          if c < 1 then invalid_arg "Pool.map_array: chunk must be positive" else c
        | None -> max 1 (n / (8 * Array.length workers))
      in
      let nchunks = (n + chunk - 1) / chunk in
      let results = Array.make n None in
      (* Completion latch and failure list live under their own lock so
         finishing workers never contend with the queue. *)
      let latch_mutex = Mutex.create () in
      let finished = Condition.create () in
      let remaining = ref nchunks in
      let failures = ref [] in
      let unit_of_work c () =
        let lo = c * chunk and hi = min n ((c + 1) * chunk) in
        let local_failures = ref [] in
        for i = lo to hi - 1 do
          match f arr.(i) with
          | v -> results.(i) <- Some v
          | exception e ->
            let bt = Printexc.get_raw_backtrace () in
            local_failures := (i, e, bt) :: !local_failures
        done;
        Mutex.lock latch_mutex;
        failures := List.rev_append !local_failures !failures;
        decr remaining;
        if !remaining = 0 then Condition.signal finished;
        Mutex.unlock latch_mutex
      in
      Mutex.lock shared.mutex;
      for c = 0 to nchunks - 1 do
        Queue.push (unit_of_work c) shared.queue
      done;
      Condition.broadcast shared.work_available;
      Mutex.unlock shared.mutex;
      Mutex.lock latch_mutex;
      while !remaining > 0 do
        Condition.wait finished latch_mutex
      done;
      Mutex.unlock latch_mutex;
      (* The whole batch has drained; report the smallest failing index so
         the raised exception is scheduling-independent. *)
      match List.sort (fun (i, _, _) (j, _, _) -> compare i j) !failures with
      | (_, e, bt) :: _ -> Printexc.raise_with_backtrace e bt
      | [] ->
        Array.map (function Some v -> v | None -> assert false) results
    end

let map_reduce ?chunk t ~f ~combine ~init arr =
  Array.fold_left combine init (map_array ?chunk t ~f arr)

let with_pool ~domains f =
  let pool = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)
