(* Chunked work-stealing executor.  See pool.mli for the contract and
   DESIGN.md §14 for the architecture rationale.

   A pool of [size] domains is the calling domain plus [size - 1] spawned
   workers.  Every [map_array] call builds one batch: the input is cut
   into contiguous chunks, the chunks are pre-placed into [size] strips
   (one per domain slot - the "per-domain deque"), and each strip carries
   an atomic cursor.  Taking a chunk - from the own strip or by stealing
   from another slot's strip - is one CAS on that cursor: lock-free and
   allocation-free.  The submitting domain does not wait on a latch while
   others work; it drains chunks like any worker and only blocks once no
   chunk of its batch is left to claim. *)

type batch = {
  strip : int array;  (* strip.(d) .. strip.(d+1) - 1: chunk indices owned by slot d *)
  cursor : int Atomic.t array;  (* next unclaimed chunk of each strip *)
  run : int -> unit;  (* execute chunk [c]; never raises (wrapped by the submitter) *)
  remaining : int Atomic.t;  (* chunks not yet finished *)
  done_mutex : Mutex.t;
  done_cond : Condition.t;  (* signalled when [remaining] reaches 0 *)
}

type t = {
  size : int;  (* participating domains, the caller included *)
  mutable workers : unit Domain.t array;  (* [size - 1] spawned domains *)
  batches : batch list Atomic.t;  (* in-flight batches, newest first *)
  sleep_mutex : Mutex.t;
  work_cond : Condition.t;  (* signalled on batch submission and shutdown *)
  stop : bool Atomic.t;
  alive : bool Atomic.t;
}

let default_jobs () = Domain.recommended_domain_count ()
let domains t = t.size
let spawned t = Array.length t.workers

(* ---- cooperative cancellation ------------------------------------- *)

type token = bool Atomic.t

exception Cancelled

let token () = Atomic.make false
let cancel tok = Atomic.set tok true
let cancelled tok = Atomic.get tok

(* ---- chunk claiming (the steal path) ------------------------------ *)

(* Claim the next chunk of strip [d]: one CAS, no allocation.  Returns -1
   when the strip is drained.  The cursor never overshoots [hi] by more
   than the number of concurrent claimants, and only a successful CAS
   moves it, so repeated polling of an empty strip is read-only. *)
let rec claim_strip b d =
  let c = Atomic.get b.cursor.(d) in
  if c >= b.strip.(d + 1) then -1
  else if Atomic.compare_and_set b.cursor.(d) c (c + 1) then c
  else claim_strip b d

(* One unit of progress for the domain sitting in slot [slot]: first its
   own strip, then the other slots' strips in cyclic order (the steal).
   Returns true when a chunk was run. *)
let try_batch slot b =
  let nd = Array.length b.cursor in
  let rec go i =
    if i >= nd then false
    else
      let c = claim_strip b ((slot + i) mod nd) in
      if c >= 0 then begin
        b.run c;
        true
      end
      else go (i + 1)
  in
  go 0

let rec try_batches slot = function
  | [] -> false
  | b :: rest -> try_batch slot b || try_batches slot rest

let batch_claimable b =
  let nd = Array.length b.cursor in
  let rec go d = d < nd && (Atomic.get b.cursor.(d) < b.strip.(d + 1) || go (d + 1)) in
  go 0

let claimable t = List.exists batch_claimable (Atomic.get t.batches)

(* ---- workers ------------------------------------------------------ *)

let worker t slot =
  let rec loop () =
    if not (Atomic.get t.stop) then
      if try_batches slot (Atomic.get t.batches) then loop ()
      else begin
        (* Nothing claimable: sleep until a submission.  The re-check
           happens under the mutex, and submitters broadcast under the
           same mutex after publishing, so the wakeup cannot be lost. *)
        Mutex.lock t.sleep_mutex;
        if (not (Atomic.get t.stop)) && not (claimable t) then
          Condition.wait t.work_cond t.sleep_mutex;
        Mutex.unlock t.sleep_mutex;
        loop ()
      end
  in
  loop ()

(* ---- lifecycle ---------------------------------------------------- *)

let create ~domains =
  if domains < 1 then invalid_arg "Pool.create: need at least one domain";
  let t =
    {
      size = domains;
      workers = [||];
      batches = Atomic.make [];
      sleep_mutex = Mutex.create ();
      work_cond = Condition.create ();
      stop = Atomic.make false;
      alive = Atomic.make true;
    }
  in
  (* The caller occupies slot 0; spawned workers take slots 1 .. size-1.
     domains = 1 spawns nothing and [map_array] degenerates to serial. *)
  t.workers <- Array.init (domains - 1) (fun i -> Domain.spawn (fun () -> worker t (i + 1)));
  t

let shutdown t =
  if Atomic.get t.alive then begin
    Atomic.set t.alive false;
    Atomic.set t.stop true;
    Mutex.lock t.sleep_mutex;
    Condition.broadcast t.work_cond;
    Mutex.unlock t.sleep_mutex;
    Array.iter Domain.join t.workers;
    t.workers <- [||]
  end

let with_pool ~domains f =
  let pool = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* ---- batch submission --------------------------------------------- *)

let rec push_batch t b =
  let cur = Atomic.get t.batches in
  if not (Atomic.compare_and_set t.batches cur (b :: cur)) then push_batch t b

let rec remove_batch t b =
  let cur = Atomic.get t.batches in
  let next = List.filter (fun b' -> b' != b) cur in
  if not (Atomic.compare_and_set t.batches cur next) then remove_batch t b

let map_array ?chunk ?cancel t ~f arr =
  if not (Atomic.get t.alive) then invalid_arg "Pool.map_array: pool has been shut down";
  (match chunk with
  | Some c when c < 1 -> invalid_arg "Pool.map_array: chunk must be positive"
  | _ -> ());
  let is_cancelled () = match cancel with Some tok -> Atomic.get tok | None -> false in
  if is_cancelled () then raise Cancelled;
  let n = Array.length arr in
  if n = 0 then [||]
  else if t.size = 1 then
    Array.map (fun x -> if is_cancelled () then raise Cancelled else f x) arr
  else begin
    (* One queue entry per element makes synchronisation dominate on cheap
       work units (the sub-1x speedups the old bench measured); contiguous
       chunks amortise it while keeping results slotted by index, so the
       output stays scheduling-independent. *)
    let chunk =
      match chunk with Some c -> c | None -> max 1 (n / (8 * t.size))
    in
    let nchunks = (n + chunk - 1) / chunk in
    let results = Array.make n None in
    let failures = ref [] in
    (* protected by done_mutex *)
    let remaining = Atomic.make nchunks in
    let done_mutex = Mutex.create () in
    let done_cond = Condition.create () in
    let run c =
      let lo = c * chunk and hi = min n ((c + 1) * chunk) in
      let local_failures = ref [] in
      (* Task withdrawal: once the token is set, a claimed chunk is
         skipped instead of run — the batch still drains (every chunk is
         claimed and counted down), the submitter still raises exactly
         once, and in-flight chunks are never interrupted. *)
      if not (is_cancelled ()) then
        for i = lo to hi - 1 do
          match f arr.(i) with
          | v -> results.(i) <- Some v
          | exception e ->
            let bt = Printexc.get_raw_backtrace () in
            local_failures := (i, e, bt) :: !local_failures
        done;
      if !local_failures <> [] then begin
        Mutex.lock done_mutex;
        failures := List.rev_append !local_failures !failures;
        Mutex.unlock done_mutex
      end;
      (* The decrement publishes this chunk's result writes (SC atomics):
         whoever observes remaining = 0 sees every slot filled. *)
      if Atomic.fetch_and_add remaining (-1) = 1 then begin
        Mutex.lock done_mutex;
        Condition.broadcast done_cond;
        Mutex.unlock done_mutex
      end
    in
    (* Pre-place the chunks into one contiguous strip per domain slot.
       The submitter owns slot 0 and starts on its own strip; idle workers
       wake and drain theirs, stealing across strips once done. *)
    let strip =
      Array.init (t.size + 1) (fun d -> d * nchunks / t.size)
    in
    let b =
      {
        strip;
        cursor = Array.init t.size (fun d -> Atomic.make strip.(d));
        run;
        remaining;
        done_mutex;
        done_cond;
      }
    in
    push_batch t b;
    Mutex.lock t.sleep_mutex;
    Condition.broadcast t.work_cond;
    Mutex.unlock t.sleep_mutex;
    (* Caller participation: drain this batch like any worker instead of
       blocking - [with_pool ~domains:d] therefore uses d cores, not
       d busy plus one blocked. *)
    while try_batch 0 b do
      ()
    done;
    (* Every chunk is claimed; wait for thieves still running theirs. *)
    Mutex.lock done_mutex;
    while Atomic.get remaining > 0 do
      Condition.wait done_cond done_mutex
    done;
    Mutex.unlock done_mutex;
    remove_batch t b;
    (* Withdrawal implies the token is set (it is never cleared), so
       checking it here also covers every skipped chunk: a batch never
       returns an array with unfilled slots. *)
    if is_cancelled () then raise Cancelled;
    (* The whole batch has drained; report the smallest failing index so
       the raised exception is scheduling-independent. *)
    match List.sort (fun (i, _, _) (j, _, _) -> compare i j) !failures with
    | (_, e, bt) :: _ -> Printexc.raise_with_backtrace e bt
    | [] -> Array.map (function Some v -> v | None -> assert false) results
  end

let map_reduce ?chunk t ~f ~combine ~init arr =
  Array.fold_left combine init (map_array ?chunk t ~f arr)

(* ---- long-lived shared pools -------------------------------------- *)

(* One pool per effective size, created on first use and reused for the
   rest of the process: repeated solves stop paying domain spawn/join.
   The table lock is taken once per [shared] call, never on work paths.

   [shared] is the policy layer behind every --jobs flag, and it clamps
   the request to [recommended_domain_count]: domains beyond the
   physical cores cannot add parallelism, they only add minor-GC
   stop-the-world handshakes and scheduler churn (measured at 1.3-2.2x
   *slowdown* on a 1-core host).  Results are unaffected - [map_array]
   is bit-identical for any domain count - so clamping changes wall
   time only.  Callers that really want an oversubscribed pool (tests,
   benchmarks of the machinery itself) use [create], which spawns
   exactly what was asked. *)
let shared_mutex = Mutex.create ()
let shared_pools : (int, t) Hashtbl.t = Hashtbl.create 4
let cleanup_registered = ref false

let shutdown_shared () =
  Mutex.lock shared_mutex;
  let pools = Hashtbl.fold (fun _ p acc -> p :: acc) shared_pools [] in
  Hashtbl.reset shared_pools;
  Mutex.unlock shared_mutex;
  List.iter shutdown pools

let shared ~domains =
  if domains < 1 then invalid_arg "Pool.shared: need at least one domain";
  let domains = min domains (default_jobs ()) in
  Mutex.lock shared_mutex;
  let pool =
    match Hashtbl.find_opt shared_pools domains with
    | Some p when Atomic.get p.alive -> p
    | _ ->
      let p = create ~domains in
      Hashtbl.replace shared_pools domains p;
      if not !cleanup_registered then begin
        cleanup_registered := true;
        at_exit shutdown_shared
      end;
      p
  in
  Mutex.unlock shared_mutex;
  pool
