(** Re-mapping plans: migrate the tasks of dead machines and refine.

    A plan is computed against a snapshot [(mapping, down)] of the live
    simulation state, on {!Mf_eval.State}'s O(subtree) journaled
    move/swap evaluation — the same machinery the offline local search
    uses, so a decision costs a counted number of incremental
    evaluations rather than full O(n + m) re-scores.  Two phases:

    + {b greedy repair} — every task stranded on a down machine moves to
      the surviving machine minimising the resulting period (specialized
      rule enforced through {!Mf_eval.State.move_allowed}; ties toward
      the lowest machine index).  This phase always completes: its
      evaluations count toward the reported latency but are never capped,
      so budget pressure degrades quality, never feasibility.
    + {b bounded local search} — best-improving task moves and machine
      group swaps over the surviving machines only, stopping at the
      first non-improving round or when [budget] evaluations have been
      spent in total.

    The planner never assigns a task to a down machine. *)

type t = {
  moves : (int * int) array;
      (** (task, machine) re-assignments vs the input mapping *)
  period : float;  (** period of the planned mapping *)
  greedy_period : float;  (** period after greedy repair alone *)
  evals : int;  (** incremental evaluations spent (≥ latency budget) *)
}

val default_budget : int

(** [repair ?budget inst ~mapping ~down] plans the migration.  [None]
    when some stranded task has no feasible surviving host under the
    specialized rule (the caller leaves the mapping alone; stranded
    tasks simply wait for the repair).  With no stranded task this is a
    pure budget-bounded improvement pass over the surviving machines.
    @raise Invalid_argument on mismatched array lengths. *)
val repair :
  ?budget:int ->
  Mf_core.Instance.t ->
  mapping:int array ->
  down:bool array ->
  t option
