module Instance = Mf_core.Instance
module Mapping = Mf_core.Mapping
module Period = Mf_core.Period
module Desim = Mf_sim.Desim

let any_stranded ~down mapping =
  Array.exists (fun u -> down.(u)) mapping

let feasible_over ~down arr =
  not (Array.exists (fun u -> down.(u)) arr)

let diff_moves ~from target =
  let moves = ref [] in
  for i = Array.length from - 1 downto 0 do
    if from.(i) <> target.(i) then moves := (i, target.(i)) :: !moves
  done;
  Array.of_list !moves

let remapper ?budget ?original inst : Desim.remapper =
  let original = Option.map Mapping.to_array original in
  let strict_better p q = p < q *. (1.0 -. 1e-12) in
  fun ~time:_ ~down ~mapping change ->
    let repair () =
      match Plan.repair ?budget inst ~mapping ~down with
      | None -> None (* no feasible host: stranded tasks wait for the crew *)
      | Some p when Array.length p.Plan.moves = 0 -> None
      | Some p -> Some { Desim.moves = p.Plan.moves; evals = p.Plan.evals }
    in
    match change with
    | Desim.Down _ -> if any_stranded ~down mapping then repair () else None
    | Desim.Up _ ->
      if any_stranded ~down mapping then
        (* a racing failure or an earlier infeasible plan left tasks on a
           still-down machine: this repair may have opened a host *)
        repair ()
      else begin
        (* nothing stranded: weigh doing nothing, restoring the designed
           mapping, and a budget-bounded improvement of the live one *)
        let live_p = Period.period inst (Mapping.of_array inst mapping) in
        let plan = Plan.repair ?budget inst ~mapping ~down in
        let plan_p =
          match plan with Some p -> p.Plan.period | None -> infinity
        in
        let restore =
          match original with
          | Some orig when feasible_over ~down orig && orig <> mapping ->
            let orig_p = Period.period inst (Mapping.of_array inst orig) in
            (* prefer the designed mapping whenever it is at least as good
               as the improved live one — and actually better than live *)
            if strict_better orig_p live_p && orig_p <= plan_p *. (1.0 +. 1e-12)
            then Some orig
            else None
          | _ -> None
        in
        match (restore, plan) with
        | Some orig, _ ->
          let evals = (match plan with Some p -> p.Plan.evals | None -> 0) + 1 in
          Some { Desim.moves = diff_moves ~from:mapping orig; evals }
        | None, Some p
          when strict_better p.Plan.period live_p && Array.length p.Plan.moves > 0 ->
          Some { Desim.moves = p.Plan.moves; evals = p.Plan.evals }
        | _ -> None
      end

let simulate ?warmup ?buffer_capacity ?budget ?remap_eval_cost ?(restore = true)
    ~breakdowns ~horizon ~seed ?on_event inst mp =
  let rm = remapper ?budget ?original:(if restore then Some mp else None) inst in
  Desim.run ?warmup ?buffer_capacity ~breakdowns ~remapper:rm ?remap_eval_cost
    ~horizon ~seed ?on_event inst mp
