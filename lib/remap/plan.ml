module Instance = Mf_core.Instance
module Mapping = Mf_core.Mapping
module State = Mf_eval.State

type t = {
  moves : (int * int) array;
  period : float;
  greedy_period : float;
  evals : int;
}

let default_budget = 400

(* Strict improvement threshold: a move must beat the incumbent by a
   relative margin, or churn at ulp scale would re-map forever. *)
let improves p current = p < current *. (1.0 -. 1e-12)

let repair ?(budget = default_budget) inst ~mapping ~down =
  let n = Instance.task_count inst and m = Instance.machines inst in
  if Array.length mapping <> n then
    invalid_arg "Plan.repair: mapping length differs from task count";
  if Array.length down <> m then
    invalid_arg "Plan.repair: down length differs from machine count";
  let st = State.of_mapping inst (Mapping.of_array inst mapping) in
  let evals = ref 0 in
  (* Greedy repair: every task stranded on a down machine migrates to the
     up machine minimising the resulting period (ties toward the lowest
     machine index).  This phase always runs to completion — its
     evaluations are counted against the decision latency but never
     capped, so a tight budget can degrade the re-map's quality, not its
     feasibility. *)
  let stranded = ref [] in
  for i = n - 1 downto 0 do
    if down.(mapping.(i)) then stranded := i :: !stranded
  done;
  let feasible = ref true in
  List.iter
    (fun i ->
      if !feasible then begin
        let best = ref None in
        for v = 0 to m - 1 do
          if (not down.(v)) && v <> State.machine_of st i
             && State.move_allowed st ~task:i ~machine:v
          then begin
            let p = State.try_move st ~task:i ~machine:v in
            incr evals;
            match !best with
            | Some (_, bp) when bp <= p -> ()
            | _ -> best := Some (v, p)
          end
        done;
        match !best with
        | None -> feasible := false
        | Some (v, _) -> State.apply_move st ~task:i ~machine:v
      end)
    !stranded;
  if not !feasible then None
  else begin
    let greedy_period = State.period st in
    (* Bounded local-search refinement over the surviving machines: best
       task move or machine group swap per round, stopping at the first
       non-improving round or when the evaluation budget runs out. *)
    let current = ref greedy_period in
    let exhausted = ref false in
    let improved = ref true in
    while !improved && not !exhausted do
      improved := false;
      let best_move = ref None in
      for i = 0 to n - 1 do
        let original = State.machine_of st i in
        for v = 0 to m - 1 do
          if (not !exhausted) && (not down.(v)) && v <> original
             && State.move_allowed st ~task:i ~machine:v
          then begin
            if !evals >= budget then exhausted := true
            else begin
              let p = State.try_move st ~task:i ~machine:v in
              incr evals;
              let better =
                match !best_move with
                | None -> improves p !current
                | Some (_, _, bp) -> p < bp
              in
              if better then best_move := Some (i, v, p)
            end
          end
        done
      done;
      let best_swap = ref None in
      for u = 0 to m - 1 do
        for v = u + 1 to m - 1 do
          if (not !exhausted) && (not down.(u)) && not down.(v) then begin
            if !evals >= budget then exhausted := true
            else begin
              let p = State.try_swap st ~u ~v in
              incr evals;
              let better =
                match !best_swap with
                | None -> improves p !current
                | Some (_, _, bp) -> p < bp
              in
              if better then best_swap := Some (u, v, p)
            end
          end
        done
      done;
      (match (!best_move, !best_swap) with
      | None, None -> ()
      | Some (i, v, p), None ->
        State.apply_move st ~task:i ~machine:v;
        current := p;
        improved := true
      | None, Some (u, v, p) ->
        State.apply_swap st ~u ~v;
        current := p;
        improved := true
      | Some (i, v, pm), Some (u, w, ps) ->
        if pm <= ps then State.apply_move st ~task:i ~machine:v
        else State.apply_swap st ~u ~v:w;
        current := Float.min pm ps;
        improved := true)
    done;
    let final = State.to_array st in
    let moves = ref [] in
    for i = n - 1 downto 0 do
      if final.(i) <> mapping.(i) then moves := (i, final.(i)) :: !moves
    done;
    Some
      {
        moves = Array.of_list !moves;
        period = State.period st;
        greedy_period;
        evals = !evals;
      }
  end
