(** The online re-mapper: a {!Mf_sim.Desim.remapper} that migrates tasks
    off dead machines and restores the designed mapping after repairs.

    Decision policy, consulted on every availability change:

    - {b breakdown} — if any task now sits on a down machine, compute a
      {!Plan.repair} (greedy migration + bounded local search over the
      surviving machines).  If no feasible host exists the mapping is
      left alone: stranded tasks wait for the repair crew.
    - {b repair} — if tasks are still stranded (a racing failure, or an
      earlier infeasible plan), repair again.  Otherwise weigh three
      candidates and commit the best: do nothing, {e restore the original
      (designed) mapping} — chosen whenever it is feasible over the
      surviving machines, strictly better than the live mapping and at
      least as good as the improved one — or the budget-bounded
      improvement of the live mapping.

    Every decision's evaluation count is reported to the simulator, which
    turns it into simulated latency; the commit races the next
    availability change and is dropped when it loses. *)

(** [remapper ?budget ?original inst] builds the decision procedure.
    [budget] bounds the local-search evaluations per decision
    ({!Plan.default_budget} by default); [original] is the designed
    mapping restored after repairs when that wins. *)
val remapper :
  ?budget:int ->
  ?original:Mf_core.Mapping.t ->
  Mf_core.Instance.t ->
  Mf_sim.Desim.remapper

(** [simulate ~breakdowns ~horizon ~seed inst mp] is
    {!Mf_sim.Desim.run} with the online re-mapper wired in, restoring
    toward [mp] (disable with [~restore:false]). *)
val simulate :
  ?warmup:float ->
  ?buffer_capacity:int ->
  ?budget:int ->
  ?remap_eval_cost:float ->
  ?restore:bool ->
  breakdowns:Mf_sim.Breakdown.t ->
  horizon:float ->
  seed:int ->
  ?on_event:(Mf_sim.Event.t -> unit) ->
  Mf_core.Instance.t ->
  Mf_core.Mapping.t ->
  Mf_sim.Desim.result
