(** Machine periods and system throughput (paper Equation (1)).

    The period of machine [Mu] is the time it spends producing one final
    product: [period(Mu) = sum over tasks i on u of x_i * w(i,u)].
    The system period is the maximum over machines (the slowest machine
    paces the pipeline); the throughput is its inverse. *)

(** [machine_periods inst mp] is the vector of per-machine periods; unused
    machines have period [0]. *)
val machine_periods : Instance.t -> Mapping.t -> float array

(** [period inst mp] is the system period [max_u period(Mu)]. *)
val period : Instance.t -> Mapping.t -> float

(** [throughput inst mp] is [1 / period] (products per time unit). *)
val throughput : Instance.t -> Mapping.t -> float

(** [critical_machines inst mp] lists the machines attaining the system
    period, up to a relative tolerance of 1e-9. *)
val critical_machines : Instance.t -> Mapping.t -> int list

(** [period_exact inst mp] is the system period in exact rational
    arithmetic. *)
val period_exact : Instance.t -> Mapping.t -> Mf_numeric.Rat.t

(** [period_with_x inst mp xs] computes the period from precomputed product
    counts — used by solvers that maintain [xs] incrementally. *)
val period_with_x : Instance.t -> Mapping.t -> float array -> float

(** [with_setup inst mp ~setup] is the system period when a machine running
    several task {e types} must be reconfigured between types.  In the
    cyclic steady state a machine batching [k >= 2] distinct types cycles
    through them and back to its first type every period, so it pays
    [k * setup] time units per period ([k] switches — including the one
    closing the cycle — not the one-pass [k - 1]).  Machines hosting a
    single type (hence specialized and one-to-one mappings) are unaffected.
    [Exact.Dfs.general ~setup] charges the same convention, and a unit test
    pins the two against each other.  This quantifies the paper's Section 6
    remark that general mappings are impractical "because of the
    unaffordable reconfiguration costs".
    @raise Invalid_argument if [setup < 0]. *)
val with_setup : Instance.t -> Mapping.t -> setup:float -> float
