let to_string inst =
  let n = Instance.task_count inst in
  let m = Instance.machines inst in
  let wf = Instance.workflow inst in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "# micro-factory instance (see Instance_io for the format)\n";
  Buffer.add_string buf (Printf.sprintf "tasks %d machines %d\n" n m);
  Buffer.add_string buf "types";
  for i = 0 to n - 1 do
    Buffer.add_string buf (Printf.sprintf " %d" (Workflow.ttype wf i))
  done;
  Buffer.add_string buf "\nsuccessors";
  for i = 0 to n - 1 do
    Buffer.add_string buf
      (Printf.sprintf " %d" (match Workflow.successor wf i with None -> -1 | Some j -> j))
  done;
  Buffer.add_char buf '\n';
  for i = 0 to n - 1 do
    Buffer.add_string buf (Printf.sprintf "w %d" i);
    for u = 0 to m - 1 do
      Buffer.add_string buf (Printf.sprintf " %.17g" (Instance.w inst i u))
    done;
    Buffer.add_char buf '\n'
  done;
  for i = 0 to n - 1 do
    Buffer.add_string buf (Printf.sprintf "f %d" i);
    for u = 0 to m - 1 do
      Buffer.add_string buf (Printf.sprintf " %.17g" (Instance.f inst i u))
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

type error = { line : int; message : string }

let describe_error e =
  if e.line = 0 then Printf.sprintf "Instance_io: %s" e.message
  else Printf.sprintf "Instance_io: line %d: %s" e.line e.message

exception Parse_error of error

let fail line message = raise (Parse_error { line; message })

let of_string_exn text =
  let lines =
    String.split_on_char '\n' text
    |> List.mapi (fun idx l -> (idx + 1, String.trim l))
    |> List.filter (fun (_, l) -> l <> "" && l.[0] <> '#')
  in
  let words (lineno, l) = (lineno, String.split_on_char ' ' l |> List.filter (( <> ) "")) in
  let parse_int lineno s =
    match int_of_string_opt s with Some v -> v | None -> fail lineno ("bad integer " ^ s)
  in
  let parse_float lineno s =
    match float_of_string_opt s with Some v -> v | None -> fail lineno ("bad float " ^ s)
  in
  (* Peel the three header lines one at a time so a missing or mangled
     types/successors line is reported as such, not as a bad header. *)
  let demand_line what = function
    | (lineno, keyword :: ws) :: rest when keyword = what -> (lineno, ws, rest)
    | (lineno, _) :: _ -> fail lineno (Printf.sprintf "expected a '%s ...' line" what)
    | [] -> fail 0 (Printf.sprintf "missing '%s ...' line" what)
  in
  match List.map words lines with
  | (l1, [ "tasks"; n_s; "machines"; m_s ]) :: rest ->
    let l2, type_words, rest = demand_line "types" rest in
    let l3, succ_words, rest = demand_line "successors" rest in
    let n = parse_int l1 n_s and m = parse_int l1 m_s in
    if List.length type_words <> n then fail l2 "expected one type per task";
    if List.length succ_words <> n then fail l3 "expected one successor per task";
    let types = Array.of_list (List.map (parse_int l2) type_words) in
    let successor =
      Array.of_list
        (List.map
           (fun s ->
             let v = parse_int l3 s in
             if v < 0 then None else Some v)
           succ_words)
    in
    let w = Array.make_matrix n m 0.0 in
    let f = Array.make_matrix n m 0.0 in
    let seen_w = Array.make n false and seen_f = Array.make n false in
    List.iter
      (fun (lineno, ws) ->
        match ws with
        | kind :: i_s :: values when kind = "w" || kind = "f" ->
          let i = parse_int lineno i_s in
          if i < 0 || i >= n then fail lineno "task index out of range";
          if List.length values <> m then fail lineno "expected one value per machine";
          let target, seen = if kind = "w" then (w, seen_w) else (f, seen_f) in
          List.iteri (fun u s -> target.(i).(u) <- parse_float lineno s) values;
          seen.(i) <- true
        | _ -> fail lineno "expected a 'w <i> ...' or 'f <i> ...' line")
      rest;
    Array.iteri (fun i s -> if not s then fail 0 (Printf.sprintf "missing w row for task %d" i)) seen_w;
    Array.iteri (fun i s -> if not s then fail 0 (Printf.sprintf "missing f row for task %d" i)) seen_f;
    let workflow = Workflow.in_forest ~types ~successor in
    Instance.create ~workflow ~machines:m ~w ~f
  | (lineno, _) :: _ -> fail lineno "expected header 'tasks <n> machines <m>'"
  | [] -> fail 0 "empty input"

let of_string_result text =
  match of_string_exn text with
  | inst -> Ok inst
  | exception Parse_error e -> Error e
  (* The Workflow/Instance smart constructors reject semantic problems
     (successor cycles, type-inconsistent w, f outside [0, 1)) that
     line-level parsing cannot see. *)
  | exception Invalid_argument message -> Error { line = 0; message }

let of_string text =
  match of_string_result text with
  | Ok inst -> inst
  | Error e -> invalid_arg (describe_error e)

(* ---- streaming framing (the daemon wire) -------------------------- *)

(* "end" cannot collide with instance content: every body line starts
   with tasks/types/successors/w/f or '#'. *)
let end_marker = "end"
let to_framed_string inst = to_string inst ^ end_marker ^ "\n"

let read_framed next =
  let buf = Buffer.create 1024 in
  let rec loop n =
    match next () with
    | None ->
      Error
        {
          line = n;
          message =
            (if n = 0 then "empty input"
             else Printf.sprintf "input ended before the '%s' marker" end_marker);
        }
    | Some line ->
      if String.trim line = end_marker then of_string_result (Buffer.contents buf)
      else begin
        Buffer.add_string buf line;
        Buffer.add_char buf '\n';
        loop (n + 1)
      end
  in
  loop 0

let write_file path inst =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string inst))

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (In_channel.input_all ic))
