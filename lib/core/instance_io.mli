(** Plain-text (de)serialisation of problem instances.

    The format is line-oriented and human-editable:

    {v # any number of comment lines
      tasks <n> machines <m>
      types <t(0)> ... <t(n-1)>
      successors <s(0)> ... <s(n-1)>     (-1 for final tasks)
      w <i> <w(i,0)> ... <w(i,m-1)>       (n lines)
      f <i> <f(i,0)> ... <f(i,m-1)>       (n lines) v}

    Floats are printed with full precision ([%.17g]) so write/read
    round-trips exactly. *)

val to_string : Instance.t -> string

(** A parse or validation failure: [line] is 1-based, or 0 when the
    problem concerns the document as a whole (empty input, a missing
    row, a workflow/instance invariant violated by consistent-looking
    lines). *)
type error = { line : int; message : string }

val describe_error : error -> string

(** [of_string_result text] parses an instance, reporting malformed
    input — including values the {!Instance} and {!Workflow} smart
    constructors reject — as a typed [Error] rather than an exception. *)
val of_string_result : string -> (Instance.t, error) result

(** @raise Invalid_argument on malformed input (with a line diagnostic). *)
val of_string : string -> Instance.t

val write_file : string -> Instance.t -> unit
val read_file : string -> Instance.t
