(** Plain-text (de)serialisation of problem instances.

    The format is line-oriented and human-editable:

    {v # any number of comment lines
      tasks <n> machines <m>
      types <t(0)> ... <t(n-1)>
      successors <s(0)> ... <s(n-1)>     (-1 for final tasks)
      w <i> <w(i,0)> ... <w(i,m-1)>       (n lines)
      f <i> <f(i,0)> ... <f(i,m-1)>       (n lines) v}

    Floats are printed with full precision ([%.17g]) so write/read
    round-trips exactly. *)

val to_string : Instance.t -> string

(** A parse or validation failure: [line] is 1-based, or 0 when the
    problem concerns the document as a whole (empty input, a missing
    row, a workflow/instance invariant violated by consistent-looking
    lines). *)
type error = { line : int; message : string }

val describe_error : error -> string

(** [of_string_result text] parses an instance, reporting malformed
    input — including values the {!Instance} and {!Workflow} smart
    constructors reject — as a typed [Error] rather than an exception. *)
val of_string_result : string -> (Instance.t, error) result

(** @raise Invalid_argument on malformed input (with a line diagnostic). *)
val of_string : string -> Instance.t

(** {1 Streaming framing}

    Line-oriented framing for long-lived connections (the [mfoptd]
    wire): an instance block is the {!to_string} text followed by one
    {!end_marker} line.  The marker cannot appear in instance content
    (every body line starts with a keyword or [#]). *)

(** The frame terminator line, ["end"]. *)
val end_marker : string

(** [to_framed_string inst] is [to_string inst] followed by the
    {!end_marker} line — the exact bytes {!read_framed} accepts. *)
val to_framed_string : Instance.t -> string

(** [read_framed next] pulls lines (without trailing newlines) from
    [next] until the {!end_marker} line, then parses the collected
    block like {!of_string_result}.  [next] returning [None] before the
    marker is a framing error whose [line] is the count of lines
    consumed; the stream is left positioned after the marker, so
    framing survives malformed blocks. *)
val read_framed : (unit -> string option) -> (Instance.t, error) result

val write_file : string -> Instance.t -> unit
val read_file : string -> Instance.t
