let machine_periods_with_x inst mp xs =
  let m = Instance.machines inst in
  let acc = Array.init m (fun _ -> Mf_numeric.Kahan.create ()) in
  for i = 0 to Instance.task_count inst - 1 do
    let u = Mapping.machine mp i in
    Mf_numeric.Kahan.add acc.(u) (xs.(i) *. Instance.w inst i u)
  done;
  Array.map Mf_numeric.Kahan.total acc

let machine_periods inst mp = machine_periods_with_x inst mp (Products.x inst mp)

let period_with_x inst mp xs =
  Array.fold_left Float.max 0.0 (machine_periods_with_x inst mp xs)

let period inst mp = Array.fold_left Float.max 0.0 (machine_periods inst mp)
let throughput inst mp = 1.0 /. period inst mp

let critical_machines inst mp =
  let periods = machine_periods inst mp in
  let best = Array.fold_left Float.max 0.0 periods in
  let tol = best *. 1e-9 in
  List.filter
    (fun u -> periods.(u) >= best -. tol)
    (List.init (Instance.machines inst) Fun.id)

let period_exact inst mp =
  let module R = Mf_numeric.Rat in
  let xs = Products.x_exact inst mp in
  let m = Instance.machines inst in
  let sums = Array.make m R.zero in
  for i = 0 to Instance.task_count inst - 1 do
    let u = Mapping.machine mp i in
    sums.(u) <- R.add sums.(u) (R.mul xs.(i) (R.of_float (Instance.w inst i u)))
  done;
  Array.fold_left R.max R.zero sums

let with_setup inst mp ~setup =
  if setup < 0.0 then invalid_arg "Period.with_setup: negative setup time";
  let m = Instance.machines inst in
  let wf = Instance.workflow inst in
  let periods = machine_periods inst mp in
  let worst = ref 0.0 in
  for u = 0 to m - 1 do
    let types =
      List.sort_uniq Stdlib.compare
        (List.map (Workflow.ttype wf) (Mapping.tasks_on mp ~u))
    in
    (* Cyclic steady state: a machine serving k >= 2 distinct types cycles
       through them and back to the first every period — k switches, not
       k-1 (the one-pass count, which forgets the switch closing the
       cycle).  Dfs's general-rule search charges the same convention. *)
    let k = List.length types in
    let reconfigurations = if k >= 2 then k else 0 in
    worst := Float.max !worst (periods.(u) +. (float_of_int reconfigurations *. setup))
  done;
  !worst
