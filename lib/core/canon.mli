(** Symmetry-normalized canonical form of an instance — the key of the
    answer cache in [Mf_solve].

    Two instances that differ only by a bijective relabeling of task
    types and/or a permutation of machines describe the same optimization
    problem: type labels carry no data (processing times are stored per
    task) and machines are anonymous — only their [(w, f)] columns
    matter.  The canonical form quotients both symmetries out:

    - {b types} are relabeled to first-appearance order over the (fixed)
      task numbering — the normalization already proven out by the
      [Mf_proptest] shrinking generators;
    - {b machines} are sorted by their [(w column, f column)] pair,
      compared lexicographically and bit-exactly — the same equivalence
      [Mf_exact.Symmetry.machine_classes] detects, strengthened to a
      total order, so bit-identical columns (symmetric machines) end up
      adjacent and the class representatives appear in sorted column
      order.

    Task numbering and the successor relation are {e not} permuted: the
    near-duplicate traffic the cache targets (the same factory asked
    about again under renamed machines or relabeled types) preserves
    them, and task-level graph canonicalization would cost a graph
    isomorphism.

    Because machine permutation leaves every per-machine Kahan load sum
    over the {e same} operands in the {e same} task order, the period of
    a mapping is invariant {e bit-for-bit} under [map_from_canon] /
    [map_to_canon] (the metamorphic fuzz oracle pins this), so an answer
    computed on the canonical instance transfers back exactly. *)

type t = {
  instance : Instance.t;  (** the canonical form *)
  key : string;
      (** full-precision serialization of the canonical form — equal iff
          the canonical forms are identical *)
  of_canon : int array;
      (** [of_canon.(c)] is the original machine behind canonical column
          [c] (lowest original index among a run of identical columns) *)
  to_canon : int array;  (** inverse: original machine [u] sits at canonical column [to_canon.(u)] *)
  type_of_canon : int array;  (** canonical type [j] was original type [type_of_canon.(j)] *)
}

(** [canonicalize inst] computes the canonical form and the permutations
    linking it to [inst].  Deterministic; O(n m log m + key size). *)
val canonicalize : Instance.t -> t

(** [key inst] is [(canonicalize inst).key] — invariant under machine
    permutation and bijective type relabeling. *)
val key : Instance.t -> string

(** [map_from_canon t alloc] rewrites an allocation over canonical
    machine indices (a solution of [t.instance]) into one over the
    original machines — same loads, bit-identical period. *)
val map_from_canon : t -> int array -> int array

(** [map_to_canon t alloc] is the inverse rewrite. *)
val map_to_canon : t -> int array -> int array
