type t = {
  instance : Instance.t;
  key : string;
  of_canon : int array;
  to_canon : int array;
  type_of_canon : int array;
}

(* First-appearance relabeling over the fixed task order: label arrays
   related by a bijection normalize to the same array. *)
let first_appearance_types wf =
  let n = Workflow.task_count wf in
  let p = Workflow.type_count wf in
  let canon_of_type = Array.make p (-1) in
  let type_of_canon = Array.make p (-1) in
  let next = ref 0 in
  let types =
    Array.init n (fun i ->
        let raw = Workflow.ttype wf i in
        if canon_of_type.(raw) < 0 then begin
          canon_of_type.(raw) <- !next;
          type_of_canon.(!next) <- raw;
          incr next
        end;
        canon_of_type.(raw))
  in
  (* Workflow guarantees every type in [0, p) is used, so the relabeling
     is a full bijection by the time the scan ends. *)
  assert (!next = p);
  (types, type_of_canon)

(* Lexicographic, bit-exact order on machine columns: the w column first,
   then the f column.  Ties (bit-identical columns — exactly the classes
   of Symmetry.machine_classes) break toward the lower original index,
   which keeps the sort deterministic without affecting the canonical
   instance: tied columns are interchangeable. *)
let compare_columns inst u v =
  let n = Instance.task_count inst in
  let rec go_w i =
    if i = n then go_f 0
    else
      let c = Float.compare (Instance.w inst i u) (Instance.w inst i v) in
      if c <> 0 then c else go_w (i + 1)
  and go_f i =
    if i = n then 0
    else
      let c = Float.compare (Instance.f inst i u) (Instance.f inst i v) in
      if c <> 0 then c else go_f (i + 1)
  in
  go_w 0

let canonicalize inst =
  let n = Instance.task_count inst in
  let m = Instance.machines inst in
  let wf = Instance.workflow inst in
  let types, type_of_canon = first_appearance_types wf in
  let of_canon = Array.init m Fun.id in
  Array.sort
    (fun u v ->
      let c = compare_columns inst u v in
      if c <> 0 then c else Stdlib.compare u v)
    of_canon;
  let to_canon = Array.make m (-1) in
  Array.iteri (fun c u -> to_canon.(u) <- c) of_canon;
  let w = Array.init n (fun i -> Array.init m (fun c -> Instance.w inst i of_canon.(c))) in
  let f = Array.init n (fun i -> Array.init m (fun c -> Instance.f inst i of_canon.(c))) in
  let successor = Array.init n (Workflow.successor wf) in
  let workflow = Workflow.in_forest ~types ~successor in
  let canonical = Instance.create ~workflow ~machines:m ~w ~f in
  {
    instance = canonical;
    key = Instance_io.to_string canonical;
    of_canon;
    to_canon;
    type_of_canon;
  }

let key inst = (canonicalize inst).key
let map_from_canon t alloc = Array.map (fun c -> t.of_canon.(c)) alloc
let map_to_canon t alloc = Array.map (fun u -> t.to_canon.(u)) alloc
