module Solver = Mf_solve.Solver
module Portfolio = Mf_solve.Portfolio
module Cache = Mf_solve.Cache
module Pool = Mf_parallel.Pool

(* ---- configuration ------------------------------------------------ *)

type config = { jobs : int; cache_capacity : int; workers : int }

let default_config = { jobs = 1; cache_capacity = Cache.default_capacity; workers = 4 }

(* After this many consecutive deadline-ordered admissions, the oldest
   [Unlimited] request is admitted even when bounded work is waiting —
   the starvation bound of the EDF scheduler. *)
let starvation_bound = 4

(* ---- clients and jobs --------------------------------------------- *)

type client = {
  ic : in_channel;
  oc : out_channel;
  wlock : Mutex.t;  (* one response line at a time *)
  jlock : Mutex.t;  (* guards [jobs] and [pending] *)
  drained : Condition.t;
  active : (string, Pool.token) Hashtbl.t;
  mutable pending : int;
}

type job = {
  j_id : string;
  j_req : Solver.request;
  j_deadline : float;  (* effective deadline in ms; infinity = Unlimited *)
  j_seq : int;
  j_cancel : Pool.token;
  j_client : client;
}

type t = {
  config : config;
  cache : Cache.t;
  pool : Pool.t option;
  telemetry : Telemetry.t;
  qlock : Mutex.t;
  qcond : Condition.t;
  mutable queue : job list;
  mutable seq : int;
  mutable bounded_streak : int;
  stop : bool Atomic.t;
  mutable workers : Thread.t list;
}

(* The EDF key is the arrival-adjusted absolute deadline, not the
   budget magnitude: a bounded job that has waited gains priority over
   fresher arrivals with shorter budgets, so a steady stream of
   short-deadline requests cannot starve it.  [Unlimited] stays at
   infinity and is protected by [starvation_bound] instead. *)
let effective_deadline_ms ~arrival_ms = function
  | Solver.Deadline_ms d -> arrival_ms +. d
  | Solver.Nodes k -> arrival_ms +. (float_of_int k /. Solver.nodes_per_ms)
  | Solver.Unlimited -> infinity

(* A dead client (closed socket) must not take a worker down; the
   response is simply lost with the connection. *)
let respond client line =
  Mutex.protect client.wlock (fun () ->
      try
        output_string client.oc line;
        output_char client.oc '\n';
        flush client.oc
      with Sys_error _ -> ())

(* ---- EDF scheduler ------------------------------------------------ *)

let earlier a b = a.j_deadline < b.j_deadline || (a.j_deadline = b.j_deadline && a.j_seq < b.j_seq)

(* Pop under [qlock]: earliest effective deadline first, sequence
   number as the tie-break, except that after [starvation_bound]
   consecutive bounded admissions the oldest [Unlimited] job goes
   first. *)
let pop_job t =
  let best sel = function
    | [] -> None
    | j :: rest -> Some (List.fold_left (fun a b -> if sel a b then a else b) j rest)
  in
  let bounded, unlimited = List.partition (fun j -> j.j_deadline < infinity) t.queue in
  let pick =
    match (best earlier bounded, best (fun a b -> a.j_seq < b.j_seq) unlimited) with
    | Some b, Some u -> if t.bounded_streak >= starvation_bound then u else b
    | Some b, None -> b
    | None, Some u -> u
    | None, None -> assert false
  in
  t.bounded_streak <- (if pick.j_deadline < infinity then t.bounded_streak + 1 else 0);
  t.queue <- List.filter (fun j -> j != pick) t.queue;
  pick

let finish_job j =
  Mutex.protect j.j_client.jlock (fun () ->
      Hashtbl.remove j.j_client.active j.j_id;
      j.j_client.pending <- j.j_client.pending - 1;
      Condition.broadcast j.j_client.drained)

let engine_label (o : Solver.outcome) =
  if o.Solver.stats.Solver.cache_hit then "cached"
  else
    match List.rev o.Solver.engines with
    | e :: _ -> Solver.engine_name e
    | [] -> "none"

let run_job t j =
  let c = j.j_client in
  (if Pool.cancelled j.j_cancel then begin
     Telemetry.record_cancelled t.telemetry;
     respond c (Protocol.render_cancelled ~id:j.j_id)
   end
   else
     let t0 = Unix.gettimeofday () in
     match Portfolio.solve ~cache:t.cache ?pool:t.pool ~cancel:j.j_cancel j.j_req with
     | outcome ->
       let elapsed_us = int_of_float ((Unix.gettimeofday () -. t0) *. 1e6) in
       Telemetry.record_ok t.telemetry ~engine:(engine_label outcome) ~elapsed_us;
       respond c (Protocol.render_outcome ~id:j.j_id outcome)
     | exception Pool.Cancelled ->
       Telemetry.record_cancelled t.telemetry;
       respond c (Protocol.render_cancelled ~id:j.j_id)
     | exception exn ->
       (* the daemon never crashes on a request: whatever escaped the
          portfolio becomes a structured error on this one request *)
       Telemetry.record_error t.telemetry;
       respond c (Protocol.render_error ~id:j.j_id ~code:"internal" (Printexc.to_string exn)));
  finish_job j

let rec worker_loop t =
  Mutex.lock t.qlock;
  while t.queue = [] && not (Atomic.get t.stop) do
    Condition.wait t.qcond t.qlock
  done;
  if t.queue = [] then Mutex.unlock t.qlock (* stopping *)
  else begin
    let j = pop_job t in
    Mutex.unlock t.qlock;
    run_job t j;
    worker_loop t
  end

let create ?(config = default_config) () =
  let t =
    {
      config;
      cache = Cache.create ~capacity:config.cache_capacity ();
      pool = (if config.jobs > 1 then Some (Pool.create ~domains:config.jobs) else None);
      telemetry = Telemetry.create ();
      qlock = Mutex.create ();
      qcond = Condition.create ();
      queue = [];
      seq = 0;
      bounded_streak = 0;
      stop = Atomic.make false;
      workers = [];
    }
  in
  t.workers <- List.init config.workers (fun _ -> Thread.create worker_loop t);
  t

let enqueue t client ~id req =
  let tok = Pool.token () in
  let arrival_ms = Unix.gettimeofday () *. 1000. in
  Mutex.protect client.jlock (fun () ->
      Hashtbl.add client.active id tok;
      client.pending <- client.pending + 1);
  let accepted =
    Mutex.protect t.qlock (fun () ->
        if Atomic.get t.stop then false
        else begin
          let j =
            {
              j_id = id;
              j_req = req;
              j_deadline = effective_deadline_ms ~arrival_ms req.Solver.budget;
              j_seq = t.seq;
              j_cancel = tok;
              j_client = client;
            }
          in
          t.seq <- t.seq + 1;
          t.queue <- j :: t.queue;
          Condition.signal t.qcond;
          true
        end)
  in
  (* A SOLVE that raced [request_stop] must not land in a queue no
     worker will ever drain — the client's drain would block forever.
     Answer it CANCELLED and undo the registration instead. *)
  if not accepted then begin
    Telemetry.record_cancelled t.telemetry;
    Mutex.protect client.jlock (fun () ->
        Hashtbl.remove client.active id;
        client.pending <- client.pending - 1;
        Condition.broadcast client.drained);
    respond client (Protocol.render_cancelled ~id)
  end

(* ---- per-connection reader ---------------------------------------- *)

let read_line_opt ic = try Some (input_line ic) with End_of_file -> None

let drain client =
  Mutex.protect client.jlock (fun () ->
      while client.pending > 0 do
        Condition.wait client.drained client.jlock
      done)

(* A SOLVE line — valid header or not — is followed by an instance
   block; consuming it even on error keeps the connection framed. *)
let starts_with_solve line =
  match String.split_on_char ' ' (String.trim line) with
  | "SOLVE" :: _ -> true
  | _ -> false

let skip_block ic = ignore (Mf_core.Instance_io.read_framed (fun () -> read_line_opt ic))

let handle_solve t client (h : Protocol.header) =
  let id = h.Protocol.h_id in
  match Mf_core.Instance_io.read_framed (fun () -> read_line_opt client.ic) with
  | Error e ->
    Telemetry.record_error t.telemetry;
    respond client
      (Protocol.render_error ~id ~code:"bad-instance" (Mf_core.Instance_io.describe_error e))
  | Ok inst -> (
    match Protocol.to_request h inst with
    | Error re ->
      Telemetry.record_error t.telemetry;
      respond client
        (Protocol.render_error ~id ~code:"bad-request" (Solver.describe_request_error re))
    | Ok req ->
      let duplicate =
        Mutex.protect client.jlock (fun () -> Hashtbl.mem client.active id)
      in
      if duplicate then begin
        Telemetry.record_error t.telemetry;
        respond client
          (Protocol.render_error ~id ~code:"duplicate-id" "request id is still active")
      end
      else enqueue t client ~id req)

let handle_cancel t client id =
  let tok = Mutex.protect client.jlock (fun () -> Hashtbl.find_opt client.active id) in
  match tok with
  | Some tok ->
    Pool.cancel tok;
    respond client (Protocol.render_cancel_ok ~id)
  | None ->
    Telemetry.record_error t.telemetry;
    respond client (Protocol.render_error ~id ~code:"unknown-id" "no active request with this id")

(* One reader per connection: parses verb lines, enqueues solves,
   answers CANCEL/STATS inline.  Every non-empty line gets exactly one
   response (a SOLVE's response arrives from the worker). *)
let serve_client t ic oc =
  let client =
    {
      ic;
      oc;
      wlock = Mutex.create ();
      jlock = Mutex.create ();
      drained = Condition.create ();
      active = Hashtbl.create 8;
      pending = 0;
    }
  in
  (* Returns [true] to keep reading.  Any exception this dispatch lets
     slip would otherwise kill the connection thread silently, with no
     response for the offending line; mirror [run_job]'s catch-all
     instead: answer a structured internal error, then close the
     connection cleanly (after an unexpected failure the framing can no
     longer be trusted, so continuing could desync).  Connection-level
     failures ([Sys_error], [End_of_file]) still propagate to the
     caller's thread-level filter. *)
  let dispatch line =
    match Protocol.parse_command line with
    | Error ce ->
      if starts_with_solve line then skip_block ic;
      Telemetry.record_error t.telemetry;
      respond client
        (Protocol.render_error ?id:ce.Protocol.ce_id ~code:ce.Protocol.ce_code
           ce.Protocol.ce_message);
      true
    | Ok (Protocol.Solve h) ->
      handle_solve t client h;
      true
    | Ok (Protocol.Cancel id) ->
      handle_cancel t client id;
      true
    | Ok Protocol.Stats ->
      respond client (Telemetry.stats_line t.telemetry (Cache.stats t.cache));
      true
    | Ok Protocol.Quit ->
      drain client;
      respond client "BYE";
      false
  in
  let rec loop () =
    match read_line_opt ic with
    | None -> drain client
    | Some line when String.trim line = "" -> loop ()
    | Some line -> (
      match dispatch line with
      | true -> loop ()
      | false -> ()
      | exception ((Sys_error _ | End_of_file) as e) -> raise e
      | exception exn ->
        Telemetry.record_error t.telemetry;
        respond client (Protocol.render_error ~code:"internal" (Printexc.to_string exn));
        drain client)
  in
  loop ()

(* ---- lifecycle ---------------------------------------------------- *)

let request_stop t =
  Atomic.set t.stop true;
  Mutex.protect t.qlock (fun () -> Condition.broadcast t.qcond)

let shutdown t oc =
  request_stop t;
  List.iter Thread.join t.workers;
  Telemetry.dump t.telemetry (Cache.stats t.cache) oc

let stats_line t = Telemetry.stats_line t.telemetry (Cache.stats t.cache)

(* ---- unix socket accept loop -------------------------------------- *)

let serve_unix t ~socket_path =
  (if Sys.file_exists socket_path then try Unix.unlink socket_path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink socket_path with Unix.Unix_error _ | Sys_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX socket_path);
      Unix.listen sock 64;
      (* poll the stop flag between accepts so a signal handler setting
         it (SIGTERM) turns into a clean return, not a killed process *)
      let rec accept_loop () =
        if Atomic.get t.stop then ()
        else
          match Unix.select [ sock ] [] [] 0.2 with
          | [], _, _ -> accept_loop ()
          | _ ->
            let fd, _ = Unix.accept sock in
            let _ : Thread.t =
              Thread.create
                (fun fd ->
                  let ic = Unix.in_channel_of_descr fd in
                  let oc = Unix.out_channel_of_descr fd in
                  (try serve_client t ic oc with Sys_error _ | End_of_file -> ());
                  try Unix.close fd with Unix.Unix_error _ -> ())
                fd
            in
            accept_loop ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      in
      accept_loop ())
