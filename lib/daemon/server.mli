(** The [mfoptd] request scheduler: multiplexes concurrent clients over
    one shared answer cache and (optionally) one shared
    {!Mf_parallel.Pool}.

    {b Scheduling.}  One reader thread per connection parses verb lines
    and enqueues solves; [workers] threads admit queued jobs
    earliest-absolute-deadline-first, where the key is arrival time plus
    the budget's effective duration ([Deadline_ms d] adds [d] ms,
    [Nodes k] adds [k / nodes_per_ms] ms, [Unlimited] is infinity; ties
    by arrival).  Because the key is arrival-adjusted, a bounded job
    that has waited eventually outranks any stream of fresh
    short-deadline arrivals.  After {!starvation_bound} consecutive
    bounded admissions, the oldest [Unlimited] job is admitted
    regardless — the fairness guarantee for unbounded work.

    {b Determinism.}  Scheduling may reorder {e when} responses are
    written, never their contents: each solve is the in-process
    {!Mf_solve.Portfolio.solve} of its request, so an [OK] line is
    byte-identical to the line a fresh in-process solve renders (modulo
    the [cached] flag when the shared cache answers).

    {b Cancellation.}  [CANCEL id] sets the job's {!Mf_parallel.Pool}
    token: a queued job is answered [CANCELLED] without solving, a
    running one unwinds at the next branch-and-bound node poll.  Every
    [SOLVE] still gets exactly one response ([OK] or [CANCELLED]). *)

type t

type config = { jobs : int; cache_capacity : int; workers : int }

(** [{ jobs = 1; cache_capacity = Cache.default_capacity; workers = 4 }] *)
val default_config : config

(** Bounded admissions tolerated in a row before an [Unlimited] job is
    forced through (4). *)
val starvation_bound : int

(** [create ()] starts the worker threads; [jobs > 1] also spins up a
    shared domain pool for the exact engine. *)
val create : ?config:config -> unit -> t

(** [serve_client t ic oc] runs one connection's read loop in the
    calling thread until EOF or [QUIT], draining that client's
    in-flight solves before returning.  Usable directly over a
    socketpair or stdin/stdout. *)
val serve_client : t -> in_channel -> out_channel -> unit

(** [serve_unix t ~socket_path] binds a Unix-domain listening socket
    (replacing a stale file), accepts each connection onto its own
    thread, and returns once {!request_stop} has been observed (the
    accept loop polls the stop flag every 200 ms).  The socket file is
    removed on return. *)
val serve_unix : t -> socket_path:string -> unit

(** Signal-handler safe: flips the stop flag and wakes the workers. *)
val request_stop : t -> unit

(** [shutdown t oc] stops the workers, joins them, and dumps the
    telemetry to [oc] — the SIGTERM path. *)
val shutdown : t -> out_channel -> unit

(** The [STATS] response line. *)
val stats_line : t -> string
