(** Daemon observability: response counters and per-engine latency
    histograms (log2-microsecond buckets), mutex-protected for the
    worker threads.

    This module is the {e only} place in the daemon allowed to read the
    wall clock — latencies are telemetry, never budget, so the
    determinism contract (outcomes are pure functions of requests) is
    untouched. *)

type t

val create : unit -> t

(** [record_ok t ~engine ~elapsed_us] counts one successful response
    under the histogram labelled [engine] (the outcome's last engine,
    or ["cached"] for a cache hit). *)
val record_ok : t -> engine:string -> elapsed_us:int -> unit

val record_error : t -> unit
val record_cancelled : t -> unit

(** One-line summary for the [STATS] verb: response counters, cache
    hit/miss/eviction counts, per-engine totals with coarse p50/p99
    bucket bounds. *)
val stats_line : t -> Mf_solve.Cache.stats -> string

(** Multi-line shutdown dump (SIGTERM) to [oc], flushed. *)
val dump : t -> Mf_solve.Cache.stats -> out_channel -> unit
