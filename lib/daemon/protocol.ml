module Mapping = Mf_core.Mapping
module Solver = Mf_solve.Solver

(* ---- requests ----------------------------------------------------- *)

type header = {
  h_id : string;
  h_rule : Mapping.rule option;
  h_seed : int option;
  h_budget : Solver.budget option;
  h_cert : bool option;
  h_setup : float option;
}

type command = Solve of header | Cancel of string | Stats | Quit

type cmd_error = { ce_id : string option; ce_code : string; ce_message : string }

let err ?id code message = Error { ce_id = id; ce_code = code; ce_message = message }

let rule_of_name = function
  | "specialized" -> Some Mapping.Specialized
  | "general" -> Some Mapping.General
  | "one-to-one" -> Some Mapping.One_to_one
  | _ -> None

(* Budget syntax mirrors [Solver.budget_repr]: U, D<float> (any
   [float_of_string] form, %h hex floats included), N<int>.  Range
   checks are [Solver.make_request]'s business, not the parser's: D-5
   parses fine and is rejected as [Bad_deadline] — the structured
   over-range error the wire contract promises. *)
let budget_of_repr s =
  let num f tail = Option.map f (tail s) in
  let tail s = if String.length s < 2 then None else Some (String.sub s 1 (String.length s - 1)) in
  if s = "" then None
  else
    match s with
    | "U" -> Some Solver.Unlimited
    | _ when s.[0] = 'D' ->
      Option.bind (num Fun.id tail) (fun t ->
          Option.map (fun d -> Solver.Deadline_ms d) (float_of_string_opt t))
    | _ when s.[0] = 'N' ->
      Option.bind (num Fun.id tail) (fun t ->
          Option.map (fun k -> Solver.Nodes k) (int_of_string_opt t))
    | _ -> None

let split_words line = String.split_on_char ' ' line |> List.filter (( <> ) "")

let parse_header id kvs =
  let h =
    ref { h_id = id; h_rule = None; h_seed = None; h_budget = None; h_cert = None; h_setup = None }
  in
  let bad k v = err ~id "bad-header" (Printf.sprintf "bad value %s for key %s" v k) in
  let rec go = function
    | [] -> Ok !h
    | kv :: rest -> (
      match String.index_opt kv '=' with
      | None -> err ~id "bad-header" (Printf.sprintf "expected key=value, got %s" kv)
      | Some i -> (
        let k = String.sub kv 0 i and v = String.sub kv (i + 1) (String.length kv - i - 1) in
        match k with
        | "rule" -> (
          match rule_of_name v with
          | Some r ->
            h := { !h with h_rule = Some r };
            go rest
          | None -> bad k v)
        | "seed" -> (
          match int_of_string_opt v with
          | Some s ->
            h := { !h with h_seed = Some s };
            go rest
          | None -> bad k v)
        | "budget" -> (
          match budget_of_repr v with
          | Some b ->
            h := { !h with h_budget = Some b };
            go rest
          | None -> bad k v)
        | "cert" -> (
          match v with
          | "0" | "1" ->
            h := { !h with h_cert = Some (v = "1") };
            go rest
          | _ -> bad k v)
        | "setup" -> (
          match float_of_string_opt v with
          | Some s ->
            h := { !h with h_setup = Some s };
            go rest
          | None -> bad k v)
        | _ -> err ~id "bad-header" (Printf.sprintf "unknown key %s" k)))
  in
  go kvs

let parse_command line =
  match split_words line with
  | [] -> err "bad-verb" "empty request line"
  | "SOLVE" :: id :: kvs -> Result.map (fun h -> Solve h) (parse_header id kvs)
  | [ "SOLVE" ] -> err "bad-verb" "SOLVE needs a request id"
  | [ "CANCEL"; id ] -> Ok (Cancel id)
  | "CANCEL" :: _ -> err "bad-verb" "CANCEL takes exactly one id"
  | [ "STATS" ] -> Ok Stats
  | [ "QUIT" ] -> Ok Quit
  | verb :: _ -> err "bad-verb" (Printf.sprintf "unknown verb %s" verb)

(* [make_request] applies the daemon's defaults exactly like the
   in-process [Solver.make_request] call the determinism contract
   compares against: absent keys are absent optional arguments. *)
let to_request h inst =
  Solver.make_request ?rule:h.h_rule ?seed:h.h_seed ?budget:h.h_budget
    ?want_certificate:h.h_cert ?setup:h.h_setup inst

let render_solve ~id (req : Solver.request) =
  Printf.sprintf "SOLVE %s rule=%s seed=%d budget=%s cert=%d setup=%h\n%s" id
    (Mapping.rule_name req.Solver.rule)
    req.Solver.seed
    (Solver.budget_repr req.Solver.budget)
    (if req.Solver.want_certificate then 1 else 0)
    req.Solver.setup
    (Mf_core.Instance_io.to_framed_string req.Solver.instance)

(* ---- responses ---------------------------------------------------- *)

(* %h (hex) floats: rendering is exact, so a response is a faithful
   byte-level image of the outcome — the identity the determinism tests
   compare. *)
let float_repr = Printf.sprintf "%h"

let status_repr = function
  | Solver.Optimal -> "optimal"
  | Solver.Feasible gap -> "feasible:" ^ float_repr gap
  | Solver.Bound_only lb -> "bound:" ^ float_repr lb
  | Solver.Infeasible -> "infeasible"
  | Solver.Budget_exhausted -> "exhausted"

let opt_float_repr = function None -> "-" | Some f -> float_repr f

let mapping_repr = function
  | None -> "-"
  | Some mp ->
    Mapping.to_array mp |> Array.to_list |> List.map string_of_int |> String.concat ","

let engines_repr = function
  | [] -> "-"
  | es -> String.concat "+" (List.map Solver.engine_name es)

let render_outcome ~id (o : Solver.outcome) =
  let s = o.Solver.stats in
  Printf.sprintf
    "OK %s status=%s period=%s bound=%s engines=%s hruns=%d pivots=%d lpath=%s nodes=%d \
     cached=%d mapping=%s"
    id (status_repr o.Solver.status)
    (opt_float_repr o.Solver.period)
    (opt_float_repr o.Solver.lower_bound)
    (engines_repr o.Solver.engines)
    s.Solver.heuristic_runs s.Solver.lp_pivots
    (Solver.lp_path_name s.Solver.lp_path)
    s.Solver.exact_nodes
    (if s.Solver.cache_hit then 1 else 0)
    (mapping_repr o.Solver.mapping)

let sanitize msg =
  String.map (function '\n' | '\r' -> ' ' | c -> c) msg

let render_error ?id ~code msg =
  Printf.sprintf "ERR %s %s %s" (Option.value id ~default:"-") code (sanitize msg)

let render_cancelled ~id = "CANCELLED " ^ id
let render_cancel_ok ~id = "CANCELOK " ^ id

(* [cached=1] is the one field a shared-cache hit may legitimately
   change relative to an in-process fresh solve; tests mask it through
   this helper rather than re-parsing the line. *)
let mask_cached line =
  let flagged = " cached=1 " in
  match
    let rec find i =
      if i + String.length flagged > String.length line then None
      else if String.sub line i (String.length flagged) = flagged then Some i
      else find (i + 1)
    in
    find 0
  with
  | None -> line
  | Some i ->
    String.sub line 0 i ^ " cached=0 "
    ^ String.sub line
        (i + String.length flagged)
        (String.length line - i - String.length flagged)
