(** The [mfoptd] wire protocol: line-oriented, one response line per
    request line.

    {b Requests.}  A request is one verb line; [SOLVE] is followed by a
    framed instance block ({!Mf_core.Instance_io.read_framed}):

    {v SOLVE <id> [rule=<name>] [seed=<int>] [budget=U|D<float>|N<int>]
               [cert=0|1] [setup=<float>]
       <instance lines>
       end
       CANCEL <id>
       STATS
       QUIT v}

    Budget syntax round-trips through {!Mf_solve.Solver.budget_repr};
    absent keys take the solver's defaults, so a wire request maps onto
    exactly the in-process {!Mf_solve.Solver.make_request} call.

    {b Responses.}  Exactly one line per non-empty request line (empty
    request lines are ignored):

    {v OK <id> status=<s> period=<%h|-> bound=<%h|-> engines=<e+e|->
          hruns=<d> pivots=<d> lpath=<p> nodes=<d> cached=<0|1>
          mapping=<u0,u1,...|->
       ERR <id|-> <code> <message>
       CANCELLED <id>        (the solve was torn down)
       CANCELOK <id>         (the CANCEL verb was accepted)
       STATS <telemetry>
       BYE v}

    Floats render with [%h] (hex, exact), so an [OK] line is a faithful
    byte-level image of the outcome — the identity the determinism
    tests compare against in-process solves.  Error codes: [bad-verb],
    [bad-header], [bad-instance], [bad-request], [unknown-id],
    [duplicate-id], [internal]. *)

type header = {
  h_id : string;
  h_rule : Mf_core.Mapping.rule option;
  h_seed : int option;
  h_budget : Mf_solve.Solver.budget option;
  h_cert : bool option;
  h_setup : float option;
}

type command = Solve of header | Cancel of string | Stats | Quit

(** [ce_id] is the request id when the line got far enough to carry
    one; the rendered line uses [-] otherwise. *)
type cmd_error = { ce_id : string option; ce_code : string; ce_message : string }

(** [parse_command line] parses one verb line.  A [SOLVE] result still
    owes the connection an instance block — the server must consume it
    (even after a header error) to stay framed. *)
val parse_command : string -> (command, cmd_error) result

(** [budget_of_repr s] parses the [U|D<float>|N<int>] budget syntax,
    inverse of {!Mf_solve.Solver.budget_repr}.  Range checking is left
    to {!Mf_solve.Solver.make_request}. *)
val budget_of_repr : string -> Mf_solve.Solver.budget option

(** [to_request h inst] applies the header's explicit keys over the
    solver defaults — byte-compatible with the in-process call. *)
val to_request :
  header -> Mf_core.Instance.t -> (Mf_solve.Solver.request, Mf_solve.Solver.request_error) result

(** [render_solve ~id req] is the full client-side request text: verb
    line plus framed instance block (used by [mfopt client] and the
    tests). *)
val render_solve : id:string -> Mf_solve.Solver.request -> string

(** [render_outcome ~id o] is the [OK] line (no trailing newline). *)
val render_outcome : id:string -> Mf_solve.Solver.outcome -> string

(** [render_error ?id ~code msg] is the [ERR] line; newlines in [msg]
    are flattened so the response stays one line. *)
val render_error : ?id:string -> code:string -> string -> string

val render_cancelled : id:string -> string
val render_cancel_ok : id:string -> string

(** [mask_cached line] rewrites [cached=1] to [cached=0] in an [OK]
    line: the shared daemon cache is the one legitimate source of
    byte-difference against a fresh in-process solve. *)
val mask_cached : string -> string
