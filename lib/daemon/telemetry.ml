(* Shutdown/STATS telemetry.  This is the one corner of the solver
   stack allowed to read the wall clock: latency histograms are
   observability, not budget — outcomes never depend on them. *)

let bucket_count = 32

type t = {
  lock : Mutex.t;
  mutable ok : int;
  mutable errors : int;
  mutable cancelled : int;
  (* engine label -> log2-microsecond latency buckets *)
  histograms : (string, int array) Hashtbl.t;
}

let create () =
  { lock = Mutex.create (); ok = 0; errors = 0; cancelled = 0; histograms = Hashtbl.create 8 }

let locked t f = Mutex.protect t.lock (fun () -> f t)

(* bucket b holds latencies in [2^b, 2^(b+1)) microseconds *)
let bucket_of_us us =
  let us = max 1 us in
  min (bucket_count - 1) (int_of_float (Float.log2 (float_of_int us)))

let record_ok t ~engine ~elapsed_us =
  locked t (fun t ->
      t.ok <- t.ok + 1;
      let h =
        match Hashtbl.find_opt t.histograms engine with
        | Some h -> h
        | None ->
          let h = Array.make bucket_count 0 in
          Hashtbl.add t.histograms engine h;
          h
      in
      h.(bucket_of_us elapsed_us) <- h.(bucket_of_us elapsed_us) + 1)

let record_error t = locked t (fun t -> t.errors <- t.errors + 1)
let record_cancelled t = locked t (fun t -> t.cancelled <- t.cancelled + 1)

let histogram_summary label h =
  let total = Array.fold_left ( + ) 0 h in
  if total = 0 then Printf.sprintf "%s:0" label
  else begin
    (* p50/p99 as bucket upper bounds: coarse, deterministic to read *)
    let percentile p =
      let want = int_of_float (ceil (p *. float_of_int total)) in
      let rec go i seen =
        if i >= bucket_count then bucket_count - 1
        else if seen + h.(i) >= want then i
        else go (i + 1) (seen + h.(i))
      in
      go 0 0
    in
    let us_of b = 1 lsl (b + 1) in
    Printf.sprintf "%s:%d,p50<=%dus,p99<=%dus" label total
      (us_of (percentile 0.5))
      (us_of (percentile 0.99))
  end

let render_cache (cs : Mf_solve.Cache.stats) =
  Printf.sprintf "cache hits=%d misses=%d evictions=%d length=%d capacity=%d"
    cs.Mf_solve.Cache.hits cs.Mf_solve.Cache.misses cs.Mf_solve.Cache.evictions
    cs.Mf_solve.Cache.length cs.Mf_solve.Cache.capacity

let stats_line t cache_stats =
  locked t (fun t ->
      let hists =
        Hashtbl.fold (fun label h acc -> (label, h) :: acc) t.histograms []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
        |> List.map (fun (label, h) -> histogram_summary label h)
      in
      Printf.sprintf "STATS ok=%d errors=%d cancelled=%d %s latency=%s" t.ok t.errors
        t.cancelled (render_cache cache_stats)
        (if hists = [] then "-" else String.concat ";" hists))

let dump t cache_stats oc =
  locked t (fun t ->
      Printf.fprintf oc "mfoptd telemetry\n";
      Printf.fprintf oc "  responses: ok=%d errors=%d cancelled=%d\n" t.ok t.errors t.cancelled;
      Printf.fprintf oc "  %s\n" (render_cache cache_stats);
      let labels =
        Hashtbl.fold (fun label h acc -> (label, h) :: acc) t.histograms []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      in
      List.iter
        (fun (label, h) -> Printf.fprintf oc "  latency %s\n" (histogram_summary label h))
        labels;
      flush oc)
