module Instance = Mf_core.Instance
module Mapping = Mf_core.Mapping
module Period = Mf_core.Period

type budget = Unlimited | Deadline_ms of float | Nodes of int

type request = {
  instance : Instance.t;
  rule : Mapping.rule;
  seed : int;
  budget : budget;
  want_certificate : bool;
  setup : float;
}

type request_error =
  | Bad_deadline of float
  | Bad_node_budget of int
  | Bad_setup of float

let describe_request_error = function
  | Bad_deadline d ->
    if Float.is_nan d then "deadline must not be NaN"
    else Printf.sprintf "deadline must be positive (got %g ms)" d
  | Bad_node_budget k -> Printf.sprintf "node budget must be >= 1 (got %d)" k
  | Bad_setup s ->
    if Float.is_nan s then "setup must not be NaN"
    else Printf.sprintf "setup must be non-negative (got %g)" s

let make_request ?(rule = Mapping.Specialized) ?(seed = Mf_heuristics.Registry.default_seed)
    ?(budget = Unlimited) ?(want_certificate = false) ?(setup = 0.0) instance =
  (* [not (d > 0.0)] (rather than [d <= 0.0]) also rejects NaN: an
     unordered deadline would otherwise sail through every later
     comparison and collapse to an arbitrary allowance. *)
  match budget with
  | Deadline_ms d when not (d > 0.0) -> Error (Bad_deadline d)
  | Nodes k when k < 1 -> Error (Bad_node_budget k)
  | _ ->
    if not (setup >= 0.0) then Error (Bad_setup setup)
    else Ok { instance; rule; seed; budget; want_certificate; setup }

let request_exn ?rule ?seed ?budget ?want_certificate ?setup instance =
  match make_request ?rule ?seed ?budget ?want_certificate ?setup instance with
  | Ok req -> req
  | Error e -> invalid_arg ("Solver.request: " ^ describe_request_error e)

type status =
  | Optimal
  | Feasible of float
  | Bound_only of float
  | Infeasible
  | Budget_exhausted

type engine_id = Heuristics | Lp | Exact | Brute
type lp_path = No_lp | Float_path | Rational_path

type stats = {
  heuristic_runs : int;
  lp_pivots : int;
  lp_path : lp_path;
  exact_nodes : int;
  cache_hit : bool;
}

type outcome = {
  status : status;
  period : float option;
  mapping : Mapping.t option;
  lower_bound : float option;
  engines : engine_id list;
  stats : stats;
}

let zero_stats =
  { heuristic_runs = 0; lp_pivots = 0; lp_path = No_lp; exact_nodes = 0; cache_hit = false }

let score req mp =
  if req.rule = Mapping.General && req.setup > 0.0 then
    Period.with_setup req.instance mp ~setup:req.setup
  else Period.period req.instance mp

let feasible rule inst =
  match (rule : Mapping.rule) with
  | Mapping.Specialized -> Instance.machines inst >= Instance.type_count inst
  | Mapping.One_to_one -> Instance.machines inst >= Instance.task_count inst
  | Mapping.General -> true

(* Calibration: one node-equivalent is one branch-and-bound node of the
   allocation-free [Dfs] hot path (~0.5 us on the reference machine, see
   BENCH_exact.json).  Deliberately a fixed constant, never a runtime
   measurement — deadlines must map to the same engine budgets on every
   run for outcomes to replay bit-for-bit. *)
let nodes_per_ms = 2000.0

(* With the per-node LP bound active, simplex pivots of the bound
   oracle are real work the plain node count does not see: on the
   BENCH_exact solvable scan, lp_solves ~ nodes (e.g. n=18: 42729
   solves for 42857 nodes) and each warm-started evaluation costs ~500
   plain-node-equivalents (the measured crossover behind
   [Engine.lp_bound_threshold]) over a few tens of pivots.  Ten
   node-equivalents per pivot keeps [Deadline_ms] honest under the
   oracle while charging nothing when it is off.  Fixed for the same
   replay reason as [nodes_per_ms]. *)
let node_lp_pivot_cost = 10

(* Allowance ceiling: ~16 years of work at [nodes_per_ms], far beyond
   any real deadline yet small enough that downstream ledger sums
   ([spent + charge], per-round redistribution arithmetic) can never
   overflow 63-bit ints. *)
let max_node_allowance = 1_000_000_000_000_000

let node_allowance = function
  | Unlimited -> None
  | Deadline_ms d ->
    (* ceil so that any positive deadline grants at least one node.
       The clamp comparison is written so an out-of-range float product
       (1e300 * 2000, infinity — or NaN, should a record literal bypass
       [make_request]) falls into the clamped branch rather than
       through [int_of_float]'s unspecified overflow behaviour, which
       used to collapse huge deadlines to a 1-node budget. *)
    let raw = ceil (d *. nodes_per_ms) in
    if raw < float_of_int max_node_allowance then Some (max 1 (int_of_float raw))
    else Some max_node_allowance
  | Nodes k -> Some (min k max_node_allowance)

let budget_repr = function
  | Unlimited -> "U"
  | Deadline_ms d -> Printf.sprintf "D%h" d
  | Nodes k -> Printf.sprintf "N%d" k

let status_to_string = function
  | Optimal -> "optimal"
  | Feasible gap -> Printf.sprintf "feasible (gap <= %.3g%%)" (100.0 *. gap)
  | Bound_only lb -> Printf.sprintf "bound-only (>= %.6g)" lb
  | Infeasible -> "infeasible"
  | Budget_exhausted -> "budget-exhausted"

let engine_name = function
  | Heuristics -> "heuristics"
  | Lp -> "lp"
  | Exact -> "exact"
  | Brute -> "brute"

let lp_path_name = function
  | No_lp -> "none"
  | Float_path -> "float"
  | Rational_path -> "rational"
