module Instance = Mf_core.Instance
module Mapping = Mf_core.Mapping
module Period = Mf_core.Period

type budget = Unlimited | Deadline_ms of float | Nodes of int

type request = {
  instance : Instance.t;
  rule : Mapping.rule;
  seed : int;
  budget : budget;
  want_certificate : bool;
  setup : float;
}

let request ?(rule = Mapping.Specialized) ?(seed = Mf_heuristics.Registry.default_seed)
    ?(budget = Unlimited) ?(want_certificate = false) ?(setup = 0.0) instance =
  (match budget with
  | Unlimited -> ()
  | Deadline_ms d ->
    if not (d > 0.0) then invalid_arg "Solver.request: deadline must be positive"
  | Nodes k -> if k < 1 then invalid_arg "Solver.request: node budget must be >= 1");
  if setup < 0.0 then invalid_arg "Solver.request: setup must be non-negative";
  { instance; rule; seed; budget; want_certificate; setup }

type status =
  | Optimal
  | Feasible of float
  | Bound_only of float
  | Infeasible
  | Budget_exhausted

type engine_id = Heuristics | Lp | Exact | Brute
type lp_path = No_lp | Float_path | Rational_path

type stats = {
  heuristic_runs : int;
  lp_pivots : int;
  lp_path : lp_path;
  exact_nodes : int;
  cache_hit : bool;
}

type outcome = {
  status : status;
  period : float option;
  mapping : Mapping.t option;
  lower_bound : float option;
  engines : engine_id list;
  stats : stats;
}

let zero_stats =
  { heuristic_runs = 0; lp_pivots = 0; lp_path = No_lp; exact_nodes = 0; cache_hit = false }

let score req mp =
  if req.rule = Mapping.General && req.setup > 0.0 then
    Period.with_setup req.instance mp ~setup:req.setup
  else Period.period req.instance mp

let feasible rule inst =
  match (rule : Mapping.rule) with
  | Mapping.Specialized -> Instance.machines inst >= Instance.type_count inst
  | Mapping.One_to_one -> Instance.machines inst >= Instance.task_count inst
  | Mapping.General -> true

(* Calibration: one node-equivalent is one branch-and-bound node of the
   allocation-free [Dfs] hot path (~0.5 us on the reference machine, see
   BENCH_exact.json).  Deliberately a fixed constant, never a runtime
   measurement — deadlines must map to the same engine budgets on every
   run for outcomes to replay bit-for-bit. *)
let nodes_per_ms = 2000.0

let node_allowance = function
  | Unlimited -> None
  | Deadline_ms d ->
    (* ceil so that any positive deadline grants at least one node *)
    Some (max 1 (int_of_float (ceil (d *. nodes_per_ms))))
  | Nodes k -> Some k

let budget_repr = function
  | Unlimited -> "U"
  | Deadline_ms d -> Printf.sprintf "D%h" d
  | Nodes k -> Printf.sprintf "N%d" k

let status_to_string = function
  | Optimal -> "optimal"
  | Feasible gap -> Printf.sprintf "feasible (gap <= %.3g%%)" (100.0 *. gap)
  | Bound_only lb -> Printf.sprintf "bound-only (>= %.6g)" lb
  | Infeasible -> "infeasible"
  | Budget_exhausted -> "budget-exhausted"

let engine_name = function
  | Heuristics -> "heuristics"
  | Lp -> "lp"
  | Exact -> "exact"
  | Brute -> "brute"

let lp_path_name = function
  | No_lp -> "none"
  | Float_path -> "float"
  | Rational_path -> "rational"
