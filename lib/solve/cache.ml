module Lru = Mf_structures.Lru.Make (struct
  type t = string

  let equal = String.equal
  let hash = Hashtbl.hash
end)

type entry = {
  status : Solver.status;
  period : float option;
  alloc : int array option;
  lower_bound : float option;
  engines : Solver.engine_id list;
  stats : Solver.stats;
}

type t = entry Lru.t

let default_capacity = 4096
let create ?(capacity = default_capacity) () = Lru.create ~capacity

let request_key (canon : Mf_core.Canon.t) (req : Solver.request) =
  (* %h renders floats exactly (hex), so setup never aliases under
     formatting; the canonical key already pins the instance bits *)
  Printf.sprintf "%s|rule=%s|seed=%d|setup=%h|budget=%s|cert=%b" canon.Mf_core.Canon.key
    (Mf_core.Mapping.rule_name req.Solver.rule)
    req.Solver.seed req.Solver.setup
    (Solver.budget_repr req.Solver.budget)
    req.Solver.want_certificate

let find = Lru.find
let add = Lru.add
let clear = Lru.clear

type stats = { hits : int; misses : int; evictions : int; length : int; capacity : int }

let stats c =
  {
    hits = Lru.hits c;
    misses = Lru.misses c;
    evictions = Lru.evictions c;
    length = Lru.length c;
    capacity = Lru.capacity c;
  }

let hit_rate c =
  let h = Lru.hits c and m = Lru.misses c in
  if h + m = 0 then 0.0 else float_of_int h /. float_of_int (h + m)
