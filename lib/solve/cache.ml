module Lru = Mf_structures.Lru.Make (struct
  type t = string

  let equal = String.equal
  let hash = Hashtbl.hash
end)

type entry = {
  status : Solver.status;
  period : float option;
  alloc : int array option;
  lower_bound : float option;
  engines : Solver.engine_id list;
  stats : Solver.stats;
}

(* The recency list behind [Lru] is not thread-safe, and the daemon
   shares one cache across request worker threads — every operation is
   mutex-wrapped here (uncontended in single-threaded use). *)
type t = { lru : entry Lru.t; lock : Mutex.t }

let default_capacity = 4096

let create ?(capacity = default_capacity) () =
  { lru = Lru.create ~capacity; lock = Mutex.create () }

let locked c f = Mutex.protect c.lock (fun () -> f c.lru)

let request_key (canon : Mf_core.Canon.t) (req : Solver.request) =
  (* %h renders floats exactly (hex), so setup never aliases under
     formatting; the canonical key already pins the instance bits *)
  Printf.sprintf "%s|rule=%s|seed=%d|setup=%h|budget=%s|cert=%b" canon.Mf_core.Canon.key
    (Mf_core.Mapping.rule_name req.Solver.rule)
    req.Solver.seed req.Solver.setup
    (Solver.budget_repr req.Solver.budget)
    req.Solver.want_certificate

let find c key = locked c (fun lru -> Lru.find lru key)
let add c key e = locked c (fun lru -> Lru.add lru key e)
let clear c = locked c Lru.clear

type stats = { hits : int; misses : int; evictions : int; length : int; capacity : int }

let stats c =
  locked c (fun lru ->
      {
        hits = Lru.hits lru;
        misses = Lru.misses lru;
        evictions = Lru.evictions lru;
        length = Lru.length lru;
        capacity = Lru.capacity lru;
      })

let hit_rate c =
  locked c (fun lru ->
      let h = Lru.hits lru and m = Lru.misses lru in
      if h + m = 0 then 0.0 else float_of_int h /. float_of_int (h + m))
