module Canon = Mf_core.Canon
module Mapping = Mf_core.Mapping
open Solver

(* ---- canonical-space staging ------------------------------------- *)

(* [run_stages req] solves a feasible request whose instance is already
   canonical.  All budget decisions read a deterministic ledger of
   node-equivalents; the wall clock is never consulted. *)
let run_stages ?pool ?cancel (req : request) =
  let check_cancel () =
    match cancel with
    | Some tok when Mf_parallel.Pool.cancelled tok -> raise Mf_parallel.Pool.Cancelled
    | _ -> ()
  in
  let allowance = node_allowance req.budget in
  (* Deadline budgets charge the exact stage's per-node LP oracle
     pivots into the same node-equivalent ledger ([Dfs.solve
     ?pivot_charge]); [Nodes] budgets deliberately stay plain node
     counts — that is their contract, and the committed BENCH_exact
     regression rows pin it. *)
  let pivot_charge =
    match req.budget with
    | Deadline_ms _ -> Some node_lp_pivot_cost
    | Unlimited | Nodes _ -> None
  in
  let spent = ref 0 in
  let charge k = spent := !spent + k in
  let remaining () = match allowance with None -> max_int | Some k -> k - !spent in
  (* Stage 1: heuristics — always run; first incumbent. *)
  check_cancel ();
  let h = Engine.heuristics req in
  charge (Engine.heuristic_cost req.instance);
  let inc_mp = Option.get h.mapping and inc_p = Option.get h.period in
  if remaining () <= 0 && not req.want_certificate then
    { h with status = Budget_exhausted }
  else begin
    (* Stage 2: certified LP bound — skipped only when the remaining
       allowance cannot pay for it and no certificate was demanded. *)
    check_cancel ();
    let run_lp = req.want_certificate || remaining () > Engine.lp_cost_estimate req.instance in
    let lp_out = if run_lp then Some (Engine.lp req) else None in
    (match lp_out with
    | Some o -> charge (o.stats.lp_pivots * Engine.pivot_node_cost)
    | None -> ());
    let lower_bound = Option.bind lp_out (fun o -> o.lower_bound) in
    let inc_mp, inc_p =
      match lp_out with
      | Some { mapping = Some mp; period = Some p; _ } when p < inc_p -> (mp, p)
      | _ -> (inc_mp, inc_p)
    in
    let engines = h.engines @ (match lp_out with Some o -> o.engines | None -> []) in
    let stats =
      match lp_out with
      | Some o ->
        { h.stats with lp_pivots = o.stats.lp_pivots; lp_path = o.stats.lp_path }
      | None -> h.stats
    in
    let anytime status =
      { status; period = Some inc_p; mapping = Some inc_mp; lower_bound; engines; stats }
    in
    match lower_bound with
    | Some lb when inc_p <= lb -> anytime Optimal
    | _ ->
      if remaining () <= 0 then
        anytime
          (match lower_bound with
          | Some lb -> Feasible ((inc_p -. lb) /. lb)
          | None -> Budget_exhausted)
      else
        (* Stage 3: exact search over what is left, seeded with the
           shared incumbent and pruned by the certified bound. *)
        let ebudget =
          match allowance with None -> Unlimited | Some _ -> Nodes (remaining ())
        in
        let e =
          Engine.exact ?lower_bound ?pool ?pivot_charge ?cancel ~incumbent:(inc_mp, inc_p)
            { req with budget = ebudget }
        in
        {
          e with
          engines = engines @ e.engines;
          stats =
            {
              stats with
              exact_nodes = e.stats.exact_nodes;
              (* splitting-LP pivots plus the exact stage's per-node
                 bound-oracle pivots: one ledger for all simplex work *)
              lp_pivots = stats.lp_pivots + e.stats.lp_pivots;
              cache_hit = false;
            };
        }
  end

(* ---- canonical frame plumbing ------------------------------------ *)

let entry_of_outcome (out : outcome) : Cache.entry =
  {
    Cache.status = out.status;
    period = out.period;
    alloc = Option.map Mapping.to_array out.mapping;
    lower_bound = out.lower_bound;
    engines = out.engines;
    stats = { out.stats with cache_hit = false };
  }

(* Map a canonical-space entry back to the caller's machine frame.  The
   permutation only relabels machines — per-machine load sums see the
   same operands in the same task order — so periods, bounds and
   statuses transfer bit-for-bit. *)
let outcome_of_entry (req : request) (canon : Canon.t) ~cache_hit (e : Cache.entry) :
    outcome =
  {
    status = e.Cache.status;
    period = e.Cache.period;
    mapping =
      Option.map
        (fun alloc -> Mapping.of_array req.instance (Canon.map_from_canon canon alloc))
        e.Cache.alloc;
    lower_bound = e.Cache.lower_bound;
    engines = e.Cache.engines;
    stats = { e.Cache.stats with cache_hit };
  }

let solve ?cache ?pool ?cancel (req : request) =
  if not (feasible req.rule req.instance) then
    {
      status = Infeasible;
      period = None;
      mapping = None;
      lower_bound = None;
      engines = [];
      stats = zero_stats;
    }
  else
    let canon = Canon.canonicalize req.instance in
    let key = Cache.request_key canon req in
    match Option.bind cache (fun c -> Cache.find c key) with
    | Some e -> outcome_of_entry req canon ~cache_hit:true e
    | None ->
      let out = run_stages ?pool ?cancel { req with instance = canon.Canon.instance } in
      let e = entry_of_outcome out in
      (match cache with Some c -> Cache.add c key e | None -> ());
      outcome_of_entry req canon ~cache_hit:false e
