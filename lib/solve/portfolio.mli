(** The anytime portfolio: heuristics → certified LP bound → exact
    branch-and-bound, chained through a shared incumbent, over a
    canonical-instance answer cache.

    {b Staging.}  For a feasible request the portfolio always runs the
    heuristic stage (cheap, yields the first incumbent), then decides
    the LP stage by budget: it runs when the remaining node-equivalent
    allowance exceeds {!Engine.lp_cost_estimate} — or unconditionally
    when [want_certificate] is set.  The LP contributes a certified
    (shaved) lower bound and, when rounding succeeds and improves the
    incumbent, a better mapping.  If the incumbent already meets the
    bound the answer is [Optimal] with no search at all.  Otherwise the
    exact stage receives the {e remaining} allowance as its node budget
    together with the incumbent and the bound, and the best answer at
    exhaustion is returned with an honest status ([Feasible gap] when a
    bound exists, [Budget_exhausted] when not).

    {b Determinism.}  Every stage decision is made against the
    deterministic node-equivalent ledger (never the wall clock), so a
    fixed request always produces the same outcome — see {!Solver}.

    {b Cache.}  With [?cache] the portfolio solves in canonical space
    and keys the answer by {!Cache.request_key}; a hit returns the
    stored answer mapped back through the inverse machine permutation,
    bit-for-bit equal to a fresh solve except for the [cache_hit] flag.
    Misses are stored after solving, so near-duplicate request storms
    (machine permutations, type relabelings of the same instance) hit
    after the first representative.

    {b Deadline honesty.}  For [Deadline_ms] budgets the exact stage
    charges its per-node LP bound oracle's simplex pivots into the same
    node-equivalent ledger at {!Solver.node_lp_pivot_cost} — without
    this the oracle's work would be free and deadline requests would
    overshoot wall time roughly 5x on oracle-heavy instances.  [Nodes]
    budgets keep the plain node-count contract unchanged.

    {b Cancellation.}  With [?cancel], a set token makes [solve] raise
    {!Mf_parallel.Pool.Cancelled}: the token is checked between stages
    and polled at every search node, nothing is written to the cache,
    and no partial outcome escapes. *)

(** [solve ?cache ?pool ?cancel req] — see above.  Infeasible rules
    return [Infeasible] without touching any engine or the cache.
    [pool] is handed to the exact stage ({!Engine.exact}); outcomes —
    and hence cache entries — are bit-identical with or without it.
    @raise Mf_parallel.Pool.Cancelled when [cancel]'s token is set. *)
val solve :
  ?cache:Cache.t ->
  ?pool:Mf_parallel.Pool.t ->
  ?cancel:Mf_parallel.Pool.token ->
  Solver.request ->
  Solver.outcome
