(** Engine adapters: each existing solving stack wrapped behind the
    uniform {!Solver.request} → {!Solver.outcome} interface.

    Every adapter is total — rule-infeasible instances come back as
    [Infeasible] outcomes, LP failures as typed statuses — and
    deterministic for a fixed request (see the contract in {!Solver}). *)

(** Best mapping from the heuristic stack under the request's rule:

    - [Specialized]: best over the whole {!Mf_heuristics.Registry}
      (requires [m >= p]);
    - [General]: the registry best when [m >= p], otherwise the best
      single-machine mapping (always feasible), scored with the
      request's setup penalty;
    - [One_to_one]: the injective greedy seed
      {!Mf_exact.Dfs.greedy_one_to_one} (requires [m >= n]).

    Status is always [Feasible infinity] (no certified bound) or
    [Infeasible]. *)
val heuristics : Solver.request -> Solver.outcome

(** Divisible-workload splitting LP: a certified lower bound for every
    rule, shaved by a relative margin (see {!certified_lower_bound}),
    plus — for the specialized and general rules — the rounded feasible
    mapping when rounding succeeds.  Statuses: [Optimal] when the
    rounded period meets the shaved bound, [Feasible gap] when rounding
    succeeds, [Bound_only] under one-to-one (rounding does not apply)
    or when rounding fails ([m < p]), [Infeasible] when the LP is. *)
val lp : Solver.request -> Solver.outcome

(** Task count from which {!exact}'s auto default turns the per-node LP
    bound on: the measured crossover below which the plain search
    finishes faster than the LP solves it would save. *)
val lp_bound_threshold : int

(** [node_bound_factory ~rule inst] adapts {!Mf_lp.Node_bound} to the
    {!Mf_exact.Dfs.node_bound} oracle record: returns the per-subtree
    factory to pass as [Dfs.solve ?node_bound] plus a counter reading
    the simplex iterations spent across all oracles created so far
    (safe to call after the solve; oracle registration is mutex-guarded
    because subtree searches run on pool domains).  Exposed for callers
    driving {!Mf_exact.Dfs} directly ([mfopt exact], the bench); {!exact}
    wires it automatically. *)
val node_bound_factory :
  rule:Mf_core.Mapping.rule ->
  Mf_core.Instance.t ->
  (unit -> Mf_exact.Dfs.node_bound) * (unit -> int)

(** Exact branch-and-bound ({!Mf_exact.Dfs.solve}).  The request budget
    maps to the node budget through {!Solver.node_allowance}
    ([Unlimited] uses the Dfs default of 20 million nodes).
    [lower_bound] and [incumbent] are threaded through to the search —
    the portfolio's shared-incumbent hooks.  [pool] runs the search's
    root subtrees on that {!Mf_parallel.Pool}; the outcome is
    bit-identical either way (the Dfs --jobs invariant), only the wall
    time changes.

    [lp_bound] toggles the per-node warm-started LP bound oracle
    ({!Mf_lp.Node_bound}, rule-aware): default {e auto} — on exactly
    when the instance has at least 14 tasks, the measured crossover
    below which the plain search finishes faster than the LP solves it
    would save.  The oracles' simplex iterations are reported in the
    outcome's [lp_pivots].

    [pivot_charge] (default 0) prices oracle pivots in node-equivalents
    against the node budget — [Dfs.solve]'s option; the portfolio
    passes {!Solver.node_lp_pivot_cost} for deadline-derived budgets so
    [Deadline_ms] requests do not overshoot when the oracle is active.
    [cancel] is cooperative cancellation, polled per node.
    @raise Mf_parallel.Pool.Cancelled when [cancel]'s token is set. *)
val exact :
  ?lower_bound:float ->
  ?incumbent:Mf_core.Mapping.t * float ->
  ?pool:Mf_parallel.Pool.t ->
  ?lp_bound:bool ->
  ?pivot_charge:int ->
  ?cancel:Mf_parallel.Pool.token ->
  Solver.request ->
  Solver.outcome

(** Exhaustive enumeration ({!Mf_exact.Brute}) — [Optimal] or
    [Infeasible], never budgeted.  Ground truth for tiny instances. *)
val brute : Solver.request -> Solver.outcome

(** [certified_lower_bound r] shaves one relative margin off the LP
    optimum — [1e-9] on the rational-certified path, [1e-6] on the
    float path — so the returned value errs low and stays a certificate
    even when the simplex optimum sits a hair above the true infimum. *)
val certified_lower_bound : Mf_lp.Splitting.result -> float

(** {1 Deterministic cost model}

    Node-equivalent prices the portfolio uses to budget its stages
    (fixed constants — see the calibration note in {!Solver}). *)

(** Node-equivalents one simplex pivot costs. *)
val pivot_node_cost : int

(** [heuristic_cost inst] prices the whole heuristic stage. *)
val heuristic_cost : Mf_core.Instance.t -> int

(** [lp_cost_estimate inst] prices an LP solve {e before} running it
    (the usual pivot count is a small multiple of [n + m]); the
    portfolio charges actual pivots afterwards. *)
val lp_cost_estimate : Mf_core.Instance.t -> int
