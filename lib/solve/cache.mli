(** Canonical-instance answer cache.

    Entries live in {e canonical space}: the portfolio canonicalizes the
    instance ({!Mf_core.Canon}), solves the canonical form, caches that
    answer, and maps the allocation back through the inverse machine
    permutation on every return — hit or miss alike.  Because a machine
    permutation permutes per-machine load sums without reordering any
    floating-point operation inside them, the mapped-back answer of a
    cache hit is bit-for-bit the answer a fresh solve would produce;
    the only observable difference is the [cache_hit] stats flag.

    The key is the canonical instance serialization joined with every
    request parameter that can influence the outcome (rule, seed,
    setup, budget, certificate flag) — see {!request_key}.  Eviction is
    least-recently-used ({!Mf_structures.Lru}).

    Every operation is internally mutex-protected: the daemon shares
    one cache across its request worker threads. *)

type t

(** A cached answer, in canonical space: [alloc] indexes canonical
    machines and must be mapped through {!Mf_core.Canon.map_from_canon}
    before leaving the solver. *)
type entry = {
  status : Solver.status;
  period : float option;
  alloc : int array option;
  lower_bound : float option;
  engines : Solver.engine_id list;
  stats : Solver.stats;
}

(** [create ?capacity ()] makes an empty cache (default capacity
    {!default_capacity}).
    @raise Invalid_argument when [capacity < 1]. *)
val create : ?capacity:int -> unit -> t

val default_capacity : int

(** [request_key canon req] is the full cache key for [req] solved in
    the canonical frame [canon]. *)
val request_key : Mf_core.Canon.t -> Solver.request -> string

val find : t -> string -> entry option
val add : t -> string -> entry -> unit
val clear : t -> unit

type stats = { hits : int; misses : int; evictions : int; length : int; capacity : int }

val stats : t -> stats

(** Hit fraction over all lookups so far; [0.] before any lookup. *)
val hit_rate : t -> float
