module Instance = Mf_core.Instance
module Mapping = Mf_core.Mapping
module Period = Mf_core.Period
module Registry = Mf_heuristics.Registry
module Splitting = Mf_lp.Splitting
module Dfs = Mf_exact.Dfs
open Solver

let infeasible engine =
  {
    status = Infeasible;
    period = None;
    mapping = None;
    lower_bound = None;
    engines = [ engine ];
    stats = zero_stats;
  }

(* Best single-machine mapping: the general-rule fallback when no
   specialized heuristic applies (m < p).  Mirrors the seed used inside
   Dfs.general. *)
let best_single_machine (req : request) =
  let inst = req.instance in
  let n = Instance.task_count inst and m = Instance.machines inst in
  let best = ref None in
  for u = 0 to m - 1 do
    let mp = Mapping.of_array inst (Array.make n u) in
    let p = score req mp in
    match !best with
    | Some (_, bp) when bp <= p -> ()
    | _ -> best := Some (mp, p)
  done;
  (Option.get !best, m)

let heuristics (req : request) =
  let inst = req.instance in
  if not (feasible req.rule inst) then infeasible Heuristics
  else
    let (mp, p), runs =
      match req.rule with
      | Mapping.Specialized ->
        (Registry.best ~seed:req.seed inst, List.length Registry.all)
      | Mapping.General ->
        if Instance.machines inst >= Instance.type_count inst then
          let mp, _ = Registry.best ~seed:req.seed inst in
          (* re-score: the registry reports the raw period, the general
             objective may carry a setup penalty *)
          ((mp, score req mp), List.length Registry.all)
        else best_single_machine req
      | Mapping.One_to_one ->
        let mp = Dfs.greedy_one_to_one inst in
        ((mp, score req mp), 1)
    in
    {
      status = Feasible infinity;
      period = Some p;
      mapping = Some mp;
      lower_bound = None;
      engines = [ Heuristics ];
      stats = { zero_stats with heuristic_runs = runs };
    }

let certified_lower_bound (r : Splitting.result) =
  let margin = match r.Splitting.path with `Rational -> 1e-9 | `Float -> 1e-6 in
  r.Splitting.period *. (1.0 -. margin)

let lp_stats (r : Splitting.result) =
  let s = r.Splitting.stats in
  {
    zero_stats with
    lp_pivots = s.Mf_lp.Mip.float_iterations + s.Mf_lp.Mip.exact_iterations;
    lp_path =
      (match r.Splitting.path with `Float -> Float_path | `Rational -> Rational_path);
  }

let lp (req : request) =
  let inst = req.instance in
  match Splitting.solve inst with
  | Error _ -> infeasible Lp
  | Ok r -> (
    let lb = certified_lower_bound r in
    let stats = lp_stats r in
    let bound_only =
      {
        status = Bound_only lb;
        period = None;
        mapping = None;
        lower_bound = Some lb;
        engines = [ Lp ];
        stats;
      }
    in
    match req.rule with
    | Mapping.One_to_one -> bound_only
    | Mapping.Specialized | Mapping.General -> (
      match Splitting.round inst r with
      | Error _ -> bound_only
      | Ok (mp, _) ->
        (* the rounded mapping is specialized, hence pays no setup under
           the general rule either; still score through the request for
           one uniform convention *)
        let p = score req mp in
        let status = if p <= lb then Optimal else Feasible ((p -. lb) /. lb) in
        {
          status;
          period = Some p;
          mapping = Some mp;
          lower_bound = Some lb;
          engines = [ Lp ];
          stats;
        }))

(* Per-node LP bounds pay ~500 plain-node-equivalents per evaluation;
   below this size the plain search exhausts the tree before the first
   handful of LP solves would pay for themselves (BENCH_exact: the
   crossover on the solvable-scan family sits between n = 12 and 14). *)
let lp_bound_threshold = 14

(* Adapt Mf_lp.Node_bound to the Dfs oracle record.  One oracle per
   subtree search (the factory contract), accumulated under a mutex:
   subtree searches run on pool domains, and the engine sums the
   oracles' pivot counters into the outcome stats afterwards. *)
let node_bound_factory ~rule inst =
  let oracles = ref [] and guard = Mutex.create () in
  let factory () =
    let t = Mf_lp.Node_bound.create ~rule inst in
    Mutex.protect guard (fun () -> oracles := t :: !oracles);
    {
      Dfs.nb_push = (fun ~task ~machine -> Mf_lp.Node_bound.push t ~task ~machine);
      nb_pop = (fun () -> Mf_lp.Node_bound.pop t);
      nb_bound = (fun ~cutoff -> Mf_lp.Node_bound.bound t ~cutoff);
      nb_pivots = (fun () -> (Mf_lp.Node_bound.stats t).Mf_lp.Node_bound.pivots);
    }
  in
  let pivots () =
    List.fold_left
      (fun acc t -> acc + (Mf_lp.Node_bound.stats t).Mf_lp.Node_bound.pivots)
      0 !oracles
  in
  (factory, pivots)

let exact ?lower_bound ?incumbent ?pool ?lp_bound ?pivot_charge ?cancel (req : request) =
  let inst = req.instance in
  if not (feasible req.rule inst) then infeasible Exact
  else
    let node_budget = node_allowance req.budget in
    let use_lp =
      match lp_bound with
      | Some b -> b
      | None -> Instance.task_count inst >= lp_bound_threshold
    in
    let node_bound, nb_pivots =
      if use_lp then
        let factory, pivots = node_bound_factory ~rule:req.rule inst in
        (Some factory, pivots)
      else (None, fun () -> 0)
    in
    let r =
      Dfs.solve ?node_budget ~setup:req.setup ?pool ?lower_bound ?incumbent ?node_bound
        ?pivot_charge ?cancel ~rule:req.rule inst
    in
    let status =
      if r.Dfs.optimal then Optimal
      else
        match lower_bound with
        | Some lb when lb > 0.0 -> Feasible ((r.Dfs.period -. lb) /. lb)
        | _ -> Budget_exhausted
    in
    {
      status;
      period = Some r.Dfs.period;
      mapping = Some r.Dfs.mapping;
      lower_bound;
      engines = [ Exact ];
      stats = { zero_stats with exact_nodes = r.Dfs.nodes; lp_pivots = nb_pivots () };
    }

let brute (req : request) =
  let inst = req.instance in
  if not (feasible req.rule inst) then infeasible Brute
  else
    let mp, p =
      match req.rule with
      | Mapping.Specialized -> Mf_exact.Brute.specialized inst
      | Mapping.General -> Mf_exact.Brute.general ~setup:req.setup inst
      | Mapping.One_to_one -> Mf_exact.Brute.one_to_one inst
    in
    {
      status = Optimal;
      period = Some p;
      mapping = Some mp;
      lower_bound = Some p;
      engines = [ Brute ];
      stats = zero_stats;
    }

(* Cost model: fixed node-equivalent prices (calibrated once against
   BENCH_exact/BENCH_lp, never measured at runtime — determinism). *)

let pivot_node_cost = 50

let heuristic_cost inst =
  (* every registry heuristic is O(n * m)-ish; the whole stage costs
     about one n*m sweep per heuristic *)
  (List.length Registry.all * Instance.task_count inst * Instance.machines inst) + 1

let lp_cost_estimate inst =
  (* the splitting LP has n*m + m + 1-ish columns and typically
     converges in a small multiple of (n + m) pivots *)
  4 * (Instance.task_count inst + Instance.machines inst) * pivot_node_cost
