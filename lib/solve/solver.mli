(** The unified solver interface: one typed request, one typed outcome,
    for every engine of the stack (heuristic registry, splitting LP,
    exact branch-and-bound, brute force) and for the {!Portfolio} that
    chains them.

    {b Determinism contract.}  Every engine adapter and the portfolio
    are pure functions of the request: same instance, rule, seed, budget
    and flags — same outcome, bit for bit, on any machine.  This is why
    a {!budget} deadline is {e not} enforced by the wall clock: it is
    mapped through fixed calibration constants onto the engines' own
    deterministic budgets (branch-and-bound node budgets, simplex pivot
    counts), so a request under a deadline still replays exactly.  The
    same property is what makes the canonical answer cache sound — a
    cache hit must be indistinguishable from a fresh solve. *)

(** How much work the solver may spend.

    [Deadline_ms d] is translated into node-equivalents via
    {!nodes_per_ms} (a fixed, deterministic calibration — intentionally
    not a wall-clock measurement); [Nodes k] budgets the exact search
    directly. *)
type budget = Unlimited | Deadline_ms of float | Nodes of int

type request = {
  instance : Mf_core.Instance.t;
  rule : Mf_core.Mapping.rule;  (** default [Specialized] *)
  seed : int;  (** threaded to every randomized component (H1); default 0 *)
  budget : budget;  (** default [Unlimited] *)
  want_certificate : bool;
      (** demand a certified lower bound: the LP stage becomes mandatory
          (even when the budget heuristically says to skip it) and
          optimality/gap claims are made only against certified bounds;
          default false *)
  setup : float;  (** reconfiguration time per type switch (general rule); default 0 *)
}

(** Why a request was rejected at construction.  [Bad_deadline] covers
    non-positive {e and} NaN deadlines, [Bad_setup] negative and NaN
    setups (NaN never enters the solver: it is unordered, so it would
    slip through every downstream comparison). *)
type request_error =
  | Bad_deadline of float
  | Bad_node_budget of int
  | Bad_setup of float

val describe_request_error : request_error -> string

(** [make_request inst] builds a request with the defaults above,
    reporting malformed parameters — the untrusted-boundary
    constructor the daemon and [mfopt solve] use. *)
val make_request :
  ?rule:Mf_core.Mapping.rule ->
  ?seed:int ->
  ?budget:budget ->
  ?want_certificate:bool ->
  ?setup:float ->
  Mf_core.Instance.t ->
  (request, request_error) result

(** [request_exn inst] is {!make_request} for trusted in-process
    callers.
    @raise Invalid_argument on a non-positive or NaN deadline, a
    non-positive node budget, or negative or NaN [setup]. *)
val request_exn :
  ?rule:Mf_core.Mapping.rule ->
  ?seed:int ->
  ?budget:budget ->
  ?want_certificate:bool ->
  ?setup:float ->
  Mf_core.Instance.t ->
  request

(** What the solver established.

    - [Optimal]: the mapping is proved optimal (search space exhausted,
      or the incumbent met a certified lower bound).
    - [Feasible gap]: a mapping plus a certified lower bound, not proved
      optimal; [gap = (period - bound) / bound >= 0].
    - [Bound_only b]: a certified lower bound [b] but no feasible
      mapping from this engine (e.g. the LP under the one-to-one rule,
      where rounding does not apply).
    - [Infeasible]: no mapping satisfies the rule ([m < p] specialized,
      [m < n] one-to-one), or the engine's LP was infeasible.
    - [Budget_exhausted]: the budget ran out with no certified lower
      bound to gap against; [period]/[mapping] still carry the best
      anytime answer when one exists. *)
type status =
  | Optimal
  | Feasible of float
  | Bound_only of float
  | Infeasible
  | Budget_exhausted

type engine_id = Heuristics | Lp | Exact | Brute

(** Which simplex path produced the LP bound, if the LP ran. *)
type lp_path = No_lp | Float_path | Rational_path

(** Deterministic work counters (no wall-clock entries — outcomes must
    replay bit-for-bit).  [cache_hit] is provenance, not work: it is the
    only field a cache hit changes relative to the fresh solve. *)
type stats = {
  heuristic_runs : int;
  lp_pivots : int;
  lp_path : lp_path;
  exact_nodes : int;
  cache_hit : bool;
}

type outcome = {
  status : status;
  period : float option;  (** achieved period of [mapping], when one exists *)
  mapping : Mf_core.Mapping.t option;
  lower_bound : float option;  (** certified lower bound, when one was computed *)
  engines : engine_id list;  (** stages executed, in execution order *)
  stats : stats;
}

val zero_stats : stats

(** [score request mp] evaluates a mapping under the request's
    objective: {!Mf_core.Period.with_setup} for the general rule with
    positive setup, the plain period otherwise. *)
val score : request -> Mf_core.Mapping.t -> float

(** [feasible rule inst] tells whether any mapping satisfies [rule]. *)
val feasible : Mf_core.Mapping.rule -> Mf_core.Instance.t -> bool

(** {1 Deadline calibration}

    Fixed constants translating wall-clock deadlines into the engines'
    deterministic budgets.  One {e node-equivalent} is one
    branch-and-bound node of the allocation-free [Dfs] hot path. *)

(** Node-equivalents granted per millisecond of deadline. *)
val nodes_per_ms : float

(** Node-equivalents one simplex pivot of the {e per-node} LP bound
    oracle costs against a deadline allowance.  Calibrated against
    BENCH_exact.json: on the solvable scan the oracle evaluates roughly
    once per node (n=18: 42729 lp_solves over 42857 nodes) at ~500
    plain-node-equivalents per warm-started evaluation of a few tens of
    pivots.  [Nodes] budgets are {e not} charged — they count search
    nodes by contract, and the committed BENCH_exact regression rows
    pin that accounting. *)
val node_lp_pivot_cost : int

(** Hard ceiling on any node-equivalent allowance (~16 years of work at
    {!nodes_per_ms}).  Deadlines whose node-equivalent product reaches
    it — [Deadline_ms 1e300], infinity — are clamped here instead of
    overflowing [int_of_float] (which used to collapse them to a 1-node
    budget). *)
val max_node_allowance : int

(** [node_allowance budget] is the total node-equivalent allowance,
    clamped to {!max_node_allowance}; [None] means unlimited. *)
val node_allowance : budget -> int option

(** Stable textual form of a budget, part of the answer-cache key. *)
val budget_repr : budget -> string

(** {1 Rendering} *)

val status_to_string : status -> string
val engine_name : engine_id -> string
val lp_path_name : lp_path -> string
