(** Property runner: deterministic case generation, greedy integrated
    shrinking, replayable failures.

    Each case draws its own 64-bit {e case seed} from a SplitMix64 stream
    over the run's base seed; a failure reports the case seed, which
    regenerates the identical tree — that is the whole replay protocol
    ({!check_case}, {!Corpus}).  Shrinking descends the tree greedily:
    repeatedly move to the first child that still fails, until no child
    fails or the step budget runs out. *)

(** A property either holds or explains why it does not.  Exceptions
    raised by the property are caught and treated as failures. *)
type 'a property = 'a -> (unit, string) result

type 'a failure = {
  case_index : int;  (** which case of the run failed (0-based) *)
  case_seed : int;  (** regenerates the failing tree — store this to replay *)
  shrink_steps : int;  (** accepted shrink steps to reach the minimum *)
  value : 'a;  (** the minimal (fully shrunk) counterexample *)
  message : string;  (** the property's complaint on the minimal value *)
}

type 'a report = {
  name : string;
  cases : int;  (** cases executed (including the failing one) *)
  failure : 'a failure option;
}

(** [check ~name ~seed ~count gen prop] runs [count] cases.  Stops at the
    first failure and shrinks it ([max_shrinks] accepted steps, default
    4096). *)
val check :
  ?count:int ->
  ?max_shrinks:int ->
  name:string ->
  seed:int ->
  'a Gen.t ->
  'a property ->
  'a report

(** [check_case ~name ~case_seed gen prop] replays exactly one stored
    case seed (shrinking again on failure, which is cheap and
    deterministic). *)
val check_case :
  ?max_shrinks:int -> name:string -> case_seed:int -> 'a Gen.t -> 'a property -> 'a report

(** [case_seeds ~seed ~count] is the case-seed stream [check] uses —
    exposed so drivers can print or persist individual seeds. *)
val case_seeds : seed:int -> count:int -> int array
