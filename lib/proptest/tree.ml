type 'a t = Node of 'a * 'a t Seq.t

let root (Node (x, _)) = x
let children (Node (_, cs)) = cs
let pure x = Node (x, Seq.empty)

let rec map f (Node (x, cs)) = Node (f x, Seq.map (map f) cs)

(* Outer shrinks first: re-running the continuation on a shrunk outer
   value regenerates the inner structure deterministically (Gen.bind
   hands every invocation a copy of the same generator state). *)
let rec bind (Node (x, xs)) f =
  let (Node (y, ys)) = f x in
  Node (y, Seq.append (Seq.map (fun tx -> bind tx f) xs) ys)

let rec product (Node (a, sa) as ta) (Node (b, sb) as tb) =
  Node
    ( (a, b),
      Seq.append
        (Seq.map (fun ta' -> product ta' tb) sa)
        (Seq.map (fun tb' -> product ta tb') sb) )

let rec int_towards ~dest v =
  Node (v, int_shrinks ~dest v)

and int_shrinks ~dest v =
  if v = dest then Seq.empty
  else
    (* d, d/2, d/4, ... — the first candidate is [dest] itself. *)
    let rec halves d () =
      if d = 0 then Seq.Nil
      else Seq.Cons (int_towards ~dest (v - d), halves (d / 2))
    in
    halves (v - dest)

let rec float_towards ~dest ~fuel v =
  Node (v, float_shrinks ~dest ~fuel v)

and float_shrinks ~dest ~fuel v =
  if fuel <= 0 || not (Float.is_finite v) || v = dest then Seq.empty
  else
    let rec halves d () =
      let c = v -. d in
      (* Stop once halving no longer moves the candidate. *)
      if c = v || not (Float.is_finite c) then Seq.Nil
      else Seq.Cons (float_towards ~dest ~fuel:(fuel - 1) c, halves (d /. 2.0))
    in
    halves (v -. dest)

let rec array_of_trees ts =
  let n = Array.length ts in
  let shrinks =
    Seq.concat_map
      (fun i ->
        Seq.map
          (fun c ->
            let ts' = Array.copy ts in
            ts'.(i) <- c;
            array_of_trees ts')
          (children ts.(i)))
      (Seq.init n Fun.id)
  in
  Node (Array.map root ts, shrinks)
