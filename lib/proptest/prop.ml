type 'a property = 'a -> (unit, string) result

type 'a failure = {
  case_index : int;
  case_seed : int;
  shrink_steps : int;
  value : 'a;
  message : string;
}

type 'a report = { name : string; cases : int; failure : 'a failure option }

let eval prop x =
  match prop x with
  | r -> r
  | exception e -> Error ("exception: " ^ Printexc.to_string e)

(* Greedy descent: take the first failing child, repeat. *)
let shrink ~max_shrinks prop tree first_message =
  let rec go tree message steps =
    if steps >= max_shrinks then (Tree.root tree, message, steps)
    else
      let rec first_failing s =
        match s () with
        | Seq.Nil -> None
        | Seq.Cons (child, rest) -> (
          match eval prop (Tree.root child) with
          | Error m -> Some (child, m)
          | Ok () -> first_failing rest)
      in
      match first_failing (Tree.children tree) with
      | Some (child, m) -> go child m (steps + 1)
      | None -> (Tree.root tree, message, steps)
  in
  go tree first_message 0

let case_seeds ~seed ~count =
  let stream = Mf_prng.Splitmix64.create (Int64.of_int seed) in
  Array.init count (fun _ ->
      Int64.to_int (Mf_prng.Splitmix64.next stream) land max_int)

let run_case ?(max_shrinks = 4096) ~name ~case_index ~case_seed gen prop =
  let tree = Gen.run gen (Mf_prng.Rng.create case_seed) in
  match eval prop (Tree.root tree) with
  | Ok () -> { name; cases = case_index + 1; failure = None }
  | Error message ->
    let value, message, shrink_steps = shrink ~max_shrinks prop tree message in
    {
      name;
      cases = case_index + 1;
      failure = Some { case_index; case_seed; shrink_steps; value; message };
    }

let check ?(count = 100) ?max_shrinks ~name ~seed gen prop =
  let seeds = case_seeds ~seed ~count in
  let rec go i =
    if i >= count then { name; cases = count; failure = None }
    else
      let r = run_case ?max_shrinks ~name ~case_index:i ~case_seed:seeds.(i) gen prop in
      match r.failure with None -> go (i + 1) | Some _ -> r
  in
  go 0

let check_case ?max_shrinks ~name ~case_seed gen prop =
  run_case ?max_shrinks ~name ~case_index:0 ~case_seed gen prop
