module Instance = Mf_core.Instance
module Workflow = Mf_core.Workflow
module Mapping = Mf_core.Mapping
module Instance_io = Mf_core.Instance_io
module Wgen = Mf_workload.Gen
module Rng = Mf_prng.Rng
open Gen

type op =
  | Move of { task : int; machine : int }
  | Swap of { u : int; v : int }
  | Undo

let op_to_string = function
  | Move { task; machine } -> Printf.sprintf "move T%d -> M%d" task machine
  | Swap { u; v } -> Printf.sprintf "swap M%d <-> M%d" u v
  | Undo -> "undo"

type avail_op = Down of int | Up of int

let avail_op_to_string = function
  | Down u -> Printf.sprintf "down M%d" u
  | Up u -> Printf.sprintf "up M%d" u

(* ------------------------------------------------------------------ *)
(* Shrinking generators                                                 *)
(* ------------------------------------------------------------------ *)

(* Renumber arbitrary type labels to the contiguous range [0, p) in order
   of first appearance: any label array is valid, so element-wise
   shrinking (labels toward 0) can never break the Workflow contract —
   it only merges types. *)
let normalize_types raw =
  let n = Array.length raw in
  let remap = Hashtbl.create 8 in
  let next = ref 0 in
  let types =
    Array.init n (fun i ->
        match Hashtbl.find_opt remap raw.(i) with
        | Some t -> t
        | None ->
          let t = !next in
          incr next;
          Hashtbl.add remap raw.(i) t;
          t)
  in
  (types, !next)

(* Dyadic processing time: small integer in [1, 32] times 2^k.  Exactly
   representable, shrinks toward 1.0. *)
let dyadic_w ~kmax =
  map2 (fun small k -> float_of_int small *. Float.ldexp 1.0 k) (int_range 1 32)
    (int_range 0 kmax)

(* Failure rate on the 1/64 grid, f <= 1/2; zero (a degenerate row
   contributor) gets its own weight and is the shrink target. *)
let dyadic_f =
  frequency
    [ (1, return 0.0); (4, map (fun j -> float_of_int j /. 64.0) (int_range 0 32)) ]

(* Successor of task i: chain edge (shrink target), random forward jump,
   or — unless [forest] is off — none (an extra sink).  Single-sink
   in-trees are the paper's assembly model; the simulation oracle needs
   them because a machine hosting two independent sinks is free to pace
   them unevenly, which the analytic period does not model. *)
let successor_gen ~forest ~n i =
  if i = n - 1 then return None
  else
    frequency
      ([
         (4, return (Some (i + 1)));
         (2, map (fun j -> Some j) (int_range (i + 1) (n - 1)));
       ]
      @ if forest then [ (1, return None) ] else [])

let instance ?(min_tasks = 1) ?(max_tasks = 8) ?(max_types = 3) ?(min_machines = 1)
    ?(max_machines = 4) ?(machines_cover_types = false) ?(duplicate_machine = false)
    ?(forest = true) ?(kmax = 3) () =
  let* n = int_range min_tasks max_tasks in
  let* raw_types = array_n n (int_range 0 (max_types - 1)) in
  let types, p = normalize_types raw_types in
  let lo_m = if machines_cover_types then max p min_machines else min_machines in
  let* m = int_range lo_m (max lo_m max_machines) in
  let* successor = sequence (Array.init n (successor_gen ~forest ~n)) in
  (* One w row per type: type-consistency by construction. *)
  let* w_by_type = array_n p (array_n m (dyadic_w ~kmax)) in
  (* Failure regimes: task-attached (f_i constant per row), by-type
     (repeated profiles across same-type tasks — the dominance trigger),
     or fully per-(task, machine). *)
  let* f =
    choose
      [|
        map (fun fi -> Array.map (fun v -> Array.make m v) fi) (array_n n dyadic_f);
        map
          (fun f_by_type -> Array.map (fun ty -> Array.copy f_by_type.(ty)) types)
          (array_n p (array_n m dyadic_f));
        array_n n (array_n m dyadic_f);
      |]
  in
  let* dup = if duplicate_machine then bool else return false in
  let w = Array.map (fun ty -> Array.copy w_by_type.(ty)) types in
  let append_col rows = Array.map (fun row -> Array.append row [| row.(0) |]) rows in
  let m, w, f = if dup then (m + 1, append_col w, append_col f) else (m, w, f) in
  return (Instance.create ~workflow:(Workflow.in_forest ~types ~successor) ~machines:m ~w ~f)

let allocation inst =
  let n = Instance.task_count inst in
  let m = Instance.machines inst in
  map (Mapping.of_array inst) (array_n n (int_range 0 (m - 1)))

let specialized_allocation inst =
  let p = Instance.type_count inst in
  let m = Instance.machines inst in
  if m < p then invalid_arg "Instances.specialized_allocation: m < p";
  let wf = Instance.workflow inst in
  map
    (fun idx ->
      let perm = apply_permutation_indices idx in
      Mapping.of_array inst
        (Array.init (Instance.task_count inst) (fun i -> perm.(Workflow.ttype wf i))))
    (permutation_indices m)

(* Per-machine breakdown laws on a dyadic grid, expressed as multiples
   of the mapping's analytic period (the property scales them at run
   time, once the period is known): mtbf in {8, 16, 32} periods, mttr a
   ratio in {0, 1/4, 1/2} of mtbf, wear 0.  The mttr = 0 degenerate law
   (instant repairs, availability 1) carries its own weight and is the
   shrink target, so counterexamples shrink toward the static model. *)
let breakdown_profile inst =
  let one =
    let* mult = choose [| return 8.0; return 16.0; return 32.0 |] in
    let* ratio =
      frequency [ (1, return 0.0); (2, choose [| return 0.25; return 0.5 |]) ]
    in
    return (mult, ratio)
  in
  array_n (Instance.machines inst) one

let breakdown_profile_to_string profile =
  String.concat "; "
    (Array.to_list
       (Array.mapi
          (fun u (mult, ratio) ->
            Printf.sprintf "M%d: mtbf %gp mttr %gp" u mult (mult *. ratio))
          profile))

(* Availability scripts are drawn raw — (want_down, pick) pairs — and
   interpreted statefully by [decode_avail], so the raw array and every
   structural shrink of it (shorter, smaller elements) decodes to a
   valid breakdown/repair history: a down step picks among the machines
   currently up, an up step among those currently down, falling back to
   the other kind when the wanted set is empty. *)
let avail_script ~max_ops =
  array_sized ~min:1 ~max:max_ops (pair bool (int_range 0 15))

let decode_avail ~machines script =
  let down = Array.make machines false in
  let with_state b =
    let c = ref [] in
    for u = machines - 1 downto 0 do
      if down.(u) = b then c := u :: !c
    done;
    !c
  in
  Array.map
    (fun (want_down, pick) ->
      let take candidates = List.nth candidates (pick mod List.length candidates) in
      let ups = with_state false and downs = with_state true in
      let go_down =
        if want_down then ups <> [] (* fall back to a repair if all down *)
        else downs = [] (* fall back to a breakdown if all up *)
      in
      if go_down then begin
        let u = take ups in
        down.(u) <- true;
        Down u
      end
      else begin
        let u = take downs in
        down.(u) <- false;
        Up u
      end)
    script

let ops inst ~max_ops =
  let n = Instance.task_count inst in
  let m = Instance.machines inst in
  let one =
    choose
      [|
        map2 (fun task machine -> Move { task; machine }) (int_range 0 (n - 1))
          (int_range 0 (m - 1));
        map2 (fun u v -> Swap { u; v }) (int_range 0 (m - 1)) (int_range 0 (m - 1));
        return Undo;
      |]
  in
  array_sized ~min:0 ~max:max_ops one

(* ------------------------------------------------------------------ *)
(* Printers                                                             *)
(* ------------------------------------------------------------------ *)

let print_instance = Instance_io.to_string

let print_with_mapping inst mp =
  Printf.sprintf "%smapping %s\n" (print_instance inst)
    (String.concat " " (Array.to_list (Array.map string_of_int (Mapping.to_array mp))))

let print_case inst mp steps =
  Printf.sprintf "%sops [%s]\n" (print_with_mapping inst mp)
    (String.concat "; " (Array.to_list (Array.map op_to_string steps)))

let print_breakdown_case inst mp profile =
  Printf.sprintf "%sbreakdowns (x analytic period, wear 0) [%s]\n"
    (print_with_mapping inst mp)
    (breakdown_profile_to_string profile)

let print_remap_case inst mp script ~budget =
  let decoded = decode_avail ~machines:(Instance.machines inst) script in
  Printf.sprintf "%sbudget %d\navail [%s]\n" (print_with_mapping inst mp) budget
    (String.concat "; " (Array.to_list (Array.map avail_op_to_string decoded)))

(* ------------------------------------------------------------------ *)
(* Deterministic indexed families                                       *)
(* ------------------------------------------------------------------ *)

(* The dfs-differential enumeration (moved verbatim from test_exact.ml so
   the suite and the fuzzer share it): chains and in-trees, n <= 8,
   m <= 4, every fifth instance task-attached. *)
let differential_instance ~rule i =
  let seed = i in
  let n, p, m =
    match rule with
    | Mapping.One_to_one ->
      let n = 2 + (i mod 3) in
      (n, 1 + (i mod 2), max n (2 + (i mod 3)))
    | Mapping.Specialized | Mapping.General ->
      let p = 1 + (i mod 3) in
      let n = max p (2 + (i mod 7)) in
      (n, p, p + (i mod (5 - p)))
  in
  let params = Wgen.default ~tasks:n ~types:p ~machines:m in
  let params =
    if i mod 5 = 0 then { params with Wgen.task_attached_failures = true } else params
  in
  if i mod 2 = 0 then Wgen.chain (Rng.create seed) params
  else Wgen.in_tree (Rng.create seed) params

(* The lp-differential dyadic family (moved verbatim from test_lp.ml):
   integer "small" workloads in [1, 32] times a per-machine power-of-two
   scale up to 2^kmax, failure rates snapped to the 1/64 grid.  Every
   coefficient is exactly representable in both float and rational. *)
let dyadic_lp_instance ~tasks ~machines ~kmax seed =
  let base =
    (if seed mod 2 = 0 then Wgen.chain else Wgen.in_tree)
      (Rng.create seed)
      (Wgen.with_high_failures (Wgen.default ~tasks ~types:(min tasks 4) ~machines))
  in
  let n = Instance.task_count base in
  let m = Instance.machines base in
  let w =
    Array.init n (fun i ->
        Array.init m (fun u ->
            (* w ~ U[100,1000) -> integer in [1, 32], then machine scale. *)
            let small = Float.max 1.0 (Float.round (Instance.w base i u /. 31.25)) in
            let k = if m = 1 then 0 else u * kmax / (m - 1) in
            small *. Float.ldexp 1.0 k))
  in
  let f =
    Array.init n (fun i ->
        Array.init m (fun u ->
            Float.min 0.984375 (Float.round (Instance.f base i u *. 64.0) /. 64.0)))
  in
  Instance.create ~workflow:(Instance.workflow base) ~machines:m ~w ~f
