(** Generator combinators with integrated shrinking.

    A generator maps a deterministic {!Mf_prng.Rng} state to a lazy
    {!Tree} of values: the root is the generated value, the children are
    its shrink candidates.  Shrinking therefore needs no separate
    [shrink] function and — crucially for this repository's constrained
    domain values (type-consistent instances, in-forest workflows,
    rule-feasible mappings) — every shrink candidate is produced by the
    same smart constructors as the original, so it satisfies the same
    invariants by construction.

    Composition follows Hedgehog: {!bind} splits the generator state so
    that when an outer value shrinks (an instance size, a sequence
    length), the dependent inner generator re-runs from an identical
    state copy, keeping shrink candidates deterministic and — for
    prefix-stable generators such as {!array_sized} — structurally
    related to the original. *)

type 'a t

(** [run g rng] generates one tree, advancing [rng]. *)
val run : 'a t -> Mf_prng.Rng.t -> 'a Tree.t

(** [root ~case_seed g] is the root value of the tree generated from a
    fresh state seeded with [case_seed] — what a replay produces. *)
val root : case_seed:int -> 'a t -> 'a

(** {1 Monad} *)

val return : 'a -> 'a t
val map : ('a -> 'b) -> 'a t -> 'b t
val map2 : ('a -> 'b -> 'c) -> 'a t -> 'b t -> 'c t
val bind : 'a t -> ('a -> 'b t) -> 'b t
val pair : 'a t -> 'b t -> ('a * 'b) t
val ( let* ) : 'a t -> ('a -> 'b t) -> 'b t
val ( let+ ) : 'a t -> ('a -> 'b) -> 'b t

(** {1 Primitives} *)

(** [int_range ?dest lo hi] draws uniformly from the inclusive range and
    shrinks toward [dest] (default [lo]).
    @raise Invalid_argument if [hi < lo] or [dest] is outside the range. *)
val int_range : ?dest:int -> int -> int -> int t

(** [float_range lo hi] draws uniformly from [[lo, hi)] ([lo] when the
    range is empty) and shrinks toward [lo] by binary halving. *)
val float_range : float -> float -> float t

(** Fair coin, shrinking toward [false]. *)
val bool : bool t

(** [choose gens] picks one alternative uniformly; the choice index
    shrinks toward the first alternative.
    @raise Invalid_argument on an empty array. *)
val choose : 'a t array -> 'a t

(** [frequency alts] picks an alternative with probability proportional
    to its weight; the choice shrinks toward the first alternative.
    @raise Invalid_argument if no weight is positive. *)
val frequency : (int * 'a t) list -> 'a t

(** [no_shrink g] generates like [g] but never shrinks — for seeds and
    other values whose magnitude carries no meaning. *)
val no_shrink : 'a t -> 'a t

(** {1 Collections} *)

(** [array_n n g] is [n] independent draws; shrinking replaces one
    element at a time by one of its candidates. *)
val array_n : int -> 'a t -> 'a array t

(** [array_sized ~min ~max g] draws the length from [[min, max]] and
    then the elements.  The length shrinks before the elements, and
    because all lengths replay the same element stream, a shorter
    candidate is a prefix of the original. *)
val array_sized : min:int -> max:int -> 'a t -> 'a array t

(** [sequence gens] runs one generator per slot — for arrays whose
    element distribution depends on the index (successor edges). *)
val sequence : 'a t array -> 'a array t

(** [permutation_indices n] draws the Fisher–Yates index sequence of a
    uniform permutation of [0..n-1]: element [j] is an index into the
    machines still unused at step [j].  Feeding it to
    {!apply_permutation_indices} yields the permutation; every shrink
    candidate is again a valid index sequence (so the decoded array is
    always a permutation), and shrinking moves toward the identity. *)
val permutation_indices : int -> int array t

(** [apply_permutation_indices idx] decodes the index sequence into the
    permutation array [perm] with [perm.(j)] = image of [j]. *)
val apply_permutation_indices : int array -> int array
