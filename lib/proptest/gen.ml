module Rng = Mf_prng.Rng

type 'a t = Rng.t -> 'a Tree.t

let run g rng = g rng
let root ~case_seed g = Tree.root (g (Rng.create case_seed))
let return x _rng = Tree.pure x
let map f g rng = Tree.map f (g rng)

(* Split the state so every re-run of the continuation — one per shrink
   candidate of the outer value — starts from an identical copy. *)
let bind g f rng =
  let r1 = Rng.split rng in
  let r2 = Rng.split rng in
  Tree.bind (g r1) (fun x -> f x (Rng.copy r2))

let pair ga gb rng =
  let r1 = Rng.split rng in
  let r2 = Rng.split rng in
  Tree.product (ga r1) (gb r2)

let map2 f ga gb = map (fun (a, b) -> f a b) (pair ga gb)
let ( let* ) = bind
let ( let+ ) g f = map f g

let int_range ?dest lo hi rng =
  if hi < lo then invalid_arg "Gen.int_range: empty range";
  let dest = Option.value dest ~default:lo in
  if dest < lo || dest > hi then invalid_arg "Gen.int_range: dest outside range";
  Tree.int_towards ~dest (Rng.int_range rng ~lo ~hi)

let float_range lo hi rng =
  if hi <= lo then Tree.pure lo
  else Tree.float_towards ~dest:lo ~fuel:24 (Rng.uniform rng ~lo ~hi)

let bool rng =
  Tree.map (fun i -> i = 1) (Tree.int_towards ~dest:0 (if Rng.bool rng then 1 else 0))

let choose gens =
  let n = Array.length gens in
  if n = 0 then invalid_arg "Gen.choose: no alternatives";
  bind (int_range 0 (n - 1)) (fun i -> gens.(i))

let frequency alts =
  let total = List.fold_left (fun acc (w, _) -> acc + max 0 w) 0 alts in
  if total <= 0 then invalid_arg "Gen.frequency: no positive weight";
  bind (int_range 0 (total - 1)) (fun ticket ->
      let rec pick ticket = function
        | [] -> assert false
        | (w, g) :: rest -> if ticket < w then g else pick (ticket - w) rest
      in
      pick ticket alts)

let no_shrink g rng = Tree.pure (Tree.root (g rng))
let array_n n g rng = Tree.array_of_trees (Array.init n (fun _ -> g rng))
let sequence gens rng = Tree.array_of_trees (Array.map (fun g -> g rng) gens)
let array_sized ~min ~max g = bind (int_range min max) (fun len -> array_n len g)

(* Index j picks among the (n - j) values still unused; any index array
   with entries in those ranges decodes to a permutation, so element-wise
   shrinking (toward 0 = "keep the smallest remaining") stays valid. *)
let permutation_indices n rng =
  Tree.array_of_trees
    (Array.init n (fun j -> Tree.int_towards ~dest:0 (Rng.int rng (n - j))))

let apply_permutation_indices idx =
  let n = Array.length idx in
  let remaining = Array.init n Fun.id in
  Array.init n (fun j ->
      let k = idx.(j) in
      let v = remaining.(k) in
      (* Drop slot k; only the first (n - j - 1) slots remain meaningful. *)
      Array.blit remaining (k + 1) remaining k (n - k - 1);
      v)
