module Instance = Mf_core.Instance
module Workflow = Mf_core.Workflow
module Mapping = Mf_core.Mapping
module Period = Mf_core.Period
module State = Mf_eval.State
module Registry = Mf_heuristics.Registry
module Dfs = Mf_exact.Dfs
module Brute = Mf_exact.Brute
module Symmetry = Mf_exact.Symmetry
module Splitting = Mf_lp.Splitting
module Desim = Mf_sim.Desim
module Breakdown = Mf_sim.Breakdown
module Sim_metrics = Mf_sim.Metrics
module Plan = Mf_remap.Plan
module Rat = Mf_numeric.Rat
open Gen

type outcome = { oracle : string; cases : int; failed : failed option }

and failed = {
  case_index : int;
  case_seed : int;
  shrink_steps : int;
  message : string;
  repr : string;
}

type t =
  | Oracle : {
      name : string;
      description : string;
      quick_cases : int;
      gen : 'a Gen.t;
      prop : 'a Prop.property;
      print : 'a -> string;
    }
      -> t

let name (Oracle o) = o.name
let description (Oracle o) = o.description
let quick_cases (Oracle o) = o.quick_cases

(* Properties are written with an internal failure exception so checks
   chain without result plumbing; [prop_of] converts to the runner's
   result type (other exceptions are caught by [Prop.eval]). *)
exception Fail of string

let failf fmt = Printf.ksprintf (fun s -> raise (Fail s)) fmt
let check b fmt = Printf.ksprintf (fun s -> if not b then raise (Fail s)) fmt
let prop_of f x = match f x with () -> Ok () | exception Fail m -> Error m

let rel_close ?(tol = 1e-9) a b =
  Float.abs (a -. b) <= tol *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

let exact_period inst mp = Rat.to_float (Period.period_exact inst mp)

(* ------------------------------------------------------------------ *)
(* eval: State vs Period under journaled move/swap/undo sequences       *)
(* ------------------------------------------------------------------ *)

let eval_gen =
  let* inst = Instances.instance ~max_tasks:8 ~max_machines:4 () in
  let* mp = Instances.allocation inst in
  let* steps = Instances.ops inst ~max_ops:12 in
  return (inst, mp, steps)

let eval_prop (inst, mp, steps) =
  let st = State.of_mapping inst mp in
  let p0 = State.period st in
  check (p0 = Period.period inst mp) "of_mapping period %h <> Period.period %h" p0
    (Period.period inst mp);
  check
    (rel_close p0 (exact_period inst mp))
    "float period %.17g vs exact %.17g" p0 (exact_period inst mp);
  let alloc = ref (Mapping.to_array mp) in
  let saved = ref [] in
  Array.iteri
    (fun k op ->
      match op with
      | Instances.Undo ->
        if State.undo_depth st > 0 then begin
          State.undo st;
          match !saved with
          | prev :: rest ->
            alloc := prev;
            saved := rest
          | [] -> assert false
        end
      | Instances.Move { task; machine } ->
        let predicted = State.try_move st ~task ~machine in
        saved := !alloc :: !saved;
        let next = Array.copy !alloc in
        next.(task) <- machine;
        alloc := next;
        State.apply_move st ~task ~machine;
        let got = State.period st in
        let reference = Period.period inst (Mapping.of_array inst !alloc) in
        check (rel_close predicted got) "step %d (%s): try_move %.17g vs applied %.17g" k
          (Instances.op_to_string op) predicted got;
        check (rel_close got reference) "step %d (%s): state %.17g vs reference %.17g" k
          (Instances.op_to_string op) got reference
      | Instances.Swap { u; v } ->
        let predicted = State.try_swap st ~u ~v in
        saved := !alloc :: !saved;
        alloc :=
          Array.map (fun m -> if m = u then v else if m = v then u else m) !alloc;
        State.apply_swap st ~u ~v;
        let got = State.period st in
        let reference = Period.period inst (Mapping.of_array inst !alloc) in
        check (rel_close predicted got) "step %d (%s): try_swap %.17g vs applied %.17g" k
          (Instances.op_to_string op) predicted got;
        check (rel_close got reference) "step %d (%s): state %.17g vs reference %.17g" k
          (Instances.op_to_string op) got reference)
    steps;
  State.check ~tol:1e-9 st;
  check
    (rel_close (State.period st) (exact_period inst (Mapping.of_array inst !alloc)))
    "final float period %.17g vs exact %.17g" (State.period st)
    (exact_period inst (Mapping.of_array inst !alloc));
  (* The journal stores exact accumulator snapshots: rewinding everything
     must restore the initial period bit-for-bit, not just approximately. *)
  while State.undo_depth st > 0 do
    State.undo st
  done;
  check (State.period st = p0) "full undo: %h <> initial %h" (State.period st) p0

let eval_oracle =
  Oracle
    {
      name = "eval";
      description = "State move/swap/undo journal vs Period.period / period_exact";
      quick_cases = 300;
      gen = eval_gen;
      prop = prop_of eval_prop;
      print = (fun (i, m, s) -> Instances.print_case i m s);
    }

(* ------------------------------------------------------------------ *)
(* heuristics: every registry algorithm is feasible and truly scored    *)
(* ------------------------------------------------------------------ *)

let heuristics_gen =
  Instances.instance ~max_tasks:8 ~max_machines:5 ~machines_cover_types:true
    ~duplicate_machine:true ()

let heuristics_prop inst =
  let periods =
    List.map
      (fun h ->
        let mp = Registry.solve ~seed:0 h inst in
        check
          (Mapping.satisfies inst mp Mapping.Specialized)
          "%s returned a non-specialized mapping" (Registry.name h);
        let p = Period.period inst mp in
        check
          (rel_close p (exact_period inst mp))
          "%s: float period %.17g vs exact %.17g" (Registry.name h) p
          (exact_period inst mp);
        p)
      Registry.all
  in
  let best_mp, best_p = Registry.best ~seed:0 inst in
  check
    (Mapping.satisfies inst best_mp Mapping.Specialized)
    "best returned a non-specialized mapping";
  check
    (best_p = Period.period inst best_mp)
    "best period %h <> evaluation of its mapping %h" best_p
    (Period.period inst best_mp);
  let min_p = List.fold_left Float.min infinity periods in
  check (best_p = min_p) "best period %h <> catalogue minimum %h" best_p min_p

let heuristics_oracle =
  Oracle
    {
      name = "heuristics";
      description = "Registry: rule-feasible mappings, periods match reference";
      quick_cases = 250;
      gen = heuristics_gen;
      prop = prop_of heuristics_prop;
      print = Instances.print_instance;
    }

(* ------------------------------------------------------------------ *)
(* exact-vs-brute: Dfs.solve = exhaustive enumeration, all three rules  *)
(* ------------------------------------------------------------------ *)

let exact_gen =
  Instances.instance ~max_tasks:5 ~max_machines:4 ~machines_cover_types:true
    ~duplicate_machine:true ()

let brute_of_rule = function
  | Mapping.Specialized -> Brute.specialized
  | Mapping.General -> Brute.general ?setup:None
  | Mapping.One_to_one -> Brute.one_to_one

let exact_prop inst =
  let n = Instance.task_count inst in
  let m = Instance.machines inst in
  let rules =
    [ Mapping.Specialized; Mapping.General ]
    @ (if m >= n then [ Mapping.One_to_one ] else [])
  in
  List.iter
    (fun rule ->
      let _, expected = brute_of_rule rule inst in
      let r = Dfs.solve ~rule inst in
      check r.Dfs.optimal "%s: search not optimal" (Mapping.rule_name rule);
      check
        (rel_close r.Dfs.period expected)
        "%s: dfs %.17g vs brute %.17g" (Mapping.rule_name rule) r.Dfs.period expected;
      check
        (Mapping.satisfies inst r.Dfs.mapping rule)
        "%s: reported mapping violates the rule" (Mapping.rule_name rule);
      check
        (rel_close (Period.period inst r.Dfs.mapping) r.Dfs.period)
        "%s: reported period %.17g vs evaluation of reported mapping %.17g"
        (Mapping.rule_name rule) r.Dfs.period
        (Period.period inst r.Dfs.mapping))
    rules

let exact_oracle =
  Oracle
    {
      name = "exact-vs-brute";
      description = "Dfs.solve = Brute under all three rules on small instances";
      quick_cases = 200;
      gen = exact_gen;
      prop = prop_of exact_prop;
      print = Instances.print_instance;
    }

(* ------------------------------------------------------------------ *)
(* lp-vs-exact: the splitting LP bound never exceeds the true optimum   *)
(* ------------------------------------------------------------------ *)

let lp_gen =
  Instances.instance ~max_tasks:5 ~max_machines:4 ~machines_cover_types:true ()

let lp_prop inst =
  let _, optimum = Brute.general inst in
  let lp =
    match Splitting.solve inst with
    | Ok r -> r
    | Error e -> failf "LP failed: %s" (Splitting.describe_error e)
  in
  check (lp.Splitting.period > 0.0) "LP period %.17g not positive" lp.Splitting.period;
  check
    (lp.Splitting.period <= optimum *. (1.0 +. 1e-9))
    "LP bound %.17g exceeds exact optimum %.17g" lp.Splitting.period optimum;
  match Splitting.solve_exact inst with
  | Error e -> failf "exact LP failed: %s" (Splitting.describe_error e)
  | Ok exact ->
    check
      (rel_close ~tol:1e-6 lp.Splitting.period exact)
      "float LP %.17g vs exact-rational LP %.17g" lp.Splitting.period exact;
    check
      (exact <= optimum *. (1.0 +. 1e-12))
      "certified LP bound %.17g exceeds exact optimum %.17g" exact optimum

let lp_oracle =
  Oracle
    {
      name = "lp-vs-exact";
      description = "Splitting LP certified bound <= exact optimum";
      quick_cases = 150;
      gen = lp_gen;
      prop = prop_of lp_prop;
      print = Instances.print_instance;
    }

(* ------------------------------------------------------------------ *)
(* sparse-vs-dense: the revised-simplex core against the dense tableau  *)
(* ------------------------------------------------------------------ *)

(* Same standardized throughput-form system through both simplex cores:
   the sparse revised path (LU basis, eta updates) and the dense-tableau
   baseline must reach the same verdict, and the same objective to float
   tolerance when both are optimal.  Paths differ in pivot order, so the
   solutions may sit on different optimal vertices — only the objective
   is compared. *)

let sparse_dense_gen =
  Instances.instance ~max_tasks:6 ~max_machines:4 ~machines_cover_types:true ()

let sparse_dense_prop inst =
  let module FS = Mf_lp.Simplex.Float_solver in
  let module FSp = Mf_lp.Sparse.Make (Mf_numeric.Ordered_field.Float_field) in
  let module Std = Mf_lp.Standardize in
  match Std.build (Mf_lp.Splitting.model inst) with
  | None -> failf "standardization failed"
  | Some std ->
    let s = FS.solve_sparse_detailed ~a:std.Std.a ~b:std.Std.b ~c:std.Std.c () in
    let d =
      FS.solve_dense_detailed ~a:(FSp.to_dense std.Std.a) ~b:std.Std.b ~c:std.Std.c ()
    in
    let outcome_name = function
      | FS.Optimal _ -> "optimal"
      | FS.Infeasible -> "infeasible"
      | FS.Unbounded -> "unbounded"
      | FS.Stalled -> "stalled"
    in
    (match (s.FS.outcome, d.FS.outcome) with
    | FS.Optimal (_, so), FS.Optimal (_, dobj) ->
      check (rel_close ~tol:1e-6 so dobj) "sparse objective %.17g vs dense %.17g" so dobj
    | FS.Infeasible, FS.Infeasible | FS.Unbounded, FS.Unbounded -> ()
    | FS.Stalled, _ | _, FS.Stalled ->
      (* a stall is a budget artifact, not a verdict — no disagreement *)
      ()
    | a, b -> failf "sparse %s vs dense %s" (outcome_name a) (outcome_name b));
    (* the splitting system always admits a positive-throughput optimum *)
    check
      (match s.FS.outcome with FS.Optimal _ -> true | _ -> false)
      "sparse path did not close a splitting LP (%s)" (outcome_name s.FS.outcome)

let sparse_dense_oracle =
  Oracle
    {
      name = "sparse-vs-dense";
      description = "revised sparse simplex agrees with the dense tableau core";
      quick_cases = 120;
      gen = sparse_dense_gen;
      prop = prop_of sparse_dense_prop;
      print = Instances.print_instance;
    }

(* ------------------------------------------------------------------ *)
(* sim-vs-analytic: simulated throughput and loss rates in z = 6 bands  *)
(* ------------------------------------------------------------------ *)

let sim_gen =
  let* inst =
    Instances.instance ~max_tasks:5 ~max_machines:3 ~machines_cover_types:true
      ~forest:false ~kmax:2 ()
  in
  let* mp = Instances.allocation inst in
  let* seed = no_shrink (int_range 0 1_000_000) in
  return (inst, mp, seed)

(* Target ~2500 outputs inside the measurement window.  Throughput band:
   z = 6 (one-sided tail < 1e-9) under the documented cv <= 1 assumption
   for the inter-output time, plus 1% systematic slack for the fill
   transient and an 8-output floor for window-boundary effects.  Loss
   band: Wilson score interval at z = 6 on whole-run execution counts;
   f = 0 tasks must lose exactly nothing.  See DESIGN.md section 12 for
   the false-positive budget accounting. *)
let check_loss_bands inst mp (r : Desim.result) ~seed =
  for i = 0 to Instance.task_count inst - 1 do
    let fi = Instance.f inst i (Mapping.machine mp i) in
    let e = r.Desim.executions.(i) and l = r.Desim.lost.(i) in
    if fi = 0.0 then
      check (l = 0) "task %d: %d losses with configured f = 0" i l
    else if e > 0 then begin
      let z = 6.0 in
      let e' = float_of_int e in
      let phat = float_of_int l /. e' in
      let denom = 1.0 +. (z *. z /. e') in
      let centre = (phat +. (z *. z /. (2.0 *. e'))) /. denom in
      let half =
        z /. denom
        *. sqrt ((phat *. (1.0 -. phat) /. e') +. (z *. z /. (4.0 *. e' *. e')))
      in
      check
        (Float.abs (fi -. centre) <= half)
        "task %d: configured f = %.6f outside Wilson band %.6f +- %.6f (%d/%d, seed %d)"
        i fi centre half l e seed
    end
  done

let sim_prop (inst, mp, seed) =
  let p = Period.period inst mp in
  let horizon = p *. 3125.0 in
  let r = Desim.run ~horizon ~seed inst mp in
  let expected = r.Desim.window /. p in
  let band = (6.0 *. sqrt expected) +. (0.01 *. expected) +. 8.0 in
  check
    (Float.abs (float_of_int r.Desim.outputs -. expected) <= band)
    "outputs %d vs expected %.1f (band %.1f, seed %d)" r.Desim.outputs expected band
    seed;
  check_loss_bands inst mp r ~seed

let sim_oracle =
  Oracle
    {
      name = "sim-vs-analytic";
      description = "Desim throughput and loss rates within z = 6 bands of 1/period";
      quick_cases = 120;
      gen = sim_gen;
      prop = prop_of sim_prop;
      print = (fun (i, m, _) -> Instances.print_with_mapping i m);
    }

(* ------------------------------------------------------------------ *)
(* sim-breakdowns: the dynamic model against availability analytics     *)
(* ------------------------------------------------------------------ *)

let simbd_gen =
  let* inst =
    Instances.instance ~max_tasks:5 ~max_machines:3 ~machines_cover_types:true
      ~forest:false ~kmax:2 ()
  in
  let* mp = Instances.allocation inst in
  let* profile = Instances.breakdown_profile inst in
  let* seed = no_shrink (int_range 0 1_000_000) in
  return (inst, mp, profile, seed)

(* Three layers of z = 6 bands around the breakdown analytics:

   - {b throughput} — long-run output rate min_u avail(u) / load(u)
     (exact for wear 0, unbounded buffers and uncontended crews: machine
     [u] fails at rate 1/mtbf per unit of {e busy} time, so its capacity
     constraint is tp . load_u . (1 + mttr/mtbf) <= 1, i.e.
     tp <= avail_u / load_u, binding at the saturated bottleneck).  The
     variance term sums, per machine, the renewal-process asymptotic
     std of cumulative up time, conservatively bounded by
     sqrt(2 a (1-a) (mtbf+mttr) W) in window units and translated to
     outputs through that machine's load; 2% systematic slack plus a
     16-output floor absorb the fill transient and window boundaries.
   - {b breakdown counts} — with wear 0 the hazard thresholds are i.i.d.
     Exp(mtbf) consumed by busy time, so given the measured busy time
     the count is exactly Poisson(busy/mtbf).
   - {b downtime} — given the count, total downtime is within a
     Gamma(count, mttr) band of count . mttr (the +12 mttr slack covers
     the one repair the horizon can truncate); mttr = 0 laws fold
     repairs into the interrupted busy segment and must leave downtime
     {e exactly} zero.

   The per-task Wilson loss bands also re-run here: task losses are
   Bernoulli per execution regardless of availability, and the check
   pins the breakdown RNG streams' independence from the loss stream. *)
let simbd_prop (inst, mp, profile, seed) =
  let p = Period.period inst mp in
  let laws =
    Array.map
      (fun (mult, ratio) ->
        { Breakdown.mtbf = mult *. p; mttr = ratio *. mult *. p; wear = 0.0 })
      profile
  in
  let bd = Breakdown.make laws in
  let horizon = p *. 12288.0 in
  let r = Desim.run ~breakdowns:bd ~horizon ~seed inst mp in
  let w = r.Desim.window in
  let expected = w *. Sim_metrics.adjusted_throughput inst mp bd in
  let loads = Period.machine_periods inst mp in
  let var = ref 0.0 in
  Array.iteri
    (fun u (l : Breakdown.law) ->
      if loads.(u) > 0.0 && l.Breakdown.mttr > 0.0 then begin
        let a = Breakdown.availability l in
        let cycle = l.Breakdown.mtbf +. l.Breakdown.mttr in
        let s = w /. loads.(u) *. sqrt (2.0 *. a *. (1.0 -. a) *. cycle /. w) in
        var := !var +. (s *. s)
      end)
    laws;
  let band = (6.0 *. sqrt (expected +. !var)) +. (0.02 *. expected) +. 16.0 in
  check
    (Float.abs (float_of_int r.Desim.outputs -. expected) <= band)
    "outputs %d vs availability-adjusted %.1f (band %.1f, seed %d)" r.Desim.outputs
    expected band seed;
  for u = 0 to Instance.machines inst - 1 do
    let l = laws.(u) in
    let lambda = r.Desim.busy.(u) /. l.Breakdown.mtbf in
    let n = float_of_int r.Desim.breakdowns.(u) in
    let cband = (6.0 *. sqrt (lambda +. 1.0)) +. 8.0 in
    check
      (Float.abs (n -. lambda) <= cband)
      "machine %d: %d breakdowns vs busy/mtbf = %.1f (band %.1f, seed %d)" u
      r.Desim.breakdowns.(u) lambda cband seed;
    if l.Breakdown.mttr = 0.0 then
      check
        (r.Desim.downtime.(u) = 0.0)
        "machine %d: instant repairs left downtime %g (seed %d)" u
        r.Desim.downtime.(u) seed
    else begin
      let dband = l.Breakdown.mttr *. ((6.0 *. sqrt (n +. 1.0)) +. 12.0) in
      check
        (Float.abs (r.Desim.downtime.(u) -. (n *. l.Breakdown.mttr)) <= dband)
        "machine %d: downtime %.1f vs %d repairs x mttr %.1f (band %.1f, seed %d)" u
        r.Desim.downtime.(u) r.Desim.breakdowns.(u) l.Breakdown.mttr dband seed
    end
  done;
  check_loss_bands inst mp r ~seed

let simbd_oracle =
  Oracle
    {
      name = "sim-breakdowns";
      description =
        "dynamic Desim: throughput, breakdown counts and downtime within z = 6 \
         bands of the availability analytics";
      quick_cases = 40;
      gen = simbd_gen;
      prop = prop_of simbd_prop;
      print = (fun (i, m, prof, _) -> Instances.print_breakdown_case i m prof);
    }

(* ------------------------------------------------------------------ *)
(* remap-safety: the online re-mapper under breakdown/repair scripts    *)
(* ------------------------------------------------------------------ *)

let remap_gen =
  let* inst =
    Instances.instance ~max_tasks:6 ~max_machines:4 ~machines_cover_types:true ()
  in
  let* mp = Instances.specialized_allocation inst in
  let* script = Instances.avail_script ~max_ops:6 in
  let* budget = choose [| return 0; return 60; return Plan.default_budget |] in
  return (inst, mp, script, budget)

(* Interprets the availability script the way the simulator would drive
   the re-mapper — one {!Plan.repair} per change, committed moves folded
   into the live mapping — and checks, at every step:

   - every committed assignment targets a surviving machine and the
     resulting live mapping is feasible over the survivors {e and} still
     specialized;
   - the plan's claimed period matches a from-scratch evaluation, never
     exceeds its own greedy phase, and — when nothing was stranded —
     never worsens the do-nothing incumbent;
   - a [None] (infeasible) verdict is honest: something was stranded,
     and not every stranded task still had a dedicated same-type
     surviving host (such a host stays movable throughout the greedy
     phase, so its existence for all stranded tasks guarantees a plan);
   - finally, replaying {e every} committed move on one journaled
     {!Mf_eval.State} and undoing them all restores the original
     allocation and its period bit-for-bit. *)
let remap_prop (inst, mp, script, budget) =
  let n = Instance.task_count inst and m = Instance.machines inst in
  let wf = Instance.workflow inst in
  let ops = Instances.decode_avail ~machines:m script in
  let down = Array.make m false in
  let live = ref (Mapping.to_array mp) in
  let committed = ref [] in
  Array.iter
    (fun op ->
      (match op with
      | Instances.Down u -> down.(u) <- true
      | Instances.Up u -> down.(u) <- false);
      let stranded = Array.exists (fun u -> down.(u)) !live in
      match Plan.repair ~budget inst ~mapping:!live ~down with
      | None ->
        check stranded "planner declared infeasibility with nothing stranded";
        (* a machine whose surviving residents are all of one type keeps
           accepting that type for the whole greedy phase, so if every
           stranded task has one the plan cannot fail *)
        let dedicated i =
          let ty = Workflow.ttype wf i in
          let ok = ref false in
          for v = 0 to m - 1 do
            if not down.(v) then begin
              let resident = ref false and foreign = ref false in
              Array.iteri
                (fun j uj ->
                  if j <> i && uj = v then
                    if Workflow.ttype wf j = ty then resident := true
                    else foreign := true)
                !live;
              if !resident && not !foreign then ok := true
            end
          done;
          !ok
        in
        let all_dedicated = ref true in
        Array.iteri
          (fun i u -> if down.(u) && not (dedicated i) then all_dedicated := false)
          !live;
        check (not !all_dedicated)
          "planner declared infeasibility though every stranded task has a \
           dedicated same-type surviving host"
      | Some plan ->
        let next = Array.copy !live in
        Array.iter
          (fun (i, v) ->
            check (0 <= i && i < n) "plan moves unknown task %d" i;
            check (0 <= v && v < m) "plan targets unknown machine %d" v;
            check (not down.(v)) "plan assigns T%d to the down machine M%d" i v;
            next.(i) <- v)
          plan.Plan.moves;
        Array.iteri
          (fun i u -> check (not down.(u)) "plan left T%d on the down machine M%d" i u)
          next;
        check
          (Mapping.satisfies inst (Mapping.of_array inst next) Mapping.Specialized)
          "plan broke the specialized rule";
        let pnew = Period.period inst (Mapping.of_array inst next) in
        check (rel_close plan.Plan.period pnew)
          "plan claims period %.17g but the mapping evaluates to %.17g"
          plan.Plan.period pnew;
        check
          (plan.Plan.period <= plan.Plan.greedy_period *. (1.0 +. 1e-12))
          "refinement worsened the greedy plan: %.17g > %.17g" plan.Plan.period
          plan.Plan.greedy_period;
        if not stranded then begin
          let live_p = Period.period inst (Mapping.of_array inst !live) in
          check
            (plan.Plan.period <= live_p *. (1.0 +. 1e-12))
            "re-map worsened the period vs do-nothing: %.17g > %.17g"
            plan.Plan.period live_p
        end;
        committed := plan.Plan.moves :: !committed;
        live := next)
    ops;
  let st = State.of_mapping inst mp in
  let p0 = State.period st in
  let d0 = State.undo_depth st in
  List.iter
    (Array.iter (fun (i, v) -> State.apply_move st ~task:i ~machine:v))
    (List.rev !committed);
  while State.undo_depth st > d0 do
    State.undo st
  done;
  check
    (State.to_array st = Mapping.to_array mp)
    "journal undo did not restore the original allocation";
  check
    (Int64.bits_of_float (State.period st) = Int64.bits_of_float p0)
    "journal undo period %h is not bit-identical to the fresh build %h"
    (State.period st) p0;
  State.check st

let remap_oracle =
  Oracle
    {
      name = "remap-safety";
      description =
        "online re-mapper under breakdown/repair scripts: survivor-feasible, \
         rule-preserving, never worse than do-nothing, journal fully undoes";
      quick_cases = 120;
      gen = remap_gen;
      prop = prop_of remap_prop;
      print = (fun (i, m, s, b) -> Instances.print_remap_case i m s ~budget:b);
    }

(* ------------------------------------------------------------------ *)
(* metamorphic: permutation invariance, w-scaling, f-monotonicity       *)
(* ------------------------------------------------------------------ *)

let w_matrix inst =
  let n = Instance.task_count inst and m = Instance.machines inst in
  Array.init n (fun i -> Array.init m (Instance.w inst i))

let f_matrix inst =
  let n = Instance.task_count inst and m = Instance.machines inst in
  Array.init n (fun i -> Array.init m (Instance.f inst i))

let meta_gen =
  let* inst =
    Instances.instance ~max_tasks:6 ~max_machines:4 ~duplicate_machine:true ()
  in
  let* mp = Instances.allocation inst in
  let* idx = permutation_indices (Instance.machines inst) in
  let* k = int_range 0 8 in
  let* task = int_range 0 (Instance.task_count inst - 1) in
  let* bump = int_range 1 8 in
  return (inst, mp, apply_permutation_indices idx, k, task, bump)

let meta_prop (inst, mp, perm, k, task, bump) =
  let n = Instance.task_count inst and m = Instance.machines inst in
  let p = Period.period inst mp in
  let w = w_matrix inst and f = f_matrix inst in
  let wf = Instance.workflow inst in
  (* (a) Renaming machines by any permutation — and the mapping with
     them — changes nothing.  Each machine's Kahan sum sees the same
     operands in the same (task) order, so the equality is bit-exact. *)
  let permute row =
    let out = Array.make m 0.0 in
    Array.iteri (fun u v -> out.(v) <- row.(u)) perm;
    out
  in
  let inst' =
    Instance.create ~workflow:wf ~machines:m ~w:(Array.map permute w)
      ~f:(Array.map permute f)
  in
  let mp' =
    Mapping.of_array inst'
      (Array.map (fun u -> perm.(u)) (Mapping.to_array mp))
  in
  let p' = Period.period inst' mp' in
  check (p' = p) "machine permutation changed the period: %h vs %h" p' p;
  (* Symmetry.machine_classes must agree exactly with bit-identical
     column equality (the generator plants duplicated columns). *)
  let classes = Symmetry.machine_classes inst in
  let columns_equal u v =
    let eq = ref true in
    for i = 0 to n - 1 do
      if w.(i).(u) <> w.(i).(v) || f.(i).(u) <> f.(i).(v) then eq := false
    done;
    !eq
  in
  for u = 0 to m - 1 do
    check (classes.(u) <= u) "class representative %d above member %d" classes.(u) u;
    for v = 0 to m - 1 do
      check
        (classes.(u) = classes.(v) = columns_equal u v)
        "machine_classes disagrees with column equality on (%d, %d)" u v
    done
  done;
  (* (b) Scaling every workload by 2^k scales the period by exactly 2^k:
     every intermediate float scales by a power of two, which only
     shifts exponents. *)
  let scale = Float.ldexp 1.0 k in
  let inst_scaled =
    Instance.create ~workflow:wf ~machines:m
      ~w:(Array.map (Array.map (fun x -> x *. scale)) w)
      ~f
  in
  let p_scaled = Period.period inst_scaled mp in
  check (p_scaled = p *. scale) "w * 2^%d scaled period to %h, expected %h" k p_scaled
    (p *. scale);
  (* (c) Raising the failure rate of the machine actually running [task]
     can only raise the period (never increases throughput). *)
  let u = Mapping.machine mp task in
  let f_raised = Array.map Array.copy f in
  f_raised.(task).(u) <-
    Float.min 0.96875 (f_raised.(task).(u) +. (float_of_int bump /. 64.0));
  let inst_raised = Instance.create ~workflow:wf ~machines:m ~w ~f:f_raised in
  let p_raised = Period.period inst_raised mp in
  check
    (p_raised >= p *. (1.0 -. 1e-12))
    "raising f(%d, %d) to %.6f lowered the period: %.17g -> %.17g" task u
    f_raised.(task).(u) p p_raised

let meta_oracle =
  Oracle
    {
      name = "metamorphic";
      description =
        "machine-permutation invariance, 2^k w-scaling, f-monotonicity";
      quick_cases = 250;
      gen = meta_gen;
      prop = prop_of meta_prop;
      print = (fun (i, m, _, _, _, _) -> Instances.print_with_mapping i m);
    }

(* ------------------------------------------------------------------ *)
(* cache: canonical answer-cache hits vs fresh portfolio solves         *)
(* ------------------------------------------------------------------ *)

module Solver = Mf_solve.Solver
module Portfolio = Mf_solve.Portfolio
module Cache = Mf_solve.Cache

let cache_gen =
  let* inst =
    Instances.instance ~max_tasks:6 ~max_machines:4 ~machines_cover_types:true
      ~duplicate_machine:true ()
  in
  let* midx = permutation_indices (Instance.machines inst) in
  let* tidx = permutation_indices (Instance.type_count inst) in
  return (inst, apply_permutation_indices midx, apply_permutation_indices tidx)

let opt_bits = Option.map Int64.bits_of_float

(* Warm the cache with a near-duplicate (machines permuted, type labels
   relabeled), then solve the original through the cache: the lookup
   must hit, and the answer must be bit-for-bit the fresh no-cache
   solve — same status, same period and bound bits, same mapping, same
   engine trail — with only the cache_hit flag differing. *)
let cache_prop (inst, mperm, tperm) =
  let n = Instance.task_count inst and m = Instance.machines inst in
  let wf = Instance.workflow inst in
  let permute row =
    let out = Array.make m 0.0 in
    Array.iteri (fun u v -> out.(v) <- row.(u)) mperm;
    out
  in
  let inst' =
    Instance.create
      ~workflow:
        (Workflow.in_forest
           ~types:(Array.init n (fun i -> tperm.(Workflow.ttype wf i)))
           ~successor:(Array.init n (Workflow.successor wf)))
      ~machines:m
      ~w:(Array.map permute (w_matrix inst))
      ~f:(Array.map permute (f_matrix inst))
  in
  let req i = Solver.request_exn ~budget:(Solver.Nodes 100_000) i in
  let cache = Cache.create () in
  let warm = Portfolio.solve ~cache (req inst') in
  check (not warm.Solver.stats.Solver.cache_hit) "warm-up solve reported a cache hit";
  let cached = Portfolio.solve ~cache (req inst) in
  let fresh = Portfolio.solve (req inst) in
  check cached.Solver.stats.Solver.cache_hit
    "near-duplicate warm-up did not make the original hit the cache";
  let s = Cache.stats cache in
  check
    (s.Cache.hits = 1 && s.Cache.misses = 1)
    "cache counters: %d hits / %d misses, expected 1 / 1" s.Cache.hits s.Cache.misses;
  check (cached.Solver.status = fresh.Solver.status) "cached status differs from fresh";
  check
    (opt_bits cached.Solver.period = opt_bits fresh.Solver.period)
    "cached period not bit-identical to fresh";
  check
    (opt_bits cached.Solver.lower_bound = opt_bits fresh.Solver.lower_bound)
    "cached lower bound not bit-identical to fresh";
  check
    (Option.map Mapping.to_array cached.Solver.mapping
    = Option.map Mapping.to_array fresh.Solver.mapping)
    "cached mapping differs from fresh";
  check (cached.Solver.engines = fresh.Solver.engines) "cached engine trail differs";
  check
    ({ cached.Solver.stats with Solver.cache_hit = false } = fresh.Solver.stats)
    "cached stats differ from fresh beyond the cache_hit flag";
  (* and the mapped-back answer must actually be a valid mapping of the
     original instance achieving the reported period (1e-9 relative, the
     Dfs convention: its incremental evaluation can sit 1 ulp off the
     from-scratch period) *)
  match (cached.Solver.mapping, cached.Solver.period) with
  | Some mp, Some p ->
    check
      (rel_close (Period.period inst mp) p)
      "cached mapping's period %h does not match reported %h" (Period.period inst mp) p
  | _ -> ()

let cache_oracle =
  Oracle
    {
      name = "cache";
      description =
        "answer-cache hits across machine permutations and type relabelings are \
         bit-identical to fresh portfolio solves";
      quick_cases = 60;
      gen = cache_gen;
      prop = prop_of cache_prop;
      print = (fun (i, _, _) -> Instances.print_instance i);
    }

(* ------------------------------------------------------------------ *)
(* pool: map_array = serial map for every (jobs, chunk), exceptions     *)
(* included                                                             *)
(* ------------------------------------------------------------------ *)

module Mpool = Mf_parallel.Pool

exception Pool_boom of int

(* Pools are created once per size and cached for the whole run, so the
   matrix exercises batch submission and stealing — not domain
   spawn/join churn.  [Mpool.create] (not [shared]) on purpose: [shared]
   clamps to the physical core count, and on a 1-core CI host that would
   quietly reduce every case to the serial fast path, fuzzing nothing. *)
let pool_cache : (int, Mpool.t) Hashtbl.t = Hashtbl.create 4

let pool_for jobs =
  match Hashtbl.find_opt pool_cache jobs with
  | Some p -> p
  | None ->
    let p = Mpool.create ~domains:jobs in
    Hashtbl.add pool_cache jobs p;
    p

let pool_gen =
  let* n = int_range 0 150 in
  let* jobs = int_range 1 4 in
  let* chunk = int_range 1 40 in
  let* fail_mod = int_range 0 7 in
  return (n, jobs, chunk, fail_mod)

let pool_prop (n, jobs, chunk, fail_mod) =
  let input = Array.init n (fun i -> i) in
  let f i = ((i * 31) mod 97) + (i mod (jobs + chunk)) in
  let pool = pool_for jobs in
  let out = Mpool.map_array ~chunk pool ~f input in
  check
    (out = Array.map f input)
    "map_array (jobs=%d, chunk=%d, n=%d) differs from serial map" jobs chunk n;
  (* Non-commutative combine: any ordering leak breaks the equality. *)
  let serial_cat = Array.fold_left (fun acc i -> acc ^ string_of_int (f i)) "" input in
  let pooled_cat =
    Mpool.map_reduce ~chunk pool ~f:(fun i -> string_of_int (f i)) ~combine:( ^ ) ~init:""
      input
  in
  check (pooled_cat = serial_cat) "map_reduce (jobs=%d, chunk=%d, n=%d) out of order" jobs
    chunk n;
  (* Failure injection: the raised exception must be the smallest failing
     index — exactly what serial Array.map would raise — for every
     (jobs, chunk) schedule. *)
  if fail_mod > 0 then begin
    let g i = if i mod fail_mod = fail_mod - 1 then raise (Pool_boom i) else i in
    match Mpool.map_array ~chunk pool ~f:g input with
    | _ ->
      check (fail_mod - 1 >= n)
        "no exception raised (jobs=%d, chunk=%d, n=%d, fail_mod=%d)" jobs chunk n fail_mod
    | exception Pool_boom i ->
      check
        (i = fail_mod - 1)
        "raised index %d, smallest failing is %d (jobs=%d, chunk=%d, n=%d)" i (fail_mod - 1)
        jobs chunk n
  end

let pool_oracle =
  Oracle
    {
      name = "pool";
      description =
        "Pool.map_array/map_reduce = serial for every (jobs, chunk), smallest-index \
         exception included";
      quick_cases = 120;
      gen = pool_gen;
      prop = prop_of pool_prop;
      print =
        (fun (n, jobs, chunk, fail_mod) ->
          Printf.sprintf "n=%d jobs=%d chunk=%d fail_mod=%d" n jobs chunk fail_mod);
    }

(* ------------------------------------------------------------------ *)
(* daemon: random request interleavings over a socketpair               *)
(* ------------------------------------------------------------------ *)

module Dprotocol = Mf_daemon.Protocol
module Dserver = Mf_daemon.Server

(* One wire action: a well-formed solve, a malformed line (with just
   enough framing to stay parseable past it), or a solve immediately
   followed by its CANCEL. *)
type daemon_action =
  | Dgood of Instance.t * int (* node budget *)
  | Dbad of int (* index into [daemon_malformed] *)
  | Dcancel of Instance.t

(* Each entry is the full text to send; every one elicits exactly one
   ERR.  Malformed SOLVE lines carry an immediate [end] so the server's
   block skip consumes one line and framing survives. *)
let daemon_malformed =
  [|
    "NOPE 1\n";
    "SOLVE\nend\n";
    "SOLVE x budget=Z9\nend\n";
    "SOLVE x budget=\nend\n";
    "SOLVE x rule=quantum\nend\n";
    "CANCEL ghost\n";
    "SOLVE x seed=abc\nend\n";
  |]

let daemon_gen =
  let action =
    frequency
      [
        ( 4,
          let* inst = Instances.instance ~max_tasks:6 ~max_machines:3 () in
          let* nodes = int_range 500 50_000 in
          return (Dgood (inst, nodes)) );
        ( 2,
          let* k = int_range 0 (Array.length daemon_malformed - 1) in
          return (Dbad k) );
        ( 2,
          let* inst = Instances.instance ~max_tasks:6 ~max_machines:3 () in
          return (Dcancel inst) );
      ]
  in
  let+ actions = array_sized ~min:1 ~max:5 action in
  Array.to_list actions

let daemon_print actions =
  String.concat "; "
    (List.map
       (function
         | Dgood (inst, nodes) ->
           Printf.sprintf "good(n=%d,m=%d,budget=%d)" (Instance.task_count inst)
             (Instance.machines inst) nodes
         | Dbad k -> Printf.sprintf "bad(%s)" (String.trim daemon_malformed.(k))
         | Dcancel inst ->
           Printf.sprintf "cancel(n=%d,m=%d)" (Instance.task_count inst)
             (Instance.machines inst))
       actions)

let daemon_req inst nodes = Solver.request_exn ~budget:(Solver.Nodes nodes) inst

(* The daemon contract under random interleavings: the server never
   crashes, every request line gets exactly one response, and every
   [OK] is byte-identical to the in-process portfolio solve of the same
   request (modulo the shared-cache [cached] flag). *)
let daemon_prop actions =
  let srv =
    Dserver.create ~config:{ Dserver.jobs = 1; cache_capacity = 64; workers = 2 } ()
  in
  let devnull = open_out "/dev/null" in
  Fun.protect
    ~finally:(fun () ->
      Dserver.shutdown srv devnull;
      close_out devnull)
    (fun () ->
      let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let reader =
        Thread.create
          (fun () ->
            let ic = Unix.in_channel_of_descr a in
            let oc = Unix.out_channel_of_descr a in
            (try Dserver.serve_client srv ic oc with Sys_error _ | End_of_file -> ());
            try Unix.close a with Unix.Unix_error _ -> ())
          ()
      in
      let ic = Unix.in_channel_of_descr b in
      let oc = Unix.out_channel_of_descr b in
      let send s = output_string oc s in
      (* send the whole interleaving, then QUIT as the drain barrier *)
      let expected_lines =
        List.fold_left
          (fun acc -> function
            | Dgood _ -> acc + 1
            | Dbad _ -> acc + 1
            | Dcancel _ -> acc + 2 (* CANCELOK|ERR + OK|CANCELLED *))
          0 actions
      in
      List.iteri
        (fun i act ->
          match act with
          | Dgood (inst, nodes) ->
            send (Dprotocol.render_solve ~id:(Printf.sprintf "g%d" i) (daemon_req inst nodes))
          | Dbad k -> send daemon_malformed.(k)
          | Dcancel inst ->
            let id = Printf.sprintf "k%d" i in
            send (Dprotocol.render_solve ~id (daemon_req inst 50_000));
            send (Printf.sprintf "CANCEL %s\n" id))
        actions;
      send "QUIT\n";
      flush oc;
      let lines = List.init (expected_lines + 1) (fun _ -> input_line ic) in
      (try Unix.close b with Unix.Unix_error _ -> ());
      Thread.join reader;
      (* exactly one response per request: after [expected_lines]
         responses the next line must be the BYE of the QUIT *)
      let responses, bye =
        match List.rev lines with
        | last :: rev -> (List.rev rev, last)
        | [] -> assert false
      in
      check (bye = "BYE") "expected BYE after %d responses, got %S" expected_lines bye;
      let answers_for id =
        List.filter
          (fun l ->
            match String.split_on_char ' ' l with
            | ("OK" | "ERR" | "CANCELLED" | "CANCELOK") :: rid :: _ -> rid = id
            | _ -> false)
          responses
      in
      List.iteri
        (fun i act ->
          match act with
          | Dgood (inst, nodes) ->
            let id = Printf.sprintf "g%d" i in
            let got = answers_for id in
            check (List.length got = 1) "request %s got %d responses" id (List.length got);
            let expected =
              Dprotocol.render_outcome ~id (Portfolio.solve (daemon_req inst nodes))
            in
            let got = Dprotocol.mask_cached (List.hd got) in
            check (got = expected) "response for %s differs from in-process solve:\n%s\n%s" id
              got expected
          | Dbad _ -> ()
          | Dcancel inst ->
            let id = Printf.sprintf "k%d" i in
            let got = answers_for id in
            check (List.length got = 2) "cancelled request %s got %d responses" id
              (List.length got);
            let solve_answers, cancel_answers =
              List.partition
                (fun l ->
                  String.starts_with ~prefix:"OK " l
                  || String.starts_with ~prefix:"CANCELLED " l)
                got
            in
            check
              (List.length solve_answers = 1)
              "request %s: expected one OK/CANCELLED, got %d" id (List.length solve_answers);
            check
              (List.length cancel_answers = 1)
              "request %s: expected one CANCELOK/ERR, got %d" id (List.length cancel_answers);
            (* a solve that outran its CANCEL must still be exact *)
            List.iter
              (fun l ->
                if String.starts_with ~prefix:"OK " l then
                  let expected =
                    Dprotocol.render_outcome ~id (Portfolio.solve (daemon_req inst 50_000))
                  in
                  check
                    (Dprotocol.mask_cached l = expected)
                    "uncancelled response for %s differs from in-process solve" id)
              solve_answers)
        actions;
      (* the malformed count falls out: everything unclaimed is an ERR *)
      let claimed =
        List.concat_map
          (fun (i, act) ->
            match act with
            | Dgood _ -> answers_for (Printf.sprintf "g%d" i)
            | Dcancel _ -> answers_for (Printf.sprintf "k%d" i)
            | Dbad _ -> [])
          (List.mapi (fun i a -> (i, a)) actions)
      in
      let unclaimed = List.filter (fun l -> not (List.memq l claimed)) responses in
      List.iter
        (fun l ->
          check (String.starts_with ~prefix:"ERR " l) "unclaimed non-error response %S" l)
        unclaimed)

let daemon_oracle =
  Oracle
    {
      name = "daemon";
      description =
        "random interleavings of well-formed, malformed and cancelled requests over a \
         socketpair: no crash, one response per request, OK lines byte-identical to \
         in-process solves";
      quick_cases = 30;
      gen = daemon_gen;
      prop = prop_of daemon_prop;
      print = daemon_print;
    }

(* ------------------------------------------------------------------ *)
(* Matrix plumbing                                                      *)
(* ------------------------------------------------------------------ *)

let all =
  [
    eval_oracle;
    heuristics_oracle;
    exact_oracle;
    lp_oracle;
    sparse_dense_oracle;
    sim_oracle;
    simbd_oracle;
    remap_oracle;
    meta_oracle;
    cache_oracle;
    pool_oracle;
    daemon_oracle;
  ]

let find n = List.find_opt (fun o -> name o = n) all

let outcome_of ~name ~print (r : _ Prop.report) =
  {
    oracle = name;
    cases = r.Prop.cases;
    failed =
      Option.map
        (fun (f : _ Prop.failure) ->
          {
            case_index = f.Prop.case_index;
            case_seed = f.Prop.case_seed;
            shrink_steps = f.Prop.shrink_steps;
            message = f.Prop.message;
            repr = print f.Prop.value;
          })
        r.Prop.failure;
  }

let run ?count ~seed (Oracle o) =
  let count = Option.value count ~default:o.quick_cases in
  outcome_of ~name:o.name ~print:o.print
    (Prop.check ~count ~name:o.name ~seed o.gen o.prop)

let replay (Oracle o) ~case_seed =
  outcome_of ~name:o.name ~print:o.print
    (Prop.check_case ~name:o.name ~case_seed o.gen o.prop)

(* ------------------------------------------------------------------ *)
(* Canary                                                               *)
(* ------------------------------------------------------------------ *)

(* A local copy of the product-count recurrence with the success
   probability sign flipped — the mutation the harness must catch and
   shrink (never called by production code). *)
let buggy_period inst mp =
  let wf = Instance.workflow inst in
  let n = Instance.task_count inst in
  let x = Array.make n 0.0 in
  Array.iter
    (fun i ->
      let u = Mapping.machine mp i in
      let factor = 1.0 /. (1.0 +. Instance.f inst i u) in
      let downstream =
        match Workflow.successor wf i with None -> 1.0 | Some j -> x.(j)
      in
      x.(i) <- downstream *. factor)
    (Workflow.backward_order wf);
  let loads = Array.make (Instance.machines inst) 0.0 in
  for i = 0 to n - 1 do
    let u = Mapping.machine mp i in
    loads.(u) <- loads.(u) +. (x.(i) *. Instance.w inst i u)
  done;
  Array.fold_left Float.max 0.0 loads

let canary_gen =
  let* inst = Instances.instance ~max_tasks:8 ~max_machines:4 () in
  let* mp = Instances.allocation inst in
  return (inst, mp)

let canary_prop (inst, mp) =
  let reference = Period.period inst mp in
  let buggy = buggy_period inst mp in
  check (rel_close buggy reference)
    "mutated-sign evaluation %.17g disagrees with Period.period %.17g" buggy reference

let canary =
  Oracle
    {
      name = "canary";
      description = "injected-bug self-test: a 1/(1+f) period copy must be caught";
      quick_cases = 50;
      gen = canary_gen;
      prop = prop_of canary_prop;
      print = (fun (i, m) -> Instances.print_with_mapping i m);
    }

let canary_check ~seed =
  let r = Prop.check ~count:50 ~name:"canary" ~seed canary_gen (prop_of canary_prop) in
  match r.Prop.failure with
  | None -> Error "canary evaluation bug was NOT caught"
  | Some f ->
    let inst, _ = f.Prop.value in
    Ok (Instance.task_count inst, Instance.machines inst)

(* A second injected bug, for the dynamic layer: a re-mapper whose
   refinement pass forgets the availability filter.  The greedy phase
   (correct) empties the dead machine, which leaves it with load 0 —
   the most attractive move target the buggy refinement can find — so
   the planner re-assigns work to a machine that is down.  The
   remap-safety discipline (never assign to a down machine) must catch
   it and shrink the repro.  Never called by production code. *)
let buggy_remap inst ~mapping ~down =
  match Plan.repair inst ~mapping ~down with
  | None -> None
  | Some plan ->
    let next = Array.copy mapping in
    Array.iter (fun (i, v) -> next.(i) <- v) plan.Plan.moves;
    let st = State.of_mapping inst (Mapping.of_array inst next) in
    let n = Instance.task_count inst and m = Instance.machines inst in
    let current = State.period st in
    let best = ref None in
    for i = 0 to n - 1 do
      for v = 0 to m - 1 do
        (* the bug: no [not down.(v)] in this condition *)
        if v <> State.machine_of st i && State.move_allowed st ~task:i ~machine:v
        then begin
          let p = State.try_move st ~task:i ~machine:v in
          let better =
            match !best with
            | None -> p < current *. (1.0 -. 1e-12)
            | Some (_, _, bp) -> p < bp
          in
          if better then best := Some (i, v, p)
        end
      done
    done;
    (match !best with Some (i, v, _) -> next.(i) <- v | None -> ());
    Some next

let remap_canary_gen =
  let* inst =
    Instances.instance ~min_tasks:2 ~max_tasks:6 ~min_machines:2 ~max_machines:3
      ~machines_cover_types:true ()
  in
  let* mp = Instances.specialized_allocation inst in
  let* dead = int_range 0 (Instance.machines inst - 1) in
  return (inst, mp, dead)

let remap_canary_prop (inst, mp, dead) =
  let m = Instance.machines inst in
  let down = Array.make m false in
  down.(dead) <- true;
  match buggy_remap inst ~mapping:(Mapping.to_array mp) ~down with
  | None -> ()
  | Some next ->
    Array.iteri
      (fun i u -> check (not down.(u)) "re-mapper left T%d on the dead machine M%d" i u)
      next

let remap_canary_print (inst, mp, dead) =
  Printf.sprintf "%sdead machine M%d\n" (Instances.print_with_mapping inst mp) dead

let remap_canary =
  Oracle
    {
      name = "remap-canary";
      description =
        "injected-bug self-test: a re-mapper refinement missing the down filter \
         must be caught";
      quick_cases = 50;
      gen = remap_canary_gen;
      prop = prop_of remap_canary_prop;
      print = remap_canary_print;
    }

let remap_canary_check ~seed =
  let r =
    Prop.check ~count:50 ~name:"remap-canary" ~seed remap_canary_gen
      (prop_of remap_canary_prop)
  in
  match r.Prop.failure with
  | None -> Error "remap down-machine bug was NOT caught"
  | Some f ->
    let inst, _, _ = f.Prop.value in
    Ok (Instance.task_count inst, Instance.machines inst)
