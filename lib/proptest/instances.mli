(** Domain generators: in-forest workflows, heterogeneous instances,
    rule-respecting mappings, journaled move sequences — all with
    integrated shrinking, all valid by construction at every shrink step.

    Instances are {e dyadic}: processing times are small integers scaled
    by powers of two and failure rates live on the 1/64 grid, so every
    coefficient is exactly representable in binary floating point and in
    rationals (the same trick as the [lp-differential] suite).  Generated
    populations deliberately cover the regimes that have bitten solvers
    before: mixed per-machine scales, degenerate [f = 0] rows, repeated
    task-type failure profiles (the dominance-table trigger), machine
    columns duplicated bit-for-bit (the symmetry trigger), forests with
    several roots, and single-task / single-machine corner cases.

    This module also hosts the {e deterministic indexed families} the
    [dfs-differential] and [lp-differential] suites enumerate, so the
    fuzzer and those suites draw from one shared pool. *)

(** One step of a journaled evaluation sequence.  Interpreters skip an
    [Undo] issued against an empty journal. *)
type op =
  | Move of { task : int; machine : int }
  | Swap of { u : int; v : int }
  | Undo

val op_to_string : op -> string

(** One step of a breakdown/repair history (machine index). *)
type avail_op = Down of int | Up of int

val avail_op_to_string : avail_op -> string

(** {1 Shrinking generators} *)

(** [instance ()] draws a heterogeneous dyadic instance.  [max_types]
    bounds the drawn type count [p] (the actual [p] is derived from the
    drawn type labels, so it shrinks with them); [machines_cover_types]
    forces [m >= p] (heuristics and specialized solvers need it);
    [duplicate_machine] appends, with probability 1/2, one machine whose
    [(w, f)] column is a bit-identical copy of machine 0 — guaranteeing
    {!Mf_exact.Symmetry.machine_classes} coverage.  [forest] (default
    true) permits several sinks; pass [false] for the paper's single
    final product (the simulation oracle needs it: a machine hosting two
    independent sinks may pace them unevenly, which the analytic period
    does not model).  [kmax] caps the power-of-two machine scale. *)
val instance :
  ?min_tasks:int ->
  ?max_tasks:int ->
  ?max_types:int ->
  ?min_machines:int ->
  ?max_machines:int ->
  ?machines_cover_types:bool ->
  ?duplicate_machine:bool ->
  ?forest:bool ->
  ?kmax:int ->
  unit ->
  Mf_core.Instance.t Gen.t

(** [allocation inst] draws an arbitrary (general-rule) mapping;
    machines shrink toward index 0. *)
val allocation : Mf_core.Instance.t -> Mf_core.Mapping.t Gen.t

(** [specialized_allocation inst] draws an injective type-to-machine
    assignment — always specialized-feasible.
    @raise Invalid_argument when [m < p]. *)
val specialized_allocation : Mf_core.Instance.t -> Mf_core.Mapping.t Gen.t

(** [ops inst ~max_ops] draws a journaled move/swap/undo sequence; the
    length shrinks first (shorter sequences are prefixes), then the
    individual steps. *)
val ops : Mf_core.Instance.t -> max_ops:int -> op array Gen.t

(** [breakdown_profile inst] draws one dyadic breakdown law per machine
    as [(mtbf_mult, mttr_ratio)] multiples of the mapping's analytic
    period: mtbf in [{8, 16, 32}] periods, mttr [{0, 1/4, 1/2}] of the
    mtbf, wear 0.  Shrinks toward the degenerate never-down law. *)
val breakdown_profile : Mf_core.Instance.t -> (float * float) array Gen.t

val breakdown_profile_to_string : (float * float) array -> string

(** [avail_script ~max_ops] draws a raw availability script — decode it
    with {!decode_avail}.  Raw scripts shrink structurally (shorter
    first, then element-wise) and every shrink decodes to a valid
    history. *)
val avail_script : max_ops:int -> (bool * int) array Gen.t

(** [decode_avail ~machines script] interprets a raw script statefully
    into a valid breakdown/repair history: a down step picks among the
    machines currently up, an up step among those currently down,
    falling back to the other kind when the wanted set is empty (all
    machines down is reachable). *)
val decode_avail : machines:int -> (bool * int) array -> avail_op array

(** {1 Printers for counterexamples} *)

val print_instance : Mf_core.Instance.t -> string
val print_with_mapping : Mf_core.Instance.t -> Mf_core.Mapping.t -> string

val print_case :
  Mf_core.Instance.t -> Mf_core.Mapping.t -> op array -> string

val print_breakdown_case :
  Mf_core.Instance.t -> Mf_core.Mapping.t -> (float * float) array -> string

val print_remap_case :
  Mf_core.Instance.t ->
  Mf_core.Mapping.t ->
  (bool * int) array ->
  budget:int ->
  string

(** {1 Deterministic indexed families (shared with the differential suites)} *)

(** [differential_instance ~rule i] is the [i]-th instance of the
    [dfs-differential] enumeration: chains and in-trees, [n <= 8],
    [m <= 4], sized so brute force stays affordable under [rule], every
    fifth instance task-attached. *)
val differential_instance : rule:Mf_core.Mapping.rule -> int -> Mf_core.Instance.t

(** [dyadic_lp_instance ~tasks ~machines ~kmax seed] is the mixed-scale
    dyadic family of the [lp-differential] suite: integer base workloads
    in [1, 32] scaled by per-machine powers of two up to [2^kmax],
    failure rates snapped to the 1/64 grid. *)
val dyadic_lp_instance :
  tasks:int -> machines:int -> kmax:int -> int -> Mf_core.Instance.t
