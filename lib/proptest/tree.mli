(** Lazy rose trees — the carrier of integrated shrinking.

    A generated value is the root of a tree whose children are its shrink
    candidates, each again a full tree.  Because every combinator builds
    the tree alongside the value ({!Gen}), shrink candidates satisfy the
    same structural invariants as the original by construction: shrinking
    an instance never produces an inconsistent one, shrinking a move
    sequence never produces out-of-range indices.  Children are a lazy
    {!Seq.t}; nothing below the root is computed until the property
    fails and the runner starts descending. *)

type 'a t = Node of 'a * 'a t Seq.t

val root : 'a t -> 'a
val children : 'a t -> 'a t Seq.t

(** [pure x] has no shrink candidates. *)
val pure : 'a -> 'a t

val map : ('a -> 'b) -> 'a t -> 'b t

(** Monadic composition in the Hedgehog style: outer shrinks are tried
    before inner ones, so structural parameters (sizes, counts) reduce
    before the values they control. *)
val bind : 'a t -> ('a -> 'b t) -> 'b t

(** [product ta tb] pairs two independent trees; shrinks try the left
    component first, then the right. *)
val product : 'a t -> 'b t -> ('a * 'b) t

(** [int_towards ~dest v] is the classical shrink tree for integers:
    first candidate [dest] itself, then binary approach from [dest]
    toward [v]. *)
val int_towards : dest:int -> int -> int t

(** [float_towards ~dest ~fuel v] is the analogue for floats, halving the
    distance at most [fuel] times per level. *)
val float_towards : dest:float -> fuel:int -> float -> float t

(** [array_of_trees ts] turns per-element trees into a tree of arrays;
    shrinks replace one element at a time by one of its candidates
    (element order, then candidate order). *)
val array_of_trees : 'a t array -> 'a array t
