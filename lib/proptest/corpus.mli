(** The on-disk seed corpus.

    An entry is a tiny text file pinning one oracle case: the oracle
    name and the case seed that regenerates the (unshrunk) input through
    the deterministic generators.  When the fuzzer finds a failure it
    writes the shrunk counterexample next to the seed as comment lines;
    committing the file turns the crash into a permanent regression case
    replayed by [make fuzz-replay] and [make fuzz-quick].

    Format ([#] starts a comment, blank lines ignored):
    {v # optional provenance notes
      oracle eval
      seed 123456789 v} *)

type entry = {
  oracle : string;
  case_seed : int;
  path : string;  (** file the entry was loaded from, or will be saved to *)
}

(** [load_file path] parses one entry. *)
val load_file : string -> (entry, string) result

(** [load_dir dir] loads every [*.repro] file, sorted by name; a missing
    directory is an empty corpus.  Malformed files are reported as
    [Error]s alongside the good entries. *)
val load_dir : string -> entry list * string list

(** [save ~dir ~oracle ~case_seed ~note] writes
    [dir/<oracle>-<case_seed>.repro] with [note] (the failure message and
    shrunk counterexample) as comments, creating [dir] if needed, and
    returns the path. *)
val save : dir:string -> oracle:string -> case_seed:int -> note:string -> string
