(** The cross-solver oracle matrix.

    Each oracle packages a generator, a property and a counterexample
    printer behind an existential, so the fuzz driver can run the whole
    matrix uniformly, replay single cases from a corpus seed, and report
    shrunk counterexamples as replayable text.

    The matrix (see DESIGN.md section 12):

    - [eval] — {!Mf_eval.State} under random journaled move/swap/undo
      sequences against from-scratch {!Mf_core.Period.period} and the
      exact-rational {!Mf_core.Period.period_exact};
    - [heuristics] — every {!Mf_heuristics.Registry} algorithm returns a
      rule-feasible mapping whose period matches reference evaluation;
    - [exact-vs-brute] — {!Mf_exact.Dfs.solve} equals {!Mf_exact.Brute}
      under all three mapping rules on small instances;
    - [lp-vs-exact] — the {!Mf_lp.Splitting} certified bound never
      exceeds the exact optimum;
    - [sim-vs-analytic] — {!Mf_sim.Desim.run} throughput and per-task
      loss rates stay inside z = 6 confidence bands around the analytic
      values (false-positive probability < 1e-9 per check; deterministic
      under fixed seeds);
    - [sim-breakdowns] — the dynamic model under per-machine dyadic
      MTBF/MTTR laws: throughput within a z = 6 band of the
      availability-adjusted [min avail(u) / load(u)], breakdown counts
      Poisson in measured busy time, downtime within a Gamma band of
      [count . mttr] (exactly zero for instant repairs), and the loss
      bands re-checked to pin breakdown/loss RNG stream independence;
    - [remap-safety] — the online re-mapper driven by generated
      breakdown/repair scripts: committed mappings stay feasible over
      the surviving machines and specialized, claimed periods match
      from-scratch evaluation and never worsen the do-nothing
      incumbent, infeasibility verdicts are honest, and replay-then-undo
      of every committed move on one journaled {!Mf_eval.State} restores
      the original allocation bit-for-bit;
    - [metamorphic] — machine-permutation invariance (bit-exact, plus
      {!Mf_exact.Symmetry.machine_classes} consistency), power-of-two
      workload scaling (bit-exact), and failure-rate monotonicity;
    - [cache] — warming the {!Mf_solve.Cache} with a near-duplicate
      instance (machines permuted, type labels relabeled) makes the
      original request hit, and the mapped-back cached answer is
      bit-identical to a fresh no-cache {!Mf_solve.Portfolio} solve
      (status, period bits, bound bits, mapping, engine trail). *)

type outcome = {
  oracle : string;
  cases : int;  (** cases executed (including the failing one, if any) *)
  failed : failed option;
}

and failed = {
  case_index : int;
  case_seed : int;  (** replay key: regenerates the unshrunk case *)
  shrink_steps : int;
  message : string;
  repr : string;  (** printed shrunk counterexample *)
}

type t

val name : t -> string
val description : t -> string

(** Cases per oracle in the quick (CI) tier. *)
val quick_cases : t -> int

(** The oracle matrix, in reporting order. *)
val all : t list

(** [find name] looks an oracle up by exact name. *)
val find : string -> t option

(** [run ?count ~seed o] runs [o] on [count] cases (default
    [quick_cases o]) derived deterministically from [seed], shrinking the
    first failure. *)
val run : ?count:int -> seed:int -> t -> outcome

(** [replay o ~case_seed] re-executes exactly one case — the one a
    corpus or repro file recorded — without shrinking on success. *)
val replay : t -> case_seed:int -> outcome

(** The canary: a deliberately broken period evaluation (the success
    probability sign flipped in a local copy of the product-count
    recurrence, [1/(1+f)] instead of [1/(1-f)]).  Running it must produce
    a failure and shrink it to a tiny repro — the self-test that the
    harness can actually catch and minimise evaluation bugs. *)
val canary : t

(** [canary_check ~seed] runs the canary and demands a failure: [Ok
    (tasks, machines)] gives the size of the shrunk repro, [Error _]
    means the harness failed to catch the injected bug. *)
val canary_check : seed:int -> (int * int, string) result

(** The dynamic-layer canary: a re-mapper whose local-search refinement
    forgets the availability filter and so re-assigns work to the dead
    (and therefore empty, maximally attractive) machine.  The
    remap-safety discipline must catch and shrink it. *)
val remap_canary : t

(** [remap_canary_check ~seed] runs {!remap_canary} and demands a
    failure, like {!canary_check}. *)
val remap_canary_check : seed:int -> (int * int, string) result
