type entry = { oracle : string; case_seed : int; path : string }

let load_file path =
  match In_channel.with_open_text path In_channel.input_lines with
  | exception Sys_error msg -> Error msg
  | lines ->
    let oracle = ref None and seed = ref None and err = ref None in
    List.iteri
      (fun lineno line ->
        let line =
          match String.index_opt line '#' with
          | Some i -> String.sub line 0 i
          | None -> line
        in
        match String.split_on_char ' ' (String.trim line) |> List.filter (( <> ) "") with
        | [] -> ()
        | [ "oracle"; name ] -> oracle := Some name
        | [ "seed"; s ] -> (
          match int_of_string_opt s with
          | Some v when v >= 0 -> seed := Some v
          | _ ->
            if !err = None then
              err := Some (Printf.sprintf "%s:%d: bad seed %S" path (lineno + 1) s))
        | _ ->
          if !err = None then
            err := Some (Printf.sprintf "%s:%d: unrecognised line" path (lineno + 1)))
      lines;
    (match (!err, !oracle, !seed) with
    | Some e, _, _ -> Error e
    | None, Some oracle, Some case_seed -> Ok { oracle; case_seed; path }
    | None, None, _ -> Error (path ^ ": missing 'oracle' line")
    | None, _, None -> Error (path ^ ": missing 'seed' line"))

let load_dir dir =
  if not (Sys.file_exists dir) then ([], [])
  else
    let files =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".repro")
      |> List.sort String.compare
    in
    List.fold_left
      (fun (entries, errors) f ->
        match load_file (Filename.concat dir f) with
        | Ok e -> (e :: entries, errors)
        | Error msg -> (entries, msg :: errors))
      ([], []) files
    |> fun (entries, errors) -> (List.rev entries, List.rev errors)

let save ~dir ~oracle ~case_seed ~note =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (Printf.sprintf "%s-%d.repro" oracle case_seed) in
  Out_channel.with_open_text path (fun oc ->
      String.split_on_char '\n' note
      |> List.iter (fun line -> Printf.fprintf oc "# %s\n" line);
      Printf.fprintf oc "oracle %s\nseed %d\n" oracle case_seed);
  path
