type t =
  | Start of { time : float; task : int; machine : int }
  | Complete of { time : float; task : int; machine : int; lost : bool }
  | Output of { time : float }
  | Breakdown of { time : float; machine : int }
  | Repair of { time : float; machine : int }
  | Resume of { time : float; task : int; machine : int }
  | Remap of { time : float; moves : (int * int) array }

let time = function
  | Start { time; _ }
  | Complete { time; _ }
  | Output { time }
  | Breakdown { time; _ }
  | Repair { time; _ }
  | Resume { time; _ }
  | Remap { time; _ } -> time

let pp fmt = function
  | Start { time; task; machine } ->
    Format.fprintf fmt "%10.2f start    T%d on M%d" time task machine
  | Complete { time; task; machine; lost } ->
    Format.fprintf fmt "%10.2f complete T%d on M%d%s" time task machine
      (if lost then " (product lost)" else "")
  | Output { time } -> Format.fprintf fmt "%10.2f output" time
  | Breakdown { time; machine } ->
    Format.fprintf fmt "%10.2f break    M%d down" time machine
  | Repair { time; machine } ->
    Format.fprintf fmt "%10.2f repair   M%d up" time machine
  | Resume { time; task; machine } ->
    Format.fprintf fmt "%10.2f resume   T%d on M%d" time task machine
  | Remap { time; moves } ->
    Format.fprintf fmt "%10.2f remap   " time;
    Array.iter (fun (i, u) -> Format.fprintf fmt " T%d->M%d" i u) moves

let to_string e = Format.asprintf "%a" pp e
