(** Machine availability model: per-machine breakdown laws and a finite
    repair-crew resource.

    Failures are {e operation-dependent} (the standard reliability model of
    the exemplar line simulators, and the regime of Knapp & Göttlich's
    history-based failure work): a machine accrues failure hazard only
    while it is working, so an idle or blocked machine never breaks.  The
    time-to-failure seed is exponential — a machine's hazard threshold is
    drawn [Exp(1)] and its instantaneous hazard rate while busy is

    {[ lambda(u) = (1 + wear * units_since_repair(u)) / mtbf(u) ]}

    With [wear = 0] the busy time between failures is exactly
    [Exp(1/mtbf)] (mean [mtbf]); a positive [wear] makes the law
    history-based — each unit produced since the last repair scales the
    hazard up, so heavily-used machines fail sooner, and a repair restores
    the machine to as-good-as-new ([units_since_repair] resets).

    Repairs take [Exp(1/mttr)] time (mean [mttr]) and require one unit of
    a pool of [crews] repair crews; when all crews are busy the machine
    waits, [Fifo] (breakdown order) or [Priority] (highest static load
    first — fix the bottleneck first). *)

type law = {
  mtbf : float;  (** mean busy time between failures; [infinity] = never *)
  mttr : float;  (** mean repair duration; [0] = instant repair *)
  wear : float;  (** hazard growth per unit produced since last repair *)
}

type queue = Fifo | Priority

type t = private { laws : law array; crews : int; queue : queue }

(** A law under which the machine never fails. *)
val immortal : law

(** [make ?crews ?queue laws] validates and packs a model; [laws.(u)] is
    machine [u]'s law.  [crews] defaults to unlimited.
    @raise Invalid_argument on [mtbf <= 0], [mttr < 0], [wear < 0] or
    [crews < 1]. *)
val make : ?crews:int -> ?queue:queue -> law array -> t

(** [uniform ~machines ~mtbf ~mttr ?wear ?crews ?queue ()] gives every
    machine the same law. *)
val uniform :
  machines:int ->
  mtbf:float ->
  mttr:float ->
  ?wear:float ->
  ?crews:int ->
  ?queue:queue ->
  unit ->
  t

(** [availability law] is the steady-state fraction of demanded work time
    the machine is up: [mtbf / (mtbf + mttr)] ([1] when it never fails or
    repairs instantly, [0] when repairs never finish).  Exact for
    [wear = 0] and an uncontended crew. *)
val availability : law -> float

val machines : t -> int
val queue_name : queue -> string
val queue_of_string : string -> queue option
