(** Post-processing of simulation results: utilisation, empirical failure
    rates, bottleneck identification and a one-page text report. *)

type machine_stats = {
  machine : int;
  utilisation : float;  (** busy time / horizon *)
  executions : int;  (** completed task executions *)
}

(** [machine_stats inst mp result] aggregates per-machine statistics. *)
val machine_stats :
  Mf_core.Instance.t -> Mf_core.Mapping.t -> Desim.result -> machine_stats list

(** [bottleneck inst mp result] is the machine with the highest
    utilisation.  Note that with unlimited raw material every machine
    upstream of the analytic critical machine also saturates, so ties are
    resolved toward the lowest machine index; use
    {!Mf_core.Period.critical_machines} for the analytic answer. *)
val bottleneck : Mf_core.Instance.t -> Mf_core.Mapping.t -> Desim.result -> int

(** [loss_summary inst mp result] pairs each task with its empirical and
    configured failure rates.  The empirical rate is [None] for a task
    that never executed ({!Desim.measured_loss_rate} returns [nan]
    there — 0/0 has no estimate); {!report} renders such tasks as
    [n/a]. *)
val loss_summary :
  Mf_core.Instance.t ->
  Mf_core.Mapping.t ->
  Desim.result ->
  (int * float option * float) list

(** [report inst mp result] renders everything as text. *)
val report : Mf_core.Instance.t -> Mf_core.Mapping.t -> Desim.result -> string
