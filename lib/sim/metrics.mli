(** Post-processing of simulation results: utilisation, empirical failure
    rates, bottleneck identification and a one-page text report. *)

type machine_stats = {
  machine : int;
  utilisation : float;  (** busy time / horizon *)
  executions : int;  (** completed task executions *)
}

(** [machine_stats inst mp result] aggregates per-machine statistics. *)
val machine_stats :
  Mf_core.Instance.t -> Mf_core.Mapping.t -> Desim.result -> machine_stats list

(** [bottleneck inst mp result] is the machine with the highest
    utilisation.  Note that with unlimited raw material every machine
    upstream of the analytic critical machine also saturates, so ties are
    resolved toward the lowest machine index; use
    {!Mf_core.Period.critical_machines} for the analytic answer. *)
val bottleneck : Mf_core.Instance.t -> Mf_core.Mapping.t -> Desim.result -> int

(** [loss_summary inst mp result] pairs each task with its empirical and
    configured failure rates.  The empirical rate is [None] for a task
    that never executed ({!Desim.measured_loss_rate} returns [nan]
    there — 0/0 has no estimate); {!report} renders such tasks as
    [n/a]. *)
val loss_summary :
  Mf_core.Instance.t ->
  Mf_core.Mapping.t ->
  Desim.result ->
  (int * float option * float) list

(** [report inst mp result] renders everything as text. *)
val report : Mf_core.Instance.t -> Mf_core.Mapping.t -> Desim.result -> string

(** {1 Dynamic (breakdown) metrics} *)

(** [measured_availability result] is, per machine, the fraction of the
    horizon the machine was up ([1 - downtime / horizon]). *)
val measured_availability : Desim.result -> float array

(** [adjusted_throughput inst mp model] is the analytic
    availability-adjusted steady-state throughput
    [min_u avail_u / load_u] over machines with positive load — what the
    line sustains in the long run under [wear = 0], unbounded buffers and
    an uncontended crew pool.  [0] when no machine carries load. *)
val adjusted_throughput :
  Mf_core.Instance.t -> Mf_core.Mapping.t -> Breakdown.t -> float

(** [lost_per_breakdown inst mp result] is the measured production deficit
    per failure: the analytic no-breakdown expectation for the window
    minus the measured outputs, divided by the number of breakdowns.
    [None] when no breakdown occurred (n/a — never NaN). *)
val lost_per_breakdown :
  Mf_core.Instance.t -> Mf_core.Mapping.t -> Desim.result -> float option

(** [remap_latency_histogram ?buckets result] buckets the landed re-map
    decision latencies into [(lo, hi, count)] equal-width bins ([[]] when
    no re-map landed). *)
val remap_latency_histogram :
  ?buckets:int -> Desim.result -> (float * float * int) list

(** [dynamic_report ?model inst mp result] renders the availability
    metrics as text: breakdown/downtime per machine, measured vs analytic
    availability-adjusted throughput (when [model] is given), products
    lost per breakdown and the re-map latency histogram. *)
val dynamic_report :
  ?model:Breakdown.t ->
  Mf_core.Instance.t ->
  Mf_core.Mapping.t ->
  Desim.result ->
  string
