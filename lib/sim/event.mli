(** Simulation events, exposed for tracing and tests. *)

type t =
  | Start of { time : float; task : int; machine : int }
      (** a machine begins one execution of a task *)
  | Complete of { time : float; task : int; machine : int; lost : bool }
      (** the execution finished; [lost] when the product was destroyed *)
  | Output of { time : float }  (** one finished product left the system *)
  | Breakdown of { time : float; machine : int }
      (** the machine failed mid-execution and holds its work in place *)
  | Repair of { time : float; machine : int }
      (** a crew finished repairing the machine (as good as new) *)
  | Resume of { time : float; task : int; machine : int }
      (** the repaired machine resumes its interrupted execution *)
  | Remap of { time : float; moves : (int * int) array }
      (** the online re-mapper committed [(task, new machine)] moves *)

val time : t -> float
val pp : Format.formatter -> t -> unit
val to_string : t -> string
