module Instance = Mf_core.Instance
module Workflow = Mf_core.Workflow
module Mapping = Mf_core.Mapping
module Products = Mf_core.Products
module Rng = Mf_prng.Rng

type result = {
  outputs : int;
  throughput : float;
  window : float;
  consumed : int;
  lost : int array;
  executions : int array;
  busy : float array;
  horizon : float;
  breakdowns : int array;
  downtime : float array;
  remaps : int;
  remap_latencies : float array;
  final_mapping : int array;
}

type change = Down of int | Up of int

type remap_decision = { moves : (int * int) array; evals : int }

type remapper =
  time:float -> down:bool array -> mapping:int array -> change ->
  remap_decision option

(* Calendar payloads.  [Complete] carries its own timestamp so the main
   loop can assert the heap never reorders; [Break] carries the work left
   on the interrupted execution; [Commit] carries the change stamp the
   re-map decision was computed against and is dropped when stale. *)
type ev =
  | Complete of { machine : int; task : int; finish : float }
  | Break of { machine : int; task : int; rem : float }
  | Repaired of { machine : int }
  | Commit of { stamp : int; moves : (int * int) array; latency : float }

let run ?warmup ?buffer_capacity ?breakdowns:bd ?remapper
    ?(remap_eval_cost = 0.01) ~horizon ~seed ?on_event inst mp =
  let warmup = Option.value warmup ~default:(horizon /. 5.0) in
  if horizon <= warmup || warmup < 0.0 then
    invalid_arg "Desim.run: need 0 <= warmup < horizon";
  (match buffer_capacity with
  | Some c when c < 1 -> invalid_arg "Desim.run: buffer capacity must be at least 1"
  | _ -> ());
  if Float.is_nan remap_eval_cost || remap_eval_cost < 0.0 then
    invalid_arg "Desim.run: remap_eval_cost must be non-negative";
  let n = Instance.task_count inst in
  let m = Instance.machines inst in
  (match bd with
  | Some b when Breakdown.machines b <> m ->
    invalid_arg "Desim.run: breakdown model sized for a different machine count"
  | _ -> ());
  let wf = Instance.workflow inst in
  let rng = Rng.create seed in
  let emit e = match on_event with Some f -> f e | None -> () in
  (* Tasks of each machine, ordered by increasing distance to the sink;
     [pick_task] below refines this static priority with each task's
     normalised surviving production. *)
  let depth = Array.make n 0 in
  let backward = Workflow.backward_order wf in
  Array.iter
    (fun i ->
      depth.(i) <- (match Workflow.successor wf i with None -> 0 | Some j -> depth.(j) + 1))
    backward;
  (* The live allocation: starts as [mp], mutated only by re-map commits. *)
  let alloc = Mapping.to_array mp in
  let tasks_of = Array.make m [] in
  let rebuild_tasks_of () =
    Array.fill tasks_of 0 m [];
    for i = n - 1 downto 0 do
      let u = alloc.(i) in
      tasks_of.(u) <- i :: tasks_of.(u)
    done;
    for u = 0 to m - 1 do
      tasks_of.(u) <-
        List.sort (fun a b -> Stdlib.compare depth.(a) depth.(b)) tasks_of.(u)
    done
  in
  rebuild_tasks_of ();
  (* buffer.(i): products produced by task i, awaiting its successor. *)
  let buffer = Array.make n 0 in
  let is_source = Array.make n false in
  List.iter (fun i -> is_source.(i) <- true) (Workflow.sources wf);
  let preds = Array.init n (Workflow.predecessors wf) in
  (* A machine counts as busy until its completion event has been
     processed; comparing clock values alone mis-handles simultaneous
     events (another machine's completion at the exact same timestamp may
     pop first and would otherwise restart this one).  A down machine
     stays [running] too — its interrupted execution resumes on repair. *)
  let running = Array.make m false in
  let busy = Array.make m 0.0 in
  let lost = Array.make n 0 in
  let executions = Array.make n 0 in
  let consumed = ref 0 in
  let outputs_measured = ref 0 in
  let calendar = Calendar.create () in
  let is_final = Array.init n (fun i -> Workflow.successor wf i = None) in
  let output_has_room task =
    is_final.(task)
    || match buffer_capacity with None -> true | Some c -> buffer.(task) < c
  in
  let ready task =
    output_has_room task && List.for_all (fun p -> buffer.(p) > 0) preds.(task)
  in
  (* Among the ready tasks of a machine, run the one furthest behind its
     required share of surviving production: cumulative survivors
     (executions minus losses) divided by the number of products the
     task's successor must consume per system output (the analytic
     product count x of the successor; 1 for the sink).  Ties break
     toward the sink and then the lowest task index.  This is
     proportional-share dispatch at exactly the fluid rates the period
     formula assumes, and it is the third iteration of this policy —
     the fuzz corpus pins a shrunk counterexample for each predecessor:
     a static downstream-first priority let a source branch sharing a
     machine with a sibling branch of an assembly run forever (the join
     never fired); prioritising the emptiest output buffer fixed that
     but livelocked when a consumer on another machine drained a
     branch's buffer the instant it was filled, so the index tie-break
     at buffer 0 again starved the sibling; and unweighted surviving
     production fixed *that* but underfed branches whose failure rates
     make their required multiplicity higher than their siblings',
     costing ~14% throughput on the third corpus instance.  Normalised
     survivors are monotone (consumption cannot erase them) and weighted
     (lossy branches re-run exactly as often as their successors need),
     so every ready task is eventually scheduled and the execution mix
     tracks the fluid optimum a work-conserving machine can sustain. *)
  let xs = Products.x inst mp in
  let share = Array.make n 1.0 in
  (* loads.(u): the analytic period contribution of u's current tasks —
     read by the Priority repair queue (fix the heaviest machine first). *)
  let loads = Array.make m 0.0 in
  let rebuild_shares () =
    for i = 0 to n - 1 do
      share.(i) <-
        (match Workflow.successor wf i with Some j -> xs.(j) | None -> 1.0)
    done;
    Array.fill loads 0 m 0.0;
    for i = 0 to n - 1 do
      loads.(alloc.(i)) <- loads.(alloc.(i)) +. (xs.(i) *. Instance.w inst i alloc.(i))
    done
  in
  rebuild_shares ();
  let key task =
    ( float_of_int (executions.(task) - lost.(task)) /. share.(task),
      depth.(task),
      task )
  in
  let pick_task u =
    List.fold_left
      (fun best task ->
        if not (ready task) then best
        else
          match best with
          | Some b when key b <= key task -> best
          | _ -> Some task)
      None tasks_of.(u)
  in
  (* --- availability state ------------------------------------------- *)
  let laws =
    match bd with
    | Some b -> b.Breakdown.laws
    | None -> [||]
  in
  let has_bd = bd <> None in
  (* Separate per-machine breakdown streams, Splitmix64-derived from the
     run seed: breakdown draws must never touch the product-loss stream,
     or MTBF=infinity would desynchronise the Bernoulli sequence and break
     byte-identity with the no-breakdown simulation. *)
  let brng =
    Array.init m (fun u ->
        let mix acc v =
          Mf_prng.Splitmix64.next (Mf_prng.Splitmix64.create (Int64.logxor acc v))
        in
        let h = mix (mix 0x64796e616d696373L (Int64.of_int seed)) (Int64.of_int u) in
        Rng.create (Int64.to_int h land max_int))
  in
  (* Hazard threshold ~ Exp(1); floored so a pathological zero draw cannot
     wedge the instant-repair fold below. *)
  let exp1 u = Float.max 0x1p-60 (Rng.exponential brng.(u) ~rate:1.0) in
  let hazard_left =
    Array.init m (fun u -> if has_bd then exp1 u else infinity)
  in
  let units = Array.make m 0 in          (* produced since last repair *)
  let down = Array.make m false in
  let down_since = Array.make m 0.0 in
  let pending = Array.make m None in     (* interrupted (task, work left) *)
  let breakdown_count = Array.make m 0 in
  let downtime = Array.make m 0.0 in
  let crews_free = ref (match bd with Some b -> min b.Breakdown.crews m | None -> m) in
  let waiting = ref [] in                (* (machine, enqueue seq) *)
  let wait_seq = ref 0 in
  let change_stamp = ref 0 in
  let remaps = ref 0 in
  let latencies = ref [] in
  (* Consume failure hazard for [rem] busy time units on [u].  [None] when
     the execution completes undisturbed; [Some rem_left] when the hazard
     runs out with [rem_left] work still to do.  Zero-duration repairs
     (mttr = 0) are folded inline — they reset the hazard and the wear
     counter without splitting the busy segment, so an MTTR=0 run is
     byte-identical to the no-breakdown simulation. *)
  let rec scan_hazard u ~rem =
    let law = laws.(u) in
    (* mtbf = infinity gives lam = 0: fail_busy = infinity, and the
       subtraction below removes exactly 0.0 — no visible float changes. *)
    let lam = (1.0 +. (law.Breakdown.wear *. float_of_int units.(u))) /. law.Breakdown.mtbf in
    let fail_busy = hazard_left.(u) /. lam in
    if fail_busy >= rem then begin
      hazard_left.(u) <- hazard_left.(u) -. (lam *. rem);
      None
    end
    else if law.Breakdown.mttr = 0.0 then begin
      breakdown_count.(u) <- breakdown_count.(u) + 1;
      units.(u) <- 0;
      hazard_left.(u) <- exp1 u;
      scan_hazard u ~rem:(rem -. fail_busy)
    end
    else Some (rem -. fail_busy)
  in
  (* Start (or resume) an execution segment on a running machine: account
     the busy time now (clamped at the horizon) and schedule its end — a
     Complete, or a Break where the hazard runs out first. *)
  let begin_segment u task ~rem t =
    match if has_bd then scan_hazard u ~rem else None with
    | None ->
      let finish = t +. rem in
      busy.(u) <- busy.(u) +. (Float.min finish horizon -. t);
      Calendar.schedule calendar ~time:finish (Complete { machine = u; task; finish })
    | Some rem_left ->
      let tfail = t +. (rem -. rem_left) in
      busy.(u) <- busy.(u) +. (Float.min tfail horizon -. t);
      Calendar.schedule calendar ~time:tfail (Break { machine = u; task; rem = rem_left })
  in
  (* Try to start work on machine u at time t; returns true on success. *)
  let try_start u t =
    if running.(u) || down.(u) then false
    else begin
      match pick_task u with
      | None -> false
      | Some task ->
        List.iter (fun p -> buffer.(p) <- buffer.(p) - 1) preds.(task);
        if is_source.(task) then incr consumed;
        running.(u) <- true;
        emit (Event.Start { time = t; task; machine = u });
        begin_segment u task ~rem:(Instance.w inst task u) t;
        true
      end
  in
  let wake_all t =
    let progress = ref true in
    while !progress do
      progress := false;
      for u = 0 to m - 1 do
        if try_start u t then progress := true
      done
    done
  in
  let start_repair u t =
    let law = laws.(u) in
    if law.Breakdown.mttr = infinity then ()
      (* never repaired: the machine — and its crew — are gone for good *)
    else
      let dur = Rng.exponential brng.(u) ~rate:(1.0 /. law.Breakdown.mttr) in
      Calendar.schedule calendar ~time:(t +. dur) (Repaired { machine = u })
  in
  let request_crew u t =
    if !crews_free > 0 then begin
      decr crews_free;
      start_repair u t
    end
    else begin
      waiting := (u, !wait_seq) :: !waiting;
      incr wait_seq
    end
  in
  let release_crew t =
    match !waiting with
    | [] -> incr crews_free
    | queue ->
      let better (u, su) (v, sv) =
        match (match bd with Some b -> b.Breakdown.queue | None -> Breakdown.Fifo) with
        | Breakdown.Fifo -> if su < sv then (u, su) else (v, sv)
        | Breakdown.Priority ->
          if loads.(u) > loads.(v) || (loads.(u) = loads.(v) && u < v) then (u, su)
          else (v, sv)
      in
      let chosen = List.fold_left better (List.hd queue) (List.tl queue) in
      waiting := List.filter (fun e -> e <> chosen) !waiting;
      start_repair (fst chosen) t
  in
  let ask_remapper t change =
    match remapper with
    | None -> ()
    | Some f ->
      (match f ~time:t ~down:(Array.copy down) ~mapping:(Array.copy alloc) change with
      | None -> ()
      | Some { moves; evals } ->
        if Array.length moves > 0 then begin
          Array.iter
            (fun (i, v) ->
              if i < 0 || i >= n || v < 0 || v >= m then
                invalid_arg "Desim.run: remapper returned an out-of-range move")
            moves;
          let latency = remap_eval_cost *. float_of_int (max 0 evals) in
          Calendar.schedule calendar ~time:(t +. latency)
            (Commit { stamp = !change_stamp; moves; latency })
        end)
  in
  wake_all 0.0;
  let finished = ref false in
  while not !finished do
    match Calendar.next calendar with
    | None -> finished := true
    | Some (t, _) when t > horizon -> finished := true
    | Some (t, Complete { machine; task; finish }) ->
      assert (Float.equal t finish);
      assert running.(machine);
      running.(machine) <- false;
      executions.(task) <- executions.(task) + 1;
      units.(machine) <- units.(machine) + 1;
      let product_lost = Rng.bernoulli rng (Instance.f inst task machine) in
      emit (Event.Complete { time = t; task; machine; lost = product_lost });
      if product_lost then lost.(task) <- lost.(task) + 1
      else begin
        match Workflow.successor wf task with
        | Some _ -> buffer.(task) <- buffer.(task) + 1
        | None ->
          emit (Event.Output { time = t });
          if t >= warmup then incr outputs_measured
      end;
      wake_all t
    | Some (t, Break { machine = u; task; rem }) ->
      assert (running.(u) && not down.(u));
      down.(u) <- true;
      down_since.(u) <- t;
      pending.(u) <- Some (task, rem);
      breakdown_count.(u) <- breakdown_count.(u) + 1;
      emit (Event.Breakdown { time = t; machine = u });
      incr change_stamp;
      request_crew u t;
      ask_remapper t (Down u)
      (* nothing to wake: a breakdown frees no buffer and no machine *)
    | Some (t, Repaired { machine = u }) ->
      assert down.(u);
      down.(u) <- false;
      downtime.(u) <- downtime.(u) +. (t -. down_since.(u));
      units.(u) <- 0;
      hazard_left.(u) <- exp1 u;
      emit (Event.Repair { time = t; machine = u });
      incr change_stamp;
      release_crew t;
      (match pending.(u) with
      | Some (task, rem) ->
        (* work conserving: the interrupted product finishes on the
           machine that holds it, even if the task was re-mapped away *)
        pending.(u) <- None;
        emit (Event.Resume { time = t; task; machine = u });
        begin_segment u task ~rem t
      | None -> running.(u) <- false);
      ask_remapper t (Up u);
      wake_all t
    | Some (t, Commit { stamp; moves; latency }) ->
      (* A commit races the next availability change: if a breakdown or
         repair bumped the stamp since the decision was taken, the world
         the plan was computed for is gone — drop it on the floor. *)
      if stamp = !change_stamp then begin
        let changed = ref false in
        Array.iter
          (fun (i, v) -> if alloc.(i) <> v then begin alloc.(i) <- v; changed := true end)
          moves;
        if !changed then begin
          rebuild_tasks_of ();
          let xs' = Products.x inst (Mapping.of_array inst alloc) in
          Array.blit xs' 0 xs 0 n;
          rebuild_shares ();
          incr remaps;
          latencies := latency :: !latencies;
          emit (Event.Remap { time = t; moves });
          wake_all t
        end
      end
  done;
  (* Machines still down when the horizon closes: clamp their outage. *)
  for u = 0 to m - 1 do
    if down.(u) then downtime.(u) <- downtime.(u) +. (horizon -. down_since.(u))
  done;
  let window = horizon -. warmup in
  {
    outputs = !outputs_measured;
    throughput = float_of_int !outputs_measured /. window;
    window;
    consumed = !consumed;
    lost;
    executions;
    busy;
    horizon;
    breakdowns = breakdown_count;
    downtime;
    remaps = !remaps;
    remap_latencies = Array.of_list (List.rev !latencies);
    final_mapping = alloc;
  }

let measured_loss_rate r ~task =
  if task < 0 || task >= Array.length r.executions then
    invalid_arg "Desim.measured_loss_rate: task out of range";
  if r.executions.(task) = 0 then nan
  else float_of_int r.lost.(task) /. float_of_int r.executions.(task)
