module Instance = Mf_core.Instance
module Workflow = Mf_core.Workflow
module Mapping = Mf_core.Mapping
module Products = Mf_core.Products
module Rng = Mf_prng.Rng

type result = {
  outputs : int;
  throughput : float;
  window : float;
  consumed : int;
  lost : int array;
  executions : int array;
  busy : float array;
  horizon : float;
}

(* Payload of a completion event. *)
type completion = { machine : int; task : int; finish : float }

let run ?warmup ?buffer_capacity ~horizon ~seed ?on_event inst mp =
  let warmup = Option.value warmup ~default:(horizon /. 5.0) in
  if horizon <= warmup || warmup < 0.0 then
    invalid_arg "Desim.run: need 0 <= warmup < horizon";
  (match buffer_capacity with
  | Some c when c < 1 -> invalid_arg "Desim.run: buffer capacity must be at least 1"
  | _ -> ());
  let n = Instance.task_count inst in
  let m = Instance.machines inst in
  let wf = Instance.workflow inst in
  let rng = Rng.create seed in
  let emit e = match on_event with Some f -> f e | None -> () in
  (* Tasks of each machine, ordered by increasing distance to the sink;
     [pick_task] below refines this static priority with each task's
     normalised surviving production. *)
  let depth = Array.make n 0 in
  let backward = Workflow.backward_order wf in
  Array.iter
    (fun i ->
      depth.(i) <- (match Workflow.successor wf i with None -> 0 | Some j -> depth.(j) + 1))
    backward;
  let tasks_of = Array.make m [] in
  for i = n - 1 downto 0 do
    let u = Mapping.machine mp i in
    tasks_of.(u) <- i :: tasks_of.(u)
  done;
  for u = 0 to m - 1 do
    tasks_of.(u) <-
      List.sort (fun a b -> Stdlib.compare depth.(a) depth.(b)) tasks_of.(u)
  done;
  (* buffer.(i): products produced by task i, awaiting its successor. *)
  let buffer = Array.make n 0 in
  let is_source = Array.make n false in
  List.iter (fun i -> is_source.(i) <- true) (Workflow.sources wf);
  let preds = Array.init n (Workflow.predecessors wf) in
  (* A machine counts as busy until its completion event has been
     processed; comparing clock values alone mis-handles simultaneous
     events (another machine's completion at the exact same timestamp may
     pop first and would otherwise restart this one). *)
  let running = Array.make m false in
  let busy = Array.make m 0.0 in
  let lost = Array.make n 0 in
  let executions = Array.make n 0 in
  let consumed = ref 0 in
  let outputs_measured = ref 0 in
  let calendar = Calendar.create () in
  let is_final = Array.init n (fun i -> Workflow.successor wf i = None) in
  let output_has_room task =
    is_final.(task)
    || match buffer_capacity with None -> true | Some c -> buffer.(task) < c
  in
  let ready task =
    output_has_room task && List.for_all (fun p -> buffer.(p) > 0) preds.(task)
  in
  (* Among the ready tasks of a machine, run the one furthest behind its
     required share of surviving production: cumulative survivors
     (executions minus losses) divided by the number of products the
     task's successor must consume per system output (the analytic
     product count x of the successor; 1 for the sink).  Ties break
     toward the sink and then the lowest task index.  This is
     proportional-share dispatch at exactly the fluid rates the period
     formula assumes, and it is the third iteration of this policy —
     the fuzz corpus pins a shrunk counterexample for each predecessor:
     a static downstream-first priority let a source branch sharing a
     machine with a sibling branch of an assembly run forever (the join
     never fired); prioritising the emptiest output buffer fixed that
     but livelocked when a consumer on another machine drained a
     branch's buffer the instant it was filled, so the index tie-break
     at buffer 0 again starved the sibling; and unweighted surviving
     production fixed *that* but underfed branches whose failure rates
     make their required multiplicity higher than their siblings',
     costing ~14% throughput on the third corpus instance.  Normalised
     survivors are monotone (consumption cannot erase them) and weighted
     (lossy branches re-run exactly as often as their successors need),
     so every ready task is eventually scheduled and the execution mix
     tracks the fluid optimum a work-conserving machine can sustain. *)
  let xs = Products.x inst mp in
  let share = Array.init n (fun i ->
      match Workflow.successor wf i with Some j -> xs.(j) | None -> 1.0)
  in
  let key task =
    ( float_of_int (executions.(task) - lost.(task)) /. share.(task),
      depth.(task),
      task )
  in
  let pick_task u =
    List.fold_left
      (fun best task ->
        if not (ready task) then best
        else
          match best with
          | Some b when key b <= key task -> best
          | _ -> Some task)
      None tasks_of.(u)
  in
  (* Try to start work on machine u at time t; returns true on success. *)
  let try_start u t =
    if running.(u) then false
    else begin
      match pick_task u with
      | None -> false
      | Some task ->
        List.iter (fun p -> buffer.(p) <- buffer.(p) - 1) preds.(task);
        if is_source.(task) then incr consumed;
        let finish = t +. Instance.w inst task u in
        running.(u) <- true;
        (* Clamp at the horizon so utilisations stay within [0, 1]. *)
        busy.(u) <- busy.(u) +. (Float.min finish horizon -. t);
        emit (Event.Start { time = t; task; machine = u });
        Calendar.schedule calendar ~time:finish { machine = u; task; finish };
        true
      end
  in
  let wake_all t =
    let progress = ref true in
    while !progress do
      progress := false;
      for u = 0 to m - 1 do
        if try_start u t then progress := true
      done
    done
  in
  wake_all 0.0;
  let finished = ref false in
  while not !finished do
    match Calendar.next calendar with
    | None -> finished := true
    | Some (t, { machine; task; finish }) ->
      if t > horizon then finished := true
      else begin
        assert (Float.equal t finish);
        assert running.(machine);
        running.(machine) <- false;
        executions.(task) <- executions.(task) + 1;
        let product_lost = Rng.bernoulli rng (Instance.f inst task machine) in
        emit (Event.Complete { time = t; task; machine; lost = product_lost });
        if product_lost then lost.(task) <- lost.(task) + 1
        else begin
          match Workflow.successor wf task with
          | Some _ -> buffer.(task) <- buffer.(task) + 1
          | None ->
            emit (Event.Output { time = t });
            if t >= warmup then incr outputs_measured
        end;
        wake_all t
      end
  done;
  let window = horizon -. warmup in
  {
    outputs = !outputs_measured;
    throughput = float_of_int !outputs_measured /. window;
    window;
    consumed = !consumed;
    lost;
    executions;
    busy;
    horizon;
  }

let measured_loss_rate r ~task =
  if task < 0 || task >= Array.length r.executions then
    invalid_arg "Desim.measured_loss_rate: task out of range";
  if r.executions.(task) = 0 then nan
  else float_of_int r.lost.(task) /. float_of_int r.executions.(task)
