type law = { mtbf : float; mttr : float; wear : float }

type queue = Fifo | Priority

type t = { laws : law array; crews : int; queue : queue }

let check_law l =
  if Float.is_nan l.mtbf || l.mtbf <= 0.0 then
    invalid_arg "Breakdown: mtbf must be positive (infinity = never fails)";
  if Float.is_nan l.mttr || l.mttr < 0.0 then
    invalid_arg "Breakdown: mttr must be non-negative";
  if Float.is_nan l.wear || l.wear < 0.0 then
    invalid_arg "Breakdown: wear must be non-negative"

let immortal = { mtbf = infinity; mttr = 0.0; wear = 0.0 }

let make ?(crews = max_int) ?(queue = Fifo) laws =
  if crews < 1 then invalid_arg "Breakdown.make: need at least one crew";
  Array.iter check_law laws;
  { laws; crews; queue }

let uniform ~machines ~mtbf ~mttr ?(wear = 0.0) ?crews ?queue () =
  if machines < 1 then invalid_arg "Breakdown.uniform: need machines >= 1";
  make ?crews ?queue (Array.make machines { mtbf; mttr; wear })

let availability l =
  if l.mtbf = infinity || l.mttr = 0.0 then 1.0
  else if l.mttr = infinity then 0.0
  else l.mtbf /. (l.mtbf +. l.mttr)

let machines t = Array.length t.laws

let queue_name = function Fifo -> "fifo" | Priority -> "priority"

let queue_of_string = function
  | "fifo" -> Some Fifo
  | "priority" -> Some Priority
  | _ -> None
