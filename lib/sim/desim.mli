(** Discrete-event simulation of a micro-factory under a mapping.

    Products stream through the application graph: every machine repeatedly
    picks a ready task among those allocated to it — the one furthest
    behind its required share of surviving production (survivors divided
    by the analytic product count of the task's successor), ties broken
    toward the system output.  This proportional-share dispatch runs
    every branch of an assembly at the failure-adjusted rate its
    successor needs; simpler policies all failed fuzzing (each failure
    is pinned in [test/fuzz/corpus]): static downstream-first priority
    starved sibling branches sharing a machine, emptiest-output-buffer
    livelocked when another machine drained a buffer the instant it was
    filled, and unweighted production balancing underfed high-loss
    branches that must run more often than their siblings.  The chosen
    task consumes one product from
    each predecessor buffer, works for [w(i,u)] time units, and loses the
    product with probability [f(i,u)].  Source
    tasks draw from an unlimited raw-material supply, matching the paper's
    throughput regime ("a large number of products must be produced",
    initialization and clean-up phases abstracted away).

    The measured steady-state throughput converges to the analytic
    [1 / period] of {!Mf_core.Period} — the validation the paper's C++
    simulator provided. *)

type result = {
  outputs : int;  (** finished products during the measurement window *)
  throughput : float;  (** outputs per time unit over the window *)
  window : float;  (** measurement window length *)
  consumed : int;  (** raw products drawn by source tasks (whole run) *)
  lost : int array;  (** products destroyed, per task (whole run) *)
  executions : int array;  (** executions completed, per task (whole run) *)
  busy : float array;  (** busy time per machine (whole run) *)
  horizon : float;  (** total simulated time *)
}

(** [run ?warmup ?buffer_capacity ~horizon ~seed inst mp] simulates until
    [horizon] (time units, i.e. ms for paper-style instances), discarding
    outputs before [warmup] (default: [horizon / 5]).

    [buffer_capacity] bounds the number of finished-but-unconsumed products
    each non-final task may hold (default: unbounded, the paper's model).
    A machine will not start a task whose output buffer is full, so finite
    capacities model blocking lines; throughput can only decrease.
    @raise Invalid_argument if [horizon <= warmup], [buffer_capacity < 1],
    or the mapping is invalid for the instance. *)
val run :
  ?warmup:float ->
  ?buffer_capacity:int ->
  horizon:float ->
  seed:int ->
  ?on_event:(Event.t -> unit) ->
  Mf_core.Instance.t ->
  Mf_core.Mapping.t ->
  result

(** [measured_loss_rate r ~task] is the empirical failure rate of a task
    over the whole run.  A task that never executed has no estimate: the
    result is [nan] (0/0), {e deliberately} — averaging it with other
    rates or comparing it would silently poison the result, so callers
    must test [executions.(task) > 0] first (or use
    {!Metrics.loss_summary}, which reports the missing estimate as
    [None] and renders it as n/a). *)
val measured_loss_rate : result -> task:int -> float
