(** Discrete-event simulation of a micro-factory under a mapping.

    Products stream through the application graph: every machine repeatedly
    picks a ready task among those allocated to it — the one furthest
    behind its required share of surviving production (survivors divided
    by the analytic product count of the task's successor), ties broken
    toward the system output.  This proportional-share dispatch runs
    every branch of an assembly at the failure-adjusted rate its
    successor needs; simpler policies all failed fuzzing (each failure
    is pinned in [test/fuzz/corpus]): static downstream-first priority
    starved sibling branches sharing a machine, emptiest-output-buffer
    livelocked when another machine drained a buffer the instant it was
    filled, and unweighted production balancing underfed high-loss
    branches that must run more often than their siblings.  The chosen
    task consumes one product from
    each predecessor buffer, works for [w(i,u)] time units, and loses the
    product with probability [f(i,u)].  Source
    tasks draw from an unlimited raw-material supply, matching the paper's
    throughput regime ("a large number of products must be produced",
    initialization and clean-up phases abstracted away).

    The measured steady-state throughput converges to the analytic
    [1 / period] of {!Mf_core.Period} — the validation the paper's C++
    simulator provided.

    {2 Dynamics: breakdowns, repairs and online re-mapping}

    With a {!Breakdown} model the machines are subject to
    operation-dependent failures: hazard accrues only while a machine
    works, an execution interrupted by a failure holds its work in place
    and {e resumes} after repair (work conserving), and repairs draw on a
    finite crew pool.  A down machine starts nothing, so its input buffers
    hold and — under a finite [buffer_capacity] — upstream machines
    eventually block on full buffers.  With [wear > 0] the failure law is
    history-based: each unit produced since the last repair scales the
    hazard rate up (Knapp & Göttlich).  For [wear = 0], unbounded buffers
    and an uncontended crew pool the long-run throughput is the
    availability-adjusted steady state
    [min_u (avail_u / load_u)] with [avail_u = mtbf/(mtbf+mttr)] — the
    breakdown-scenario fuzz oracle pins the simulator to that analytic
    value.

    An optional {!remapper} is consulted after every availability change
    (breakdown or repair).  Its decision costs simulated time — [evals]
    work units at [remap_eval_cost] each — and the resulting commit
    {e races the next failure}: if availability changes again before the
    commit lands, the decision is stale and is dropped.  Moves only
    re-route {e future} executions; an in-flight product stays with the
    machine holding it. *)

type result = {
  outputs : int;  (** finished products during the measurement window *)
  throughput : float;  (** outputs per time unit over the window *)
  window : float;  (** measurement window length *)
  consumed : int;  (** raw products drawn by source tasks (whole run) *)
  lost : int array;  (** products destroyed, per task (whole run) *)
  executions : int array;  (** executions completed, per task (whole run) *)
  busy : float array;  (** busy time per machine (whole run) *)
  horizon : float;  (** total simulated time *)
  breakdowns : int array;
      (** failures per machine, including instantly-repaired ones *)
  downtime : float array;  (** time spent down within the horizon *)
  remaps : int;  (** re-map commits that landed (stale ones dropped) *)
  remap_latencies : float array;
      (** simulated decision latency of each landed commit, in order *)
  final_mapping : int array;  (** the live allocation when the run ended *)
}

(** An availability change the re-mapper is consulted about. *)
type change = Down of int | Up of int

type remap_decision = {
  moves : (int * int) array;  (** (task, new machine) re-assignments *)
  evals : int;  (** work units spent deciding — converted to latency *)
}

(** [remapper ~time ~down ~mapping change] is consulted right after the
    availability change has been applied ([down] and [mapping] are fresh
    copies of the live state).  [None] means leave the mapping alone. *)
type remapper =
  time:float -> down:bool array -> mapping:int array -> change ->
  remap_decision option

(** [run ?warmup ?buffer_capacity ~horizon ~seed inst mp] simulates until
    [horizon] (time units, i.e. ms for paper-style instances), discarding
    outputs before [warmup] (default: [horizon / 5]).

    [buffer_capacity] bounds the number of finished-but-unconsumed products
    each non-final task may hold (default: unbounded, the paper's model).
    A machine will not start a task whose output buffer is full, so finite
    capacities model blocking lines; throughput can only decrease.

    [breakdowns] enables the availability model.  Degenerate laws are
    byte-identical to the plain simulation on every behavioural field:
    [mttr = 0] folds instant repairs into the busy segment they interrupt,
    and [mtbf = infinity] never consumes hazard — breakdown draws come
    from per-machine Splitmix64-derived streams that never touch the
    product-loss stream.

    [remapper] is consulted on each breakdown/repair; [remap_eval_cost]
    (default [0.01] time units) converts its reported evaluation count
    into simulated decision latency.

    @raise Invalid_argument if [horizon <= warmup], [buffer_capacity < 1],
    the breakdown model's machine count differs from the instance's, a
    re-map move is out of range, or the mapping is invalid for the
    instance. *)
val run :
  ?warmup:float ->
  ?buffer_capacity:int ->
  ?breakdowns:Breakdown.t ->
  ?remapper:remapper ->
  ?remap_eval_cost:float ->
  horizon:float ->
  seed:int ->
  ?on_event:(Event.t -> unit) ->
  Mf_core.Instance.t ->
  Mf_core.Mapping.t ->
  result

(** [measured_loss_rate r ~task] is the empirical failure rate of a task
    over the whole run.  A task that never executed has no estimate: the
    result is [nan] (0/0), {e deliberately} — averaging it with other
    rates or comparing it would silently poison the result, so callers
    must test [executions.(task) > 0] first (or use
    {!Metrics.loss_summary}, which reports the missing estimate as
    [None] and renders it as n/a). *)
val measured_loss_rate : result -> task:int -> float
