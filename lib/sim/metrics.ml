module Instance = Mf_core.Instance
module Mapping = Mf_core.Mapping

type machine_stats = { machine : int; utilisation : float; executions : int }

let machine_stats inst mp (r : Desim.result) =
  List.map
    (fun u ->
      let executions =
        List.fold_left (fun acc i -> acc + r.Desim.executions.(i)) 0 (Mapping.tasks_on mp ~u)
      in
      { machine = u; utilisation = r.Desim.busy.(u) /. r.Desim.horizon; executions })
    (List.init (Instance.machines inst) Fun.id)

let bottleneck inst mp r =
  let stats = machine_stats inst mp r in
  let best =
    List.fold_left
      (fun acc s ->
        match acc with
        | Some b when b.utilisation >= s.utilisation -> acc
        | _ -> Some s)
      None stats
  in
  match best with Some s -> s.machine | None -> 0

let loss_summary inst mp r =
  List.map
    (fun i ->
      (* measured_loss_rate is nan for a task that never executed (0/0 has
         no empirical estimate); surface that as None so downstream
         arithmetic and rendering never meet a silent nan. *)
      let empirical =
        if r.Desim.executions.(i) = 0 then None
        else Some (Desim.measured_loss_rate r ~task:i)
      in
      (i, empirical, Instance.f inst i (Mapping.machine mp i)))
    (List.init (Instance.task_count inst) Fun.id)

let report inst mp r =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "simulation over %.0f time units (window %.0f): %d outputs, %.6g /unit\n"
       r.Desim.horizon r.Desim.window r.Desim.outputs r.Desim.throughput);
  Buffer.add_string buf
    (Printf.sprintf "raw products consumed: %d\n" r.Desim.consumed);
  Buffer.add_string buf "machines:\n";
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "  M%d: utilisation %5.1f%%, %d executions%s\n" s.machine
           (100.0 *. s.utilisation) s.executions
           (if s.machine = bottleneck inst mp r then "  <- bottleneck" else "")))
    (machine_stats inst mp r);
  Buffer.add_string buf "tasks (empirical vs configured failure rate):\n";
  List.iter
    (fun (i, empirical, configured) ->
      Buffer.add_string buf
        (Printf.sprintf "  T%d: %s vs %.4f\n" i
           (match empirical with
           | None -> "n/a"
           | Some rate -> Printf.sprintf "%.4f" rate)
           configured))
    (loss_summary inst mp r);
  Buffer.contents buf
