module Instance = Mf_core.Instance
module Mapping = Mf_core.Mapping

type machine_stats = { machine : int; utilisation : float; executions : int }

let machine_stats inst mp (r : Desim.result) =
  List.map
    (fun u ->
      let executions =
        List.fold_left (fun acc i -> acc + r.Desim.executions.(i)) 0 (Mapping.tasks_on mp ~u)
      in
      { machine = u; utilisation = r.Desim.busy.(u) /. r.Desim.horizon; executions })
    (List.init (Instance.machines inst) Fun.id)

let bottleneck inst mp r =
  let stats = machine_stats inst mp r in
  let best =
    List.fold_left
      (fun acc s ->
        match acc with
        | Some b when b.utilisation >= s.utilisation -> acc
        | _ -> Some s)
      None stats
  in
  match best with Some s -> s.machine | None -> 0

let loss_summary inst mp r =
  List.map
    (fun i ->
      (* measured_loss_rate is nan for a task that never executed (0/0 has
         no empirical estimate); surface that as None so downstream
         arithmetic and rendering never meet a silent nan. *)
      let empirical =
        if r.Desim.executions.(i) = 0 then None
        else Some (Desim.measured_loss_rate r ~task:i)
      in
      (i, empirical, Instance.f inst i (Mapping.machine mp i)))
    (List.init (Instance.task_count inst) Fun.id)

let measured_availability (r : Desim.result) =
  Array.map (fun d -> 1.0 -. (d /. r.Desim.horizon)) r.Desim.downtime

let adjusted_throughput inst mp model =
  let loads = Mf_core.Period.machine_periods inst mp in
  let m = Instance.machines inst in
  if Array.length model.Breakdown.laws <> m then
    invalid_arg "Metrics.adjusted_throughput: model machine count mismatch";
  let best = ref infinity in
  for u = 0 to m - 1 do
    if loads.(u) > 0.0 then
      best := Float.min !best (Breakdown.availability model.Breakdown.laws.(u) /. loads.(u))
  done;
  if !best = infinity then 0.0 else !best

let lost_per_breakdown inst mp (r : Desim.result) =
  let total = Array.fold_left ( + ) 0 r.Desim.breakdowns in
  if total = 0 then None
  else
    let p = Mf_core.Period.period inst mp in
    let expected = if p > 0.0 then r.Desim.window /. p else 0.0 in
    Some ((expected -. float_of_int r.Desim.outputs) /. float_of_int total)

let remap_latency_histogram ?(buckets = 8) (r : Desim.result) =
  if buckets < 1 then invalid_arg "Metrics.remap_latency_histogram: buckets < 1";
  let ls = r.Desim.remap_latencies in
  if Array.length ls = 0 then []
  else begin
    let hi = Array.fold_left Float.max 0.0 ls in
    (* one flat bucket when every latency is identical (or zero) *)
    let width = if hi > 0.0 then hi /. float_of_int buckets else 1.0 in
    let counts = Array.make buckets 0 in
    Array.iter
      (fun l ->
        let b = min (buckets - 1) (int_of_float (l /. width)) in
        counts.(b) <- counts.(b) + 1)
      ls;
    List.init buckets (fun b ->
        (width *. float_of_int b, width *. float_of_int (b + 1), counts.(b)))
  end

let report inst mp r =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "simulation over %.0f time units (window %.0f): %d outputs, %.6g /unit\n"
       r.Desim.horizon r.Desim.window r.Desim.outputs r.Desim.throughput);
  Buffer.add_string buf
    (Printf.sprintf "raw products consumed: %d\n" r.Desim.consumed);
  Buffer.add_string buf "machines:\n";
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "  M%d: utilisation %5.1f%%, %d executions%s\n" s.machine
           (100.0 *. s.utilisation) s.executions
           (if s.machine = bottleneck inst mp r then "  <- bottleneck" else "")))
    (machine_stats inst mp r);
  Buffer.add_string buf "tasks (empirical vs configured failure rate):\n";
  List.iter
    (fun (i, empirical, configured) ->
      Buffer.add_string buf
        (Printf.sprintf "  T%d: %s vs %.4f\n" i
           (match empirical with
           | None -> "n/a"
           | Some rate -> Printf.sprintf "%.4f" rate)
           configured))
    (loss_summary inst mp r);
  Buffer.contents buf

let dynamic_report ?model inst mp (r : Desim.result) =
  let buf = Buffer.create 512 in
  let total_breakdowns = Array.fold_left ( + ) 0 r.Desim.breakdowns in
  Buffer.add_string buf
    (Printf.sprintf "dynamics: %d breakdowns, %d re-maps\n" total_breakdowns
       r.Desim.remaps);
  let avail = measured_availability r in
  Array.iteri
    (fun u a ->
      if r.Desim.breakdowns.(u) > 0 || r.Desim.downtime.(u) > 0.0 then
        Buffer.add_string buf
          (Printf.sprintf "  M%d: %d breakdowns, down %.0f (availability %5.1f%%)\n"
             u r.Desim.breakdowns.(u) r.Desim.downtime.(u) (100.0 *. a)))
    avail;
  (match model with
  | None -> ()
  | Some model ->
    Buffer.add_string buf
      (Printf.sprintf "availability-adjusted analytic throughput: %.6g /unit (measured %.6g)\n"
         (adjusted_throughput inst mp model) r.Desim.throughput));
  (match lost_per_breakdown inst mp r with
  | None -> Buffer.add_string buf "products lost per breakdown: n/a\n"
  | Some l -> Buffer.add_string buf (Printf.sprintf "products lost per breakdown: %.2f\n" l));
  (match remap_latency_histogram r with
  | [] -> ()
  | hist ->
    Buffer.add_string buf "re-map latency histogram:\n";
    List.iter
      (fun (lo, hi, count) ->
        if count > 0 then
          Buffer.add_string buf
            (Printf.sprintf "  [%8.3f, %8.3f): %d\n" lo hi count))
      hist);
  Buffer.contents buf
