(** Executable form of the paper's Theorem 2 NP-hardness reduction.

    Theorem 2 shows that the one-to-one mapping problem is NP-hard, even
    with constant processing cost [w = 1] and machine-attached failure
    rates, by reduction from 3-PARTITION.  This module constructs the
    instance [I2] of the proof from a 3-PARTITION instance [I1]:

    - the application is [k] chains of three tasks sharing one final task
      (an in-tree on [3k + 1] tasks);
    - machines [M_u] for [u < 3k] have failure rate
      [f_u = (2^{z_u} - 1) / 2^{z_u}]; the extra machine never fails;
    - all processing times are 1.

    [I1] has a solution iff [I2] admits a one-to-one mapping with period at
    most [K = 2^Z] — the equivalence exercised (on small integers, where
    the powers of two stay exactly representable) by the test-suite, using
    the exact one-to-one solver as the oracle. *)

(** A 3-PARTITION instance: [3k] integers summing to [k * target], asking
    for [k] disjoint triples each summing to [target]. *)
type partition_instance = { z : int array; target : int }

(** [validate p] checks the shape ([|z| = 3k], sum [= k * target], each
    [z] strictly between [target/4] and [target/2] is {e not} enforced —
    the reduction works without it).
    @raise Invalid_argument when malformed. *)
val validate : partition_instance -> unit

(** [build p] constructs the instance [I2] of the proof.
    @raise Invalid_argument when some [2^z] is not exactly representable
    (i.e. [z > 40]). *)
val build : partition_instance -> Mf_core.Instance.t

(** [threshold p] is the period bound [K = 2^target]. *)
val threshold : partition_instance -> float

(** [solvable_by_oracle p] decides [I1] by solving [I2] exactly and
    comparing to [K] — only usable on small [k], of course. *)
val solvable_by_oracle : partition_instance -> bool

(** [brute_force_3partition p] decides 3-PARTITION directly (exponential;
    tests only). *)
val brute_force_3partition : partition_instance -> bool

(** {1 Instance reductions}

    Besides the Theorem 2 reduction this module hosts the {e instance}
    reductions shared by the exact solvers. *)

(** [machine_classes inst] partitions machines into symmetry equivalence
    classes: [classes.(u)] is the smallest machine index [v] such that
    machines [u] and [v] have bit-identical [(w, f)] columns ([w] for
    every type, [f] for every task).  Interchanging two machines of one
    class permutes the loads of any mapping without changing the period —
    bit-for-bit, because the columns are bit-equal — so a search need only
    branch on the lowest-index {e unused} representative of each class.
    Computed once per solve in O(m^2 (n + p)). *)
val machine_classes : Mf_core.Instance.t -> int array

(** [has_machine_symmetry inst] is true when some class has >= 2 members
    (i.e. symmetry breaking can prune anything at all). *)
val has_machine_symmetry : Mf_core.Instance.t -> bool
