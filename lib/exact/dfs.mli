(** Exact specialized-mapping solver by depth-first branch-and-bound.

    Plays the role CPLEX plays in the paper's Section 7.3: computing the
    optimal specialized mapping on small instances.  Tasks are assigned in
    backward order (successors first) so the product counts [x_i] are exact
    at every node; branches try machines by increasing resulting load and
    are pruned against the incumbent (seeded with the best heuristic
    mapping) and a static per-task lower bound.

    For the General rule an optional reconfiguration penalty is supported
    (see {!general}).

    Like the paper's MIP runs — which "with more than 15 tasks ... is not
    able to find solutions anymore" — the search carries a node budget;
    when it is exhausted the best mapping found so far is returned with
    [optimal = false]. *)

type result = {
  mapping : Mf_core.Mapping.t;
  period : float;
  optimal : bool;  (** true when the search space was exhausted *)
  nodes : int;  (** number of branch nodes explored *)
}

(** [solve ?node_budget ~rule inst] solves the mapping problem exactly
    under any of the paper's three rules (default budget: 20 million
    nodes).  The incumbent is seeded with the best heuristic mapping for
    the specialized and general rules, and with a greedy injective
    assignment for one-to-one.
    @raise Invalid_argument when no mapping satisfying [rule] exists
    ([m < p] for specialized, [m < n] for one-to-one). *)
val solve :
  ?node_budget:int ->
  ?setup:float ->
  rule:Mf_core.Mapping.rule ->
  Mf_core.Instance.t ->
  result

(** [specialized ?node_budget inst] is [solve ~rule:Specialized]. *)
val specialized : ?node_budget:int -> Mf_core.Instance.t -> result

(** [general ?node_budget ?setup inst] is [solve ~rule:General].  With
    [setup > 0], a machine hosting [k >= 2] distinct task {e types} pays
    [k * setup] time units per period — the cyclic steady-state convention
    of {!Mf_core.Period.with_setup}, with which the reported period agrees
    exactly — and the search optimises the penalised period, quantifying
    when reconfiguration costs erase the advantage of general mappings.
    Unlike the other rules, [m >= p] is {e not} required: when the
    specialized heuristics cannot seed the incumbent, the best
    single-machine mapping does. *)
val general : ?node_budget:int -> ?setup:float -> Mf_core.Instance.t -> result

(** [one_to_one ?node_budget inst] is [solve ~rule:One_to_one]. *)
val one_to_one : ?node_budget:int -> Mf_core.Instance.t -> result
