(** Exact mapping solver by depth-first branch-and-bound.

    Plays the role CPLEX plays in the paper's Section 7.3: computing the
    optimal mapping on small instances.  Tasks are assigned in backward
    order (successors first) so the product counts [x_i] are exact at
    every node; branches try machines by increasing resulting load.

    The engine prunes with, in increasing order of sophistication:

    - the incumbent, seeded with the best mapping over the whole
      {!Mf_heuristics.Registry} (greedy injective seed for one-to-one);
    - an {e incremental} lower bound maintained during descent: committing
      a task fixes its product count and tightens each unassigned
      predecessor's optimistic contribution from the static optimum to
      [x * min_u w/(1-f)] in O(preds) per node, combined with the packing
      bound [(committed load + remaining optimistic load) / m];
    - a {e dominance table} keyed on the canonical frontier signature
      (depth, product counts crossing the frontier, machine symmetry
      class and rule commitment sequence): a state whose canonical load
      vector is componentwise >= a fully-explored one cannot improve the
      incumbent;
    - {e machine symmetry breaking}: machines with bit-identical [(w, f)]
      columns (see {!Reduction.machine_classes}) are interchangeable, so
      only the lowest-index unused member of each class is branched on.

    The root level is split into one subtree per (canonical) machine of
    the first task, each with a jobs-independent node budget; with
    [jobs > 1] (or an external [pool]) the subtrees run on a
    {!Mf_parallel.Pool}.  Subtrees that exhaust their slice are {e split
    into their children} and re-run with the redistributed budget —
    dynamic redistribution, so an unbalanced tree sheds its heavy subtree
    into finer pieces that spread across domains.  One exception: an
    exhausted subtree whose projected next-round slice is at least twice
    the slice it just failed on gets a single {e unsplit retry} before
    being split — when most siblings finished cheaply, the freed budget
    often closes a heavy subtree whole, where splitting it would throw
    away the partial exploration and re-pay the prefix from scratch.
    Split and retry decisions and per-subtree budgets depend only on
    deterministic aggregates of the
    previous round, and each subtree searches against its own incumbent
    seeded from the deterministic round start, so node counts, prune
    counters and the exhaustion flag — not just the period — are
    bit-identical for every [--jobs] value.  The reported {e mapping} is
    re-derived by a serial canonical reconstruction pass, so results for
    any [--jobs] agree with the serial run bit-for-bit whenever the
    search proves optimality.

    Like the paper's MIP runs — which "with more than 15 tasks ... is not
    able to find solutions anymore" — the search carries a node budget;
    when it is exhausted the best mapping found so far is returned with
    [optimal = false]. *)

(** Search counters, for benches and tests. *)
type stats = {
  bound_prunes : int;  (** children cut by incumbent or lower bound *)
  dominance_prunes : int;  (** states cut by the dominance table *)
  dominance_states : int;  (** load vectors stored in the table *)
  symmetry_skips : int;  (** branches skipped by symmetry breaking *)
  best_at_node : int;
      (** node count (within its root subtree) when the winning incumbent
          was found; 0 when the heuristic seed was never improved *)
  root_subtrees : int;
      (** total subtrees spawned over all rounds: the initial root split
          plus every child emitted by dynamic re-splitting *)
  certify_nodes : int;
      (** nodes spent by the serial mapping-reconstruction pass, counted
          separately from [nodes] (which measures the optimization search
          only, so node counts compare like-for-like with
          {!solve_static}) *)
  lp_solves : int;
      (** per-node LP bound evaluations (0 without a [node_bound] oracle) *)
  lp_prunes : int;
      (** nodes cut by the LP bound after the cheap incremental bound and
          the dominance test both passed *)
  nogood_records : int;
      (** LP-pruned frontiers recorded into the dominance table as
          no-goods, so identical-key frontiers with componentwise >=
          loads later prune without re-solving the LP *)
}

(** Per-node LP bound oracle (see {!solve}'s [node_bound]).  This
    library deliberately does not depend on [Mf_lp], so the oracle is
    three closures; [Mf_lp.Node_bound] is the canonical implementation,
    wired up by [Mf_solve.Engine] and the bench.  Contract: after
    [nb_push]ing the search's assignment prefix (task, machine) pair by
    pair, [nb_bound] returns a sound lower bound on the period of every
    completion of that prefix — [0.0] when it has nothing to say — and
    [nb_pop] undoes the latest push.  The bound must be a pure function
    of the pushed prefix; [--jobs] determinism relies on it. *)
type node_bound = {
  nb_push : task:int -> machine:int -> unit;
  nb_pop : unit -> unit;
  nb_bound : cutoff:float -> float;
  nb_pivots : unit -> int;
      (** cumulative simplex pivots this oracle has spent — read as
          deltas around each [nb_bound] call when [pivot_charge > 0],
          so oracle work can be charged against the node budget *)
}

type result = {
  mapping : Mf_core.Mapping.t;
  period : float;
  optimal : bool;  (** true when the search space was exhausted *)
  nodes : int;  (** number of branch nodes explored *)
  stats : stats;
}

(** [solve ?node_budget ?setup ?jobs ?pool ?dominance ?symmetry ~rule inst]
    solves the mapping problem exactly under any of the paper's three
    rules (default budget: 20 million nodes, split evenly over the root
    subtrees).  [jobs] (default 1) runs the root subtrees on the
    process-wide {!Mf_parallel.Pool.shared} pool of that many domains —
    amortized across solves, no domain spawn/join per call; [pool] runs
    them on that external pool instead (the portfolio and the bench
    thread one through), ignoring [jobs].  [symmetry] (default true) and
    [dominance] toggle the
    corresponding pruning rules, for ablation.  [dominance] defaults to
    {e auto}: on exactly when two same-type tasks share a bit-identical
    failure row — the necessary condition for frontier signatures to
    repeat across prefixes and the table to hit (on fully heterogeneous
    instances every signature is unique and maintenance would be pure
    overhead).

    [lower_bound] is a {e certified} lower bound on the optimal period —
    typically the divisible-workload LP optimum from
    [Mf_lp.Splitting.solve] (kept caller-supplied so this library never
    depends on the LP stack).  When the incumbent meets it the search
    stops with [optimal = true] immediately (the seed incumbent meeting
    it reports [nodes = 0]), and a budget-exhausted run whose best
    period meets it is upgraded to [optimal = true].  Soundness is the
    caller's contract: a bound that is not actually a lower bound can
    certify a suboptimal mapping.

    [incumbent] is a caller-supplied starting incumbent — the shared
    best-so-far of [Mf_solve.Portfolio]'s earlier stages — merged with
    the internal heuristic seed by strict minimum, so it can only
    tighten the search.  The pair is [(mapping, period)] where [period]
    is the mapping's {e penalised} period under the same [setup]
    convention the search optimises ({!Mf_core.Period.with_setup} for
    the general rule, {!Mf_core.Period.period} otherwise); supplying a
    period {e below} the mapping's true one is unsound for the reported
    mapping the same way a wrong [lower_bound] is.

    [node_bound] is a factory for per-node LP bound oracles: when
    supplied, every node below the root evaluates a warm-started LP
    bound of its assignment prefix (after the incremental bound and the
    dominance test, which are much cheaper) and is pruned when the bound
    cannot beat the incumbent; pruned frontiers are recorded into the
    dominance table as no-goods.  A {e factory} rather than an oracle:
    it is invoked once per search, so parallel subtrees never share
    mutable LP state and [--jobs] byte-identity is preserved.  Supplying
    [node_bound] also flips the [dominance] auto-default to on (the
    table doubles as the no-good store).  Soundness is the caller's
    contract, exactly as for [lower_bound].

    [pivot_charge] (default 0) prices one oracle simplex pivot in
    node-equivalents: each subtree charges its own oracle's pivot
    deltas ([nb_pivots]) against its budget slice alongside plain
    nodes, so deadline-derived budgets stay honest when the per-node LP
    bound is active.  The charge is a pure per-subtree function, so
    [--jobs] byte-identity is unaffected; 0 reproduces the plain
    node-count accounting exactly (the convention [Nodes] budgets and
    the committed BENCH_exact rows assume).

    [cancel] enables cooperative cancellation: the token is polled at
    every node and between rounds, and a set token makes [solve] raise
    {!Mf_parallel.Pool.Cancelled} (never a partial result).  Unset or
    absent tokens change nothing.
    @raise Invalid_argument when no mapping satisfying [rule] exists
    ([m < p] for specialized, [m < n] for one-to-one), or [jobs < 1], or
    [setup < 0], or [pivot_charge < 0], or [incumbent] violates [rule].
    @raise Mf_parallel.Pool.Cancelled when [cancel]'s token is set. *)
val solve :
  ?node_budget:int ->
  ?setup:float ->
  ?jobs:int ->
  ?pool:Mf_parallel.Pool.t ->
  ?dominance:bool ->
  ?symmetry:bool ->
  ?lower_bound:float ->
  ?incumbent:Mf_core.Mapping.t * float ->
  ?node_bound:(unit -> node_bound) ->
  ?pivot_charge:int ->
  ?cancel:Mf_parallel.Pool.token ->
  rule:Mf_core.Mapping.rule ->
  Mf_core.Instance.t ->
  result

(** [solve_static ?node_budget ?setup ~rule inst] is the previous
    generation of the solver — incumbent plus a {e static} per-task
    suffix bound only, serial, incumbent seeded from H2/H3/H4w.  Kept as
    the baseline the bench's node-reduction factors are measured against
    and as an independent witness for the differential tests. *)
val solve_static :
  ?node_budget:int ->
  ?setup:float ->
  rule:Mf_core.Mapping.rule ->
  Mf_core.Instance.t ->
  result

(** [greedy_one_to_one inst] is the injective greedy seed of the
    one-to-one search: tasks in backward order, each to the unused
    machine minimising its [x * w] contribution.  Exposed so the
    unified solver's heuristic stage has a one-to-one entry (no registry
    heuristic is injective).
    @raise Invalid_argument when [m < n]. *)
val greedy_one_to_one : Mf_core.Instance.t -> Mf_core.Mapping.t

(** [specialized ?node_budget ?jobs ?pool inst] is [solve ~rule:Specialized]. *)
val specialized :
  ?node_budget:int -> ?jobs:int -> ?pool:Mf_parallel.Pool.t -> Mf_core.Instance.t -> result

(** [general ?node_budget ?setup ?jobs inst] is [solve ~rule:General].
    With [setup > 0], a machine hosting [k >= 2] distinct task {e types}
    pays [k * setup] time units per period — the cyclic steady-state
    convention of {!Mf_core.Period.with_setup}, with which the reported
    period agrees exactly — and the search optimises the penalised
    period, quantifying when reconfiguration costs erase the advantage of
    general mappings.  Unlike the other rules, [m >= p] is {e not}
    required: when the specialized heuristics cannot seed the incumbent,
    the best single-machine mapping does. *)
val general :
  ?node_budget:int ->
  ?setup:float ->
  ?jobs:int ->
  ?pool:Mf_parallel.Pool.t ->
  Mf_core.Instance.t ->
  result

(** [one_to_one ?node_budget ?jobs ?pool inst] is [solve ~rule:One_to_one]. *)
val one_to_one :
  ?node_budget:int -> ?jobs:int -> ?pool:Mf_parallel.Pool.t -> Mf_core.Instance.t -> result
