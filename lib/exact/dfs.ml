module Instance = Mf_core.Instance
module Workflow = Mf_core.Workflow
module Mapping = Mf_core.Mapping
module Period = Mf_core.Period
module Registry = Mf_heuristics.Registry
module State = Mf_eval.State

type result = { mapping : Mf_core.Mapping.t; period : float; optimal : bool; nodes : int }

(* Static lower bound: the cheapest possible contribution of each task,
   using the most optimistic downstream failure rates. *)
let min_contribution inst =
  let n = Instance.task_count inst and m = Instance.machines inst in
  let wf = Instance.workflow inst in
  let min_x = Array.make n 0.0 in
  Array.iter
    (fun i ->
      let fmin = ref infinity in
      for u = 0 to m - 1 do
        fmin := Float.min !fmin (Instance.f inst i u)
      done;
      let downstream = match Workflow.successor wf i with None -> 1.0 | Some j -> min_x.(j) in
      min_x.(i) <- downstream /. (1.0 -. !fmin))
    (Workflow.backward_order wf);
  Array.init n (fun i ->
      let best = ref infinity in
      for u = 0 to m - 1 do
        best := Float.min !best (min_x.(i) *. Instance.w inst i u)
      done;
      !best)

(* Greedy injective assignment seeding the one-to-one search: backward
   tasks, each to the unused machine with the smallest x*w. *)
let greedy_one_to_one inst =
  let n = Instance.task_count inst and m = Instance.machines inst in
  let wf = Instance.workflow inst in
  let a = Array.make n (-1) in
  let x = Array.make n nan in
  let used = Array.make m false in
  Array.iter
    (fun task ->
      let x_succ = match Workflow.successor wf task with None -> 1.0 | Some j -> x.(j) in
      let best = ref (-1) and best_cost = ref infinity in
      for u = 0 to m - 1 do
        if not used.(u) then begin
          let xi = x_succ /. (1.0 -. Instance.f inst task u) in
          let cost = xi *. Instance.w inst task u in
          if cost < !best_cost then begin
            best := u;
            best_cost := cost
          end
        end
      done;
      used.(!best) <- true;
      a.(task) <- !best;
      x.(task) <- x_succ /. (1.0 -. Instance.f inst task !best))
    (Workflow.backward_order wf);
  Mapping.of_array inst a

let check_rule_feasible rule inst =
  match rule with
  | Mapping.Specialized ->
    if Instance.machines inst < Instance.type_count inst then
      invalid_arg "Dfs: fewer machines than task types - no specialized mapping exists"
  | Mapping.One_to_one ->
    if Instance.machines inst < Instance.task_count inst then
      invalid_arg "Dfs: fewer machines than tasks - no one-to-one mapping exists"
  | Mapping.General -> ()

(* Every task on the single machine minimising the resulting penalised
   period — the only heuristic-free general mapping always available, used
   when m < p leaves the specialized heuristics infeasible. *)
let best_single_machine ~setup inst =
  let n = Instance.task_count inst and m = Instance.machines inst in
  let best = ref None in
  for u = 0 to m - 1 do
    let mp = Mapping.of_array inst (Array.make n u) in
    let p = Period.with_setup inst mp ~setup in
    match !best with
    | Some (_, bp) when bp <= p -> ()
    | _ -> best := Some (mp, p)
  done;
  match !best with Some r -> r | None -> assert false

let incumbent ~setup rule inst =
  match rule with
  | Mapping.One_to_one ->
    let mp = greedy_one_to_one inst in
    (mp, Period.period inst mp)
  | Mapping.Specialized | Mapping.General ->
    if rule = Mapping.General && Instance.machines inst < Instance.type_count inst then
      best_single_machine ~setup inst
    else begin
      (* A specialized mapping is also a valid general mapping, and hosts
         one type per machine so it pays no setup. *)
      let pick =
        List.fold_left
          (fun acc h ->
            let mp = Registry.solve h inst in
            let p = Period.period inst mp in
            match acc with Some (_, bp) when bp <= p -> acc | _ -> Some (mp, p))
          None
          [ Registry.H2; Registry.H3; Registry.H4w ]
      in
      match pick with Some r -> r | None -> assert false
    end

let solve ?(node_budget = 20_000_000) ?(setup = 0.0) ~rule inst =
  if setup < 0.0 then invalid_arg "Dfs.solve: negative setup time";
  let n = Instance.task_count inst and m = Instance.machines inst in
  let wf = Instance.workflow inst in
  check_rule_feasible rule inst;
  let order = Workflow.backward_order wf in
  let contrib_lb = min_contribution inst in
  (* Largest static lower bound over the tasks assigned at depth >= k. *)
  let suffix_lb = Array.make (n + 1) 0.0 in
  for k = n - 1 downto 0 do
    suffix_lb.(k) <- Float.max suffix_lb.(k + 1) contrib_lb.(order.(k))
  done;
  let seed_mp, seed_p = incumbent ~setup rule inst in
  let best_mp = ref seed_mp and best_p = ref seed_p in
  (* x, allocation and load bookkeeping live in the shared incremental
     state; assignments are journalled and backtracked with State.undo. *)
  let st = State.create inst in
  (* For Specialized: type a machine is locked to (-1 = free); for
     One_to_one: any non-negative value marks the machine taken; unused for
     General. *)
  let dedicated = Array.make m (-1) in
  (* Distinct types currently hosted per machine (General rule only, for
     the reconfiguration penalty). *)
  let hosted_types = Array.make m [] in
  (* Cyclic steady-state convention (see Period.with_setup): a machine
     ending up with k >= 2 distinct types pays k switches per period.
     Charged incrementally as types arrive: the second distinct type costs
     2*setup (the switch to it and the switch closing the cycle), each
     further one costs setup — totals telescope to k*setup. *)
  let setup_cost u ty =
    if rule <> Mapping.General || setup = 0.0 then 0.0
    else
      match hosted_types.(u) with
      | [] -> 0.0
      | tys when List.mem ty tys -> 0.0
      | [ _ ] -> 2.0 *. setup
      | _ -> setup
  in
  let nodes = ref 0 in
  let exhausted = ref false in
  let machine_allowed u ty =
    match rule with
    | Mapping.General -> true
    | Mapping.Specialized -> dedicated.(u) < 0 || dedicated.(u) = ty
    | Mapping.One_to_one -> dedicated.(u) < 0
  in
  let rec go k current_max =
    if !nodes >= node_budget then exhausted := true
    else if k = n then begin
      if current_max < !best_p then begin
        best_p := current_max;
        best_mp := State.mapping st
      end
    end
    else begin
      let task = order.(k) in
      let ty = Workflow.ttype wf task in
      let candidates = ref [] in
      for u = m - 1 downto 0 do
        if machine_allowed u ty then begin
          (* The reconfiguration penalty is folded into the load via
             [~extra], so deeper levels and the leaf period see it. *)
          let extra = setup_cost u ty in
          let exec = State.try_assign st ~extra ~task ~machine:u in
          if exec < !best_p then candidates := (exec, u, extra) :: !candidates
        end
      done;
      let sorted = List.sort (fun (e1, _, _) (e2, _, _) -> Float.compare e1 e2) !candidates in
      List.iter
        (fun (exec, u, extra) ->
          if (not !exhausted) && exec < !best_p
             && Float.max (Float.max current_max exec) suffix_lb.(k + 1) < !best_p
          then begin
            incr nodes;
            let saved_ded = dedicated.(u) in
            let saved_types = hosted_types.(u) in
            (match rule with
            | Mapping.Specialized | Mapping.One_to_one -> dedicated.(u) <- ty
            | Mapping.General ->
              if not (List.mem ty hosted_types.(u)) then
                hosted_types.(u) <- ty :: hosted_types.(u));
            State.assign_task st ~extra ~task ~machine:u;
            go (k + 1) (Float.max current_max exec);
            State.undo st;
            dedicated.(u) <- saved_ded;
            hosted_types.(u) <- saved_types
          end)
        sorted
    end
  in
  go 0 0.0;
  { mapping = !best_mp; period = !best_p; optimal = not !exhausted; nodes = !nodes }

let specialized ?node_budget inst = solve ?node_budget ~rule:Mapping.Specialized inst
let general ?node_budget ?setup inst = solve ?node_budget ?setup ~rule:Mapping.General inst
let one_to_one ?node_budget inst = solve ?node_budget ~rule:Mapping.One_to_one inst
