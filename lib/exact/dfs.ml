module Instance = Mf_core.Instance
module Workflow = Mf_core.Workflow
module Mapping = Mf_core.Mapping
module Period = Mf_core.Period
module Registry = Mf_heuristics.Registry
module State = Mf_eval.State
module Pool = Mf_parallel.Pool

type stats = {
  bound_prunes : int;
  dominance_prunes : int;
  dominance_states : int;
  symmetry_skips : int;
  best_at_node : int;
  root_subtrees : int;
  certify_nodes : int;
  lp_solves : int;
  lp_prunes : int;
  nogood_records : int;
}

let zero_stats =
  {
    bound_prunes = 0;
    dominance_prunes = 0;
    dominance_states = 0;
    symmetry_skips = 0;
    best_at_node = 0;
    root_subtrees = 1;
    certify_nodes = 0;
    lp_solves = 0;
    lp_prunes = 0;
    nogood_records = 0;
  }

(* Per-node LP bound oracle, injected by callers that can pay for an LP
   stack — this library deliberately does not depend on [Mf_lp], so the
   oracle arrives as three closures (see [Mf_lp.Node_bound] for the
   canonical implementation).  The contract: after a sequence of
   [nb_push] calls mirroring the search's assignment prefix, [nb_bound]
   returns a sound lower bound on the period of every completion of that
   prefix (0.0 when it has nothing to say), and [nb_pop] undoes the most
   recent push.  The bound must be a pure function of the pushed prefix:
   determinism across [--jobs] values relies on it. *)
type node_bound = {
  nb_push : task:int -> machine:int -> unit;
  nb_pop : unit -> unit;
  nb_bound : cutoff:float -> float;
  nb_pivots : unit -> int;
}

type result = {
  mapping : Mf_core.Mapping.t;
  period : float;
  optimal : bool;
  nodes : int;
  stats : stats;
}

(* Static lower bound: the cheapest possible contribution of each task,
   using the most optimistic downstream failure rates. *)
let min_contribution inst =
  let n = Instance.task_count inst and m = Instance.machines inst in
  let wf = Instance.workflow inst in
  let min_x = Array.make n 0.0 in
  Array.iter
    (fun i ->
      let fmin = ref infinity in
      for u = 0 to m - 1 do
        fmin := Float.min !fmin (Instance.f inst i u)
      done;
      let downstream = match Workflow.successor wf i with None -> 1.0 | Some j -> min_x.(j) in
      min_x.(i) <- downstream /. (1.0 -. !fmin))
    (Workflow.backward_order wf);
  Array.init n (fun i ->
      let best = ref infinity in
      for u = 0 to m - 1 do
        best := Float.min !best (min_x.(i) *. Instance.w inst i u)
      done;
      !best)

(* Greedy injective assignment seeding the one-to-one search: backward
   tasks, each to the unused machine with the smallest x*w. *)
let greedy_one_to_one inst =
  let n = Instance.task_count inst and m = Instance.machines inst in
  if m < n then invalid_arg "Dfs.greedy_one_to_one: fewer machines than tasks";
  let wf = Instance.workflow inst in
  let a = Array.make n (-1) in
  let x = Array.make n nan in
  let used = Array.make m false in
  Array.iter
    (fun task ->
      let x_succ = match Workflow.successor wf task with None -> 1.0 | Some j -> x.(j) in
      let best = ref (-1) and best_cost = ref infinity in
      for u = 0 to m - 1 do
        if not used.(u) then begin
          let xi = x_succ /. (1.0 -. Instance.f inst task u) in
          let cost = xi *. Instance.w inst task u in
          if cost < !best_cost then begin
            best := u;
            best_cost := cost
          end
        end
      done;
      used.(!best) <- true;
      a.(task) <- !best;
      x.(task) <- x_succ /. (1.0 -. Instance.f inst task !best))
    (Workflow.backward_order wf);
  Mapping.of_array inst a

let check_rule_feasible rule inst =
  match rule with
  | Mapping.Specialized ->
    if Instance.machines inst < Instance.type_count inst then
      invalid_arg "Dfs: fewer machines than task types - no specialized mapping exists"
  | Mapping.One_to_one ->
    if Instance.machines inst < Instance.task_count inst then
      invalid_arg "Dfs: fewer machines than tasks - no one-to-one mapping exists"
  | Mapping.General -> ()

(* Every task on the single machine minimising the resulting penalised
   period — the only heuristic-free general mapping always available, used
   when m < p leaves the specialized heuristics infeasible. *)
let best_single_machine ~setup inst =
  let n = Instance.task_count inst and m = Instance.machines inst in
  let best = ref None in
  for u = 0 to m - 1 do
    let mp = Mapping.of_array inst (Array.make n u) in
    let p = Period.with_setup inst mp ~setup in
    match !best with
    | Some (_, bp) when bp <= p -> ()
    | _ -> best := Some (mp, p)
  done;
  match !best with Some r -> r | None -> assert false

(* Incumbent of the PR-2 engine, kept verbatim so [solve_static] stays the
   bench baseline it was: best of H2/H3/H4w only. *)
let incumbent_static ~setup rule inst =
  match rule with
  | Mapping.One_to_one ->
    let mp = greedy_one_to_one inst in
    (mp, Period.period inst mp)
  | Mapping.Specialized | Mapping.General ->
    if rule = Mapping.General && Instance.machines inst < Instance.type_count inst then
      best_single_machine ~setup inst
    else begin
      (* A specialized mapping is also a valid general mapping, and hosts
         one type per machine so it pays no setup. *)
      let pick =
        List.fold_left
          (fun acc h ->
            let mp = Registry.solve h inst in
            let p = Period.period inst mp in
            match acc with Some (_, bp) when bp <= p -> acc | _ -> Some (mp, p))
          None
          [ Registry.H2; Registry.H3; Registry.H4w ]
      in
      match pick with Some r -> r | None -> assert false
    end

(* Branch-and-bound incumbent: the best mapping over the whole heuristic
   registry.  Heuristic mappings are specialized, hence valid general
   mappings paying no setup; one-to-one still needs its own greedy seed
   because no registry heuristic is injective. *)
let seed_incumbent ~setup rule inst =
  match rule with
  | Mapping.One_to_one ->
    let mp = greedy_one_to_one inst in
    (mp, Period.period inst mp)
  | Mapping.Specialized | Mapping.General ->
    if rule = Mapping.General && Instance.machines inst < Instance.type_count inst then
      best_single_machine ~setup inst
    else Registry.best inst

(* ------------------------------------------------------------------ *)
(* PR-2 engine: static suffix bound only.  Kept as the bench baseline   *)
(* ("unpruned" reference) and as an independent differential witness.   *)
(* ------------------------------------------------------------------ *)

let solve_static ?(node_budget = 20_000_000) ?(setup = 0.0) ~rule inst =
  if setup < 0.0 then invalid_arg "Dfs.solve_static: negative setup time";
  let n = Instance.task_count inst and m = Instance.machines inst in
  let wf = Instance.workflow inst in
  check_rule_feasible rule inst;
  let order = Workflow.backward_order wf in
  let contrib_lb = min_contribution inst in
  (* Largest static lower bound over the tasks assigned at depth >= k. *)
  let suffix_lb = Array.make (n + 1) 0.0 in
  for k = n - 1 downto 0 do
    suffix_lb.(k) <- Float.max suffix_lb.(k + 1) contrib_lb.(order.(k))
  done;
  let seed_mp, seed_p = incumbent_static ~setup rule inst in
  let best_mp = ref seed_mp and best_p = ref seed_p in
  (* x, allocation and load bookkeeping live in the shared incremental
     state; assignments are journalled and backtracked with State.undo. *)
  let st = State.create inst in
  (* For Specialized: type a machine is locked to (-1 = free); for
     One_to_one: any non-negative value marks the machine taken; unused for
     General. *)
  let dedicated = Array.make m (-1) in
  (* Distinct types currently hosted per machine (General rule only, for
     the reconfiguration penalty). *)
  let hosted_types = Array.make m [] in
  (* Cyclic steady-state convention (see Period.with_setup): a machine
     ending up with k >= 2 distinct types pays k switches per period.
     Charged incrementally as types arrive: the second distinct type costs
     2*setup (the switch to it and the switch closing the cycle), each
     further one costs setup — totals telescope to k*setup. *)
  let setup_cost u ty =
    if rule <> Mapping.General || setup = 0.0 then 0.0
    else
      match hosted_types.(u) with
      | [] -> 0.0
      | tys when List.mem ty tys -> 0.0
      | [ _ ] -> 2.0 *. setup
      | _ -> setup
  in
  let nodes = ref 0 in
  let exhausted = ref false in
  let machine_allowed u ty =
    match rule with
    | Mapping.General -> true
    | Mapping.Specialized -> dedicated.(u) < 0 || dedicated.(u) = ty
    | Mapping.One_to_one -> dedicated.(u) < 0
  in
  let rec go k current_max =
    if !nodes >= node_budget then exhausted := true
    else if k = n then begin
      if current_max < !best_p then begin
        best_p := current_max;
        best_mp := State.mapping st
      end
    end
    else begin
      let task = order.(k) in
      let ty = Workflow.ttype wf task in
      let candidates = ref [] in
      for u = m - 1 downto 0 do
        if machine_allowed u ty then begin
          (* The reconfiguration penalty is folded into the load via
             [~extra], so deeper levels and the leaf period see it. *)
          let extra = setup_cost u ty in
          let exec = State.try_assign st ~extra ~task ~machine:u in
          if exec < !best_p then candidates := (exec, u, extra) :: !candidates
        end
      done;
      let sorted = List.sort (fun (e1, _, _) (e2, _, _) -> Float.compare e1 e2) !candidates in
      List.iter
        (fun (exec, u, extra) ->
          if (not !exhausted) && exec < !best_p
             && Float.max (Float.max current_max exec) suffix_lb.(k + 1) < !best_p
          then begin
            incr nodes;
            let saved_ded = dedicated.(u) in
            let saved_types = hosted_types.(u) in
            (match rule with
            | Mapping.Specialized | Mapping.One_to_one -> dedicated.(u) <- ty
            | Mapping.General ->
              if not (List.mem ty hosted_types.(u)) then
                hosted_types.(u) <- ty :: hosted_types.(u));
            State.assign_task st ~extra ~task ~machine:u;
            go (k + 1) (Float.max current_max exec);
            State.undo st;
            dedicated.(u) <- saved_ded;
            hosted_types.(u) <- saved_types
          end)
        sorted
    end
  in
  go 0 0.0;
  { mapping = !best_mp; period = !best_p; optimal = not !exhausted; nodes = !nodes; stats = zero_stats }

(* ------------------------------------------------------------------ *)
(* Branch-and-bound engine: incremental refined bounds, dominance       *)
(* memoization, machine symmetry breaking, deterministic root splitting *)
(* ------------------------------------------------------------------ *)

(* Read-only per-solve context, shared by every root subtree (and safe to
   share across domains: nothing here is mutated after construction). *)
type ctx = {
  inst : Instance.t;
  rule : Mapping.rule;
  setup : float;
  n : int;
  m : int;
  fm : float;
  wf : Workflow.t;
  order : int array;  (* backward assignment order *)
  pos : int array;  (* pos.(order.(k)) = k *)
  preds : int array array;
  mpp : int array;  (* max position over predecessors; -1 if none *)
  contrib_lb : float array;  (* static per-task lower bounds *)
  ratio_min : float array;  (* min_u w(i,u) / (1 - f(i,u)) *)
  rem0 : float;  (* sum of contrib_lb *)
  rmax0 : float;  (* max of contrib_lb *)
  classes : int array;  (* machine symmetry classes (Symmetry) *)
  cands : int array array;  (* type -> machines by increasing static w *)
  dominance : bool;
  symmetry : bool;
  (* Factory, not instance: every search gets a fresh oracle so parallel
     subtrees never share LP state. *)
  lp_factory : (unit -> node_bound) option;
  (* Node-equivalents one oracle simplex pivot costs against the budget
     (0 = pivots are free, the plain-node accounting).  Per-subtree and
     derived from [nb_pivots] deltas, so the charge is a pure function
     of each subtree's own search — [--jobs] identity holds. *)
  pivot_charge : int;
  (* Cooperative cancellation: polled between nodes; a set token
     unwinds the search and [solve] raises [Pool.Cancelled]. *)
  cancel : Pool.token option;
}

let make_ctx ~rule ~setup ~dominance ~symmetry ~node_bound ~pivot_charge ~cancel inst =
  let n = Instance.task_count inst and m = Instance.machines inst in
  let wf = Instance.workflow inst in
  let order = Workflow.backward_order wf in
  let pos = Array.make n 0 in
  Array.iteri (fun k t -> pos.(t) <- k) order;
  let preds = Array.init n (fun i -> Array.of_list (Workflow.predecessors wf i)) in
  let mpp =
    Array.init n (fun i -> Array.fold_left (fun acc p -> max acc pos.(p)) (-1) preds.(i))
  in
  let contrib_lb = min_contribution inst in
  let ratio_min =
    Array.init n (fun i ->
        let best = ref infinity in
        for u = 0 to m - 1 do
          let r = Instance.w inst i u /. (1.0 -. Instance.f inst i u) in
          if r < !best then best := r
        done;
        !best)
  in
  let rem0 = Array.fold_left ( +. ) 0.0 contrib_lb in
  let rmax0 = Array.fold_left Float.max 0.0 contrib_lb in
  let classes = Symmetry.machine_classes inst in
  let cands =
    Array.init (Instance.type_count inst) (fun ty ->
        let ms = Array.init m Fun.id in
        Array.sort
          (fun u v ->
            let d = Float.compare (Instance.w_of_type inst ty u) (Instance.w_of_type inst ty v) in
            if d <> 0 then d else compare u v)
          ms;
        ms)
  in
  {
    inst;
    rule;
    setup;
    n;
    m;
    fm = float_of_int m;
    wf;
    order;
    pos;
    preds;
    mpp;
    contrib_lb;
    ratio_min;
    rem0;
    rmax0;
    classes;
    cands;
    dominance;
    symmetry;
    lp_factory = node_bound;
    pivot_charge;
    cancel;
  }

(* Phase 1 minimises; phase 2 re-derives the canonical optimal mapping by
   hunting the first leaf (in fixed serial order) whose period is
   bit-equal to the proven optimum. *)
type mode = Optimize | Certify of float

type search = {
  ctx : ctx;
  st : State.t;
  dedicated : int array;
  hosted : int list array;
  lb_ref : float array;  (* refined per-task lower bounds (journalled) *)
  class_rep : int array;  (* scratch: class -> lowest unused member *)
  shared_best : float Atomic.t;
  mutable local_best_p : float;
  mutable local_best : int array option;
  mutable nodes : int;
  budget : int;
  (* Node-equivalents charged for oracle pivots (pivot_charge > 0 only);
     [nodes + charged] is what the budget check reads. *)
  mutable charged : int;
  mutable last_pivots : int;
  mutable exhausted : bool;
  mutable stop : bool;
  mode : mode;
  (* Machines this subtree is pinned to for the first [Array.length pins]
     depths — the deterministic root split.  Empty for the certify pass. *)
  pins : int array;
  use_dominance : bool;
  table : (string, float array list ref) Hashtbl.t;
  mutable table_states : int;
  mutable bound_prunes : int;
  mutable dom_prunes : int;
  mutable sym_skips : int;
  mutable best_at : int;
  (* Per-node LP bound oracle (one per search) and its counters. *)
  nb : node_bound option;
  mutable lp_solves : int;
  mutable lp_prunes : int;
  mutable nogood_records : int;
  sigbuf : Buffer.t;
  (* Per-depth scratch, preallocated so expand/child allocate nothing:
     candidate buffers (row k of an n x m matrix), the saved predecessor
     bounds journal, and a 2-float out-param slot for the refine loop.
     Hot-path allocation is poison under OCaml 5 parallelism — every
     minor collection synchronises all domains. *)
  cand_exec : float array;
  cand_u : int array;
  cand_extra : float array;
  cand_n : int array;  (* candidates collected at depth k *)
  saved_lb : float array array;  (* depth k -> one slot per pred of order.(k) *)
  fscratch : float array;  (* [| rmax'; rem' |] *)
  (* The recursion's (cmax, rmax, rem) triple per depth.  Kept in flat
     float arrays instead of function arguments: without flambda every
     float argument is boxed at every call, and bnb/expand/child run once
     per node. *)
  path_cmax : float array;
  path_rmax : float array;
  path_rem : float array;
}

(* Caps keeping the dominance table's memory bounded: at most 8 stored
   load vectors per signature and 200k vectors overall (~tens of MB). *)
let table_entry_cap = 8
let table_state_cap = 200_000

let make_search ?(with_lp = true) ctx ~shared ~budget ~seed_p ~mode ~pins =
  {
    ctx;
    st = State.create ctx.inst;
    dedicated = Array.make ctx.m (-1);
    hosted = Array.make ctx.m [];
    lb_ref = Array.copy ctx.contrib_lb;
    class_rep = Array.make ctx.m (-1);
    shared_best = shared;
    local_best_p = seed_p;
    local_best = None;
    nodes = 0;
    budget;
    charged = 0;
    last_pivots = 0;
    exhausted = false;
    stop = false;
    mode;
    pins;
    (* Dominance stays on in Certify mode: a stored state's subtree was
       fully explored (ties admitted) without stopping, so it holds no
       leaf with period <= p_star; any p_star completion of a dominated
       state maps to a completion of the stored state with period <=
       p_star — impossible.  Without the table, a tree the optimize phase
       closed mainly via dominance could exhaust certify's budget. *)
    use_dominance = ctx.dominance;
    table = Hashtbl.create 4096;
    table_states = 0;
    bound_prunes = 0;
    dom_prunes = 0;
    sym_skips = 0;
    best_at = 0;
    nb = (if with_lp then Option.map (fun f -> f ()) ctx.lp_factory else None);
    lp_solves = 0;
    lp_prunes = 0;
    nogood_records = 0;
    sigbuf = Buffer.create 256;
    cand_exec = Array.make (ctx.n * ctx.m) 0.0;
    cand_u = Array.make (ctx.n * ctx.m) 0;
    cand_extra = Array.make (ctx.n * ctx.m) 0.0;
    cand_n = Array.make ctx.n 0;
    saved_lb =
      Array.init ctx.n (fun k -> Array.make (Array.length ctx.preds.(ctx.order.(k))) 0.0);
    fscratch = Array.make 2 0.0;
    path_cmax =
      (let a = Array.make (ctx.n + 1) 0.0 in
       a);
    path_rmax =
      (let a = Array.make (ctx.n + 1) 0.0 in
       a.(0) <- ctx.rmax0;
       a);
    path_rem =
      (let a = Array.make (ctx.n + 1) 0.0 in
       a.(0) <- ctx.rem0;
       a);
  }

(* Lock-free monotone minimum over the shared incumbent.  CAS on the
   physically-read boxed float is the standard OCaml 5 min-loop. *)
let rec atomic_min a v =
  let cur = Atomic.get a in
  if v < cur && not (Atomic.compare_and_set a cur v) then atomic_min a v

(* Candidate/bound admission.  In Optimize mode both are strict against
   the freshest incumbent (local never beats shared, so shared suffices).
   In Certify mode candidates may tie the target and bounds get a hair of
   relative slack: the refined bounds re-associate products the leaf
   evaluates in a different order, so they are admissible only up to ulps. *)
let[@inline] admits s v =
  match s.mode with Optimize -> v < Atomic.get s.shared_best | Certify p -> v <= p

let[@inline] bound_ok s b =
  match s.mode with
  | Optimize -> b < Atomic.get s.shared_best
  | Certify p -> b <= p *. (1.0 +. 1e-12)

let[@inline] rule_allows s u ty =
  match s.ctx.rule with
  | Mapping.General -> true
  | Mapping.Specialized -> s.dedicated.(u) < 0 || s.dedicated.(u) = ty
  | Mapping.One_to_one -> s.dedicated.(u) < 0

(* Same telescoping k*setup convention as solve_static. *)
let[@inline] setup_cost s u ty =
  let c = s.ctx in
  if c.rule <> Mapping.General || c.setup = 0.0 then 0.0
  else
    match s.hosted.(u) with
    | [] -> 0.0
    | tys when List.mem ty tys -> 0.0
    | [ _ ] -> 2.0 *. c.setup
    | _ -> c.setup

let record_leaf s =
  let cmax = s.path_cmax.(s.ctx.n) in
  match s.mode with
  | Optimize ->
    if cmax < s.local_best_p then begin
      s.local_best_p <- cmax;
      s.local_best <- Some (State.to_array s.st);
      s.best_at <- s.nodes;
      atomic_min s.shared_best cmax
    end
  | Certify p ->
    if cmax = p then begin
      s.local_best <- Some (State.to_array s.st);
      s.stop <- true
    end

let leq_all a b =
  let len = Array.length a in
  let rec go i = i >= len || (a.(i) <= b.(i) && go (i + 1)) in
  go 0

(* Canonical frontier signature at depth k.  The assigned set is fixed by
   k (backward order), so the key is: k, the x of every frontier task
   (assigned, with an unassigned predecessor — everything the remaining
   subproblem reads from the prefix), and the machines' (symmetry class,
   rule commitment) sequence after canonical sorting.  Loads are the
   value: within a (class, commitment) group they are sorted ascending, so
   componentwise <= between equal-key states certifies a dominating
   machine matching. *)
let signature s k =
  let c = s.ctx in
  let buf = s.sigbuf in
  Buffer.clear buf;
  (* 32-bit fields: 16-bit writes would silently wrap for n or m >= 65536
     and let distinct frontier states share a key, making the pruning
     unsound exactly when it must be exact. *)
  Buffer.add_int32_le buf (Int32.of_int k);
  for j = 0 to c.n - 1 do
    if c.pos.(j) < k && k <= c.mpp.(j) then
      Buffer.add_int64_le buf (Int64.bits_of_float (State.x s.st j))
  done;
  let recs =
    Array.init c.m (fun u ->
        let comm =
          match c.rule with
          | Mapping.Specialized -> [| s.dedicated.(u) + 1 |]
          | Mapping.One_to_one -> [| (if s.dedicated.(u) >= 0 then 1 else 0) |]
          | Mapping.General ->
            if c.setup > 0.0 then Array.of_list (List.sort compare s.hosted.(u)) else [||]
        in
        (c.classes.(u), comm, State.machine_load s.st u, u))
  in
  Array.sort
    (fun (c1, a1, l1, u1) (c2, a2, l2, u2) ->
      let d = compare c1 c2 in
      if d <> 0 then d
      else
        let d = Stdlib.compare a1 a2 in
        if d <> 0 then d
        else
          let d = Float.compare l1 l2 in
          if d <> 0 then d else compare u1 u2)
    recs;
  let loads = Array.make c.m 0.0 in
  Array.iteri
    (fun idx (cl, comm, load, _) ->
      loads.(idx) <- load;
      Buffer.add_int32_le buf (Int32.of_int cl);
      Buffer.add_int32_le buf (Int32.of_int (Array.length comm));
      Array.iter (fun v -> Buffer.add_int32_le buf (Int32.of_int v)) comm)
    recs;
  (Buffer.contents buf, loads)

(* Record a fully-explored state, evicting entries it dominates. *)
let table_note s entries key loads =
  if s.table_states < table_state_cap then
    match entries with
    | Some l ->
      let before = List.length !l in
      let kept = List.filter (fun v -> not (leq_all loads v)) !l in
      s.table_states <- s.table_states - (before - List.length kept);
      if List.length kept < table_entry_cap then begin
        l := loads :: kept;
        s.table_states <- s.table_states + 1
      end
      else l := kept
    | None ->
      Hashtbl.add s.table key (ref [ loads ]);
      s.table_states <- s.table_states + 1

(* The search proper.  The per-depth state (read at depth k, written for
   depth k+1 by [child]) lives in the path_* arrays:
   - path_cmax: max committed machine load;
   - path_rmax: running max over every refined per-task bound seen on
     this path (entries of already-assigned tasks stay valid: their bound
     is <= their contribution <= some load <= the final period);
   - path_rem:  sum of lb_ref over unassigned tasks.
   The child bound is max(cmax', rmax', (total_load' + rem') / m); the
   averaging term is the packing argument — all remaining work must fit
   somewhere, so the mean final load already bounds the period. *)
let rec bnb s k =
  if s.stop then ()
  else if s.nodes + s.charged >= s.budget then s.exhausted <- true
  else if
    match s.ctx.cancel with Some tok -> Pool.cancelled tok | None -> false
  then s.stop <- true
  else if k = s.ctx.n then record_leaf s
  else if not (s.use_dominance && k > 0) then begin
    if lp_check s k then expand s k
  end
  else begin
    let key, loads = signature s k in
    let entries = Hashtbl.find_opt s.table key in
    let dominated =
      match entries with Some l -> List.exists (fun v -> leq_all v loads) !l | None -> false
    in
    if dominated then s.dom_prunes <- s.dom_prunes + 1
    else if not (lp_check s k) then begin
      (* No-good: the LP certifies that no completion of this frontier
         improves the incumbent (or ties the certify target) — exactly
         the contract of a recorded table state, so identical-key
         frontiers with componentwise >= loads now prune without
         re-solving the LP. *)
      table_note s entries key loads;
      s.nogood_records <- s.nogood_records + 1
    end
    else begin
      expand s k;
      (* Insert only complete subtrees: a budget-truncated exploration
         proves nothing about the states it would dominate. *)
      if not (s.exhausted || s.stop) then table_note s entries key loads
    end
  end

(* Per-node LP bound, evaluated after the dominance test (the signature
   is ~10x cheaper than a warm-started solve).  At the root there is
   nothing pushed and the global LP bound is the caller's [lower_bound]
   business, so k = 0 is exempt. *)
and lp_check s k =
  match s.nb with
  | None -> true
  | Some _ when k = 0 -> true
  | Some nb ->
    s.lp_solves <- s.lp_solves + 1;
    (* The cutoff mirrors [bound_ok]: any oracle value below it cannot
       prune, which lets the oracle stop early; values at or above it
       must be sound bounds, and the prune below stays exact. *)
    let cutoff =
      match s.mode with
      | Optimize -> Atomic.get s.shared_best
      | Certify p -> p *. (1.0 +. 1e-12)
    in
    let lpb = nb.nb_bound ~cutoff in
    (* Charge the evaluation's pivots (read as a delta of the oracle's
       cumulative counter) against the subtree budget — the deadline
       calibration's missing half: node-LP pivots are real work. *)
    if s.ctx.pivot_charge > 0 then begin
      let pv = nb.nb_pivots () in
      s.charged <- s.charged + ((pv - s.last_pivots) * s.ctx.pivot_charge);
      s.last_pivots <- pv
    end;
    bound_ok s lpb
    ||
    (s.lp_prunes <- s.lp_prunes + 1;
     false)

and expand s k =
  let c = s.ctx in
  let task = c.order.(k) in
  let ty = Workflow.ttype c.wf task in
  if c.symmetry then begin
    Array.fill s.class_rep 0 c.m (-1);
    for u = 0 to c.m - 1 do
      if State.tasks_on s.st u = 0 then begin
        let cl = c.classes.(u) in
        if s.class_rep.(cl) < 0 then s.class_rep.(cl) <- u
      end
    done
  end;
  let cands = c.cands.(ty) in
  let base = k * c.m in
  let cnt = ref 0 in
  for idx = 0 to Array.length cands - 1 do
    let u = cands.(idx) in
    let picked = k >= Array.length s.pins || u = s.pins.(k) in
    if picked && rule_allows s u ty then begin
      (* Unused machines of one symmetry class are interchangeable:
         branch only on the lowest-index one. *)
      if c.symmetry && State.tasks_on s.st u = 0 && s.class_rep.(c.classes.(u)) <> u then
        s.sym_skips <- s.sym_skips + 1
      else begin
        let extra = setup_cost s u ty in
        let exec = State.try_assign_with s.st ~extra ~task ~machine:u in
        if admits s exec then begin
          let j = base + !cnt in
          s.cand_exec.(j) <- exec;
          s.cand_u.(j) <- u;
          s.cand_extra.(j) <- extra;
          incr cnt
        end
        else s.bound_prunes <- s.bound_prunes + 1
      end
    end
  done;
  let cnt = !cnt in
  s.cand_n.(k) <- cnt;
  (* In-place insertion sort by (exec, machine): every exec is positive so
     plain comparison agrees with Float.compare, and the machine tiebreak
     makes the order total, hence schedule-independent. *)
  for i = 1 to cnt - 1 do
    let e = s.cand_exec.(base + i)
    and u = s.cand_u.(base + i)
    and x = s.cand_extra.(base + i) in
    let j = ref (i - 1) in
    while
      !j >= 0
      &&
      let ej = s.cand_exec.(base + !j) in
      ej > e || (ej = e && s.cand_u.(base + !j) > u)
    do
      s.cand_exec.(base + !j + 1) <- s.cand_exec.(base + !j);
      s.cand_u.(base + !j + 1) <- s.cand_u.(base + !j);
      s.cand_extra.(base + !j + 1) <- s.cand_extra.(base + !j);
      decr j
    done;
    s.cand_exec.(base + !j + 1) <- e;
    s.cand_u.(base + !j + 1) <- u;
    s.cand_extra.(base + !j + 1) <- x
  done;
  for i = 0 to cnt - 1 do
    child s k task ty (base + i)
  done

and child s k task ty slot =
  if not (s.exhausted || s.stop) then begin
    let exec = s.cand_exec.(slot) in
    let u = s.cand_u.(slot) in
    let extra = s.cand_extra.(slot) in
    if not (admits s exec) then s.bound_prunes <- s.bound_prunes + 1
    else begin
      let c = s.ctx in
      (* Assigning [task] fixes its product count, so each unassigned
         predecessor's bound tightens from the static optimum to
         x * ratio_min — O(preds) per child, journalled in [saved].  The
         running (rmax', rem') pair lives in the fscratch float array
         (unboxed stores); it is written into the depth-(k+1) path slots
         before recursing, so the deeper child reusing fscratch is
         harmless. *)
      let xc = State.x_candidate s.st ~task ~machine:u in
      let preds = c.preds.(task) in
      let np = Array.length preds in
      let saved = s.saved_lb.(k) in
      let fs = s.fscratch in
      fs.(0) <- Float.max s.path_rmax.(k) exec;
      fs.(1) <- s.path_rem.(k) -. s.lb_ref.(task);
      for pi = 0 to np - 1 do
        let i = preds.(pi) in
        saved.(pi) <- s.lb_ref.(i);
        let nb = xc *. c.ratio_min.(i) in
        let ob = s.lb_ref.(i) in
        if nb > ob then begin
          s.lb_ref.(i) <- nb;
          fs.(1) <- fs.(1) +. (nb -. ob);
          if nb > fs.(0) then fs.(0) <- nb
        end
      done;
      let rmax' = fs.(0) and rem' = fs.(1) in
      let cmax' = Float.max s.path_cmax.(k) exec in
      let saved_ded = s.dedicated.(u) in
      let saved_host = s.hosted.(u) in
      (match c.rule with
      | Mapping.Specialized | Mapping.One_to_one -> s.dedicated.(u) <- ty
      | Mapping.General ->
        if not (List.mem ty s.hosted.(u)) then s.hosted.(u) <- ty :: s.hosted.(u));
      State.assign_task_with s.st ~extra ~task ~machine:u;
      let bound =
        Float.max (Float.max cmax' rmax') ((State.total_load s.st +. rem') /. c.fm)
      in
      if bound_ok s bound then begin
        s.nodes <- s.nodes + 1;
        s.path_cmax.(k + 1) <- cmax';
        s.path_rmax.(k + 1) <- rmax';
        s.path_rem.(k + 1) <- rem';
        (* The LP oracle's journal mirrors the State journal: push the
           assignment for the subtree, pop on unwind. *)
        (match s.nb with Some nb -> nb.nb_push ~task ~machine:u | None -> ());
        bnb s (k + 1);
        (match s.nb with Some nb -> nb.nb_pop () | None -> ())
      end
      else s.bound_prunes <- s.bound_prunes + 1;
      State.undo s.st;
      s.dedicated.(u) <- saved_ded;
      s.hosted.(u) <- saved_host;
      for pi = 0 to np - 1 do
        s.lb_ref.(preds.(pi)) <- saved.(pi)
      done
    end
  end

(* Dominance auto-policy predicate: do two same-type tasks share a
   bit-identical failure row?  Equal product counts — the precondition for
   any frontier-signature collision — require exactly that (plus matching
   downstream structure, which this cheap necessary test ignores). *)
let has_repeated_task_profiles inst =
  let n = Instance.task_count inst and m = Instance.machines inst in
  let wf = Instance.workflow inst in
  let same i j =
    Workflow.ttype wf i = Workflow.ttype wf j
    &&
    let eq = ref true in
    (try
       for u = 0 to m - 1 do
         if Instance.f inst i u <> Instance.f inst j u then begin
           eq := false;
           raise Exit
         end
       done
     with Exit -> ());
    !eq
  in
  let found = ref false in
  (try
     for i = 0 to n - 1 do
       for j = i + 1 to n - 1 do
         if same i j then begin
           found := true;
           raise Exit
         end
       done
     done
   with Exit -> ());
  !found

(* Children of a prefix: extend the pinned machine sequence by one level.
   The candidates for the task at depth [length prefix] are the
   rule-allowed, symmetry-canonical machine choices, sorted by
   (load, machine) — the same canonical order [expand] branches in.
   Incumbent pruning is deliberately not applied, so the child list is a
   pure function of (instance, prefix) — identical for every --jobs
   value; a prunable child just dies at its first node.  [child_prefixes]
   with the empty prefix yields the initial root split; re-splitting
   exhausted subtrees drives the dynamic redistribution in [solve].

   Never empty when [length prefix < n]: General always admits every
   machine; Specialized locks at most [type_count - 1 < m] machines to
   types other than the current one (or the current type's own machine is
   allowed); One_to_one has used [length prefix < n <= m] machines.  So a
   split always deepens the pending prefixes — progress is guaranteed. *)
let child_prefixes ctx prefix =
  (* Candidate enumeration never evaluates bounds: skip the LP oracle. *)
  let s =
    make_search ~with_lp:false ctx ~shared:(Atomic.make infinity) ~budget:max_int
      ~seed_p:infinity ~mode:Optimize ~pins:[||]
  in
  let len = Array.length prefix in
  (* Replay the pinned assignments with the same rule/setup bookkeeping
     as [child], so candidate enumeration below sees the exact search
     state this subtree starts from. *)
  for k = 0 to len - 1 do
    let task = ctx.order.(k) in
    let ty = Workflow.ttype ctx.wf task in
    let u = prefix.(k) in
    let extra = setup_cost s u ty in
    (match ctx.rule with
    | Mapping.Specialized | Mapping.One_to_one -> s.dedicated.(u) <- ty
    | Mapping.General ->
      if not (List.mem ty s.hosted.(u)) then s.hosted.(u) <- ty :: s.hosted.(u));
    State.assign_task_with s.st ~extra ~task ~machine:u
  done;
  let task = ctx.order.(len) in
  let ty = Workflow.ttype ctx.wf task in
  if ctx.symmetry then begin
    (* Lowest unused machine of each symmetry class, as [expand] sees it
       at this depth. *)
    Array.fill s.class_rep 0 ctx.m (-1);
    for u = 0 to ctx.m - 1 do
      if State.tasks_on s.st u = 0 then begin
        let cl = ctx.classes.(u) in
        if s.class_rep.(cl) < 0 then s.class_rep.(cl) <- u
      end
    done
  end;
  let skips = ref 0 in
  let cands = ref [] in
  for u = ctx.m - 1 downto 0 do
    if rule_allows s u ty then begin
      if ctx.symmetry && State.tasks_on s.st u = 0 && s.class_rep.(ctx.classes.(u)) <> u then
        incr skips
      else begin
        let extra = setup_cost s u ty in
        let exec = State.try_assign_with s.st ~extra ~task ~machine:u in
        cands := (exec, u) :: !cands
      end
    end
  done;
  let sorted =
    List.sort
      (fun (e1, u1) (e2, u2) ->
        let d = Float.compare e1 e2 in
        if d <> 0 then d else compare u1 u2)
      !cands
  in
  (Array.of_list (List.map (fun (_, u) -> Array.append prefix [| u |]) sorted), !skips)

type sub_result = {
  r_best_p : float;
  r_alloc : int array option;
  r_nodes : int;
  r_charge : int;  (* pivot node-equivalents, charged alongside r_nodes *)
  r_bound : int;
  r_dom : int;
  r_dom_states : int;
  r_sym : int;
  r_best_at : int;
  r_exhausted : bool;
  r_lp_solves : int;
  r_lp_prunes : int;
  r_nogood : int;
}

let run_subtree ctx ~shared ~budget ~seed_p prefix =
  let s = make_search ctx ~shared ~budget ~seed_p ~mode:Optimize ~pins:prefix in
  expand s 0;
  {
    r_best_p = s.local_best_p;
    r_alloc = s.local_best;
    r_nodes = s.nodes;
    r_charge = s.charged;
    r_bound = s.bound_prunes;
    r_dom = s.dom_prunes;
    r_dom_states = s.table_states;
    r_sym = s.sym_skips;
    r_best_at = s.best_at;
    r_exhausted = s.exhausted;
    r_lp_solves = s.lp_solves;
    r_lp_prunes = s.lp_prunes;
    r_nogood = s.nogood_records;
  }

(* Phase 2: serial, jobs-independent reconstruction of the mapping behind
   the proven optimal value.  Hunts the first leaf in canonical
   (dominance-pruned) DFS order whose period is bit-equal to p_star; the
   first-improving leaf of the serial run is always such a leaf, so this
   terminates fast and the mapping reported for --jobs N matches --jobs 1
   exactly.  Budget exhaustion here is still possible in principle; the
   caller then falls back to the (equally jobs-independent) incumbent
   allocation. *)
let certify ctx ~p_star ~budget =
  let s =
    make_search ctx ~shared:(Atomic.make infinity) ~budget ~seed_p:infinity
      ~mode:(Certify p_star) ~pins:[||]
  in
  expand s 0;
  (s.local_best, s.nodes)

(* Pending prefixes are capped so a pathological split cascade cannot
   build an unbounded frontier: once the cap is reached, exhausted
   subtrees re-run undivided (the pre-split behaviour). *)
let pending_cap = 4096

let solve ?(node_budget = 20_000_000) ?(setup = 0.0) ?(jobs = 1) ?pool ?dominance
    ?(symmetry = true) ?lower_bound ?incumbent ?node_bound ?(pivot_charge = 0) ?cancel
    ~rule inst =
  if setup < 0.0 then invalid_arg "Dfs.solve: negative setup time";
  if jobs < 1 then invalid_arg "Dfs.solve: jobs must be >= 1";
  if pivot_charge < 0 then invalid_arg "Dfs.solve: negative pivot charge";
  check_rule_feasible rule inst;
  (* A caller-supplied certified lower bound (e.g. the divisible-workload
     LP optimum of [Mf_lp.Splitting]) turns "incumbent meets the bound"
     into an optimality certificate without exhausting the tree. *)
  let met_bound p = match lower_bound with Some lb -> p <= lb | None -> false in
  (* Signature maintenance costs ~10x a plain node, so the dominance table
     defaults to on only where frontier signatures can actually repeat:
     product counts of two tasks coincide bit-for-bit only when the tasks
     share failure behaviour, so the table needs same-type task pairs with
     identical f rows (constant or quantized rates, replicated subtrees).
     With continuous random rates every prefix has a unique signature and
     the table is pure overhead.  Explicit ~dominance overrides either way. *)
  let dominance =
    match dominance with
    | Some d -> d
    | None ->
      (* With an LP oracle the table doubles as the no-good store, and
         signatures can collide across prefixes that permute machines of
         one symmetry class — worth the maintenance even on fully
         heterogeneous instances. *)
      node_bound <> None || has_repeated_task_profiles inst
  in
  let ctx = make_ctx ~rule ~setup ~dominance ~symmetry ~node_bound ~pivot_charge ~cancel inst in
  let seed_mp, seed_p = seed_incumbent ~setup rule inst in
  (* A caller-supplied incumbent (the portfolio's shared best-so-far) is
     merged by strict minimum, so it can only tighten the seed.  It must
     satisfy [rule] — checked, because an infeasible incumbent would let
     the search "prove" a period no legal mapping attains. *)
  let seed_mp, seed_p =
    match incumbent with
    | Some (mp, p) when p < seed_p ->
      Mapping.check inst mp rule;
      (mp, p)
    | _ -> (seed_mp, seed_p)
  in
  if met_bound seed_p then
    { mapping = seed_mp; period = seed_p; optimal = true; nodes = 0; stats = zero_stats }
  else begin
  let roots, root_skips = child_prefixes ctx [||] in
  (* Each subtree searches against its own incumbent cell seeded from the
     deterministic best so far, so every run is a pure function of
     (instance, prefix, incumbent, budget) — node counts, prune counters
     and the exhaustion flag are bit-identical for every --jobs value,
     not just the period.  Cross-subtree incumbent sharing is recovered
     between rounds: the budget not consumed by subtrees that close is
     redistributed over the exhausted ones, which restart with the
     tightened incumbent.  Exhausted subtrees are additionally {e split}
     into their children ([child_prefixes]) before the next round —
     dynamic redistribution, replacing the old fixed depth-2 root split —
     so an unbalanced tree sheds its heavy subtree into finer pieces that
     spread across domains.  Splits depend only on the deterministic
     (exhausted?, canonical order) data of the previous round, so the
     round structure too is --jobs-independent. *)
  let best_p = ref seed_p in
  (* Incumbent allocation and its subtree-local node stamp, maintained
     monotonically with [best_p] across rounds.  A re-run of an exhausted
     subtree is seeded with the already-improved incumbent, so its result
     can tie [best_p] while carrying no allocation; only strict
     improvements — which always carry one — may overwrite the pair. *)
  let best_alloc = ref None in
  let best_at = ref 0 in
  (* Every explored node is counted the moment its round finishes —
     including work a later re-run or split supersedes: it was real
     exploration and stays charged against the budget. *)
  let nodes = ref 0
  and bound_prunes = ref 0
  and dom_prunes = ref 0
  and dom_states = ref 0
  and sym_skips = ref root_skips
  and lp_solves = ref 0
  and lp_prunes = ref 0
  and nogoods = ref 0
  and subtrees = ref (Array.length roots) in
  let budget_left = ref node_budget in
  (* Each pending entry carries whether it already got its one unsplit
     re-run (see the retry rule below). *)
  let pending = ref (List.map (fun p -> (p, false)) (Array.to_list roots)) in
  let last_per = ref 0 in
  let run_round =
    let on_pool pool prefixes ~f = Pool.map_array ~chunk:1 ?cancel pool ~f prefixes in
    match pool with
    | Some pool -> on_pool pool
    | None ->
      if jobs = 1 then fun prefixes ~f -> Array.map f prefixes
      else on_pool (Pool.shared ~domains:jobs)
  in
  let continue_rounds = ref (!pending <> []) in
  while !continue_rounds do
    let np = List.length !pending in
    let per = max 1 (!budget_left / np) in
    last_per := per;
    let seed_round = !best_p in
    let prefixes = Array.of_list !pending in
    let round =
      run_round prefixes ~f:(fun (prefix, _) ->
          run_subtree ctx ~shared:(Atomic.make seed_round) ~budget:per ~seed_p:seed_round prefix)
    in
    (* The pool path raises from [map_array] itself; this covers the
       serial path, where cancelled subtrees stop and return partials. *)
    (match cancel with
    | Some tok when Pool.cancelled tok -> raise Pool.Cancelled
    | _ -> ());
    Array.iter
      (fun r ->
        budget_left := !budget_left - r.r_nodes - r.r_charge;
        nodes := !nodes + r.r_nodes;
        bound_prunes := !bound_prunes + r.r_bound;
        dom_prunes := !dom_prunes + r.r_dom;
        dom_states := !dom_states + r.r_dom_states;
        sym_skips := !sym_skips + r.r_sym;
        lp_solves := !lp_solves + r.r_lp_solves;
        lp_prunes := !lp_prunes + r.r_lp_prunes;
        nogoods := !nogoods + r.r_nogood;
        if r.r_best_p < !best_p then
          match r.r_alloc with
          | Some _ as a ->
            best_p := r.r_best_p;
            best_alloc := a;
            best_at := r.r_best_at
          | None -> ())
      round;
    let still =
      List.filteri (fun i _ -> round.(i).r_exhausted) (Array.to_list prefixes)
    in
    (* Retry rule: an exhausted subtree whose projected next slice at
       least doubles gets one re-run {e unsplit} before being split.
       Even redistribution starves a single heavy subtree — every
       under-budgeted attempt is waste charged against the budget — so
       when most siblings closed, the freed budget is offered to the
       heavy subtree whole once; only if it exhausts that too is it
       fragmented.  The projection uses the unsplit pending count, so
       the rule, like the split rule below, is a pure function of the
       previous round's deterministic aggregates. *)
    let projected =
      match still with
      | [] -> 0
      | l -> max 1 (!budget_left / List.length l)
    in
    (* Split the remaining exhausted subtrees into their children, newest
       at the same canonical position their parent held, under
       [pending_cap].  The cap check counts the children plus every
       unprocessed entry, so the decision sequence is a pure function of
       the (ordered) exhausted list — deterministic, hence
       --jobs-independent. *)
    let split_happened = ref false in
    let retry_happened = ref false in
    let next = ref [] in
    (* reversed *)
    let emitted = ref 0 in
    List.iteri
      (fun i (prefix, retried) ->
        let remaining_after = List.length still - i - 1 in
        let len = Array.length prefix in
        if len < ctx.n && !budget_left > 0 then
          if (not retried) && projected >= 2 * !last_per then begin
            retry_happened := true;
            emitted := !emitted + 1;
            next := (prefix, true) :: !next
          end
          else begin
            let children, skips = child_prefixes ctx prefix in
            let nc = Array.length children in
            if !emitted + nc + remaining_after <= pending_cap then begin
              split_happened := true;
              sym_skips := !sym_skips + skips;
              subtrees := !subtrees + nc;
              emitted := !emitted + nc;
              Array.iter (fun c -> next := (c, false) :: !next) children
            end
            else begin
              emitted := !emitted + 1;
              next := (prefix, retried) :: !next
            end
          end
        else begin
          emitted := !emitted + 1;
          next := (prefix, retried) :: !next
        end)
      still;
    let still = List.rev !next in
    pending := still;
    (* Re-run while the partition got finer, a retry was granted, or the
       redistributed slice actually grows; the budget spent on a
       superseded attempt stays charged. *)
    continue_rounds :=
      still <> [] && !budget_left > 0
      && (!split_happened || !retry_happened
         || max 1 (!budget_left / List.length still) > !last_per)
  done;
  let p_star = !best_p in
  let optimal = !pending = [] in
  let certify_nodes = ref 0 in
  let mapping, period =
    if p_star >= seed_p then (seed_mp, seed_p)
    else begin
      (* [best_alloc] is [Some] whenever [best_p] improved on the seed,
         so the [None] arm is unreachable; it degrades to the seed rather
         than crash should that invariant ever break. *)
      let fallback () =
        match !best_alloc with
        | Some a -> (Mapping.of_array inst a, p_star)
        | None -> (seed_mp, seed_p)
      in
      if optimal then begin
        match certify ctx ~p_star ~budget:node_budget with
        | Some a, cn ->
          certify_nodes := cn;
          (Mapping.of_array inst a, p_star)
        | None, cn ->
          certify_nodes := cn;
          fallback ()
      end
      else fallback ()
    end
  in
  {
    mapping;
    period;
    (* An exhausted budget still proves optimality when the incumbent
       meets the caller's certified lower bound. *)
    optimal = optimal || met_bound period;
    nodes = !nodes;
    stats =
      {
        bound_prunes = !bound_prunes;
        dominance_prunes = !dom_prunes;
        dominance_states = !dom_states;
        symmetry_skips = !sym_skips;
        best_at_node = !best_at;
        root_subtrees = !subtrees;
        certify_nodes = !certify_nodes;
        lp_solves = !lp_solves;
        lp_prunes = !lp_prunes;
        nogood_records = !nogoods;
      };
  }
  end

let specialized ?node_budget ?jobs ?pool inst =
  solve ?node_budget ?jobs ?pool ~rule:Mapping.Specialized inst

let general ?node_budget ?setup ?jobs ?pool inst =
  solve ?node_budget ?setup ?jobs ?pool ~rule:Mapping.General inst

let one_to_one ?node_budget ?jobs ?pool inst =
  solve ?node_budget ?jobs ?pool ~rule:Mapping.One_to_one inst
