(** Machine symmetry detection (shared by {!Dfs} and re-exported as part
    of the instance reductions in {!Reduction}).

    Lives in its own compilation unit because {!Reduction} depends on
    {!Dfs} (the Theorem 2 oracle solves instances exactly), while the
    search needs the class partition — this unit breaks the cycle. *)

(** [machine_classes inst] partitions machines into symmetry equivalence
    classes: [classes.(u)] is the smallest machine index [v] such that
    machines [u] and [v] have bit-identical [(w, f)] columns.  See
    {!Reduction.machine_classes} for the full contract. *)
val machine_classes : Mf_core.Instance.t -> int array

(** [has_machine_symmetry inst] is true when some class has >= 2
    members. *)
val has_machine_symmetry : Mf_core.Instance.t -> bool
