(** Exhaustive enumeration of mappings — ground truth for tiny instances.

    Complexity is O(m^n) for specialized/general rules and O(m!/(m-n)!) for
    one-to-one, so keep [n] below a dozen.  Used by the test-suite to
    validate the branch-and-bound solver, the MIP and the matching-based
    one-to-one optima. *)

(** [specialized inst] enumerates every allocation satisfying the
    specialized rule and returns an optimal one with its period.
    @raise Invalid_argument when no specialized mapping exists ([m < p]). *)
val specialized : Mf_core.Instance.t -> Mf_core.Mapping.t * float

(** [general ?setup inst] enumerates all [m^n] allocations.  With
    [setup > 0] the objective is {!Mf_core.Period.with_setup} (the cyclic
    reconfiguration penalty), making this the differential oracle for
    [Dfs.general ~setup].
    @raise Invalid_argument when [setup < 0]. *)
val general : ?setup:float -> Mf_core.Instance.t -> Mf_core.Mapping.t * float

(** [one_to_one inst] enumerates injective allocations.
    @raise Invalid_argument when [m < n]. *)
val one_to_one : Mf_core.Instance.t -> Mf_core.Mapping.t * float
