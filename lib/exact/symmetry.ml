module Instance = Mf_core.Instance

let machine_classes inst =
  let n = Instance.task_count inst in
  let m = Instance.machines inst in
  let p = Instance.type_count inst in
  (* Two machines are interchangeable when their whole (w, f) columns
     coincide bit for bit: same processing time for every type and same
     failure rate for every task.  Bit equality (not tolerance) is what
     makes relabelling a symmetry of the floating-point objective, not
     just of the real-valued one. *)
  let identical u v =
    let ok = ref true in
    (try
       for j = 0 to p - 1 do
         if Instance.w_of_type inst j u <> Instance.w_of_type inst j v then begin
           ok := false;
           raise Exit
         end
       done;
       for i = 0 to n - 1 do
         if Instance.f inst i u <> Instance.f inst i v then begin
           ok := false;
           raise Exit
         end
       done
     with Exit -> ());
    !ok
  in
  let cls = Array.make m (-1) in
  for u = 0 to m - 1 do
    if cls.(u) < 0 then begin
      cls.(u) <- u;
      for v = u + 1 to m - 1 do
        if cls.(v) < 0 && identical u v then cls.(v) <- u
      done
    end
  done;
  cls

let has_machine_symmetry inst =
  let cls = machine_classes inst in
  let found = ref false in
  Array.iteri (fun u r -> if r <> u then found := true) cls;
  !found
