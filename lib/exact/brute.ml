module Instance = Mf_core.Instance
module Workflow = Mf_core.Workflow
module Mapping = Mf_core.Mapping
module Period = Mf_core.Period

type constraint_kind = Spec | Gen | Oto

let enumerate ?(period_of = Period.period) kind inst =
  let n = Instance.task_count inst and m = Instance.machines inst in
  let wf = Instance.workflow inst in
  let a = Array.make n 0 in
  let best_period = ref infinity in
  let best = ref None in
  let dedicated = Array.make m (-1) in
  let used = Array.make m false in
  let rec go idx =
    if idx = n then begin
      let mp = Mapping.of_array inst a in
      let p = period_of inst mp in
      if p < !best_period then begin
        best_period := p;
        best := Some mp
      end
    end
    else begin
      let ty = Workflow.ttype wf idx in
      for u = 0 to m - 1 do
        let allowed =
          match kind with
          | Gen -> true
          | Oto -> not used.(u)
          | Spec -> dedicated.(u) < 0 || dedicated.(u) = ty
        in
        if allowed then begin
          let saved_ded = dedicated.(u) and saved_used = used.(u) in
          dedicated.(u) <- ty;
          used.(u) <- true;
          a.(idx) <- u;
          go (idx + 1);
          dedicated.(u) <- saved_ded;
          used.(u) <- saved_used
        end
      done
    end
  in
  go 0;
  match !best with
  | Some mp -> (mp, !best_period)
  | None -> invalid_arg "Brute: no feasible mapping exists"

let specialized inst =
  if Instance.machines inst < Instance.type_count inst then
    invalid_arg "Brute.specialized: fewer machines than types";
  enumerate Spec inst

let general ?(setup = 0.0) inst =
  if setup < 0.0 then invalid_arg "Brute.general: negative setup time";
  if setup = 0.0 then enumerate Gen inst
  else enumerate ~period_of:(fun inst mp -> Period.with_setup inst mp ~setup) Gen inst

let one_to_one inst =
  if Instance.machines inst < Instance.task_count inst then
    invalid_arg "Brute.one_to_one: fewer machines than tasks";
  enumerate Oto inst
