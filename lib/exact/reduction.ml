module Instance = Mf_core.Instance
module Workflow = Mf_core.Workflow

type partition_instance = { z : int array; target : int }

let validate p =
  let len = Array.length p.z in
  if len = 0 || len mod 3 <> 0 then
    invalid_arg "Reduction: need 3k integers";
  if Array.exists (fun v -> v <= 0) p.z then
    invalid_arg "Reduction: integers must be positive";
  let k = len / 3 in
  let sum = Array.fold_left ( + ) 0 p.z in
  if sum <> k * p.target then
    invalid_arg "Reduction: integers must sum to k * target"

let build p =
  validate p;
  if Array.exists (fun v -> v > 40) p.z then
    invalid_arg "Reduction: z values above 40 lose exactness in floats";
  let k = Array.length p.z / 3 in
  let n = (3 * k) + 1 in
  (* Tasks 3i, 3i+1, 3i+2 form chain i; task 3k is the shared final task.
     Chains: T(3i) -> T(3i+1) -> T(3i+2) -> T(3k). *)
  let successor =
    Array.init n (fun i ->
        if i = 3 * k then None
        else if i mod 3 = 2 then Some (3 * k)
        else Some (i + 1))
  in
  (* One-to-one mappings ignore types; give every task its own type so the
     instance stays maximally general. *)
  let types = Array.init n Fun.id in
  let workflow = Workflow.in_forest ~types ~successor in
  let m = n in
  let w = Array.make_matrix n m 1.0 in
  let f =
    Array.init n (fun _ ->
        Array.init m (fun u ->
            if u = m - 1 then 0.0
            else begin
              let pow = Float.ldexp 1.0 p.z.(u) in
              (pow -. 1.0) /. pow
            end))
  in
  Instance.create ~workflow ~machines:m ~w ~f

let threshold p = Float.ldexp 1.0 p.target

let solvable_by_oracle p =
  let inst = build p in
  let r = Dfs.one_to_one inst in
  if not r.Dfs.optimal then failwith "Reduction: oracle exceeded its node budget";
  (* Guard against float drift: the optimum is a product of powers of two,
     hence exact; compare with a hair of slack anyway. *)
  r.Dfs.period <= threshold p *. (1.0 +. 1e-9)

let brute_force_3partition p =
  validate p;
  let len = Array.length p.z in
  let k = len / 3 in
  let used = Array.make len false in
  (* Assign greedily triple by triple; anchor each triple at the first
     unused element to avoid permutation blow-up. *)
  let rec fill remaining =
    if remaining = 0 then true
    else begin
      let a = ref (-1) in
      (try
         for i = 0 to len - 1 do
           if not used.(i) then begin
             a := i;
             raise Exit
           end
         done
       with Exit -> ());
      let i = !a in
      used.(i) <- true;
      let found = ref false in
      (try
         for j = i + 1 to len - 1 do
           if (not !found) && not used.(j) then begin
             used.(j) <- true;
             for l = j + 1 to len - 1 do
               if (not !found) && (not used.(l)) && p.z.(i) + p.z.(j) + p.z.(l) = p.target
               then begin
                 used.(l) <- true;
                 if fill (remaining - 1) then begin
                   found := true;
                   raise Exit
                 end;
                 used.(l) <- false
               end
             done;
             used.(j) <- false
           end
         done
       with Exit -> ());
      if not !found then used.(i) <- false;
      !found
    end
  in
  fill k

(* ------------------------------------------------------------------ *)
(* Machine symmetry detection (instance reduction for the exact search;
   implemented in Symmetry to break the Reduction -> Dfs -> Reduction
   dependency cycle, re-exported here as part of the public surface). *)
(* ------------------------------------------------------------------ *)

let machine_classes = Symmetry.machine_classes
let has_machine_symmetry = Symmetry.has_machine_symmetry
