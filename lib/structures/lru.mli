(** Bounded least-recently-used cache.

    A fixed-capacity map whose [find] promotes the entry to
    most-recently-used and whose [add] evicts the least-recently-used
    entry once the capacity is reached.  Backbone of the canonical-answer
    cache of [Mf_solve.Cache]; kept generic (functorised over the key's
    hash/equality) so other subsystems can reuse it.

    Operations are O(1) amortised: a hash table maps keys to nodes of an
    intrusive doubly-linked recency list.  Not thread-safe — callers that
    share a cache across domains must synchronise externally. *)

module Make (K : Hashtbl.HashedType) : sig
  type 'a t

  (** [create ~capacity] is an empty cache evicting beyond [capacity]
      entries.
      @raise Invalid_argument when [capacity < 1]. *)
  val create : capacity:int -> 'a t

  val capacity : 'a t -> int
  val length : 'a t -> int

  (** [find t k] is the cached value, promoted to most-recently-used.
      Counts one hit or one miss. *)
  val find : 'a t -> K.t -> 'a option

  (** [mem t k] checks presence without promoting and without touching
      the hit/miss counters. *)
  val mem : 'a t -> K.t -> bool

  (** [add t k v] inserts (or replaces) the binding and promotes it to
      most-recently-used, evicting the least-recently-used entry when the
      cache is full.  Replacement does not evict. *)
  val add : 'a t -> K.t -> 'a -> unit

  (** [remove t k] drops the binding if present. *)
  val remove : 'a t -> K.t -> unit

  val clear : 'a t -> unit

  (** Lifetime counters ([clear] resets entries, not counters). *)
  val hits : 'a t -> int

  val misses : 'a t -> int
  val evictions : 'a t -> int

  (** [to_list t] lists bindings from most- to least-recently-used
      (test/debug helper; O(n)). *)
  val to_list : 'a t -> (K.t * 'a) list
end
