module Make (K : Hashtbl.HashedType) = struct
  module H = Hashtbl.Make (K)

  type 'a node = {
    key : K.t;
    mutable value : 'a;
    mutable prev : 'a node option;  (* toward the MRU end *)
    mutable next : 'a node option;  (* toward the LRU end *)
  }

  type 'a t = {
    cap : int;
    table : 'a node H.t;
    mutable head : 'a node option;  (* most recently used *)
    mutable tail : 'a node option;  (* least recently used *)
    mutable hits : int;
    mutable misses : int;
    mutable evictions : int;
  }

  let create ~capacity =
    if capacity < 1 then invalid_arg "Lru.create: capacity must be >= 1";
    {
      cap = capacity;
      table = H.create (min capacity 64);
      head = None;
      tail = None;
      hits = 0;
      misses = 0;
      evictions = 0;
    }

  let capacity t = t.cap
  let length t = H.length t.table
  let hits t = t.hits
  let misses t = t.misses
  let evictions t = t.evictions

  let unlink t node =
    (match node.prev with Some p -> p.next <- node.next | None -> t.head <- node.next);
    (match node.next with Some n -> n.prev <- node.prev | None -> t.tail <- node.prev);
    node.prev <- None;
    node.next <- None

  let push_front t node =
    node.prev <- None;
    node.next <- t.head;
    (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
    t.head <- Some node

  let promote t node =
    match t.head with
    | Some h when h == node -> ()
    | _ ->
      unlink t node;
      push_front t node

  let find t k =
    match H.find_opt t.table k with
    | None ->
      t.misses <- t.misses + 1;
      None
    | Some node ->
      t.hits <- t.hits + 1;
      promote t node;
      Some node.value

  let mem t k = H.mem t.table k

  let evict_lru t =
    match t.tail with
    | None -> ()
    | Some node ->
      unlink t node;
      H.remove t.table node.key;
      t.evictions <- t.evictions + 1

  let add t k v =
    match H.find_opt t.table k with
    | Some node ->
      node.value <- v;
      promote t node
    | None ->
      if H.length t.table >= t.cap then evict_lru t;
      let node = { key = k; value = v; prev = None; next = None } in
      H.replace t.table k node;
      push_front t node

  let remove t k =
    match H.find_opt t.table k with
    | None -> ()
    | Some node ->
      unlink t node;
      H.remove t.table k

  let clear t =
    H.reset t.table;
    t.head <- None;
    t.tail <- None

  let to_list t =
    let rec go acc = function
      | None -> List.rev acc
      | Some node -> go ((node.key, node.value) :: acc) node.next
    in
    go [] t.head
end
